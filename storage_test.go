package retro

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"github.com/retrodb/retro/internal/storage"
)

// openFixtureStorage opens a storage engine over the standard movie
// fixture in dir. Recovery paths get a FRESH fixture database — the
// segments and WAL must rebuild everything past the fixture rows.
func openFixtureStorage(t *testing.T, dir string, opts StorageOptions) *StorageEngine {
	t.Helper()
	e, err := OpenStorage(dir, fixtureDB(t), fixtureEmbedding(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// queryTitle asserts the model resolves a movies.title value.
func queryTitle(t *testing.T, s *Session, title string) {
	t.Helper()
	if _, err := s.Model().Vector("movies", "title", title); err != nil {
		t.Fatalf("title %q not in recovered model: %v", title, err)
	}
}

func TestStorageFreshOpenLayout(t *testing.T) {
	dir := t.TempDir()
	e := openFixtureStorage(t, dir, StorageOptions{})
	defer e.Close()

	for _, name := range []string{storage.ManifestName, "base-000001.snap", "wal-000001.wal"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Fatalf("fresh open did not create %s: %v", name, err)
		}
	}
	man := e.Manifest()
	if man.Epoch != 1 || man.WALSeq != 0 || len(man.Segments) != 0 {
		t.Fatalf("fresh manifest = %+v", man)
	}
	if got := e.Session().Model().Store().Epoch(); got != 1 {
		t.Fatalf("store epoch after fresh open = %d, want 1", got)
	}
}

func TestStorageWALReplayOnReopen(t *testing.T) {
	dir := t.TempDir()
	e := openFixtureStorage(t, dir, StorageOptions{})
	s := e.Session()
	if err := s.Insert("movies", []Value{Int(5), Text("matrix"), Text("usa")}); err != nil {
		t.Fatal(err)
	}
	if err := s.InsertBatch("movies", [][]Value{
		{Int(6), Text("alien"), Text("usa")},
		{Int(7), Text("delicatessen"), Text("france")},
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	// No checkpoint ran: everything must come back through WAL replay.
	e2 := openFixtureStorage(t, dir, StorageOptions{})
	defer e2.Close()
	st := e2.Stats()
	if st.ReplayedRecords != 2 || st.ReplayedRows != 3 {
		t.Fatalf("replayed %d records / %d rows, want 2 / 3", st.ReplayedRecords, st.ReplayedRows)
	}
	for _, title := range []string{"matrix", "alien", "delicatessen"} {
		queryTitle(t, e2.Session(), title)
	}
	if n := e2.Session().DB().MustTable("movies").NumRows(); n != 7 {
		t.Fatalf("recovered movies rows = %d, want 7", n)
	}
}

func TestStorageCheckpointAndRecovery(t *testing.T) {
	dir := t.TempDir()
	e := openFixtureStorage(t, dir, StorageOptions{})
	s := e.Session()
	if err := s.Insert("movies", []Value{Int(5), Text("matrix"), Text("usa")}); err != nil {
		t.Fatal(err)
	}
	st, err := e.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if st.Skipped || st.Epoch != 2 || st.Rows != 1 {
		t.Fatalf("checkpoint stats = %+v", st)
	}
	// A checkpoint with nothing new must not touch the directory.
	st2, err := e.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if !st2.Skipped {
		t.Fatalf("idle checkpoint not skipped: %+v", st2)
	}
	// One more insert rides the post-checkpoint WAL.
	if err := s.Insert("movies", []Value{Int(6), Text("alien"), Text("usa")}); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	man, err := storage.ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if man.Epoch != 2 || len(man.Segments) != 1 || man.WALSeq != 1 {
		t.Fatalf("manifest after checkpoint = %+v", man)
	}

	e2 := openFixtureStorage(t, dir, StorageOptions{})
	defer e2.Close()
	if st := e2.Stats(); st.ReplayedRecords != 1 {
		t.Fatalf("replayed %d records, want 1 (only the post-checkpoint insert)", st.ReplayedRecords)
	}
	queryTitle(t, e2.Session(), "matrix") // via segment
	queryTitle(t, e2.Session(), "alien")  // via WAL replay
}

func TestStorageRecoveryIdempotent(t *testing.T) {
	dir := t.TempDir()
	e := openFixtureStorage(t, dir, StorageOptions{})
	s := e.Session()
	if err := s.Insert("movies", []Value{Int(5), Text("matrix"), Text("usa")}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := s.Insert("movies", []Value{Int(6), Text("alien"), Text("france")}); err != nil {
		t.Fatal(err)
	}
	e.Close()

	// Two recoveries of the same directory must agree bit-for-bit:
	// recovery is a pure function of the directory contents.
	vecsOf := func() map[string][]float64 {
		e, err := OpenStorage(dir, fixtureDB(t), fixtureEmbedding(), StorageOptions{})
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		out := map[string][]float64{}
		store := e.Session().Model().Store()
		for id, w := range store.Words() {
			v := store.Vector(id)
			cp := make([]float64, len(v))
			copy(cp, v)
			out[w] = cp
		}
		return out
	}
	a, b := vecsOf(), vecsOf()
	if len(a) != len(b) {
		t.Fatalf("vocabulary sizes differ: %d vs %d", len(a), len(b))
	}
	for w, va := range a {
		vb, ok := b[w]
		if !ok {
			t.Fatalf("word %q missing from second recovery", w)
		}
		for i := range va {
			if va[i] != vb[i] {
				t.Fatalf("word %q dim %d differs: %v vs %v", w, i, va[i], vb[i])
			}
		}
	}
}

// TestStoragePartialCommitNotReplayed is the regression test for the
// BatchError/WAL interaction: only the committed prefix of a partially
// failed batch may be logged, so the rejected row never reappears on
// recovery.
func TestStoragePartialCommitNotReplayed(t *testing.T) {
	dir := t.TempDir()
	e := openFixtureStorage(t, dir, StorageOptions{})
	s := e.Session()
	err := s.InsertBatch("movies", [][]Value{
		{Int(5), Text("matrix"), Text("usa")},
		{Int(1), Text("dupe"), Text("usa")},  // duplicate primary key: rejected
		{Int(6), Text("alien"), Text("usa")}, // never attempted
	})
	var be *BatchError
	if !errors.As(err, &be) || be.Committed != 1 || be.Index != 1 {
		t.Fatalf("expected BatchError{Committed:1, Index:1}, got %v", err)
	}
	e.Close()

	e2 := openFixtureStorage(t, dir, StorageOptions{})
	defer e2.Close()
	db := e2.Session().DB()
	if n := db.MustTable("movies").NumRows(); n != 5 {
		t.Fatalf("recovered rows = %d, want 5 (fixture 4 + committed 1)", n)
	}
	queryTitle(t, e2.Session(), "matrix")
	if _, err := e2.Session().Model().Vector("movies", "title", "dupe"); err == nil {
		t.Fatal("rejected row replayed into the recovered model")
	}
	// The never-attempted row can be inserted cleanly now.
	if err := e2.Session().Insert("movies", []Value{Int(6), Text("alien"), Text("usa")}); err != nil {
		t.Fatal(err)
	}
}

func TestStorageLegacySnapshotAdoption(t *testing.T) {
	dir := t.TempDir()
	// Write a pre-engine single-file snapshot the old way.
	sess, err := NewSession(fixtureDB(t), fixtureEmbedding(), Defaults())
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.WriteSnapshotFile(filepath.Join(dir, "model.snap")); err != nil {
		t.Fatal(err)
	}

	e := openFixtureStorage(t, dir, StorageOptions{})
	defer e.Close()
	man := e.Manifest()
	if man.Base != "model.snap" || man.Epoch != 1 || len(man.Segments) != 0 {
		t.Fatalf("adopted manifest = %+v", man)
	}
	queryTitle(t, e.Session(), "inception")
	// The adopted directory is a live engine: inserts log and recover.
	if err := e.Session().Insert("movies", []Value{Int(5), Text("matrix"), Text("usa")}); err != nil {
		t.Fatal(err)
	}
	e.Close()
	e2 := openFixtureStorage(t, dir, StorageOptions{})
	defer e2.Close()
	queryTitle(t, e2.Session(), "matrix")
}

func TestStorageCompaction(t *testing.T) {
	dir := t.TempDir()
	e := openFixtureStorage(t, dir, StorageOptions{MaxSegments: 2})
	s := e.Session()
	id := int64(5)
	insertAndCheckpoint := func() CheckpointStats {
		t.Helper()
		title := Text("film-" + string(rune('a'+id)))
		if err := s.Insert("movies", []Value{Int(id), title, Text("usa")}); err != nil {
			t.Fatal(err)
		}
		id++
		st, err := e.Checkpoint()
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	if st := insertAndCheckpoint(); st.Compacted {
		t.Fatal("first checkpoint compacted")
	}
	if st := insertAndCheckpoint(); st.Compacted {
		t.Fatal("second checkpoint compacted")
	}
	// Third delta would make the chain 3 > MaxSegments=2: compact.
	st := insertAndCheckpoint()
	if !st.Compacted {
		t.Fatal("third checkpoint did not compact")
	}
	man := e.Manifest()
	// The chain resets to the one carried-forward rows segment (the
	// database rows must survive the old chain's deletion); the vectors
	// all fold into the fresh base.
	if len(man.Segments) != 1 || man.Segments[0] != storage.SegmentName(man.Epoch) || man.Base != storage.BaseName(man.Epoch) {
		t.Fatalf("post-compaction manifest = %+v", man)
	}
	// Old base and segments are swept.
	if _, err := os.Stat(filepath.Join(dir, "base-000001.snap")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("old base still present: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "seg-000002.seg")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("old segment still present: %v", err)
	}
	e.Close()

	e2 := openFixtureStorage(t, dir, StorageOptions{})
	defer e2.Close()
	for _, title := range []string{"film-f", "film-g", "film-h"} {
		queryTitle(t, e2.Session(), title)
	}
}

func TestStorageExecAndRefreshRejected(t *testing.T) {
	dir := t.TempDir()
	e := openFixtureStorage(t, dir, StorageOptions{})
	defer e.Close()
	err := e.Session().ExecAndRefresh(`INSERT INTO movies VALUES (5, 'matrix', 'usa')`)
	if err == nil {
		t.Fatal("ExecAndRefresh accepted on a storage-backed session")
	}
	// The statement must not have executed at all.
	if n := e.Session().DB().MustTable("movies").NumRows(); n != 4 {
		t.Fatalf("rows = %d after rejected ExecAndRefresh, want 4", n)
	}
}

func TestStorageWALFailureWithholdsAck(t *testing.T) {
	dir := t.TempDir()
	failing := false
	sys := &storage.Sys{Fsync: func(f *os.File) error {
		if failing {
			return errors.New("injected fsync failure")
		}
		return f.Sync()
	}}
	e, err := OpenStorage(dir, fixtureDB(t), fixtureEmbedding(), StorageOptions{Sys: sys})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	failing = true
	err = e.Session().Insert("movies", []Value{Int(5), Text("matrix"), Text("usa")})
	var werr *WALError
	if !errors.As(err, &werr) {
		t.Fatalf("expected WALError, got %v", err)
	}
	if !e.Session().Stale() {
		t.Fatal("session not stale after WAL failure")
	}
}
