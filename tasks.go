package retro

import (
	"github.com/retrodb/retro/internal/ml"
	"github.com/retrodb/retro/internal/vec"
)

// The paper's ready-to-use task networks (Fig. 5), re-exported so
// downstream users can run classification, imputation, regression and
// link prediction directly on Model vectors.

// TaskConfig scales the task networks; the zero value is the paper's
// architecture (600/300 hidden units, Nadam, early stopping).
type TaskConfig = ml.Config

// BinaryClassifier is Fig. 5a with one sigmoid output.
type BinaryClassifier = ml.BinaryClassifier

// CategoryImputer is Fig. 5a with a softmax output over categories.
type CategoryImputer = ml.CategoryImputer

// Regressor is Fig. 5b (ReLU stack, MAE loss).
type Regressor = ml.Regressor

// LinkPredictor is Fig. 5c (two towers, subtract, sigmoid output).
type LinkPredictor = ml.LinkPredictor

// NewBinaryClassifier builds a Fig. 5a binary classifier for embeddings
// of the given width.
func NewBinaryClassifier(inputDim int, cfg TaskConfig) *BinaryClassifier {
	return ml.NewBinaryClassifier(inputDim, cfg)
}

// NewCategoryImputer builds a Fig. 5a imputer over numClasses categories.
func NewCategoryImputer(inputDim, numClasses int, cfg TaskConfig) *CategoryImputer {
	return ml.NewCategoryImputer(inputDim, numClasses, cfg)
}

// NewRegressor builds a Fig. 5b regressor.
func NewRegressor(inputDim int, cfg TaskConfig) *Regressor {
	return ml.NewRegressor(inputDim, cfg)
}

// NewLinkPredictor builds a Fig. 5c link predictor for source/target
// embedding widths.
func NewLinkPredictor(srcDim, dstDim int, cfg TaskConfig) *LinkPredictor {
	return ml.NewLinkPredictor(srcDim, dstDim, cfg)
}

// Matrix is a dense row-major matrix (one embedding per row), the input
// type of the task networks.
type Matrix = vec.Matrix

// NewMatrix allocates a zeroed rows x cols matrix.
func NewMatrix(rows, cols int) *Matrix { return vec.NewMatrix(rows, cols) }

// Cosine returns the cosine similarity of two vectors.
func Cosine(a, b []float64) float64 { return vec.Cosine(a, b) }
