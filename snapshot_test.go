package retro

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"testing"

	"github.com/retrodb/retro/internal/datagen"
)

// trainedWorld trains a session over a generated TMDB database with the
// ANN path forced on.
func trainedWorld(t testing.TB, movies int) (*datagen.TMDBWorld, *Session) {
	t.Helper()
	w := datagen.TMDB(datagen.TMDBConfig{Movies: movies, Dim: 16, Seed: 1})
	cfg := Defaults()
	cfg.ANNThreshold = 1
	cfg.TrackLoss = true
	sess, err := NewSession(w.DB, w.Embedding, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sess.Model().Store().WarmANN()
	return w, sess
}

func snapshotBytes(t testing.TB, sess *Session) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := sess.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// sampleValues pulls some (table, column, text) triples out of the DB.
func sampleValues(t testing.TB, w *datagen.TMDBWorld, n int) [][3]string {
	t.Helper()
	titles, err := w.DB.QueryText(`SELECT title FROM movies`)
	if err != nil || len(titles) == 0 {
		t.Fatalf("no titles (err=%v)", err)
	}
	names, err := w.DB.QueryText(`SELECT name FROM persons`)
	if err != nil || len(names) == 0 {
		t.Fatalf("no persons (err=%v)", err)
	}
	var out [][3]string
	for i := 0; i < n && i < len(titles); i++ {
		out = append(out, [3]string{"movies", "title", titles[i]})
	}
	for i := 0; i < n && i < len(names); i++ {
		out = append(out, [3]string{"persons", "name", names[i]})
	}
	return out
}

// TestSnapshotModelRoundTrip checks the core serving invariant through
// the public API: a loaded model answers Vector and Neighbors (ANN and
// exact) identically to the model that wrote the snapshot — same keys,
// same neighbour order, scores and vectors equal at float32 precision.
func TestSnapshotModelRoundTrip(t *testing.T) {
	w, sess := trainedWorld(t, 40)
	model := sess.Model()
	loaded, err := LoadSnapshot(bytes.NewReader(snapshotBytes(t, sess)))
	if err != nil {
		t.Fatal(err)
	}

	if loaded.NumValues() != model.NumValues() {
		t.Fatalf("NumValues %d vs %d", loaded.NumValues(), model.NumValues())
	}
	if loaded.SnapshotInfo() == nil || !loaded.SnapshotInfo().HasIndex {
		t.Fatalf("snapshot info %+v", loaded.SnapshotInfo())
	}
	if model.SnapshotInfo() != nil {
		t.Fatal("trained model claims snapshot provenance")
	}
	if len(loaded.LossHistory()) != len(model.LossHistory()) {
		t.Fatalf("loss history %d vs %d entries", len(loaded.LossHistory()), len(model.LossHistory()))
	}

	for _, ref := range sampleValues(t, w, 10) {
		table, column, text := ref[0], ref[1], ref[2]
		origVec, err := model.Vector(table, column, text)
		if err != nil {
			t.Fatal(err)
		}
		gotVec, err := loaded.Vector(table, column, text)
		if err != nil {
			t.Fatalf("loaded model missing %v: %v", ref, err)
		}
		for j := range origVec {
			if gotVec[j] != float64(float32(origVec[j])) {
				t.Fatalf("%v dim %d: %g != float32(%g)", ref, j, gotVec[j], origVec[j])
			}
		}

		want, err := model.Neighbors(table, column, text, 5)
		if err != nil {
			t.Fatal(err)
		}
		have, err := loaded.Neighbors(table, column, text, 5)
		if err != nil {
			t.Fatal(err)
		}
		if len(want) != len(have) {
			t.Fatalf("%v: %d vs %d neighbours", ref, len(have), len(want))
		}
		for i := range want {
			if want[i].Word != have[i].Word {
				t.Fatalf("%v rank %d: %q vs %q", ref, i, have[i].Word, want[i].Word)
			}
			if math.Abs(want[i].Score-have[i].Score) > 1e-5 {
				t.Fatalf("%v rank %d: score drift %g", ref, i, want[i].Score-have[i].Score)
			}
		}
	}

	// Unknown values still miss cleanly on the attached-DB-less model.
	if _, err := loaded.Vector("movies", "title", "no such film"); err == nil {
		t.Fatal("ghost value resolved")
	}
	if _, ok := loaded.Key("nope", "nope", "nope"); ok {
		t.Fatal("ghost key resolved")
	}
}

// TestSnapshotExactPathRoundTrip repeats the invariant with ANN disabled,
// so the exact scan path is what round-trips.
func TestSnapshotExactPathRoundTrip(t *testing.T) {
	w := datagen.TMDB(datagen.TMDBConfig{Movies: 30, Dim: 16, Seed: 2})
	cfg := Defaults()
	cfg.ANNThreshold = -1 // always exact
	sess, err := NewSession(w.DB, w.Embedding, cfg)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSnapshot(bytes.NewReader(snapshotBytes(t, sess)))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Store().ANNThreshold() != 0 {
		t.Fatalf("ANN threshold %d should persist as disabled", loaded.Store().ANNThreshold())
	}
	if loaded.SnapshotInfo().HasIndex {
		t.Fatal("exact-only snapshot carries an index")
	}
	for _, ref := range sampleValues(t, w, 5) {
		want, err := sess.Model().Neighbors(ref[0], ref[1], ref[2], 4)
		if err != nil {
			t.Fatal(err)
		}
		have, err := loaded.Neighbors(ref[0], ref[1], ref[2], 4)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if want[i].Word != have[i].Word {
				t.Fatalf("%v rank %d: %q vs %q", ref, i, have[i].Word, want[i].Word)
			}
		}
	}
}

// TestSnapshotAnalogyRoundTrip covers the third read endpoint's
// underlying query.
func TestSnapshotAnalogyRoundTrip(t *testing.T) {
	w, sess := trainedWorld(t, 40)
	loaded, err := LoadSnapshot(bytes.NewReader(snapshotBytes(t, sess)))
	if err != nil {
		t.Fatal(err)
	}
	refs := sampleValues(t, w, 3)
	keys := make([]string, 3)
	for i := 0; i < 3; i++ {
		k, ok := sess.Model().Key(refs[i][0], refs[i][1], refs[i][2])
		if !ok {
			t.Fatalf("no key for %v", refs[i])
		}
		keys[i] = k
	}
	want, err := sess.Model().Store().Analogy(keys[0], keys[1], keys[2], 5)
	if err != nil {
		t.Fatal(err)
	}
	have, err := loaded.Store().Analogy(keys[0], keys[1], keys[2], 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != len(have) {
		t.Fatalf("analogy: %d vs %d matches", len(have), len(want))
	}
	for i := range want {
		if want[i].Word != have[i].Word {
			t.Fatalf("analogy rank %d: %q vs %q", i, have[i].Word, want[i].Word)
		}
	}
}

// TestResumeSession verifies the full serving path: a resumed session
// keeps the deserialised index, supports incremental inserts (tombstone +
// re-insert in the loaded HNSW graph), and tracks the equivalent
// never-snapshotted session.
func TestResumeSession(t *testing.T) {
	_, sess := trainedWorld(t, 40)
	raw := snapshotBytes(t, sess)
	// A second, bit-identical world (datagen is deterministic by seed)
	// stands in for the fresh process that boots from the snapshot.
	w2 := datagen.TMDB(datagen.TMDBConfig{Movies: 40, Dim: 16, Seed: 1})
	resumed, err := ResumeSession(w2.DB, w2.Embedding, bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Model().Store().ANNIndex() == nil {
		t.Fatal("resumed session lost the deserialised index")
	}
	if resumed.Model().NumValues() != sess.Model().NumValues() {
		t.Fatalf("NumValues %d vs %d", resumed.Model().NumValues(), sess.Model().NumValues())
	}

	// Insert through both sessions; both must pick the value up and keep
	// answering with a live (not stale) index.
	for i := 0; i < 3; i++ {
		stmt := fmt.Sprintf(
			`INSERT INTO movies (id, title, original_language, director_id) VALUES (%d, 'resumed premiere %d', 'english', 0)`,
			90_000+i, i)
		if err := sess.ExecAndRefresh(stmt); err != nil {
			t.Fatal(err)
		}
		if err := resumed.ExecAndRefresh(stmt); err != nil {
			t.Fatalf("insert %d into resumed session: %v", i, err)
		}
	}
	// The repaired vectors start from float32-rounded carry-overs in the
	// resumed session, so mutually near-identical inserts can swap ranks
	// at equal scores; compare neighbour sets and scores, not order.
	for i := 0; i < 3; i++ {
		title := fmt.Sprintf("resumed premiere %d", i)
		want, err := sess.Model().Neighbors("movies", "title", title, 5)
		if err != nil {
			t.Fatal(err)
		}
		have, err := resumed.Model().Neighbors("movies", "title", title, 5)
		if err != nil {
			t.Fatalf("resumed neighbours of %q: %v", title, err)
		}
		if len(want) != len(have) {
			t.Fatalf("%q: %d vs %d neighbours", title, len(have), len(want))
		}
		wantScores := map[string]float64{}
		for _, m := range want {
			wantScores[m.Word] = m.Score
		}
		for _, m := range have {
			ws, ok := wantScores[m.Word]
			if !ok {
				t.Fatalf("%q: resumed session surfaced %q, trained session did not", title, m.Word)
			}
			if math.Abs(ws-m.Score) > 1e-3 {
				t.Fatalf("%q neighbour %q: score %g vs %g", title, m.Word, m.Score, ws)
			}
		}
	}
	// The loaded graph was maintained in place, not rebuilt: the inserts
	// above tombstoned/re-inserted within the deserialised index.
	if resumed.Model().Store().ANNIndex() == nil {
		t.Fatal("index discarded by post-resume inserts")
	}
}

// TestResumeSessionRejectsDrift: resuming against a database that gained
// rows after the snapshot was written must fail loudly.
func TestResumeSessionRejectsDrift(t *testing.T) {
	w, sess := trainedWorld(t, 30)
	raw := snapshotBytes(t, sess)
	if _, err := w.DB.Exec(
		`INSERT INTO movies (id, title, original_language, director_id) VALUES (95000, 'post snapshot film', 'english', 0)`); err != nil {
		t.Fatal(err)
	}
	_, err := ResumeSession(w.DB, w.Embedding, bytes.NewReader(raw))
	if err == nil || !strings.Contains(err.Error(), "database changed") {
		t.Fatalf("drifted database accepted: %v", err)
	}
}

// TestResumeSessionWithExcludes: extraction exclusions are part of the
// trained vocabulary's definition, so they must persist through the
// snapshot — otherwise resuming re-extracts the excluded columns and the
// vocabularies can never match.
func TestResumeSessionWithExcludes(t *testing.T) {
	w := datagen.TMDB(datagen.TMDBConfig{Movies: 30, Dim: 16, Seed: 3})
	cfg := Defaults()
	cfg.ExcludeColumns = []string{"movies.overview"}
	sess, err := NewSession(w.DB, w.Embedding, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := sess.Model().Key("movies", "overview", "anything"); ok {
		t.Fatal("excluded column trained anyway")
	}
	raw := snapshotBytes(t, sess)

	info, err := ReadSnapshotInfo(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if len(info.ExcludeColumns) != 1 || info.ExcludeColumns[0] != "movies.overview" {
		t.Fatalf("exclusions not persisted: %v", info.ExcludeColumns)
	}

	w2 := datagen.TMDB(datagen.TMDBConfig{Movies: 30, Dim: 16, Seed: 3})
	resumed, err := ResumeSession(w2.DB, w2.Embedding, bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("resume with persisted exclusions: %v", err)
	}
	if resumed.Model().NumValues() != sess.Model().NumValues() {
		t.Fatalf("NumValues %d vs %d", resumed.Model().NumValues(), sess.Model().NumValues())
	}
}

// TestReadSnapshotInfoIsCheap: introspection must not materialise the
// store or the graph, only verify and summarise.
func TestReadSnapshotInfo(t *testing.T) {
	_, sess := trainedWorld(t, 30)
	raw := snapshotBytes(t, sess)
	info, err := ReadSnapshotInfo(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if info.NumValues != sess.Model().NumValues() || !info.HasIndex || info.Version != SnapshotFormatVersion {
		t.Fatalf("info %+v", info)
	}
	// Corruption is still caught (checksums are verified even though the
	// payloads are not decoded).
	bad := append([]byte{}, raw...)
	bad[len(bad)/2] ^= 0x10
	if _, err := ReadSnapshotInfo(bytes.NewReader(bad)); err == nil {
		t.Fatal("corrupt snapshot accepted by ReadSnapshotInfo")
	}
}

// TestResumeSessionRejectsDimMismatch guards against pairing a snapshot
// with the wrong base embedding.
func TestResumeSessionRejectsDimMismatch(t *testing.T) {
	w, sess := trainedWorld(t, 30)
	raw := snapshotBytes(t, sess)
	wrongBase := NewEmbedding(8)
	wrongBase.Add("x", make([]float64, 8))
	if _, err := ResumeSession(w.DB, wrongBase, bytes.NewReader(raw)); err == nil {
		t.Fatal("dim mismatch accepted")
	}
}
