package retro

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"github.com/retrodb/retro/internal/storage"
)

// The epoch-based storage engine. OpenStorage owns a data directory and
// couples a live Session to three durable artifacts (see internal/storage
// for the on-disk formats):
//
//   - a write-ahead log of committed insert batches, appended and fsynced
//     before each insert is acknowledged;
//   - delta snapshot segments, one per checkpoint, carrying only the rows
//     committed and the store vectors changed since the previous
//     checkpoint epoch — O(delta) where a full snapshot is O(model);
//   - a MANIFEST naming the base snapshot, the ordered segment chain and
//     the active log, replaced by atomic rename so recovery is a pure
//     function of the directory contents.
//
// Recovery replays manifest -> base -> segments -> WAL tail, reattaches
// the database, and resumes incremental maintenance exactly where the
// crashed writer left off. Once the segment chain grows past MaxSegments
// the next checkpoint compacts: it writes a fresh full base snapshot and
// resets the chain.

// DefaultMaxSegments is the segment-chain length at which a checkpoint
// compacts into a fresh full base snapshot (see StorageOptions).
const DefaultMaxSegments = 8

// DefaultReplLog is the default in-memory replication window: how many
// recent WAL records the engine retains for followers to tail (see
// StorageOptions.ReplLog).
const DefaultReplLog = 4096

// StorageOptions configures OpenStorage.
type StorageOptions struct {
	// Config is the training configuration used when the directory is
	// empty (fresh start) and carried by snapshots thereafter.
	Config Config
	// SyncEvery is the WAL group-commit interval: fsync once every n
	// appends. Values <= 1 fsync every append (the durable default);
	// larger values trade a tail of unacknowledged writes on crash for
	// fewer fsyncs under bulk load.
	SyncEvery int
	// MaxSegments caps the delta segment chain; the checkpoint that
	// would exceed it writes a full base snapshot instead (compaction).
	// 0 selects DefaultMaxSegments.
	MaxSegments int
	// ReplLog caps the in-memory replication window: the engine retains
	// this many recent WAL records (across checkpoints) so followers can
	// resume tailing without a full re-sync. A follower whose resume
	// point has been pruned past — typically after it sat disconnected
	// across a compaction — is told to re-sync instead. 0 selects
	// DefaultReplLog; negative disables retention (every follower
	// reconnect behind the live tail forces a re-sync).
	ReplLog int
	// Sys overrides the durability syscalls (crash-test injection); nil
	// uses the real fsync and rename.
	Sys *storage.Sys
}

// CheckpointStats describes one checkpoint.
type CheckpointStats struct {
	Epoch     uint64        // epoch the checkpoint advanced to
	Compacted bool          // wrote a full base instead of a delta segment
	Rows      int           // committed rows captured
	Vectors   int           // changed store vectors captured
	Bytes     int64         // bytes written (segment or base)
	Duration  time.Duration // wall time
	Skipped   bool          // nothing changed since the last checkpoint
}

// StorageStats is a point-in-time summary of the engine, exported by the
// serving layer's /v1/stats and metrics endpoints.
type StorageStats struct {
	Dir             string
	Epoch           uint64           // current checkpoint epoch
	Segments        int              // delta segments in the manifest chain
	PendingRows     int              // rows logged since the last checkpoint
	WAL             storage.WALStats // active log counters
	Checkpoints     uint64           // checkpoints taken by this handle
	Compactions     uint64           // of which compactions
	ReplayedRecords int              // WAL records replayed at open
	ReplayedRows    int              // rows those records carried
	WALTruncated    bool             // open cut a torn record off the log
	LastCheckpoint  CheckpointStats  // most recent non-skipped checkpoint
}

// StorageEngine binds a Session to a durable data directory. The engine
// serialises its own log appends and checkpoints internally, but the
// Session it returns has the usual discipline: callers must exclude
// concurrent inserts during Checkpoint and Close (the serving layer
// holds its write mutex).
type StorageEngine struct {
	mu   sync.Mutex
	dir  string
	sys  *storage.Sys
	sess *Session
	wal  *storage.WAL
	man  *storage.Manifest

	maxSegments int

	// lastCkpt is the epoch of the last checkpoint: store rows stamped
	// at or above it have not yet been captured by a segment.
	lastCkpt uint64
	// pending are the batches logged since the last checkpoint, in
	// commit order — exactly the WAL records past the manifest's
	// high-water mark, kept in memory so a checkpoint never re-reads
	// the log.
	pending     []storage.Batch
	pendingRows int

	// replLog is the in-memory replication window: the most recent WAL
	// records (seq-contiguous, capped at replCap), retained ACROSS
	// checkpoints so a briefly-disconnected follower can resume tailing
	// without re-downloading the store. Batches are shared with pending
	// — both are immutable after commit.
	replLog []storage.Record
	replCap int
	// replNotify is closed (and replaced) on every durable append, waking
	// long-poll replication streams waiting for new records.
	replNotify chan struct{}

	replayedRecords int
	replayedRows    int
	walTruncated    bool
	checkpoints     uint64
	compactions     uint64
	lastStats       CheckpointStats
	closed          bool
}

// OpenStorage opens (or initialises) the data directory and returns the
// engine with a live session attached.
//
// Three boot paths, decided by the directory contents:
//
//   - A MANIFEST: recover. Load the base snapshot, apply the segment
//     chain (rows into the database, vectors into the store), reattach
//     the database, replay the WAL tail through the delta-repair path,
//     and sweep orphan files from any interrupted checkpoint.
//   - No MANIFEST but exactly one legacy *.snap file: adopt it as the
//     base of a fresh manifest (the pre-engine single-file format
//     becomes a degenerate manifest with an empty segment chain).
//   - Empty: train from db and base under opts.Config, persist the
//     initial base snapshot, and start the first log.
//
// In the recovery path db must be the same database the directory was
// written against (the segments re-apply its missing rows); in the
// other two it is the training input.
func OpenStorage(dir string, db *DB, base *Embedding, opts StorageOptions) (*StorageEngine, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	e := &StorageEngine{
		dir: dir, sys: opts.Sys, maxSegments: opts.MaxSegments,
		replCap: opts.ReplLog, replNotify: make(chan struct{}),
	}
	if e.maxSegments <= 0 {
		e.maxSegments = DefaultMaxSegments
	}
	if e.replCap == 0 {
		e.replCap = DefaultReplLog
	}

	man, err := storage.ReadManifest(dir)
	switch {
	case err == nil:
		if err := e.recover(db, base, man); err != nil {
			return nil, err
		}
	case errors.Is(err, os.ErrNotExist):
		legacy, lerr := findLegacySnapshot(dir)
		if lerr != nil {
			return nil, lerr
		}
		if legacy != "" {
			err = e.adoptLegacy(db, base, legacy)
		} else {
			err = e.freshStart(db, base, opts.Config)
		}
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("retro: reading manifest in %s: %w", dir, err)
	}

	if opts.SyncEvery > 1 {
		e.wal.SetSyncEvery(opts.SyncEvery)
	}
	// Only now that recovery replay is complete does the session start
	// logging: replayed records must not be re-appended to the log they
	// came from.
	e.sess.walAppend = e.appendWAL
	storage.CleanDir(dir, e.man)
	return e, nil
}

// findLegacySnapshot looks for a single pre-engine snapshot file to
// adopt. More than one *.snap with no manifest is ambiguous and an
// error rather than a guess.
func findLegacySnapshot(dir string) (string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", err
	}
	var snaps []string
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".snap" {
			snaps = append(snaps, e.Name())
		}
	}
	switch len(snaps) {
	case 0:
		return "", nil
	case 1:
		return snaps[0], nil
	}
	return "", fmt.Errorf("retro: %s has %d snapshot files and no MANIFEST; remove all but one to adopt it", dir, len(snaps))
}

// freshStart trains the initial model and lays down epoch 1: a full
// base snapshot, an empty log, and the manifest naming both. The
// session is then RELOADED from the base it just wrote, so the booted
// state is bit-identical to what any later recovery of this directory
// produces (the snapshot packs vectors as float32; serving the f64
// training output directly would make the first boot the odd one out).
func (e *StorageEngine) freshStart(db *DB, base *Embedding, cfg Config) error {
	sess, err := NewSession(db, base, cfg)
	if err != nil {
		return err
	}
	baseName := storage.BaseName(1)
	if err := storage.WriteFileAtomic(filepath.Join(e.dir, baseName), e.sys, sess.Snapshot); err != nil {
		return fmt.Errorf("retro: writing base snapshot: %w", err)
	}
	return e.adoptLegacy(db, base, baseName)
}

// adoptLegacy promotes a pre-engine single-file snapshot to the base of
// a fresh manifest. The file keeps its name; only the manifest and the
// first log are written.
func (e *StorageEngine) adoptLegacy(db *DB, base *Embedding, name string) error {
	f, err := os.Open(filepath.Join(e.dir, name))
	if err != nil {
		return err
	}
	m, err := LoadSnapshot(f)
	f.Close()
	if err != nil {
		return fmt.Errorf("retro: adopting legacy snapshot %s: %w", name, err)
	}
	sess, err := resumeModel(db, base, m)
	if err != nil {
		return fmt.Errorf("retro: adopting legacy snapshot %s: %w", name, err)
	}
	return e.install(sess, name)
}

// install writes the initial durable state for a session whose model is
// fully captured by the already-present base snapshot: log first, then
// the manifest naming both, so the manifest never names a missing file.
// On success the engine is at epoch 1 with an empty chain.
func (e *StorageEngine) install(sess *Session, baseName string) error {
	walName := storage.WALName(1)
	wal, err := storage.CreateWAL(filepath.Join(e.dir, walName), 0, e.sys)
	if err != nil {
		return fmt.Errorf("retro: creating WAL: %w", err)
	}
	man := &storage.Manifest{Epoch: 1, WALSeq: 0, Base: baseName, WAL: walName}
	if err := storage.WriteManifest(e.dir, man, e.sys); err != nil {
		wal.Close()
		os.Remove(filepath.Join(e.dir, walName))
		return fmt.Errorf("retro: writing manifest: %w", err)
	}
	store := sess.Model().Store()
	store.SetEpoch(man.Epoch)
	e.sess, e.wal, e.man, e.lastCkpt = sess, wal, man, man.Epoch
	return nil
}

// recover rebuilds the full engine state from a manifest: base model,
// segment chain, database reattachment, WAL tail replay.
func (e *StorageEngine) recover(db *DB, base *Embedding, man *storage.Manifest) error {
	f, err := os.Open(filepath.Join(e.dir, man.Base))
	if err != nil {
		return fmt.Errorf("retro: opening base snapshot: %w", err)
	}
	model, err := LoadSnapshot(f)
	f.Close()
	if err != nil {
		return fmt.Errorf("retro: loading base snapshot %s: %w", man.Base, err)
	}

	// Apply the delta chain: committed rows re-enter the database,
	// changed vectors overwrite (or append to) the store — at the
	// writer's store precision (float64 rows, or float32 words from an
	// F32 store), so recovered vectors are bit-identical to the
	// checkpointed ones rather than rounded through the base's float32
	// packing.
	store := model.Store()
	for _, name := range man.Segments {
		seg, err := storage.ReadSegmentFile(filepath.Join(e.dir, name))
		if err != nil {
			return fmt.Errorf("retro: loading segment %s: %w", name, err)
		}
		for _, b := range seg.Batches {
			for _, row := range b.Rows {
				if _, err := db.Insert(b.Table, row); err != nil {
					return fmt.Errorf("retro: replaying segment %s into table %s: %w", name, b.Table, err)
				}
			}
		}
		for _, v := range seg.Vectors {
			store.Add(v.Key, v.Float64())
		}
	}

	sess, err := resumeModel(db, base, model)
	if err != nil {
		return fmt.Errorf("retro: reattaching database after segment replay: %w", err)
	}
	// resumeModel may have rebuilt the store (extraction renumbered the
	// vocabulary); stamp the epoch on whichever store survived. Restored
	// rows keep their zero stamps — they are durable — while everything
	// the WAL replay below touches is stamped at the manifest epoch and
	// lands in the next delta.
	sess.Model().Store().SetEpoch(man.Epoch)
	e.sess, e.man, e.lastCkpt = sess, man, man.Epoch

	wal, records, err := storage.OpenWAL(filepath.Join(e.dir, man.WAL), e.sys)
	if err != nil {
		return fmt.Errorf("retro: opening WAL %s: %w", man.WAL, err)
	}
	e.wal = wal
	e.walTruncated = wal.Truncated()
	for _, rec := range records {
		if rec.Seq <= man.WALSeq {
			// Already covered by the segment chain; never replay.
			continue
		}
		if err := sess.InsertBatch(rec.Batch.Table, rec.Batch.Rows); err != nil {
			wal.Close()
			return fmt.Errorf("retro: replaying WAL record %d: %w", rec.Seq, err)
		}
		e.pending = append(e.pending, rec.Batch)
		e.pendingRows += rec.Batch.NumRows()
		e.retainRecord(rec)
		e.replayedRecords++
		e.replayedRows += rec.Batch.NumRows()
	}
	return nil
}

// retainRecord adds one durable record to the replication window,
// pruning the oldest past the cap. Caller holds e.mu (or, during
// recovery, has exclusive access).
func (e *StorageEngine) retainRecord(rec storage.Record) {
	if e.replCap < 0 {
		return
	}
	e.replLog = append(e.replLog, rec)
	if excess := len(e.replLog) - e.replCap; excess > 0 {
		// Slide instead of re-slicing so the pruned prefix is actually
		// released to the GC rather than pinned by the backing array.
		kept := make([]storage.Record, e.replCap)
		copy(kept, e.replLog[excess:])
		e.replLog = kept
	}
}

// appendWAL is the session's write-ahead hook: durably log the committed
// batch, then remember it for the next checkpoint's segment.
func (e *StorageEngine) appendWAL(table string, rows [][]Value) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return errors.New("retro: storage engine is closed")
	}
	seq, err := e.wal.Append(table, rows)
	if err != nil {
		return err
	}
	// The WAL cloned the rows for its own frame; clone again for the
	// in-memory pending list — the caller owns these slices. The
	// replication window shares the same immutable clone.
	b := storage.CloneBatch(table, rows)
	e.pending = append(e.pending, b)
	e.pendingRows += len(rows)
	e.retainRecord(storage.Record{Seq: seq, Batch: b})
	// Wake long-poll replication streams: close-and-replace makes the
	// signal a broadcast every waiter observes exactly once.
	close(e.replNotify)
	e.replNotify = make(chan struct{})
	return nil
}

// Checkpoint captures everything that changed since the last checkpoint
// into a delta segment (or, when the chain is full, a fresh base
// snapshot), rotates the WAL, and atomically installs the new manifest.
// Callers must exclude concurrent inserts for the duration — the
// serving layer holds its write mutex. A checkpoint that finds nothing
// changed returns Skipped without touching the directory.
//
// Failure ordering guarantees: the manifest rename is the commit point.
// Every file the new manifest names is durable before the rename, and
// the old log is deleted only after it; a crash anywhere leaves a
// directory some manifest fully describes, with at worst orphan files
// for the next open to sweep.
func (e *StorageEngine) Checkpoint() (CheckpointStats, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return CheckpointStats{}, errors.New("retro: storage engine is closed")
	}
	start := time.Now()
	store := e.sess.Model().Store()
	changed := store.ChangedSince(e.lastCkpt)
	if len(changed) == 0 && len(e.pending) == 0 {
		return CheckpointStats{Skipped: true, Epoch: e.lastCkpt}, nil
	}

	newEpoch := store.AdvanceEpoch()
	compact := len(e.man.Segments)+1 > e.maxSegments
	stats := CheckpointStats{Epoch: newEpoch, Compacted: compact, Rows: e.pendingRows, Vectors: len(changed)}

	newMan := &storage.Manifest{Epoch: newEpoch, WALSeq: e.wal.Seq(), Base: e.man.Base}
	var written string // the segment or base this checkpoint produced
	if compact {
		// The chain is long enough that recovery replay cost (and disk
		// footprint) outweighs the delta savings: fold everything into a
		// fresh full base and reset the chain. The base captures the
		// model but not the database rows the old chain carried — those
		// must survive, or recovery (which starts from the original
		// dataset) would come up with a vocabulary the base doesn't
		// match. Merge every chain batch plus the pending tail into one
		// carried-forward rows segment (vectors omitted; the base has
		// them all).
		merged := &storage.Segment{ToEpoch: newEpoch, WALSeq: e.wal.Seq()}
		for _, name := range e.man.Segments {
			seg, err := storage.ReadSegmentFile(filepath.Join(e.dir, name))
			if err != nil {
				return stats, fmt.Errorf("retro: checkpoint: merging segment %s: %w", name, err)
			}
			merged.Batches = append(merged.Batches, seg.Batches...)
		}
		merged.Batches = append(merged.Batches, e.pending...)
		if len(merged.Batches) > 0 {
			segName := storage.SegmentName(newEpoch)
			if err := storage.WriteSegmentFile(filepath.Join(e.dir, segName), merged, e.sys); err != nil {
				return stats, fmt.Errorf("retro: checkpoint: writing merged rows segment: %w", err)
			}
			newMan.Segments = []string{segName}
		}
		newMan.Base = storage.BaseName(newEpoch)
		written = filepath.Join(e.dir, newMan.Base)
		if err := storage.WriteFileAtomic(written, e.sys, e.sess.Snapshot); err != nil {
			if len(newMan.Segments) > 0 {
				os.Remove(filepath.Join(e.dir, newMan.Segments[0]))
			}
			return stats, fmt.Errorf("retro: checkpoint: writing base snapshot: %w", err)
		}
	} else {
		seg := &storage.Segment{
			FromEpoch: e.lastCkpt, ToEpoch: newEpoch, WALSeq: e.wal.Seq(),
			Batches: e.pending,
		}
		if store.Precision() == F32 {
			// Persist float32 words directly: no widening round trip, and
			// half the segment bytes per changed row.
			for _, id := range changed {
				vec := store.Vector32(id)
				cp := make([]float32, len(vec))
				copy(cp, vec)
				seg.Vectors = append(seg.Vectors, storage.VectorDelta{Key: store.Word(id), Vec32: cp})
			}
		} else {
			for _, id := range changed {
				vec := store.Vector(id)
				cp := make([]float64, len(vec))
				copy(cp, vec)
				seg.Vectors = append(seg.Vectors, storage.VectorDelta{Key: store.Word(id), Vec: cp})
			}
		}
		segName := storage.SegmentName(newEpoch)
		written = filepath.Join(e.dir, segName)
		if err := storage.WriteSegmentFile(written, seg, e.sys); err != nil {
			return stats, fmt.Errorf("retro: checkpoint: writing segment: %w", err)
		}
		newMan.Segments = append(append([]string(nil), e.man.Segments...), segName)
	}
	if fi, err := os.Stat(written); err == nil {
		stats.Bytes = fi.Size()
	}

	// Rotate the log before the manifest commit: the new manifest names
	// the new log, so the log must exist (header synced) first.
	undo := func() {
		os.Remove(written)
		if compact && len(newMan.Segments) > 0 {
			os.Remove(filepath.Join(e.dir, newMan.Segments[0]))
		}
	}
	walName := storage.WALName(newEpoch)
	newWAL, err := storage.CreateWAL(filepath.Join(e.dir, walName), e.wal.Seq(), e.sys)
	if err != nil {
		undo()
		return stats, fmt.Errorf("retro: checkpoint: rotating WAL: %w", err)
	}
	newMan.WAL = walName
	if err := storage.WriteManifest(e.dir, newMan, e.sys); err != nil {
		newWAL.Close()
		os.Remove(filepath.Join(e.dir, walName))
		undo()
		return stats, fmt.Errorf("retro: checkpoint: writing manifest: %w", err)
	}

	// Commit point passed: everything below is cleanup and in-memory
	// bookkeeping, safe to lose to a crash.
	oldWAL := e.wal
	oldWAL.Close()
	os.Remove(oldWAL.Path())
	if compact {
		storage.CleanDir(e.dir, newMan) // old base + chain are now orphans
		e.compactions++
	}
	e.wal, e.man, e.lastCkpt = newWAL, newMan, newEpoch
	e.pending, e.pendingRows = nil, 0
	e.checkpoints++
	stats.Duration = time.Since(start)
	e.lastStats = stats
	return stats, nil
}

// Session returns the live session backed by this engine.
func (e *StorageEngine) Session() *Session { return e.sess }

// Dir returns the data directory.
func (e *StorageEngine) Dir() string { return e.dir }

// Manifest returns a copy of the current manifest.
func (e *StorageEngine) Manifest() storage.Manifest {
	e.mu.Lock()
	defer e.mu.Unlock()
	m := *e.man
	m.Segments = append([]string(nil), e.man.Segments...)
	return m
}

// --- replication surface ---------------------------------------------------
//
// A primary exposes these to internal/repl's HTTP handler; everything is
// safe to call concurrently with inserts and checkpoints.

// WALSeq returns the sequence number of the last durable WAL record.
func (e *StorageEngine) WALSeq() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.wal.Seq()
}

// WALNotify returns a channel closed at the next durable append. Callers
// re-arm by calling it again after the close; a long-poll stream selects
// on it against its deadline.
func (e *StorageEngine) WALNotify() <-chan struct{} {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.replNotify
}

// RecordsSince returns up to max retained records with seq > from, plus
// the current WAL high-water mark. ok reports whether from is still
// inside the replication window: false means the records a follower
// would need have been pruned (it sat disconnected across checkpoints or
// a compaction) — or the follower claims a seq the primary never wrote
// (divergent history) — and it must fall back to a full re-sync.
func (e *StorageEngine) RecordsSince(from uint64, max int) (recs []storage.Record, lastSeq uint64, ok bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	lastSeq = e.wal.Seq()
	if from > lastSeq {
		return nil, lastSeq, false
	}
	if from == lastSeq {
		return nil, lastSeq, true
	}
	winStart := lastSeq + 1
	if len(e.replLog) > 0 {
		winStart = e.replLog[0].Seq
	}
	if from+1 < winStart {
		return nil, lastSeq, false
	}
	idx := int(from + 1 - winStart)
	tail := e.replLog[idx:]
	if max > 0 && len(tail) > max {
		tail = tail[:max]
	}
	// Copy the slice header region so callers iterate a stable snapshot
	// while appends keep growing (and pruning) the window. The batches
	// themselves are immutable after commit.
	recs = make([]storage.Record, len(tail))
	copy(recs, tail)
	return recs, lastSeq, true
}

// ReplicationState returns a copy of the current manifest plus the WAL
// high-water mark, the unit a follower needs to bootstrap: download the
// named base and segments, then tail from WALSeq.
func (e *StorageEngine) ReplicationState() (storage.Manifest, uint64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	m := *e.man
	m.Segments = append([]string(nil), e.man.Segments...)
	return m, e.wal.Seq()
}

// OpenReplicaFile opens a file for shipping to a bootstrapping replica.
// Only files the current manifest references are served — the base
// snapshot and the segment chain; never the live WAL (its content
// travels over the record stream) and never an arbitrary path. Opening
// under the engine mutex makes the check atomic against a concurrent
// compaction deleting the file.
func (e *StorageEngine) OpenReplicaFile(name string) (*os.File, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	ok := name == e.man.Base
	for _, s := range e.man.Segments {
		ok = ok || name == s
	}
	if !ok {
		return nil, fmt.Errorf("retro: %q is not referenced by the current manifest", name)
	}
	return os.Open(filepath.Join(e.dir, name))
}

// Stats returns a point-in-time summary. Safe to call concurrently with
// inserts (the engine mutex covers the log counters).
func (e *StorageEngine) Stats() StorageStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return StorageStats{
		Dir:             e.dir,
		Epoch:           e.man.Epoch,
		Segments:        len(e.man.Segments),
		PendingRows:     e.pendingRows,
		WAL:             e.wal.Stats(),
		Checkpoints:     e.checkpoints,
		Compactions:     e.compactions,
		ReplayedRecords: e.replayedRecords,
		ReplayedRows:    e.replayedRows,
		WALTruncated:    e.walTruncated,
		LastCheckpoint:  e.lastStats,
	}
}

// Close syncs and closes the log. It does NOT checkpoint — callers that
// want a clean shutdown with an empty replay tail run Checkpoint first
// (everything in the log is recovered either way). The session stops
// accepting writes.
func (e *StorageEngine) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil
	}
	e.closed = true
	return e.wal.Close()
}
