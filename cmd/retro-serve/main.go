// Command retro-serve is the embedding serving daemon: it loads a dataset
// directory (CSV tables + base embedding, the layout written by `retro
// generate`), retrofits the relational embeddings, and serves them over
// HTTP with HNSW-accelerated similarity search.
//
//	retro generate -dataset tmdb -out ./data -movies 2000
//	retro-serve -data ./data -addr :8080
//
//	curl 'localhost:8080/v1/neighbors?table=movies&column=title&text=alien+autumn&k=5'
//	curl -X POST localhost:8080/v1/neighbors/batch -d '{"queries":[
//	  {"table":"movies","column":"title","text":"alien autumn","k":5},
//	  {"table":"movies","column":"title","text":"second film"}],"default_k":10}'
//	curl -X POST localhost:8080/v1/insert -d '{"table":"movies","values":[9001,"new film",null,null,null,null,null,null]}'
//
// The batch endpoint answers up to 256 queries with ONE index traversal
// (shared HNSW descent, SIMD-batched scoring) and is the preferred face
// for bulk lookups; the single-query GET is a batch-of-1 through the
// same core.
//
// Inserts repair the embeddings incrementally at a cost proportional to
// the inserted rows, not the database, and batches share one repair:
//
//	curl -X POST localhost:8080/v1/insert -d '{"table":"movies","rows":[
//	  [9002,"second film",null,null,null,null,null,null],
//	  [9003,"third film",null,null,null,null,null,null]]}'
//
// Training is the expensive step, so trained state can be persisted and
// reused: -save-snapshot writes the retrofitted store plus the built
// HNSW graph to a versioned snapshot file after training, and -snapshot
// boots from such a file — skipping the solver and the index build
// entirely — for millisecond cold-starts:
//
//	retro-serve -data ./data -save-snapshot ./data/model.snap   # train once
//	retro-serve -data ./data -snapshot ./data/model.snap        # warm boots
//
// -data-dir goes further: it binds the server to a durable storage
// directory with a write-ahead log, delta checkpoints and a manifest.
// Every insert is fsynced to the WAL before it is acknowledged, periodic
// checkpoints (-checkpoint-interval) fold the log into O(delta) segment
// files, and a reboot — including after kill -9 — recovers exactly the
// acknowledged state:
//
//	retro-serve -data ./data -data-dir ./store -checkpoint-interval 30s
//	retro storage info -dir ./store     # inspect the manifest, segments and WAL
//
// Queries run lock-free against atomically published serving views (see
// internal/server), so reads never wait on an insert. -admin exposes the
// operator surface on a separate listener, kept off the serving address:
// Prometheus metrics at /metrics, the slow-query log at /debug/slowlog,
// readiness at /readyz, and net/http/pprof under /debug/pprof/:
//
//	retro-serve -data ./data -addr :8080 -admin localhost:6060
//	curl localhost:6060/metrics
//	curl 'localhost:6060/debug/slowlog?threshold=50ms'
//	go tool pprof http://localhost:6060/debug/pprof/profile?seconds=10
//
// Logs are structured (log/slog); -log-format json emits one JSON object
// per line for ingestion, -log-level debug enables the per-request log.
// The process shuts down gracefully on SIGINT/SIGTERM, draining both
// listeners before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	retro "github.com/retrodb/retro"
	"github.com/retrodb/retro/internal/dataset"
	"github.com/retrodb/retro/internal/repl"
	"github.com/retrodb/retro/internal/server"
)

// version is stamped into the retro_build_info metric; override at build
// time with -ldflags "-X main.version=...".
var version = "dev"

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "retro-serve:", err)
		os.Exit(1)
	}
}

// newLogger builds the process logger from the -log-level/-log-format
// flags.
func newLogger(level, format string) (*slog.Logger, error) {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("-log-level: %w", err)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	var h slog.Handler
	switch format {
	case "text":
		h = slog.NewTextHandler(os.Stderr, opts)
	case "json":
		h = slog.NewJSONHandler(os.Stderr, opts)
	default:
		return nil, fmt.Errorf("-log-format must be text or json, got %q", format)
	}
	return slog.New(h), nil
}

func run(args []string) error {
	fs := flag.NewFlagSet("retro-serve", flag.ExitOnError)
	data := fs.String("data", "", "dataset directory from 'retro generate' (required)")
	addr := fs.String("addr", ":8080", "listen address")
	variant := fs.String("variant", "rn", "solver: ro or rn")
	parallel := fs.Int("parallel", -1, "solver workers (-1 = all cores, 0 = sequential)")
	annThreshold := fs.Int("ann-threshold", 0, "vocabulary size that switches TopK to HNSW (0 = default, -1 = always exact)")
	annM := fs.Int("ann-m", 0, "HNSW links per node (0 = default 16)")
	annEfC := fs.Int("ann-efc", 0, "HNSW construction beam width (0 = default 200)")
	annEfS := fs.Int("ann-efs", 0, "HNSW search beam width (0 = default 64)")
	quantMode := fs.String("quant", "", "ANN distance kernel: sq8 = 8-bit quantized traversal with exact re-ranking, off = exact float64 (empty = off, or the snapshot's persisted mode when booting from one)")
	precision := fs.String("precision", "f32", "serving store precision: f32 halves the resident matrix (scores within 1e-6), f64 is the full-precision store; applies at training time, snapshots persist their own")
	rerank := fs.Int("rerank", 0, "SQ8 candidate over-fetch factor: rerank*k quantized candidates are re-scored exactly per query (0 = default 3)")
	cacheSize := fs.Int("cache", 1024, "LRU query cache entries (-1 disables)")
	repairBudget := fs.Int("repair-budget", retro.DefaultRepairBudget, "max nodes re-solved per insert repair (0 = unlimited)")
	snapshotPath := fs.String("snapshot", "", "boot from this snapshot file instead of training")
	saveSnapshot := fs.String("save-snapshot", "", "write a snapshot of the trained session to this file")
	dataDir := fs.String("data-dir", "", "durable storage directory (WAL + checkpoints + manifest): trains fresh when empty, recovers otherwise; excludes -snapshot/-save-snapshot")
	checkpointInterval := fs.Duration("checkpoint-interval", 0, "fold the WAL into a delta checkpoint this often (0 = only at shutdown; requires -data-dir)")
	walSyncEvery := fs.Int("wal-sync-every", 1, "fsync the WAL every N record appends (1 = group size one: every insert durable before its ack)")
	replicateFrom := fs.String("replicate-from", "", "primary base URL, e.g. http://primary:8080: boot as a read replica — sync the primary's storage into -data-dir, tail its WAL, reject writes (requires -data-dir)")
	maxReplicaLag := fs.Duration("max-replica-lag", 30*time.Second, "replica /readyz reports not-ready after this long without being caught up to the primary (negative = never gate on time)")
	maxReplicaLagSeqs := fs.Uint64("max-replica-lag-seqs", 0, "replica /readyz additionally reports not-ready when this many WAL records behind (0 = no seq gate)")
	maxBodyBytes := fs.Int64("max-body-bytes", server.DefaultMaxBodyBytes, "request-body cap on /v1/insert and /v1/neighbors/batch, in bytes (negative = unlimited)")
	adminAddr := fs.String("admin", "", "admin listen address for /metrics, /debug/slowlog, /readyz and pprof, e.g. localhost:6060 (empty = disabled)")
	pprofAddr := fs.String("pprof", "", "deprecated alias for -admin")
	slowQuery := fs.Duration("slow-query", 0, "slow-query log threshold (0 = default 100ms; retune live via /debug/slowlog?threshold=)")
	logLevel := fs.String("log-level", "info", "log level: debug, info, warn or error (debug enables the per-request log)")
	logFormat := fs.String("log-format", "text", "log format: text or json")
	shutdownGrace := fs.Duration("shutdown-grace", 10*time.Second, "drain timeout on SIGINT/SIGTERM")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *data == "" {
		return fmt.Errorf("-data is required")
	}
	log, err := newLogger(*logLevel, *logFormat)
	if err != nil {
		return err
	}
	if *adminAddr == "" {
		*adminAddr = *pprofAddr
	}
	if *dataDir != "" && (*snapshotPath != "" || *saveSnapshot != "") {
		return fmt.Errorf("-data-dir manages its own snapshots and cannot be combined with -snapshot or -save-snapshot")
	}
	if *checkpointInterval != 0 && *dataDir == "" {
		return fmt.Errorf("-checkpoint-interval requires -data-dir")
	}
	if *checkpointInterval < 0 {
		return fmt.Errorf("-checkpoint-interval must not be negative")
	}
	if *replicateFrom != "" && *dataDir == "" {
		return fmt.Errorf("-replicate-from requires -data-dir (the replica mirrors the primary's storage there)")
	}

	// The signal context is established before boot: a replica's initial
	// sync can block on an unreachable primary, and Ctrl-C must interrupt
	// it the same way it interrupts serving.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	bootStart := time.Now()
	db, emb, err := dataset.LoadDir(*data)
	if err != nil {
		return err
	}

	// buildCfg assembles the training configuration from the solver and
	// ANN flags; it applies when a session is trained in-process — fresh
	// or as the first boot of an empty -data-dir.
	buildCfg := func() (retro.Config, error) {
		cfg := retro.Defaults()
		if *variant == "ro" {
			cfg.Variant = retro.RO
		}
		cfg.Parallel = *parallel
		cfg.ANNThreshold = *annThreshold
		cfg.ANNParams = &retro.ANNParams{M: *annM, EfConstruction: *annEfC, EfSearch: *annEfS}
		if *quantMode != "" {
			mode, err := retro.ParseQuantMode(*quantMode)
			if err != nil {
				return cfg, err
			}
			cfg.Quantization = mode
			cfg.RerankFactor = *rerank
		}
		p, err := retro.ParsePrecision(*precision)
		if err != nil {
			return cfg, err
		}
		cfg.Precision = p
		return cfg, nil
	}

	var sess *retro.Session
	var engine *retro.StorageEngine
	var follower *repl.Follower
	origin := &server.Origin{Source: "trained"}
	if *replicateFrom != "" {
		cfg, err := buildCfg()
		if err != nil {
			return err
		}
		// The first (re-)sync consumes the dataset already loaded above;
		// later re-syncs reload it fresh — recovery replays segment rows
		// into the database it is given, so a copy that already absorbed a
		// replay cannot be reused.
		usedPreloaded := false
		loadFresh := func() (*retro.DB, *retro.Embedding, error) {
			if !usedPreloaded {
				usedPreloaded = true
				return db, emb, nil
			}
			return dataset.LoadDir(*data)
		}
		follower, err = repl.NewFollower(repl.Config{
			Primary: *replicateFrom,
			Dir:     *dataDir,
			Dataset: loadFresh,
			Storage: retro.StorageOptions{Config: cfg, SyncEvery: *walSyncEvery},
			MaxLag:  *maxReplicaLag, MaxLagSeqs: *maxReplicaLagSeqs,
			Logger: log,
		})
		if err != nil {
			return err
		}
		start := time.Now()
		log.Info("bootstrapping replica", "primary", *replicateFrom, "dir", *dataDir)
		if err := follower.Bootstrap(ctx); err != nil {
			return fmt.Errorf("replica bootstrap: %w", err)
		}
		engine = follower.Engine()
		sess = engine.Session()
		origin = &server.Origin{Source: "replica", Path: *dataDir}
		log.Info("replica ready",
			"primary", *replicateFrom, "applied_seq", engine.WALSeq(),
			"values", sess.Model().NumValues(),
			"elapsed", time.Since(start).Round(time.Millisecond))
	} else if *dataDir != "" {
		cfg, err := buildCfg()
		if err != nil {
			return err
		}
		start := time.Now()
		engine, err = retro.OpenStorage(*dataDir, db, emb, retro.StorageOptions{
			Config: cfg, SyncEvery: *walSyncEvery,
		})
		if err != nil {
			return err
		}
		sess = engine.Session()
		st := engine.Stats()
		origin = &server.Origin{Source: "storage", Path: *dataDir}
		log.Info("storage engine ready",
			"dir", *dataDir, "epoch", st.Epoch, "segments", st.Segments,
			"replayed_records", st.ReplayedRecords, "replayed_rows", st.ReplayedRows,
			"wal_truncated", st.WALTruncated,
			"values", sess.Model().NumValues(),
			"elapsed", time.Since(start).Round(time.Millisecond))
	} else if *snapshotPath != "" {
		start := time.Now()
		f, err := os.Open(*snapshotPath)
		if err != nil {
			return fmt.Errorf("opening snapshot: %w", err)
		}
		sess, err = retro.ResumeSession(db, emb, f)
		f.Close()
		if err != nil {
			return err
		}
		info := sess.Model().SnapshotInfo()
		origin = &server.Origin{
			Source:        "snapshot",
			Path:          *snapshotPath,
			Created:       info.Created,
			FormatVersion: info.Version,
			Fingerprint:   info.Fingerprint,
		}
		log.Info("resumed from snapshot",
			"values", sess.Model().NumValues(), "path", *snapshotPath,
			"format_version", info.Version,
			"written", info.Created.UTC().Format(time.RFC3339),
			"elapsed", time.Since(start).Round(time.Millisecond))
		// Graph-shape knobs are baked into the snapshot; only the
		// query-time knobs — beam width, quantization mode and re-rank
		// depth — can be retuned without a rebuild. Switching -quant on a
		// snapshot that persisted a different mode retrains the codes
		// from the loaded vectors (the graph itself is untouched).
		if *annEfS > 0 {
			sess.Model().Store().TuneEfSearch(*annEfS)
			log.Info("HNSW query beam width set", "ef_search", *annEfS)
		}
		if *quantMode != "" {
			mode, err := retro.ParseQuantMode(*quantMode)
			if err != nil {
				return err
			}
			sess.Model().Store().EnableQuantization(mode, *rerank)
			log.Info("ANN quantization set", "mode", mode)
		} else if *rerank > 0 {
			sess.Model().Store().TuneRerank(*rerank)
			log.Info("SQ8 re-rank depth set", "rerank", *rerank)
		}
		if *variant != "rn" || *parallel != -1 || *annThreshold != 0 || *annM != 0 || *annEfC != 0 || *precision != "f32" {
			log.Warn("-variant, -parallel, -ann-threshold, -ann-m, -ann-efc and -precision apply at training time; the snapshot's persisted configuration is used")
		}
	} else {
		cfg, err := buildCfg()
		if err != nil {
			return err
		}

		log.Info("training",
			"solver", *variant, "tables", db.NumTables(),
			"base_words", emb.Len(), "dim", emb.Dim())
		start := time.Now()
		sess, err = retro.NewSession(db, emb, cfg)
		if err != nil {
			return err
		}
		log.Info("retrofit complete",
			"values", sess.Model().NumValues(),
			"elapsed", time.Since(start).Round(time.Millisecond))
	}
	sess.RepairBudget = *repairBudget
	start := time.Now()
	sess.Model().Store().WarmANN()
	if idx := sess.Model().Store().ANNIndex(); idx != nil {
		log.Info("HNSW index ready", "elapsed", time.Since(start).Round(time.Millisecond))
		if idx.Quantized() {
			log.Info("SQ8 quantized traversal active", "rerank", idx.Rerank())
		}
	}
	if *saveSnapshot != "" {
		start := time.Now()
		if err := sess.WriteSnapshotFile(*saveSnapshot); err != nil {
			return err
		}
		log.Info("snapshot written", "path", *saveSnapshot,
			"elapsed", time.Since(start).Round(time.Millisecond))
	}

	srvCfg := server.Config{
		CacheSize:          *cacheSize,
		Origin:             origin,
		Logger:             log,
		SlowQueryThreshold: *slowQuery,
		Version:            version,
		Engine:             engine,
		MaxBodyBytes:       *maxBodyBytes,
	}
	if follower != nil {
		srvCfg.ReadOnly = true
		srvCfg.Replica = follower.Status
	}
	srv := server.New(sess, srvCfg)
	followerDone := make(chan struct{})
	if follower != nil {
		// Replicated batches flow through the server's write path (commit,
		// repair, view publish); a re-sync hands the server a replacement
		// engine the same way, with the repair budget re-applied to the
		// fresh session.
		follower.Attach(srv.ApplyReplicated, func(eng *retro.StorageEngine) {
			eng.Session().RepairBudget = *repairBudget
			srv.ReplaceEngine(eng)
		})
		go func() {
			follower.Run(ctx)
			close(followerDone)
		}()
	} else {
		close(followerDone)
	}
	bootDur := time.Since(bootStart)
	srv.Metrics().GaugeFunc("retro_boot_duration_seconds",
		"Time from process start to the server being constructed (load + train/resume + warm).",
		"", bootDur.Seconds)
	// ReadHeaderTimeout bounds how long an idle connection may dribble
	// headers (slowloris); IdleTimeout reaps parked keep-alives. No
	// ReadTimeout/WriteTimeout: replication long-polls legitimately hold
	// a response open for tens of seconds.
	httpSrv := &http.Server{
		Addr: *addr, Handler: srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       120 * time.Second,
	}

	// The operator surface lives on its own admin listener, never on the
	// serving address: pprof handlers can hold the CPU for seconds and
	// must not be reachable from (or compete with) query traffic, and
	// /metrics + /debug/slowlog follow them there.
	var adminSrv *http.Server
	adminErr := make(chan error, 1)
	if *adminAddr != "" {
		adminMux := http.NewServeMux()
		adminMux.Handle("/", srv.AdminHandler())
		adminMux.HandleFunc("/debug/pprof/", pprof.Index)
		adminMux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		adminMux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		adminMux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		adminMux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		adminSrv = &http.Server{
			Addr: *adminAddr, Handler: adminMux,
			ReadHeaderTimeout: 10 * time.Second,
			IdleTimeout:       120 * time.Second,
		}
		go func() {
			log.Info("admin listening", "addr", *adminAddr)
			adminErr <- adminSrv.ListenAndServe()
		}()
	}

	// The checkpoint loop bounds replay time after a crash: each tick
	// folds the WAL's tail into an O(delta) segment under the server's
	// write lock, queries unaffected. A failed checkpoint is logged and
	// retried next tick — the WAL still holds everything.
	if engine != nil && *checkpointInterval > 0 {
		go func() {
			ticker := time.NewTicker(*checkpointInterval)
			defer ticker.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-ticker.C:
					st, err := srv.Checkpoint()
					switch {
					case err != nil:
						log.Error("checkpoint failed", "error", err)
					case !st.Skipped:
						log.Info("checkpoint",
							"epoch", st.Epoch, "rows", st.Rows, "vectors", st.Vectors,
							"bytes", st.Bytes, "compacted", st.Compacted,
							"elapsed", st.Duration.Round(time.Millisecond))
					}
				}
			}
		}()
	}

	serveErr := make(chan error, 1)
	go func() {
		log.Info("serving", "addr", *addr, "boot_elapsed", bootDur.Round(time.Millisecond))
		serveErr <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-serveErr:
		return err
	case err := <-adminErr:
		// The admin listener failing (port clash, fd exhaustion) is a
		// deployment error; surface it instead of serving half-blind.
		return fmt.Errorf("admin listener: %w", err)
	case <-ctx.Done():
	}
	stop()
	log.Info("shutting down", "grace", *shutdownGrace)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *shutdownGrace)
	defer cancel()
	// Both listeners drain under the same deadline; their serve
	// goroutines are then joined so no exit path abandons a listener.
	var shutdownErr error
	if adminSrv != nil {
		if err := adminSrv.Shutdown(shutdownCtx); err != nil {
			shutdownErr = fmt.Errorf("admin shutdown: %w", err)
		}
	}
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && shutdownErr == nil {
		shutdownErr = fmt.Errorf("shutdown: %w", err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) && shutdownErr == nil {
		shutdownErr = err
	}
	if adminSrv != nil {
		if err := <-adminErr; err != nil && !errors.Is(err, http.ErrServerClosed) && shutdownErr == nil {
			shutdownErr = fmt.Errorf("admin listener: %w", err)
		}
	}
	// A replica's tail loop exits once the signal context is cancelled;
	// join it so no apply races the storage teardown below.
	<-followerDone
	// With the listeners drained no writer is in flight: take a final
	// checkpoint so the next boot replays an empty log, then release the
	// WAL. Failures leave the log as the source of truth — recovery
	// replays it — so they are reported but cost no durability. The
	// engine is re-resolved through the server: a replica re-sync may
	// have swapped in a successor since boot.
	if cur := srv.Engine(); cur != nil {
		if st, err := srv.Checkpoint(); err != nil {
			log.Error("final checkpoint failed (the WAL remains authoritative)", "error", err)
			if shutdownErr == nil {
				shutdownErr = fmt.Errorf("final checkpoint: %w", err)
			}
		} else if !st.Skipped {
			log.Info("final checkpoint", "epoch", st.Epoch, "rows", st.Rows,
				"elapsed", st.Duration.Round(time.Millisecond))
		}
		if err := cur.Close(); err != nil && shutdownErr == nil {
			shutdownErr = fmt.Errorf("closing storage: %w", err)
		}
	}
	if shutdownErr != nil {
		return shutdownErr
	}
	log.Info("bye")
	return nil
}
