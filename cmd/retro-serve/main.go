// Command retro-serve is the embedding serving daemon: it loads a dataset
// directory (CSV tables + base embedding, the layout written by `retro
// generate`), retrofits the relational embeddings, and serves them over
// HTTP with HNSW-accelerated similarity search.
//
//	retro generate -dataset tmdb -out ./data -movies 2000
//	retro-serve -data ./data -addr :8080
//
//	curl 'localhost:8080/v1/neighbors?table=movies&column=title&text=alien+autumn&k=5'
//	curl -X POST localhost:8080/v1/insert -d '{"table":"movies","values":[9001,"new film",null,null,null,null,null,null]}'
//
// The process shuts down gracefully on SIGINT/SIGTERM, draining in-flight
// requests before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	retro "github.com/retrodb/retro"
	"github.com/retrodb/retro/internal/dataset"
	"github.com/retrodb/retro/internal/server"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "retro-serve:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("retro-serve", flag.ExitOnError)
	data := fs.String("data", "", "dataset directory from 'retro generate' (required)")
	addr := fs.String("addr", ":8080", "listen address")
	variant := fs.String("variant", "rn", "solver: ro or rn")
	parallel := fs.Int("parallel", -1, "solver workers (-1 = all cores, 0 = sequential)")
	annThreshold := fs.Int("ann-threshold", 0, "vocabulary size that switches TopK to HNSW (0 = default, -1 = always exact)")
	annM := fs.Int("ann-m", 0, "HNSW links per node (0 = default 16)")
	annEfC := fs.Int("ann-efc", 0, "HNSW construction beam width (0 = default 200)")
	annEfS := fs.Int("ann-efs", 0, "HNSW search beam width (0 = default 64)")
	cacheSize := fs.Int("cache", 1024, "LRU query cache entries (-1 disables)")
	shutdownGrace := fs.Duration("shutdown-grace", 10*time.Second, "drain timeout on SIGINT/SIGTERM")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *data == "" {
		return fmt.Errorf("-data is required")
	}

	db, emb, err := dataset.LoadDir(*data)
	if err != nil {
		return err
	}
	cfg := retro.Defaults()
	if *variant == "ro" {
		cfg.Variant = retro.RO
	}
	cfg.Parallel = *parallel
	cfg.ANNThreshold = *annThreshold
	cfg.ANNParams = &retro.ANNParams{M: *annM, EfConstruction: *annEfC, EfSearch: *annEfS}

	fmt.Printf("training %s solver on %d tables (base embedding: %d words, %d dims)...\n",
		*variant, db.NumTables(), emb.Len(), emb.Dim())
	start := time.Now()
	sess, err := retro.NewSession(db, emb, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("retrofitted %d text values in %s\n", sess.Model().NumValues(), time.Since(start).Round(time.Millisecond))
	start = time.Now()
	sess.Model().Store().WarmANN()
	if sess.Model().Store().ANNIndex() != nil {
		fmt.Printf("HNSW index warmed in %s\n", time.Since(start).Round(time.Millisecond))
	}

	srv := server.New(sess, server.Config{CacheSize: *cacheSize})
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() {
		fmt.Printf("serving on %s\n", *addr)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop()
	fmt.Println("shutting down...")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *shutdownGrace)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Println("bye")
	return nil
}
