// Command retro-serve is the embedding serving daemon: it loads a dataset
// directory (CSV tables + base embedding, the layout written by `retro
// generate`), retrofits the relational embeddings, and serves them over
// HTTP with HNSW-accelerated similarity search.
//
//	retro generate -dataset tmdb -out ./data -movies 2000
//	retro-serve -data ./data -addr :8080
//
//	curl 'localhost:8080/v1/neighbors?table=movies&column=title&text=alien+autumn&k=5'
//	curl -X POST localhost:8080/v1/insert -d '{"table":"movies","values":[9001,"new film",null,null,null,null,null,null]}'
//
// Inserts repair the embeddings incrementally at a cost proportional to
// the inserted rows, not the database, and batches share one repair:
//
//	curl -X POST localhost:8080/v1/insert -d '{"table":"movies","rows":[
//	  [9002,"second film",null,null,null,null,null,null],
//	  [9003,"third film",null,null,null,null,null,null]]}'
//
// Training is the expensive step, so trained state can be persisted and
// reused: -save-snapshot writes the retrofitted store plus the built
// HNSW graph to a versioned snapshot file after training, and -snapshot
// boots from such a file — skipping the solver and the index build
// entirely — for millisecond cold-starts:
//
//	retro-serve -data ./data -save-snapshot ./data/model.snap   # train once
//	retro-serve -data ./data -snapshot ./data/model.snap        # warm boots
//
// Queries run lock-free against atomically published serving views (see
// internal/server), so reads never wait on an insert. -pprof exposes
// net/http/pprof on a separate admin port, kept off the serving
// listener:
//
//	retro-serve -data ./data -addr :8080 -pprof localhost:6060
//	go tool pprof http://localhost:6060/debug/pprof/profile?seconds=10
//
// The process shuts down gracefully on SIGINT/SIGTERM, draining in-flight
// requests before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	retro "github.com/retrodb/retro"
	"github.com/retrodb/retro/internal/dataset"
	"github.com/retrodb/retro/internal/server"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "retro-serve:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("retro-serve", flag.ExitOnError)
	data := fs.String("data", "", "dataset directory from 'retro generate' (required)")
	addr := fs.String("addr", ":8080", "listen address")
	variant := fs.String("variant", "rn", "solver: ro or rn")
	parallel := fs.Int("parallel", -1, "solver workers (-1 = all cores, 0 = sequential)")
	annThreshold := fs.Int("ann-threshold", 0, "vocabulary size that switches TopK to HNSW (0 = default, -1 = always exact)")
	annM := fs.Int("ann-m", 0, "HNSW links per node (0 = default 16)")
	annEfC := fs.Int("ann-efc", 0, "HNSW construction beam width (0 = default 200)")
	annEfS := fs.Int("ann-efs", 0, "HNSW search beam width (0 = default 64)")
	quantMode := fs.String("quant", "", "ANN distance kernel: sq8 = 8-bit quantized traversal with exact re-ranking, off = exact float64 (empty = off, or the snapshot's persisted mode when booting from one)")
	rerank := fs.Int("rerank", 0, "SQ8 candidate over-fetch factor: rerank*k quantized candidates are re-scored exactly per query (0 = default 3)")
	cacheSize := fs.Int("cache", 1024, "LRU query cache entries (-1 disables)")
	repairBudget := fs.Int("repair-budget", retro.DefaultRepairBudget, "max nodes re-solved per insert repair (0 = unlimited)")
	snapshotPath := fs.String("snapshot", "", "boot from this snapshot file instead of training")
	saveSnapshot := fs.String("save-snapshot", "", "write a snapshot of the trained session to this file")
	pprofAddr := fs.String("pprof", "", "admin listen address for net/http/pprof, e.g. localhost:6060 (empty = disabled)")
	shutdownGrace := fs.Duration("shutdown-grace", 10*time.Second, "drain timeout on SIGINT/SIGTERM")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *data == "" {
		return fmt.Errorf("-data is required")
	}

	db, emb, err := dataset.LoadDir(*data)
	if err != nil {
		return err
	}

	var sess *retro.Session
	origin := &server.Origin{Source: "trained"}
	if *snapshotPath != "" {
		start := time.Now()
		f, err := os.Open(*snapshotPath)
		if err != nil {
			return fmt.Errorf("opening snapshot: %w", err)
		}
		sess, err = retro.ResumeSession(db, emb, f)
		f.Close()
		if err != nil {
			return err
		}
		info := sess.Model().SnapshotInfo()
		origin = &server.Origin{
			Source:        "snapshot",
			Path:          *snapshotPath,
			Created:       info.Created,
			FormatVersion: info.Version,
			Fingerprint:   info.Fingerprint,
		}
		fmt.Printf("resumed %d text values from snapshot %s (format v%d, written %s) in %s\n",
			sess.Model().NumValues(), *snapshotPath, info.Version,
			info.Created.UTC().Format(time.RFC3339), time.Since(start).Round(time.Millisecond))
		// Graph-shape knobs are baked into the snapshot; only the
		// query-time knobs — beam width, quantization mode and re-rank
		// depth — can be retuned without a rebuild. Switching -quant on a
		// snapshot that persisted a different mode retrains the codes
		// from the loaded vectors (the graph itself is untouched).
		if *annEfS > 0 {
			sess.Model().Store().TuneEfSearch(*annEfS)
			fmt.Printf("HNSW query beam width set to %d\n", *annEfS)
		}
		if *quantMode != "" {
			mode, err := retro.ParseQuantMode(*quantMode)
			if err != nil {
				return err
			}
			sess.Model().Store().EnableQuantization(mode, *rerank)
			fmt.Printf("ANN quantization set to %s\n", mode)
		} else if *rerank > 0 {
			sess.Model().Store().TuneRerank(*rerank)
			fmt.Printf("SQ8 re-rank depth set to %d\n", *rerank)
		}
		if *variant != "rn" || *parallel != -1 || *annThreshold != 0 || *annM != 0 || *annEfC != 0 {
			fmt.Println("note: -variant, -parallel, -ann-threshold, -ann-m and -ann-efc apply at training time; the snapshot's persisted configuration is used")
		}
	} else {
		cfg := retro.Defaults()
		if *variant == "ro" {
			cfg.Variant = retro.RO
		}
		cfg.Parallel = *parallel
		cfg.ANNThreshold = *annThreshold
		cfg.ANNParams = &retro.ANNParams{M: *annM, EfConstruction: *annEfC, EfSearch: *annEfS}
		if *quantMode != "" {
			mode, err := retro.ParseQuantMode(*quantMode)
			if err != nil {
				return err
			}
			cfg.Quantization = mode
			cfg.RerankFactor = *rerank
		}

		fmt.Printf("training %s solver on %d tables (base embedding: %d words, %d dims)...\n",
			*variant, db.NumTables(), emb.Len(), emb.Dim())
		start := time.Now()
		sess, err = retro.NewSession(db, emb, cfg)
		if err != nil {
			return err
		}
		fmt.Printf("retrofitted %d text values in %s\n", sess.Model().NumValues(), time.Since(start).Round(time.Millisecond))
	}
	sess.RepairBudget = *repairBudget
	start := time.Now()
	sess.Model().Store().WarmANN()
	if idx := sess.Model().Store().ANNIndex(); idx != nil {
		fmt.Printf("HNSW index ready in %s\n", time.Since(start).Round(time.Millisecond))
		if idx.Quantized() {
			fmt.Printf("SQ8 quantized traversal active (re-rank depth %d)\n", idx.Rerank())
		}
	}
	if *saveSnapshot != "" {
		start := time.Now()
		if err := sess.WriteSnapshotFile(*saveSnapshot); err != nil {
			return err
		}
		fmt.Printf("snapshot written to %s in %s\n", *saveSnapshot, time.Since(start).Round(time.Millisecond))
	}

	srv := server.New(sess, server.Config{CacheSize: *cacheSize, Origin: origin})
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	// The profiling endpoints live on their own admin listener, never on
	// the serving address: pprof handlers can hold the CPU for seconds
	// and must not be reachable from (or compete with) query traffic.
	var adminSrv *http.Server
	if *pprofAddr != "" {
		adminMux := http.NewServeMux()
		adminMux.HandleFunc("/debug/pprof/", pprof.Index)
		adminMux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		adminMux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		adminMux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		adminMux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		adminSrv = &http.Server{Addr: *pprofAddr, Handler: adminMux}
		go func() {
			fmt.Printf("pprof admin on http://%s/debug/pprof/\n", *pprofAddr)
			if err := adminSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintln(os.Stderr, "retro-serve: pprof listener:", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() {
		fmt.Printf("serving on %s\n", *addr)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop()
	fmt.Println("shutting down...")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *shutdownGrace)
	defer cancel()
	if adminSrv != nil {
		_ = adminSrv.Shutdown(shutdownCtx)
	}
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Println("bye")
	return nil
}
