// Command promcheck validates a Prometheus text-format exposition: it
// parses every line and enforces the structural invariants a scraper
// relies on (HELP/TYPE headers, no duplicate series, histogram bucket
// monotonicity and _sum/_count consistency, non-negative counters).
//
//	curl -s localhost:6060/metrics | promcheck
//	promcheck metrics.txt
//
// Exits 0 on a valid exposition, 1 on a malformed one (with the first
// violation on stderr). The CI scrape-smoke job runs it against a live
// retro-serve /metrics endpoint.
package main

import (
	"fmt"
	"io"
	"os"

	"github.com/retrodb/retro/internal/obs"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "promcheck:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	var in io.Reader = os.Stdin
	name := "<stdin>"
	switch len(args) {
	case 0:
	case 1:
		f, err := os.Open(args[0])
		if err != nil {
			return err
		}
		defer f.Close()
		in, name = f, args[0]
	default:
		return fmt.Errorf("usage: promcheck [exposition-file] (default: stdin)")
	}
	if err := obs.ValidateExposition(in); err != nil {
		return fmt.Errorf("%s: %w", name, err)
	}
	fmt.Printf("%s: valid Prometheus exposition\n", name)
	return nil
}
