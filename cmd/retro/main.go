// Command retro trains and queries relational embeddings.
//
// Subcommands:
//
//	generate -dataset tmdb|gplay -out DIR [-movies N] [-apps N] [-dim D] [-seed S]
//	    write a synthetic dataset as CSV files plus its base embedding
//	train    -data DIR -out FILE [-variant ro|rn] [-alpha A -beta B -gamma G -delta D] [-iters N]
//	    import the CSV directory, retrofit, write the embedding (binary)
//	query    -model FILE -key 'table.column:text' [-k N]
//	    nearest neighbours of a trained value embedding
//	info     -data DIR
//	    print the imported schema and extraction statistics
//	snapshot save  -data DIR -out FILE [-variant ro|rn] [-parallel N]
//	    train and persist the full session (store + HNSW graph) as a
//	    versioned snapshot for warm-starting retro-serve
//	snapshot info  -in FILE
//	    print a snapshot's header and provenance
//	snapshot query -in FILE -key 'table.column:text' [-k N]
//	    nearest neighbours served from a snapshot, no retraining
//	storage info -dir DIR
//	    inspect a retro-serve -data-dir directory: manifest, base
//	    snapshot, delta segments and the WAL's replay tail
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	retro "github.com/retrodb/retro"
	"github.com/retrodb/retro/internal/datagen"
	"github.com/retrodb/retro/internal/dataset"
	"github.com/retrodb/retro/internal/reldb"
	"github.com/retrodb/retro/internal/storage"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "generate":
		err = cmdGenerate(os.Args[2:])
	case "train":
		err = cmdTrain(os.Args[2:])
	case "query":
		err = cmdQuery(os.Args[2:])
	case "info":
		err = cmdInfo(os.Args[2:])
	case "snapshot":
		err = cmdSnapshot(os.Args[2:])
	case "storage":
		err = cmdStorage(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "retro:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: retro <generate|train|query|info|snapshot|storage> [flags]
run "retro <subcommand> -h" for the flags of each subcommand`)
}

func cmdGenerate(args []string) error {
	fs := flag.NewFlagSet("generate", flag.ExitOnError)
	dataset := fs.String("dataset", "tmdb", "tmdb or gplay")
	out := fs.String("out", "", "output directory (required)")
	movies := fs.Int("movies", 300, "TMDB size")
	apps := fs.Int("apps", 300, "Google Play size")
	dim := fs.Int("dim", 48, "embedding dimensionality")
	seed := fs.Int64("seed", 1, "generator seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("generate: -out is required")
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}
	var db *reldb.DB
	var emb *retro.Embedding
	switch *dataset {
	case "tmdb":
		w := datagen.TMDB(datagen.TMDBConfig{Movies: *movies, Dim: *dim, Seed: *seed})
		db, emb = w.DB, w.Embedding
	case "gplay":
		w := datagen.GooglePlay(datagen.GooglePlayConfig{Apps: *apps, Dim: *dim, Seed: *seed})
		db, emb = w.DB, w.Embedding
	default:
		return fmt.Errorf("generate: unknown dataset %q", *dataset)
	}
	for _, t := range db.Tables() {
		f, err := os.Create(filepath.Join(*out, t.Name+".csv"))
		if err != nil {
			return err
		}
		if err := t.ExportCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	f, err := os.Create(filepath.Join(*out, "embedding.bin"))
	if err != nil {
		return err
	}
	defer f.Close()
	if err := emb.WriteBinary(f); err != nil {
		return err
	}
	fmt.Printf("wrote %d tables + embedding (%d words, %d dims) to %s\n",
		db.NumTables(), emb.Len(), emb.Dim(), *out)
	return nil
}

// loadDir imports the `retro generate` layout via the shared loader.
func loadDir(dir string) (*retro.DB, *retro.Embedding, error) {
	return dataset.LoadDir(dir)
}

func cmdTrain(args []string) error {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	data := fs.String("data", "", "dataset directory from 'retro generate' (required)")
	out := fs.String("out", "", "output embedding file (required)")
	variant := fs.String("variant", "rn", "ro or rn")
	alpha := fs.Float64("alpha", -1, "alpha (default: paper setting)")
	beta := fs.Float64("beta", -1, "beta")
	gamma := fs.Float64("gamma", -1, "gamma")
	delta := fs.Float64("delta", -1, "delta")
	iters := fs.Int("iters", 10, "iterations")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *data == "" || *out == "" {
		return fmt.Errorf("train: -data and -out are required")
	}
	db, emb, err := loadDir(*data)
	if err != nil {
		return err
	}
	cfg := retro.Defaults()
	if *variant == "ro" {
		cfg.Variant = retro.RO
	}
	if *alpha >= 0 && *beta >= 0 && *gamma >= 0 && *delta >= 0 {
		cfg.Hyperparams = &retro.Hyperparams{Alpha: *alpha, Beta: *beta, Gamma: *gamma, Delta: *delta, Iterations: *iters}
	}
	model, err := retro.Retrofit(db, emb, cfg)
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := model.Store().WriteBinary(f); err != nil {
		return err
	}
	fmt.Printf("retrofitted %d text values (%s solver) -> %s\n", model.NumValues(), *variant, *out)
	return nil
}

func cmdQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	modelPath := fs.String("model", "", "trained embedding file (required)")
	key := fs.String("key", "", "'table.column:text' to look up (required)")
	k := fs.Int("k", 5, "number of neighbours")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *modelPath == "" || *key == "" {
		return fmt.Errorf("query: -model and -key are required")
	}
	parts := strings.SplitN(*key, ":", 2)
	if len(parts) != 2 {
		return fmt.Errorf("query: key must be 'table.column:text'")
	}
	f, err := os.Open(*modelPath)
	if err != nil {
		return err
	}
	defer f.Close()
	store, err := retro.ReadBinaryEmbedding(f)
	if err != nil {
		return err
	}
	storeKey := parts[0] + "\x00" + parts[1]
	v, ok := store.VectorOf(storeKey)
	if !ok {
		return fmt.Errorf("query: no value %q in %s", parts[1], parts[0])
	}
	selfID, _ := store.ID(storeKey)
	for _, m := range store.TopK(v, *k, func(id int) bool { return id == selfID }) {
		col, text, _ := strings.Cut(m.Word, "\x00")
		fmt.Printf("%.4f  %-28s %s\n", m.Score, col, text)
	}
	return nil
}

func cmdSnapshot(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("snapshot: usage: retro snapshot <save|info|query> [flags]")
	}
	switch args[0] {
	case "save":
		return cmdSnapshotSave(args[1:])
	case "info":
		return cmdSnapshotInfo(args[1:])
	case "query":
		return cmdSnapshotQuery(args[1:])
	default:
		return fmt.Errorf("snapshot: unknown subcommand %q (want save, info or query)", args[0])
	}
}

func cmdSnapshotSave(args []string) error {
	fs := flag.NewFlagSet("snapshot save", flag.ExitOnError)
	data := fs.String("data", "", "dataset directory from 'retro generate' (required)")
	out := fs.String("out", "", "output snapshot file (required)")
	variant := fs.String("variant", "rn", "ro or rn")
	parallel := fs.Int("parallel", -1, "solver workers (-1 = all cores, 0 = sequential)")
	annThreshold := fs.Int("ann-threshold", 0, "vocabulary size that switches TopK to HNSW (0 = default, -1 = always exact)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *data == "" || *out == "" {
		return fmt.Errorf("snapshot save: -data and -out are required")
	}
	db, emb, err := loadDir(*data)
	if err != nil {
		return err
	}
	cfg := retro.Defaults()
	if *variant == "ro" {
		cfg.Variant = retro.RO
	}
	cfg.Parallel = *parallel
	cfg.ANNThreshold = *annThreshold
	sess, err := retro.NewSession(db, emb, cfg)
	if err != nil {
		return err
	}
	// Build the index now so the snapshot carries the graph and warm
	// boots skip construction too.
	sess.Model().Store().WarmANN()
	if err := sess.WriteSnapshotFile(*out); err != nil {
		return fmt.Errorf("snapshot save: %w", err)
	}
	withIndex := ""
	if sess.Model().Store().ANNIndex() != nil {
		withIndex = " + HNSW graph"
	}
	fmt.Printf("snapshot of %d text values%s written to %s\n", sess.Model().NumValues(), withIndex, *out)
	return nil
}

func cmdSnapshotInfo(args []string) error {
	fs := flag.NewFlagSet("snapshot info", flag.ExitOnError)
	in := fs.String("in", "", "snapshot file (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("snapshot info: -in is required")
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	info, err := retro.ReadSnapshotInfo(f)
	if err != nil {
		return err
	}
	variant := "rn"
	if info.Variant == retro.RO {
		variant = "ro"
	}
	fmt.Printf("format version: %d\n", info.Version)
	fmt.Printf("created:        %s\n", info.Created.UTC().Format("2006-01-02 15:04:05 MST"))
	fmt.Printf("fingerprint:    %016x\n", info.Fingerprint)
	fmt.Printf("values:         %d (%d dims)\n", info.NumValues, info.Dim)
	fmt.Printf("solver:         %s (alpha=%g beta=%g gamma=%g delta=%g iters=%d)\n", variant,
		info.Hyperparams.Alpha, info.Hyperparams.Beta, info.Hyperparams.Gamma,
		info.Hyperparams.Delta, info.Hyperparams.Iterations)
	fmt.Printf("hnsw graph:     %v\n", info.HasIndex)
	if info.Quantization == retro.QuantSQ8 {
		fmt.Printf("quantization:   %s (rerank %d)\n", info.Quantization, info.Rerank)
	} else {
		fmt.Printf("quantization:   off\n")
	}
	fmt.Printf("columns:        %s\n", strings.Join(info.Categories, ", "))
	if len(info.ExcludeColumns) > 0 {
		fmt.Printf("excl. columns:  %s\n", strings.Join(info.ExcludeColumns, ", "))
	}
	if len(info.ExcludeRelations) > 0 {
		fmt.Printf("excl. relations: %s\n", strings.Join(info.ExcludeRelations, ", "))
	}
	return nil
}

func cmdStorage(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("storage: usage: retro storage info [flags]")
	}
	switch args[0] {
	case "info":
		return cmdStorageInfo(args[1:])
	default:
		return fmt.Errorf("storage: unknown subcommand %q (want info)", args[0])
	}
}

// cmdStorageInfo prints what a recovery of the directory would see: the
// manifest, the base snapshot it starts from, the delta segments it
// replays, and the WAL tail past the last checkpoint. Read-only — safe
// on a directory a live server is writing (a checkpoint racing the scan
// can at worst make the WAL line reflect the pre-rotation log).
func cmdStorageInfo(args []string) error {
	fs := flag.NewFlagSet("storage info", flag.ExitOnError)
	dir := fs.String("dir", "", "storage directory from 'retro-serve -data-dir' (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("storage info: -dir is required")
	}
	man, err := storage.ReadManifest(*dir)
	if err != nil {
		return fmt.Errorf("storage info: %w", err)
	}
	fmt.Printf("manifest:       epoch %d, checkpointed through wal seq %d\n", man.Epoch, man.WALSeq)

	basePath := filepath.Join(*dir, man.Base)
	baseLine := man.Base
	if fi, err := os.Stat(basePath); err == nil {
		baseLine += fmt.Sprintf("  (%d bytes)", fi.Size())
	}
	fmt.Printf("base:           %s\n", baseLine)
	if f, err := os.Open(basePath); err == nil {
		if info, err := retro.ReadSnapshotInfo(f); err == nil {
			fmt.Printf("                %d values, %d dims, format v%d, written %s\n",
				info.NumValues, info.Dim, info.Version,
				info.Created.UTC().Format("2006-01-02 15:04:05 MST"))
		}
		f.Close()
	}

	fmt.Printf("segments:       %d\n", len(man.Segments))
	for _, name := range man.Segments {
		info, err := storage.ReadSegmentInfo(filepath.Join(*dir, name))
		if err != nil {
			fmt.Printf("  %-18s UNREADABLE: %v\n", name, err)
			continue
		}
		fmt.Printf("  %-18s epochs [%d,%d)  %4d rows  %4d vectors  %8d bytes\n",
			name, info.FromEpoch, info.ToEpoch, info.Rows, info.Vectors, info.Bytes)
	}

	st, records, err := storage.ScanWALInfo(filepath.Join(*dir, man.WAL))
	if err != nil {
		return fmt.Errorf("storage info: scanning %s: %w", man.WAL, err)
	}
	fmt.Printf("wal:            %s  seq (%d, %d]  %d records  %d bytes\n",
		man.WAL, st.BaseSeq, st.LastSeq, st.Records, st.Bytes)
	if st.Truncated {
		fmt.Printf("                torn tail: recovery will cut the log to the last intact record\n")
	}
	tailRecords, tailRows := 0, 0
	for _, r := range records {
		if r.Seq > man.WALSeq {
			tailRecords++
			tailRows += r.Batch.NumRows()
		}
	}
	fmt.Printf("replay tail:    %d records / %d rows past the last checkpoint\n", tailRecords, tailRows)
	return nil
}

func cmdSnapshotQuery(args []string) error {
	fs := flag.NewFlagSet("snapshot query", flag.ExitOnError)
	in := fs.String("in", "", "snapshot file (required)")
	key := fs.String("key", "", "'table.column:text' to look up (required)")
	k := fs.Int("k", 5, "number of neighbours")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *key == "" {
		return fmt.Errorf("snapshot query: -in and -key are required")
	}
	parts := strings.SplitN(*key, ":", 2)
	if len(parts) != 2 {
		return fmt.Errorf("snapshot query: key must be 'table.column:text'")
	}
	table, column, ok := strings.Cut(parts[0], ".")
	if !ok {
		return fmt.Errorf("snapshot query: key must be 'table.column:text'")
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	model, err := retro.LoadSnapshot(f)
	if err != nil {
		return err
	}
	ms, err := model.Neighbors(table, column, parts[1], *k)
	if err != nil {
		return err
	}
	for _, m := range ms {
		col, text, _ := strings.Cut(m.Word, "\x00")
		fmt.Printf("%.4f  %-28s %s\n", m.Score, col, text)
	}
	return nil
}

func cmdInfo(args []string) error {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	data := fs.String("data", "", "dataset directory (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *data == "" {
		return fmt.Errorf("info: -data is required")
	}
	db, emb, err := loadDir(*data)
	if err != nil {
		return err
	}
	fmt.Print(db.String())
	fmt.Printf("base embedding: %d words, %d dims\n", emb.Len(), emb.Dim())
	return nil
}
