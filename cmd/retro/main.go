// Command retro trains and queries relational embeddings.
//
// Subcommands:
//
//	generate -dataset tmdb|gplay -out DIR [-movies N] [-apps N] [-dim D] [-seed S]
//	    write a synthetic dataset as CSV files plus its base embedding
//	train    -data DIR -out FILE [-variant ro|rn] [-alpha A -beta B -gamma G -delta D] [-iters N]
//	    import the CSV directory, retrofit, write the embedding (binary)
//	query    -model FILE -key 'table.column:text' [-k N]
//	    nearest neighbours of a trained value embedding
//	info     -data DIR
//	    print the imported schema and extraction statistics
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	retro "github.com/retrodb/retro"
	"github.com/retrodb/retro/internal/datagen"
	"github.com/retrodb/retro/internal/dataset"
	"github.com/retrodb/retro/internal/reldb"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "generate":
		err = cmdGenerate(os.Args[2:])
	case "train":
		err = cmdTrain(os.Args[2:])
	case "query":
		err = cmdQuery(os.Args[2:])
	case "info":
		err = cmdInfo(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "retro:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: retro <generate|train|query|info> [flags]
run "retro <subcommand> -h" for the flags of each subcommand`)
}

func cmdGenerate(args []string) error {
	fs := flag.NewFlagSet("generate", flag.ExitOnError)
	dataset := fs.String("dataset", "tmdb", "tmdb or gplay")
	out := fs.String("out", "", "output directory (required)")
	movies := fs.Int("movies", 300, "TMDB size")
	apps := fs.Int("apps", 300, "Google Play size")
	dim := fs.Int("dim", 48, "embedding dimensionality")
	seed := fs.Int64("seed", 1, "generator seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("generate: -out is required")
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}
	var db *reldb.DB
	var emb *retro.Embedding
	switch *dataset {
	case "tmdb":
		w := datagen.TMDB(datagen.TMDBConfig{Movies: *movies, Dim: *dim, Seed: *seed})
		db, emb = w.DB, w.Embedding
	case "gplay":
		w := datagen.GooglePlay(datagen.GooglePlayConfig{Apps: *apps, Dim: *dim, Seed: *seed})
		db, emb = w.DB, w.Embedding
	default:
		return fmt.Errorf("generate: unknown dataset %q", *dataset)
	}
	for _, t := range db.Tables() {
		f, err := os.Create(filepath.Join(*out, t.Name+".csv"))
		if err != nil {
			return err
		}
		if err := t.ExportCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	f, err := os.Create(filepath.Join(*out, "embedding.bin"))
	if err != nil {
		return err
	}
	defer f.Close()
	if err := emb.WriteBinary(f); err != nil {
		return err
	}
	fmt.Printf("wrote %d tables + embedding (%d words, %d dims) to %s\n",
		db.NumTables(), emb.Len(), emb.Dim(), *out)
	return nil
}

// loadDir imports the `retro generate` layout via the shared loader.
func loadDir(dir string) (*retro.DB, *retro.Embedding, error) {
	return dataset.LoadDir(dir)
}

func cmdTrain(args []string) error {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	data := fs.String("data", "", "dataset directory from 'retro generate' (required)")
	out := fs.String("out", "", "output embedding file (required)")
	variant := fs.String("variant", "rn", "ro or rn")
	alpha := fs.Float64("alpha", -1, "alpha (default: paper setting)")
	beta := fs.Float64("beta", -1, "beta")
	gamma := fs.Float64("gamma", -1, "gamma")
	delta := fs.Float64("delta", -1, "delta")
	iters := fs.Int("iters", 10, "iterations")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *data == "" || *out == "" {
		return fmt.Errorf("train: -data and -out are required")
	}
	db, emb, err := loadDir(*data)
	if err != nil {
		return err
	}
	cfg := retro.Defaults()
	if *variant == "ro" {
		cfg.Variant = retro.RO
	}
	if *alpha >= 0 && *beta >= 0 && *gamma >= 0 && *delta >= 0 {
		cfg.Hyperparams = &retro.Hyperparams{Alpha: *alpha, Beta: *beta, Gamma: *gamma, Delta: *delta, Iterations: *iters}
	}
	model, err := retro.Retrofit(db, emb, cfg)
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := model.Store().WriteBinary(f); err != nil {
		return err
	}
	fmt.Printf("retrofitted %d text values (%s solver) -> %s\n", model.NumValues(), *variant, *out)
	return nil
}

func cmdQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	modelPath := fs.String("model", "", "trained embedding file (required)")
	key := fs.String("key", "", "'table.column:text' to look up (required)")
	k := fs.Int("k", 5, "number of neighbours")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *modelPath == "" || *key == "" {
		return fmt.Errorf("query: -model and -key are required")
	}
	parts := strings.SplitN(*key, ":", 2)
	if len(parts) != 2 {
		return fmt.Errorf("query: key must be 'table.column:text'")
	}
	f, err := os.Open(*modelPath)
	if err != nil {
		return err
	}
	defer f.Close()
	store, err := retro.ReadBinaryEmbedding(f)
	if err != nil {
		return err
	}
	storeKey := parts[0] + "\x00" + parts[1]
	v, ok := store.VectorOf(storeKey)
	if !ok {
		return fmt.Errorf("query: no value %q in %s", parts[1], parts[0])
	}
	selfID, _ := store.ID(storeKey)
	for _, m := range store.TopK(v, *k, func(id int) bool { return id == selfID }) {
		col, text, _ := strings.Cut(m.Word, "\x00")
		fmt.Printf("%.4f  %-28s %s\n", m.Score, col, text)
	}
	return nil
}

func cmdInfo(args []string) error {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	data := fs.String("data", "", "dataset directory (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *data == "" {
		return fmt.Errorf("info: -data is required")
	}
	db, emb, err := loadDir(*data)
	if err != nil {
		return err
	}
	fmt.Print(db.String())
	fmt.Printf("base embedding: %d words, %d dims\n", emb.Len(), emb.Dim())
	return nil
}
