// Command retro trains and queries relational embeddings.
//
// Subcommands:
//
//	generate -dataset tmdb|gplay -out DIR [-movies N] [-apps N] [-dim D] [-seed S]
//	    write a synthetic dataset as CSV files plus its base embedding
//	train    -data DIR -out FILE [-variant ro|rn] [-alpha A -beta B -gamma G -delta D] [-iters N]
//	    import the CSV directory, retrofit, write the embedding (binary)
//	query    -model FILE -key 'table.column:text' [-k N]
//	    nearest neighbours of a trained value embedding
//	info     -data DIR
//	    print the imported schema and extraction statistics
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	retro "github.com/retrodb/retro"
	"github.com/retrodb/retro/internal/datagen"
	"github.com/retrodb/retro/internal/reldb"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "generate":
		err = cmdGenerate(os.Args[2:])
	case "train":
		err = cmdTrain(os.Args[2:])
	case "query":
		err = cmdQuery(os.Args[2:])
	case "info":
		err = cmdInfo(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "retro:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: retro <generate|train|query|info> [flags]
run "retro <subcommand> -h" for the flags of each subcommand`)
}

func cmdGenerate(args []string) error {
	fs := flag.NewFlagSet("generate", flag.ExitOnError)
	dataset := fs.String("dataset", "tmdb", "tmdb or gplay")
	out := fs.String("out", "", "output directory (required)")
	movies := fs.Int("movies", 300, "TMDB size")
	apps := fs.Int("apps", 300, "Google Play size")
	dim := fs.Int("dim", 48, "embedding dimensionality")
	seed := fs.Int64("seed", 1, "generator seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("generate: -out is required")
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}
	var db *reldb.DB
	var emb *retro.Embedding
	switch *dataset {
	case "tmdb":
		w := datagen.TMDB(datagen.TMDBConfig{Movies: *movies, Dim: *dim, Seed: *seed})
		db, emb = w.DB, w.Embedding
	case "gplay":
		w := datagen.GooglePlay(datagen.GooglePlayConfig{Apps: *apps, Dim: *dim, Seed: *seed})
		db, emb = w.DB, w.Embedding
	default:
		return fmt.Errorf("generate: unknown dataset %q", *dataset)
	}
	for _, t := range db.Tables() {
		f, err := os.Create(filepath.Join(*out, t.Name+".csv"))
		if err != nil {
			return err
		}
		if err := t.ExportCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	f, err := os.Create(filepath.Join(*out, "embedding.bin"))
	if err != nil {
		return err
	}
	defer f.Close()
	if err := emb.WriteBinary(f); err != nil {
		return err
	}
	fmt.Printf("wrote %d tables + embedding (%d words, %d dims) to %s\n",
		db.NumTables(), emb.Len(), emb.Dim(), *out)
	return nil
}

// loadDir imports every CSV in dir (schema inferred; the generate layout
// uses "<table>.csv" with an "id" primary key and "<table>_id" foreign
// keys) plus the embedding.bin.
func loadDir(dir string) (*retro.DB, *retro.Embedding, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	db := retro.NewDB()
	// Two passes so FK targets exist first: import tables without *_id
	// columns, then the rest (works for the generated star schemas).
	var csvs []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".csv") {
			csvs = append(csvs, e.Name())
		}
	}
	imported := map[string]bool{}
	for pass := 0; pass < len(csvs)+1 && len(imported) < len(csvs); pass++ {
		progressed := false
		for _, name := range csvs {
			if imported[name] {
				continue
			}
			table := strings.TrimSuffix(name, ".csv")
			f, err := os.Open(filepath.Join(dir, name))
			if err != nil {
				return nil, nil, err
			}
			header, err := csvHeader(f)
			if err != nil {
				f.Close()
				return nil, nil, fmt.Errorf("%s: %w", name, err)
			}
			fks := map[string]string{}
			ready := true
			for _, h := range header {
				if !strings.HasSuffix(h, "_id") {
					continue
				}
				ref := referencedTable(strings.TrimSuffix(h, "_id"), csvs)
				if ref == "" {
					continue
				}
				fks[h] = ref
				if _, ok := db.Table(ref); !ok {
					ready = false
				}
			}
			if !ready {
				f.Close()
				continue
			}
			if _, err := f.Seek(0, 0); err != nil {
				f.Close()
				return nil, nil, err
			}
			pk := ""
			for _, h := range header {
				if h == "id" {
					pk = "id"
				}
			}
			_, err = db.ImportCSV(table, f, retro.CSVOptions{PrimaryKey: pk, ForeignKeys: fks})
			f.Close()
			if err != nil {
				return nil, nil, fmt.Errorf("%s: %w", name, err)
			}
			imported[name] = true
			progressed = true
		}
		if !progressed {
			return nil, nil, fmt.Errorf("circular or unresolvable FK dependencies in %s", dir)
		}
	}
	ef, err := os.Open(filepath.Join(dir, "embedding.bin"))
	if err != nil {
		return nil, nil, fmt.Errorf("opening embedding: %w", err)
	}
	defer ef.Close()
	emb, err := retro.ReadBinaryEmbedding(ef)
	if err != nil {
		return nil, nil, err
	}
	return db, emb, nil
}

func csvHeader(f *os.File) ([]string, error) {
	buf := make([]byte, 4096)
	n, err := f.Read(buf)
	if n == 0 && err != nil {
		return nil, err
	}
	line := string(buf[:n])
	if i := strings.IndexByte(line, '\n'); i >= 0 {
		line = line[:i]
	}
	fields := strings.Split(strings.TrimSpace(line), ",")
	for i := range fields {
		fields[i] = strings.ToLower(strings.TrimSpace(fields[i]))
	}
	return fields, nil
}

// referencedTable maps an FK column prefix to the matching CSV table name,
// handling the simple pluralisation of the generated schemas
// (movie_id -> movies.csv, person_id -> persons.csv, ...).
func referencedTable(prefix string, csvs []string) string {
	// Role-named FKs of the generated schemas.
	if prefix == "director" {
		prefix = "person"
	}
	candidates := []string{prefix + "s.csv", prefix + "es.csv", strings.TrimSuffix(prefix, "y") + "ies.csv", prefix + ".csv"}
	for _, c := range candidates {
		for _, name := range csvs {
			if name == c {
				return strings.TrimSuffix(name, ".csv")
			}
		}
	}
	return ""
}

func cmdTrain(args []string) error {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	data := fs.String("data", "", "dataset directory from 'retro generate' (required)")
	out := fs.String("out", "", "output embedding file (required)")
	variant := fs.String("variant", "rn", "ro or rn")
	alpha := fs.Float64("alpha", -1, "alpha (default: paper setting)")
	beta := fs.Float64("beta", -1, "beta")
	gamma := fs.Float64("gamma", -1, "gamma")
	delta := fs.Float64("delta", -1, "delta")
	iters := fs.Int("iters", 10, "iterations")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *data == "" || *out == "" {
		return fmt.Errorf("train: -data and -out are required")
	}
	db, emb, err := loadDir(*data)
	if err != nil {
		return err
	}
	cfg := retro.Defaults()
	if *variant == "ro" {
		cfg.Variant = retro.RO
	}
	if *alpha >= 0 && *beta >= 0 && *gamma >= 0 && *delta >= 0 {
		cfg.Hyperparams = &retro.Hyperparams{Alpha: *alpha, Beta: *beta, Gamma: *gamma, Delta: *delta, Iterations: *iters}
	}
	model, err := retro.Retrofit(db, emb, cfg)
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := model.Store().WriteBinary(f); err != nil {
		return err
	}
	fmt.Printf("retrofitted %d text values (%s solver) -> %s\n", model.NumValues(), *variant, *out)
	return nil
}

func cmdQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	modelPath := fs.String("model", "", "trained embedding file (required)")
	key := fs.String("key", "", "'table.column:text' to look up (required)")
	k := fs.Int("k", 5, "number of neighbours")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *modelPath == "" || *key == "" {
		return fmt.Errorf("query: -model and -key are required")
	}
	parts := strings.SplitN(*key, ":", 2)
	if len(parts) != 2 {
		return fmt.Errorf("query: key must be 'table.column:text'")
	}
	f, err := os.Open(*modelPath)
	if err != nil {
		return err
	}
	defer f.Close()
	store, err := retro.ReadBinaryEmbedding(f)
	if err != nil {
		return err
	}
	storeKey := parts[0] + "\x00" + parts[1]
	v, ok := store.VectorOf(storeKey)
	if !ok {
		return fmt.Errorf("query: no value %q in %s", parts[1], parts[0])
	}
	selfID, _ := store.ID(storeKey)
	for _, m := range store.TopK(v, *k, func(id int) bool { return id == selfID }) {
		col, text, _ := strings.Cut(m.Word, "\x00")
		fmt.Printf("%.4f  %-28s %s\n", m.Score, col, text)
	}
	return nil
}

func cmdInfo(args []string) error {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	data := fs.String("data", "", "dataset directory (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *data == "" {
		return fmt.Errorf("info: -data is required")
	}
	db, emb, err := loadDir(*data)
	if err != nil {
		return err
	}
	fmt.Print(db.String())
	fmt.Printf("base embedding: %d words, %d dims\n", emb.Len(), emb.Dim())
	return nil
}
