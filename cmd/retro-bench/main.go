// Command retro-bench regenerates the paper's tables and figures on the
// synthetic worlds, and measures the serving-path performance baseline.
//
//	retro-bench [-scale tiny|small|full] [-seed N] all
//	retro-bench table1 table2 fig3 fig4 fig6 fig7 fig8 fig9 fig10 fig11 fig12a fig12b fig13 fig14
//	retro-bench -perf BENCH_5.json
//
// Output is one aligned text table per experiment, with the expected
// shape (from the paper) noted beneath; EXPERIMENTS.md records a full
// paper-vs-measured comparison. -perf runs the quantized-vs-exact
// serving benchmarks on the shared 50k-value world and writes a
// machine-readable JSON report (ns/op, allocs/op, recall@10), tracking
// the perf trajectory across PRs.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/retrodb/retro/internal/experiments"
)

func main() {
	scaleName := flag.String("scale", "small", "tiny, small or full")
	seed := flag.Int64("seed", 1, "world and sampling seed")
	perfPath := flag.String("perf", "", "measure the serving perf baseline and write this JSON report (e.g. BENCH_5.json), then exit")
	flag.Parse()

	if *perfPath != "" {
		if err := runPerf(*perfPath); err != nil {
			fmt.Fprintln(os.Stderr, "retro-bench: perf:", err)
			os.Exit(1)
		}
		return
	}

	scale, ok := experiments.ByName(*scaleName)
	if !ok {
		fmt.Fprintf(os.Stderr, "retro-bench: unknown scale %q\n", *scaleName)
		os.Exit(2)
	}
	scale.Seed = *seed

	ids := flag.Args()
	if len(ids) == 0 {
		fmt.Fprintln(os.Stderr, "retro-bench: name experiments to run, or 'all'")
		os.Exit(2)
	}
	if len(ids) == 1 && ids[0] == "all" {
		ids = experiments.Order
	}
	start := time.Now()
	for _, id := range ids {
		t0 := time.Now()
		rep, err := experiments.Run(id, scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "retro-bench: %s: %v\n", id, err)
			os.Exit(1)
		}
		rep.Print(os.Stdout)
		fmt.Printf("  [%s finished in %v at scale %q]\n\n", id, time.Since(t0).Round(time.Millisecond), scale.Name)
	}
	fmt.Printf("total: %v\n", time.Since(start).Round(time.Millisecond))
}
