package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"github.com/retrodb/retro/internal/cpu"
	"github.com/retrodb/retro/internal/embed"
	"github.com/retrodb/retro/internal/perfbench"
	"github.com/retrodb/retro/internal/quant"
	"github.com/retrodb/retro/internal/vec"
)

// Perf mode: retro-bench -perf BENCH_5.json measures the serving-path
// kernels and TopK pipelines on the shared 50k-value benchmark world
// (see internal/perfbench) and writes one machine-readable JSON file, so
// the perf trajectory is tracked file-by-file across PRs instead of
// living in scrollback. The same world backs the pinned Go benchmarks
// (BenchmarkTopKQuantized / BenchmarkTopKExactHNSW), so the JSON and CI
// numbers are directly comparable.

// perfSchema names the JSON layout; bump when fields change meaning.
// Version 2 adds the paired float32 rows (the *_f32 benchmarks) and the
// f32-vs-f64 derived figures.
const perfSchema = "retro-bench-perf/2"

type perfBenchmark struct {
	Name        string             `json:"name"`
	NsPerOp     float64            `json:"ns_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	Iterations  int                `json:"iterations"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

type perfReport struct {
	Schema    string `json:"schema"`
	CreatedAt string `json:"created_at"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`
	// CPUFeatures and SIMDLevel record what the runtime dispatcher
	// actually selected on this host (RETRO_SIMD caps included), so a
	// perf number is never read without knowing which kernels produced
	// it.
	CPUFeatures string `json:"cpu_features"`
	SIMDLevel   string `json:"simd_level"`
	Dataset     struct {
		NumValues int `json:"num_values"`
		Dim       int `json:"dim"`
		Queries   int `json:"queries"`
	} `json:"dataset"`
	Benchmarks []perfBenchmark    `json:"benchmarks"`
	Derived    map[string]float64 `json:"derived"`
}

func record(rep *perfReport, name string, extra map[string]float64, fn func(b *testing.B)) perfBenchmark {
	res := testing.Benchmark(fn)
	pb := perfBenchmark{
		Name:        name,
		NsPerOp:     float64(res.NsPerOp()),
		AllocsPerOp: res.AllocsPerOp(),
		BytesPerOp:  res.AllocedBytesPerOp(),
		Iterations:  res.N,
		Extra:       extra,
	}
	rep.Benchmarks = append(rep.Benchmarks, pb)
	fmt.Printf("  %-24s %12.0f ns/op  %4d allocs/op\n", name, pb.NsPerOp, pb.AllocsPerOp)
	return pb
}

func runPerf(path string) error {
	rep := &perfReport{
		Schema:      perfSchema,
		CreatedAt:   time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		CPUFeatures: cpu.Features(),
		SIMDLevel:   cpu.Active().String(),
		Derived:     map[string]float64{},
	}
	rep.Dataset.NumValues = perfbench.NumValues
	rep.Dataset.Dim = perfbench.Dim
	rep.Dataset.Queries = perfbench.NumQueries

	fmt.Printf("perf: building the %d-value dim-%d benchmark world (one HNSW build)...\n",
		perfbench.NumValues, perfbench.Dim)
	start := time.Now()
	exact, quantized, queries := perfbench.Pair(perfbench.NumValues, perfbench.Dim, 42, 0)
	fmt.Printf("perf: world ready in %s\n", time.Since(start).Round(time.Millisecond))

	// Kernel microbenchmarks: one exact and one quantized distance worth
	// of arithmetic at the embedding width.
	q := queries[0]
	v := queries[1]
	record(rep, "vec_dot_f64", nil, func(b *testing.B) {
		b.ReportAllocs()
		var s float64
		for i := 0; i < b.N; i++ {
			s += vec.Dot(q, v)
		}
		_ = s
	})
	cb := quant.Train(perfbench.Dim, 2, func(i int) []float64 { return queries[i] })
	qc := make([]int8, perfbench.Dim)
	vc := make([]int8, perfbench.Dim)
	cb.EncodeQuery(qc, q)
	cb.Encode(vc, v)
	record(rep, "quant_dot8", nil, func(b *testing.B) {
		b.ReportAllocs()
		var s int32
		for i := 0; i < b.N; i++ {
			s += quant.Dot8(qc, vc)
		}
		_ = s
	})

	// End-to-end TopK on the serving read path (frozen stores, pooled
	// scratch, zero steady-state allocations).
	topk := func(s *embed.Store) func(b *testing.B) {
		return func(b *testing.B) {
			buf := make([]embed.Match, 0, 16)
			buf = s.TopKAppend(queries[0], 10, nil, buf)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf = s.TopKAppend(queries[i%len(queries)], 10, nil, buf)
			}
		}
	}
	recallExact := perfbench.Recall10(exact, queries[:64])
	recallQuant := perfbench.Recall10(quantized, queries[:64])
	scan := func(s *embed.Store) func(b *testing.B) {
		return func(b *testing.B) {
			buf := make([]embed.Match, 0, 16)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				buf = s.TopKExactAppend(queries[i%len(queries)], 10, nil, buf)
			}
		}
	}
	eb := record(rep, "topk_exact_hnsw", map[string]float64{"recall_at_10": recallExact}, topk(exact))
	qb := record(rep, "topk_quantized", map[string]float64{"recall_at_10": recallQuant}, topk(quantized))
	sb64 := record(rep, "topk_exact_scan", nil, scan(exact))

	// Batched read path: the TopKMany engine over the same world, at the
	// pinned batch sizes. ns/op is per BATCH; the derived per-query
	// figures and the batch-64 speedup against the looped single-query
	// path above are what the acceptance gate reads.
	recallMany := perfbench.Recall10Many(quantized, queries[:64], 64)
	var perQuery64 float64
	for _, batch := range []int{1, 16, 64} {
		qbatch := make([][]float64, batch)
		ks := make([]int, batch)
		for i := range ks {
			ks[i] = 10
		}
		dst := make([][]embed.Match, batch)
		for i := range dst {
			dst[i] = make([]embed.Match, 0, 16)
		}
		pos := 0
		fill := func() {
			for j := range qbatch {
				qbatch[j] = queries[(pos+j)%len(queries)]
			}
			pos += batch
		}
		fill()
		dst = quantized.TopKManyAppend(qbatch, ks, nil, dst) // warm the pools
		pb := record(rep, fmt.Sprintf("topk_many_batch%d", batch),
			map[string]float64{"queries_per_batch": float64(batch), "recall_at_10": recallMany},
			func(b *testing.B) {
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					fill()
					dst = quantized.TopKManyAppend(qbatch, ks, nil, dst)
				}
			})
		perQuery := pb.NsPerOp / float64(batch)
		rep.Derived[fmt.Sprintf("ns_per_query_batch%d", batch)] = perQuery
		if batch == 64 {
			perQuery64 = perQuery
		}
	}

	rep.Derived["speedup_quant_vs_exact_hnsw"] = eb.NsPerOp / qb.NsPerOp
	rep.Derived["speedup_batch64_vs_looped_topk"] = qb.NsPerOp / perQuery64
	rep.Derived["recall_at_10_quantized"] = recallQuant
	rep.Derived["recall_at_10_exact_hnsw"] = recallExact
	rep.Derived["recall_at_10_batched"] = recallMany
	if mode, rerank := quantized.Quantization(); mode == embed.QuantSQ8 {
		rep.Derived["rerank_factor"] = float64(rerank)
	}

	// Float32 serving pair: the same world at the same seed in a float32
	// store. Every f64 row above gets an f32 twin; the derived figures
	// are the acceptance gates — exact-scan speedup at matching recall,
	// quantized path no slower, resident bytes at most 55% of f64.
	fmt.Printf("perf: building the float32 twin world (one HNSW build)...\n")
	start = time.Now()
	exact32, quantized32, _ := perfbench.PairWithPrecision(perfbench.NumValues, perfbench.Dim, 42, 0, embed.F32)
	fmt.Printf("perf: f32 world ready in %s\n", time.Since(start).Round(time.Millisecond))

	q32 := make([]float32, len(q))
	v32 := make([]float32, len(v))
	for i := range q {
		q32[i], v32[i] = float32(q[i]), float32(v[i])
	}
	record(rep, "vec_dot_f32", nil, func(b *testing.B) {
		b.ReportAllocs()
		var s float64
		for i := 0; i < b.N; i++ {
			s += vec.Dot32(q32, v32)
		}
		_ = s
	})
	recallExact32 := perfbench.Recall10(exact32, queries[:64])
	recallQuant32 := perfbench.Recall10(quantized32, queries[:64])
	eb32 := record(rep, "topk_exact_hnsw_f32", map[string]float64{"recall_at_10": recallExact32}, topk(exact32))
	qb32 := record(rep, "topk_quantized_f32", map[string]float64{"recall_at_10": recallQuant32}, topk(quantized32))
	sb32 := record(rep, "topk_exact_scan_f32", nil, scan(exact32))
	{
		const batch = 64
		qbatch := make([][]float64, batch)
		ks := make([]int, batch)
		for i := range ks {
			ks[i] = 10
		}
		dst := make([][]embed.Match, batch)
		for i := range dst {
			dst[i] = make([]embed.Match, 0, 16)
		}
		pos := 0
		fill := func() {
			for j := range qbatch {
				qbatch[j] = queries[(pos+j)%len(queries)]
			}
			pos += batch
		}
		fill()
		dst = quantized32.TopKManyAppend(qbatch, ks, nil, dst)
		pb := record(rep, "topk_many_batch64_f32",
			map[string]float64{"queries_per_batch": batch},
			func(b *testing.B) {
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					fill()
					dst = quantized32.TopKManyAppend(qbatch, ks, nil, dst)
				}
			})
		rep.Derived["ns_per_query_batch64_f32"] = pb.NsPerOp / batch
	}

	// Fidelity and footprint gates. Recall is measured against the f64
	// exact scan over the shared ID space; the byte ratio covers the
	// precision-carrying components (matrix, norms, graph vectors —
	// SQ8 codes and adjacency lists are precision-invariant).
	recallF32vsF64 := perfbench.CrossRecall10(exact32, exact, queries[:256])
	ms64, ms32 := exact.MemoryStats(), exact32.MemoryStats()
	res64 := ms64.MatrixBytes + ms64.NormBytes + ms64.GraphVecBytes
	res32 := ms32.MatrixBytes + ms32.NormBytes + ms32.GraphVecBytes
	rep.Derived["speedup_exact_scan_f32_vs_f64"] = sb64.NsPerOp / sb32.NsPerOp
	rep.Derived["speedup_exact_hnsw_f32_vs_f64"] = eb.NsPerOp / eb32.NsPerOp
	rep.Derived["speedup_quantized_f32_vs_f64"] = qb.NsPerOp / qb32.NsPerOp
	rep.Derived["recall_at_10_f32_exact_vs_f64"] = recallF32vsF64
	rep.Derived["bytes_per_value_f64"] = float64(ms64.TotalBytes) / float64(perfbench.NumValues)
	rep.Derived["bytes_per_value_f32"] = float64(ms32.TotalBytes) / float64(perfbench.NumValues)
	rep.Derived["store_bytes_ratio_f32_vs_f64"] = float64(res32) / float64(res64)

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("perf: speedup quantized vs exact HNSW = %.2fx (recall@10 %.4f vs %.4f)\n",
		rep.Derived["speedup_quant_vs_exact_hnsw"], recallQuant, recallExact)
	fmt.Printf("perf: batch64 %.0f ns/query vs looped %.0f ns/query = %.2fx (batched recall@10 %.4f)\n",
		perQuery64, qb.NsPerOp, rep.Derived["speedup_batch64_vs_looped_topk"], recallMany)
	fmt.Printf("perf: f32 exact scan %.2fx vs f64 (recall@10 vs f64 exact %.4f), quantized %.2fx, resident bytes ratio %.3f\n",
		rep.Derived["speedup_exact_scan_f32_vs_f64"], recallF32vsF64,
		rep.Derived["speedup_quantized_f32_vs_f64"], rep.Derived["store_bytes_ratio_f32_vs_f64"])
	fmt.Printf("perf: report written to %s\n", path)
	return nil
}
