package retro

import (
	"fmt"
	"io"
	"time"

	"github.com/retrodb/retro/internal/deepwalk"
	"github.com/retrodb/retro/internal/extract"
	"github.com/retrodb/retro/internal/snapshot"
	"github.com/retrodb/retro/internal/tokenize"
)

// Snapshot persistence. A trained model (or live session) serialises to a
// single versioned binary artifact — the retrofitted store, the built
// HNSW graph and the training provenance — so a serving process can
// cold-start by loading state instead of re-running retrofitting and
// rebuilding the index. See internal/snapshot for the wire format.

// SnapshotFormatVersion is the snapshot format version this build reads
// and writes.
const SnapshotFormatVersion = snapshot.Version

// SnapshotInfo summarises a loaded snapshot's header and provenance.
type SnapshotInfo struct {
	// Version is the format version of the file.
	Version uint32
	// Dim is the embedding dimensionality.
	Dim int
	// NumValues is the number of embedded text values.
	NumValues int
	// Created is when the snapshot was written.
	Created time.Time
	// Fingerprint hashes dim, solver variant and hyperparameters;
	// snapshots from identical training configurations share it.
	Fingerprint uint64
	// HasIndex reports whether the file carried a built HNSW graph.
	HasIndex bool
	// Quantization is the persisted ANN candidate-generation mode
	// (QuantOff when the snapshot carried no quantization sidecar) and
	// Rerank its candidate over-fetch factor.
	Quantization string
	Rerank       int
	// Precision is the persisted store representation (F64 for snapshots
	// written before format version 3).
	Precision Precision
	// Variant is the solver that produced the vectors.
	Variant Variant
	// Hyperparams is the training configuration.
	Hyperparams Hyperparams
	// Categories lists the "table.column" text keys the model covers.
	Categories []string
	// ExcludeColumns / ExcludeRelations are the extraction exclusions the
	// model was trained with (persisted so ResumeSession re-extracts the
	// same vocabulary).
	ExcludeColumns   []string
	ExcludeRelations []string
}

// WriteSnapshot serialises the model: the retrofitted store (float32
// packed), the built HNSW index if one exists (call Store().WarmANN()
// first to guarantee it is included), and the training provenance. The
// caller must not mutate the model concurrently.
func (m *Model) WriteSnapshot(w io.Writer) error {
	// The configured quantization persists even when no built index does
	// (e.g. the index was stale at save time): a reboot from the snapshot
	// must come back up quantized, codes retrained lazily.
	quantMode, rerank := m.store.Quantization()
	return snapshot.Write(w, &snapshot.Snapshot{
		Dim:              m.store.Dim(),
		Variant:          m.cfg.Variant,
		Hyperparams:      m.hp,
		CreatedUnix:      time.Now().Unix(),
		LossHistory:      m.lossHT,
		Categories:       m.categories(),
		ExcludeColumns:   m.cfg.ExcludeColumns,
		ExcludeRelations: m.cfg.ExcludeRelations,
		ANNThreshold:     m.store.ANNThreshold(),
		ANNParams:        m.store.ANNParams(),
		Quantization:     quantMode,
		Rerank:           rerank,
		Store:            m.store,
		Index:            m.store.ANNIndex(),
	})
}

// LoadSnapshot deserialises a model written by WriteSnapshot. The result
// answers Vector, Key, Neighbors and Store queries — including ANN
// search, with no index rebuild when the snapshot carried the graph —
// without any database attached; use ResumeSession to reattach one for
// incremental maintenance.
func LoadSnapshot(r io.Reader) (*Model, error) {
	snap, err := snapshot.Read(r)
	if err != nil {
		return nil, err
	}
	hp := snap.Hyperparams
	cfg := Config{
		Variant:          snap.Variant,
		Hyperparams:      &hp,
		TrackLoss:        len(snap.LossHistory) > 0,
		ExcludeColumns:   snap.ExcludeColumns,
		ExcludeRelations: snap.ExcludeRelations,
	}
	if snap.ANNThreshold > 0 {
		cfg.ANNThreshold = snap.ANNThreshold
	} else {
		cfg.ANNThreshold = -1
	}
	annParams := snap.ANNParams
	cfg.ANNParams = &annParams
	// Carry the persisted quantization into the config: the loaded store
	// is already quantized (codes came from the QNT8 section), and any
	// path that rebuilds the store (e.g. ResumeSession realignment)
	// re-quantizes with freshly trained codes.
	cfg.Quantization = snap.Quantization
	cfg.RerankFactor = snap.Rerank
	// The model comes back at the precision it was persisted with; any
	// store rebuild (e.g. ResumeSession realignment) keeps it.
	cfg.Precision = snap.Precision
	return &Model{
		cfg:    cfg,
		hp:     hp,
		store:  snap.Store,
		lossHT: snap.LossHistory,
		cats:   snap.Categories,
		snap:   infoFrom(snap),
	}, nil
}

func infoFrom(snap *snapshot.Snapshot) *SnapshotInfo {
	return &SnapshotInfo{
		Version:          snap.Version,
		Dim:              snap.Dim,
		NumValues:        snap.NumValues,
		Created:          time.Unix(snap.CreatedUnix, 0),
		Fingerprint:      snap.Fingerprint,
		HasIndex:         snap.HasIndex,
		Variant:          snap.Variant,
		Hyperparams:      snap.Hyperparams,
		Categories:       snap.Categories,
		ExcludeColumns:   snap.ExcludeColumns,
		ExcludeRelations: snap.ExcludeRelations,
		Quantization:     snap.Quantization,
		Rerank:           snap.Rerank,
		Precision:        snap.Precision,
	}
}

// SnapshotInfo returns the provenance of a snapshot-loaded model, or nil
// when the model was trained in-process.
func (m *Model) SnapshotInfo() *SnapshotInfo { return m.snap }

// ReadSnapshotInfo returns a snapshot's summary. Every section checksum
// is verified, but the store and HNSW graph are not materialised, so it
// stays cheap on arbitrarily large snapshots.
func ReadSnapshotInfo(r io.Reader) (*SnapshotInfo, error) {
	snap, err := snapshot.ReadInfo(r)
	if err != nil {
		return nil, err
	}
	return infoFrom(snap), nil
}

// WriteSnapshotFile persists the session's snapshot to path atomically
// (temp file + fsync + rename in the target directory), so a crash or
// disk-full mid-write never leaves a truncated file where a boot path
// expects a valid snapshot.
func (s *Session) WriteSnapshotFile(path string) error {
	return snapshot.WriteFileAtomic(path, s.Snapshot)
}

// Snapshot serialises the session's current model. Callers serving
// concurrent traffic must hold their write lock (or otherwise exclude
// inserts) for the duration.
func (s *Session) Snapshot(w io.Writer) error { return s.model.WriteSnapshot(w) }

// ResumeSession rebuilds a live session from a snapshot plus the database
// and base embedding it was trained on: the expensive solver state and
// the HNSW graph come from the snapshot, while the relational side is
// re-attached so Insert and ExecAndRefresh keep maintaining the
// embeddings incrementally. The database must be in the same state as
// when the snapshot was written; a vocabulary mismatch is an error.
func ResumeSession(db *DB, base *Embedding, r io.Reader) (*Session, error) {
	m, err := LoadSnapshot(r)
	if err != nil {
		return nil, err
	}
	return resumeModel(db, base, m)
}

// resumeModel attaches a snapshot-loaded model to a database and base
// embedding and returns the live session. The storage engine uses it
// directly: recovery loads the base snapshot, applies the delta segment
// chain to the database and store, and only then re-attaches — so the
// vocabulary check runs against the fully recovered state.
func resumeModel(db *DB, base *Embedding, m *Model) (*Session, error) {
	if base.Dim() != m.store.Dim() {
		return nil, fmt.Errorf("retro: snapshot dim %d does not match base embedding dim %d", m.store.Dim(), base.Dim())
	}
	ex, err := extract.FromDB(db, extract.Options{
		ExcludeColumns:   m.cfg.ExcludeColumns,
		ExcludeRelations: m.cfg.ExcludeRelations,
	})
	if err != nil {
		return nil, err
	}
	if ex.NumValues() != m.store.Len() {
		return nil, fmt.Errorf("retro: snapshot has %d values but database extracts %d: database changed since the snapshot was written (retrain or re-snapshot)",
			m.store.Len(), ex.NumValues())
	}
	aligned := true
	for _, v := range ex.Values {
		key := deepwalk.ValueKey(ex, v.ID)
		id, ok := m.store.ID(key)
		if !ok {
			cat := ex.Categories[v.Category].Name()
			return nil, fmt.Errorf("retro: snapshot is missing value %q in %s: database changed since the snapshot was written", v.Text, cat)
		}
		if id != v.ID {
			aligned = false
		}
	}
	if !aligned {
		// The incremental write path requires store row ids to mirror
		// extraction value ids. A snapshot written before any writes is
		// stored in extraction order and stays aligned; one written after
		// incremental inserts holds the written values in write order,
		// while the fresh extraction numbers them column-major. Rebuild
		// the store in extraction order. The persisted HNSW graph is
		// keyed by the old rows and cannot be kept — it rebuilds lazily —
		// but the solver state (the expensive part) is still reused.
		ns := NewEmbeddingWithPrecision(m.store.Dim(), m.store.Precision())
		applyANNConfig(ns, m.cfg)
		for _, v := range ex.Values {
			key := deepwalk.ValueKey(ex, v.ID)
			vec, _ := m.store.VectorOf(key)
			ns.Add(key, vec)
		}
		m.store = ns
	}
	m.db, m.base, m.ex, m.tok = db, base, ex, tokenize.New(base)
	return &Session{db: db, base: base, cfg: m.cfg, model: m, Hops: 2, RepairBudget: DefaultRepairBudget}, nil
}
