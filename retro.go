// Package retro is RETRO — relational retrofitting for in-database machine
// learning on textual data (Günther, Thiele, Lehner, EDBT 2020) — as a Go
// library. It learns a dense vector for every unique text value of a
// relational database by retrofitting a pre-trained word embedding with
// the database's categorial (column) and relational (row-wise, PK-FK,
// n:m) structure.
//
// Quick start:
//
//	db := retro.NewDB()
//	db.MustExec(`CREATE TABLE movies (id INT PRIMARY KEY, title TEXT, director TEXT)`)
//	db.MustExec(`INSERT INTO movies VALUES (1, 'Alien', 'Ridley Scott')`)
//	emb, _ := retro.ReadTextEmbedding(file)            // GloVe/word2vec text format
//	model, _ := retro.Retrofit(db, emb, retro.Defaults())
//	vec, _ := model.Vector("movies", "title", "Alien") // ready for ML tasks
//
// The package wraps the full system: the embedded relational engine
// (reldb), §3.1 trie tokenization, §3.2 relationship extraction, the RO
// and RN solvers of §4, the Faruqui-baseline and DeepWalk comparators, and
// the §4.6 embedding combination.
package retro

import (
	"fmt"
	"io"

	"github.com/retrodb/retro/internal/ann"
	"github.com/retrodb/retro/internal/core"
	"github.com/retrodb/retro/internal/deepwalk"
	"github.com/retrodb/retro/internal/embed"
	"github.com/retrodb/retro/internal/extract"
	"github.com/retrodb/retro/internal/graph"
	"github.com/retrodb/retro/internal/reldb"
	"github.com/retrodb/retro/internal/tokenize"
)

// DB is the embedded relational database (see internal/reldb): typed
// tables, PK/FK constraints, CSV import and a SQL subset via Exec.
type DB = reldb.DB

// Value is a typed SQL value.
type Value = reldb.Value

// Column describes a table column for programmatic schema construction.
type Column = reldb.Column

// ForeignKey declares a reference to another table's primary key.
type ForeignKey = reldb.ForeignKey

// CSVOptions controls DB.ImportCSV.
type CSVOptions = reldb.CSVOptions

// Embedding is a word/value embedding store with nearest-neighbour
// queries and text/binary serialisation.
type Embedding = embed.Store

// Match is a nearest-neighbour search result.
type Match = embed.Match

// NewDB creates an empty database.
func NewDB() *DB { return reldb.New() }

// Text builds a text value.
func Text(s string) Value { return reldb.Text(s) }

// Int builds an integer value.
func Int(i int64) Value { return reldb.Int(i) }

// Float builds a floating-point value.
func Float(f float64) Value { return reldb.Float(f) }

// Null is the SQL NULL value.
var Null = reldb.Null

// NewEmbedding creates an empty embedding store of the given width.
func NewEmbedding(dim int) *Embedding { return embed.NewStore(dim) }

// Precision selects the serving store's vector representation: F64 is
// the classic float64 layout, F32 halves the resident footprint and
// serves similarity queries through float32 SIMD kernels with float64
// accumulation (training always runs in float64; an F32 store rounds
// each vector once, at the store boundary).
type Precision = embed.Precision

// Store precisions. The Config zero value is F64 for compatibility;
// retro-serve defaults to F32.
const (
	F64 = embed.F64
	F32 = embed.F32
)

// ParsePrecision normalises a user-facing precision string ("f32",
// "float32", "single", "f64", "float64", "double", or "" for F64).
func ParsePrecision(s string) (Precision, error) { return embed.ParsePrecision(s) }

// NewEmbeddingWithPrecision creates an empty embedding store of the
// given width and vector precision.
func NewEmbeddingWithPrecision(dim int, p Precision) *Embedding {
	return embed.NewStoreWithPrecision(dim, p)
}

// ReadTextEmbedding parses the word2vec/GloVe text format.
func ReadTextEmbedding(r io.Reader) (*Embedding, error) { return embed.ReadText(r) }

// ReadBinaryEmbedding parses the compact binary format written by
// (*Embedding).WriteBinary.
func ReadBinaryEmbedding(r io.Reader) (*Embedding, error) { return embed.ReadBinary(r) }

// Variant selects the retrofitting solver.
type Variant = core.Variant

// Solver variants: RO is the optimisation-based iteration (eq. 10), RN
// the faster series-based iteration (eq. 11).
const (
	RO = core.RO
	RN = core.RN
)

// Hyperparams are the four global constants of §4.4.
type Hyperparams = core.Hyperparams

// ANNParams tunes the HNSW approximate nearest-neighbour index used by
// Model.Neighbors and Embedding.TopK on large vocabularies: M (links per
// node), EfConstruction (build beam), EfSearch (query beam), Seed. Zero
// fields select the defaults.
type ANNParams = ann.Params

// DefaultANNThreshold is the vocabulary size at which similarity queries
// switch from the exact scan to the HNSW index.
const DefaultANNThreshold = embed.DefaultANNThreshold

// Config controls Retrofit.
type Config struct {
	// Variant selects RO or RN (default RN, the paper's recommendation
	// for speed at comparable quality).
	Variant Variant
	// Hyperparams defaults to the paper's per-variant configuration.
	Hyperparams *Hyperparams
	// ExcludeColumns hides "table.column" text columns from training
	// (used when a column is an ML target).
	ExcludeColumns []string
	// ExcludeRelations hides "a.b->c.d" relation groups (used for link
	// prediction evaluation).
	ExcludeRelations []string
	// TrackLoss records Ψ(W) per iteration in Model.LossHistory.
	TrackLoss bool
	// Parallel spreads solver iterations over this many workers
	// (0 = sequential, matching the paper's single-thread protocol;
	// -1 = GOMAXPROCS). Results are identical either way.
	Parallel int
	// ANNThreshold is the vocabulary size at which Neighbors/TopK switch
	// from the exact scan to the HNSW index (0 = DefaultANNThreshold,
	// negative = always exact).
	ANNThreshold int
	// ANNParams tunes the HNSW graph; nil selects the defaults.
	ANNParams *ANNParams
	// Quantization selects the ANN candidate-generation mode: "sq8"
	// traverses the HNSW graph on 8-bit scalar-quantized codes (8x less
	// memory traffic per hop) and re-scores candidates exactly in float64
	// before returning; "" or "off" keeps exact traversal. Returned
	// scores are always exact either way.
	Quantization string
	// RerankFactor is the SQ8 candidate over-fetch factor: quantized
	// queries fetch RerankFactor*k candidates and re-rank them exactly
	// (0 selects ann.DefaultRerank, currently 3). Ignored unless
	// Quantization is enabled.
	RerankFactor int
	// Precision selects the serving store representation: F64 (the zero
	// value, full float64 rows) or F32 (half the resident bytes, float32
	// SIMD scoring with float64 accumulation). Training and incremental
	// repair always solve in float64; with F32 each repaired vector is
	// rounded once when it is written back into the store.
	Precision Precision
}

// QuantSQ8 is the Config.Quantization value selecting 8-bit scalar
// quantization; QuantOff (or "") selects exact traversal.
const (
	QuantOff = embed.QuantOff
	QuantSQ8 = embed.QuantSQ8
)

// ParseQuantMode normalises a user-facing quantization mode string
// ("", "off", "none" or "sq8") to the canonical Config.Quantization
// value, rejecting anything else.
func ParseQuantMode(s string) (string, error) { return embed.ParseQuantMode(s) }

// Defaults returns the paper's recommended configuration (RN solver,
// α=1 β=0 γ=3 δ=1, 10 iterations).
func Defaults() Config { return Config{Variant: RN} }

// Model is a trained set of relational embeddings. Models come from two
// places: Retrofit (trained in-process, with the source database and
// extraction attached) or LoadSnapshot (deserialised, answering value
// queries purely from the persisted store until ResumeSession reattaches
// a database).
type Model struct {
	db     *DB
	base   *Embedding
	ex     *extract.Extraction // nil for a snapshot-loaded model
	tok    *tokenize.Tokenizer
	prob   *core.Problem
	cfg    Config
	hp     Hyperparams
	store  *Embedding
	lossHT []float64
	cats   []string      // category names when ex == nil
	snap   *SnapshotInfo // provenance when loaded from a snapshot
}

// Retrofit learns vectors for every unique text value in db, anchored to
// the given pre-trained embedding (§3–4 of the paper).
func Retrofit(db *DB, base *Embedding, cfg Config) (*Model, error) {
	if _, err := embed.ParseQuantMode(cfg.Quantization); err != nil {
		return nil, fmt.Errorf("retro: %w", err)
	}
	ex, err := extract.FromDB(db, extract.Options{
		ExcludeColumns:   cfg.ExcludeColumns,
		ExcludeRelations: cfg.ExcludeRelations,
	})
	if err != nil {
		return nil, err
	}
	if ex.NumValues() == 0 {
		return nil, fmt.Errorf("retro: database contains no text values")
	}
	hp := resolveParams(cfg)
	tok := tokenize.New(base)
	prob := core.BuildProblem(ex, tok)
	opts := core.SolveOptions{TrackLoss: cfg.TrackLoss}
	var res *core.Result
	switch {
	case cfg.Parallel == 0:
		res = core.Solve(prob, hp, cfg.Variant, opts)
	case cfg.Variant == RO:
		res = core.SolveROParallel(prob, hp, core.ParallelOptions{SolveOptions: opts, Workers: workerCount(cfg.Parallel)})
	default:
		res = core.SolveRNParallel(prob, hp, core.ParallelOptions{SolveOptions: opts, Workers: workerCount(cfg.Parallel)})
	}

	m := &Model{
		db: db, base: base, ex: ex, tok: tok, prob: prob,
		cfg: cfg, hp: hp, lossHT: res.LossHistory,
	}
	m.store = m.buildStore(res.W.Row)
	return m, nil
}

func workerCount(parallel int) int {
	if parallel < 0 {
		return 0 // ParallelOptions defaults to GOMAXPROCS
	}
	return parallel
}

func resolveParams(cfg Config) Hyperparams {
	if cfg.Hyperparams != nil {
		return *cfg.Hyperparams
	}
	if cfg.Variant == RO {
		return core.DefaultRO()
	}
	return core.DefaultRN()
}

func (m *Model) buildStore(row func(int) []float64) *Embedding {
	s := embed.NewStoreWithPrecision(m.prob.Dim, m.cfg.Precision)
	applyANNConfig(s, m.cfg)
	for _, v := range m.ex.Values {
		s.Add(deepwalk.ValueKey(m.ex, v.ID), row(v.ID))
	}
	return s
}

// applyANNConfig projects the Config ANN knobs onto a store. The
// quantization mode must be pre-validated (see Retrofit).
func applyANNConfig(s *embed.Store, cfg Config) {
	if cfg.ANNThreshold < 0 {
		s.DisableANN()
	} else {
		var p ann.Params
		if cfg.ANNParams != nil {
			p = *cfg.ANNParams
		}
		s.EnableANN(cfg.ANNThreshold, p)
	}
	s.EnableQuantization(cfg.Quantization, cfg.RerankFactor)
}

// Vector returns the learned embedding of the text value stored in the
// given table and column. The slice must not be mutated.
func (m *Model) Vector(table, column, text string) ([]float64, error) {
	key, ok := m.Key(table, column, text)
	if !ok {
		return nil, fmt.Errorf("retro: no value %q in %s.%s", text, table, column)
	}
	v, ok := m.store.VectorOf(key)
	if !ok {
		return nil, fmt.Errorf("retro: internal: store missing value %q", text)
	}
	return v, nil
}

// LossHistory returns Ψ(W) per iteration when TrackLoss was enabled.
func (m *Model) LossHistory() []float64 { return m.lossHT }

// NumValues returns the number of embedded text values.
func (m *Model) NumValues() int {
	if m.ex == nil {
		return m.store.Len()
	}
	return m.ex.NumValues()
}

// Store returns the embedding store keyed by "table.column\x00text".
func (m *Model) Store() *Embedding { return m.store }

// Key builds the store key for a (table, column, text) value.
func (m *Model) Key(table, column, text string) (string, bool) {
	if m.ex == nil {
		// Snapshot-loaded model: the store keys themselves are the
		// provenance, so address values directly by key.
		key := table + "." + column + "\x00" + text
		if _, ok := m.store.ID(key); !ok {
			return "", false
		}
		return key, true
	}
	id, ok := m.ex.Lookup(table, column, text)
	if !ok {
		return "", false
	}
	return deepwalk.ValueKey(m.ex, id), true
}

// categories returns the "table.column" names the model covers.
func (m *Model) categories() []string {
	if m.ex == nil {
		return m.cats
	}
	out := make([]string, len(m.ex.Categories))
	for i, c := range m.ex.Categories {
		out[i] = c.Name()
	}
	return out
}

// Neighbors returns the k most similar text values to the given value,
// across all columns.
func (m *Model) Neighbors(table, column, text string, k int) ([]Match, error) {
	key, ok := m.Key(table, column, text)
	if !ok {
		return nil, fmt.Errorf("retro: no value %q in %s.%s", text, table, column)
	}
	v, _ := m.store.VectorOf(key)
	selfID, _ := m.store.ID(key)
	return m.store.TopK(v, k, func(id int) bool { return id == selfID }), nil
}

// DeepWalkConfig tunes the DeepWalk node embedding baseline.
type DeepWalkConfig = deepwalk.Config

// TrainDeepWalk learns DeepWalk node embeddings over the same §3.4 graph
// RETRO uses, keyed compatibly with Model.Store for combination.
func TrainDeepWalk(db *DB, cfg Config, dwCfg DeepWalkConfig) (*Embedding, error) {
	ex, err := extract.FromDB(db, extract.Options{
		ExcludeColumns:   cfg.ExcludeColumns,
		ExcludeRelations: cfg.ExcludeRelations,
	})
	if err != nil {
		return nil, err
	}
	g := graph.Build(ex)
	res, err := deepwalk.Train(g, dwCfg)
	if err != nil {
		return nil, err
	}
	return res.ToStore(ex), nil
}

// Combine concatenates two stores over the first store's vocabulary
// (§4.6; the paper's preferred combiner).
func Combine(a, b *Embedding) (*Embedding, error) {
	return embed.Combine(a, b, embed.Concat)
}
