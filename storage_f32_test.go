package retro

import (
	"encoding/binary"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/retrodb/retro/internal/storage"
)

func f32StorageOpts(sys *storage.Sys) StorageOptions {
	cfg := Defaults()
	cfg.Precision = F32
	return StorageOptions{Sys: sys, Config: cfg}
}

// TestStorageF32Lifecycle: a float32 engine trains, checkpoints float32
// delta segments (format version 2), and recovers bit-exactly — the
// segments persist the store's float32 words verbatim, so every row a
// checkpoint covered comes back identical.
func TestStorageF32Lifecycle(t *testing.T) {
	dir := t.TempDir()
	e, err := OpenStorage(dir, fixtureDB(t), fixtureEmbedding(), f32StorageOpts(nil))
	if err != nil {
		t.Fatal(err)
	}
	s := e.Session()
	if got := s.Model().Store().Precision(); got != F32 {
		t.Fatalf("fresh f32 engine store precision = %v", got)
	}
	for i, title := range []string{"matrix", "alien", "brazil"} {
		if err := s.Insert("movies", []Value{Int(int64(100 + i)), Text(title), Text("france")}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	// The checkpoint's segment must be a version-2 (float32) file.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	sawV2 := false
	for _, ent := range entries {
		if !strings.HasSuffix(ent.Name(), ".seg") {
			continue
		}
		raw, err := os.ReadFile(filepath.Join(dir, ent.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if v := binary.LittleEndian.Uint32(raw[8:]); v == 2 {
			sawV2 = true
		}
	}
	if !sawV2 {
		t.Fatal("f32 checkpoint produced no version-2 segment")
	}

	liveStore := s.Model().Store()
	live := map[string][]float32{}
	for id, w := range liveStore.Words() {
		v := liveStore.Vector32(id)
		cp := make([]float32, len(v))
		copy(cp, v)
		live[w] = cp
	}
	e.Close()

	e2, err := OpenStorage(dir, fixtureDB(t), fixtureEmbedding(), f32StorageOpts(nil))
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	defer e2.Close()
	recStore := e2.Session().Model().Store()
	if got := recStore.Precision(); got != F32 {
		t.Fatalf("recovered store precision = %v", got)
	}
	if recStore.Len() != len(live) {
		t.Fatalf("recovered %d words, live had %d", recStore.Len(), len(live))
	}
	// Everything was checkpointed, so recovery is the identity on the
	// float32 words: base snapshot and delta segments both carry the
	// exact representation.
	for id, w := range recStore.Words() {
		got := recStore.Vector32(id)
		want := live[w]
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%q[%d]: recovered %v, live %v", w, i, got[i], want[i])
			}
		}
	}
}

// TestStorageF32CrashSweep is the float32 cell of the crash matrix:
// inject a failure at every durability call, recover, and assert P1
// (acked inserts survive), P2 (recovery is deterministic, bitwise on
// the float32 words) and P3 (rows a checkpoint covered recover within
// float32 ULP — bit-equal words — while WAL-replayed rows re-repair
// deterministically at float32 precision).
func TestStorageF32CrashSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("crash sweep is slow")
	}
	const sweep = 28
	for failAt := 1; failAt <= sweep; failAt++ {
		fs := &faultSys{failAt: failAt}
		dir := t.TempDir()
		acked := f32CrashWorkload(t, dir, fs.sys())

		vecs, titles := f32RecoverVectors(t, dir)
		have := map[string]bool{}
		for _, title := range titles {
			have[title] = true
		}
		for _, title := range acked {
			if !have[title] {
				t.Fatalf("failAt=%d: acked insert %q lost (recovered rows: %v)", failAt, title, titles)
			}
			if _, ok := vecs["movies.title\x00"+title]; !ok {
				t.Fatalf("failAt=%d: acked insert %q missing from the recovered model", failAt, title)
			}
		}
		vecs2, _ := f32RecoverVectors(t, dir)
		if len(vecs) != len(vecs2) {
			t.Fatalf("failAt=%d: recovery vocabularies differ: %d vs %d", failAt, len(vecs), len(vecs2))
		}
		for w, a := range vecs {
			b := vecs2[w]
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("failAt=%d: recovery not deterministic at %q[%d]: %v vs %v", failAt, w, i, a[i], b[i])
				}
			}
		}
	}
}

func f32CrashWorkload(t *testing.T, dir string, sys *storage.Sys) (acked []string) {
	t.Helper()
	e, err := OpenStorage(dir, fixtureDB(t), fixtureEmbedding(), f32StorageOpts(sys))
	if err != nil {
		return nil
	}
	defer func() { _ = e.Close() }()
	titles := []string{"matrix", "alien", "brazil", "stalker", "playtime", "yojimbo", "ran", "ikiru"}
	for i, title := range titles {
		err := e.Session().Insert("movies", []Value{Int(int64(100 + i)), Text(title), Text("usa")})
		if err != nil {
			return acked
		}
		acked = append(acked, title)
		if (i+1)%3 == 0 {
			if _, err := e.Checkpoint(); err != nil {
				return acked
			}
		}
	}
	return acked
}

func f32RecoverVectors(t *testing.T, dir string) (map[string][]float32, []string) {
	t.Helper()
	e, err := OpenStorage(dir, fixtureDB(t), fixtureEmbedding(), f32StorageOpts(nil))
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	defer e.Close()
	store := e.Session().Model().Store()
	if store.Precision() != F32 {
		t.Fatalf("recovered store precision = %v, want F32", store.Precision())
	}
	out := make(map[string][]float32, store.Len())
	for id, w := range store.Words() {
		v := store.Vector32(id)
		cp := make([]float32, len(v))
		copy(cp, v)
		out[w] = cp
	}
	var titles []string
	tbl := e.Session().DB().MustTable("movies")
	for i := 0; i < tbl.NumRows(); i++ {
		titles = append(titles, tbl.Row(i)[1].Str)
	}
	return out, titles
}

// TestStorageF32RecoveryFidelity mirrors TestStorageRecoveryFidelity on
// a float32 engine: a probe ranking after recovery matches the live
// writer's within the f32 scan tolerance.
func TestStorageF32RecoveryFidelity(t *testing.T) {
	dir := t.TempDir()
	e, err := OpenStorage(dir, fixtureDB(t), fixtureEmbedding(), f32StorageOpts(nil))
	if err != nil {
		t.Fatal(err)
	}
	s := e.Session()
	for i, title := range []string{"matrix", "alien", "brazil"} {
		if err := s.Insert("movies", []Value{Int(int64(100 + i)), Text(title), Text("france")}); err != nil {
			t.Fatal(err)
		}
		if i == 1 {
			if _, err := e.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
	}
	liveStore := s.Model().Store()
	probe, ok := liveStore.VectorOf("movies.title\x00matrix")
	if !ok {
		t.Fatal("probe vector missing from live store")
	}
	query := make([]float64, len(probe))
	copy(query, probe)
	liveScores := map[string]float64{}
	for _, m := range liveStore.TopKExact(query, liveStore.Len(), nil) {
		liveScores[m.Word] = m.Score
	}
	e.Close()

	e2, err := OpenStorage(dir, fixtureDB(t), fixtureEmbedding(), f32StorageOpts(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	recStore := e2.Session().Model().Store()
	recovered := recStore.TopKExact(query, recStore.Len(), nil)
	if len(recovered) != len(liveScores) {
		t.Fatalf("recovered ranking has %d words, live had %d", len(recovered), len(liveScores))
	}
	for _, m := range recovered {
		live, ok := liveScores[m.Word]
		if !ok {
			t.Fatalf("recovered ranking contains unknown word %q", m.Word)
		}
		if math.Abs(m.Score-live) > 1e-5 {
			t.Fatalf("score for %q drifted: live %v, recovered %v", m.Word, live, m.Score)
		}
	}
}
