package retro

// One testing.B benchmark per table and figure of the paper's evaluation
// (run the full parameter sweeps with cmd/retro-bench), plus
// micro-benchmarks of the core kernels and the DESIGN.md ablations.
//
//	go test -bench=. -benchmem

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"github.com/retrodb/retro/internal/ann"
	"github.com/retrodb/retro/internal/core"
	"github.com/retrodb/retro/internal/datagen"
	"github.com/retrodb/retro/internal/embed"
	"github.com/retrodb/retro/internal/experiments"
	"github.com/retrodb/retro/internal/extract"
	"github.com/retrodb/retro/internal/tokenize"
)

// benchScale keeps the per-iteration cost of each experiment benchmark
// small enough for -bench=. runs; cmd/retro-bench covers larger scales.
func benchScale() experiments.Scale { return experiments.TinyScale() }

func runExperiment(b *testing.B, id string) {
	b.Helper()
	s := benchScale()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := experiments.Run(id, s)
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Rows) == 0 {
			b.Fatal("empty report")
		}
	}
}

// Table 1: dataset properties.
func BenchmarkTable1DatasetProperties(b *testing.B) { runExperiment(b, "table1") }

// Table 2: runtime of the four embedding methods.
func BenchmarkTable2MethodRuntimes(b *testing.B) { runExperiment(b, "table2") }

// Figure 3: hyperparameter geometry example.
func BenchmarkFig3HyperparameterGeometry(b *testing.B) { runExperiment(b, "fig3") }

// Figure 4: retrofitting runtime vs database size.
func BenchmarkFig4RuntimeScaling(b *testing.B) { runExperiment(b, "fig4") }

// Figures 6/7: hyperparameter grids for binary classification.
func BenchmarkFig6GridSearchRO(b *testing.B) { runExperiment(b, "fig6") }
func BenchmarkFig7GridSearchRN(b *testing.B) { runExperiment(b, "fig7") }

// Figure 8: binary classification of US directors.
func BenchmarkFig8BinaryClassification(b *testing.B) { runExperiment(b, "fig8") }

// Figure 9: accuracy vs training-set size.
func BenchmarkFig9SampleSizeCurve(b *testing.B) { runExperiment(b, "fig9") }

// Figures 10/11: hyperparameter grids for language imputation.
func BenchmarkFig10GridSearchImputeRO(b *testing.B) { runExperiment(b, "fig10") }
func BenchmarkFig11GridSearchImputeRN(b *testing.B) { runExperiment(b, "fig11") }

// Figures 12a/12b: missing-value imputation comparisons.
func BenchmarkFig12aImputationLanguage(b *testing.B)    { runExperiment(b, "fig12a") }
func BenchmarkFig12bImputationAppCategory(b *testing.B) { runExperiment(b, "fig12b") }

// Figure 13: budget regression.
func BenchmarkFig13Regression(b *testing.B) { runExperiment(b, "fig13") }

// Figure 14: genre link prediction.
func BenchmarkFig14LinkPrediction(b *testing.B) { runExperiment(b, "fig14") }

// --- Core kernels ----------------------------------------------------------

func benchWorld(b *testing.B, movies int) (*core.Problem, *extract.Extraction) {
	b.Helper()
	w := datagen.TMDB(datagen.TMDBConfig{Movies: movies, Dim: 48, Seed: 1})
	ex, err := extract.FromDB(w.DB, extract.Options{})
	if err != nil {
		b.Fatal(err)
	}
	tok := tokenize.New(w.Embedding)
	return core.BuildProblem(ex, tok), ex
}

// BenchmarkROIteration measures one RO solve (10 iterations) per size.
func BenchmarkROIteration(b *testing.B) {
	for _, movies := range []int{50, 200} {
		p, _ := benchWorld(b, movies)
		b.Run(fmt.Sprintf("movies=%d", movies), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				core.SolveRO(p, core.DefaultRO(), core.SolveOptions{})
			}
		})
	}
}

// BenchmarkRNIteration measures one RN solve (10 iterations) per size:
// the paper's ~10x speed claim over RO is visible in the ratio.
func BenchmarkRNIteration(b *testing.B) {
	for _, movies := range []int{50, 200} {
		p, _ := benchWorld(b, movies)
		b.Run(fmt.Sprintf("movies=%d", movies), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				core.SolveRN(p, core.DefaultRN(), core.SolveOptions{})
			}
		})
	}
}

// BenchmarkRONegNaiveVsOptimized is the DESIGN.md ablation of the
// eq. (15) complement optimisation: "naive" materialises Ẽ_r pair by
// pair, "optimized" uses the shared target sum.
func BenchmarkRONegNaiveVsOptimized(b *testing.B) {
	p, _ := benchWorld(b, 100)
	h := core.DefaultRO()
	b.Run("optimized", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.SolveRO(p, h, core.SolveOptions{})
		}
	})
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.SolveRO(p, h, core.SolveOptions{NaiveNegative: true})
		}
	})
}

// BenchmarkParallelSolve compares sequential and parallel RO solving
// (results are bit-identical; see internal/core/parallel_test.go).
func BenchmarkParallelSolve(b *testing.B) {
	p, _ := benchWorld(b, 200)
	h := core.DefaultRO()
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.SolveRO(p, h, core.SolveOptions{})
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.SolveROParallel(p, h, core.ParallelOptions{})
		}
	})
}

// BenchmarkFaruquiBaseline measures the MF solver (20 iterations).
func BenchmarkFaruquiBaseline(b *testing.B) {
	p, _ := benchWorld(b, 200)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		core.SolveFaruqui(p, 1, 20)
	}
}

// BenchmarkExtraction measures §3.2 relationship extraction.
func BenchmarkExtraction(b *testing.B) {
	w := datagen.TMDB(datagen.TMDBConfig{Movies: 200, Dim: 48, Seed: 1})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := extract.FromDB(w.DB, extract.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTokenizerTrie is the DESIGN.md tokenizer ablation: trie
// longest-match versus naive whitespace lookup.
func BenchmarkTokenizerTrie(b *testing.B) {
	w := datagen.TMDB(datagen.TMDBConfig{Movies: 100, Dim: 48, Seed: 1})
	ex, err := extract.FromDB(w.DB, extract.Options{})
	if err != nil {
		b.Fatal(err)
	}
	tok := tokenize.New(w.Embedding)
	texts := make([]string, 0, len(ex.Values))
	for _, v := range ex.Values {
		texts = append(texts, v.Text)
	}
	b.Run("trie-longest-match", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, t := range texts {
				tok.InitialVector(t)
			}
		}
	})
	b.Run("whitespace", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, t := range texts {
				tok.WhitespaceInitialVector(t)
			}
		}
	})
}

// BenchmarkRetrofitEndToEnd measures the public API path: extraction,
// tokenization, problem assembly and RN solve.
func BenchmarkRetrofitEndToEnd(b *testing.B) {
	w := datagen.TMDB(datagen.TMDBConfig{Movies: 100, Dim: 48, Seed: 1})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Retrofit(w.DB, w.Embedding, Defaults()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIncrementalInsert measures ExecAndRefresh — the legacy
// full-refresh repair kept for opaque SQL statements — against a full
// re-solve. At this toy scale the full matrix solve wins: the refresh
// pays whole-database re-extraction and problem rebuild on every call.
// The serving write path (Session.Insert/InsertBatch) repairs from the
// row delta instead; BenchmarkSessionInsert covers it and demonstrates
// the flat per-row cost.
func BenchmarkIncrementalInsert(b *testing.B) {
	w := datagen.TMDB(datagen.TMDBConfig{Movies: 100, Dim: 48, Seed: 1})
	b.Run("incremental", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			world := datagen.TMDB(datagen.TMDBConfig{Movies: 100, Dim: 48, Seed: 1})
			sess, err := NewSession(world.DB, world.Embedding, Defaults())
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			if err := sess.ExecAndRefresh(fmt.Sprintf(
				`INSERT INTO movies (id, title, original_language, director_id) VALUES (%d, 'bench title %d', 'english', 0)`,
				10_000+i, i)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("full-resolve", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Retrofit(w.DB, w.Embedding, Defaults()); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Serving write path: delta extraction + batched repair ------------------

// benchMovieRow builds a movies row for the TMDB schema (id, title,
// overview, original_language, budget, revenue, popularity, director_id)
// that shares the high-degree 'english' hub value, the worst case the
// repair budget exists for.
func benchMovieRow(id int, title string) []Value {
	return []Value{Int(int64(id)), Text(title), Null, Text("english"), Null, Null, Null, Null}
}

// BenchmarkSessionInsert measures the incremental write path at two
// database sizes a decade apart. The acceptance bar for the O(delta)
// rewrite: per-row cost of "single" stays flat (within ~2x) from
// movies=300 to movies=3000, and one 100-row InsertBatch beats 100
// single Inserts by >= 5x per row (compare ns/row across sub-benchmarks;
// batch100 also reports ns/row explicitly).
func BenchmarkSessionInsert(b *testing.B) {
	for _, movies := range []int{300, 3000} {
		w := datagen.TMDB(datagen.TMDBConfig{Movies: movies, Dim: 32, Seed: 1})
		cfg := Defaults()
		cfg.Parallel = -1
		sess, err := NewSession(w.DB, w.Embedding, cfg)
		if err != nil {
			b.Fatal(err)
		}
		nextID := 1_000_000
		b.Run(fmt.Sprintf("single/movies=%d", movies), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				nextID++
				if err := sess.Insert("movies", benchMovieRow(nextID, fmt.Sprintf("bench premiere %d", nextID))); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "ns/row")
		})
		b.Run(fmt.Sprintf("batch100/movies=%d", movies), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rows := make([][]Value, 100)
				for r := range rows {
					nextID++
					rows[r] = benchMovieRow(nextID, fmt.Sprintf("bench premiere %d", nextID))
				}
				if err := sess.InsertBatch("movies", rows); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*100), "ns/row")
		})
	}
}

// --- Similarity search: brute force vs HNSW --------------------------------

const annBenchDim = 32

// annBenchWorld builds a store of n vectors plus a fixed query set. The
// vectors are a cluster mixture, mirroring how retrofitted embeddings
// group by column and relation neighbourhood rather than filling the
// space uniformly.
func annBenchWorld(n int) (*embed.Store, [][]float64) {
	rng := rand.New(rand.NewSource(42))
	centers := make([][]float64, 256)
	for ci := range centers {
		c := make([]float64, annBenchDim)
		for j := range c {
			c[j] = rng.NormFloat64()
		}
		centers[ci] = c
	}
	point := func() []float64 {
		c := centers[rng.Intn(len(centers))]
		v := make([]float64, annBenchDim)
		for j := range v {
			v[j] = c[j] + 0.25*rng.NormFloat64()
		}
		return v
	}
	s := embed.NewStore(annBenchDim)
	for i := 0; i < n; i++ {
		s.Add(fmt.Sprintf("v%07d", i), point())
	}
	queries := make([][]float64, 64)
	for qi := range queries {
		queries[qi] = point()
	}
	return s, queries
}

var annBenchSizes = []int{10_000, 50_000, 200_000}

// BenchmarkTopKBrute is the exact O(n·d) scan the library used before the
// serving subsystem existed.
func BenchmarkTopKBrute(b *testing.B) {
	for _, n := range annBenchSizes {
		s, queries := annBenchWorld(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if got := s.TopKExact(queries[i%len(queries)], 10, nil); len(got) != 10 {
					b.Fatal("short result")
				}
			}
		})
	}
}

// BenchmarkTopKHNSW measures the approximate path (index build excluded;
// it is forced before the timer starts) and reports recall@10 against the
// exact scan as a custom metric. The serving acceptance bar is >=10x over
// brute force at 50k vectors with recall@10 >= 0.95.
func BenchmarkTopKHNSW(b *testing.B) {
	for _, n := range annBenchSizes {
		s, queries := annBenchWorld(n)
		s.EnableANN(1, ann.Params{})
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			s.TopK(queries[0], 10, nil) // build the index outside the timing
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if got := s.TopK(queries[i%len(queries)], 10, nil); len(got) != 10 {
					b.Fatal("short result")
				}
			}
			b.StopTimer()
			hits, total := 0, 0
			for _, q := range queries[:16] {
				want := map[int]bool{}
				for _, m := range s.TopKExact(q, 10, nil) {
					want[m.ID] = true
				}
				for _, m := range s.TopK(q, 10, nil) {
					if want[m.ID] {
						hits++
					}
				}
				total += 10
			}
			b.ReportMetric(float64(hits)/float64(total), "recall@10")
		})
	}
}

// --- Snapshot cold start ----------------------------------------------------

// The serving acceptance bar for snapshot persistence: booting from a
// snapshot must beat train-from-scratch by >= 10x on the 50k-vector
// generated dataset. The two benchmarks measure both boot paths over
// identical in-memory data: ColdStartTrain is what `retro-serve -data`
// does (retrofit + build the HNSW index), ColdStartSnapshot is what
// `retro-serve -snapshot` does (deserialise the store and adopt the
// persisted graph, no solver and no index construction).

// coldStartMovies yields ~52k text values at the TMDB schema's fan-out.
const coldStartMovies = 12000

var coldStart struct {
	sync.Once
	world *datagen.TMDBWorld
	snap  []byte
}

func coldStartWorld(b *testing.B) (*datagen.TMDBWorld, []byte) {
	b.Helper()
	coldStart.Do(func() {
		w := datagen.TMDB(datagen.TMDBConfig{Movies: coldStartMovies, Dim: 32, Seed: 1})
		cfg := Defaults()
		cfg.Parallel = -1
		sess, err := NewSession(w.DB, w.Embedding, cfg)
		if err != nil {
			panic(err)
		}
		sess.Model().Store().WarmANN()
		var buf bytes.Buffer
		if err := sess.Snapshot(&buf); err != nil {
			panic(err)
		}
		coldStart.world = w
		coldStart.snap = buf.Bytes()
	})
	return coldStart.world, coldStart.snap
}

func BenchmarkColdStartTrain(b *testing.B) {
	w, _ := coldStartWorld(b)
	cfg := Defaults()
	cfg.Parallel = -1
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sess, err := NewSession(w.DB, w.Embedding, cfg)
		if err != nil {
			b.Fatal(err)
		}
		sess.Model().Store().WarmANN()
		if sess.Model().Store().ANNIndex() == nil {
			b.Fatal("index not built")
		}
	}
}

func BenchmarkColdStartSnapshot(b *testing.B) {
	w, snap := coldStartWorld(b)
	b.SetBytes(int64(len(snap)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sess, err := ResumeSession(w.DB, w.Embedding, bytes.NewReader(snap))
		if err != nil {
			b.Fatal(err)
		}
		sess.Model().Store().WarmANN() // must be a no-op: the graph came from the snapshot
		if sess.Model().Store().ANNIndex() == nil {
			b.Fatal("adopted index missing")
		}
	}
}

// BenchmarkSQLSelectJoin measures the reldb hash-join SELECT path.
func BenchmarkSQLSelectJoin(b *testing.B) {
	w := datagen.TMDB(datagen.TMDBConfig{Movies: 300, Dim: 16, Seed: 1})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := w.DB.Exec(`
			SELECT movies.title, persons.name
			FROM movies JOIN persons ON movies.director_id = persons.id
			WHERE movies.budget > 5000000`)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) == 0 {
			b.Fatal("empty join")
		}
	}
}
