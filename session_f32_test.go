package retro

import (
	"math"
	"testing"

	"github.com/retrodb/retro/internal/vec"
)

// An F32 session must track an F64 session closely through the whole
// incremental lifecycle: initial training rounds each solved vector once
// at the store boundary, and every delta repair solves in the session's
// float64 mirror before rounding the repaired rows back in. The paths
// are numerically independent after the first rounding, so vectors are
// compared by cosine, not bitwise.
func TestSessionF32TracksF64(t *testing.T) {
	mk := func(p Precision) *Session {
		cfg := Defaults()
		cfg.Precision = p
		s, err := NewSession(fixtureDB(t), fixtureEmbedding(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	s64 := mk(F64)
	s32 := mk(F32)
	if got := s32.Model().Store().Precision(); got != F32 {
		t.Fatalf("f32 session store precision = %v", got)
	}

	rows := [][]Value{
		{Int(10), Text("brazil"), Text("usa")},
		{Int(11), Text("leon"), Text("france")},
		{Int(12), Text("nikita"), Text("france")},
	}
	if err := s64.Insert("movies", rows[0]); err != nil {
		t.Fatal(err)
	}
	if err := s32.Insert("movies", rows[0]); err != nil {
		t.Fatal(err)
	}
	if err := s64.InsertBatch("movies", rows[1:]); err != nil {
		t.Fatal(err)
	}
	if err := s32.InsertBatch("movies", rows[1:]); err != nil {
		t.Fatal(err)
	}
	if s32.Stale() {
		t.Fatal("f32 session stale after inserts")
	}

	m64, m32 := s64.Model(), s32.Model()
	if m64.NumValues() != m32.NumValues() {
		t.Fatalf("value counts diverged: %d vs %d", m64.NumValues(), m32.NumValues())
	}
	st := m32.Store()
	for _, word := range st.Words() {
		v32, ok := m32.Store().VectorOf(word)
		if !ok {
			t.Fatalf("f32 store missing %q", word)
		}
		v64, ok := m64.Store().VectorOf(word)
		if !ok {
			t.Fatalf("f64 store missing %q", word)
		}
		if cos := cosine(v32, v64); cos < 1-1e-9 {
			t.Fatalf("%q drifted: cosine %.12f", word, cos)
		}
	}

	// Relational placement survives the rounded repair path.
	b, err := m32.Vector("movies", "title", "brazil")
	if err != nil {
		t.Fatal(err)
	}
	us, _ := m32.Vector("movies", "country", "usa")
	fr, _ := m32.Vector("movies", "country", "france")
	if vec.SquaredDistance(b, us) >= vec.SquaredDistance(b, fr) {
		t.Fatal("f32 repaired value not placed relationally")
	}

	// The full re-solve path keeps the precision too.
	if err := s32.Resolve(); err != nil {
		t.Fatal(err)
	}
	if got := s32.Model().Store().Precision(); got != F32 {
		t.Fatalf("precision after Resolve = %v", got)
	}
}

func cosine(a, b []float64) float64 {
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}
