package retro

import (
	"testing"

	"github.com/retrodb/retro/internal/datagen"
)

// TestSessionInsertRefreshesANN checks the incremental-maintenance
// contract of the serving path: after Session.Insert the model's ANN
// index must already contain the new value — maintained in place, not
// rebuilt — so Neighbors answered through HNSW include post-insert data
// at flat cost.
func TestSessionInsertRefreshesANN(t *testing.T) {
	w := datagen.TMDB(datagen.TMDBConfig{Movies: 60, Dim: 16, Seed: 1})
	cfg := Defaults()
	cfg.ANNThreshold = 1 // force ANN even on this toy vocabulary
	sess, err := NewSession(w.DB, w.Embedding, cfg)
	if err != nil {
		t.Fatal(err)
	}

	titles, err := w.DB.QueryText(`SELECT title FROM movies`)
	if err != nil || len(titles) == 0 {
		t.Fatalf("no seed titles (err=%v)", err)
	}
	m := sess.Model()
	if _, err := m.Neighbors("movies", "title", titles[0], 3); err != nil {
		t.Fatal(err)
	}
	if m.Store().ANNIndex() == nil {
		t.Fatal("ANN index not built by Neighbors")
	}

	const newTitle = "a wholly new retrofit film"
	if err := sess.ExecAndRefresh(
		`INSERT INTO movies (id, title, original_language, director_id) VALUES (99001, '` + newTitle + `', 'english', 0)`); err != nil {
		t.Fatal(err)
	}

	m2 := sess.Model()
	key, ok := m2.Key("movies", "title", newTitle)
	if !ok {
		t.Fatal("new value missing from model")
	}
	id, _ := m2.Store().ID(key)
	// Refresh either maintains the index in place (small repairs) or
	// marks it stale (when the repaired neighbourhood covers most of the
	// vocabulary, as on this toy fixture); either way, after WarmANN —
	// which the serving path runs on every insert — the index must hold
	// the inserted value.
	m2.Store().WarmANN()
	idx := m2.Store().ANNIndex()
	if idx == nil {
		t.Fatal("ANN index not available after insert + WarmANN")
	}
	if !idx.Contains(id) {
		t.Fatal("ANN index does not contain the inserted value")
	}
	nb, err := m2.Neighbors("movies", "title", newTitle, 3)
	if err != nil {
		t.Fatalf("post-insert Neighbors: %v", err)
	}
	if len(nb) == 0 {
		t.Fatal("post-insert Neighbors returned nothing")
	}

	// The previous model shares the updated store and stays queryable.
	if _, err := m.Neighbors("movies", "title", titles[0], 3); err != nil {
		t.Fatalf("pre-insert model broken by refresh: %v", err)
	}
}
