// Simquery: FREDDY-style domain-specific similarity queries (§1, [4, 16]):
// combine SQL over the embedded relational engine with nearest-neighbour
// search over the retrofitted vectors, and maintain everything
// incrementally as rows arrive.
package main

import (
	"fmt"
	"log"
	"strings"

	retro "github.com/retrodb/retro"
	"github.com/retrodb/retro/internal/datagen"
)

func main() {
	world := datagen.TMDB(datagen.TMDBConfig{Movies: 150, Dim: 48, Seed: 11})

	// A live session keeps the vectors in sync with the data.
	sess, err := retro.NewSession(world.DB, world.Embedding, retro.Defaults())
	if err != nil {
		log.Fatal(err)
	}
	db := sess.DB()

	// Plain SQL works against the embedded engine...
	res := db.MustExec(`
		SELECT movies.title, persons.name
		FROM movies JOIN persons ON movies.director_id = persons.id
		ORDER BY movies.title LIMIT 3`)
	fmt.Println("SQL: three movies and their directors")
	for _, row := range res.Rows {
		fmt.Printf("  %-28q directed by %q\n", row[0].Str, row[1].Str)
	}

	// ...and the model answers similarity questions SQL cannot express:
	// "which directors are most similar to this one, considering both
	// their names and what they directed?"
	director := res.Rows[0][1].Str
	fmt.Printf("\nsimilarity: directors most similar to %q\n", director)
	matches, err := sess.Model().Neighbors("persons", "name", director, 8)
	if err != nil {
		log.Fatal(err)
	}
	shown := 0
	for _, m := range matches {
		col, text, _ := strings.Cut(m.Word, "\x00")
		if col != "persons.name" {
			continue
		}
		fmt.Printf("  %.3f  %s\n", m.Score, text)
		if shown++; shown == 3 {
			break
		}
	}

	// Inserting new rows updates the vectors incrementally — no
	// re-training (§1's incremental maintenance property).
	before := sess.Model().NumValues()
	if err := sess.ExecAndRefresh(
		`INSERT INTO movies (id, title, original_language, director_id) VALUES (9001, 'the phantom reel', 'english', 0)`,
	); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ninserted a movie: %d -> %d text values\n", before, sess.Model().NumValues())
	nb, err := sess.Model().Neighbors("movies", "title", "the phantom reel", 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("neighbours of the new title (placed without re-training):")
	for _, m := range nb {
		col, text, _ := strings.Cut(m.Word, "\x00")
		fmt.Printf("  %.3f  %-20s (%s)\n", m.Score, text, col)
	}
}
