// Hyperparams reproduces the paper's Figure 3: 2-dimensional embeddings
// of three movies and two countries under sweeps of α, β, γ and δ,
// printed as coordinates (the paper plots them).
package main

import (
	"fmt"
	"os"

	"github.com/retrodb/retro/internal/experiments"
)

func main() {
	rep, err := experiments.Fig3()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	rep.Print(os.Stdout)
	fmt.Println(`reading the table like the paper's plots:
 - α-sweep: growing α keeps every point near its original position
 - β-sweep: growing β pulls the three movies toward their column centroid
 - γ-sweep: growing γ pulls Amelie toward France (its related country)
 - δ-sweep: δ=0 lets everything contract; larger δ pushes the cloud apart`)
}
