// Link prediction: predict missing movie→genre edges with the Fig. 5c
// two-tower network, as in §5.7. Embeddings are trained with the
// movie↔genre relations hidden, so the predictor must generalise from
// text and the remaining relations.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	retro "github.com/retrodb/retro"
	"github.com/retrodb/retro/internal/datagen"
)

func main() {
	world := datagen.TMDB(datagen.TMDBConfig{Movies: 250, Dim: 48, Seed: 5})

	cfg := retro.Defaults()
	cfg.Variant = retro.RO
	cfg.ExcludeRelations = []string{
		"movies.title->genres.name",
		"movies.overview->genres.name",
		"movies.original_language->genres.name",
	}
	model, err := retro.Retrofit(world.DB, world.Embedding, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Positive pairs from the data, negatives sampled from absent pairs.
	type pair struct {
		title, genre string
		label        float64
	}
	var titles []string
	truth := map[string]map[string]bool{}
	for title, genres := range world.MovieGenres {
		if _, err := model.Vector("movies", "title", title); err != nil {
			continue
		}
		titles = append(titles, title)
		truth[title] = map[string]bool{}
		for _, g := range genres {
			truth[title][g] = true
		}
	}
	sort.Strings(titles)
	var pairs []pair
	for _, t := range titles {
		for g := range truth[t] {
			pairs = append(pairs, pair{t, g, 1})
		}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].title != pairs[j].title {
			return pairs[i].title < pairs[j].title
		}
		return pairs[i].genre < pairs[j].genre
	})
	rng := rand.New(rand.NewSource(3))
	nPos := len(pairs)
	for len(pairs) < 2*nPos {
		t := titles[rng.Intn(len(titles))]
		g := world.GenreNames[rng.Intn(len(world.GenreNames))]
		if !truth[t][g] {
			pairs = append(pairs, pair{t, g, 0})
		}
	}
	rng.Shuffle(len(pairs), func(i, j int) { pairs[i], pairs[j] = pairs[j], pairs[i] })

	dim := model.Store().Dim()
	gather := func(ps []pair) (*retro.Matrix, *retro.Matrix, []float64) {
		src := retro.NewMatrix(len(ps), dim)
		dst := retro.NewMatrix(len(ps), dim)
		y := make([]float64, len(ps))
		for i, pr := range ps {
			sv, _ := model.Vector("movies", "title", pr.title)
			dv, _ := model.Vector("genres", "name", pr.genre)
			copy(src.Row(i), sv)
			copy(dst.Row(i), dv)
			y[i] = pr.label
		}
		return src, dst, y
	}
	split := len(pairs) * 2 / 3
	trS, trD, trY := gather(pairs[:split])
	teS, teD, teY := gather(pairs[split:])

	lp := retro.NewLinkPredictor(dim, dim, retro.TaskConfig{
		Hidden1: 64, Hidden2: 32, Epochs: 250, Patience: 250,
		LearnRate: 0.02, L2: 5e-4, Seed: 4,
	})
	if _, err := lp.Fit(trS, trD, trY); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pairs: %d train / %d test (half positive)\n", split, len(pairs)-split)
	fmt.Printf("link prediction accuracy: %.3f (0.5 = chance; the paper's §5.7 notes this task is hard)\n",
		lp.Accuracy(teS, teD, teY))

	// Score a few concrete pairs.
	fmt.Println("\nsample scores:")
	for _, pr := range pairs[:4] {
		sv, _ := model.Vector("movies", "title", pr.title)
		dv, _ := model.Vector("genres", "name", pr.genre)
		fmt.Printf("  P(edge)=%.2f  label=%v  %q -> %q\n",
			lp.PredictProb(sv, dv), pr.label, pr.title, pr.genre)
	}
}
