// Quickstart: build a small movie database, retrofit a toy embedding and
// explore the learned vectors.
package main

import (
	"fmt"
	"log"

	retro "github.com/retrodb/retro"
)

func main() {
	// 1. A database: movies with directors and production countries.
	db := retro.NewDB()
	for _, stmt := range []string{
		`CREATE TABLE movies (id INT PRIMARY KEY, title TEXT, director TEXT, country TEXT)`,
		`INSERT INTO movies VALUES
			(1, '5th element', 'luc besson', 'france'),
			(2, 'alien', 'ridley scott', 'usa'),
			(3, 'brazil', 'terry gilliam', 'uk'),
			(4, 'valerian', 'luc besson', 'france'),
			(5, 'gladiator', 'ridley scott', 'usa')`,
	} {
		db.MustExec(stmt)
	}

	// 2. A pre-trained word embedding. Real deployments load GloVe or
	// word2vec text files via retro.ReadTextEmbedding; here a toy set,
	// including the multi-word phrase "luc_besson" the §3.1 trie
	// tokenizer prefers over its parts.
	emb := retro.NewEmbedding(4)
	add := func(word string, v ...float64) { emb.Add(word, v) }
	add("alien", 0.9, 0.1, 0, 0)
	add("brazil", 0.1, 0.9, 0.2, 0) // ambiguous: country or movie?
	add("gladiator", 0.8, 0, 0.1, 0.1)
	add("valerian", 0.2, 0.1, 0.9, 0)
	add("element", 0.1, 0, 0.8, 0.2)
	add("luc_besson", 0.1, 0.1, 0.9, 0.3)
	add("ridley", 0.7, 0, 0.2, 0.2)
	add("scott", 0.6, 0.1, 0.1, 0.3)
	add("france", 0, 0.2, 0.7, 0.5)
	add("usa", 0.8, 0.2, 0, 0.4)
	add("uk", 0.3, 0.7, 0.1, 0.4)

	// 3. Retrofit: every unique text value gets a vector reflecting both
	// the word embedding and the relational structure.
	model, err := retro.Retrofit(db, emb, retro.Defaults())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("retrofitted %d text values\n\n", model.NumValues())

	// 4. The retrofitted space mixes textual and relational similarity:
	// "brazil" the movie now lives near other movies, not near countries.
	for _, query := range []struct{ col, text string }{
		{"title", "brazil"},
		{"title", "5th element"},
		{"director", "luc besson"},
	} {
		fmt.Printf("neighbours of movies.%s %q:\n", query.col, query.text)
		matches, err := model.Neighbors("movies", query.col, query.text, 3)
		if err != nil {
			log.Fatal(err)
		}
		for _, m := range matches {
			fmt.Printf("  %.3f  %s\n", m.Score, displayKey(m.Word))
		}
		fmt.Println()
	}

	// 5. Vectors are plain []float64, ready for any ML pipeline.
	v, _ := model.Vector("movies", "title", "alien")
	w, _ := model.Vector("movies", "title", "gladiator")
	fmt.Printf("cos(alien, gladiator) = %.3f (same director)\n", retro.Cosine(v, w))
}

func displayKey(key string) string {
	// Store keys are "table.column\x00text".
	for i := 0; i < len(key); i++ {
		if key[i] == 0 {
			return key[i+1:] + "  (" + key[:i] + ")"
		}
	}
	return key
}
