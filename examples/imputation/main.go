// Imputation: predict missing app categories the way §5.5.2 does — train
// embeddings with the category information hidden, then train the Fig. 5a
// imputer on the app-name vectors. Compare against mode imputation.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	retro "github.com/retrodb/retro"
	"github.com/retrodb/retro/internal/datagen"
)

func main() {
	// Synthetic Google-Play-like world (a stand-in for the Kaggle CSVs;
	// see DESIGN.md). The generator also returns the ground truth.
	world := datagen.GooglePlay(datagen.GooglePlayConfig{Apps: 260, Dim: 48, Seed: 7})

	// Train embeddings WITHOUT the category column and the genre
	// relation — the imputation target must not leak into the vectors.
	cfg := retro.Defaults()
	cfg.Variant = retro.RO
	cfg.ExcludeColumns = []string{"categories.name", "genres.name"}
	model, err := retro.Retrofit(world.DB, world.Embedding, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Assemble (app vector, category) pairs.
	var names []string
	for name := range world.AppCategory {
		if _, err := model.Vector("apps", "name", name); err == nil {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	rng := rand.New(rand.NewSource(1))
	rng.Shuffle(len(names), func(i, j int) { names[i], names[j] = names[j], names[i] })
	split := len(names) * 2 / 3

	dim := model.Store().Dim()
	gather := func(ns []string) (*retro.Matrix, []int) {
		x := retro.NewMatrix(len(ns), dim)
		y := make([]int, len(ns))
		for i, n := range ns {
			v, _ := model.Vector("apps", "name", n)
			copy(x.Row(i), v)
			y[i] = world.AppCategory[n]
		}
		return x, y
	}
	trainX, trainY := gather(names[:split])
	testX, testY := gather(names[split:])

	// Fig. 5a imputer (scaled down for the example).
	imp := retro.NewCategoryImputer(dim, len(world.CategoryNames), retro.TaskConfig{
		Hidden1: 64, Hidden2: 32, Epochs: 80, Patience: 20, Seed: 2,
	})
	if _, err := imp.Fit(trainX, trainY); err != nil {
		log.Fatal(err)
	}

	// Mode baseline: always predict the most frequent training category.
	counts := map[int]int{}
	for _, y := range trainY {
		counts[y]++
	}
	mode, best := 0, -1
	for c, n := range counts {
		if n > best {
			mode, best = c, n
		}
	}
	modeCorrect := 0
	for _, y := range testY {
		if y == mode {
			modeCorrect++
		}
	}

	fmt.Printf("apps: %d train / %d test, %d categories\n", split, len(names)-split, len(world.CategoryNames))
	fmt.Printf("mode imputation accuracy:  %.3f\n", float64(modeCorrect)/float64(len(testY)))
	fmt.Printf("RETRO (RO) imputation:     %.3f\n", imp.Accuracy(testX, testY))
	fmt.Println("\nthe gap is the paper's Fig. 12b story: review text is only")
	fmt.Println("reachable through the FK relation, so single-table methods miss it")
}
