package retro

import (
	"fmt"

	"github.com/retrodb/retro/internal/core"
	"github.com/retrodb/retro/internal/deepwalk"
	"github.com/retrodb/retro/internal/extract"
)

// Session couples a database with a live retrofitted model and maintains
// the model incrementally as rows are inserted — the §1 property that
// RETRO "does not rely on re-training, which allows us to incrementally
// maintain the word vectors whenever the data in the database changes".
type Session struct {
	db    *DB
	base  *Embedding
	cfg   Config
	model *Model
	// Hops bounds how far a change propagates during local repair
	// (default 2 relation hops).
	Hops int
}

// NewSession trains the initial model and returns the live session.
func NewSession(db *DB, base *Embedding, cfg Config) (*Session, error) {
	model, err := Retrofit(db, base, cfg)
	if err != nil {
		return nil, err
	}
	return &Session{db: db, base: base, cfg: cfg, model: model, Hops: 2}, nil
}

// Model returns the current model.
func (s *Session) Model() *Model { return s.model }

// DB returns the session's database.
func (s *Session) DB() *DB { return s.db }

// Insert adds a row (column order) to a table and incrementally repairs
// the embeddings: the problem is re-extracted, existing vectors are
// carried over by value key, and only new values plus their Hops-hop
// neighbourhood are re-solved with everything else held fixed.
func (s *Session) Insert(table string, row []Value) error {
	if _, err := s.db.Insert(table, row); err != nil {
		return err
	}
	return s.refresh()
}

// ExecAndRefresh runs a SQL statement (e.g. INSERT) and repairs the
// embeddings afterwards.
func (s *Session) ExecAndRefresh(sql string) error {
	if _, err := s.db.Exec(sql); err != nil {
		return err
	}
	return s.refresh()
}

func (s *Session) refresh() error {
	old := s.model
	ex, err := extract.FromDB(s.db, extract.Options{
		ExcludeColumns:   s.cfg.ExcludeColumns,
		ExcludeRelations: s.cfg.ExcludeRelations,
	})
	if err != nil {
		return err
	}
	prob := core.BuildProblem(ex, old.tok)

	// Warm start: carry over solved vectors by value key; anything new
	// keeps its W0 initialisation and is marked dirty.
	w := prob.W0.Clone()
	var dirty []int
	for _, v := range ex.Values {
		key := deepwalk.ValueKey(ex, v.ID)
		if oldVec, ok := old.store.VectorOf(key); ok && len(oldVec) == prob.Dim {
			copy(w.Row(v.ID), oldVec)
		} else {
			dirty = append(dirty, v.ID)
		}
	}
	if len(dirty) > 0 {
		affected := core.AffectedNodes(prob, dirty, s.Hops)
		core.UpdateIncremental(prob, w, affected, old.hp, s.cfg.Variant, core.IncrementalOptions{})
	}

	m := &Model{
		db: s.db, base: s.base, ex: ex, tok: old.tok, prob: prob,
		cfg: s.cfg, hp: old.hp,
	}
	m.store = m.buildStore(w.Row)
	s.model = m
	return nil
}

// Resolve runs a full re-solve from scratch (the non-incremental path),
// replacing the model. Useful after bulk loads.
func (s *Session) Resolve() error {
	model, err := Retrofit(s.db, s.base, s.cfg)
	if err != nil {
		return fmt.Errorf("retro: full re-solve: %w", err)
	}
	s.model = model
	return nil
}
