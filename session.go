package retro

import (
	"fmt"

	"github.com/retrodb/retro/internal/core"
	"github.com/retrodb/retro/internal/deepwalk"
	"github.com/retrodb/retro/internal/extract"
)

// Session couples a database with a live retrofitted model and maintains
// the model incrementally as rows are inserted — the §1 property that
// RETRO "does not rely on re-training, which allows us to incrementally
// maintain the word vectors whenever the data in the database changes".
//
// Insert and ExecAndRefresh update the embedding store (and any built
// ANN index) in place, and previously obtained Models share that store.
// Callers that query a Model concurrently with inserts must synchronise
// the two, e.g. with a RWMutex as internal/server does; a held Model
// stays queryable across inserts but is not a frozen snapshot.
//
// A session's trained state can be persisted with Snapshot and restored
// with ResumeSession (see snapshot.go): the resumed session keeps the
// deserialised HNSW index and continues incremental maintenance exactly
// where the writing process left off.
type Session struct {
	db    *DB
	base  *Embedding
	cfg   Config
	model *Model
	// Hops bounds how far a change propagates during local repair
	// (default 2 relation hops).
	Hops int
}

// NewSession trains the initial model and returns the live session.
func NewSession(db *DB, base *Embedding, cfg Config) (*Session, error) {
	model, err := Retrofit(db, base, cfg)
	if err != nil {
		return nil, err
	}
	return &Session{db: db, base: base, cfg: cfg, model: model, Hops: 2}, nil
}

// Model returns the current model.
func (s *Session) Model() *Model { return s.model }

// DB returns the session's database.
func (s *Session) DB() *DB { return s.db }

// RepairError reports that a row was committed to the database but the
// subsequent embedding repair failed: the model is now stale relative to
// the data until a later refresh or Resolve succeeds. Callers should not
// treat it as "nothing happened" — retrying the same insert will hit a
// duplicate-key error.
type RepairError struct{ Err error }

func (e *RepairError) Error() string {
	return fmt.Sprintf("retro: row stored but embedding repair failed: %v", e.Err)
}

func (e *RepairError) Unwrap() error { return e.Err }

// Insert adds a row (column order) to a table and incrementally repairs
// the embeddings: the problem is re-extracted, existing vectors are
// carried over by value key, and only new values plus their Hops-hop
// neighbourhood are re-solved with everything else held fixed.
// A failure after the row was committed is reported as *RepairError.
func (s *Session) Insert(table string, row []Value) error {
	if _, err := s.db.Insert(table, row); err != nil {
		return err
	}
	if err := s.refresh(); err != nil {
		return &RepairError{Err: err}
	}
	return nil
}

// ExecAndRefresh runs a SQL statement (e.g. INSERT) and repairs the
// embeddings afterwards. A failure after the statement executed is
// reported as *RepairError.
func (s *Session) ExecAndRefresh(sql string) error {
	if _, err := s.db.Exec(sql); err != nil {
		return err
	}
	if err := s.refresh(); err != nil {
		return &RepairError{Err: err}
	}
	return nil
}

func (s *Session) refresh() error {
	old := s.model
	ex, err := extract.FromDB(s.db, extract.Options{
		ExcludeColumns:   s.cfg.ExcludeColumns,
		ExcludeRelations: s.cfg.ExcludeRelations,
	})
	if err != nil {
		return err
	}
	prob := core.BuildProblem(ex, old.tok)

	// Warm start: carry over solved vectors by value key; anything new
	// keeps its W0 initialisation and is marked dirty.
	w := prob.W0.Clone()
	var dirty []int
	for _, v := range ex.Values {
		key := deepwalk.ValueKey(ex, v.ID)
		if oldVec, ok := old.store.VectorOf(key); ok && len(oldVec) == prob.Dim {
			copy(w.Row(v.ID), oldVec)
		} else {
			dirty = append(dirty, v.ID)
		}
	}
	touched := dirty
	if len(dirty) > 0 {
		touched = core.AffectedNodes(prob, dirty, s.Hops)
		core.UpdateIncremental(prob, w, touched, old.hp, s.cfg.Variant, core.IncrementalOptions{})
	}

	m := &Model{
		db: s.db, base: s.base, ex: ex, tok: old.tok, prob: prob,
		cfg: s.cfg, hp: old.hp,
	}
	if old.store.Dim() != prob.Dim {
		// Dimensionality changed (cannot happen with a fixed base
		// embedding, but stay safe): rebuild the store from scratch.
		m.store = m.buildStore(w.Row)
		s.model = m
		return nil
	}
	// Reuse the previous store: the vocabulary only grows (reldb has no
	// DELETE) and untouched vectors were carried over bitwise, so only the
	// new values and their repaired Hops-hop neighbourhood need
	// (re)writing. Store.Add maintains a built HNSW index incrementally,
	// which keeps single-row insert cost flat on the serving path instead
	// of forcing a full index rebuild. The previous Model shares this
	// store: it stays queryable, but is not a frozen snapshot.
	if len(touched)*2 >= old.store.Len() {
		// Repairing most of the vocabulary: one rebuild is cheaper than
		// a tombstone + beam-search re-insert per value (which would trip
		// the tombstone limit and force the rebuild anyway).
		old.store.InvalidateANN()
	}
	changed := make(map[int]bool, len(touched))
	for _, id := range touched {
		changed[id] = true
	}
	for _, v := range ex.Values {
		key := deepwalk.ValueKey(ex, v.ID)
		if changed[v.ID] {
			old.store.Add(key, w.Row(v.ID))
			continue
		}
		if _, ok := old.store.VectorOf(key); !ok {
			old.store.Add(key, w.Row(v.ID))
		}
	}
	m.store = old.store
	s.model = m
	return nil
}

// Resolve runs a full re-solve from scratch (the non-incremental path),
// replacing the model. Useful after bulk loads.
func (s *Session) Resolve() error {
	model, err := Retrofit(s.db, s.base, s.cfg)
	if err != nil {
		return fmt.Errorf("retro: full re-solve: %w", err)
	}
	s.model = model
	return nil
}
