package retro

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"github.com/retrodb/retro/internal/core"
	"github.com/retrodb/retro/internal/deepwalk"
	"github.com/retrodb/retro/internal/extract"
	"github.com/retrodb/retro/internal/tokenize"
	"github.com/retrodb/retro/internal/vec"
)

// DefaultRepairBudget bounds how many nodes one incremental repair
// re-solves (see Session.RepairBudget).
const DefaultRepairBudget = 512

// Session couples a database with a live retrofitted model and maintains
// the model incrementally as rows are inserted — the §1 property that
// RETRO "does not rely on re-training, which allows us to incrementally
// maintain the word vectors whenever the data in the database changes".
//
// The write path is proportional to the change, not the database: an
// insert extracts only the new row's values and relations
// (extract.ApplyInserts), grows the learning problem in place
// (core.GrowProblem) and re-solves only the new values' bounded
// neighbourhood against maintained solver state, so the per-row cost
// stays flat as the database grows. InsertBatch amortises one repair
// over many rows.
//
// Insert, InsertBatch and ExecAndRefresh update the embedding store (and
// any built ANN index) in place, and previously obtained Models share
// that store. Callers that query a Model concurrently with inserts must
// either synchronise the two with a lock, or — as internal/server does —
// serve reads from an immutable Embedding.Freeze snapshot republished
// after each write, in which case the store's copy-on-write discipline
// keeps every published snapshot stable with no read-side lock at all.
// A held Model stays queryable across inserts but is not a frozen
// snapshot. The session owns the store's vectors — mutating them
// externally (NormalizeAll, Matrix writes) invalidates the maintained
// repair state.
//
// A session's trained state can be persisted with Snapshot and restored
// with ResumeSession (see snapshot.go): the resumed session keeps the
// deserialised HNSW index and continues incremental maintenance exactly
// where the writing process left off.
type Session struct {
	db    *DB
	base  *Embedding
	cfg   Config
	model *Model

	// Hops bounds how far a change propagates during local repair
	// (default 2 relation hops).
	Hops int
	// RepairBudget caps how many nodes one repair re-solves (default
	// DefaultRepairBudget; 0 = unlimited). Inserted values are always
	// re-solved; the budget only bounds how far their influence is
	// chased — without it, a single insert touching a high-degree hub
	// value (a language, a country) would re-solve most of the database
	// and the write path would degrade to O(n) again.
	RepairBudget int

	// incState carries the per-group target sums the repair kernels need
	// (rebuilt lazily after Resolve or a snapshot resume).
	incState *core.IncrementalState
	// mirror is the float64 solver matrix for a float32 store: the
	// incremental kernels read and write float64 rows, so on an F32
	// store the session maintains this widened mirror and rounds each
	// repaired row back through Store.SetVector (one rounding, at the
	// store boundary). Outside a repair, every mirror row equals the
	// widened store row. Nil on F64 stores; reset with incState.
	mirror *vec.Matrix
	// stale records a failed repair: the model no longer reflects every
	// committed row, so the next write falls back to a full re-solve.
	// Atomic so serving stats can read it without excluding writers;
	// every other Session field still requires external synchronisation.
	stale atomic.Bool
	// repairHook, when set, runs before each incremental repair; a test
	// seam for forcing repair failures.
	repairHook func() error

	// walAppend, when set by the storage engine, durably logs each
	// committed insert batch before the embedding repair runs. It
	// receives only the committed rows — a BatchError-rejected row is
	// never logged, so it can never reappear on replay. A failure is
	// reported as *WALError and marks the session stale: the rows are in
	// the in-memory database but their durability is unknown.
	walAppend func(table string, rows [][]Value) error

	// lastRepair describes the most recent maintenance pass. Written by
	// the repair paths and read by LastRepair; like the rest of the
	// session it requires external synchronisation (the serving layer
	// reads it under its write mutex, right after the insert it timed).
	lastRepair RepairStats
}

// RepairStats describes one embedding-maintenance pass: how long it
// took, how much of the model it re-solved, and whether it was the
// incremental delta path or a full re-solve. The serving layer exports
// these as repair-duration and affected-node metrics.
type RepairStats struct {
	Duration time.Duration // wall time of the repair
	Touched  int           // nodes re-solved (0 when the delta carried no values)
	NewNodes int           // values added to the vocabulary by the pass
	Full     bool          // true for a full re-solve, false for a delta repair
}

// LastRepair returns stats for the most recent repair or re-solve.
// Callers must synchronise with writers the same way as for Insert.
func (s *Session) LastRepair() RepairStats { return s.lastRepair }

// NewSession trains the initial model and returns the live session.
func NewSession(db *DB, base *Embedding, cfg Config) (*Session, error) {
	model, err := Retrofit(db, base, cfg)
	if err != nil {
		return nil, err
	}
	return &Session{db: db, base: base, cfg: cfg, model: model, Hops: 2, RepairBudget: DefaultRepairBudget}, nil
}

// Model returns the current model.
func (s *Session) Model() *Model { return s.model }

// DB returns the session's database.
func (s *Session) DB() *DB { return s.db }

// Stale reports whether a repair failure left the model behind the
// database. A stale session still answers queries from its last good
// state; the next successful write (which performs a full re-solve) or
// an explicit Resolve clears it.
func (s *Session) Stale() bool { return s.stale.Load() }

// MarkStale forces the next write to run a full re-solve instead of an
// incremental repair, as if a repair had failed. Operators can use it to
// schedule a re-sync without blocking on an immediate Resolve.
func (s *Session) MarkStale() { s.stale.Store(true) }

// RepairError reports that a row was committed to the database but the
// subsequent embedding repair failed: the model is now stale relative to
// the data (Stale reports true) until a later write or Resolve succeeds.
// Callers should not treat it as "nothing happened" — retrying the same
// insert will hit a duplicate-key error.
type RepairError struct{ Err error }

func (e *RepairError) Error() string {
	return fmt.Sprintf("retro: row stored but embedding repair failed: %v", e.Err)
}

func (e *RepairError) Unwrap() error { return e.Err }

// WALError reports that rows were committed to the in-memory database
// but the write-ahead log failed to make them durable: the write must
// not be acknowledged, and the session is marked stale (the embedding
// repair was skipped). After a WALError the in-memory state may be
// ahead of what a restart recovers.
type WALError struct{ Err error }

func (e *WALError) Error() string {
	return fmt.Sprintf("retro: rows committed but write-ahead log failed: %v", e.Err)
}

func (e *WALError) Unwrap() error { return e.Err }

// BatchError reports a batch that failed part-way: rows before Index
// were committed (and repaired), the row at Index was rejected, and
// nothing after it was attempted.
type BatchError struct {
	Committed int   // rows stored before the failure
	Index     int   // index of the rejected row within the batch
	Err       error // why that row was rejected
}

func (e *BatchError) Error() string {
	return fmt.Sprintf("retro: batch row %d rejected after %d rows were committed: %v", e.Index, e.Committed, e.Err)
}

func (e *BatchError) Unwrap() error { return e.Err }

// Insert adds a row (column order) to a table and incrementally repairs
// the embeddings: the new row's values and relations are appended to the
// learning problem and only they plus their bounded Hops-hop
// neighbourhood are re-solved with everything else held fixed.
// A failure after the row was committed is reported as *RepairError.
func (s *Session) Insert(table string, row []Value) error {
	id, err := s.db.Insert(table, row)
	if err != nil {
		return err
	}
	if s.walAppend != nil {
		if err := s.walAppend(table, [][]Value{row}); err != nil {
			s.stale.Store(true)
			return &WALError{Err: err}
		}
	}
	if err := s.refreshRows(table, []int{id}); err != nil {
		s.stale.Store(true)
		return &RepairError{Err: err}
	}
	return nil
}

// InsertBatch commits the rows (column order) to a table and runs ONE
// incremental repair over the union of their neighbourhoods — one
// problem growth, one re-solve, one pass of index maintenance — instead
// of the per-row repair N separate Inserts would pay. Rows are committed
// in order; the first invalid row stops the batch and is reported as
// *BatchError with the preceding rows committed and repaired. A repair
// failure after any rows were committed is reported as *RepairError.
func (s *Session) InsertBatch(table string, rows [][]Value) error {
	if len(rows) == 0 {
		return nil
	}
	rowIDs := make([]int, 0, len(rows))
	var rejected *BatchError
	for idx, row := range rows {
		id, err := s.db.Insert(table, row)
		if err != nil {
			if len(rowIDs) == 0 {
				return &BatchError{Committed: 0, Index: idx, Err: err}
			}
			rejected = &BatchError{Committed: len(rowIDs), Index: idx, Err: err}
			break
		}
		rowIDs = append(rowIDs, id)
	}
	if s.walAppend != nil && len(rowIDs) > 0 {
		// Log exactly the committed prefix: a rejected row must never
		// replay, and rows after it were never attempted.
		if err := s.walAppend(table, rows[:len(rowIDs)]); err != nil {
			s.stale.Store(true)
			if rejected != nil {
				return &WALError{Err: errors.Join(err, rejected)}
			}
			return &WALError{Err: err}
		}
	}
	if err := s.refreshRows(table, rowIDs); err != nil {
		s.stale.Store(true)
		if rejected != nil {
			// Keep the rejection visible through errors.As alongside the
			// repair failure.
			return &RepairError{Err: errors.Join(err, rejected)}
		}
		return &RepairError{Err: err}
	}
	if rejected != nil {
		return rejected
	}
	return nil
}

// ExecAndRefresh runs a SQL statement (e.g. INSERT) and repairs the
// embeddings afterwards. The statement's effect on the database is
// opaque here, so this path re-extracts the whole database (a full
// refresh); prefer Insert/InsertBatch on the serving path, which repair
// from the delta. A failure after the statement executed is reported as
// *RepairError.
func (s *Session) ExecAndRefresh(sql string) error {
	if s.walAppend != nil {
		// A SQL statement's row effects are opaque here, so they cannot be
		// written to the log — after a restart the recovered model would
		// silently miss them. Storage-backed sessions must insert through
		// Insert/InsertBatch.
		return fmt.Errorf("retro: ExecAndRefresh is not supported on a storage-backed session (statements bypass the write-ahead log)")
	}
	if _, err := s.db.Exec(sql); err != nil {
		return err
	}
	if err := s.refreshFull(); err != nil {
		s.stale.Store(true)
		return &RepairError{Err: err}
	}
	return nil
}

// refreshRows repairs the model after rows were committed to table.
// A stale session cannot repair from a delta — its extraction baseline
// no longer matches the database — so it re-solves from scratch, which
// also clears the staleness.
func (s *Session) refreshRows(table string, rowIDs []int) error {
	if len(rowIDs) == 0 {
		return nil
	}
	if s.repairHook != nil {
		if err := s.repairHook(); err != nil {
			return err
		}
	}
	if s.stale.Load() {
		return s.Resolve()
	}
	return s.repairDelta(table, rowIDs)
}

// repairDelta is the O(delta) write path: extract only the new rows,
// grow the problem in place, and re-solve the bounded neighbourhood.
func (s *Session) repairDelta(table string, rowIDs []int) error {
	start := time.Now()
	m := s.model
	if m.ex == nil {
		return fmt.Errorf("retro: session model has no extraction attached")
	}
	if m.tok == nil {
		m.tok = tokenize.New(s.base)
	}
	if m.prob == nil {
		// Snapshot-resumed session: materialise the problem once; every
		// later insert grows it in place.
		m.prob = core.BuildProblem(m.ex, m.tok)
	}
	if s.incState == nil {
		if m.store.Len() != m.prob.N {
			return fmt.Errorf("retro: store holds %d vectors but problem has %d nodes", m.store.Len(), m.prob.N)
		}
		s.incState = core.NewIncrementalState(m.prob, s.solverMatrix(m.store))
	}

	d, err := m.ex.ApplyInserts(s.db, table, rowIDs, extract.Options{
		ExcludeColumns:   s.cfg.ExcludeColumns,
		ExcludeRelations: s.cfg.ExcludeRelations,
	})
	if err != nil {
		return err
	}
	if d.Empty() {
		// Row carried no text values and no relations: nothing to repair.
		s.lastRepair = RepairStats{Duration: time.Since(start)}
		return nil
	}
	rep, err := core.GrowProblem(m.prob, m.ex, m.tok, d)
	if err != nil {
		return err
	}

	// New values enter the store with their W0 initialisation; store row
	// ids must mirror problem node ids (the repair writes through the
	// shared matrix). Registration with the ANN index and norm cache is
	// staged: every new node is in the repair's touched set, so the
	// RefreshRow pass below indexes the FINAL vector once instead of
	// beam-inserting the provisional W0 row only to tombstone it.
	store := m.store
	// The repair below writes re-solved vectors straight into the store
	// matrix. Detach it from any published Freeze snapshot first
	// (copy-on-write), or those in-place writes would tear the frozen
	// read views the serving layer hands to lock-free queries.
	store.PrepareWrite()
	for _, id := range rep.NewNodes {
		key := deepwalk.ValueKey(m.ex, id)
		if got := store.AddStaged(key, m.prob.W0.Row(id)); got != id {
			return fmt.Errorf("retro: store row %d for new value %d: vocabulary misaligned", got, id)
		}
	}
	// On an F32 store the kernels repair the session's float64 mirror
	// (grown here to cover the staged rows); on F64 they write the store
	// matrix in place.
	w := s.solverMatrix(store)
	s.incState.Grow(m.prob, w, rep)

	touched := core.AffectedNodesBudget(m.prob, rep.Seeds, s.Hops, s.RepairBudget)
	m.prob.RefreshCentroids(touched)
	core.UpdateIncremental(m.prob, w, touched, m.hp, s.cfg.Variant, core.IncrementalOptions{State: s.incState})

	// Fold the repaired rows into the store's derived state. When the
	// repair covered most of the vocabulary, one index rebuild is cheaper
	// than a tombstone + beam-search re-insert per value (which would
	// trip the tombstone limit and force the rebuild anyway).
	if len(touched)*2 >= store.Len() {
		store.InvalidateANN()
	}
	for _, id := range touched {
		if s.mirror != nil {
			// Round the repaired float64 row into the float32 store; the
			// store refreshes the norm cache and ANN node itself.
			store.SetVector(id, s.mirror.Row(id))
		} else {
			store.RefreshRow(id)
		}
	}
	s.lastRepair = RepairStats{
		Duration: time.Since(start),
		Touched:  len(touched),
		NewNodes: len(rep.NewNodes),
	}
	return nil
}

// solverMatrix returns the float64 matrix the incremental kernels bind
// to: the store's own matrix on an F64 store, or the session-held
// widened mirror on an F32 store. The mirror is built on first use and
// grown here whenever the store gained rows (staged inserts); new
// mirror rows are widened from the store, so outside a repair the
// mirror is exactly the store seen in float64.
func (s *Session) solverMatrix(store *Embedding) *vec.Matrix {
	if store.Precision() != F32 {
		return store.Matrix()
	}
	if s.mirror == nil {
		s.mirror = vec.NewMatrix(0, store.Dim())
	}
	if from := s.mirror.Rows; from < store.Len() {
		s.mirror.GrowRows(store.Len())
		for id := from; id < store.Len(); id++ {
			vec.Widen(s.mirror.Row(id), store.Vector32(id))
		}
	}
	return s.mirror
}

// refreshFull is the pre-delta repair path kept for statements whose
// effect cannot be expressed as a row delta: re-extract the database,
// rebuild the problem, carry over solved vectors by value key, and
// re-solve what changed.
func (s *Session) refreshFull() error {
	start := time.Now()
	old := s.model
	ex, err := extract.FromDB(s.db, extract.Options{
		ExcludeColumns:   s.cfg.ExcludeColumns,
		ExcludeRelations: s.cfg.ExcludeRelations,
	})
	if err != nil {
		return err
	}
	prob := core.BuildProblem(ex, old.tok)

	// Warm start: carry over solved vectors by value key; anything new
	// keeps its W0 initialisation and is marked dirty.
	w := prob.W0.Clone()
	var dirty []int
	for _, v := range ex.Values {
		key := deepwalk.ValueKey(ex, v.ID)
		if oldVec, ok := old.store.VectorOf(key); ok && len(oldVec) == prob.Dim {
			copy(w.Row(v.ID), oldVec)
		} else {
			dirty = append(dirty, v.ID)
		}
	}
	touched := dirty
	if len(dirty) > 0 {
		touched = core.AffectedNodesBudget(prob, dirty, s.Hops, s.RepairBudget)
		core.UpdateIncremental(prob, w, touched, old.hp, s.cfg.Variant, core.IncrementalOptions{})
	}

	m := &Model{
		db: s.db, base: s.base, ex: ex, tok: old.tok, prob: prob,
		cfg: s.cfg, hp: old.hp,
	}
	// The delta write path requires store row ids to mirror the (new)
	// extraction's value ids. Re-extraction renumbers values whenever a
	// statement added rows to a multi-text-column table (FromDB assigns
	// ids column-major), so the old store — keyed correctly but ordered
	// by the OLD extraction — is only reusable in place when every key
	// still sits in its row. Otherwise rebuild it aligned; reusing it
	// would pass repairDelta's length check and let a later Insert
	// silently read and write the wrong values' rows.
	aligned := old.store.Dim() == prob.Dim && old.store.Len() <= len(ex.Values)
	if aligned {
		for _, v := range ex.Values {
			id, ok := old.store.ID(deepwalk.ValueKey(ex, v.ID))
			if ok && id == v.ID {
				continue
			}
			if !ok && v.ID >= old.store.Len() {
				continue // appended below at exactly this row
			}
			aligned = false
			break
		}
	}
	if !aligned {
		m.store = m.buildStore(w.Row)
		s.replaceModel(m)
		s.lastRepair = RepairStats{
			Duration: time.Since(start), Touched: len(touched),
			NewNodes: len(dirty), Full: true,
		}
		return nil
	}
	// Reuse the previous store: the vocabulary only grows (reldb has no
	// DELETE) and untouched vectors were carried over bitwise, so only the
	// new values and their repaired neighbourhood need (re)writing.
	// Store.Add maintains a built HNSW index incrementally, which keeps
	// insert cost flat on the serving path instead of forcing a full
	// index rebuild. The previous Model shares this store: it stays
	// queryable, but is not a frozen snapshot.
	if len(touched)*2 >= old.store.Len() {
		old.store.InvalidateANN()
	}
	changed := make(map[int]bool, len(touched))
	for _, id := range touched {
		changed[id] = true
	}
	for _, v := range ex.Values {
		key := deepwalk.ValueKey(ex, v.ID)
		if changed[v.ID] {
			old.store.Add(key, w.Row(v.ID))
			continue
		}
		if _, ok := old.store.VectorOf(key); !ok {
			old.store.Add(key, w.Row(v.ID))
		}
	}
	m.store = old.store
	s.replaceModel(m)
	s.lastRepair = RepairStats{
		Duration: time.Since(start), Touched: len(touched),
		NewNodes: len(dirty), Full: true,
	}
	return nil
}

// replaceModel swaps in a rebuilt model and resets the per-model repair
// state (the incremental state binds to one problem/store pair). A
// rebuilt store starts at change epoch 0 with no per-row history; if the
// old store was further along (a storage engine is checkpointing this
// session), the epoch is carried over and every row conservatively
// stamped as changed — the next checkpoint then captures the whole
// rebuilt vocabulary instead of silently dropping it from the delta.
func (s *Session) replaceModel(m *Model) {
	if old := s.model; old != nil && old.store != m.store && m.store.Epoch() < old.store.Epoch() {
		m.store.SetEpoch(old.store.Epoch())
		m.store.StampAll()
	}
	s.model = m
	s.incState = nil
	s.mirror = nil
	s.stale.Store(false)
}

// Resolve runs a full re-solve from scratch (the non-incremental path),
// replacing the model and clearing any staleness. Useful after bulk
// loads.
func (s *Session) Resolve() error {
	start := time.Now()
	model, err := Retrofit(s.db, s.base, s.cfg)
	if err != nil {
		return fmt.Errorf("retro: full re-solve: %w", err)
	}
	s.replaceModel(model)
	s.lastRepair = RepairStats{
		Duration: time.Since(start),
		Touched:  model.store.Len(),
		Full:     true,
	}
	return nil
}
