module github.com/retrodb/retro

go 1.21
