package retro

import (
	"bytes"
	"math"
	"testing"

	"github.com/retrodb/retro/internal/vec"
)

func fixtureDB(t *testing.T) *DB {
	t.Helper()
	db := NewDB()
	stmts := []string{
		`CREATE TABLE movies (id INT PRIMARY KEY, title TEXT, country TEXT)`,
		`INSERT INTO movies VALUES
			(1, 'inception', 'usa'),
			(2, 'godfather', 'usa'),
			(3, 'amelie', 'france'),
			(4, 'zorgon', 'france')`,
	}
	for _, s := range stmts {
		db.MustExec(s)
	}
	return db
}

func fixtureEmbedding() *Embedding {
	e := NewEmbedding(4)
	e.Add("inception", []float64{1, 0.2, 0, 0})
	e.Add("godfather", []float64{0.8, -0.3, 0, 0.1})
	e.Add("amelie", []float64{-0.5, 0.9, 0.2, 0})
	e.Add("usa", []float64{0.6, -0.8, 0.1, 0})
	e.Add("france", []float64{-0.9, 0.4, 0, 0.2})
	return e
}

func TestRetrofitEndToEnd(t *testing.T) {
	for _, variant := range []Variant{RO, RN} {
		cfg := Defaults()
		cfg.Variant = variant
		model, err := Retrofit(fixtureDB(t), fixtureEmbedding(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if model.NumValues() != 6 {
			t.Fatalf("%v: values = %d", variant, model.NumValues())
		}
		// The OOV title (zorgon, produced in france) ends up closer to
		// france than to usa.
		z, err := model.Vector("movies", "title", "zorgon")
		if err != nil {
			t.Fatal(err)
		}
		fr, _ := model.Vector("movies", "country", "france")
		us, _ := model.Vector("movies", "country", "usa")
		if vec.SquaredDistance(z, fr) >= vec.SquaredDistance(z, us) {
			t.Fatalf("%v: OOV value not placed relationally", variant)
		}
	}
}

func TestRetrofitErrors(t *testing.T) {
	db := NewDB()
	db.MustExec(`CREATE TABLE t (a INT)`) // no text columns
	if _, err := Retrofit(db, fixtureEmbedding(), Defaults()); err == nil {
		t.Fatal("no-text database accepted")
	}
	if _, err := Retrofit(fixtureDB(t), fixtureEmbedding(), Config{Variant: RN}); err != nil {
		t.Fatal(err)
	}
}

func TestVectorLookupErrors(t *testing.T) {
	model, err := Retrofit(fixtureDB(t), fixtureEmbedding(), Defaults())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := model.Vector("movies", "title", "missing"); err == nil {
		t.Fatal("missing value accepted")
	}
	if _, err := model.Vector("nope", "title", "inception"); err == nil {
		t.Fatal("missing table accepted")
	}
}

func TestNeighbors(t *testing.T) {
	model, err := Retrofit(fixtureDB(t), fixtureEmbedding(), Defaults())
	if err != nil {
		t.Fatal(err)
	}
	got, err := model.Neighbors("movies", "title", "inception", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("neighbors = %d", len(got))
	}
	// Self must be excluded.
	selfKey, _ := model.Key("movies", "title", "inception")
	for _, m := range got {
		if m.Word == selfKey {
			t.Fatal("self returned as neighbour")
		}
	}
	if _, err := model.Neighbors("movies", "title", "missing", 2); err == nil {
		t.Fatal("missing value accepted")
	}
}

func TestParallelSolveMatchesSequential(t *testing.T) {
	db := fixtureDB(t)
	emb := fixtureEmbedding()
	for _, variant := range []Variant{RO, RN} {
		seqCfg := Defaults()
		seqCfg.Variant = variant
		parCfg := seqCfg
		parCfg.Parallel = -1
		seq, err := Retrofit(db, emb, seqCfg)
		if err != nil {
			t.Fatal(err)
		}
		par, err := Retrofit(db, emb, parCfg)
		if err != nil {
			t.Fatal(err)
		}
		a, _ := seq.Vector("movies", "title", "inception")
		b, _ := par.Vector("movies", "title", "inception")
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%v: parallel result differs from sequential", variant)
			}
		}
	}
}

func TestCustomHyperparams(t *testing.T) {
	hp := Hyperparams{Alpha: 2, Beta: 1, Gamma: 1, Delta: 0, Iterations: 5}
	cfg := Config{Variant: RO, Hyperparams: &hp, TrackLoss: true}
	model, err := Retrofit(fixtureDB(t), fixtureEmbedding(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(model.LossHistory()) != 5 {
		t.Fatalf("loss history = %d entries", len(model.LossHistory()))
	}
	for i := 1; i < 5; i++ {
		if model.LossHistory()[i] > model.LossHistory()[i-1]+1e-9 {
			t.Fatal("loss not monotone under convex params")
		}
	}
}

func TestExcludeColumns(t *testing.T) {
	cfg := Defaults()
	cfg.ExcludeColumns = []string{"movies.country"}
	model, err := Retrofit(fixtureDB(t), fixtureEmbedding(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if model.NumValues() != 4 {
		t.Fatalf("values = %d, want 4 titles only", model.NumValues())
	}
	if _, err := model.Vector("movies", "country", "usa"); err == nil {
		t.Fatal("excluded column value present")
	}
}

func TestTrainDeepWalkAndCombine(t *testing.T) {
	db := fixtureDB(t)
	model, err := Retrofit(db, fixtureEmbedding(), Defaults())
	if err != nil {
		t.Fatal(err)
	}
	dw, err := TrainDeepWalk(db, Defaults(), DeepWalkConfig{Dim: 8, WalksPerNode: 3, WalkLength: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if dw.Len() != model.NumValues() {
		t.Fatalf("DW store size = %d", dw.Len())
	}
	combined, err := Combine(model.Store(), dw)
	if err != nil {
		t.Fatal(err)
	}
	if combined.Dim() != model.Store().Dim()+8 {
		t.Fatalf("combined dim = %d", combined.Dim())
	}
	// Keys align across stores.
	key, _ := model.Key("movies", "title", "amelie")
	if _, ok := combined.VectorOf(key); !ok {
		t.Fatal("combined store missing aligned key")
	}
}

func TestEmbeddingIORoundTripViaPublicAPI(t *testing.T) {
	model, err := Retrofit(fixtureDB(t), fixtureEmbedding(), Defaults())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := model.Store().WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBinaryEmbedding(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != model.Store().Len() {
		t.Fatal("round-trip lost values")
	}
}

func TestSessionIncrementalInsert(t *testing.T) {
	db := fixtureDB(t)
	sess, err := NewSession(db, fixtureEmbedding(), Defaults())
	if err != nil {
		t.Fatal(err)
	}
	before := sess.Model().NumValues()
	if err := sess.ExecAndRefresh(`INSERT INTO movies VALUES (5, 'brazil', 'usa')`); err != nil {
		t.Fatal(err)
	}
	if sess.Model().NumValues() != before+1 {
		t.Fatalf("values = %d, want %d", sess.Model().NumValues(), before+1)
	}
	// The new title has a meaningful vector: closer to usa than france.
	b, err := sess.Model().Vector("movies", "title", "brazil")
	if err != nil {
		t.Fatal(err)
	}
	us, _ := sess.Model().Vector("movies", "country", "usa")
	fr, _ := sess.Model().Vector("movies", "country", "france")
	if vec.SquaredDistance(b, us) >= vec.SquaredDistance(b, fr) {
		t.Fatal("incrementally added value not placed relationally")
	}
	// Untouched values keep finite, unchanged-ish vectors.
	a, _ := sess.Model().Vector("movies", "title", "amelie")
	for _, v := range a {
		if math.IsNaN(v) {
			t.Fatal("NaN after incremental update")
		}
	}
}

func TestSessionIncrementalApproximatesFullSolve(t *testing.T) {
	// Insert via the session, then compare against a from-scratch solve
	// on the same data: the incremental result must be close for the
	// affected component.
	db := fixtureDB(t)
	sess, err := NewSession(db, fixtureEmbedding(), Defaults())
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.ExecAndRefresh(`INSERT INTO movies VALUES (5, 'brazil', 'usa')`); err != nil {
		t.Fatal(err)
	}
	full, err := Retrofit(db, fixtureEmbedding(), Defaults())
	if err != nil {
		t.Fatal(err)
	}
	inc, _ := sess.Model().Vector("movies", "title", "brazil")
	ful, _ := full.Vector("movies", "title", "brazil")
	cos := vec.Cosine(inc, ful)
	if cos < 0.95 {
		t.Fatalf("incremental vs full cosine = %v", cos)
	}
	// A full Resolve matches the from-scratch model exactly.
	if err := sess.Resolve(); err != nil {
		t.Fatal(err)
	}
	res, _ := sess.Model().Vector("movies", "title", "brazil")
	if vec.Cosine(res, ful) < 1-1e-12 {
		t.Fatal("Resolve diverges from fresh Retrofit")
	}
}

func TestSessionInsertRowAPI(t *testing.T) {
	db := fixtureDB(t)
	sess, err := NewSession(db, fixtureEmbedding(), Defaults())
	if err != nil {
		t.Fatal(err)
	}
	err = sess.Insert("movies", []Value{
		Int(6), Text("valerian"), Text("france"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Model().Vector("movies", "title", "valerian"); err != nil {
		t.Fatal(err)
	}
	// Constraint violations surface.
	if err := sess.Insert("movies", []Value{Int(6), Text("dup"), Text("usa")}); err == nil {
		t.Fatal("duplicate PK accepted")
	}
}
