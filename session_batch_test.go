package retro

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"github.com/retrodb/retro/internal/vec"
)

func TestInsertBatchOneRepair(t *testing.T) {
	db := fixtureDB(t)
	sess, err := NewSession(db, fixtureEmbedding(), Defaults())
	if err != nil {
		t.Fatal(err)
	}
	before := sess.Model().NumValues()

	rows := [][]Value{
		{Int(10), Text("brazil"), Text("usa")},
		{Int(11), Text("leon"), Text("france")},
		{Int(12), Text("nikita"), Text("france")},
	}
	if err := sess.InsertBatch("movies", rows); err != nil {
		t.Fatal(err)
	}
	if got := sess.Model().NumValues(); got != before+3 {
		t.Fatalf("values = %d, want %d", got, before+3)
	}
	// Every inserted value is queryable and relationally placed.
	b, err := sess.Model().Vector("movies", "title", "brazil")
	if err != nil {
		t.Fatal(err)
	}
	us, _ := sess.Model().Vector("movies", "country", "usa")
	fr, _ := sess.Model().Vector("movies", "country", "france")
	if vec.SquaredDistance(b, us) >= vec.SquaredDistance(b, fr) {
		t.Fatal("batched value not placed relationally")
	}
	l, err := sess.Model().Vector("movies", "title", "leon")
	if err != nil {
		t.Fatal(err)
	}
	if vec.SquaredDistance(l, fr) >= vec.SquaredDistance(l, us) {
		t.Fatal("second batched value not placed relationally")
	}
}

func TestInsertBatchMatchesSingleInserts(t *testing.T) {
	mk := func() (*Session, error) {
		return NewSession(fixtureDB(t), fixtureEmbedding(), Defaults())
	}
	batched, err := mk()
	if err != nil {
		t.Fatal(err)
	}
	single, err := mk()
	if err != nil {
		t.Fatal(err)
	}
	rows := [][]Value{
		{Int(10), Text("brazil"), Text("usa")},
		{Int(11), Text("leon"), Text("france")},
	}
	if err := batched.InsertBatch("movies", rows); err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		if err := single.Insert("movies", row); err != nil {
			t.Fatal(err)
		}
	}
	for _, title := range []string{"brazil", "leon", "inception"} {
		vb, err := batched.Model().Vector("movies", "title", title)
		if err != nil {
			t.Fatal(err)
		}
		vs, err := single.Model().Vector("movies", "title", title)
		if err != nil {
			t.Fatal(err)
		}
		if cos := vec.Cosine(vb, vs); cos < 0.99 {
			t.Fatalf("%s: batch vs single cosine = %v", title, cos)
		}
	}
}

func TestInsertBatchPartialFailure(t *testing.T) {
	db := fixtureDB(t)
	sess, err := NewSession(db, fixtureEmbedding(), Defaults())
	if err != nil {
		t.Fatal(err)
	}
	rows := [][]Value{
		{Int(10), Text("brazil"), Text("usa")},
		{Int(1), Text("dup pk"), Text("usa")}, // duplicate primary key
		{Int(12), Text("never"), Text("usa")},
	}
	err = sess.InsertBatch("movies", rows)
	var batch *BatchError
	if !errors.As(err, &batch) {
		t.Fatalf("err = %v, want *BatchError", err)
	}
	if batch.Committed != 1 || batch.Index != 1 {
		t.Fatalf("batch error = %+v", batch)
	}
	// The committed prefix is repaired and queryable; nothing after the
	// failure was stored.
	if _, err := sess.Model().Vector("movies", "title", "brazil"); err != nil {
		t.Fatal("committed prefix not repaired:", err)
	}
	if _, err := sess.Model().Vector("movies", "title", "never"); err == nil {
		t.Fatal("row after the failure was stored")
	}
	if sess.Stale() {
		t.Fatal("partial batch must not mark the session stale")
	}
}

func TestInsertBatchAllRejected(t *testing.T) {
	sess, err := NewSession(fixtureDB(t), fixtureEmbedding(), Defaults())
	if err != nil {
		t.Fatal(err)
	}
	err = sess.InsertBatch("movies", [][]Value{{Int(1), Text("dup"), Text("usa")}})
	var batch *BatchError
	if !errors.As(err, &batch) || batch.Committed != 0 {
		t.Fatalf("err = %v, want *BatchError with 0 committed", err)
	}
	if err := sess.InsertBatch("movies", nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
}

func TestRepairFailureMarksStaleAndRecovers(t *testing.T) {
	sess, err := NewSession(fixtureDB(t), fixtureEmbedding(), Defaults())
	if err != nil {
		t.Fatal(err)
	}
	boom := fmt.Errorf("injected repair failure")
	sess.repairHook = func() error { return boom }

	err = sess.Insert("movies", []Value{Int(10), Text("brazil"), Text("usa")})
	var repair *RepairError
	if !errors.As(err, &repair) || !errors.Is(err, boom) {
		t.Fatalf("err = %v, want *RepairError wrapping the injected failure", err)
	}
	if !sess.Stale() {
		t.Fatal("failed repair must mark the session stale")
	}
	// The row IS committed even though the model lags.
	if tbl, _ := sess.DB().Table("movies"); tbl.NumRows() != 5 {
		t.Fatalf("row not committed: %d rows", tbl.NumRows())
	}

	// Next write heals via a full re-solve: both the backlog row and the
	// new row become queryable, and staleness clears.
	sess.repairHook = nil
	if err := sess.Insert("movies", []Value{Int(11), Text("leon"), Text("france")}); err != nil {
		t.Fatal(err)
	}
	if sess.Stale() {
		t.Fatal("successful full repair must clear staleness")
	}
	for _, title := range []string{"brazil", "leon"} {
		if _, err := sess.Model().Vector("movies", "title", title); err != nil {
			t.Fatalf("%s not recovered: %v", title, err)
		}
	}
}

func TestMarkStaleForcesFullRepair(t *testing.T) {
	sess, err := NewSession(fixtureDB(t), fixtureEmbedding(), Defaults())
	if err != nil {
		t.Fatal(err)
	}
	sess.MarkStale()
	if !sess.Stale() {
		t.Fatal("MarkStale did not stick")
	}
	if err := sess.Insert("movies", []Value{Int(10), Text("brazil"), Text("usa")}); err != nil {
		t.Fatal(err)
	}
	if sess.Stale() {
		t.Fatal("insert after MarkStale must clear staleness via full repair")
	}
	if _, err := sess.Model().Vector("movies", "title", "brazil"); err != nil {
		t.Fatal(err)
	}
}

func TestInsertBatchNumericOnlyTable(t *testing.T) {
	// Rows without text values must not disturb the model.
	db := fixtureDB(t)
	db.MustExec(`CREATE TABLE ratings (id INT PRIMARY KEY, movie_id INT REFERENCES movies(id), stars INT)`)
	sess, err := NewSession(db, fixtureEmbedding(), Defaults())
	if err != nil {
		t.Fatal(err)
	}
	before := sess.Model().NumValues()
	if err := sess.InsertBatch("ratings", [][]Value{
		{Int(1), Int(1), Int(5)},
		{Int(2), Int(3), Int(4)},
	}); err != nil {
		t.Fatal(err)
	}
	if got := sess.Model().NumValues(); got != before {
		t.Fatalf("numeric-only insert changed values: %d -> %d", before, got)
	}
}

// TestDeltaInsertAfterExecAndRefresh pins a corruption bug: the full
// refresh renumbers value ids (FromDB assigns them column-major), so
// reusing the old store order would leave store rows misaligned with
// problem node ids — and a later delta Insert would silently repair the
// wrong values' vectors. refreshFull must hand back an aligned store.
func TestDeltaInsertAfterExecAndRefresh(t *testing.T) {
	sess, err := NewSession(fixtureDB(t), fixtureEmbedding(), Defaults())
	if err != nil {
		t.Fatal(err)
	}
	// New title shifts the country ids in a fresh extraction.
	if err := sess.ExecAndRefresh(`INSERT INTO movies VALUES (10, 'brazil', 'usa')`); err != nil {
		t.Fatal(err)
	}
	m := sess.Model()
	for _, v := range m.ex.Values {
		key, _ := m.Key(m.ex.Categories[v.Category].Table, m.ex.Categories[v.Category].Column, v.Text)
		if id, ok := m.store.ID(key); !ok || id != v.ID {
			t.Fatalf("store row %d holds value %d (%q): misaligned after full refresh", id, v.ID, v.Text)
		}
	}
	// The delta path after the full refresh places values correctly.
	if err := sess.Insert("movies", []Value{Int(11), Text("leon"), Text("france")}); err != nil {
		t.Fatal(err)
	}
	l, err := sess.Model().Vector("movies", "title", "leon")
	if err != nil {
		t.Fatal(err)
	}
	fr, _ := sess.Model().Vector("movies", "country", "france")
	us, _ := sess.Model().Vector("movies", "country", "usa")
	if vec.SquaredDistance(l, fr) >= vec.SquaredDistance(l, us) {
		t.Fatal("post-refresh delta insert misplaced the new value")
	}
	// And every pre-existing value still matches a from-scratch solve.
	full, err := Retrofit(sess.DB(), fixtureEmbedding(), Defaults())
	if err != nil {
		t.Fatal(err)
	}
	for _, title := range []string{"inception", "godfather", "amelie", "brazil"} {
		a, _ := sess.Model().Vector("movies", "title", title)
		b, _ := full.Vector("movies", "title", title)
		if cos := vec.Cosine(a, b); cos < 0.9 {
			t.Fatalf("%s corrupted after refresh+delta (cosine %v)", title, cos)
		}
	}
}

// TestSnapshotAfterDeltaInsertResumes pins the companion bug: a snapshot
// written AFTER incremental inserts stores values in write order, while
// resume re-extracts them column-major. ResumeSession must realign the
// store (dropping only the persisted ANN graph) instead of rejecting the
// snapshot as "database changed".
func TestSnapshotAfterDeltaInsertResumes(t *testing.T) {
	db := fixtureDB(t)
	sess, err := NewSession(db, fixtureEmbedding(), Defaults())
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Insert("movies", []Value{Int(10), Text("brazil"), Text("usa")}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sess.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}

	resumed, err := ResumeSession(db, fixtureEmbedding(), &buf)
	if err != nil {
		t.Fatalf("snapshot written after a delta insert failed to resume: %v", err)
	}
	// The solved vectors survived the realignment bitwise at float32
	// precision ...
	want, _ := sess.Model().Vector("movies", "title", "brazil")
	got, err := resumed.Model().Vector("movies", "title", "brazil")
	if err != nil {
		t.Fatal(err)
	}
	for j := range want {
		if float64(float32(want[j])) != got[j] {
			t.Fatalf("dim %d: %v vs %v", j, got[j], want[j])
		}
	}
	// ... the store is aligned with the re-extraction ...
	m := resumed.Model()
	for _, v := range m.ex.Values {
		key, _ := m.Key(m.ex.Categories[v.Category].Table, m.ex.Categories[v.Category].Column, v.Text)
		if id, ok := m.store.ID(key); !ok || id != v.ID {
			t.Fatalf("resumed store row %d holds value %d (%q): misaligned", id, v.ID, v.Text)
		}
	}
	// ... and the resumed session keeps maintaining incrementally.
	if err := resumed.Insert("movies", []Value{Int(11), Text("leon"), Text("france")}); err != nil {
		t.Fatal(err)
	}
	if _, err := resumed.Model().Vector("movies", "title", "leon"); err != nil {
		t.Fatal(err)
	}
}
