package ml

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/retrodb/retro/internal/nn"
	"github.com/retrodb/retro/internal/vec"
)

// LinkPredictor is the two-tower network of Fig. 5c: the source and
// target embeddings each pass through their own d→300 sigmoid layer, the
// results are subtracted, and the difference passes through a 300→300
// sigmoid layer into one sigmoid output trained with binary cross-entropy.
type LinkPredictor struct {
	cfg Config

	srcDense, dstDense *nn.Dense
	srcAct, dstAct     *nn.Activation
	hidden             *nn.Dense
	hiddenAct          *nn.Activation
	out                *nn.Dense
	loss               nn.BCELoss
}

// NewLinkPredictor builds the towers for source/target input widths.
// When the two widths match, the tower weights are shared (a Siamese
// network): §5.7 describes "an inner layer" processing both embeddings,
// and without sharing, ‖σ(A·s) − σ(B·t)‖ carries no s·t interaction at
// initialisation (AᵀB ≈ 0), leaving gradient descent at a saddle.
func NewLinkPredictor(srcDim, dstDim int, cfg Config) *LinkPredictor {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	h := cfg.Hidden2
	src := nn.NewDense(srcDim, h, rng)
	var dst *nn.Dense
	if dstDim == srcDim {
		dst = src.SharedClone()
	} else {
		dst = nn.NewDense(dstDim, h, rng)
	}
	hidden := nn.NewDense(h, h, rng)
	out := nn.NewDense(h, 1, rng)
	// The relatedness label is an even function of the tower difference
	// (it depends on its magnitude), but a zero-bias sigmoid stack is an
	// odd function of it, which strands gradient descent at a saddle: the
	// net then either stays at chance or memorises pairs. Start the
	// network inside the distance-detector basin instead: the
	// post-subtract layer operates at bias 1 (where the sigmoid has
	// curvature), and the output layer reads the mean of those units with
	// a matching negative bias, so the initial logit is a monotone
	// function of ‖difference‖ that training then refines.
	hiddenBias := hidden.Params()[1]
	for i := range hiddenBias.W.Data {
		hiddenBias.W.Data[i] = 1
	}
	// Scale the post-subtract weights up so the difference actually moves
	// the sigmoid off its bias point.
	hiddenWeight := hidden.Params()[0]
	for i := range hiddenWeight.W.Data {
		hiddenWeight.W.Data[i] *= 4
	}
	outWeight := out.Params()[0]
	const readout = 1.0
	for i := range outWeight.W.Data {
		outWeight.W.Data[i] = readout
	}
	sigmaAt1 := 1.0 / (1.0 + math.Exp(-1.0))
	out.Params()[1].W.Set(0, 0, -readout*float64(h)*sigmaAt1)
	return &LinkPredictor{
		cfg:       cfg,
		srcDense:  src,
		srcAct:    nn.NewActivation(nn.Sigmoid),
		dstDense:  dst,
		dstAct:    nn.NewActivation(nn.Sigmoid),
		hidden:    hidden,
		hiddenAct: nn.NewActivation(nn.Sigmoid),
		out:       out,
	}
}

func (l *LinkPredictor) params() []*nn.Param {
	var out []*nn.Param
	seen := map[*nn.Param]bool{}
	for _, layer := range []nn.Layer{l.srcDense, l.dstDense, l.hidden, l.out} {
		for _, p := range layer.Params() {
			if !seen[p] {
				seen[p] = true
				out = append(out, p)
			}
		}
	}
	return out
}

// forward computes logits for batches of source/target embeddings.
func (l *LinkPredictor) forward(src, dst *vec.Matrix, train bool) *vec.Matrix {
	hs := l.srcAct.Forward(l.srcDense.Forward(src, train), train)
	ht := l.dstAct.Forward(l.dstDense.Forward(dst, train), train)
	diff := vec.NewMatrix(hs.Rows, hs.Cols)
	for i := 0; i < hs.Rows; i++ {
		vec.Sub(diff.Row(i), hs.Row(i), ht.Row(i))
	}
	h := l.hiddenAct.Forward(l.hidden.Forward(diff, train), train)
	return l.out.Forward(h, train)
}

// backward propagates dLogits through both towers.
func (l *LinkPredictor) backward(grad *vec.Matrix) {
	g := l.out.Backward(grad)
	g = l.hiddenAct.Backward(g)
	g = l.hidden.Backward(g)
	// d(diff) splits: +g to the source tower, -g to the target tower.
	negG := vec.NewMatrix(g.Rows, g.Cols)
	for i := 0; i < g.Rows; i++ {
		for j := 0; j < g.Cols; j++ {
			negG.Set(i, j, -g.At(i, j))
		}
	}
	l.srcDense.Backward(l.srcAct.Backward(g))
	l.dstDense.Backward(l.dstAct.Backward(negG))
}

// Fit trains on edge samples: src/dst embedding rows with labels y in
// {0,1} (1 = edge present). A validation split with patience-based early
// stopping mirrors the other tasks.
func (l *LinkPredictor) Fit(src, dst *vec.Matrix, y []float64) (*nn.History, error) {
	if src.Rows != dst.Rows || src.Rows != len(y) {
		return nil, fmt.Errorf("ml: link batch shapes disagree (%d, %d, %d)", src.Rows, dst.Rows, len(y))
	}
	if src.Rows < 2 {
		return nil, fmt.Errorf("ml: need at least 2 samples")
	}
	nsrc := src.Clone()
	ndst := dst.Clone()
	nn.NormalizeRows(nsrc)
	nn.NormalizeRows(ndst)

	rng := rand.New(rand.NewSource(l.cfg.Seed))
	perm := rng.Perm(src.Rows)
	nVal := src.Rows / 10
	if nVal < 1 {
		nVal = 1
	}
	nTrain := src.Rows - nVal
	trIdx, valIdx := perm[:nTrain], perm[nTrain:]

	opt := nn.NewNadam(l.cfg.LearnRate)
	hist := &nn.History{SamplesTrain: nTrain, SamplesVal: nVal, BestValLoss: 1e308}
	var best [][]float64
	bad := 0

	order := append([]int(nil), trIdx...)
	for epoch := 0; epoch < l.cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		var epochLoss float64
		batches := 0
		for start := 0; start < len(order); start += l.cfg.BatchSize {
			end := start + l.cfg.BatchSize
			if end > len(order) {
				end = len(order)
			}
			bs, bd, by := l.gather(nsrc, ndst, y, order[start:end])
			logits := l.forward(bs, bd, true)
			lossVal, grad := l.loss.Eval(logits, by)
			l.backward(grad)
			if l.cfg.L2 > 0 {
				for _, p := range l.params() {
					for i := range p.Grad.Data {
						p.Grad.Data[i] += l.cfg.L2 * p.W.Data[i]
					}
				}
			}
			opt.Step(l.params())
			epochLoss += lossVal
			batches++
		}
		hist.TrainLoss = append(hist.TrainLoss, epochLoss/float64(batches))

		vs, vd, vy := l.gather(nsrc, ndst, y, valIdx)
		valLogits := l.forward(vs, vd, false)
		valLoss, _ := l.loss.Eval(valLogits, vy)
		hist.ValLoss = append(hist.ValLoss, valLoss)
		hist.Epochs = epoch + 1

		if valLoss < hist.BestValLoss {
			hist.BestValLoss = valLoss
			hist.BestEpoch = epoch
			best = nil
			for _, p := range l.params() {
				best = append(best, vec.Clone(p.W.Data))
			}
			bad = 0
		} else if bad++; bad >= l.cfg.Patience {
			hist.StoppedEarly = true
			break
		}
	}
	if best != nil {
		for i, p := range l.params() {
			copy(p.W.Data, best[i])
		}
		hist.RestoredBest = true
	}
	return hist, nil
}

func (l *LinkPredictor) gather(src, dst *vec.Matrix, y []float64, idx []int) (*vec.Matrix, *vec.Matrix, *vec.Matrix) {
	gs := vec.NewMatrix(len(idx), src.Cols)
	gd := vec.NewMatrix(len(idx), dst.Cols)
	gy := vec.NewMatrix(len(idx), 1)
	for i, r := range idx {
		copy(gs.Row(i), src.Row(r))
		copy(gd.Row(i), dst.Row(r))
		gy.Set(i, 0, y[r])
	}
	return gs, gd, gy
}

// PredictProb returns P(edge) for one (source, target) pair.
func (l *LinkPredictor) PredictProb(src, dst []float64) float64 {
	s := vec.NewMatrixFrom([][]float64{vec.Clone(src)})
	d := vec.NewMatrixFrom([][]float64{vec.Clone(dst)})
	nn.NormalizeRows(s)
	nn.NormalizeRows(d)
	logits := l.forward(s, d, false)
	return nn.SigmoidScalar(logits.At(0, 0))
}

// Accuracy evaluates 0.5-threshold accuracy over pair rows.
func (l *LinkPredictor) Accuracy(src, dst *vec.Matrix, y []float64) float64 {
	nsrc := src.Clone()
	ndst := dst.Clone()
	nn.NormalizeRows(nsrc)
	nn.NormalizeRows(ndst)
	logits := l.forward(nsrc, ndst, false)
	correct := 0
	for i := range y {
		pred := 0.0
		if nn.SigmoidScalar(logits.At(i, 0)) > 0.5 {
			pred = 1
		}
		if pred == y[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(y))
}

// RandomizeBiases perturbs every bias away from zero. The subtracted-tower
// architecture of Fig. 5c sits at a saddle point under zero-bias
// initialisation (the sigmoid is odd around its inflection, so the
// difference network has no first- or second-order gradient toward the
// interaction term); offsetting the operating points breaks the symmetry.
func (l *LinkPredictor) RandomizeBiases(seed int64, scale float64) {
	rng := rand.New(rand.NewSource(seed))
	for _, layer := range []*nn.Dense{l.srcDense, l.dstDense, l.hidden} {
		params := layer.Params()
		bias := params[1]
		for i := range bias.W.Data {
			bias.W.Data[i] = (rng.Float64()*2 - 1) * scale
		}
	}
}
