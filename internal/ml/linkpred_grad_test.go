package ml

import (
	"math"
	"math/rand"
	"testing"

	"github.com/retrodb/retro/internal/vec"
)

// TestLinkPredictorGradCheck verifies the two-tower backward pass against
// central finite differences — the composite (subtract) wiring is easy to
// get wrong.
func TestLinkPredictorGradCheck(t *testing.T) {
	cfg := Config{Hidden1: 5, Hidden2: 4, Seed: 3}
	lp := NewLinkPredictor(3, 3, cfg)
	rng := rand.New(rand.NewSource(4))
	src := vec.NewMatrix(6, 3)
	dst := vec.NewMatrix(6, 3)
	src.Randomize(rng, 1)
	dst.Randomize(rng, 1)
	y := vec.NewMatrix(6, 1)
	for i := 0; i < 6; i++ {
		y.Set(i, 0, float64(rng.Intn(2)))
	}

	lossFn := func() float64 {
		logits := lp.forward(src, dst, false)
		l, _ := lp.loss.Eval(logits, y)
		return l
	}
	logits := lp.forward(src, dst, false)
	_, grad := lp.loss.Eval(logits, y)
	lp.backward(grad)

	params := lp.params()
	analytic := make([][]float64, len(params))
	for i, p := range params {
		analytic[i] = vec.Clone(p.Grad.Data)
		p.Grad.Zero()
	}
	const eps = 1e-5
	for pi, p := range params {
		for i := range p.W.Data {
			orig := p.W.Data[i]
			p.W.Data[i] = orig + eps
			up := lossFn()
			p.W.Data[i] = orig - eps
			down := lossFn()
			p.W.Data[i] = orig
			numeric := (up - down) / (2 * eps)
			if math.Abs(numeric-analytic[pi][i]) > 1e-5*(1+math.Abs(numeric)) {
				t.Fatalf("param %s[%d]: analytic %v numeric %v", p.Name, i, analytic[pi][i], numeric)
			}
		}
	}
}
