package ml

import (
	"math"
	"math/rand"
	"testing"

	"github.com/retrodb/retro/internal/vec"
)

// blobs generates two Gaussian clusters in dim dimensions.
func blobs(rng *rand.Rand, n, dim int, sep float64) (*vec.Matrix, []float64) {
	x := vec.NewMatrix(n, dim)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		cls := float64(i % 2)
		y[i] = cls
		for j := 0; j < dim; j++ {
			center := -sep
			if cls == 1 {
				center = sep
			}
			x.Set(i, j, center+rng.NormFloat64()*0.4)
		}
	}
	return x, y
}

var smallCfg = Config{Hidden1: 16, Hidden2: 8, Epochs: 120, BatchSize: 16, Patience: 20, Seed: 7}

func TestBinaryClassifierLearnsBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x, y := blobs(rng, 160, 6, 1)
	c := NewBinaryClassifier(6, smallCfg)
	if _, err := c.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	tx, ty := blobs(rng, 80, 6, 1)
	if acc := c.Accuracy(tx, ty); acc < 0.9 {
		t.Fatalf("accuracy = %v", acc)
	}
	// Probabilities behave.
	p := c.PredictProb(tx.Row(0))
	if p < 0 || p > 1 {
		t.Fatalf("prob = %v", p)
	}
}

func TestBinaryClassifierFitErrors(t *testing.T) {
	c := NewBinaryClassifier(3, smallCfg)
	if _, err := c.Fit(vec.NewMatrix(4, 3), []float64{1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestBinaryClassifierWithDropoutAndL2(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x, y := blobs(rng, 120, 4, 1.2)
	cfg := smallCfg
	cfg.Dropout = 0.3
	cfg.L2 = 0.001
	c := NewBinaryClassifier(4, cfg)
	if _, err := c.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if acc := c.Accuracy(x, y); acc < 0.85 {
		t.Fatalf("accuracy with regularisation = %v", acc)
	}
}

func TestCategoryImputerLearnsMulticlass(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	// 3 classes at 120° apart in 2D, lifted to 5D with noise.
	n := 180
	x := vec.NewMatrix(n, 5)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		cls := i % 3
		labels[i] = cls
		angle := float64(cls) * 2 * math.Pi / 3
		x.Set(i, 0, math.Cos(angle)+rng.NormFloat64()*0.2)
		x.Set(i, 1, math.Sin(angle)+rng.NormFloat64()*0.2)
		for j := 2; j < 5; j++ {
			x.Set(i, j, rng.NormFloat64()*0.1)
		}
	}
	c := NewCategoryImputer(5, 3, smallCfg)
	if _, err := c.Fit(x, labels); err != nil {
		t.Fatal(err)
	}
	if acc := c.Accuracy(x, labels); acc < 0.85 {
		t.Fatalf("multiclass accuracy = %v", acc)
	}
	if p := c.Predict(x.Row(0)); p < 0 || p > 2 {
		t.Fatalf("Predict = %d", p)
	}
}

func TestCategoryImputerLabelValidation(t *testing.T) {
	c := NewCategoryImputer(2, 3, smallCfg)
	x := vec.NewMatrix(2, 2)
	if _, err := c.Fit(x, []int{0, 5}); err == nil {
		t.Fatal("out-of-range label accepted")
	}
	if _, err := c.Fit(x, []int{0}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestRegressorLearnsLinearTarget(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 200
	x := vec.NewMatrix(n, 4)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < 4; j++ {
			x.Set(i, j, rng.NormFloat64())
		}
		// Target depends on direction of the (normalised) input.
		r := vec.Clone(x.Row(i))
		vec.Normalize(r)
		y[i] = 3*r[0] - 2*r[1]
	}
	cfg := smallCfg
	cfg.Epochs = 200
	r := NewRegressor(4, cfg)
	if _, err := r.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if mae := r.MAE(x, y); mae > 0.5 {
		t.Fatalf("MAE = %v", mae)
	}
	_ = r.Predict(x.Row(0))
}

func TestRegressorErrors(t *testing.T) {
	r := NewRegressor(2, smallCfg)
	if _, err := r.Fit(vec.NewMatrix(3, 2), []float64{1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestLinkPredictorLearnsXorOfSigns(t *testing.T) {
	// Edge exists iff source and target come from the same cluster: the
	// predictor must combine both towers.
	rng := rand.New(rand.NewSource(5))
	n := 300
	dim := 4
	src := vec.NewMatrix(n, dim)
	dst := vec.NewMatrix(n, dim)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		sCls := rng.Intn(2)
		dCls := rng.Intn(2)
		if sCls == dCls {
			y[i] = 1
		}
		for j := 0; j < dim; j++ {
			src.Set(i, j, float64(sCls*2-1)+rng.NormFloat64()*0.3)
			dst.Set(i, j, float64(dCls*2-1)+rng.NormFloat64()*0.3)
		}
	}
	cfg := smallCfg
	cfg.Epochs = 200
	lp := NewLinkPredictor(dim, dim, cfg)
	if _, err := lp.Fit(src, dst, y); err != nil {
		t.Fatal(err)
	}
	if acc := lp.Accuracy(src, dst, y); acc < 0.85 {
		t.Fatalf("link accuracy = %v", acc)
	}
	p := lp.PredictProb(src.Row(0), dst.Row(0))
	if p < 0 || p > 1 {
		t.Fatalf("prob = %v", p)
	}
}

func TestLinkPredictorErrors(t *testing.T) {
	lp := NewLinkPredictor(2, 2, smallCfg)
	if _, err := lp.Fit(vec.NewMatrix(3, 2), vec.NewMatrix(2, 2), []float64{1, 0, 1}); err == nil {
		t.Fatal("shape mismatch accepted")
	}
	if _, err := lp.Fit(vec.NewMatrix(1, 2), vec.NewMatrix(1, 2), []float64{1}); err == nil {
		t.Fatal("single sample accepted")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Hidden1 != 600 || c.Hidden2 != 300 {
		t.Fatalf("paper architecture defaults wrong: %+v", c)
	}
	if c.Epochs <= 0 || c.Patience <= 0 || c.BatchSize <= 0 || c.LearnRate <= 0 {
		t.Fatalf("defaults = %+v", c)
	}
}

func TestDeterministicTraining(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x, y := blobs(rng, 60, 3, 1)
	accs := make([]float64, 2)
	for trial := range accs {
		c := NewBinaryClassifier(3, smallCfg)
		if _, err := c.Fit(x, y); err != nil {
			t.Fatal(err)
		}
		accs[trial] = c.Accuracy(x, y)
	}
	if accs[0] != accs[1] {
		t.Fatalf("training not deterministic: %v", accs)
	}
}
