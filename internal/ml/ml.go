// Package ml wires the paper's task networks (Fig. 5) on top of the nn
// library: (a) binary classification and category imputation with
// 600/300-unit sigmoid layers, (b) budget regression with a deeper ReLU
// stack and MAE loss, and (c) the two-tower link predictor. Inputs are
// embedding vectors, L2-normalised per §5.5.
package ml

import (
	"fmt"
	"math/rand"

	"github.com/retrodb/retro/internal/nn"
	"github.com/retrodb/retro/internal/vec"
)

// Config scales the networks. The zero value is replaced by the paper's
// architecture (600/300 hidden units); experiments at reduced scale can
// shrink proportionally.
type Config struct {
	Hidden1   int     // first hidden width (paper: 600)
	Hidden2   int     // second hidden width (paper: 300)
	Dropout   float64 // dropout rate (binary classification / regression)
	L2        float64 // weight decay (binary classification)
	Epochs    int
	BatchSize int
	Patience  int
	LearnRate float64
	Seed      int64
}

func (c Config) withDefaults() Config {
	if c.Hidden1 <= 0 {
		c.Hidden1 = 600
	}
	if c.Hidden2 <= 0 {
		c.Hidden2 = 300
	}
	if c.Epochs <= 0 {
		c.Epochs = 300
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 32
	}
	if c.Patience <= 0 {
		c.Patience = 50
	}
	if c.LearnRate <= 0 {
		c.LearnRate = 0.002
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

func (c Config) trainConfig() nn.TrainConfig {
	return nn.TrainConfig{
		Epochs:    c.Epochs,
		BatchSize: c.BatchSize,
		Patience:  c.Patience,
		L2:        c.L2,
		Optimizer: nn.NewNadam(c.LearnRate),
		Seed:      c.Seed,
	}
}

// BinaryClassifier is Fig. 5a with a single sigmoid output: input →
// 600 σ → 300 σ → 1, trained with binary cross-entropy, dropout and L2
// (§5.5 binary classification uses one hidden layer fewer than
// imputation; we follow the figure's two inner layers).
type BinaryClassifier struct {
	net *nn.Sequential
	cfg Config
}

// NewBinaryClassifier builds the network for the given input width.
func NewBinaryClassifier(inputDim int, cfg Config) *BinaryClassifier {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	layers := []nn.Layer{
		nn.NewDense(inputDim, cfg.Hidden1, rng),
		nn.NewActivation(nn.Sigmoid),
	}
	if cfg.Dropout > 0 {
		layers = append(layers, nn.NewDropout(cfg.Dropout, rng))
	}
	layers = append(layers,
		nn.NewDense(cfg.Hidden1, cfg.Hidden2, rng),
		nn.NewActivation(nn.Sigmoid),
		nn.NewDense(cfg.Hidden2, 1, rng),
	)
	return &BinaryClassifier{net: nn.NewSequential(nn.BCELoss{}, layers...), cfg: cfg}
}

// Fit trains on normalised copies of the rows of x with labels y in {0,1}.
func (c *BinaryClassifier) Fit(x *vec.Matrix, y []float64) (*nn.History, error) {
	if x.Rows != len(y) {
		return nil, fmt.Errorf("ml: %d samples vs %d labels", x.Rows, len(y))
	}
	nx := x.Clone()
	nn.NormalizeRows(nx)
	ny := vec.NewMatrix(len(y), 1)
	for i, v := range y {
		ny.Set(i, 0, v)
	}
	return nn.Fit(c.net, nx, ny, c.cfg.trainConfig())
}

// PredictProb returns P(label=1) for one embedding.
func (c *BinaryClassifier) PredictProb(x []float64) float64 {
	in := vec.NewMatrixFrom([][]float64{vec.Clone(x)})
	nn.NormalizeRows(in)
	logits := c.net.Forward(in, false)
	return nn.SigmoidScalar(logits.At(0, 0))
}

// Accuracy evaluates 0.5-threshold accuracy on a test set.
func (c *BinaryClassifier) Accuracy(x *vec.Matrix, y []float64) float64 {
	nx := x.Clone()
	nn.NormalizeRows(nx)
	logits := c.net.Forward(nx, false)
	correct := 0
	for i := range y {
		pred := 0.0
		if nn.SigmoidScalar(logits.At(i, 0)) > 0.5 {
			pred = 1
		}
		if pred == y[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(y))
}

// CategoryImputer is Fig. 5a with a softmax output over m categories:
// input → 600 σ → 300 σ → m softmax, categorical cross-entropy (§5.5.2).
type CategoryImputer struct {
	net     *nn.Sequential
	cfg     Config
	classes int
}

// NewCategoryImputer builds the network.
func NewCategoryImputer(inputDim, numClasses int, cfg Config) *CategoryImputer {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	net := nn.NewSequential(nn.CCELoss{},
		nn.NewDense(inputDim, cfg.Hidden1, rng),
		nn.NewActivation(nn.Sigmoid),
		nn.NewDense(cfg.Hidden1, cfg.Hidden2, rng),
		nn.NewActivation(nn.Sigmoid),
		nn.NewDense(cfg.Hidden2, numClasses, rng),
	)
	return &CategoryImputer{net: net, cfg: cfg, classes: numClasses}
}

// Fit trains on class indices in [0, numClasses).
func (c *CategoryImputer) Fit(x *vec.Matrix, labels []int) (*nn.History, error) {
	if x.Rows != len(labels) {
		return nil, fmt.Errorf("ml: %d samples vs %d labels", x.Rows, len(labels))
	}
	nx := x.Clone()
	nn.NormalizeRows(nx)
	y := vec.NewMatrix(len(labels), c.classes)
	for i, l := range labels {
		if l < 0 || l >= c.classes {
			return nil, fmt.Errorf("ml: label %d outside %d classes", l, c.classes)
		}
		y.Set(i, l, 1)
	}
	return nn.Fit(c.net, nx, y, c.cfg.trainConfig())
}

// Predict returns the argmax class for one embedding.
func (c *CategoryImputer) Predict(x []float64) int {
	in := vec.NewMatrixFrom([][]float64{vec.Clone(x)})
	nn.NormalizeRows(in)
	logits := c.net.Forward(in, false)
	return vec.ArgMax(logits.Row(0))
}

// Accuracy evaluates top-1 accuracy.
func (c *CategoryImputer) Accuracy(x *vec.Matrix, labels []int) float64 {
	nx := x.Clone()
	nn.NormalizeRows(nx)
	logits := c.net.Forward(nx, false)
	correct := 0
	for i, l := range labels {
		if vec.ArgMax(logits.Row(i)) == l {
			correct++
		}
	}
	return float64(correct) / float64(len(labels))
}

// Regressor is Fig. 5b: input → 300 ReLU ×4 (with dropout) → linear
// scalar, trained with MAE.
type Regressor struct {
	net *nn.Sequential
	cfg Config
}

// NewRegressor builds the deeper ReLU stack of Fig. 5b.
func NewRegressor(inputDim int, cfg Config) *Regressor {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	h := cfg.Hidden2 // the regression net uses 300-wide layers
	layers := []nn.Layer{
		nn.NewDense(inputDim, h, rng),
		nn.NewActivation(nn.ReLU),
	}
	for i := 0; i < 3; i++ {
		if cfg.Dropout > 0 {
			layers = append(layers, nn.NewDropout(cfg.Dropout, rng))
		}
		layers = append(layers,
			nn.NewDense(h, h, rng),
			nn.NewActivation(nn.ReLU),
		)
	}
	layers = append(layers, nn.NewDense(h, 1, rng))
	return &Regressor{net: nn.NewSequential(nn.MAELoss{}, layers...), cfg: cfg}
}

// Fit trains on scalar targets.
func (r *Regressor) Fit(x *vec.Matrix, y []float64) (*nn.History, error) {
	if x.Rows != len(y) {
		return nil, fmt.Errorf("ml: %d samples vs %d targets", x.Rows, len(y))
	}
	nx := x.Clone()
	nn.NormalizeRows(nx)
	ny := vec.NewMatrix(len(y), 1)
	for i, v := range y {
		ny.Set(i, 0, v)
	}
	return nn.Fit(r.net, nx, ny, r.cfg.trainConfig())
}

// Predict returns the regression output for one embedding.
func (r *Regressor) Predict(x []float64) float64 {
	in := vec.NewMatrixFrom([][]float64{vec.Clone(x)})
	nn.NormalizeRows(in)
	return r.net.Forward(in, false).At(0, 0)
}

// MAE evaluates mean absolute error on a test set.
func (r *Regressor) MAE(x *vec.Matrix, y []float64) float64 {
	nx := x.Clone()
	nn.NormalizeRows(nx)
	out := r.net.Forward(nx, false)
	var total float64
	for i := range y {
		d := out.At(i, 0) - y[i]
		if d < 0 {
			d = -d
		}
		total += d
	}
	return total / float64(len(y))
}
