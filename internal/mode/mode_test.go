package mode

import "testing"

func TestModePrediction(t *testing.T) {
	m := Train([]int{1, 2, 2, 3, 2, 1})
	if m.Predict() != 2 {
		t.Fatalf("mode = %d", m.Predict())
	}
}

func TestModeTieBreaksLow(t *testing.T) {
	m := Train([]int{5, 5, 3, 3})
	if m.Predict() != 3 {
		t.Fatalf("tie should resolve low: %d", m.Predict())
	}
}

func TestAccuracy(t *testing.T) {
	m := Train([]int{0, 0, 0, 1})
	if acc := m.Accuracy([]int{0, 0, 1, 1}); acc != 0.5 {
		t.Fatalf("accuracy = %v", acc)
	}
	if m.Accuracy(nil) != 0 {
		t.Fatal("empty accuracy should be 0")
	}
}

func TestDistributionCopy(t *testing.T) {
	m := Train([]int{1, 1, 2})
	d := m.Distribution()
	if d[1] != 2 || d[2] != 1 {
		t.Fatalf("distribution = %v", d)
	}
	d[1] = 99
	if m.Distribution()[1] != 2 {
		t.Fatal("Distribution must return a copy")
	}
}

func TestEmptyTraining(t *testing.T) {
	m := Train(nil)
	if m.Predict() != 0 {
		t.Fatalf("empty model should predict 0, got %d", m.Predict())
	}
}
