// Package mode implements the mode-imputation baseline of §5.4: a missing
// categorical value is replaced by the most frequent value of its column.
package mode

// Imputer predicts the majority class seen during training.
type Imputer struct {
	counts map[int]int
	mode   int
	total  int
}

// Train tallies the labels and fixes the mode. Ties resolve to the
// smallest label for determinism.
func Train(labels []int) *Imputer {
	m := &Imputer{counts: make(map[int]int)}
	for _, l := range labels {
		m.counts[l]++
		m.total++
	}
	best, bestCount := 0, -1
	for l, c := range m.counts {
		if c > bestCount || (c == bestCount && l < best) {
			best, bestCount = l, c
		}
	}
	m.mode = best
	return m
}

// Predict returns the mode regardless of input.
func (m *Imputer) Predict() int { return m.mode }

// Accuracy scores the constant prediction against test labels.
func (m *Imputer) Accuracy(labels []int) float64 {
	if len(labels) == 0 {
		return 0
	}
	correct := 0
	for _, l := range labels {
		if l == m.mode {
			correct++
		}
	}
	return float64(correct) / float64(len(labels))
}

// Distribution returns the trained label histogram (copy).
func (m *Imputer) Distribution() map[int]int {
	out := make(map[int]int, len(m.counts))
	for k, v := range m.counts {
		out[k] = v
	}
	return out
}
