package nn

import (
	"fmt"
	"math"

	"github.com/retrodb/retro/internal/vec"
)

// Optimizer applies accumulated gradients to parameters and clears them.
type Optimizer interface {
	Step(params []*Param)
	Name() string
}

// SGD is plain stochastic gradient descent with optional momentum.
type SGD struct {
	LR       float64
	Momentum float64
	velocity map[*Param]*vec.Matrix
}

// NewSGD builds an SGD optimizer.
func NewSGD(lr, momentum float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, velocity: make(map[*Param]*vec.Matrix)}
}

// Name implements Optimizer.
func (s *SGD) Name() string { return "sgd" }

// Step implements Optimizer.
func (s *SGD) Step(params []*Param) {
	for _, p := range params {
		if s.Momentum > 0 {
			v, ok := s.velocity[p]
			if !ok {
				v = vec.NewMatrix(p.W.Rows, p.W.Cols)
				s.velocity[p] = v
			}
			for i := range v.Data {
				v.Data[i] = s.Momentum*v.Data[i] - s.LR*p.Grad.Data[i]
				p.W.Data[i] += v.Data[i]
			}
		} else {
			for i := range p.W.Data {
				p.W.Data[i] -= s.LR * p.Grad.Data[i]
			}
		}
		p.Grad.Zero()
	}
}

// adamState holds per-parameter moments.
type adamState struct {
	m, v *vec.Matrix
}

// Adam is the Adam optimizer (Kingma & Ba 2015).
type Adam struct {
	LR, Beta1, Beta2, Eps float64
	nesterov              bool // true = Nadam
	t                     int
	state                 map[*Param]*adamState
}

// NewAdam builds Adam with the conventional defaults for zero fields
// (lr=0.001, β1=0.9, β2=0.999, ε=1e-8).
func NewAdam(lr float64) *Adam {
	return newAdamLike(lr, false)
}

// NewNadam builds Nadam (Dozat 2016): Adam with Nesterov momentum, the
// optimizer the paper trains all task networks with (§5.5).
func NewNadam(lr float64) *Adam {
	return newAdamLike(lr, true)
}

func newAdamLike(lr float64, nesterov bool) *Adam {
	if lr <= 0 {
		lr = 0.001
	}
	return &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		nesterov: nesterov,
		state:    make(map[*Param]*adamState),
	}
}

// Name implements Optimizer.
func (a *Adam) Name() string {
	if a.nesterov {
		return "nadam"
	}
	return "adam"
}

// Step implements Optimizer.
func (a *Adam) Step(params []*Param) {
	a.t++
	t := float64(a.t)
	bc1 := 1 - math.Pow(a.Beta1, t)
	bc2 := 1 - math.Pow(a.Beta2, t)
	// Nadam's look-ahead first-moment correction uses the *next* step's
	// bias term for the momentum part.
	bc1Next := 1 - math.Pow(a.Beta1, t+1)
	for _, p := range params {
		st, ok := a.state[p]
		if !ok {
			st = &adamState{m: vec.NewMatrix(p.W.Rows, p.W.Cols), v: vec.NewMatrix(p.W.Rows, p.W.Cols)}
			a.state[p] = st
		}
		for i := range p.W.Data {
			g := p.Grad.Data[i]
			st.m.Data[i] = a.Beta1*st.m.Data[i] + (1-a.Beta1)*g
			st.v.Data[i] = a.Beta2*st.v.Data[i] + (1-a.Beta2)*g*g
			vHat := st.v.Data[i] / bc2
			var update float64
			if a.nesterov {
				mHat := st.m.Data[i] / bc1Next
				update = a.LR * (a.Beta1*mHat + (1-a.Beta1)*g/bc1) / (math.Sqrt(vHat) + a.Eps)
			} else {
				mHat := st.m.Data[i] / bc1
				update = a.LR * mHat / (math.Sqrt(vHat) + a.Eps)
			}
			p.W.Data[i] -= update
		}
		p.Grad.Zero()
	}
}

// NewOptimizer builds an optimizer by name ("sgd", "adam", "nadam"),
// used by CLI flags.
func NewOptimizer(name string, lr float64) (Optimizer, error) {
	switch name {
	case "sgd":
		return NewSGD(lr, 0), nil
	case "adam":
		return NewAdam(lr), nil
	case "nadam", "":
		return NewNadam(lr), nil
	default:
		return nil, fmt.Errorf("nn: unknown optimizer %q", name)
	}
}
