package nn

import (
	"fmt"
	"math"

	"github.com/retrodb/retro/internal/vec"
)

// Loss computes a scalar loss and the gradient with respect to the
// network's final *logits*. Working on logits lets the sigmoid/softmax be
// fused with the cross-entropy for the numerically stable simplified
// gradients.
type Loss interface {
	// Eval returns (mean loss, dLoss/dLogits). logits and targets are
	// batch-rows matrices.
	Eval(logits, targets *vec.Matrix) (float64, *vec.Matrix)
	Name() string
}

// BCELoss is binary cross-entropy over a single sigmoid output unit
// (targets in {0,1}, shape batch x 1).
type BCELoss struct{}

// Name implements Loss.
func (BCELoss) Name() string { return "binary-cross-entropy" }

// Eval implements Loss with the fused sigmoid gradient σ(z) − y.
func (BCELoss) Eval(logits, targets *vec.Matrix) (float64, *vec.Matrix) {
	checkShapes(logits, targets)
	grad := vec.NewMatrix(logits.Rows, logits.Cols)
	var total float64
	n := float64(logits.Rows)
	for i := 0; i < logits.Rows; i++ {
		z := logits.At(i, 0)
		y := targets.At(i, 0)
		p := sigmoid(z)
		// Stable formulation: log(1+e^{-|z|}) + max(z,0) − z·y.
		total += math.Log1p(math.Exp(-math.Abs(z))) + math.Max(z, 0) - z*y
		grad.Set(i, 0, (p-y)/n)
	}
	return total / n, grad
}

// CCELoss is categorical cross-entropy over softmax logits (targets are
// one-hot rows).
type CCELoss struct{}

// Name implements Loss.
func (CCELoss) Name() string { return "categorical-cross-entropy" }

// Eval implements Loss with the fused softmax gradient p − y.
func (CCELoss) Eval(logits, targets *vec.Matrix) (float64, *vec.Matrix) {
	checkShapes(logits, targets)
	grad := vec.NewMatrix(logits.Rows, logits.Cols)
	var total float64
	n := float64(logits.Rows)
	probs := make([]float64, logits.Cols)
	for i := 0; i < logits.Rows; i++ {
		zi := logits.Row(i)
		softmax(probs, zi)
		yi := targets.Row(i)
		gi := grad.Row(i)
		for j := range probs {
			gi[j] = (probs[j] - yi[j]) / n
			if yi[j] > 0 {
				total += -yi[j] * math.Log(math.Max(probs[j], 1e-15))
			}
		}
	}
	return total / n, grad
}

// MAELoss is mean absolute error over a linear output (Fig. 5b).
type MAELoss struct{}

// Name implements Loss.
func (MAELoss) Name() string { return "mean-absolute-error" }

// Eval implements Loss; the subgradient at 0 is 0.
func (MAELoss) Eval(logits, targets *vec.Matrix) (float64, *vec.Matrix) {
	checkShapes(logits, targets)
	grad := vec.NewMatrix(logits.Rows, logits.Cols)
	var total float64
	n := float64(logits.Rows * logits.Cols)
	for i := 0; i < logits.Rows; i++ {
		zi, yi, gi := logits.Row(i), targets.Row(i), grad.Row(i)
		for j := range zi {
			d := zi[j] - yi[j]
			total += math.Abs(d)
			switch {
			case d > 0:
				gi[j] = 1 / n
			case d < 0:
				gi[j] = -1 / n
			}
		}
	}
	return total / n, grad
}

// MSELoss is mean squared error, kept for completeness and tests.
type MSELoss struct{}

// Name implements Loss.
func (MSELoss) Name() string { return "mean-squared-error" }

// Eval implements Loss.
func (MSELoss) Eval(logits, targets *vec.Matrix) (float64, *vec.Matrix) {
	checkShapes(logits, targets)
	grad := vec.NewMatrix(logits.Rows, logits.Cols)
	var total float64
	n := float64(logits.Rows * logits.Cols)
	for i := 0; i < logits.Rows; i++ {
		zi, yi, gi := logits.Row(i), targets.Row(i), grad.Row(i)
		for j := range zi {
			d := zi[j] - yi[j]
			total += d * d
			gi[j] = 2 * d / n
		}
	}
	return total / n, grad
}

func checkShapes(logits, targets *vec.Matrix) {
	if logits.Rows != targets.Rows || logits.Cols != targets.Cols {
		panic(fmt.Sprintf("nn: loss shape mismatch %dx%d vs %dx%d",
			logits.Rows, logits.Cols, targets.Rows, targets.Cols))
	}
}

// softmax writes the softmax of z into dst with max-subtraction stability.
func softmax(dst, z []float64) {
	maxZ := z[0]
	for _, v := range z[1:] {
		if v > maxZ {
			maxZ = v
		}
	}
	var sum float64
	for j, v := range z {
		e := math.Exp(v - maxZ)
		dst[j] = e
		sum += e
	}
	for j := range dst {
		dst[j] /= sum
	}
}

// Softmax returns the softmax probabilities of a logits row (exported for
// the prediction paths).
func Softmax(z []float64) []float64 {
	out := make([]float64, len(z))
	softmax(out, z)
	return out
}

// SigmoidScalar exposes the stable sigmoid for prediction paths.
func SigmoidScalar(z float64) float64 { return sigmoid(z) }
