// Package nn is a small from-scratch neural network library covering what
// the paper's evaluation needs (§5, Fig. 5): dense layers, sigmoid/ReLU
// activations, dropout, L2 regularisation, binary/categorical
// cross-entropy and MAE losses, SGD/Adam/Nadam optimizers, early stopping
// on a validation split, and an LSTM cell for the DataWig baseline.
//
// Layers operate on row-major batches (vec.Matrix, one sample per row)
// and cache whatever the backward pass needs; a layer instance therefore
// handles one forward/backward pair at a time.
package nn

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/retrodb/retro/internal/vec"
)

// Param is one trainable tensor with its gradient accumulator.
type Param struct {
	Name string
	W    *vec.Matrix
	Grad *vec.Matrix
}

func newParam(name string, rows, cols int) *Param {
	return &Param{Name: name, W: vec.NewMatrix(rows, cols), Grad: vec.NewMatrix(rows, cols)}
}

// Layer is one differentiable block.
type Layer interface {
	// Forward consumes a batch (rows = samples) and returns the output
	// batch. train toggles training-only behaviour (dropout).
	Forward(x *vec.Matrix, train bool) *vec.Matrix
	// Backward consumes dL/dOutput and returns dL/dInput, accumulating
	// parameter gradients.
	Backward(grad *vec.Matrix) *vec.Matrix
	// Params returns the trainable parameters (possibly none).
	Params() []*Param
}

// Dense is a fully connected layer: y = x·W + b.
type Dense struct {
	In, Out int
	weight  *Param // In x Out
	bias    *Param // 1 x Out
	lastX   *vec.Matrix
}

// NewDense creates a dense layer with Glorot-uniform initialised weights.
func NewDense(in, out int, rng *rand.Rand) *Dense {
	d := &Dense{In: in, Out: out,
		weight: newParam(fmt.Sprintf("dense%dx%d.W", in, out), in, out),
		bias:   newParam(fmt.Sprintf("dense%dx%d.b", in, out), 1, out),
	}
	limit := math.Sqrt(6.0 / float64(in+out))
	d.weight.W.Randomize(rng, limit)
	return d
}

// SharedClone returns a new Dense that aliases d's weight and bias
// parameters (Siamese weight sharing). Each clone keeps its own forward
// cache, so two towers can run forward before either runs backward;
// gradients from both towers accumulate into the shared Grad tensors.
// Callers must deduplicate Params() by pointer before optimisation.
func (d *Dense) SharedClone() *Dense {
	return &Dense{In: d.In, Out: d.Out, weight: d.weight, bias: d.bias}
}

// Forward computes x·W + b.
func (d *Dense) Forward(x *vec.Matrix, train bool) *vec.Matrix {
	if x.Cols != d.In {
		panic(fmt.Sprintf("nn: Dense expected %d inputs, got %d", d.In, x.Cols))
	}
	d.lastX = x
	out := vec.NewMatrix(x.Rows, d.Out)
	x.Mul(out, d.weight.W)
	b := d.bias.W.Row(0)
	for i := 0; i < out.Rows; i++ {
		vec.Axpy(out.Row(i), 1, b)
	}
	return out
}

// Backward accumulates dW = xᵀ·grad, db = Σ grad and returns grad·Wᵀ.
func (d *Dense) Backward(grad *vec.Matrix) *vec.Matrix {
	x := d.lastX
	// dW += xᵀ grad (computed row-wise to avoid materialising xᵀ).
	for i := 0; i < x.Rows; i++ {
		xi := x.Row(i)
		gi := grad.Row(i)
		for k, xv := range xi {
			if xv != 0 {
				vec.Axpy(d.weight.Grad.Row(k), xv, gi)
			}
		}
		vec.Axpy(d.bias.Grad.Row(0), 1, gi)
	}
	// dX = grad · Wᵀ.
	dx := vec.NewMatrix(x.Rows, d.In)
	for i := 0; i < x.Rows; i++ {
		gi := grad.Row(i)
		dxi := dx.Row(i)
		for k := 0; k < d.In; k++ {
			dxi[k] = vec.Dot(gi, d.weight.W.Row(k))
		}
	}
	return dx
}

// Params returns weight and bias.
func (d *Dense) Params() []*Param { return []*Param{d.weight, d.bias} }

// Activation kinds.
type ActKind uint8

const (
	Sigmoid ActKind = iota
	ReLU
	Tanh
)

func (a ActKind) String() string {
	switch a {
	case Sigmoid:
		return "sigmoid"
	case ReLU:
		return "relu"
	case Tanh:
		return "tanh"
	default:
		return fmt.Sprintf("ActKind(%d)", uint8(a))
	}
}

// Activation applies an element-wise nonlinearity.
type Activation struct {
	Kind    ActKind
	lastOut *vec.Matrix
}

// NewActivation builds an activation layer.
func NewActivation(kind ActKind) *Activation { return &Activation{Kind: kind} }

// Forward applies the nonlinearity.
func (a *Activation) Forward(x *vec.Matrix, train bool) *vec.Matrix {
	out := vec.NewMatrix(x.Rows, x.Cols)
	for i := 0; i < x.Rows; i++ {
		xi, oi := x.Row(i), out.Row(i)
		for j, v := range xi {
			switch a.Kind {
			case Sigmoid:
				oi[j] = sigmoid(v)
			case ReLU:
				if v > 0 {
					oi[j] = v
				}
			case Tanh:
				oi[j] = math.Tanh(v)
			}
		}
	}
	a.lastOut = out
	return out
}

// Backward multiplies by the activation derivative (expressed in terms of
// the cached output).
func (a *Activation) Backward(grad *vec.Matrix) *vec.Matrix {
	dx := vec.NewMatrix(grad.Rows, grad.Cols)
	for i := 0; i < grad.Rows; i++ {
		gi, oi, di := grad.Row(i), a.lastOut.Row(i), dx.Row(i)
		for j := range gi {
			switch a.Kind {
			case Sigmoid:
				di[j] = gi[j] * oi[j] * (1 - oi[j])
			case ReLU:
				if oi[j] > 0 {
					di[j] = gi[j]
				}
			case Tanh:
				di[j] = gi[j] * (1 - oi[j]*oi[j])
			}
		}
	}
	return dx
}

// Params returns nil: activations are parameter-free.
func (a *Activation) Params() []*Param { return nil }

// Dropout zeroes activations with probability Rate during training and
// rescales survivors by 1/(1-Rate) (inverted dropout), matching §5.5.
type Dropout struct {
	Rate float64
	rng  *rand.Rand
	mask *vec.Matrix
}

// NewDropout builds a dropout layer; rate must be in [0, 1).
func NewDropout(rate float64, rng *rand.Rand) *Dropout {
	if rate < 0 || rate >= 1 {
		panic(fmt.Sprintf("nn: dropout rate %v out of [0,1)", rate))
	}
	return &Dropout{Rate: rate, rng: rng}
}

// Forward samples a fresh mask when training; at inference it is the
// identity.
func (d *Dropout) Forward(x *vec.Matrix, train bool) *vec.Matrix {
	if !train || d.Rate == 0 {
		d.mask = nil
		return x
	}
	keep := 1 - d.Rate
	scale := 1 / keep
	d.mask = vec.NewMatrix(x.Rows, x.Cols)
	out := vec.NewMatrix(x.Rows, x.Cols)
	for i := 0; i < x.Rows; i++ {
		xi, mi, oi := x.Row(i), d.mask.Row(i), out.Row(i)
		for j := range xi {
			if d.rng.Float64() < keep {
				mi[j] = scale
				oi[j] = xi[j] * scale
			}
		}
	}
	return out
}

// Backward applies the stored mask.
func (d *Dropout) Backward(grad *vec.Matrix) *vec.Matrix {
	if d.mask == nil {
		return grad
	}
	dx := vec.NewMatrix(grad.Rows, grad.Cols)
	for i := 0; i < grad.Rows; i++ {
		gi, mi, di := grad.Row(i), d.mask.Row(i), dx.Row(i)
		for j := range gi {
			di[j] = gi[j] * mi[j]
		}
	}
	return dx
}

// Params returns nil.
func (d *Dropout) Params() []*Param { return nil }

func sigmoid(x float64) float64 {
	if x >= 0 {
		return 1 / (1 + math.Exp(-x))
	}
	e := math.Exp(x)
	return e / (1 + e)
}
