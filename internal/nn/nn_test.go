package nn

import (
	"math"
	"math/rand"
	"testing"

	"github.com/retrodb/retro/internal/vec"
)

// numericGradCheck compares analytic parameter gradients against central
// finite differences for an arbitrary forward+loss closure.
func numericGradCheck(t *testing.T, params []*Param, lossFn func() float64, computeGrads func(), tol float64) {
	t.Helper()
	computeGrads()
	analytic := make([][]float64, len(params))
	for i, p := range params {
		analytic[i] = vec.Clone(p.Grad.Data)
		p.Grad.Zero()
	}
	const eps = 1e-5
	for pi, p := range params {
		for i := range p.W.Data {
			orig := p.W.Data[i]
			p.W.Data[i] = orig + eps
			up := lossFn()
			p.W.Data[i] = orig - eps
			down := lossFn()
			p.W.Data[i] = orig
			numeric := (up - down) / (2 * eps)
			if math.Abs(numeric-analytic[pi][i]) > tol*(1+math.Abs(numeric)) {
				t.Fatalf("param %s[%d]: analytic %v numeric %v", p.Name, i, analytic[pi][i], numeric)
			}
		}
	}
}

func TestDenseForward(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := NewDense(2, 3, rng)
	// Overwrite with known weights.
	d.weight.W.CopyFrom(vec.NewMatrixFrom([][]float64{{1, 0, 2}, {0, 1, 3}}))
	d.bias.W.CopyFrom(vec.NewMatrixFrom([][]float64{{0.5, -0.5, 0}}))
	x := vec.NewMatrixFrom([][]float64{{1, 2}})
	out := d.Forward(x, false)
	want := []float64{1.5, 1.5, 8}
	for j, w := range want {
		if math.Abs(out.At(0, j)-w) > 1e-12 {
			t.Fatalf("out = %v", out.Row(0))
		}
	}
}

func TestDenseGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := NewDense(3, 2, rng)
	x := vec.NewMatrix(4, 3)
	x.Randomize(rng, 1)
	y := vec.NewMatrix(4, 2)
	y.Randomize(rng, 1)
	loss := MSELoss{}

	lossFn := func() float64 {
		out := d.Forward(x, false)
		l, _ := loss.Eval(out, y)
		return l
	}
	computeGrads := func() {
		out := d.Forward(x, false)
		_, grad := loss.Eval(out, y)
		d.Backward(grad)
	}
	numericGradCheck(t, d.Params(), lossFn, computeGrads, 1e-6)
}

func TestMLPGradCheckAllLosses(t *testing.T) {
	cases := []struct {
		name string
		loss Loss
		out  int
		mkY  func(rng *rand.Rand, rows, cols int) *vec.Matrix
	}{
		{"bce", BCELoss{}, 1, func(rng *rand.Rand, rows, cols int) *vec.Matrix {
			y := vec.NewMatrix(rows, cols)
			for i := 0; i < rows; i++ {
				y.Set(i, 0, float64(rng.Intn(2)))
			}
			return y
		}},
		{"cce", CCELoss{}, 3, func(rng *rand.Rand, rows, cols int) *vec.Matrix {
			y := vec.NewMatrix(rows, cols)
			for i := 0; i < rows; i++ {
				y.Set(i, rng.Intn(cols), 1)
			}
			return y
		}},
		{"mse", MSELoss{}, 2, func(rng *rand.Rand, rows, cols int) *vec.Matrix {
			y := vec.NewMatrix(rows, cols)
			y.Randomize(rng, 1)
			return y
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(3))
			net := NewSequential(c.loss,
				NewDense(4, 5, rng),
				NewActivation(Sigmoid),
				NewDense(5, c.out, rng),
			)
			x := vec.NewMatrix(6, 4)
			x.Randomize(rng, 1)
			y := c.mkY(rng, 6, c.out)
			lossFn := func() float64 {
				l, _ := c.loss.Eval(net.Forward(x, false), y)
				return l
			}
			computeGrads := func() {
				_, grad := c.loss.Eval(net.Forward(x, false), y)
				net.Backward(grad)
			}
			numericGradCheck(t, net.Params(), lossFn, computeGrads, 1e-5)
		})
	}
}

func TestReLUAndTanhGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	net := NewSequential(MSELoss{},
		NewDense(3, 4, rng),
		NewActivation(ReLU),
		NewDense(4, 4, rng),
		NewActivation(Tanh),
		NewDense(4, 1, rng),
	)
	x := vec.NewMatrix(5, 3)
	x.Randomize(rng, 1)
	y := vec.NewMatrix(5, 1)
	y.Randomize(rng, 1)
	lossFn := func() float64 {
		l, _ := net.Loss.Eval(net.Forward(x, false), y)
		return l
	}
	computeGrads := func() {
		_, grad := net.Loss.Eval(net.Forward(x, false), y)
		net.Backward(grad)
	}
	numericGradCheck(t, net.Params(), lossFn, computeGrads, 1e-5)
}

func TestMAELossValuesAndGrad(t *testing.T) {
	logits := vec.NewMatrixFrom([][]float64{{2}, {-1}})
	targets := vec.NewMatrixFrom([][]float64{{1}, {1}})
	l, g := MAELoss{}.Eval(logits, targets)
	if math.Abs(l-1.5) > 1e-12 {
		t.Fatalf("MAE = %v", l)
	}
	if g.At(0, 0) != 0.5 || g.At(1, 0) != -0.5 {
		t.Fatalf("MAE grad = %v", g)
	}
}

func TestBCELossExtremeLogitsStable(t *testing.T) {
	logits := vec.NewMatrixFrom([][]float64{{1000}, {-1000}})
	targets := vec.NewMatrixFrom([][]float64{{1}, {0}})
	l, g := BCELoss{}.Eval(logits, targets)
	if math.IsNaN(l) || math.IsInf(l, 0) {
		t.Fatalf("unstable BCE: %v", l)
	}
	if l > 1e-6 {
		t.Fatalf("perfect predictions should have ~0 loss: %v", l)
	}
	for i := 0; i < 2; i++ {
		if math.IsNaN(g.At(i, 0)) {
			t.Fatal("NaN grad")
		}
	}
}

func TestSoftmaxStability(t *testing.T) {
	p := Softmax([]float64{1000, 1000, 1000})
	for _, v := range p {
		if math.Abs(v-1.0/3) > 1e-9 {
			t.Fatalf("softmax = %v", p)
		}
	}
	p2 := Softmax([]float64{-1e9, 0, 0})
	if p2[0] > 1e-12 {
		t.Fatalf("softmax = %v", p2)
	}
}

func TestDropout(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := NewDropout(0.5, rng)
	x := vec.NewMatrix(10, 20)
	vec.Fill(x.Data, 1)
	out := d.Forward(x, true)
	zeros, twos := 0, 0
	for _, v := range out.Data {
		switch v {
		case 0:
			zeros++
		case 2:
			twos++
		default:
			t.Fatalf("unexpected dropout value %v", v)
		}
	}
	if zeros == 0 || twos == 0 {
		t.Fatal("dropout should zero some and scale others")
	}
	// Inference: identity.
	inf := d.Forward(x, false)
	if inf != x {
		t.Fatal("inference dropout should be identity")
	}
	// Backward mirrors the mask.
	d.Forward(x, true)
	g := vec.NewMatrix(10, 20)
	vec.Fill(g.Data, 1)
	dg := d.Backward(g)
	for i, v := range dg.Data {
		if v != 0 && v != 2 {
			t.Fatalf("grad[%d] = %v", i, v)
		}
	}
}

func TestDropoutRatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDropout(1.0, rand.New(rand.NewSource(1)))
}

func TestOptimizersReduceLoss(t *testing.T) {
	for _, optName := range []string{"sgd", "adam", "nadam"} {
		t.Run(optName, func(t *testing.T) {
			rng := rand.New(rand.NewSource(6))
			net := NewSequential(MSELoss{}, NewDense(2, 8, rng), NewActivation(Tanh), NewDense(8, 1, rng))
			// Learn XOR-ish continuous function.
			x := vec.NewMatrixFrom([][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}})
			y := vec.NewMatrixFrom([][]float64{{0}, {1}, {1}, {0}})
			opt, err := NewOptimizer(optName, 0.05)
			if err != nil {
				t.Fatal(err)
			}
			first := -1.0
			var last float64
			for i := 0; i < 300; i++ {
				logits := net.Forward(x, true)
				l, grad := net.Loss.Eval(logits, y)
				net.Backward(grad)
				opt.Step(net.Params())
				if first < 0 {
					first = l
				}
				last = l
			}
			if last >= first/2 {
				t.Fatalf("%s failed to learn: first=%v last=%v", optName, first, last)
			}
		})
	}
}

func TestSGDMomentum(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	net := NewSequential(MSELoss{}, NewDense(1, 1, rng))
	x := vec.NewMatrixFrom([][]float64{{1}})
	y := vec.NewMatrixFrom([][]float64{{3}})
	opt := NewSGD(0.1, 0.9)
	var last float64
	for i := 0; i < 100; i++ {
		logits := net.Forward(x, true)
		l, grad := net.Loss.Eval(logits, y)
		net.Backward(grad)
		opt.Step(net.Params())
		last = l
	}
	if last > 0.01 {
		t.Fatalf("momentum SGD did not converge: %v", last)
	}
}

func TestNewOptimizerUnknown(t *testing.T) {
	if _, err := NewOptimizer("quantum", 0.1); err == nil {
		t.Fatal("unknown optimizer accepted")
	}
	if o, err := NewOptimizer("", 0.1); err != nil || o.Name() != "nadam" {
		t.Fatal("empty name should default to nadam")
	}
}

func TestFitEarlyStoppingAndRestore(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	// Tiny separable dataset.
	n := 60
	x := vec.NewMatrix(n, 2)
	y := vec.NewMatrix(n, 1)
	for i := 0; i < n; i++ {
		cls := float64(i % 2)
		x.Set(i, 0, cls*2-1+rng.NormFloat64()*0.2)
		x.Set(i, 1, rng.NormFloat64()*0.2)
		y.Set(i, 0, cls)
	}
	net := NewSequential(BCELoss{}, NewDense(2, 8, rng), NewActivation(Sigmoid), NewDense(8, 1, rng))
	hist, err := Fit(net, x, y, TrainConfig{Epochs: 200, BatchSize: 8, Patience: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if hist.Epochs == 0 || len(hist.TrainLoss) != hist.Epochs {
		t.Fatalf("history inconsistent: %+v", hist)
	}
	if !hist.RestoredBest {
		t.Fatal("best model not restored")
	}
	if hist.BestValLoss > hist.ValLoss[0] {
		t.Fatal("validation loss never improved")
	}
	// Network should classify training data well.
	logits := net.Forward(x, false)
	correct := 0
	for i := 0; i < n; i++ {
		pred := 0.0
		if SigmoidScalar(logits.At(i, 0)) > 0.5 {
			pred = 1
		}
		if pred == y.At(i, 0) {
			correct++
		}
	}
	if float64(correct)/float64(n) < 0.9 {
		t.Fatalf("accuracy = %d/%d", correct, n)
	}
}

func TestFitErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	net := NewSequential(MSELoss{}, NewDense(2, 1, rng))
	x := vec.NewMatrix(3, 2)
	y := vec.NewMatrix(2, 1)
	if _, err := Fit(net, x, y, TrainConfig{}); err == nil {
		t.Fatal("row mismatch accepted")
	}
	y1 := vec.NewMatrix(1, 1)
	x1 := vec.NewMatrix(1, 2)
	if _, err := Fit(net, x1, y1, TrainConfig{}); err == nil {
		t.Fatal("single sample accepted")
	}
}

func TestFitDeterministic(t *testing.T) {
	mk := func() (*Sequential, *vec.Matrix, *vec.Matrix) {
		rng := rand.New(rand.NewSource(10))
		net := NewSequential(MSELoss{}, NewDense(2, 4, rng), NewActivation(Tanh), NewDense(4, 1, rng))
		x := vec.NewMatrix(20, 2)
		x.Randomize(rng, 1)
		y := vec.NewMatrix(20, 1)
		y.Randomize(rng, 1)
		return net, x, y
	}
	n1, x1, y1 := mk()
	n2, x2, y2 := mk()
	h1, err := Fit(n1, x1, y1, TrainConfig{Epochs: 20, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	h2, err := Fit(n2, x2, y2, TrainConfig{Epochs: 20, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if h1.FinalValLoss != h2.FinalValLoss {
		t.Fatalf("not deterministic: %v vs %v", h1.FinalValLoss, h2.FinalValLoss)
	}
}

func TestL2Shrinkage(t *testing.T) {
	// Train the same network with and without weight decay on the same
	// data without early stopping and compare final weight norms.
	mk := func(l2 float64) float64 {
		rng := rand.New(rand.NewSource(12))
		net := NewSequential(MSELoss{}, NewDense(2, 4, rng), NewDense(4, 1, rng))
		x := vec.NewMatrix(30, 2)
		x.Randomize(rng, 1)
		y := vec.NewMatrix(30, 1)
		y.Randomize(rng, 1)
		opt := NewSGD(0.05, 0)
		for i := 0; i < 200; i++ {
			logits := net.Forward(x, true)
			_, grad := net.Loss.Eval(logits, y)
			net.Backward(grad)
			if l2 > 0 {
				applyL2(net.Params(), l2)
			}
			opt.Step(net.Params())
		}
		var norm float64
		for _, p := range net.Params() {
			norm += vec.Dot(p.W.Data, p.W.Data)
		}
		return norm
	}
	with, without := mk(0.1), mk(0)
	if with >= without {
		t.Fatalf("L2 should shrink weights: with=%v without=%v", with, without)
	}
}

func TestNormalizeRows(t *testing.T) {
	x := vec.NewMatrixFrom([][]float64{{3, 4}, {0, 0}})
	NormalizeRows(x)
	if math.Abs(vec.Norm(x.Row(0))-1) > 1e-12 {
		t.Fatal("row not normalised")
	}
	if !vec.IsZero(x.Row(1)) {
		t.Fatal("zero row must stay zero")
	}
}

func TestActKindString(t *testing.T) {
	if Sigmoid.String() != "sigmoid" || ReLU.String() != "relu" || Tanh.String() != "tanh" {
		t.Fatal("ActKind strings wrong")
	}
	if ActKind(7).String() == "" {
		t.Fatal("unknown kind should render")
	}
}

func TestLSTMGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	lstm := NewLSTM(3, 4, rng)
	seq := vec.NewMatrix(5, 3)
	seq.Randomize(rng, 1)
	target := make([]float64, 4)
	for i := range target {
		target[i] = rng.NormFloat64()
	}
	// Loss: 0.5·||h_T − target||².
	lossFn := func() float64 {
		h := lstm.ForwardSeq(seq)
		var l float64
		for j := range h {
			d := h[j] - target[j]
			l += 0.5 * d * d
		}
		return l
	}
	computeGrads := func() {
		h := lstm.ForwardSeq(seq)
		dh := make([]float64, len(h))
		for j := range h {
			dh[j] = h[j] - target[j]
		}
		lstm.BackwardSeq(dh)
	}
	numericGradCheck(t, lstm.Params(), lossFn, computeGrads, 1e-4)
}

func TestLSTMLearnsSequenceSum(t *testing.T) {
	// Task: predict whether a ±1 sequence has positive sum — requires
	// integrating over time.
	rng := rand.New(rand.NewSource(14))
	lstm := NewLSTM(1, 6, rng)
	readout := NewDense(6, 1, rng)
	opt := NewNadam(0.01)
	params := append(lstm.Params(), readout.Params()...)

	sample := func() (*vec.Matrix, float64) {
		T := 4 + rng.Intn(4)
		seq := vec.NewMatrix(T, 1)
		sum := 0.0
		for t := 0; t < T; t++ {
			v := float64(rng.Intn(2)*2 - 1)
			seq.Set(t, 0, v)
			sum += v
		}
		label := 0.0
		if sum > 0 {
			label = 1
		}
		return seq, label
	}
	loss := BCELoss{}
	var runningLoss float64
	var count int
	for step := 0; step < 3000; step++ {
		seq, label := sample()
		h := lstm.ForwardSeq(seq)
		hm := vec.NewMatrixFrom([][]float64{h})
		logits := readout.Forward(hm, true)
		y := vec.NewMatrixFrom([][]float64{{label}})
		l, grad := loss.Eval(logits, y)
		dh := readout.Backward(grad)
		lstm.BackwardSeq(dh.Row(0))
		opt.Step(params)
		if step >= 2800 {
			runningLoss += l
			count++
		}
	}
	if avg := runningLoss / float64(count); avg > 0.45 {
		t.Fatalf("LSTM failed to learn sequence sum: avg loss %v", avg)
	}
}

func TestLSTMInputDimPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	lstm := NewLSTM(2, 3, rng)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	lstm.ForwardSeq(vec.NewMatrix(4, 5))
}
