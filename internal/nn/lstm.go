package nn

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/retrodb/retro/internal/vec"
)

// LSTM is a single-layer LSTM encoder: it consumes a sequence of input
// vectors and exposes the final hidden state. The DataWig baseline (§5.4)
// encodes character n-gram sequences with it. Full backpropagation
// through time is implemented.
//
// Unlike the batch Layer interface, LSTM processes one sequence at a time
// (batch size 1), which is all the imputation baseline needs.
type LSTM struct {
	In, Hidden int

	// Gate parameters, stacked [input, forget, cell, output].
	wx *Param // 4H x In
	wh *Param // 4H x Hidden
	b  *Param // 1 x 4H

	// Caches for backprop through time.
	xs     []*vec.Matrix // inputs per step (1 x In)
	hs, cs [][]float64   // hidden/cell states per step (index 0 = initial zeros)
	gates  [][]float64   // post-activation gate values per step (4H)
}

// NewLSTM builds an LSTM with Glorot-initialised weights and a forget-gate
// bias of 1 (the standard trick for gradient flow).
func NewLSTM(in, hidden int, rng *rand.Rand) *LSTM {
	l := &LSTM{
		In: in, Hidden: hidden,
		wx: newParam("lstm.wx", 4*hidden, in),
		wh: newParam("lstm.wh", 4*hidden, hidden),
		b:  newParam("lstm.b", 1, 4*hidden),
	}
	l.wx.W.Randomize(rng, glorot(in, hidden))
	l.wh.W.Randomize(rng, glorot(hidden, hidden))
	for j := hidden; j < 2*hidden; j++ {
		l.b.W.Set(0, j, 1) // forget gate bias
	}
	return l
}

func glorot(in, out int) float64 {
	return math.Sqrt(6 / float64(in+out))
}

// ForwardSeq consumes a sequence (rows = time steps) and returns the final
// hidden state. It caches everything BackwardSeq needs.
func (l *LSTM) ForwardSeq(seq *vec.Matrix) []float64 {
	if seq.Cols != l.In {
		panic(fmt.Sprintf("nn: LSTM expected %d inputs, got %d", l.In, seq.Cols))
	}
	T := seq.Rows
	H := l.Hidden
	l.xs = make([]*vec.Matrix, T)
	l.hs = make([][]float64, T+1)
	l.cs = make([][]float64, T+1)
	l.gates = make([][]float64, T)
	l.hs[0] = make([]float64, H)
	l.cs[0] = make([]float64, H)

	pre := make([]float64, 4*H)
	for t := 0; t < T; t++ {
		x := seq.SubRows(t, t+1)
		l.xs[t] = x.Clone()
		// pre = Wx·x + Wh·h + b
		l.wx.W.MulVec(pre, x.Row(0))
		whh := make([]float64, 4*H)
		l.wh.W.MulVec(whh, l.hs[t])
		vec.Axpy(pre, 1, whh)
		vec.Axpy(pre, 1, l.b.W.Row(0))

		g := make([]float64, 4*H)
		h := make([]float64, H)
		c := make([]float64, H)
		for j := 0; j < H; j++ {
			i := sigmoid(pre[j])
			f := sigmoid(pre[H+j])
			cb := tanh(pre[2*H+j])
			o := sigmoid(pre[3*H+j])
			g[j], g[H+j], g[2*H+j], g[3*H+j] = i, f, cb, o
			c[j] = f*l.cs[t][j] + i*cb
			h[j] = o * tanh(c[j])
		}
		l.gates[t] = g
		l.cs[t+1] = c
		l.hs[t+1] = h
	}
	return l.hs[T]
}

// BackwardSeq propagates the gradient of the final hidden state back
// through time, accumulating parameter gradients. It returns nothing: the
// encoder sits at the bottom of the imputation network, so input
// gradients are not needed.
func (l *LSTM) BackwardSeq(dhFinal []float64) {
	T := len(l.xs)
	H := l.Hidden
	dh := vec.Clone(dhFinal)
	dc := make([]float64, H)
	dPre := make([]float64, 4*H)

	for t := T - 1; t >= 0; t-- {
		g := l.gates[t]
		c := l.cs[t+1]
		cPrev := l.cs[t]
		for j := 0; j < H; j++ {
			i, f, cb, o := g[j], g[H+j], g[2*H+j], g[3*H+j]
			tc := tanh(c[j])
			do := dh[j] * tc
			dcj := dc[j] + dh[j]*o*(1-tc*tc)
			di := dcj * cb
			df := dcj * cPrev[j]
			dcb := dcj * i
			dc[j] = dcj * f // carried to t-1
			dPre[j] = di * i * (1 - i)
			dPre[H+j] = df * f * (1 - f)
			dPre[2*H+j] = dcb * (1 - cb*cb)
			dPre[3*H+j] = do * o * (1 - o)
		}
		// Accumulate dWx += dPre ⊗ x, dWh += dPre ⊗ h_{t-1}, db += dPre.
		x := l.xs[t].Row(0)
		hPrev := l.hs[t]
		for r := 0; r < 4*H; r++ {
			if dPre[r] == 0 {
				continue
			}
			vec.Axpy(l.wx.Grad.Row(r), dPre[r], x)
			vec.Axpy(l.wh.Grad.Row(r), dPre[r], hPrev)
			l.b.Grad.Row(0)[r] += dPre[r]
		}
		// dh_{t-1} = Whᵀ·dPre.
		l.wh.W.MulVecT(dh, dPre)
	}
}

// Params returns the LSTM's trainable tensors.
func (l *LSTM) Params() []*Param { return []*Param{l.wx, l.wh, l.b} }

func tanh(x float64) float64 { return math.Tanh(x) }
