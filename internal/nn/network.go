package nn

import (
	"fmt"
	"math/rand"

	"github.com/retrodb/retro/internal/vec"
)

// Sequential chains layers; the final layer's output is treated as logits
// by the attached loss.
type Sequential struct {
	Layers []Layer
	Loss   Loss
}

// NewSequential builds a network.
func NewSequential(loss Loss, layers ...Layer) *Sequential {
	return &Sequential{Layers: layers, Loss: loss}
}

// Forward runs the full stack.
func (s *Sequential) Forward(x *vec.Matrix, train bool) *vec.Matrix {
	for _, l := range s.Layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward propagates dL/dLogits through the stack.
func (s *Sequential) Backward(grad *vec.Matrix) {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		grad = s.Layers[i].Backward(grad)
	}
}

// Params collects all trainable parameters.
func (s *Sequential) Params() []*Param {
	var out []*Param
	for _, l := range s.Layers {
		out = append(out, l.Params()...)
	}
	return out
}

// TrainConfig mirrors the paper's training protocol (§5.5): mini-batch
// training with Nadam, a 10% validation split, early stopping with
// 50-epoch patience keeping the best model, and optional L2 weight decay.
type TrainConfig struct {
	Epochs      int     // hard cap (default 500)
	BatchSize   int     // default 32
	Patience    int     // epochs without val improvement (default 50)
	ValFraction float64 // validation split (default 0.1)
	L2          float64 // weight decay coefficient (default 0)
	Optimizer   Optimizer
	Seed        int64
}

func (c TrainConfig) withDefaults() TrainConfig {
	if c.Epochs <= 0 {
		c.Epochs = 500
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 32
	}
	if c.Patience <= 0 {
		c.Patience = 50
	}
	if c.ValFraction <= 0 || c.ValFraction >= 1 {
		c.ValFraction = 0.1
	}
	if c.Optimizer == nil {
		c.Optimizer = NewNadam(0.002)
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// History records a training run.
type History struct {
	Epochs        int
	TrainLoss     []float64
	ValLoss       []float64
	BestEpoch     int
	BestValLoss   float64
	StoppedEarly  bool
	RestoredBest  bool
	FinalValLoss  float64
	SamplesTrain  int
	SamplesVal    int
	BatchesPerRun int
}

// Fit trains the network on (x, y) with early stopping. It is
// deterministic for a fixed seed.
func Fit(net *Sequential, x, y *vec.Matrix, cfg TrainConfig) (*History, error) {
	cfg = cfg.withDefaults()
	if x.Rows != y.Rows {
		return nil, fmt.Errorf("nn: %d samples vs %d targets", x.Rows, y.Rows)
	}
	if x.Rows < 2 {
		return nil, fmt.Errorf("nn: need at least 2 samples, got %d", x.Rows)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Shuffled split into train/validation.
	perm := rng.Perm(x.Rows)
	nVal := int(float64(x.Rows) * cfg.ValFraction)
	if nVal < 1 {
		nVal = 1
	}
	nTrain := x.Rows - nVal
	trainX, trainY := gatherRows(x, y, perm[:nTrain])
	valX, valY := gatherRows(x, y, perm[nTrain:])

	hist := &History{SamplesTrain: nTrain, SamplesVal: nVal, BestValLoss: inf()}
	var best [][]float64

	order := make([]int, nTrain)
	for i := range order {
		order[i] = i
	}
	badEpochs := 0
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(nTrain, func(i, j int) { order[i], order[j] = order[j], order[i] })
		var epochLoss float64
		batches := 0
		for start := 0; start < nTrain; start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > nTrain {
				end = nTrain
			}
			bx, by := gatherRows(trainX, trainY, order[start:end])
			logits := net.Forward(bx, true)
			loss, grad := net.Loss.Eval(logits, by)
			net.Backward(grad)
			if cfg.L2 > 0 {
				applyL2(net.Params(), cfg.L2)
			}
			cfg.Optimizer.Step(net.Params())
			epochLoss += loss
			batches++
		}
		hist.TrainLoss = append(hist.TrainLoss, epochLoss/float64(batches))
		hist.BatchesPerRun = batches

		valLogits := net.Forward(valX, false)
		valLoss, _ := net.Loss.Eval(valLogits, valY)
		hist.ValLoss = append(hist.ValLoss, valLoss)
		hist.Epochs = epoch + 1

		if valLoss < hist.BestValLoss {
			hist.BestValLoss = valLoss
			hist.BestEpoch = epoch
			best = snapshot(net.Params())
			badEpochs = 0
		} else {
			badEpochs++
			if badEpochs >= cfg.Patience {
				hist.StoppedEarly = true
				break
			}
		}
	}
	if best != nil {
		restore(net.Params(), best)
		hist.RestoredBest = true
	}
	valLogits := net.Forward(valX, false)
	hist.FinalValLoss, _ = net.Loss.Eval(valLogits, valY)
	return hist, nil
}

func inf() float64 { return 1e308 }

// applyL2 adds λ·W to the gradients (weight decay); biases included, which
// matches simple Keras-style kernel+bias regularisation closely enough.
func applyL2(params []*Param, lambda float64) {
	for _, p := range params {
		for i := range p.Grad.Data {
			p.Grad.Data[i] += lambda * p.W.Data[i]
		}
	}
}

func snapshot(params []*Param) [][]float64 {
	out := make([][]float64, len(params))
	for i, p := range params {
		out[i] = vec.Clone(p.W.Data)
	}
	return out
}

func restore(params []*Param, snap [][]float64) {
	for i, p := range params {
		copy(p.W.Data, snap[i])
	}
}

// gatherRows copies the selected rows of x and y into fresh matrices.
func gatherRows(x, y *vec.Matrix, idx []int) (*vec.Matrix, *vec.Matrix) {
	gx := vec.NewMatrix(len(idx), x.Cols)
	gy := vec.NewMatrix(len(idx), y.Cols)
	for i, r := range idx {
		copy(gx.Row(i), x.Row(r))
		copy(gy.Row(i), y.Row(r))
	}
	return gx, gy
}

// NormalizeRows scales every row of x to unit L2 norm in place (the input
// normalisation of §5.5); zero rows stay zero.
func NormalizeRows(x *vec.Matrix) {
	for i := 0; i < x.Rows; i++ {
		vec.Normalize(x.Row(i))
	}
}
