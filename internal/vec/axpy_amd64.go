//go:build amd64

package vec

import "github.com/retrodb/retro/internal/cpu"

// Elementwise float64 kernels in axpy_amd64.s, routed through the same
// runtime dispatch as dot. All three vectorise the identical independent
// per-element operation — multiply-then-add, never fused — so every
// dispatch level is bit-identical to the scalar kernel (a contract the
// elementwise tests assert, unlike the reassociating reductions).

//go:noescape
func axpyBlocksAVX2(dst, x *float64, alpha float64, blocks int)

//go:noescape
func scaleBlocksAVX2(a *float64, alpha float64, blocks int)

//go:noescape
func addBlocksAVX2(dst, a, b *float64, blocks int)

func axpy(dst []float64, alpha float64, x []float64) {
	if cpu.Active() < cpu.AVX2 {
		axpyGeneric(dst, alpha, x)
		return
	}
	n := len(dst)
	if blocks := n / 8; blocks > 0 {
		axpyBlocksAVX2(&dst[0], &x[0], alpha, blocks)
	}
	for i := n &^ 7; i < n; i++ {
		dst[i] += alpha * x[i]
	}
}

func scale(a []float64, alpha float64) {
	if cpu.Active() < cpu.AVX2 {
		scaleGeneric(a, alpha)
		return
	}
	n := len(a)
	if blocks := n / 8; blocks > 0 {
		scaleBlocksAVX2(&a[0], alpha, blocks)
	}
	for i := n &^ 7; i < n; i++ {
		a[i] *= alpha
	}
}

func add(dst, a, b []float64) {
	if cpu.Active() < cpu.AVX2 {
		addGeneric(dst, a, b)
		return
	}
	n := len(dst)
	if blocks := n / 8; blocks > 0 {
		addBlocksAVX2(&dst[0], &a[0], &b[0], blocks)
	}
	for i := n &^ 7; i < n; i++ {
		dst[i] = a[i] + b[i]
	}
}
