package vec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestDot(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, -5, 6}
	if got := Dot(a, b); got != 12 {
		t.Fatalf("Dot = %v, want 12", got)
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestNorm(t *testing.T) {
	if got := Norm([]float64{3, 4}); got != 5 {
		t.Fatalf("Norm = %v, want 5", got)
	}
	if got := Norm(nil); got != 0 {
		t.Fatalf("Norm(nil) = %v, want 0", got)
	}
}

func TestSquaredDistance(t *testing.T) {
	a := []float64{1, 2}
	b := []float64{4, 6}
	if got := SquaredDistance(a, b); got != 25 {
		t.Fatalf("SquaredDistance = %v, want 25", got)
	}
	if got := SquaredDistance(a, a); got != 0 {
		t.Fatalf("SquaredDistance(a,a) = %v, want 0", got)
	}
}

func TestCosine(t *testing.T) {
	a := []float64{1, 0}
	b := []float64{0, 1}
	if got := Cosine(a, b); got != 0 {
		t.Fatalf("orthogonal cosine = %v, want 0", got)
	}
	if got := Cosine(a, a); !almostEqual(got, 1, 1e-12) {
		t.Fatalf("self cosine = %v, want 1", got)
	}
	if got := Cosine(a, []float64{0, 0}); got != 0 {
		t.Fatalf("zero-vector cosine = %v, want 0 by convention", got)
	}
}

func TestAxpyScaleAddSub(t *testing.T) {
	dst := []float64{1, 1}
	Axpy(dst, 2, []float64{3, 4})
	if dst[0] != 7 || dst[1] != 9 {
		t.Fatalf("Axpy = %v", dst)
	}
	Scale(dst, 0.5)
	if dst[0] != 3.5 || dst[1] != 4.5 {
		t.Fatalf("Scale = %v", dst)
	}
	out := make([]float64, 2)
	Add(out, []float64{1, 2}, []float64{3, 4})
	if out[0] != 4 || out[1] != 6 {
		t.Fatalf("Add = %v", out)
	}
	Sub(out, []float64{1, 2}, []float64{3, 4})
	if out[0] != -2 || out[1] != -2 {
		t.Fatalf("Sub = %v", out)
	}
}

func TestAxpyAlphaOneFastPath(t *testing.T) {
	dst := []float64{1, 2}
	Axpy(dst, 1, []float64{10, 20})
	if dst[0] != 11 || dst[1] != 22 {
		t.Fatalf("Axpy alpha=1 = %v", dst)
	}
}

func TestNormalize(t *testing.T) {
	a := []float64{3, 4}
	n := Normalize(a)
	if n != 5 {
		t.Fatalf("returned norm = %v, want 5", n)
	}
	if !almostEqual(Norm(a), 1, 1e-12) {
		t.Fatalf("norm after Normalize = %v", Norm(a))
	}
	z := []float64{0, 0}
	if n := Normalize(z); n != 0 || z[0] != 0 {
		t.Fatalf("Normalize(zero) changed vector or returned %v", n)
	}
}

func TestCentroid(t *testing.T) {
	dst := make([]float64, 2)
	Centroid(dst, []float64{0, 0}, []float64{2, 4})
	if dst[0] != 1 || dst[1] != 2 {
		t.Fatalf("Centroid = %v", dst)
	}
}

func TestCentroidEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Centroid(make([]float64, 2))
}

func TestIsZeroCloneFill(t *testing.T) {
	if !IsZero([]float64{0, 0}) || IsZero([]float64{0, 1e-300}) {
		t.Fatal("IsZero misbehaves")
	}
	a := []float64{1, 2}
	b := Clone(a)
	b[0] = 9
	if a[0] != 1 {
		t.Fatal("Clone did not copy")
	}
	Fill(a, 7)
	if a[0] != 7 || a[1] != 7 {
		t.Fatalf("Fill = %v", a)
	}
}

func TestArgMax(t *testing.T) {
	if got := ArgMax([]float64{1, 5, 3, 5}); got != 1 {
		t.Fatalf("ArgMax = %d, want 1 (first of ties)", got)
	}
	if got := ArgMax(nil); got != -1 {
		t.Fatalf("ArgMax(nil) = %d, want -1", got)
	}
}

func TestSumMeanStdDev(t *testing.T) {
	a := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Sum(a); got != 40 {
		t.Fatalf("Sum = %v", got)
	}
	if got := Mean(a); got != 5 {
		t.Fatalf("Mean = %v", got)
	}
	if got := StdDev(a); !almostEqual(got, 2, 1e-12) {
		t.Fatalf("StdDev = %v, want 2", got)
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 {
		t.Fatal("empty Mean/StdDev should be 0")
	}
}

// Property: Cauchy-Schwarz, |<a,b>| <= ||a||*||b||.
func TestPropertyCauchySchwarz(t *testing.T) {
	f := func(a, b [8]float64) bool {
		av, bv := a[:], b[:]
		for i := range av {
			av[i] = clampFinite(av[i])
			bv[i] = clampFinite(bv[i])
		}
		lhs := math.Abs(Dot(av, bv))
		rhs := Norm(av) * Norm(bv)
		return lhs <= rhs*(1+1e-9)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: triangle inequality for Euclidean distance derived from
// SquaredDistance.
func TestPropertyTriangleInequality(t *testing.T) {
	f := func(a, b, c [6]float64) bool {
		av, bv, cv := a[:], b[:], c[:]
		for i := range av {
			av[i] = clampFinite(av[i])
			bv[i] = clampFinite(bv[i])
			cv[i] = clampFinite(cv[i])
		}
		dab := math.Sqrt(SquaredDistance(av, bv))
		dbc := math.Sqrt(SquaredDistance(bv, cv))
		dac := math.Sqrt(SquaredDistance(av, cv))
		return dac <= dab+dbc+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Normalize yields unit norm for non-zero vectors.
func TestPropertyNormalizeUnit(t *testing.T) {
	f := func(a [5]float64) bool {
		av := Clone(a[:])
		for i := range av {
			av[i] = clampFinite(av[i])
		}
		if IsZero(av) {
			return true
		}
		n := Normalize(av)
		if n == 0 {
			// Possible underflow of tiny components; accept.
			return true
		}
		return almostEqual(Norm(av), 1, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// clampFinite maps NaN/Inf/huge quick-generated values into a sane range so
// properties test math, not float overflow.
func clampFinite(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Mod(v, 1e6)
}

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(0, 1, 5)
	if m.At(0, 1) != 5 {
		t.Fatal("Set/At roundtrip failed")
	}
	if len(m.Row(1)) != 3 {
		t.Fatal("Row length wrong")
	}
	r := m.Row(0)
	r[2] = 7
	if m.At(0, 2) != 7 {
		t.Fatal("Row is not a view")
	}
}

func TestNewMatrixFrom(t *testing.T) {
	m := NewMatrixFrom([][]float64{{1, 2}, {3, 4}})
	if m.At(1, 0) != 3 {
		t.Fatal("NewMatrixFrom content wrong")
	}
	empty := NewMatrixFrom(nil)
	if empty.Rows != 0 {
		t.Fatal("empty NewMatrixFrom should have 0 rows")
	}
}

func TestNewMatrixFromRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on ragged input")
		}
	}()
	NewMatrixFrom([][]float64{{1, 2}, {3}})
}

func TestMatrixCloneCopyFrom(t *testing.T) {
	m := NewMatrixFrom([][]float64{{1, 2}, {3, 4}})
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone shares storage")
	}
	m2 := NewMatrix(2, 2)
	m2.CopyFrom(m)
	if !m2.Equal(m, 0) {
		t.Fatal("CopyFrom mismatch")
	}
}

func TestSubRowsView(t *testing.T) {
	m := NewMatrixFrom([][]float64{{1, 2}, {3, 4}, {5, 6}})
	v := m.SubRows(1, 3)
	if v.Rows != 2 || v.At(0, 0) != 3 || v.At(1, 1) != 6 {
		t.Fatalf("SubRows content wrong: %v", v)
	}
	v.Set(0, 0, 99)
	if m.At(1, 0) != 99 {
		t.Fatal("SubRows should share storage")
	}
}

func TestMatrixMul(t *testing.T) {
	a := NewMatrixFrom([][]float64{{1, 2}, {3, 4}})
	b := NewMatrixFrom([][]float64{{5, 6}, {7, 8}})
	dst := NewMatrix(2, 2)
	a.Mul(dst, b)
	want := NewMatrixFrom([][]float64{{19, 22}, {43, 50}})
	if !dst.Equal(want, 1e-12) {
		t.Fatalf("Mul = %v, want %v", dst, want)
	}
}

func TestMatrixMulVec(t *testing.T) {
	a := NewMatrixFrom([][]float64{{1, 2}, {3, 4}})
	dst := make([]float64, 2)
	a.MulVec(dst, []float64{1, 1})
	if dst[0] != 3 || dst[1] != 7 {
		t.Fatalf("MulVec = %v", dst)
	}
	dstT := make([]float64, 2)
	a.MulVecT(dstT, []float64{1, 1})
	if dstT[0] != 4 || dstT[1] != 6 {
		t.Fatalf("MulVecT = %v", dstT)
	}
}

func TestMatrixTranspose(t *testing.T) {
	a := NewMatrixFrom([][]float64{{1, 2, 3}, {4, 5, 6}})
	at := a.T()
	if at.Rows != 3 || at.Cols != 2 || at.At(2, 1) != 6 {
		t.Fatalf("T = %v", at)
	}
}

func TestRowSquaredNormsAndScaleRows(t *testing.T) {
	m := NewMatrixFrom([][]float64{{3, 4}, {1, 0}})
	norms := make([]float64, 2)
	m.RowSquaredNorms(norms)
	if norms[0] != 25 || norms[1] != 1 {
		t.Fatalf("RowSquaredNorms = %v", norms)
	}
	m.ScaleRows([]float64{2, 3})
	if m.At(0, 0) != 6 || m.At(1, 0) != 3 {
		t.Fatalf("ScaleRows = %v", m)
	}
}

func TestAddScaled(t *testing.T) {
	m := NewMatrixFrom([][]float64{{1, 1}})
	o := NewMatrixFrom([][]float64{{2, 3}})
	m.AddScaled(2, o)
	if m.At(0, 0) != 5 || m.At(0, 1) != 7 {
		t.Fatalf("AddScaled = %v", m)
	}
}

func TestMatrixRandomizeDeterministic(t *testing.T) {
	m1 := NewMatrix(3, 3)
	m2 := NewMatrix(3, 3)
	m1.Randomize(rand.New(rand.NewSource(42)), 0.5)
	m2.Randomize(rand.New(rand.NewSource(42)), 0.5)
	if !m1.Equal(m2, 0) {
		t.Fatal("Randomize not deterministic under fixed seed")
	}
	for _, v := range m1.Data {
		if v < -0.5 || v >= 0.5 {
			t.Fatalf("Randomize out of range: %v", v)
		}
	}
}

// Property: (A*B)^T == B^T * A^T.
func TestPropertyMulTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		r, k, c := 1+rng.Intn(5), 1+rng.Intn(5), 1+rng.Intn(5)
		a := NewMatrix(r, k)
		b := NewMatrix(k, c)
		a.Randomize(rng, 1)
		b.Randomize(rng, 1)
		ab := NewMatrix(r, c)
		a.Mul(ab, b)
		lhs := ab.T()
		rhs := NewMatrix(c, r)
		b.T().Mul(rhs, a.T())
		if !lhs.Equal(rhs, 1e-9) {
			t.Fatalf("trial %d: (AB)^T != B^T A^T", trial)
		}
	}
}

func TestMatrixString(t *testing.T) {
	small := NewMatrixFrom([][]float64{{1}})
	if small.String() == "" {
		t.Fatal("String empty")
	}
	big := NewMatrix(100, 100)
	if big.String() != "Matrix(100x100)" {
		t.Fatalf("big String = %q", big.String())
	}
}

// --- Unrolled-kernel parity --------------------------------------------------

// naiveDot is the pre-unroll reference; the 4-accumulator kernel may
// differ from it only by re-association rounding.
func naiveDot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func randVec(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

// TestUnrolledKernelsMatchNaive sweeps every residual length class of the
// 4-wide loops (n mod 4 = 0..3, plus tiny and empty inputs) and checks the
// unrolled kernels against straightforward scalar references.
func TestUnrolledKernelsMatchNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 8, 31, 32, 33, 300} {
		a, b := randVec(rng, n), randVec(rng, n)
		tol := 1e-12 * float64(n+1)

		if got, want := Dot(a, b), naiveDot(a, b); !almostEqual(got, want, tol) {
			t.Fatalf("n=%d: Dot = %v, naive = %v", n, got, want)
		}

		var wantSq float64
		for i := range a {
			d := a[i] - b[i]
			wantSq += d * d
		}
		if got := SquaredDistance(a, b); !almostEqual(got, wantSq, tol) {
			t.Fatalf("n=%d: SquaredDistance = %v, naive = %v", n, got, wantSq)
		}

		dst, ref := Clone(a), Clone(a)
		Axpy(dst, 1.5, b)
		for i := range ref {
			ref[i] += 1.5 * b[i]
		}
		for i := range dst {
			if dst[i] != ref[i] {
				t.Fatalf("n=%d: Axpy[%d] = %v, want %v (elementwise op must be bit-exact)", n, i, dst[i], ref[i])
			}
		}
		dst, ref = Clone(a), Clone(a)
		Axpy(dst, 1, b)
		for i := range ref {
			ref[i] += b[i]
		}
		for i := range dst {
			if dst[i] != ref[i] {
				t.Fatalf("n=%d: Axpy(alpha=1)[%d] = %v, want %v", n, i, dst[i], ref[i])
			}
		}

		if n > 0 {
			na, nb := Norm(a), Norm(b)
			if na != 0 && nb != 0 {
				want := naiveDot(a, b) / (na * nb)
				if got := Cosine(a, b); !almostEqual(got, want, 1e-9) {
					t.Fatalf("n=%d: fused Cosine = %v, three-pass = %v", n, got, want)
				}
			}
		}
	}
}
