//go:build !amd64

package vec

func dot(a, b []float64) float64 { return dotGeneric(a, b) }
