package vec

import (
	"math"
	"math/rand"
	"testing"

	"github.com/retrodb/retro/internal/cpu"
)

// TestDotKernelParity compares the dispatched Dot against dotGeneric at
// every level this CPU supports. Float64 kernels re-associate the sum
// (and FMA skips an intermediate rounding), so parity is to relative
// tolerance rather than bit-exact — unlike the int8 kernels.
func TestDotKernelParity(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	orig := cpu.Active()
	defer cpu.SetLevel(orig)
	lengths := []int{0, 1, 3, 7, 8, 9, 15, 16, 17, 63, 64, 65, 300, 301}
	for _, l := range []cpu.Level{cpu.Scalar, cpu.SSE2, cpu.AVX2} {
		if l > cpu.Detected() {
			continue
		}
		cpu.SetLevel(l)
		t.Run(l.String(), func(t *testing.T) {
			for _, n := range lengths {
				a := make([]float64, n)
				b := make([]float64, n)
				for i := range a {
					a[i] = rng.NormFloat64()
					b[i] = rng.NormFloat64()
				}
				got := Dot(a, b)
				want := dotGeneric(a, b)
				// Scale the tolerance by the magnitude of the terms, not the
				// result: a near-cancelling sum legitimately loses relative
				// precision in any association order.
				var mag float64
				for i := range a {
					mag += math.Abs(a[i] * b[i])
				}
				if diff := math.Abs(got - want); diff > 1e-12*(1+mag) {
					t.Fatalf("level %v n=%d: Dot=%g generic=%g diff=%g", cpu.Active(), n, got, want, diff)
				}
			}
		})
	}
	cpu.SetLevel(orig)
}

// TestDotKernelDeterministic: the dispatched kernel must be a pure
// function — same inputs, same bits — since TopKMany's parity with
// looped TopK depends on score stability within a process.
func TestDotKernelDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	a := make([]float64, 301)
	b := make([]float64, 301)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64()
	}
	first := Dot(a, b)
	for i := 0; i < 100; i++ {
		if got := Dot(a, b); got != first {
			t.Fatalf("run %d: Dot returned %v then %v", i, first, got)
		}
	}
}

func BenchmarkDotKernel(b *testing.B) {
	rng := rand.New(rand.NewSource(29))
	const dim = 300
	x := make([]float64, dim)
	y := make([]float64, dim)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = rng.NormFloat64()
	}
	orig := cpu.Active()
	defer cpu.SetLevel(orig)
	for _, l := range []cpu.Level{cpu.Scalar, cpu.AVX2} {
		if l > cpu.Detected() {
			continue
		}
		cpu.SetLevel(l)
		name := "generic"
		if cpu.HasFMA() {
			name = "fma"
		}
		b.Run(name, func(b *testing.B) {
			var s float64
			for i := 0; i < b.N; i++ {
				s += Dot(x, y)
			}
			sinkF = s
		})
	}
	cpu.SetLevel(orig)
}

var sinkF float64
