//go:build amd64

#include "textflag.h"

// func dot32BlocksFMA(a, b *float32, blocks int) float64
//
// Sums a[i]*b[i] over blocks*8 float32 elements. Each 4-lane float32
// quarter-block is widened to float64 in registers (VCVTPS2PD) and fused
// into one of two independent float64 accumulators (Y6, Y7) — the loads
// move half the bytes of the float64 kernel while the arithmetic keeps
// float64 accuracy. The pairwise horizontal reduction fixes the
// summation order, so the result is deterministic.
TEXT ·dot32BlocksFMA(SB), NOSPLIT, $0-32
	MOVQ   a+0(FP), SI
	MOVQ   b+8(FP), DI
	MOVQ   blocks+16(FP), CX
	VXORPD Y6, Y6, Y6
	VXORPD Y7, Y7, Y7

loop:
	VCVTPS2PD   (SI), Y0
	VCVTPS2PD   (DI), Y2
	VFMADD231PD Y2, Y0, Y6
	VCVTPS2PD   16(SI), Y1
	VCVTPS2PD   16(DI), Y3
	VFMADD231PD Y3, Y1, Y7
	ADDQ        $32, SI
	ADDQ        $32, DI
	DECQ        CX
	JNZ         loop

	VADDPD       Y7, Y6, Y6
	VEXTRACTF128 $1, Y6, X0
	VADDPD       X0, X6, X6
	VPERMILPD    $1, X6, X0
	VADDSD       X0, X6, X6
	VZEROUPPER
	MOVSD        X6, ret+24(FP)
	RET

// func sqdist32BlocksFMA(a, b *float32, blocks int) float64
//
// Sums (a[i]-b[i])^2 over blocks*8 float32 elements: widen both sides,
// subtract in float64, square-accumulate with FMA.
TEXT ·sqdist32BlocksFMA(SB), NOSPLIT, $0-32
	MOVQ   a+0(FP), SI
	MOVQ   b+8(FP), DI
	MOVQ   blocks+16(FP), CX
	VXORPD Y6, Y6, Y6
	VXORPD Y7, Y7, Y7

loop:
	VCVTPS2PD   (SI), Y0
	VCVTPS2PD   (DI), Y2
	VSUBPD      Y2, Y0, Y0
	VFMADD231PD Y0, Y0, Y6
	VCVTPS2PD   16(SI), Y1
	VCVTPS2PD   16(DI), Y3
	VSUBPD      Y3, Y1, Y1
	VFMADD231PD Y1, Y1, Y7
	ADDQ        $32, SI
	ADDQ        $32, DI
	DECQ        CX
	JNZ         loop

	VADDPD       Y7, Y6, Y6
	VEXTRACTF128 $1, Y6, X0
	VADDPD       X0, X6, X6
	VPERMILPD    $1, X6, X0
	VADDSD       X0, X6, X6
	VZEROUPPER
	MOVSD        X6, ret+24(FP)
	RET

// func cosine32BlocksFMA(a, b *float32, blocks int, sums *[3]float64)
//
// One fused pass accumulating dot(a,b), ||a||^2 and ||b||^2 over
// blocks*8 float32 elements into sums[0..2]. Three independent
// accumulator pairs (dot: Y6/Y7, na: Y8/Y9, nb: Y10/Y11); a and b are
// each read exactly once.
TEXT ·cosine32BlocksFMA(SB), NOSPLIT, $0-32
	MOVQ   a+0(FP), SI
	MOVQ   b+8(FP), DI
	MOVQ   blocks+16(FP), CX
	MOVQ   sums+24(FP), R8
	VXORPD Y6, Y6, Y6
	VXORPD Y7, Y7, Y7
	VXORPD Y8, Y8, Y8
	VXORPD Y9, Y9, Y9
	VXORPD Y10, Y10, Y10
	VXORPD Y11, Y11, Y11

loop:
	VCVTPS2PD   (SI), Y0
	VCVTPS2PD   (DI), Y1
	VFMADD231PD Y1, Y0, Y6
	VFMADD231PD Y0, Y0, Y8
	VFMADD231PD Y1, Y1, Y10
	VCVTPS2PD   16(SI), Y2
	VCVTPS2PD   16(DI), Y3
	VFMADD231PD Y3, Y2, Y7
	VFMADD231PD Y2, Y2, Y9
	VFMADD231PD Y3, Y3, Y11
	ADDQ        $32, SI
	ADDQ        $32, DI
	DECQ        CX
	JNZ         loop

	VADDPD       Y7, Y6, Y6
	VEXTRACTF128 $1, Y6, X0
	VADDPD       X0, X6, X6
	VPERMILPD    $1, X6, X0
	VADDSD       X0, X6, X6
	MOVSD        X6, (R8)

	VADDPD       Y9, Y8, Y8
	VEXTRACTF128 $1, Y8, X0
	VADDPD       X0, X8, X8
	VPERMILPD    $1, X8, X0
	VADDSD       X0, X8, X8
	MOVSD        X8, 8(R8)

	VADDPD       Y11, Y10, Y10
	VEXTRACTF128 $1, Y10, X0
	VADDPD       X0, X10, X10
	VPERMILPD    $1, X10, X0
	VADDSD       X0, X10, X10
	MOVSD        X10, 16(R8)
	VZEROUPPER
	RET

// func axpy32BlocksFMA(dst, x *float32, alpha float32, blocks int)
//
// dst[i] += alpha*x[i] over blocks*8 float32 elements, one 8-lane
// float32 FMA per block. Elements are independent, so the only
// difference from the scalar kernel is the fused single rounding.
TEXT ·axpy32BlocksFMA(SB), NOSPLIT, $0-32
	MOVQ         dst+0(FP), DI
	MOVQ         x+8(FP), SI
	VBROADCASTSS alpha+16(FP), Y5
	MOVQ         blocks+24(FP), CX

loop:
	VMOVUPS     (SI), Y0
	VMOVUPS     (DI), Y1
	VFMADD231PS Y0, Y5, Y1
	VMOVUPS     Y1, (DI)
	ADDQ        $32, SI
	ADDQ        $32, DI
	DECQ        CX
	JNZ         loop

	VZEROUPPER
	RET
