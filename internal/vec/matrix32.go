package vec

import "fmt"

// Matrix32 is a dense row-major float32 matrix: the float32 twin of
// Matrix, carrying the serving store's vectors when it runs in float32
// mode. It deliberately implements only what the store needs — row
// views, cloning and amortised growth; the solvers stay on the float64
// Matrix.
type Matrix32 struct {
	Rows, Cols int
	Stride     int
	Data       []float32
}

// NewMatrix32 allocates a zeroed rows x cols matrix.
func NewMatrix32(rows, cols int) *Matrix32 {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("vec: NewMatrix32 negative dims %dx%d", rows, cols))
	}
	return &Matrix32{Rows: rows, Cols: cols, Stride: cols, Data: make([]float32, rows*cols)}
}

// Row returns a mutable view of row i.
func (m *Matrix32) Row(i int) []float32 {
	return m.Data[i*m.Stride : i*m.Stride+m.Cols]
}

// Clone returns a deep copy with a compact stride.
func (m *Matrix32) Clone() *Matrix32 {
	out := NewMatrix32(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		copy(out.Row(i), m.Row(i))
	}
	return out
}

// GrowRows extends the matrix to the given row count in place,
// zero-filling the new rows, with amortised-doubling capacity. Same
// contract as Matrix.GrowRows: only compact matrices can grow, and row
// views taken before a reallocating growth go stale.
func (m *Matrix32) GrowRows(rows int) {
	if rows <= m.Rows {
		return
	}
	if m.Stride != m.Cols {
		panic(fmt.Sprintf("vec: GrowRows on non-compact matrix (stride %d, cols %d)", m.Stride, m.Cols))
	}
	need := rows * m.Stride
	if cap(m.Data) < need {
		c := 2 * cap(m.Data)
		if c < need {
			c = need
		}
		grown := make([]float32, need, c)
		copy(grown, m.Data)
		m.Data = grown
	} else {
		tail := m.Data[len(m.Data):need]
		for i := range tail {
			tail[i] = 0
		}
		m.Data = m.Data[:need]
	}
	m.Rows = rows
}
