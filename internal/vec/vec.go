// Package vec provides dense float64 vector and matrix kernels used by the
// retrofitting solvers, the embedding store, and the neural network library.
//
// All operations are allocation-conscious: the mutating variants write into
// their receiver or an explicit destination, and the few allocating helpers
// are clearly named (Clone, NewMatrix, ...). Vectors are plain []float64;
// matrices are row-major with an explicit stride so that row views are
// cheap sub-slices.
package vec

import (
	"fmt"
	"math"
)

// Dot returns the inner product of a and b. It panics if the lengths differ.
//
// On amd64 with AVX2+FMA (and no RETRO_SIMD cap) the inner loop is the
// fused multiply-add kernel in dot_amd64.s; everywhere else it is
// dotGeneric. The kernels re-associate the sum differently (8 SIMD
// accumulator lanes vs 4 scalar ones) and FMA skips an intermediate
// rounding, so results differ across levels only in the last ulps —
// well below the solver and search tolerances, and irrelevant to
// batch-vs-single parity because one process always runs one kernel.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: Dot length mismatch %d != %d", len(a), len(b)))
	}
	return dot(a, b)
}

// dotGeneric is the portable kernel and the reference the assembly is
// property-tested against.
//
// The loop runs four independent accumulators so the floating-point adds
// pipeline instead of serialising on one dependency chain; distance
// arithmetic on this kernel dominates every ANN hop, so the ~3x
// throughput difference is visible end to end.
func dotGeneric(a, b []float64) float64 {
	b = b[:len(a)]
	var s0, s1, s2, s3 float64
	// Slice-advance form: the loop condition covers both slices, so the
	// compiler proves all eight accesses in bounds and the inner loop
	// carries no checks.
	for len(a) >= 4 && len(b) >= 4 {
		s0 += a[0] * b[0]
		s1 += a[1] * b[1]
		s2 += a[2] * b[2]
		s3 += a[3] * b[3]
		a, b = a[4:], b[4:]
	}
	for i := range a {
		s0 += a[i] * b[i]
	}
	return (s0 + s1) + (s2 + s3)
}

// Norm returns the Euclidean (L2) norm of a.
func Norm(a []float64) float64 {
	return math.Sqrt(Dot(a, a))
}

// SquaredDistance returns ||a-b||^2, the quantity the retrofitting loss
// (eq. 4-6 of the paper) is built from.
func SquaredDistance(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: SquaredDistance length mismatch %d != %d", len(a), len(b)))
	}
	b = b[:len(a)]
	var s0, s1, s2, s3 float64
	for len(a) >= 4 && len(b) >= 4 {
		d0 := a[0] - b[0]
		d1 := a[1] - b[1]
		d2 := a[2] - b[2]
		d3 := a[3] - b[3]
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
		a, b = a[4:], b[4:]
	}
	for i := range a {
		d := a[i] - b[i]
		s0 += d * d
	}
	return (s0 + s1) + (s2 + s3)
}

// Cosine returns the cosine similarity of a and b. A zero vector has
// similarity 0 with everything (by convention, so OOV null vectors do not
// rank as neighbours). The dot product and both squared norms are
// accumulated in one fused pass — a and b are each read once, not three
// times as the Dot+Norm+Norm formulation would.
func Cosine(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: Cosine length mismatch %d != %d", len(a), len(b)))
	}
	b = b[:len(a)]
	var d0, d1, na0, na1, nb0, nb1 float64
	for len(a) >= 2 && len(b) >= 2 {
		x0, y0 := a[0], b[0]
		x1, y1 := a[1], b[1]
		d0 += x0 * y0
		d1 += x1 * y1
		na0 += x0 * x0
		na1 += x1 * x1
		nb0 += y0 * y0
		nb1 += y1 * y1
		a, b = a[2:], b[2:]
	}
	for i := range a {
		x, y := a[i], b[i]
		d0 += x * y
		na0 += x * x
		nb0 += y * y
	}
	na2, nb2 := na0+na1, nb0+nb1
	if na2 == 0 || nb2 == 0 {
		return 0
	}
	return (d0 + d1) / (math.Sqrt(na2) * math.Sqrt(nb2))
}

// Axpy computes dst += alpha*x element-wise. It panics on length mismatch.
// Like Dot, the inner loop routes through the runtime SIMD dispatch (the
// repair kernels call this in the write hot loop); the AVX2 path keeps
// the separate multiply and add, so every level is bit-identical.
func Axpy(dst []float64, alpha float64, x []float64) {
	if len(dst) != len(x) {
		panic(fmt.Sprintf("vec: Axpy length mismatch %d != %d", len(dst), len(x)))
	}
	axpy(dst, alpha, x)
}

// axpyGeneric is the portable kernel and the reference the assembly is
// property-tested against. Each element is independent, so the 4-wide
// unroll changes no result; it exists to keep the solver inner loops fed
// (this kernel carries the bulk of every retrofitting iteration).
func axpyGeneric(dst []float64, alpha float64, x []float64) {
	x = x[:len(dst)]
	if alpha == 1 {
		for len(dst) >= 4 && len(x) >= 4 {
			dst[0] += x[0]
			dst[1] += x[1]
			dst[2] += x[2]
			dst[3] += x[3]
			dst, x = dst[4:], x[4:]
		}
		for i := range dst {
			dst[i] += x[i]
		}
		return
	}
	for len(dst) >= 4 && len(x) >= 4 {
		dst[0] += alpha * x[0]
		dst[1] += alpha * x[1]
		dst[2] += alpha * x[2]
		dst[3] += alpha * x[3]
		dst, x = dst[4:], x[4:]
	}
	for i := range dst {
		dst[i] += alpha * x[i]
	}
}

// Scale multiplies every element of a by alpha in place. The SIMD path
// (VMULPD) performs the identical independent multiply per element, so
// every dispatch level is bit-identical.
func Scale(a []float64, alpha float64) {
	scale(a, alpha)
}

func scaleGeneric(a []float64, alpha float64) {
	for i := range a {
		a[i] *= alpha
	}
}

// Add computes dst = a + b. dst may alias a or b. Like Scale, the SIMD
// path is bit-identical to the scalar one.
func Add(dst, a, b []float64) {
	if len(a) != len(b) || len(dst) != len(a) {
		panic("vec: Add length mismatch")
	}
	add(dst, a, b)
}

func addGeneric(dst, a, b []float64) {
	for i := range a {
		dst[i] = a[i] + b[i]
	}
}

// Sub computes dst = a - b. dst may alias a or b.
func Sub(dst, a, b []float64) {
	if len(a) != len(b) || len(dst) != len(a) {
		panic("vec: Sub length mismatch")
	}
	for i := range a {
		dst[i] = a[i] - b[i]
	}
}

// Zero sets every element of a to 0.
func Zero(a []float64) {
	for i := range a {
		a[i] = 0
	}
}

// Fill sets every element of a to v.
func Fill(a []float64, v float64) {
	for i := range a {
		a[i] = v
	}
}

// Clone returns a fresh copy of a.
func Clone(a []float64) []float64 {
	out := make([]float64, len(a))
	copy(out, a)
	return out
}

// IsZero reports whether every element of a is exactly 0. Used to detect
// null-vector (OOV) initialisations.
func IsZero(a []float64) bool {
	for _, v := range a {
		if v != 0 {
			return false
		}
	}
	return true
}

// Normalize scales a to unit L2 norm in place and returns the original
// norm. A zero vector is left unchanged and 0 is returned.
func Normalize(a []float64) float64 {
	n := Norm(a)
	if n == 0 {
		return 0
	}
	inv := 1 / n
	for i := range a {
		a[i] *= inv
	}
	return n
}

// Centroid computes the arithmetic mean of the given vectors into dst.
// It panics if vectors is empty or dimensions mismatch. This is the c_i
// computation of eq. (5).
func Centroid(dst []float64, vectors ...[]float64) {
	if len(vectors) == 0 {
		panic("vec: Centroid of no vectors")
	}
	Zero(dst)
	for _, v := range vectors {
		Axpy(dst, 1, v)
	}
	Scale(dst, 1/float64(len(vectors)))
}

// ArgMax returns the index of the largest element of a, or -1 for an
// empty slice. Ties resolve to the lowest index.
func ArgMax(a []float64) int {
	if len(a) == 0 {
		return -1
	}
	best := 0
	for i := 1; i < len(a); i++ {
		if a[i] > a[best] {
			best = i
		}
	}
	return best
}

// Sum returns the sum of the elements of a.
func Sum(a []float64) float64 {
	var s float64
	for _, v := range a {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of a, or 0 for an empty slice.
func Mean(a []float64) float64 {
	if len(a) == 0 {
		return 0
	}
	return Sum(a) / float64(len(a))
}

// StdDev returns the population standard deviation of a.
func StdDev(a []float64) float64 {
	if len(a) == 0 {
		return 0
	}
	m := Mean(a)
	var s float64
	for _, v := range a {
		d := v - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(a)))
}
