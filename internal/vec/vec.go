// Package vec provides dense float64 vector and matrix kernels used by the
// retrofitting solvers, the embedding store, and the neural network library.
//
// All operations are allocation-conscious: the mutating variants write into
// their receiver or an explicit destination, and the few allocating helpers
// are clearly named (Clone, NewMatrix, ...). Vectors are plain []float64;
// matrices are row-major with an explicit stride so that row views are
// cheap sub-slices.
package vec

import (
	"fmt"
	"math"
)

// Dot returns the inner product of a and b. It panics if the lengths differ.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: Dot length mismatch %d != %d", len(a), len(b)))
	}
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Norm returns the Euclidean (L2) norm of a.
func Norm(a []float64) float64 {
	return math.Sqrt(Dot(a, a))
}

// SquaredDistance returns ||a-b||^2, the quantity the retrofitting loss
// (eq. 4-6 of the paper) is built from.
func SquaredDistance(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: SquaredDistance length mismatch %d != %d", len(a), len(b)))
	}
	var s float64
	for i, v := range a {
		d := v - b[i]
		s += d * d
	}
	return s
}

// Cosine returns the cosine similarity of a and b. A zero vector has
// similarity 0 with everything (by convention, so OOV null vectors do not
// rank as neighbours).
func Cosine(a, b []float64) float64 {
	na, nb := Norm(a), Norm(b)
	if na == 0 || nb == 0 {
		return 0
	}
	return Dot(a, b) / (na * nb)
}

// Axpy computes dst += alpha*x element-wise. It panics on length mismatch.
func Axpy(dst []float64, alpha float64, x []float64) {
	if len(dst) != len(x) {
		panic(fmt.Sprintf("vec: Axpy length mismatch %d != %d", len(dst), len(x)))
	}
	if alpha == 1 {
		for i, v := range x {
			dst[i] += v
		}
		return
	}
	for i, v := range x {
		dst[i] += alpha * v
	}
}

// Scale multiplies every element of a by alpha in place.
func Scale(a []float64, alpha float64) {
	for i := range a {
		a[i] *= alpha
	}
}

// Add computes dst = a + b. dst may alias a or b.
func Add(dst, a, b []float64) {
	if len(a) != len(b) || len(dst) != len(a) {
		panic("vec: Add length mismatch")
	}
	for i := range a {
		dst[i] = a[i] + b[i]
	}
}

// Sub computes dst = a - b. dst may alias a or b.
func Sub(dst, a, b []float64) {
	if len(a) != len(b) || len(dst) != len(a) {
		panic("vec: Sub length mismatch")
	}
	for i := range a {
		dst[i] = a[i] - b[i]
	}
}

// Zero sets every element of a to 0.
func Zero(a []float64) {
	for i := range a {
		a[i] = 0
	}
}

// Fill sets every element of a to v.
func Fill(a []float64, v float64) {
	for i := range a {
		a[i] = v
	}
}

// Clone returns a fresh copy of a.
func Clone(a []float64) []float64 {
	out := make([]float64, len(a))
	copy(out, a)
	return out
}

// IsZero reports whether every element of a is exactly 0. Used to detect
// null-vector (OOV) initialisations.
func IsZero(a []float64) bool {
	for _, v := range a {
		if v != 0 {
			return false
		}
	}
	return true
}

// Normalize scales a to unit L2 norm in place and returns the original
// norm. A zero vector is left unchanged and 0 is returned.
func Normalize(a []float64) float64 {
	n := Norm(a)
	if n == 0 {
		return 0
	}
	inv := 1 / n
	for i := range a {
		a[i] *= inv
	}
	return n
}

// Centroid computes the arithmetic mean of the given vectors into dst.
// It panics if vectors is empty or dimensions mismatch. This is the c_i
// computation of eq. (5).
func Centroid(dst []float64, vectors ...[]float64) {
	if len(vectors) == 0 {
		panic("vec: Centroid of no vectors")
	}
	Zero(dst)
	for _, v := range vectors {
		Axpy(dst, 1, v)
	}
	Scale(dst, 1/float64(len(vectors)))
}

// ArgMax returns the index of the largest element of a, or -1 for an
// empty slice. Ties resolve to the lowest index.
func ArgMax(a []float64) int {
	if len(a) == 0 {
		return -1
	}
	best := 0
	for i := 1; i < len(a); i++ {
		if a[i] > a[best] {
			best = i
		}
	}
	return best
}

// Sum returns the sum of the elements of a.
func Sum(a []float64) float64 {
	var s float64
	for _, v := range a {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of a, or 0 for an empty slice.
func Mean(a []float64) float64 {
	if len(a) == 0 {
		return 0
	}
	return Sum(a) / float64(len(a))
}

// StdDev returns the population standard deviation of a.
func StdDev(a []float64) float64 {
	if len(a) == 0 {
		return 0
	}
	m := Mean(a)
	var s float64
	for _, v := range a {
		d := v - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(a)))
}
