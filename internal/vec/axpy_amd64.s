//go:build amd64

#include "textflag.h"

// func axpyBlocksAVX2(dst, x *float64, alpha float64, blocks int)
//
// dst[i] += alpha*x[i] over blocks*8 float64 elements. Deliberately
// multiply-then-add (NOT fused): the float64 Axpy contract is bit-exact
// agreement with the scalar kernel at every dispatch level, which FMA's
// single rounding would break.
TEXT ·axpyBlocksAVX2(SB), NOSPLIT, $0-32
	MOVQ         dst+0(FP), DI
	MOVQ         x+8(FP), SI
	VBROADCASTSD alpha+16(FP), Y5
	MOVQ         blocks+24(FP), CX

loop:
	VMULPD  (SI), Y5, Y0
	VADDPD  (DI), Y0, Y0
	VMOVUPD Y0, (DI)
	VMULPD  32(SI), Y5, Y1
	VADDPD  32(DI), Y1, Y1
	VMOVUPD Y1, 32(DI)
	ADDQ    $64, SI
	ADDQ    $64, DI
	DECQ    CX
	JNZ     loop

	VZEROUPPER
	RET

// func scaleBlocksAVX2(a *float64, alpha float64, blocks int)
//
// a[i] *= alpha over blocks*8 float64 elements. One independent multiply
// per element: bit-identical to the scalar kernel.
TEXT ·scaleBlocksAVX2(SB), NOSPLIT, $0-24
	MOVQ         a+0(FP), SI
	VBROADCASTSD alpha+8(FP), Y5
	MOVQ         blocks+16(FP), CX

loop:
	VMULPD  (SI), Y5, Y0
	VMOVUPD Y0, (SI)
	VMULPD  32(SI), Y5, Y1
	VMOVUPD Y1, 32(SI)
	ADDQ    $64, SI
	DECQ    CX
	JNZ     loop

	VZEROUPPER
	RET

// func addBlocksAVX2(dst, a, b *float64, blocks int)
//
// dst[i] = a[i] + b[i] over blocks*8 float64 elements. Both sources are
// loaded before the store, so dst aliasing a or b keeps the scalar
// semantics; one independent add per element is bit-identical to the
// scalar kernel.
TEXT ·addBlocksAVX2(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ b+16(FP), DX
	MOVQ blocks+24(FP), CX

loop:
	VMOVUPD (SI), Y0
	VADDPD  (DX), Y0, Y0
	VMOVUPD Y0, (DI)
	VMOVUPD 32(SI), Y1
	VADDPD  32(DX), Y1, Y1
	VMOVUPD Y1, 32(DI)
	ADDQ    $64, SI
	ADDQ    $64, DX
	ADDQ    $64, DI
	DECQ    CX
	JNZ     loop

	VZEROUPPER
	RET
