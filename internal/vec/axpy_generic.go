//go:build !amd64

package vec

func axpy(dst []float64, alpha float64, x []float64) { axpyGeneric(dst, alpha, x) }

func scale(a []float64, alpha float64) { scaleGeneric(a, alpha) }

func add(dst, a, b []float64) { addGeneric(dst, a, b) }
