package vec

import (
	"math"
	"math/rand"
	"testing"

	"github.com/retrodb/retro/internal/cpu"
)

// Forced-level parity for the float32 kernels, against BOTH references:
// the portable float32 kernels (tight tolerance — the assembly only
// re-associates float64 accumulators) and the float64 kernels on the
// widened inputs (the ISSUE-level bound: f32 serving scores within 1e-6
// relative of the f64 pipeline on the same float32-rounded data).

var kernelLengths = []int{0, 1, 3, 7, 8, 9, 15, 16, 17, 63, 64, 65, 300, 301}

func randPair32(rng *rand.Rand, n int) (a32, b32 []float32, a64, b64 []float64) {
	a32 = make([]float32, n)
	b32 = make([]float32, n)
	a64 = make([]float64, n)
	b64 = make([]float64, n)
	for i := 0; i < n; i++ {
		a32[i] = float32(rng.NormFloat64())
		b32[i] = float32(rng.NormFloat64())
		a64[i] = float64(a32[i])
		b64[i] = float64(b32[i])
	}
	return
}

func forEachLevel(t *testing.T, fn func(t *testing.T)) {
	t.Helper()
	orig := cpu.Active()
	defer cpu.SetLevel(orig)
	for _, l := range []cpu.Level{cpu.Scalar, cpu.SSE2, cpu.AVX2} {
		if l > cpu.Detected() {
			continue
		}
		cpu.SetLevel(l)
		t.Run(l.String(), fn)
	}
	cpu.SetLevel(orig)
}

func TestDot32KernelParity(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	forEachLevel(t, func(t *testing.T) {
		for _, n := range kernelLengths {
			a32, b32, a64, b64 := randPair32(rng, n)
			got := Dot32(a32, b32)
			var mag float64
			for i := range a64 {
				mag += math.Abs(a64[i] * b64[i])
			}
			// Same-precision reference: float64 accumulators on both
			// sides, only the association order differs.
			if want := dot32Generic(a32, b32); math.Abs(got-want) > 1e-12*(1+mag) {
				t.Fatalf("level %v n=%d: Dot32=%g generic=%g", cpu.Active(), n, got, want)
			}
			// Cross-precision reference: the f64 kernel on widened inputs.
			if want := Dot(a64, b64); math.Abs(got-want) > 1e-6*(1+mag) {
				t.Fatalf("level %v n=%d: Dot32=%g Dot=%g", cpu.Active(), n, got, want)
			}
		}
	})
}

func TestSquaredDistance32KernelParity(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	forEachLevel(t, func(t *testing.T) {
		for _, n := range kernelLengths {
			a32, b32, a64, b64 := randPair32(rng, n)
			got := SquaredDistance32(a32, b32)
			want64 := SquaredDistance(a64, b64)
			if want := sqdist32Generic(a32, b32); math.Abs(got-want) > 1e-12*(1+want) {
				t.Fatalf("level %v n=%d: SquaredDistance32=%g generic=%g", cpu.Active(), n, got, want)
			}
			if math.Abs(got-want64) > 1e-6*(1+want64) {
				t.Fatalf("level %v n=%d: SquaredDistance32=%g f64=%g", cpu.Active(), n, got, want64)
			}
		}
	})
}

func TestCosine32KernelParity(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	forEachLevel(t, func(t *testing.T) {
		for _, n := range kernelLengths {
			a32, b32, a64, b64 := randPair32(rng, n)
			got := Cosine32(a32, b32)
			d, na, nb := cosine32Generic(a32, b32)
			want := 0.0
			if na != 0 && nb != 0 {
				want = d / (math.Sqrt(na) * math.Sqrt(nb))
			}
			if math.Abs(got-want) > 1e-12 {
				t.Fatalf("level %v n=%d: Cosine32=%g generic=%g", cpu.Active(), n, got, want)
			}
			if want64 := Cosine(a64, b64); math.Abs(got-want64) > 1e-6 {
				t.Fatalf("level %v n=%d: Cosine32=%g Cosine=%g", cpu.Active(), n, got, want64)
			}
		}
		// Zero-vector convention carries over.
		if got := Cosine32(make([]float32, 8), []float32{1, 2, 3, 4, 5, 6, 7, 8}); got != 0 {
			t.Fatalf("Cosine32 with zero vector = %g, want 0", got)
		}
	})
}

func TestAxpy32KernelParity(t *testing.T) {
	rng := rand.New(rand.NewSource(109))
	forEachLevel(t, func(t *testing.T) {
		for _, n := range kernelLengths {
			dst32, x32, dst64, x64 := randPair32(rng, n)
			alpha := float32(rng.NormFloat64())
			ref := Clone32(dst32)
			axpy32Generic(ref, alpha, x32)
			Axpy32(dst32, alpha, x32)
			Axpy(dst64, float64(alpha), x64)
			for i := range dst32 {
				// The FMA path rounds once where the scalar path rounds
				// twice: one float32 ulp of slack.
				if d := math.Abs(float64(dst32[i]) - float64(ref[i])); d > 1e-6*(1+math.Abs(float64(ref[i]))) {
					t.Fatalf("level %v n=%d i=%d: Axpy32=%g generic=%g", cpu.Active(), n, i, dst32[i], ref[i])
				}
				if d := math.Abs(float64(dst32[i]) - dst64[i]); d > 1e-6*(1+math.Abs(dst64[i])) {
					t.Fatalf("level %v n=%d i=%d: Axpy32=%g Axpy=%g", cpu.Active(), n, i, dst32[i], dst64[i])
				}
			}
		}
	})
}

// Forced-level parity for the float64 elementwise kernels now routed
// through the dispatcher. All three must be bit-identical at every
// level: independent per-element ops, multiply and add kept separate.
func TestAxpyScaleAddKernelParity(t *testing.T) {
	rng := rand.New(rand.NewSource(113))
	forEachLevel(t, func(t *testing.T) {
		for _, n := range kernelLengths {
			a := make([]float64, n)
			b := make([]float64, n)
			for i := 0; i < n; i++ {
				a[i] = rng.NormFloat64()
				b[i] = rng.NormFloat64()
			}
			alpha := rng.NormFloat64()

			dst := Clone(a)
			ref := Clone(a)
			Axpy(dst, alpha, b)
			axpyGeneric(ref, alpha, b)
			for i := range dst {
				if dst[i] != ref[i] {
					t.Fatalf("level %v n=%d i=%d: Axpy=%g generic=%g", cpu.Active(), n, i, dst[i], ref[i])
				}
			}

			// alpha==1 fast path of the generic kernel must agree too.
			dst, ref = Clone(a), Clone(a)
			Axpy(dst, 1, b)
			axpyGeneric(ref, 1, b)
			for i := range dst {
				if dst[i] != ref[i] {
					t.Fatalf("level %v n=%d i=%d: Axpy(alpha=1)=%g generic=%g", cpu.Active(), n, i, dst[i], ref[i])
				}
			}

			dst, ref = Clone(a), Clone(a)
			Scale(dst, alpha)
			scaleGeneric(ref, alpha)
			for i := range dst {
				if dst[i] != ref[i] {
					t.Fatalf("level %v n=%d i=%d: Scale=%g generic=%g", cpu.Active(), n, i, dst[i], ref[i])
				}
			}

			dst, ref = make([]float64, n), make([]float64, n)
			Add(dst, a, b)
			addGeneric(ref, a, b)
			for i := range dst {
				if dst[i] != ref[i] {
					t.Fatalf("level %v n=%d i=%d: Add=%g generic=%g", cpu.Active(), n, i, dst[i], ref[i])
				}
			}
			// Aliased form: dst == a.
			dst, ref = Clone(a), Clone(a)
			Add(dst, dst, b)
			addGeneric(ref, ref, b)
			for i := range dst {
				if dst[i] != ref[i] {
					t.Fatalf("level %v n=%d i=%d: aliased Add=%g generic=%g", cpu.Active(), n, i, dst[i], ref[i])
				}
			}
		}
	})
}

// The dispatched float32 kernels must be pure functions within a
// process: TopK tie-breaking and the batch-vs-single parity tests rely
// on score stability.
func TestDot32KernelDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(127))
	a := make([]float32, 301)
	b := make([]float32, 301)
	for i := range a {
		a[i] = float32(rng.NormFloat64())
		b[i] = float32(rng.NormFloat64())
	}
	first := Dot32(a, b)
	for i := 0; i < 100; i++ {
		if got := Dot32(a, b); got != first {
			t.Fatalf("run %d: Dot32 returned %v then %v", i, first, got)
		}
	}
}

func BenchmarkDot32Kernel(b *testing.B) {
	rng := rand.New(rand.NewSource(131))
	const dim = 300
	x := make([]float32, dim)
	y := make([]float32, dim)
	for i := range x {
		x[i] = float32(rng.NormFloat64())
		y[i] = float32(rng.NormFloat64())
	}
	orig := cpu.Active()
	defer cpu.SetLevel(orig)
	for _, l := range []cpu.Level{cpu.Scalar, cpu.AVX2} {
		if l > cpu.Detected() {
			continue
		}
		cpu.SetLevel(l)
		name := "generic"
		if cpu.HasFMA() {
			name = "fma"
		}
		b.Run(name, func(b *testing.B) {
			var s float64
			for i := 0; i < b.N; i++ {
				s += Dot32(x, y)
			}
			sinkF = s
		})
	}
	cpu.SetLevel(orig)
}
