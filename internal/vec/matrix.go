package vec

import (
	"fmt"
	"math/rand"
)

// Matrix is a dense row-major matrix. Row i occupies
// Data[i*Stride : i*Stride+Cols]. Stride == Cols for matrices created by
// NewMatrix; views produced by SubRows share the parent's backing array.
type Matrix struct {
	Rows, Cols int
	Stride     int
	Data       []float64
}

// NewMatrix allocates a zeroed rows x cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("vec: NewMatrix negative dims %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Stride: cols, Data: make([]float64, rows*cols)}
}

// NewMatrixFrom builds a matrix from a slice of equally sized rows,
// copying the data.
func NewMatrixFrom(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic(fmt.Sprintf("vec: NewMatrixFrom ragged row %d (%d != %d)", i, len(r), m.Cols))
		}
		copy(m.Row(i), r)
	}
	return m
}

// Row returns a mutable view of row i.
func (m *Matrix) Row(i int) []float64 {
	return m.Data[i*m.Stride : i*m.Stride+m.Cols]
}

// At returns the element at (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Stride+j] }

// Set writes the element at (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Stride+j] = v }

// Clone returns a deep copy with a compact stride.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		copy(out.Row(i), m.Row(i))
	}
	return out
}

// CopyFrom copies src into m. Shapes must match.
func (m *Matrix) CopyFrom(src *Matrix) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic(fmt.Sprintf("vec: CopyFrom shape mismatch %dx%d vs %dx%d", m.Rows, m.Cols, src.Rows, src.Cols))
	}
	for i := 0; i < m.Rows; i++ {
		copy(m.Row(i), src.Row(i))
	}
}

// SubRows returns a view of rows [from, to). The view shares storage.
func (m *Matrix) SubRows(from, to int) *Matrix {
	if from < 0 || to > m.Rows || from > to {
		panic(fmt.Sprintf("vec: SubRows [%d,%d) out of range 0..%d", from, to, m.Rows))
	}
	return &Matrix{
		Rows:   to - from,
		Cols:   m.Cols,
		Stride: m.Stride,
		Data:   m.Data[from*m.Stride : (to-1)*m.Stride+m.Cols],
	}
}

// Zero sets all elements to 0.
func (m *Matrix) Zero() {
	for i := 0; i < m.Rows; i++ {
		Zero(m.Row(i))
	}
}

// ScaleRows multiplies row i by s[i] in place. len(s) must equal Rows.
func (m *Matrix) ScaleRows(s []float64) {
	if len(s) != m.Rows {
		panic("vec: ScaleRows length mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		Scale(m.Row(i), s[i])
	}
}

// AddScaled computes m += alpha * other element-wise.
func (m *Matrix) AddScaled(alpha float64, other *Matrix) {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		panic("vec: AddScaled shape mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		Axpy(m.Row(i), alpha, other.Row(i))
	}
}

// RowSquaredNorms writes ||row_i||^2 into dst, which must have length Rows.
// This is the (W' ⊙ W')·1 computation of eq. (11).
func (m *Matrix) RowSquaredNorms(dst []float64) {
	if len(dst) != m.Rows {
		panic("vec: RowSquaredNorms length mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		r := m.Row(i)
		dst[i] = Dot(r, r)
	}
}

// Mul computes dst = m * other (matrix product). dst must not alias either
// operand. The inner loop is arranged as an axpy over rows of other, which
// is cache-friendly for row-major data.
func (m *Matrix) Mul(dst, other *Matrix) {
	if m.Cols != other.Rows {
		panic(fmt.Sprintf("vec: Mul inner dim mismatch %d != %d", m.Cols, other.Rows))
	}
	if dst.Rows != m.Rows || dst.Cols != other.Cols {
		panic("vec: Mul dst shape mismatch")
	}
	dst.Zero()
	for i := 0; i < m.Rows; i++ {
		mi := m.Row(i)
		di := dst.Row(i)
		for k, a := range mi {
			if a == 0 {
				continue
			}
			Axpy(di, a, other.Row(k))
		}
	}
}

// MulVec computes dst = m * x for a column vector x.
func (m *Matrix) MulVec(dst, x []float64) {
	if len(x) != m.Cols || len(dst) != m.Rows {
		panic("vec: MulVec shape mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		dst[i] = Dot(m.Row(i), x)
	}
}

// MulVecT computes dst = m^T * x, i.e. dst[j] = sum_i m[i][j]*x[i].
func (m *Matrix) MulVecT(dst, x []float64) {
	if len(x) != m.Rows || len(dst) != m.Cols {
		panic("vec: MulVecT shape mismatch")
	}
	Zero(dst)
	for i := 0; i < m.Rows; i++ {
		Axpy(dst, x[i], m.Row(i))
	}
}

// T returns a newly allocated transpose of m.
func (m *Matrix) T() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		r := m.Row(i)
		for j, v := range r {
			out.Data[j*out.Stride+i] = v
		}
	}
	return out
}

// Equal reports whether m and other have the same shape and all elements
// within tol of each other.
func (m *Matrix) Equal(other *Matrix, tol float64) bool {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		return false
	}
	for i := 0; i < m.Rows; i++ {
		a, b := m.Row(i), other.Row(i)
		for j := range a {
			d := a[j] - b[j]
			if d < -tol || d > tol {
				return false
			}
		}
	}
	return true
}

// Randomize fills m with uniform values in [-scale, scale) from rng.
func (m *Matrix) Randomize(rng *rand.Rand, scale float64) {
	for i := 0; i < m.Rows; i++ {
		r := m.Row(i)
		for j := range r {
			r[j] = (rng.Float64()*2 - 1) * scale
		}
	}
}

// String renders a small matrix for debugging; large matrices are
// summarised by shape only.
func (m *Matrix) String() string {
	if m.Rows*m.Cols > 64 {
		return fmt.Sprintf("Matrix(%dx%d)", m.Rows, m.Cols)
	}
	s := fmt.Sprintf("Matrix(%dx%d)[", m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		if i > 0 {
			s += "; "
		}
		s += fmt.Sprintf("%.4g", m.Row(i))
	}
	return s + "]"
}

// GrowRows extends the matrix to the given row count in place,
// zero-filling the new rows, with amortised-doubling capacity so repeated
// growth costs O(1) per row. Only compact matrices (Stride == Cols) can
// grow. Row views taken before a growth that reallocates keep pointing at
// the old backing array; re-fetch rows after growing.
func (m *Matrix) GrowRows(rows int) {
	if rows <= m.Rows {
		return
	}
	if m.Stride != m.Cols {
		panic(fmt.Sprintf("vec: GrowRows on non-compact matrix (stride %d, cols %d)", m.Stride, m.Cols))
	}
	need := rows * m.Stride
	if cap(m.Data) < need {
		c := 2 * cap(m.Data)
		if c < need {
			c = need
		}
		grown := make([]float64, need, c)
		copy(grown, m.Data)
		m.Data = grown
	} else {
		tail := m.Data[len(m.Data):need]
		for i := range tail {
			tail[i] = 0
		}
		m.Data = m.Data[:need]
	}
	m.Rows = rows
}
