//go:build amd64

package vec

import "github.com/retrodb/retro/internal/cpu"

// The float32 reduction kernels in dot32_amd64.s widen each 4-lane
// float32 block with VCVTPS2PD in registers and fuse into float64 FMA
// accumulators: half the memory traffic of the float64 kernels, float64
// accumulation throughout. Axpy32 stays in float32 (VFMADD231PS): each
// element is independent, so the per-element FMA is exact to one
// float32 rounding. Only reachable when cpu.HasFMA().

//go:noescape
func dot32BlocksFMA(a, b *float32, blocks int) float64

//go:noescape
func sqdist32BlocksFMA(a, b *float32, blocks int) float64

//go:noescape
func cosine32BlocksFMA(a, b *float32, blocks int, sums *[3]float64)

//go:noescape
func axpy32BlocksFMA(dst, x *float32, alpha float32, blocks int)

func dot32(a, b []float32) float64 {
	if !cpu.HasFMA() {
		return dot32Generic(a, b)
	}
	n := len(a)
	var s float64
	if blocks := n / 8; blocks > 0 {
		s = dot32BlocksFMA(&a[0], &b[0], blocks)
	}
	for i := n &^ 7; i < n; i++ {
		s += float64(a[i]) * float64(b[i])
	}
	return s
}

func sqdist32(a, b []float32) float64 {
	if !cpu.HasFMA() {
		return sqdist32Generic(a, b)
	}
	n := len(a)
	var s float64
	if blocks := n / 8; blocks > 0 {
		s = sqdist32BlocksFMA(&a[0], &b[0], blocks)
	}
	for i := n &^ 7; i < n; i++ {
		d := float64(a[i]) - float64(b[i])
		s += d * d
	}
	return s
}

func cosine32(a, b []float32) (d, na, nb float64) {
	if !cpu.HasFMA() {
		return cosine32Generic(a, b)
	}
	n := len(a)
	var sums [3]float64
	if blocks := n / 8; blocks > 0 {
		cosine32BlocksFMA(&a[0], &b[0], blocks, &sums)
	}
	d, na, nb = sums[0], sums[1], sums[2]
	for i := n &^ 7; i < n; i++ {
		x, y := float64(a[i]), float64(b[i])
		d += x * y
		na += x * x
		nb += y * y
	}
	return d, na, nb
}

func axpy32(dst []float32, alpha float32, x []float32) {
	if !cpu.HasFMA() {
		axpy32Generic(dst, alpha, x)
		return
	}
	n := len(dst)
	if blocks := n / 8; blocks > 0 {
		axpy32BlocksFMA(&dst[0], &x[0], alpha, blocks)
	}
	for i := n &^ 7; i < n; i++ {
		dst[i] += alpha * x[i]
	}
}
