//go:build amd64

#include "textflag.h"

// func dotBlocksFMA(a, b *float64, blocks int) float64
//
// Sums a[i]*b[i] over blocks*8 float64 elements with fused multiply-add.
// Two independent accumulators (Y6, Y7) of four lanes each hide the
// 4-cycle FMA latency; the horizontal reduction at the end adds the
// eight lanes pairwise, so the summation order is fixed (and therefore
// deterministic) even though it differs from dotGeneric's.
TEXT ·dotBlocksFMA(SB), NOSPLIT, $0-32
	MOVQ   a+0(FP), SI
	MOVQ   b+8(FP), DI
	MOVQ   blocks+16(FP), CX
	VXORPD Y6, Y6, Y6
	VXORPD Y7, Y7, Y7

loop:
	VMOVUPD     (SI), Y0
	VFMADD231PD (DI), Y0, Y6
	VMOVUPD     32(SI), Y1
	VFMADD231PD 32(DI), Y1, Y7
	ADDQ        $64, SI
	ADDQ        $64, DI
	DECQ        CX
	JNZ         loop

	// Horizontal sum: fold upper halves onto lower, then the two
	// remaining doubles onto each other.
	VADDPD       Y7, Y6, Y6
	VEXTRACTF128 $1, Y6, X0
	VADDPD       X0, X6, X6
	VPERMILPD    $1, X6, X0
	VADDSD       X0, X6, X6
	VZEROUPPER
	MOVSD        X6, ret+24(FP)
	RET
