//go:build !amd64

package vec

func dot32(a, b []float32) float64 { return dot32Generic(a, b) }

func sqdist32(a, b []float32) float64 { return sqdist32Generic(a, b) }

func cosine32(a, b []float32) (d, na, nb float64) { return cosine32Generic(a, b) }

func axpy32(dst []float32, alpha float32, x []float32) { axpy32Generic(dst, alpha, x) }
