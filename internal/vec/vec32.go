// Float32 kernels for the serving store. The serving pipeline holds its
// matrix and norms as float32 (snapshots already round to float32 on
// disk, so the narrower type loses nothing after one save/load cycle and
// halves memory traffic on the distance kernels). Reductions — Dot32,
// SquaredDistance32, Cosine32, Norm32 — accumulate in float64, so the
// returned scores stay within ulps of the float64 kernels on the same
// (float32-rounded) inputs; elementwise kernels (Axpy32, Scale32, Add32)
// round per element, error ≤ 2^-24 relative.
//
// On amd64 with AVX2+FMA the reductions widen with VCVTPS2PD in
// registers and fuse into float64 FMA accumulators (see dot32_amd64.s):
// half the memory traffic of the float64 kernels with float64-grade
// accumulation.
package vec

import (
	"fmt"
	"math"
)

// Dot32 returns the inner product of a and b, accumulated in float64.
// It panics if the lengths differ.
func Dot32(a, b []float32) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: Dot32 length mismatch %d != %d", len(a), len(b)))
	}
	return dot32(a, b)
}

// dot32Generic is the portable kernel and the reference the assembly is
// property-tested against. Four independent float64 accumulators, same
// pipelining rationale as dotGeneric.
func dot32Generic(a, b []float32) float64 {
	b = b[:len(a)]
	var s0, s1, s2, s3 float64
	for len(a) >= 4 && len(b) >= 4 {
		s0 += float64(a[0]) * float64(b[0])
		s1 += float64(a[1]) * float64(b[1])
		s2 += float64(a[2]) * float64(b[2])
		s3 += float64(a[3]) * float64(b[3])
		a, b = a[4:], b[4:]
	}
	for i := range a {
		s0 += float64(a[i]) * float64(b[i])
	}
	return (s0 + s1) + (s2 + s3)
}

// Norm32 returns the Euclidean (L2) norm of a, accumulated in float64.
func Norm32(a []float32) float64 {
	return math.Sqrt(Dot32(a, a))
}

// SquaredDistance32 returns ||a-b||^2 with float64 accumulation.
func SquaredDistance32(a, b []float32) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: SquaredDistance32 length mismatch %d != %d", len(a), len(b)))
	}
	return sqdist32(a, b)
}

func sqdist32Generic(a, b []float32) float64 {
	b = b[:len(a)]
	var s0, s1, s2, s3 float64
	for len(a) >= 4 && len(b) >= 4 {
		d0 := float64(a[0]) - float64(b[0])
		d1 := float64(a[1]) - float64(b[1])
		d2 := float64(a[2]) - float64(b[2])
		d3 := float64(a[3]) - float64(b[3])
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
		a, b = a[4:], b[4:]
	}
	for i := range a {
		d := float64(a[i]) - float64(b[i])
		s0 += d * d
	}
	return (s0 + s1) + (s2 + s3)
}

// Cosine32 returns the cosine similarity of a and b. Like Cosine, a zero
// vector has similarity 0 with everything, and the dot product and both
// squared norms come from one fused pass over the data.
func Cosine32(a, b []float32) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: Cosine32 length mismatch %d != %d", len(a), len(b)))
	}
	d, na, nb := cosine32(a, b)
	if na == 0 || nb == 0 {
		return 0
	}
	return d / (math.Sqrt(na) * math.Sqrt(nb))
}

// cosine32Generic returns the three partial sums (dot, ||a||^2, ||b||^2)
// of the fused cosine pass; the caller combines them.
func cosine32Generic(a, b []float32) (d, na, nb float64) {
	b = b[:len(a)]
	var d0, d1, na0, na1, nb0, nb1 float64
	for len(a) >= 2 && len(b) >= 2 {
		x0, y0 := float64(a[0]), float64(b[0])
		x1, y1 := float64(a[1]), float64(b[1])
		d0 += x0 * y0
		d1 += x1 * y1
		na0 += x0 * x0
		na1 += x1 * x1
		nb0 += y0 * y0
		nb1 += y1 * y1
		a, b = a[2:], b[2:]
	}
	for i := range a {
		x, y := float64(a[i]), float64(b[i])
		d0 += x * y
		na0 += x * x
		nb0 += y * y
	}
	return d0 + d1, na0 + na1, nb0 + nb1
}

// Axpy32 computes dst += alpha*x element-wise in float32. Each element is
// independent, so the result is the correctly rounded float32 of the
// per-element FMA (or its two-rounding scalar equivalent) — relative
// error ≤ 2^-24, far inside the serving tolerance.
func Axpy32(dst []float32, alpha float32, x []float32) {
	if len(dst) != len(x) {
		panic(fmt.Sprintf("vec: Axpy32 length mismatch %d != %d", len(dst), len(x)))
	}
	axpy32(dst, alpha, x)
}

func axpy32Generic(dst []float32, alpha float32, x []float32) {
	x = x[:len(dst)]
	for len(dst) >= 4 && len(x) >= 4 {
		dst[0] += alpha * x[0]
		dst[1] += alpha * x[1]
		dst[2] += alpha * x[2]
		dst[3] += alpha * x[3]
		dst, x = dst[4:], x[4:]
	}
	for i := range dst {
		dst[i] += alpha * x[i]
	}
}

// Scale32 multiplies every element of a by alpha in place.
func Scale32(a []float32, alpha float32) {
	for i := range a {
		a[i] *= alpha
	}
}

// Add32 computes dst = a + b. dst may alias a or b.
func Add32(dst, a, b []float32) {
	if len(a) != len(b) || len(dst) != len(a) {
		panic("vec: Add32 length mismatch")
	}
	for i := range a {
		dst[i] = a[i] + b[i]
	}
}

// Zero32 sets every element of a to 0.
func Zero32(a []float32) {
	for i := range a {
		a[i] = 0
	}
}

// Clone32 returns a fresh copy of a.
func Clone32(a []float32) []float32 {
	out := make([]float32, len(a))
	copy(out, a)
	return out
}

// IsZero32 reports whether every element of a is exactly 0.
func IsZero32(a []float32) bool {
	for _, v := range a {
		if v != 0 {
			return false
		}
	}
	return true
}

// Normalize32 scales a to unit L2 norm in place (norm computed in
// float64, applied as one float32 multiply per element) and returns the
// original norm. A zero vector is left unchanged and 0 is returned.
func Normalize32(a []float32) float64 {
	n := Norm32(a)
	if n == 0 {
		return 0
	}
	inv := float32(1 / n)
	for i := range a {
		a[i] *= inv
	}
	return n
}

// Widen copies the float32 vector a into dst, which must have the same
// length, and returns dst. Widening is exact.
func Widen(dst []float64, a []float32) []float64 {
	if len(dst) != len(a) {
		panic(fmt.Sprintf("vec: Widen length mismatch %d != %d", len(dst), len(a)))
	}
	for i, v := range a {
		dst[i] = float64(v)
	}
	return dst
}

// Narrow rounds the float64 vector a into dst, which must have the same
// length, and returns dst. This is the single rounding step at the store
// boundary — the same rounding a snapshot save applies.
func Narrow(dst []float32, a []float64) []float32 {
	if len(dst) != len(a) {
		panic(fmt.Sprintf("vec: Narrow length mismatch %d != %d", len(dst), len(a)))
	}
	for i, v := range a {
		dst[i] = float32(v)
	}
	return dst
}
