//go:build amd64

package vec

import "github.com/retrodb/retro/internal/cpu"

// dotBlocksFMA is implemented in dot_amd64.s: the float64 inner product
// over blocks*8 elements via VFMADD231PD on two independent ymm
// accumulators. Only reachable when cpu.HasFMA() (which implies AVX2 is
// both present and uncapped).
//
//go:noescape
func dotBlocksFMA(a, b *float64, blocks int) float64

func dot(a, b []float64) float64 {
	if !cpu.HasFMA() {
		return dotGeneric(a, b)
	}
	n := len(a)
	var s float64
	if blocks := n / 8; blocks > 0 {
		s = dotBlocksFMA(&a[0], &b[0], blocks)
	}
	for i := n &^ 7; i < n; i++ {
		s += a[i] * b[i]
	}
	return s
}
