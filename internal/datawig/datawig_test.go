package datawig

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/retrodb/retro/internal/vec"
)

// categoryRows fabricates app-store-like rows where the name weakly and a
// description strongly indicate the category.
func categoryRows(rng *rand.Rand, n int) ([][]string, []int) {
	vocab := map[int][]string{
		0: {"photo", "camera", "filter", "image"},
		1: {"loan", "bank", "finance", "budget"},
		2: {"puzzle", "arcade", "score", "level"},
	}
	rows := make([][]string, n)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		cls := rng.Intn(3)
		labels[i] = cls
		words := vocab[cls]
		desc := ""
		for w := 0; w < 4; w++ {
			desc += words[rng.Intn(len(words))] + " "
		}
		rows[i] = []string{fmt.Sprintf("app%03d", i), desc}
	}
	return rows, labels
}

func TestFeaturizeShapeAndNorm(t *testing.T) {
	cfg := Config{HashDim: 64}
	f := Featurize([]string{"hello", "world"}, cfg)
	if len(f) != 64 {
		t.Fatalf("len = %d", len(f))
	}
	n := vec.Norm(f)
	if n < 0.999 || n > 1.001 {
		t.Fatalf("norm = %v", n)
	}
	// Empty input -> zero vector.
	if !vec.IsZero(Featurize([]string{"", " "}, cfg)) {
		t.Fatal("empty input should featurise to zero")
	}
}

func TestFeaturizeColumnSensitive(t *testing.T) {
	cfg := Config{HashDim: 128}
	a := Featurize([]string{"alpha", ""}, cfg)
	b := Featurize([]string{"", "alpha"}, cfg)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("same token in different columns must hash differently")
	}
}

func TestTrainPredictMLP(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	rows, labels := categoryRows(rng, 150)
	imp, err := Train(rows, labels, 3, Config{Seed: 2, Epochs: 80})
	if err != nil {
		t.Fatal(err)
	}
	testRows, testLabels := categoryRows(rng, 60)
	if acc := imp.Accuracy(testRows, testLabels); acc < 0.8 {
		t.Fatalf("MLP imputer accuracy = %v", acc)
	}
}

func TestTrainPredictLSTM(t *testing.T) {
	if testing.Short() {
		t.Skip("LSTM training is slow")
	}
	rng := rand.New(rand.NewSource(2))
	rows, labels := categoryRows(rng, 80)
	imp, err := Train(rows, labels, 3, Config{Encoder: NGramLSTM, Seed: 3, Epochs: 8, Hidden: 32})
	if err != nil {
		t.Fatal(err)
	}
	if acc := imp.Accuracy(rows, labels); acc < 0.7 {
		t.Fatalf("LSTM imputer train accuracy = %v", acc)
	}
}

func TestTrainValidation(t *testing.T) {
	if _, err := Train(nil, nil, 2, Config{}); err == nil {
		t.Fatal("empty training accepted")
	}
	if _, err := Train([][]string{{"a"}, {"b"}}, []int{0}, 2, Config{}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := Train([][]string{{"a"}, {"b"}}, []int{0, 1}, 1, Config{}); err == nil {
		t.Fatal("single class accepted")
	}
	if _, err := Train([][]string{{"a"}, {"b"}}, []int{0, 7}, 2, Config{}); err == nil {
		t.Fatal("out-of-range label accepted")
	}
}

func TestTokenSequence(t *testing.T) {
	cfg := Config{HashDim: 32}
	seq := tokenSequence([]string{"two words", "third"}, cfg)
	if seq.Rows != 3 || seq.Cols != 32 {
		t.Fatalf("shape = %dx%d", seq.Rows, seq.Cols)
	}
	empty := tokenSequence([]string{""}, cfg)
	if empty.Rows != 1 || !vec.IsZero(empty.Row(0)) {
		t.Fatal("empty sequence handling wrong")
	}
	// Length cap.
	long := make([]string, 1)
	for i := 0; i < 50; i++ {
		long[0] += "tok "
	}
	if got := tokenSequence(long, cfg); got.Rows > 32 {
		t.Fatalf("sequence not capped: %d", got.Rows)
	}
}

func TestEncoderString(t *testing.T) {
	if NGramMLP.String() != "ngram-mlp" || NGramLSTM.String() != "ngram-lstm" {
		t.Fatal("encoder names wrong")
	}
	if Encoder(9).String() == "" {
		t.Fatal("unknown encoder should render")
	}
}

func TestAccuracyEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	rows, labels := categoryRows(rng, 20)
	imp, err := Train(rows, labels, 3, Config{Seed: 5, Epochs: 10})
	if err != nil {
		t.Fatal(err)
	}
	if acc := imp.Accuracy(nil, nil); acc == acc { // NaN check
		t.Fatal("empty accuracy should be NaN")
	}
}
