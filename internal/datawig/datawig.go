// Package datawig reimplements the DataWig category imputer (Biessmann et
// al. 2018) used as the DTWG baseline of §5.4-5.5: text values of a
// *single table* are featurised by hashed character n-grams and fed to a
// neural classifier that predicts the target column's category.
//
// Two encoders are provided: the default feed-forward network over the
// pooled n-gram hash vector, and an LSTM over the per-token hash vectors
// (closer to the original paper's recurrent encoder, slower). Crucially —
// and faithfully to the baseline's role in the evaluation — the imputer
// never sees other tables: no foreign-key traversal, which is exactly why
// RETRO beats it when the signal lives in related tables.
package datawig

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"strings"

	"github.com/retrodb/retro/internal/nn"
	"github.com/retrodb/retro/internal/vec"
)

// Encoder selects the text encoder.
type Encoder uint8

const (
	// NGramMLP pools hashed n-grams into one vector for an MLP (default).
	NGramMLP Encoder = iota
	// NGramLSTM feeds per-token hash vectors through an LSTM.
	NGramLSTM
)

func (e Encoder) String() string {
	switch e {
	case NGramMLP:
		return "ngram-mlp"
	case NGramLSTM:
		return "ngram-lstm"
	default:
		return fmt.Sprintf("Encoder(%d)", uint8(e))
	}
}

// Config tunes the imputer.
type Config struct {
	Encoder   Encoder
	NGramMin  int     // smallest n-gram (default 2)
	NGramMax  int     // largest n-gram (default 4)
	HashDim   int     // feature buckets (default 256)
	Hidden    int     // hidden width (default 64)
	Epochs    int     // default 150 (MLP) / 30 (LSTM)
	BatchSize int     // default 16
	Patience  int     // default 25
	LearnRate float64 // default 0.005
	Seed      int64
}

func (c Config) withDefaults() Config {
	if c.NGramMin <= 0 {
		c.NGramMin = 2
	}
	if c.NGramMax < c.NGramMin {
		c.NGramMax = c.NGramMin + 2
	}
	if c.HashDim <= 0 {
		c.HashDim = 256
	}
	if c.Hidden <= 0 {
		c.Hidden = 64
	}
	if c.Epochs <= 0 {
		if c.Encoder == NGramLSTM {
			c.Epochs = 30
		} else {
			c.Epochs = 150
		}
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 16
	}
	if c.Patience <= 0 {
		c.Patience = 25
	}
	if c.LearnRate <= 0 {
		c.LearnRate = 0.005
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Imputer is a trained model.
type Imputer struct {
	cfg     Config
	classes int

	// MLP path.
	mlp *nn.Sequential

	// LSTM path.
	lstm    *nn.LSTM
	readout *nn.Dense
}

// Featurize hashes the character n-grams of all input cells into one
// L2-normalised vector. Cells are joined with a column marker so the same
// token in different columns hashes differently (DataWig receives the
// column structure of the spreadsheet).
func Featurize(cells []string, cfg Config) []float64 {
	cfg = cfg.withDefaults()
	out := make([]float64, cfg.HashDim)
	for ci, cell := range cells {
		addNGrams(out, cell, ci, cfg)
	}
	vec.Normalize(out)
	return out
}

func addNGrams(dst []float64, cell string, colIdx int, cfg Config) {
	s := strings.ToLower(strings.TrimSpace(cell))
	if s == "" {
		return
	}
	runes := []rune(s)
	for n := cfg.NGramMin; n <= cfg.NGramMax; n++ {
		for i := 0; i+n <= len(runes); i++ {
			h := fnv.New32a()
			fmt.Fprintf(h, "%d|%s", colIdx, string(runes[i:i+n]))
			dst[int(h.Sum32())%len(dst)]++
		}
	}
}

// tokenSequence featurises each whitespace token separately for the LSTM
// encoder; empty input yields a single zero row.
func tokenSequence(cells []string, cfg Config) *vec.Matrix {
	cfg = cfg.withDefaults()
	var rows [][]float64
	for ci, cell := range cells {
		for _, tok := range strings.Fields(cell) {
			row := make([]float64, cfg.HashDim)
			addNGrams(row, tok, ci, cfg)
			vec.Normalize(row)
			rows = append(rows, row)
		}
	}
	if len(rows) == 0 {
		rows = [][]float64{make([]float64, cfg.HashDim)}
	}
	if len(rows) > 32 {
		rows = rows[:32] // cap sequence length, as DataWig does
	}
	return vec.NewMatrixFrom(rows)
}

// Train fits an imputer on spreadsheet rows (each a slice of input cells,
// NOT including the target column) labelled with class ids.
func Train(rows [][]string, labels []int, numClasses int, cfg Config) (*Imputer, error) {
	cfg = cfg.withDefaults()
	if len(rows) != len(labels) {
		return nil, fmt.Errorf("datawig: %d rows vs %d labels", len(rows), len(labels))
	}
	if len(rows) < 2 {
		return nil, fmt.Errorf("datawig: need at least 2 rows")
	}
	if numClasses < 2 {
		return nil, fmt.Errorf("datawig: need at least 2 classes")
	}
	for _, l := range labels {
		if l < 0 || l >= numClasses {
			return nil, fmt.Errorf("datawig: label %d outside %d classes", l, numClasses)
		}
	}
	imp := &Imputer{cfg: cfg, classes: numClasses}
	if cfg.Encoder == NGramLSTM {
		return imp, imp.trainLSTM(rows, labels)
	}
	return imp, imp.trainMLP(rows, labels)
}

func (imp *Imputer) trainMLP(rows [][]string, labels []int) error {
	cfg := imp.cfg
	x := vec.NewMatrix(len(rows), cfg.HashDim)
	for i, r := range rows {
		copy(x.Row(i), Featurize(r, cfg))
	}
	y := vec.NewMatrix(len(labels), imp.classes)
	for i, l := range labels {
		y.Set(i, l, 1)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	imp.mlp = nn.NewSequential(nn.CCELoss{},
		nn.NewDense(cfg.HashDim, cfg.Hidden, rng),
		nn.NewActivation(nn.ReLU),
		nn.NewDense(cfg.Hidden, imp.classes, rng),
	)
	_, err := nn.Fit(imp.mlp, x, y, nn.TrainConfig{
		Epochs:    cfg.Epochs,
		BatchSize: cfg.BatchSize,
		Patience:  cfg.Patience,
		Optimizer: nn.NewNadam(cfg.LearnRate),
		Seed:      cfg.Seed,
	})
	return err
}

func (imp *Imputer) trainLSTM(rows [][]string, labels []int) error {
	cfg := imp.cfg
	rng := rand.New(rand.NewSource(cfg.Seed))
	imp.lstm = nn.NewLSTM(cfg.HashDim, cfg.Hidden, rng)
	imp.readout = nn.NewDense(cfg.Hidden, imp.classes, rng)
	params := append(imp.lstm.Params(), imp.readout.Params()...)
	opt := nn.NewNadam(cfg.LearnRate)
	loss := nn.CCELoss{}

	seqs := make([]*vec.Matrix, len(rows))
	for i, r := range rows {
		seqs[i] = tokenSequence(r, cfg)
	}
	order := rng.Perm(len(rows))
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, idx := range order {
			h := imp.lstm.ForwardSeq(seqs[idx])
			hm := vec.NewMatrixFrom([][]float64{h})
			logits := imp.readout.Forward(hm, true)
			y := vec.NewMatrix(1, imp.classes)
			y.Set(0, labels[idx], 1)
			_, grad := loss.Eval(logits, y)
			dh := imp.readout.Backward(grad)
			imp.lstm.BackwardSeq(dh.Row(0))
			opt.Step(params)
		}
	}
	return nil
}

// Predict returns the imputed class for one row of input cells.
func (imp *Imputer) Predict(row []string) int {
	if imp.cfg.Encoder == NGramLSTM {
		h := imp.lstm.ForwardSeq(tokenSequence(row, imp.cfg))
		logits := imp.readout.Forward(vec.NewMatrixFrom([][]float64{h}), false)
		return vec.ArgMax(logits.Row(0))
	}
	x := vec.NewMatrixFrom([][]float64{Featurize(row, imp.cfg)})
	logits := imp.mlp.Forward(x, false)
	return vec.ArgMax(logits.Row(0))
}

// Accuracy evaluates top-1 accuracy on a labelled test set.
func (imp *Imputer) Accuracy(rows [][]string, labels []int) float64 {
	if len(rows) == 0 {
		return math.NaN()
	}
	correct := 0
	for i, r := range rows {
		if imp.Predict(r) == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(rows))
}
