package core

import (
	"runtime"
	"sync"

	"github.com/retrodb/retro/internal/vec"
)

// Parallel solving: the paper measures single-threaded runtimes (§5.3),
// but both iterations are Jacobi-style — every row of W^{k+1} depends
// only on W^k — so the per-iteration work parallelises embarrassingly
// over row ranges. SolveROParallel/SolveRNParallel split each phase
// across workers; results are bit-identical to the sequential solvers
// (verified by tests) because the row partition does not change any
// floating-point evaluation order within a row.

// ParallelOptions extends SolveOptions with a worker count.
type ParallelOptions struct {
	SolveOptions
	// Workers defaults to GOMAXPROCS.
	Workers int
}

func (o ParallelOptions) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// parallelRows runs fn over [0, n) split into contiguous worker ranges.
func parallelRows(n, workers int, fn func(lo, hi int)) {
	parallelRowsIdx(n, workers, func(_, lo, hi int) { fn(lo, hi) })
}

// parallelRowsIdx is parallelRows with a stable worker slot passed to
// fn, so callers can index per-worker scratch buffers allocated once per
// solve instead of allocating inside the hot closure. Slots are dense in
// [0, workers).
func parallelRowsIdx(n, workers int, fn func(worker, lo, hi int)) {
	if workers <= 1 || n < 2*workers {
		fn(0, 0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for lo, w := 0, 0; lo < n; lo, w = lo+chunk, w+1 {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			fn(w, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
}

// SolveROParallel is SolveRO with row-parallel iterations. The eq. (15)
// negative-term optimisation is used unconditionally.
func SolveROParallel(p *Problem, h Hyperparams, opts ParallelOptions) *Result {
	h = h.withDefaults()
	w := deriveWeights(p, h)
	workers := opts.workers()

	d := make([]float64, p.N)
	parallelRows(p.N, workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			d[i] = w.alpha[i] + w.beta[i]
		}
	})
	for gi := range p.Groups {
		g := &p.Groups[gi]
		gammaSelf := w.gamma[gi]
		gammaInv := w.gamma[g.Inverse]
		dg := w.deltaRO[gi]
		parallelRows(p.N, workers, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				od := g.OutDeg(i)
				if od == 0 {
					continue
				}
				base, extra := g.TargetLists(i)
				for _, j := range base {
					d[i] += gammaSelf[i] + gammaInv[int(j)]
				}
				for _, j := range extra {
					d[i] += gammaSelf[i] + gammaInv[int(j)]
				}
				d[i] -= 2 * dg * float64(g.TargetCount-od)
			}
		})
	}

	cur := p.W0.Clone()
	next := vec.NewMatrix(p.N, p.Dim)
	res := &Result{Iterations: h.Iterations}
	sumT := make([]float64, p.Dim)
	// Per-worker neighbour-sum scratch, allocated once for the whole
	// solve: the eq. (15) pass needs a p.Dim accumulator per worker, and
	// allocating it inside the parallel closure cost one allocation per
	// group x iteration x worker.
	nbrScratch := vec.NewMatrix(workers, p.Dim)

	for iter := 0; iter < h.Iterations; iter++ {
		parallelRows(p.N, workers, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				row := next.Row(i)
				vec.Zero(row)
				vec.Axpy(row, w.alpha[i], p.W0.Row(i))
				if w.beta[i] != 0 {
					vec.Axpy(row, w.beta[i], p.Centroids.Row(i))
				}
			}
		})
		for gi := range p.Groups {
			g := &p.Groups[gi]
			gammaSelf := w.gamma[gi]
			gammaInv := w.gamma[g.Inverse]
			dg := w.deltaRO[gi]

			parallelRows(p.N, workers, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					if g.OutDeg(i) == 0 {
						continue
					}
					row := next.Row(i)
					base, extra := g.TargetLists(i)
					for _, j32 := range base {
						j := int(j32)
						vec.Axpy(row, gammaSelf[i]+gammaInv[j], cur.Row(j))
					}
					for _, j32 := range extra {
						j := int(j32)
						vec.Axpy(row, gammaSelf[i]+gammaInv[j], cur.Row(j))
					}
				}
			})
			if dg == 0 {
				continue
			}
			// The shared target sum is sequential (cheap, one pass).
			vec.Zero(sumT)
			for k := 0; k < p.N; k++ {
				if g.TargetSet[k] {
					vec.Axpy(sumT, 1, cur.Row(k))
				}
			}
			parallelRowsIdx(p.N, workers, func(worker, lo, hi int) {
				nbrSum := nbrScratch.Row(worker)
				for i := lo; i < hi; i++ {
					if !g.SourceSet[i] {
						continue
					}
					vec.Zero(nbrSum)
					base, extra := g.TargetLists(i)
					for _, j := range base {
						vec.Axpy(nbrSum, 1, cur.Row(int(j)))
					}
					for _, j := range extra {
						vec.Axpy(nbrSum, 1, cur.Row(int(j)))
					}
					row := next.Row(i)
					vec.Axpy(row, -2*dg, sumT)
					vec.Axpy(row, 2*dg, nbrSum)
				}
			})
		}
		parallelRows(p.N, workers, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				if d[i] != 0 {
					vec.Scale(next.Row(i), 1/d[i])
				}
			}
		})
		cur, next = next, cur
		if opts.TrackLoss {
			res.LossHistory = append(res.LossHistory, Loss(p, h, cur))
		}
	}
	res.W = cur
	return res
}

// SolveRNParallel is SolveRN with row-parallel iterations.
func SolveRNParallel(p *Problem, h Hyperparams, opts ParallelOptions) *Result {
	h = h.withDefaults()
	w := deriveWeights(p, h)
	workers := opts.workers()

	cur := p.W0.Clone()
	next := vec.NewMatrix(p.N, p.Dim)
	res := &Result{Iterations: h.Iterations}
	sumT := make([]float64, p.Dim)

	for iter := 0; iter < h.Iterations; iter++ {
		parallelRows(p.N, workers, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				row := next.Row(i)
				vec.Zero(row)
				vec.Axpy(row, w.alpha[i], p.W0.Row(i))
				if w.beta[i] != 0 {
					vec.Axpy(row, w.beta[i], p.Centroids.Row(i))
				}
			}
		})
		for gi := range p.Groups {
			g := &p.Groups[gi]
			gamma := w.gamma[gi]
			deltaRN := w.deltaRN[gi]
			parallelRows(p.N, workers, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					if g.OutDeg(i) == 0 {
						continue
					}
					row := next.Row(i)
					base, extra := g.TargetLists(i)
					for _, j := range base {
						vec.Axpy(row, gamma[i], cur.Row(int(j)))
					}
					for _, j := range extra {
						vec.Axpy(row, gamma[i], cur.Row(int(j)))
					}
				}
			})
			if h.Delta == 0 {
				continue
			}
			vec.Zero(sumT)
			for k := 0; k < p.N; k++ {
				if g.TargetSet[k] {
					vec.Axpy(sumT, 1, cur.Row(k))
				}
			}
			parallelRows(p.N, workers, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					if deltaRN[i] != 0 {
						vec.Axpy(next.Row(i), -deltaRN[i], sumT)
					}
				}
			})
		}
		parallelRows(p.N, workers, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				vec.Normalize(next.Row(i))
			}
		})
		cur, next = next, cur
		if opts.TrackLoss {
			res.LossHistory = append(res.LossHistory, Loss(p, h, cur))
		}
	}
	res.W = cur
	return res
}
