package core

import (
	"fmt"

	"github.com/retrodb/retro/internal/extract"
	"github.com/retrodb/retro/internal/tokenize"
	"github.com/retrodb/retro/internal/vec"
)

// GroupNode addresses one node within one directed group.
type GroupNode struct {
	Group, Node int
}

// GrowthReport describes what GrowProblem changed, in the terms the
// incremental-repair machinery needs: which nodes are new, which nodes a
// repair should seed from, and which (group, node) target memberships
// appeared (IncrementalState.Grow folds those into the target sums).
type GrowthReport struct {
	// OldN is the node count before the growth.
	OldN int
	// NewNodes are the appended node ids, ascending.
	NewNodes []int
	// Seeds are the repair seeds: every new node plus every pre-existing
	// node that gained an edge, deduplicated in discovery order.
	Seeds []int
	// NewTargets lists nodes that newly joined a group's target set.
	NewTargets []GroupNode
	// NewGroupPairs counts appended forward/inverse group pairs.
	NewGroupPairs int
}

// GrowProblem extends an already-built problem in place from an
// extraction delta: new values extend W0/Centroids/bookkeeping, new
// relation groups are appended, and new edges land in the groups'
// overflow adjacency. Nothing existing is rebuilt, so the cost is
// proportional to the delta (plus O(|groups| · new values) bookkeeping),
// not to the problem — the property that keeps single-row inserts flat
// in database size.
//
// ex must be the same extraction p was built from, already advanced by
// ApplyInserts; d is that call's delta.
func GrowProblem(p *Problem, ex *extract.Extraction, tok *tokenize.Tokenizer, d *extract.Delta) (*GrowthReport, error) {
	oldN := p.N
	oldRels := len(ex.Relations) - len(d.NewRelations)
	if len(ex.Values)-len(d.NewValues) != oldN {
		return nil, fmt.Errorf("core: grow: problem has %d nodes but extraction had %d before the delta",
			oldN, len(ex.Values)-len(d.NewValues))
	}
	if len(p.Groups) != 2*oldRels {
		return nil, fmt.Errorf("core: grow: problem has %d groups but extraction had %d relations before the delta",
			len(p.Groups), oldRels)
	}
	for k, id := range d.NewValues {
		if id != oldN+k {
			return nil, fmt.Errorf("core: grow: non-contiguous new value id %d (want %d)", id, oldN+k)
		}
	}
	if p.catSums == nil || p.catCounts == nil {
		return nil, fmt.Errorf("core: grow: problem has no category sums (built by a constructor that predates growth support)")
	}
	rep := &GrowthReport{OldN: oldN}
	newN := len(ex.Values)

	// New categories (rare: a table or column that appeared after the
	// base extraction).
	if len(ex.Categories) > len(p.catCounts) {
		p.catSums.GrowRows(len(ex.Categories))
		for len(p.catCounts) < len(ex.Categories) {
			p.catCounts = append(p.catCounts, 0)
		}
	}

	// New values: initial vectors, labels, category bookkeeping.
	if newN > oldN {
		p.W0.GrowRows(newN)
		p.Centroids.GrowRows(newN)
		for _, id := range d.NewValues {
			v := ex.Values[id]
			initial, _ := tok.InitialVector(v.Text)
			copy(p.W0.Row(id), initial)
			p.CategoryOf = append(p.CategoryOf, v.Category)
			p.Labels = append(p.Labels, v.Text)
			p.NumRelTypes = append(p.NumRelTypes, 0)
			vec.Axpy(p.catSums.Row(v.Category), 1, p.W0.Row(id))
			p.catCounts[v.Category]++
			rep.NewNodes = append(rep.NewNodes, id)
		}
		p.N = newN
	}

	// Every group's membership sets must cover the new nodes.
	for gi := range p.Groups {
		g := &p.Groups[gi]
		for len(g.SourceSet) < newN {
			g.SourceSet = append(g.SourceSet, false)
			g.TargetSet = append(g.TargetSet, false)
		}
	}

	// Append forward/inverse pairs for relations born in this delta.
	for _, rid := range d.NewRelations {
		if 2*rid != len(p.Groups) {
			return nil, fmt.Errorf("core: grow: new relation %d does not extend the group list (len %d)", rid, len(p.Groups))
		}
		name := ex.Relations[rid].Name
		fi := len(p.Groups)
		p.Groups = append(p.Groups,
			Group{Name: name, Inverse: fi + 1, SourceSet: make([]bool, newN), TargetSet: make([]bool, newN)},
			Group{Name: name + "~inv", Inverse: fi, SourceSet: make([]bool, newN), TargetSet: make([]bool, newN)},
		)
		rep.NewGroupPairs++
	}

	// Append the delta edges into the overflow adjacency, forward and
	// inverse, maintaining counts and |R_i|.
	seedSeen := make(map[int]bool, 2*len(d.Edges)+len(rep.NewNodes))
	seed := func(i int) {
		if !seedSeen[i] {
			seedSeen[i] = true
			rep.Seeds = append(rep.Seeds, i)
		}
	}
	for _, i := range rep.NewNodes {
		seed(i)
	}
	relChanged := make(map[int]bool)
	touchedGroups := make(map[int]bool)
	for _, de := range d.Edges {
		if de.Relation < 0 || 2*de.Relation+1 >= len(p.Groups) {
			return nil, fmt.Errorf("core: grow: delta edge references relation %d beyond group list", de.Relation)
		}
		e := de.Edge
		if e.From < 0 || e.From >= newN || e.To < 0 || e.To >= newN {
			return nil, fmt.Errorf("core: grow: delta edge (%d,%d) out of range", e.From, e.To)
		}
		p.appendEdge(2*de.Relation, e.From, e.To, rep, relChanged)
		p.appendEdge(2*de.Relation+1, e.To, e.From, rep, relChanged)
		touchedGroups[2*de.Relation] = true
		touchedGroups[2*de.Relation+1] = true
		seed(e.From)
		seed(e.To)
	}

	// mr(r) caches: a changed |R_i| (or a first-time participant) can only
	// raise the max of the groups the node belongs to.
	for i := range relChanged {
		rt := p.NumRelTypes[i] + 1
		for gi := range p.Groups {
			g := &p.Groups[gi]
			if (g.SourceSet[i] || g.TargetSet[i]) && rt > g.MaxRel {
				g.MaxRel = rt
			}
		}
	}

	// Keep appends amortised O(1): once a group's overflow outgrows a
	// fraction of its base CSR, fold it in.
	for gi := range touchedGroups {
		g := &p.Groups[gi]
		if g.extraEdges > len(g.Targets)/4+32 {
			g.compact(newN)
		}
	}

	// Fresh centroid rows for the new values; pre-existing members of the
	// same categories are refreshed by the caller for the repair set only
	// (their rows are unread until they are re-solved).
	p.RefreshCentroids(rep.NewNodes)
	return rep, nil
}

// appendEdge adds one directed edge to group gi's overflow, updating
// membership sets, counts and NumRelTypes. Callers guarantee the edge is
// not already present (extract deduplicates deltas).
func (p *Problem) appendEdge(gi, from, to int, rep *GrowthReport, relChanged map[int]bool) {
	g := &p.Groups[gi]
	if g.OutDeg(from) == 0 {
		p.NumRelTypes[from]++
		relChanged[from] = true
	}
	if g.extra == nil {
		g.extra = make(map[int32][]int32)
	}
	g.extra[int32(from)] = append(g.extra[int32(from)], int32(to))
	g.extraEdges++
	if !g.SourceSet[from] {
		g.SourceSet[from] = true
		g.SourceCount++
		relChanged[from] = true
	}
	if !g.TargetSet[to] {
		g.TargetSet[to] = true
		g.TargetCount++
		relChanged[to] = true
		rep.NewTargets = append(rep.NewTargets, GroupNode{Group: gi, Node: to})
	}
}

// compact folds the overflow adjacency back into a pure CSR base over n
// nodes. Per-source target order (base first, appended after) is
// preserved.
func (g *Group) compact(n int) {
	if g.extraEdges == 0 {
		return
	}
	total := len(g.Targets) + g.extraEdges
	rowPtr := make([]int, n+1)
	for i := 0; i < n; i++ {
		rowPtr[i+1] = rowPtr[i] + g.OutDeg(i)
	}
	targets := make([]int32, total)
	for i := 0; i < n; i++ {
		at := rowPtr[i]
		base, extra := g.TargetLists(i)
		at += copy(targets[at:], base)
		copy(targets[at:], extra)
	}
	g.RowPtr = rowPtr
	g.Targets = targets
	g.extra = nil
	g.extraEdges = 0
}
