package core

import (
	"math"
	"testing"

	"github.com/retrodb/retro/internal/embed"
	"github.com/retrodb/retro/internal/extract"
	"github.com/retrodb/retro/internal/reldb"
	"github.com/retrodb/retro/internal/tokenize"
	"github.com/retrodb/retro/internal/vec"
)

func dbFixture(t *testing.T) (*extract.Extraction, *tokenize.Tokenizer) {
	t.Helper()
	db := reldb.New()
	db.MustExec(`CREATE TABLE movies (id INT PRIMARY KEY, title TEXT, country TEXT)`)
	db.MustExec(`INSERT INTO movies VALUES
		(1, 'inception', 'usa'),
		(2, 'godfather', 'usa'),
		(3, 'amelie', 'france'),
		(4, 'zorgon', 'france')`) // zorgon is OOV
	ex, err := extract.FromDB(db, extract.Options{})
	if err != nil {
		t.Fatal(err)
	}
	store := embed.NewStore(2)
	store.Add("inception", []float64{1.0, 0.2})
	store.Add("godfather", []float64{0.8, -0.3})
	store.Add("amelie", []float64{-0.5, 0.9})
	store.Add("usa", []float64{0.6, -0.8})
	store.Add("france", []float64{-0.9, 0.4})
	return ex, tokenize.New(store)
}

func TestBuildProblemFromDB(t *testing.T) {
	ex, tok := dbFixture(t)
	p := BuildProblem(ex, tok)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.N != 6 { // 4 titles + 2 countries
		t.Fatalf("N = %d", p.N)
	}
	if p.Dim != 2 {
		t.Fatalf("Dim = %d", p.Dim)
	}
	// OOV title gets a null initial vector.
	zorgon, ok := ex.Lookup("movies", "title", "zorgon")
	if !ok {
		t.Fatal("zorgon missing")
	}
	if !vec.IsZero(p.W0.Row(zorgon)) {
		t.Fatalf("OOV initial vector = %v", p.W0.Row(zorgon))
	}
	// In-vocabulary value keeps its embedding.
	inc, _ := ex.Lookup("movies", "title", "inception")
	if p.W0.Row(inc)[0] != 1.0 {
		t.Fatalf("inception W0 = %v", p.W0.Row(inc))
	}
	// Centroid of the title category = mean of the four title vectors.
	wantX := (1.0 + 0.8 - 0.5 + 0) / 4
	if math.Abs(p.Centroids.Row(inc)[0]-wantX) > 1e-12 {
		t.Fatalf("centroid = %v, want x=%v", p.Centroids.Row(inc), wantX)
	}
	// One forward + one inverse group for title->country.
	if len(p.Groups) != 2 {
		t.Fatalf("groups = %d", len(p.Groups))
	}
	// Labels carried over.
	if p.Labels[inc] != "inception" {
		t.Fatalf("label = %q", p.Labels[inc])
	}
}

func TestSolveFromDBGivesOOVMeaning(t *testing.T) {
	ex, tok := dbFixture(t)
	p := BuildProblem(ex, tok)
	res := SolveRN(p, DefaultRN(), SolveOptions{})
	zorgon, _ := ex.Lookup("movies", "title", "zorgon")
	france, _ := ex.Lookup("movies", "country", "france")
	usa, _ := ex.Lookup("movies", "country", "usa")
	// zorgon (produced in france) must end up closer to france than usa.
	df := vec.SquaredDistance(res.W.Row(zorgon), res.W.Row(france))
	du := vec.SquaredDistance(res.W.Row(zorgon), res.W.Row(usa))
	if df >= du {
		t.Fatalf("OOV placement wrong: d(france)=%v d(usa)=%v", df, du)
	}
}

func TestRetrofittedBetterThanPlainForRelationalLabel(t *testing.T) {
	// The motivating claim (§1): relational retrofitting separates values
	// by their relations even when the word vectors alone do not. The
	// production country of each movie is encoded only relationally.
	ex, tok := dbFixture(t)
	p := BuildProblem(ex, tok)
	res := SolveRO(p, Hyperparams{Alpha: 1, Beta: 0, Gamma: 3, Delta: 3, Iterations: 10}, SolveOptions{})

	inc, _ := ex.Lookup("movies", "title", "inception")
	god, _ := ex.Lookup("movies", "title", "godfather")
	ame, _ := ex.Lookup("movies", "title", "amelie")

	// After retrofitting, the two USA movies are closer to each other
	// than either is to the France movie.
	same := vec.SquaredDistance(res.W.Row(inc), res.W.Row(god))
	cross := vec.SquaredDistance(res.W.Row(inc), res.W.Row(ame))
	if same >= cross {
		t.Fatalf("relational signal not captured: same=%v cross=%v", same, cross)
	}
}
