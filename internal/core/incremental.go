package core

import (
	"fmt"

	"github.com/retrodb/retro/internal/vec"
)

// Variant selects a relational retrofitting solver.
type Variant uint8

const (
	// RO is the optimisation-based solver (eq. 10).
	RO Variant = iota
	// RN is the series-based solver (eq. 11).
	RN
)

func (v Variant) String() string {
	switch v {
	case RO:
		return "RO"
	case RN:
		return "RN"
	default:
		return fmt.Sprintf("Variant(%d)", uint8(v))
	}
}

// Solve dispatches to the selected solver.
func Solve(p *Problem, h Hyperparams, variant Variant, opts SolveOptions) *Result {
	switch variant {
	case RN:
		return SolveRN(p, h, opts)
	default:
		return SolveRO(p, h, opts)
	}
}

// IncrementalOptions tunes incremental maintenance.
type IncrementalOptions struct {
	// MaxIterations bounds the local fixed-point iteration (default 50).
	MaxIterations int
	// Tolerance stops iterating when no dirty vector moves more than this
	// L2 distance in one sweep (default 1e-9).
	Tolerance float64
}

func (o IncrementalOptions) withDefaults() IncrementalOptions {
	if o.MaxIterations <= 0 {
		o.MaxIterations = 50
	}
	if o.Tolerance <= 0 {
		o.Tolerance = 1e-9
	}
	return o
}

// UpdateIncremental re-solves only the given dirty nodes of an
// already-solved embedding in place, holding every other vector fixed.
// This is the §1 "incrementally maintainable" property: after inserting or
// changing rows, rebuild the problem, carry over the old vectors for
// unchanged nodes (the caller aligns rows), and pass the ids of new or
// affected values. Because both updates are contractions toward a fixed
// point, iterating the pointwise updates over the dirty set converges to
// the same values a full re-solve would assign given the fixed
// complement.
//
// Returns the number of sweeps performed.
func UpdateIncremental(p *Problem, w *vec.Matrix, dirty []int, h Hyperparams, variant Variant, opts IncrementalOptions) int {
	opts = opts.withDefaults()
	h = h.withDefaults()
	weights := deriveWeights(p, h)
	buf := make([]float64, p.Dim)

	for sweep := 1; sweep <= opts.MaxIterations; sweep++ {
		maxMove := 0.0
		for _, i := range dirty {
			if i < 0 || i >= p.N {
				continue
			}
			switch variant {
			case RN:
				rnUpdateNode(p, weights, w, i, buf)
			default:
				roUpdateNode(p, weights, w, i, buf)
			}
			move := vec.SquaredDistance(buf, w.Row(i))
			if move > maxMove {
				maxMove = move
			}
			copy(w.Row(i), buf)
		}
		if maxMove <= opts.Tolerance*opts.Tolerance {
			return sweep
		}
	}
	return opts.MaxIterations
}

// AffectedNodes expands a set of seed node ids to every node within
// `hops` relation steps, the neighbourhood worth re-solving after a
// change. hops=0 returns the seeds themselves.
func AffectedNodes(p *Problem, seeds []int, hops int) []int {
	seen := make(map[int]bool, len(seeds))
	frontier := make([]int, 0, len(seeds))
	for _, s := range seeds {
		if s >= 0 && s < p.N && !seen[s] {
			seen[s] = true
			frontier = append(frontier, s)
		}
	}
	for h := 0; h < hops; h++ {
		var next []int
		for _, i := range frontier {
			for gi := range p.Groups {
				g := &p.Groups[gi]
				for k := g.RowPtr[i]; k < g.RowPtr[i+1]; k++ {
					j := int(g.Targets[k])
					if !seen[j] {
						seen[j] = true
						next = append(next, j)
					}
				}
			}
		}
		frontier = next
		if len(frontier) == 0 {
			break
		}
	}
	out := make([]int, 0, len(seen))
	for i := range seen {
		out = append(out, i)
	}
	return out
}
