package core

import (
	"fmt"

	"github.com/retrodb/retro/internal/vec"
)

// Variant selects a relational retrofitting solver.
type Variant uint8

const (
	// RO is the optimisation-based solver (eq. 10).
	RO Variant = iota
	// RN is the series-based solver (eq. 11).
	RN
)

func (v Variant) String() string {
	switch v {
	case RO:
		return "RO"
	case RN:
		return "RN"
	default:
		return fmt.Sprintf("Variant(%d)", uint8(v))
	}
}

// Solve dispatches to the selected solver.
func Solve(p *Problem, h Hyperparams, variant Variant, opts SolveOptions) *Result {
	switch variant {
	case RN:
		return SolveRN(p, h, opts)
	default:
		return SolveRO(p, h, opts)
	}
}

// IncrementalState carries the cross-repair bookkeeping that makes a
// local repair cost proportional to the dirty neighbourhood instead of
// the problem: the per-group Σ_{k∈T_r} v_k target sums that both
// solvers' repulsion terms (eqs. 15/16) need. Recomputing those sums
// inline — as the repair kernels originally did — costs O(n) per dirty
// node; maintaining them across vector updates costs O(dim) per group a
// node belongs to.
//
// The state is bound to one (Problem, W) pair: it must be grown via Grow
// whenever GrowProblem extends the problem, and every change to a row of
// W must go through UpdateIncremental (which keeps the sums in step). If
// W is mutated behind the state's back, discard and rebuild it.
type IncrementalState struct {
	sums [][]float64 // per group: Σ over the group's target set of w rows
}

// NewIncrementalState computes the target sums from scratch: O(n·|R|)
// membership checks plus O(dim) per membership. Done once per session,
// not per insert.
func NewIncrementalState(p *Problem, w *vec.Matrix) *IncrementalState {
	st := &IncrementalState{sums: make([][]float64, len(p.Groups))}
	for gi := range p.Groups {
		sum := make([]float64, p.Dim)
		g := &p.Groups[gi]
		for k := 0; k < p.N; k++ {
			if g.TargetSet[k] {
				vec.Axpy(sum, 1, w.Row(k))
			}
		}
		st.sums[gi] = sum
	}
	return st
}

// Grow extends the state after GrowProblem: new groups get fresh sums and
// every node that newly joined a target set contributes its current
// vector. Call it after the new nodes' vectors are present in w.
func (st *IncrementalState) Grow(p *Problem, w *vec.Matrix, rep *GrowthReport) {
	for len(st.sums) < len(p.Groups) {
		st.sums = append(st.sums, make([]float64, p.Dim))
	}
	for _, gn := range rep.NewTargets {
		vec.Axpy(st.sums[gn.Group], 1, w.Row(gn.Node))
	}
}

// apply folds a single node's vector change into the sums.
func (st *IncrementalState) apply(p *Problem, i int, diff []float64) {
	for gi := range p.Groups {
		if p.Groups[gi].TargetSet[i] {
			vec.Axpy(st.sums[gi], 1, diff)
		}
	}
}

// IncrementalOptions tunes incremental maintenance.
type IncrementalOptions struct {
	// MaxIterations bounds the local fixed-point iteration (default 50).
	MaxIterations int
	// Tolerance stops iterating when no dirty vector moves more than this
	// L2 distance in one sweep (default 1e-9).
	Tolerance float64
	// State reuses cross-repair target sums (see IncrementalState). When
	// nil a fresh state is computed, which costs one O(n·|R|) pass.
	State *IncrementalState
}

func (o IncrementalOptions) withDefaults() IncrementalOptions {
	if o.MaxIterations <= 0 {
		o.MaxIterations = 50
	}
	if o.Tolerance <= 0 {
		o.Tolerance = 1e-9
	}
	return o
}

// UpdateIncremental re-solves only the given dirty nodes of an
// already-solved embedding in place, holding every other vector fixed.
// This is the §1 "incrementally maintainable" property: after inserting
// or changing rows, grow the problem (GrowProblem), carry over the old
// vectors for unchanged nodes, and pass the ids of new or affected
// values. Because both updates are contractions toward a fixed point,
// iterating the pointwise updates over the dirty set converges to the
// same values a full re-solve would assign given the fixed complement.
//
// With a maintained IncrementalState the cost per sweep is proportional
// to the dirty nodes' degrees, independent of the problem size.
//
// Returns the number of sweeps performed.
func UpdateIncremental(p *Problem, w *vec.Matrix, dirty []int, h Hyperparams, variant Variant, opts IncrementalOptions) int {
	opts = opts.withDefaults()
	h = h.withDefaults()
	st := opts.State
	if st == nil {
		st = NewIncrementalState(p, w)
	}
	buf := make([]float64, p.Dim)
	scratch := make([]float64, p.Dim)
	diff := make([]float64, p.Dim)

	for sweep := 1; sweep <= opts.MaxIterations; sweep++ {
		maxMove := 0.0
		for _, i := range dirty {
			if i < 0 || i >= p.N {
				continue
			}
			switch variant {
			case RN:
				rnRepairNode(p, h, st, w, i, buf)
			default:
				roRepairNode(p, h, st, w, i, buf, scratch)
			}
			row := w.Row(i)
			move := 0.0
			for j := range diff {
				d := buf[j] - row[j]
				diff[j] = d
				move += d * d
			}
			if move > maxMove {
				maxMove = move
			}
			if move > 0 {
				copy(row, buf)
				st.apply(p, i, diff)
			}
		}
		if maxMove <= opts.Tolerance*opts.Tolerance {
			return sweep
		}
	}
	return opts.MaxIterations
}

// rnRepairNode is the pointwise eq. (9) update using maintained target
// sums and on-the-fly eq. (12)/(14) coefficients, so one node costs
// O(deg·dim + |R|·dim) instead of O(n·dim).
func rnRepairNode(p *Problem, h Hyperparams, st *IncrementalState, from *vec.Matrix, i int, dst []float64) {
	rt := float64(p.NumRelTypes[i] + 1)
	vec.Zero(dst)
	vec.Axpy(dst, h.Alpha, p.W0.Row(i))
	if beta := h.Beta / rt; beta != 0 {
		vec.Axpy(dst, beta, p.Centroids.Row(i))
	}
	for gi := range p.Groups {
		g := &p.Groups[gi]
		od := g.OutDeg(i)
		if od == 0 {
			continue
		}
		gamma := h.Gamma / (float64(od) * rt)
		base, extra := g.TargetLists(i)
		for _, j := range base {
			vec.Axpy(dst, gamma, from.Row(int(j)))
		}
		for _, j := range extra {
			vec.Axpy(dst, gamma, from.Row(int(j)))
		}
		if h.Delta != 0 && g.TargetCount > 0 {
			vec.Axpy(dst, -h.Delta/(float64(g.TargetCount)*rt), st.sums[gi])
		}
	}
	vec.Normalize(dst)
}

// roRepairNode is the pointwise eq. (8) update with the eq. (15)
// complement trick over maintained target sums: the repulsion over
// Ẽ_r(i) becomes sum(T_r) − sum(neighbours of i), so one node costs
// O(deg·dim + |R|·dim) instead of O(n·dim). scratch must hold dim
// floats.
func roRepairNode(p *Problem, h Hyperparams, st *IncrementalState, from *vec.Matrix, i int, dst, scratch []float64) {
	rt := float64(p.NumRelTypes[i] + 1)
	beta := h.Beta / rt
	vec.Zero(dst)
	vec.Axpy(dst, h.Alpha, p.W0.Row(i))
	if beta != 0 {
		vec.Axpy(dst, beta, p.Centroids.Row(i))
	}
	denom := h.Alpha + beta
	for gi := range p.Groups {
		g := &p.Groups[gi]
		od := g.OutDeg(i)
		if od == 0 {
			continue
		}
		gammaSelf := h.Gamma / (float64(od) * rt)
		inv := &p.Groups[g.Inverse]
		nbrSum := scratch
		vec.Zero(nbrSum)
		attract := func(j int) {
			// γ^r̄_j: j is a target of g, hence a source of the inverse.
			weight := gammaSelf + h.Gamma/(float64(inv.OutDeg(j))*float64(p.NumRelTypes[j]+1))
			vec.Axpy(dst, weight, from.Row(j))
			denom += weight
			vec.Axpy(nbrSum, 1, from.Row(j))
		}
		base, extra := g.TargetLists(i)
		for _, j := range base {
			attract(int(j))
		}
		for _, j := range extra {
			attract(int(j))
		}
		if dg := deltaRO(g, h); dg != 0 {
			vec.Axpy(dst, -2*dg, st.sums[gi])
			vec.Axpy(dst, 2*dg, nbrSum)
			denom -= 2 * dg * float64(g.TargetCount-od)
		}
	}
	if denom != 0 {
		vec.Scale(dst, 1/denom)
	}
}

// AffectedNodes expands a set of seed node ids to every node within
// `hops` relation steps, the neighbourhood worth re-solving after a
// change. hops=0 returns the seeds themselves. The result is in
// deterministic BFS discovery order.
func AffectedNodes(p *Problem, seeds []int, hops int) []int {
	return AffectedNodesBudget(p, seeds, hops, 0)
}

// AffectedNodesBudget is AffectedNodes with a size cap: expansion stops
// once the set holds maxNodes ids (0 = unlimited). In-range seeds are
// always included, even beyond the budget, so newly inserted values are
// never dropped from a repair; the cap only bounds how far their
// influence is chased through the graph — without it, one insert
// touching a high-degree hub value (a language, say) would schedule a
// re-solve of most of the database.
func AffectedNodesBudget(p *Problem, seeds []int, hops, maxNodes int) []int {
	seen := make(map[int]bool, len(seeds))
	out := make([]int, 0, len(seeds))
	for _, s := range seeds {
		if s >= 0 && s < p.N && !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	frontier := out
	for h := 0; h < hops; h++ {
		if maxNodes > 0 && len(out) >= maxNodes {
			break
		}
		var next []int
		for _, i := range frontier {
			for gi := range p.Groups {
				g := &p.Groups[gi]
				base, extra := g.TargetLists(i)
				for _, j32 := range base {
					j := int(j32)
					if !seen[j] {
						seen[j] = true
						out = append(out, j)
						next = append(next, j)
						if maxNodes > 0 && len(out) >= maxNodes {
							return out
						}
					}
				}
				for _, j32 := range extra {
					j := int(j32)
					if !seen[j] {
						seen[j] = true
						out = append(out, j)
						next = append(next, j)
						if maxNodes > 0 && len(out) >= maxNodes {
							return out
						}
					}
				}
			}
		}
		frontier = next
		if len(frontier) == 0 {
			break
		}
	}
	return out
}
