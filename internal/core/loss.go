package core

import (
	"github.com/retrodb/retro/internal/vec"
)

// Loss evaluates the objective Ψ(W) of eqs. (4)–(6):
//
//	Ψ(W) = Σ_i [ α_i‖v_i−v'_i‖² + β_i Ψ_C(v_i) + Ψ_R(v_i) ]
//	Ψ_C(v_i) = ‖v_i − c_i‖²
//	Ψ_R(v_i) = Σ_r [ Σ_{(i,j)∈E_r} γ^r_i‖v_i−v_j‖² − Σ_{(i,k)∈Ẽ_r} δ^r_i‖v_i−v_k‖² ]
//
// The negative part runs over the complement Ẽ_r = S_r×T_r \ E_r; it is
// evaluated with the algebraic identity
// Σ_{k∈T}‖v_i−v_k‖² = |T|·‖v_i‖² − 2·v_i·Σ_{k∈T}v_k + Σ_{k∈T}‖v_k‖²,
// so the cost stays O(nnz·D + n·D) instead of O(|S|·|T|·D).
func Loss(p *Problem, h Hyperparams, w *vec.Matrix) float64 {
	weights := deriveWeights(p, h)
	return lossWithWeights(p, weights, w)
}

func lossWithWeights(p *Problem, weights *weights, w *vec.Matrix) float64 {
	var total float64
	for i := 0; i < p.N; i++ {
		total += weights.alpha[i] * vec.SquaredDistance(w.Row(i), p.W0.Row(i))
		if weights.beta[i] != 0 {
			total += weights.beta[i] * vec.SquaredDistance(w.Row(i), p.Centroids.Row(i))
		}
	}
	sumT := make([]float64, p.Dim)
	for gi := range p.Groups {
		g := &p.Groups[gi]
		gamma := weights.gamma[gi]
		dg := weights.deltaRO[gi]

		// Positive part over E_r.
		for i := 0; i < p.N; i++ {
			if g.OutDeg(i) == 0 {
				continue
			}
			base, extra := g.TargetLists(i)
			for _, j := range base {
				total += gamma[i] * vec.SquaredDistance(w.Row(i), w.Row(int(j)))
			}
			for _, j := range extra {
				total += gamma[i] * vec.SquaredDistance(w.Row(i), w.Row(int(j)))
			}
		}
		if dg == 0 {
			continue
		}

		// Negative part over Ẽ_r via the sum identity.
		vec.Zero(sumT)
		var sumSqT float64
		for k := 0; k < p.N; k++ {
			if g.TargetSet[k] {
				r := w.Row(k)
				vec.Axpy(sumT, 1, r)
				sumSqT += vec.Dot(r, r)
			}
		}
		nT := float64(g.TargetCount)
		for i := 0; i < p.N; i++ {
			if !g.SourceSet[i] {
				continue
			}
			vi := w.Row(i)
			normSq := vec.Dot(vi, vi)
			allPairs := nT*normSq - 2*vec.Dot(vi, sumT) + sumSqT
			// Subtract the related (positive) pairs to leave only Ẽ_r.
			var relPairs float64
			base, extra := g.TargetLists(i)
			for _, j := range base {
				relPairs += vec.SquaredDistance(vi, w.Row(int(j)))
			}
			for _, j := range extra {
				relPairs += vec.SquaredDistance(vi, w.Row(int(j)))
			}
			total -= dg * (allPairs - relPairs)
		}
	}
	return total
}

// FaruquiLoss evaluates eq. (1), the original retrofitting objective, on
// the undirected union graph the MF baseline runs over.
func FaruquiLoss(p *Problem, alpha float64, w *vec.Matrix) float64 {
	adj := undirectedAdjacency(p)
	var total float64
	for i := 0; i < p.N; i++ {
		total += alpha * vec.SquaredDistance(w.Row(i), p.W0.Row(i))
		if len(adj[i]) == 0 {
			continue
		}
		beta := 1 / float64(len(adj[i]))
		for _, j := range adj[i] {
			total += beta * vec.SquaredDistance(w.Row(i), w.Row(int(j)))
		}
	}
	return total
}
