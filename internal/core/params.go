package core

import "fmt"

// Hyperparams are the four global constants of §4.4 plus the iteration
// count. From these the per-node weights of eqs. (12)–(14) are derived.
type Hyperparams struct {
	Alpha      float64
	Beta       float64
	Gamma      float64
	Delta      float64
	Iterations int
}

// DefaultRO returns the paper's chosen configuration for the
// optimisation-based solver: α=1, β=0, γ=3, δ=3 (§5.2).
func DefaultRO() Hyperparams {
	return Hyperparams{Alpha: 1, Beta: 0, Gamma: 3, Delta: 3, Iterations: 10}
}

// DefaultRN returns the paper's chosen configuration for the series-based
// solver: α=1, β=0, γ=3, δ=1 (§5.2).
func DefaultRN() Hyperparams {
	return Hyperparams{Alpha: 1, Beta: 0, Gamma: 3, Delta: 1, Iterations: 10}
}

func (h Hyperparams) withDefaults() Hyperparams {
	if h.Iterations <= 0 {
		h.Iterations = 10
	}
	return h
}

func (h Hyperparams) String() string {
	return fmt.Sprintf("α=%g β=%g γ=%g δ=%g iters=%d", h.Alpha, h.Beta, h.Gamma, h.Delta, h.Iterations)
}

// weights holds every derived per-node/per-group coefficient used by the
// solvers and the loss. Built once per (problem, hyperparams) pair.
type weights struct {
	h Hyperparams

	// alpha[i], beta[i]: eq. (12). beta_i = β / (|R_i|+1).
	alpha []float64
	beta  []float64

	// gamma[g][i] = γ / (od_g(i) · (|R_i|+1)) for sources of group g
	// (eq. 12), else 0.
	gamma [][]float64

	// deltaRO[g] is the constant δ^r of eq. (13): δ / (mc(r)·mr(r)).
	// It applies to every pair of Ẽ_g.
	deltaRO []float64

	// deltaRN[g][i] weights the series solver's repulsion term for
	// sources of group g (eq. 14). §4.2's text states the series
	// subtracts "the centroid of all target vectors in the relation",
	// so the weight is δ / (|T_r| · (|R_i|+1)): the Σ_{k∈T_r} v_k of
	// eq. (16) times this weight equals δ/(|R_i|+1) times the centroid.
	// (Reading eq. 14's |{j:(i,j)∈E_r}| as the per-source out-degree
	// instead makes the repulsion grow with |T_r| and collapses all
	// vectors onto one direction for any realistically sized relation.)
	deltaRN [][]float64
}

// deriveWeights computes eqs. (12)–(14) for a problem.
func deriveWeights(p *Problem, h Hyperparams) *weights {
	h = h.withDefaults()
	w := &weights{
		h:       h,
		alpha:   make([]float64, p.N),
		beta:    make([]float64, p.N),
		gamma:   make([][]float64, len(p.Groups)),
		deltaRO: make([]float64, len(p.Groups)),
		deltaRN: make([][]float64, len(p.Groups)),
	}
	for i := 0; i < p.N; i++ {
		w.alpha[i] = h.Alpha
		w.beta[i] = h.Beta / float64(p.NumRelTypes[i]+1)
	}
	for gi := range p.Groups {
		g := &p.Groups[gi]
		gamma := make([]float64, p.N)
		deltaRN := make([]float64, p.N)
		for i := 0; i < p.N; i++ {
			od := g.OutDeg(i)
			if od == 0 {
				continue
			}
			relTypes := float64(p.NumRelTypes[i] + 1)
			gamma[i] = h.Gamma / (float64(od) * relTypes)
			if g.TargetCount > 0 {
				deltaRN[i] = h.Delta / (float64(g.TargetCount) * relTypes)
			}
		}
		w.gamma[gi] = gamma
		w.deltaRN[gi] = deltaRN
		w.deltaRO[gi] = deltaRO(g, h)
	}
	return w
}

// deltaRO computes the constant δ^r of eq. (13) for one group:
// δ / (mc(r)·mr(r)) with mc(r) = max(|S_r|, |T_r|) and mr(r) the cached
// group maximum of |R_i|+1 over participants.
func deltaRO(g *Group, h Hyperparams) float64 {
	mc := g.SourceCount
	if g.TargetCount > mc {
		mc = g.TargetCount
	}
	if mc <= 0 || g.MaxRel <= 0 {
		return 0
	}
	return h.Delta / (float64(mc) * float64(g.MaxRel))
}

// ConvexityReport captures both convexity conditions stated by the paper.
// The body of §4.2 states eq. (7): 4α_i − Σ_r Σ_{j:(i,j)∈Ẽ_r} δ^r_i ≥ 0;
// the appendix proof arrives at eq. (24): α_i ≥ 4 Σ_r Σ_{j∈Ẽ_r(i)} δ^r_i.
// The two differ by where the factor 4 lands (the paper is inconsistent);
// we report both.
type ConvexityReport struct {
	NonNegativeParams bool // α_i, β_i, γ^r_i ≥ 0 for all i, r
	Eq7Holds          bool
	Eq24Holds         bool
	// WorstNode / WorstSlack document the tightest node under eq. (7).
	WorstNode  int
	WorstSlack float64
}

// Convex reports whether the sufficient conditions hold (non-negative
// params plus the body condition eq. 7).
func (r ConvexityReport) Convex() bool { return r.NonNegativeParams && r.Eq7Holds }

// CheckConvexity evaluates the hyperparameter conditions of eq. (7)/(24)
// on a concrete problem.
func CheckConvexity(p *Problem, h Hyperparams) ConvexityReport {
	w := deriveWeights(p, h)
	rep := ConvexityReport{NonNegativeParams: true, Eq7Holds: true, Eq24Holds: true, WorstNode: -1}
	if h.Alpha < 0 || h.Beta < 0 || h.Gamma < 0 {
		rep.NonNegativeParams = false
	}
	for i := 0; i < p.N; i++ {
		var deltaSum float64
		for gi := range p.Groups {
			g := &p.Groups[gi]
			if !g.SourceSet[i] {
				continue
			}
			// |Ẽ_g(i)| = |T_g| − od_g(i): complements over S×T (see ro.go).
			negCount := float64(g.TargetCount - g.OutDeg(i))
			if negCount < 0 {
				negCount = 0
			}
			deltaSum += negCount * w.deltaRO[gi]
		}
		slack := 4*w.alpha[i] - deltaSum
		if rep.WorstNode < 0 || slack < rep.WorstSlack {
			rep.WorstNode, rep.WorstSlack = i, slack
		}
		if slack < 0 {
			rep.Eq7Holds = false
		}
		if w.alpha[i] < 4*deltaSum {
			rep.Eq24Holds = false
		}
	}
	return rep
}
