package core

import (
	"github.com/retrodb/retro/internal/vec"
)

// SolveRN runs the series-based iteration of eq. (9)/(11): the update
// numerator attracts each node to its original vector, its column
// centroid and its related nodes, repels it from the summed targets of
// each of its relation groups (eq. 16 precomputes that sum once per group
// per iteration), and the result is normalised to unit length — the
// division in eq. (9) — which keeps the series bounded for any
// hyperparameter setting.
func SolveRN(p *Problem, h Hyperparams, opts SolveOptions) *Result {
	h = h.withDefaults()
	w := deriveWeights(p, h)

	cur := p.W0.Clone()
	next := vec.NewMatrix(p.N, p.Dim)
	res := &Result{Iterations: h.Iterations}
	sumT := make([]float64, p.Dim)

	for iter := 0; iter < h.Iterations; iter++ {
		for i := 0; i < p.N; i++ {
			row := next.Row(i)
			vec.Zero(row)
			vec.Axpy(row, w.alpha[i], p.W0.Row(i))
			if w.beta[i] != 0 {
				vec.Axpy(row, w.beta[i], p.Centroids.Row(i))
			}
		}
		for gi := range p.Groups {
			g := &p.Groups[gi]
			gamma := w.gamma[gi]
			deltaRN := w.deltaRN[gi]

			// Attraction: Σ_{j:(i,j)∈E_r} γ^r_i v_j.
			for i := 0; i < p.N; i++ {
				if g.OutDeg(i) == 0 {
					continue
				}
				row := next.Row(i)
				base, extra := g.TargetLists(i)
				for _, j := range base {
					vec.Axpy(row, gamma[i], cur.Row(int(j)))
				}
				for _, j := range extra {
					vec.Axpy(row, gamma[i], cur.Row(int(j)))
				}
			}

			// Repulsion (eq. 16): δ^r_i · Σ_{k:(*,k)∈E_r} v_k, the summed
			// target vector being shared across all sources.
			if h.Delta == 0 {
				continue
			}
			vec.Zero(sumT)
			for k := 0; k < p.N; k++ {
				if g.TargetSet[k] {
					vec.Axpy(sumT, 1, cur.Row(k))
				}
			}
			for i := 0; i < p.N; i++ {
				if deltaRN[i] != 0 {
					vec.Axpy(next.Row(i), -deltaRN[i], sumT)
				}
			}
		}

		// Normalise rows (the D^{-1/2} of eq. 11); zero rows stay zero.
		for i := 0; i < p.N; i++ {
			vec.Normalize(next.Row(i))
		}
		cur, next = next, cur

		if opts.TrackLoss {
			res.LossHistory = append(res.LossHistory, Loss(p, h, cur))
		}
	}
	res.W = cur
	return res
}

// rnUpdateNode is the pointwise eq. (9) update for one node (before
// normalisation the caller applies), used by tests and incremental
// maintenance.
func rnUpdateNode(p *Problem, w *weights, from *vec.Matrix, i int, dst []float64) {
	vec.Zero(dst)
	vec.Axpy(dst, w.alpha[i], p.W0.Row(i))
	if w.beta[i] != 0 {
		vec.Axpy(dst, w.beta[i], p.Centroids.Row(i))
	}
	for gi := range p.Groups {
		g := &p.Groups[gi]
		if g.OutDeg(i) == 0 {
			continue
		}
		gamma := w.gamma[gi]
		deltaRN := w.deltaRN[gi]
		base, extra := g.TargetLists(i)
		for _, j := range base {
			vec.Axpy(dst, gamma[i], from.Row(int(j)))
		}
		for _, j := range extra {
			vec.Axpy(dst, gamma[i], from.Row(int(j)))
		}
		if deltaRN[i] != 0 {
			for t := 0; t < p.N; t++ {
				if g.TargetSet[t] {
					vec.Axpy(dst, -deltaRN[i], from.Row(t))
				}
			}
		}
	}
	vec.Normalize(dst)
}
