package core

import (
	"fmt"
	"sort"
	"testing"

	"github.com/retrodb/retro/internal/embed"
	"github.com/retrodb/retro/internal/extract"
	"github.com/retrodb/retro/internal/reldb"
	"github.com/retrodb/retro/internal/tokenize"
	"github.com/retrodb/retro/internal/vec"
)

// growFixture builds a movie database with every relation kind, its
// extraction, problem and tokenizer.
func growFixture(t *testing.T) (*reldb.DB, *extract.Extraction, *Problem, *tokenize.Tokenizer) {
	t.Helper()
	db := reldb.New()
	stmts := []string{
		`CREATE TABLE movies (id INT PRIMARY KEY, title TEXT, country TEXT)`,
		`CREATE TABLE reviews (id INT PRIMARY KEY, movie_id INT REFERENCES movies(id), body TEXT)`,
		`CREATE TABLE genres (id INT PRIMARY KEY, name TEXT)`,
		`CREATE TABLE movie_genres (movie_id INT REFERENCES movies(id), genre_id INT REFERENCES genres(id))`,
		`INSERT INTO movies VALUES (1, 'inception', 'usa'), (2, 'godfather', 'usa'), (3, 'amelie', 'france')`,
		`INSERT INTO reviews VALUES (1, 1, 'dream'), (2, 3, 'paris')`,
		`INSERT INTO genres VALUES (1, 'thriller'), (2, 'crime')`,
		`INSERT INTO movie_genres VALUES (1, 1), (2, 2)`,
	}
	for _, s := range stmts {
		db.MustExec(s)
	}
	ex, err := extract.FromDB(db, extract.Options{})
	if err != nil {
		t.Fatal(err)
	}
	store := embed.NewStore(3)
	for i, w := range []string{"inception", "godfather", "amelie", "usa", "france",
		"dream", "paris", "thriller", "crime", "brazil", "gilliam", "satire"} {
		v := []float64{float64(i%5) - 2, float64(i%3) - 1, float64(i%7) / 3}
		store.Add(w, v)
	}
	tok := tokenize.New(store)
	return db, ex, BuildProblem(ex, tok), tok
}

// insertAndGrow commits rows, applies the extraction delta and grows the
// problem, returning the report.
func insertAndGrow(t *testing.T, db *reldb.DB, ex *extract.Extraction, p *Problem, tok *tokenize.Tokenizer, table string, rows [][]reldb.Value) *GrowthReport {
	t.Helper()
	var ids []int
	for _, row := range rows {
		id, err := db.Insert(table, row)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	d, err := ex.ApplyInserts(db, table, ids, extract.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := GrowProblem(p, ex, tok, d)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// requireProblemsEqual compares a grown problem against a freshly built
// one structurally: same nodes, same per-group degrees and memberships
// (groups matched by name since ids may differ), same weights inputs.
func requireProblemsEqual(t *testing.T, grown, fresh *Problem, ex *extract.Extraction) {
	t.Helper()
	if grown.N != fresh.N {
		t.Fatalf("N: grown %d fresh %d", grown.N, fresh.N)
	}
	if err := grown.Validate(); err != nil {
		t.Fatalf("grown problem invalid: %v", err)
	}
	// Node identity: labels and categories must agree (ids are shared
	// because both derive from the same extraction).
	for i := 0; i < grown.N; i++ {
		if grown.Labels[i] != fresh.Labels[i] || grown.CategoryOf[i] != fresh.CategoryOf[i] {
			t.Fatalf("node %d: grown (%q, %d) fresh (%q, %d)",
				i, grown.Labels[i], grown.CategoryOf[i], fresh.Labels[i], fresh.CategoryOf[i])
		}
		if vec.SquaredDistance(grown.W0.Row(i), fresh.W0.Row(i)) != 0 {
			t.Fatalf("node %d W0 differs", i)
		}
	}
	// Groups matched by name. Edge sets, counts and the cached mr must
	// agree.
	freshByName := map[string]*Group{}
	for gi := range fresh.Groups {
		freshByName[fresh.Groups[gi].Name] = &fresh.Groups[gi]
	}
	if len(grown.Groups) != len(fresh.Groups) {
		t.Fatalf("groups: grown %d fresh %d", len(grown.Groups), len(fresh.Groups))
	}
	for gi := range grown.Groups {
		g := &grown.Groups[gi]
		f := freshByName[g.Name]
		if f == nil {
			t.Fatalf("group %q missing from fresh problem", g.Name)
		}
		if g.NumEdges() != f.NumEdges() || g.SourceCount != f.SourceCount || g.TargetCount != f.TargetCount || g.MaxRel != f.MaxRel {
			t.Fatalf("group %q: edges %d/%d sources %d/%d targets %d/%d maxRel %d/%d",
				g.Name, g.NumEdges(), f.NumEdges(), g.SourceCount, f.SourceCount,
				g.TargetCount, f.TargetCount, g.MaxRel, f.MaxRel)
		}
		for i := 0; i < grown.N; i++ {
			if g.OutDeg(i) != f.OutDeg(i) {
				t.Fatalf("group %q node %d: outdeg %d vs %d", g.Name, i, g.OutDeg(i), f.OutDeg(i))
			}
			gt := targetsOf(g, i)
			ft := targetsOf(f, i)
			for k := range gt {
				if gt[k] != ft[k] {
					t.Fatalf("group %q node %d: targets %v vs %v", g.Name, i, gt, ft)
				}
			}
		}
	}
	for i := 0; i < grown.N; i++ {
		if grown.NumRelTypes[i] != fresh.NumRelTypes[i] {
			t.Fatalf("node %d NumRelTypes: %d vs %d", i, grown.NumRelTypes[i], fresh.NumRelTypes[i])
		}
	}
	// Centroids: refresh every node of the grown problem and compare.
	all := make([]int, grown.N)
	for i := range all {
		all[i] = i
	}
	grown.RefreshCentroids(all)
	for i := 0; i < grown.N; i++ {
		if vec.SquaredDistance(grown.Centroids.Row(i), fresh.Centroids.Row(i)) > 1e-24 {
			t.Fatalf("node %d centroid: %v vs %v", i, grown.Centroids.Row(i), fresh.Centroids.Row(i))
		}
	}
}

func targetsOf(g *Group, i int) []int {
	base, extra := g.TargetLists(i)
	out := make([]int, 0, len(base)+len(extra))
	for _, j := range base {
		out = append(out, int(j))
	}
	for _, j := range extra {
		out = append(out, int(j))
	}
	sort.Ints(out)
	return out
}

func TestGrowProblemMatchesRebuild(t *testing.T) {
	db, ex, p, tok := growFixture(t)

	// Mixed batch: new movie (new title, shared country), a review of it
	// (PK-FK), and a link row between existing values (n:m).
	rep := insertAndGrow(t, db, ex, p, tok, "movies", [][]reldb.Value{
		{reldb.Int(4), reldb.Text("brazil"), reldb.Text("france")},
		{reldb.Int(5), reldb.Text("gilliam"), reldb.Text("usa")},
	})
	if len(rep.NewNodes) != 2 {
		t.Fatalf("new nodes = %v", rep.NewNodes)
	}
	insertAndGrow(t, db, ex, p, tok, "reviews", [][]reldb.Value{
		{reldb.Int(3), reldb.Int(4), reldb.Text("satire")},
	})
	insertAndGrow(t, db, ex, p, tok, "movie_genres", [][]reldb.Value{
		{reldb.Int(4), reldb.Int(2)},
	})

	fresh := BuildProblem(ex, tok)
	requireProblemsEqual(t, p, fresh, ex)
}

func TestGrowProblemManyBatchesWithCompaction(t *testing.T) {
	db, ex, p, tok := growFixture(t)
	// Enough single-row growths to trip the overflow compaction threshold
	// repeatedly.
	for i := 0; i < 200; i++ {
		insertAndGrow(t, db, ex, p, tok, "movies", [][]reldb.Value{
			{reldb.Int(int64(100 + i)), reldb.Text(fmt.Sprintf("film %d", i)), reldb.Text("usa")},
		})
	}
	fresh := BuildProblem(ex, tok)
	requireProblemsEqual(t, p, fresh, ex)
}

func TestGrownProblemRepairApproximatesFullSolve(t *testing.T) {
	db, ex, p, tok := growFixture(t)
	h := DefaultRN()
	w := SolveRN(p, h, SolveOptions{}).W.Clone()
	st := NewIncrementalState(p, w)

	rep := insertAndGrow(t, db, ex, p, tok, "movies", [][]reldb.Value{
		{reldb.Int(4), reldb.Text("brazil"), reldb.Text("usa")},
	})
	// Bring W up to the new size with the W0 initialisation, as the
	// session does through the store.
	w.GrowRows(p.N)
	for _, id := range rep.NewNodes {
		copy(w.Row(id), p.W0.Row(id))
	}
	st.Grow(p, w, rep)
	touched := AffectedNodesBudget(p, rep.Seeds, 2, 0)
	p.RefreshCentroids(touched)
	UpdateIncremental(p, w, touched, h, RN, IncrementalOptions{MaxIterations: 200, Tolerance: 1e-12, State: st})

	full := SolveRN(BuildProblem(ex, tok), h, SolveOptions{}).W
	brazil, ok := ex.Lookup("movies", "title", "brazil")
	if !ok {
		t.Fatal("brazil missing")
	}
	if cos := vec.Cosine(w.Row(brazil), full.Row(brazil)); cos < 0.95 {
		t.Fatalf("incremental vs full cosine = %v", cos)
	}
}

func TestIncrementalStateMatchesStatelessRepair(t *testing.T) {
	_, _, p, _ := growFixture(t)
	h := Hyperparams{Alpha: 1, Beta: 1, Gamma: 3, Delta: 1, Iterations: 50}
	full := SolveRN(p, h, SolveOptions{})

	for _, variant := range []Variant{RN, RO} {
		a := full.W.Clone()
		b := full.W.Clone()
		vec.Fill(a.Row(0), 7)
		vec.Fill(b.Row(0), 7)
		dirty := []int{0, 1, 2}
		st := NewIncrementalState(p, a)
		UpdateIncremental(p, a, dirty, h, variant, IncrementalOptions{MaxIterations: 120, Tolerance: 1e-12, State: st})
		UpdateIncremental(p, b, dirty, h, variant, IncrementalOptions{MaxIterations: 120, Tolerance: 1e-12})
		if !a.Equal(b, 1e-9) {
			t.Fatalf("%v: maintained state diverges from stateless repair", variant)
		}
	}
}

func TestAffectedNodesBudget(t *testing.T) {
	_, _, p, _ := growFixture(t)
	seeds := []int{0}
	unbounded := AffectedNodesBudget(p, seeds, 4, 0)
	if len(unbounded) < 3 {
		t.Fatalf("expansion too small to test the budget: %v", unbounded)
	}
	capped := AffectedNodesBudget(p, seeds, 4, 2)
	if len(capped) != 2 {
		t.Fatalf("budget 2 returned %d nodes: %v", len(capped), capped)
	}
	if capped[0] != 0 {
		t.Fatalf("seed not first: %v", capped)
	}
	// Seeds are always kept, even above the budget.
	many := AffectedNodesBudget(p, []int{0, 1, 2, 3}, 2, 2)
	if len(many) != 4 {
		t.Fatalf("seeds dropped under budget: %v", many)
	}
	// The budgeted prefix is a prefix of the unbounded BFS order.
	for i, id := range capped {
		if unbounded[i] != id {
			t.Fatalf("budgeted result is not a BFS prefix: %v vs %v", capped, unbounded)
		}
	}
}
