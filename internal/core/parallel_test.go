package core

import (
	"math/rand"
	"testing"

	"github.com/retrodb/retro/internal/vec"
)

// randomProblem builds a random but well-formed retrofitting problem for
// property-style testing.
func randomProblem(t testing.TB, rng *rand.Rand, n, dim, numCats, numRels int) *Problem {
	t.Helper()
	spec := ManualSpec{Dim: dim, NumCategories: numCats}
	for i := 0; i < n; i++ {
		v := make([]float64, dim)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		spec.Values = append(spec.Values, ManualValue{
			Label:    "v",
			Category: rng.Intn(numCats),
			Vector:   v,
		})
	}
	for r := 0; r < numRels; r++ {
		var edges []Edge
		seen := map[Edge]bool{}
		for e := 0; e < 1+rng.Intn(2*n); e++ {
			edge := Edge{From: rng.Intn(n), To: rng.Intn(n)}
			if edge.From != edge.To && !seen[edge] {
				seen[edge] = true
				edges = append(edges, edge)
			}
		}
		if len(edges) == 0 {
			edges = []Edge{{From: 0, To: n - 1}}
		}
		spec.Relations = append(spec.Relations, ManualRelation{Name: "r", Edges: edges})
	}
	p, err := BuildManualProblem(spec)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestParallelROMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 10; trial++ {
		p := randomProblem(t, rng, 10+rng.Intn(30), 1+rng.Intn(6), 1+rng.Intn(3), 1+rng.Intn(3))
		h := Hyperparams{
			Alpha: 1 + rng.Float64(), Beta: rng.Float64(),
			Gamma: rng.Float64() * 3, Delta: rng.Float64(),
			Iterations: 1 + rng.Intn(6),
		}
		seq := SolveRO(p, h, SolveOptions{})
		for _, workers := range []int{1, 2, 4, 7} {
			par := SolveROParallel(p, h, ParallelOptions{Workers: workers})
			if !seq.W.Equal(par.W, 0) {
				t.Fatalf("trial %d workers=%d: parallel RO differs from sequential", trial, workers)
			}
		}
	}
}

func TestParallelRNMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 10; trial++ {
		p := randomProblem(t, rng, 10+rng.Intn(30), 1+rng.Intn(6), 1+rng.Intn(3), 1+rng.Intn(3))
		h := Hyperparams{
			Alpha: 1, Beta: rng.Float64(), Gamma: 3 * rng.Float64(), Delta: rng.Float64(),
			Iterations: 1 + rng.Intn(6),
		}
		seq := SolveRN(p, h, SolveOptions{})
		par := SolveRNParallel(p, h, ParallelOptions{Workers: 4})
		if !seq.W.Equal(par.W, 0) {
			t.Fatalf("trial %d: parallel RN differs from sequential", trial)
		}
	}
}

func TestParallelTrackLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	p := randomProblem(t, rng, 20, 4, 2, 2)
	h := Hyperparams{Alpha: 2, Beta: 1, Gamma: 1, Delta: 0.1, Iterations: 4}
	res := SolveROParallel(p, h, ParallelOptions{SolveOptions: SolveOptions{TrackLoss: true}, Workers: 3})
	if len(res.LossHistory) != 4 {
		t.Fatalf("loss history = %d", len(res.LossHistory))
	}
}

// --- Property-style tests over random problems ------------------------------

// Property: RO matrix iteration equals the pointwise eq. (8) reference
// on arbitrary problems (one Jacobi step).
func TestPropertyROPointwiseEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	for trial := 0; trial < 15; trial++ {
		p := randomProblem(t, rng, 5+rng.Intn(15), 1+rng.Intn(4), 1+rng.Intn(3), 1+rng.Intn(3))
		h := Hyperparams{Alpha: 1 + rng.Float64(), Beta: rng.Float64(), Gamma: rng.Float64() * 2, Delta: rng.Float64() * 0.5, Iterations: 1}
		res := SolveRO(p, h, SolveOptions{})
		w := deriveWeights(p, h)
		buf := make([]float64, p.Dim)
		for i := 0; i < p.N; i++ {
			roUpdateNode(p, w, p.W0, i, buf)
			for j := range buf {
				d := buf[j] - res.W.At(i, j)
				if d > 1e-9 || d < -1e-9 {
					t.Fatalf("trial %d node %d: matrix %v != pointwise %v", trial, i, res.W.Row(i), buf)
				}
			}
		}
	}
}

// Property: the eq. (15) optimisation never changes RO results.
func TestPropertyRONaiveEqualsOptimized(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	for trial := 0; trial < 10; trial++ {
		p := randomProblem(t, rng, 5+rng.Intn(20), 1+rng.Intn(4), 1+rng.Intn(3), 1+rng.Intn(3))
		h := Hyperparams{Alpha: 2, Beta: rng.Float64(), Gamma: rng.Float64() * 2, Delta: rng.Float64(), Iterations: 1 + rng.Intn(5)}
		opt := SolveRO(p, h, SolveOptions{})
		naive := SolveRO(p, h, SolveOptions{NaiveNegative: true})
		if !opt.W.Equal(naive.W, 1e-9) {
			t.Fatalf("trial %d: optimisation changed results", trial)
		}
	}
}

// Property: RN rows are unit-norm (or exactly zero) on arbitrary problems.
func TestPropertyRNUnitNorm(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	for trial := 0; trial < 10; trial++ {
		p := randomProblem(t, rng, 5+rng.Intn(20), 1+rng.Intn(5), 1+rng.Intn(3), rng.Intn(3)+1)
		h := Hyperparams{Alpha: rng.Float64() * 2, Beta: rng.Float64(), Gamma: rng.Float64() * 3, Delta: rng.Float64(), Iterations: 1 + rng.Intn(5)}
		res := SolveRN(p, h, SolveOptions{})
		for i := 0; i < p.N; i++ {
			n := vec.Norm(res.W.Row(i))
			if n != 0 && (n < 1-1e-9 || n > 1+1e-9) {
				t.Fatalf("trial %d node %d: norm %v", trial, i, n)
			}
		}
	}
}

// Property: under convex parameter settings (checked via eq. 7) the RO
// loss is non-increasing across iterations on random problems.
func TestPropertyROLossMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	tried := 0
	for trial := 0; tried < 8 && trial < 50; trial++ {
		p := randomProblem(t, rng, 5+rng.Intn(15), 1+rng.Intn(4), 1+rng.Intn(3), 1+rng.Intn(2))
		h := Hyperparams{Alpha: 3 + rng.Float64()*2, Beta: rng.Float64(), Gamma: rng.Float64(), Delta: rng.Float64() * 0.2, Iterations: 10}
		if !CheckConvexity(p, h).Convex() {
			continue
		}
		tried++
		res := SolveRO(p, h, SolveOptions{TrackLoss: true})
		for i := 1; i < len(res.LossHistory); i++ {
			if res.LossHistory[i] > res.LossHistory[i-1]+1e-9 {
				t.Fatalf("loss increased on convex problem at iter %d: %v", i, res.LossHistory)
			}
		}
	}
	if tried == 0 {
		t.Fatal("no convex random problems generated; loosen the sampler")
	}
}

// Property: incremental repair of a corrupted node set restores the
// converged fixed point on random problems.
func TestPropertyIncrementalRepair(t *testing.T) {
	rng := rand.New(rand.NewSource(28))
	for trial := 0; trial < 6; trial++ {
		p := randomProblem(t, rng, 8+rng.Intn(10), 2, 2, 1)
		h := Hyperparams{Alpha: 3, Beta: 1, Gamma: 1, Delta: 0.2, Iterations: 150}
		full := SolveRO(p, h, SolveOptions{})
		w := full.W.Clone()
		dirty := []int{rng.Intn(p.N), rng.Intn(p.N)}
		for _, i := range dirty {
			vec.Fill(w.Row(i), 7)
		}
		UpdateIncremental(p, w, dirty, h, RO, IncrementalOptions{MaxIterations: 400, Tolerance: 1e-12})
		if !w.Equal(full.W, 1e-5) {
			t.Fatalf("trial %d: repair did not restore fixed point", trial)
		}
	}
}
