package core

import (
	"github.com/retrodb/retro/internal/vec"
)

// Result carries a solved embedding matrix plus optional diagnostics.
type Result struct {
	// W holds the retrofitted vectors, row i for text value i.
	W *vec.Matrix
	// LossHistory holds Ψ(W) after every iteration when loss tracking is
	// enabled (nil otherwise).
	LossHistory []float64
	Iterations  int
}

// SolveOptions tunes solver execution.
type SolveOptions struct {
	// TrackLoss evaluates Ψ(W) after every iteration (costs one extra
	// pass; used by tests and the convergence experiments).
	TrackLoss bool
	// NaiveNegative disables the eq. (15) complement optimisation in the
	// RO solver and materialises Ẽ_r pair by pair. Used by the ablation
	// benchmark; results are identical.
	NaiveNegative bool
}

// SolveRO minimises Ψ (eq. 4) with the matrix iteration of eq. (10).
//
// The set R of the paper contains every directed group and its inverse;
// for group r the positive term is ((γ^r_ij) + (γ^r̄_ij)^T)·W, which on
// row i sums (γ^r_i + γ^r̄_j)·v_j over outgoing edges (i,j). The negative
// term runs over the complement Ẽ_r = S_r × T_r \ E_r and is computed via
// the eq. (15) trick: one shared Σ_{k∈T_r} v_k per group, minus each
// node's actual neighbour sum.
func SolveRO(p *Problem, h Hyperparams, opts SolveOptions) *Result {
	h = h.withDefaults()
	w := deriveWeights(p, h)

	// The diagonal D of eq. (10) is iteration-independent.
	d := make([]float64, p.N)
	for i := 0; i < p.N; i++ {
		d[i] = w.alpha[i] + w.beta[i]
	}
	for gi := range p.Groups {
		g := &p.Groups[gi]
		gammaSelf := w.gamma[gi]
		gammaInv := w.gamma[g.Inverse]
		dg := w.deltaRO[gi]
		for i := 0; i < p.N; i++ {
			od := g.OutDeg(i)
			if od == 0 {
				continue
			}
			base, extra := g.TargetLists(i)
			for _, j := range base {
				d[i] += gammaSelf[i] + gammaInv[int(j)]
			}
			for _, j := range extra {
				d[i] += gammaSelf[i] + gammaInv[int(j)]
			}
			// Σ_{k:(i,k)∈Ẽ_r} (δ^r_i + δ^r̄_k) = 2·d_g·(|T_r| − od_r(i)).
			d[i] -= 2 * dg * float64(g.TargetCount-od)
		}
	}

	cur := p.W0.Clone()
	next := vec.NewMatrix(p.N, p.Dim)
	res := &Result{Iterations: h.Iterations}
	sumT := make([]float64, p.Dim)
	nbrSum := make([]float64, p.Dim)

	for iter := 0; iter < h.Iterations; iter++ {
		// W' = α∘W0 + β∘c.
		for i := 0; i < p.N; i++ {
			row := next.Row(i)
			vec.Zero(row)
			vec.Axpy(row, w.alpha[i], p.W0.Row(i))
			if w.beta[i] != 0 {
				vec.Axpy(row, w.beta[i], p.Centroids.Row(i))
			}
		}
		for gi := range p.Groups {
			g := &p.Groups[gi]
			gammaSelf := w.gamma[gi]
			gammaInv := w.gamma[g.Inverse]
			dg := w.deltaRO[gi]

			// Positive relational attraction.
			for i := 0; i < p.N; i++ {
				if g.OutDeg(i) == 0 {
					continue
				}
				row := next.Row(i)
				base, extra := g.TargetLists(i)
				for _, j32 := range base {
					j := int(j32)
					vec.Axpy(row, gammaSelf[i]+gammaInv[j], cur.Row(j))
				}
				for _, j32 := range extra {
					j := int(j32)
					vec.Axpy(row, gammaSelf[i]+gammaInv[j], cur.Row(j))
				}
			}

			// Negative repulsion over Ẽ_r.
			if dg == 0 {
				continue
			}
			if opts.NaiveNegative {
				roNegativeNaive(p, g, dg, cur, next)
				continue
			}
			// eq. (15): shared target sum minus per-node neighbour sum.
			vec.Zero(sumT)
			for k := 0; k < p.N; k++ {
				if g.TargetSet[k] {
					vec.Axpy(sumT, 1, cur.Row(k))
				}
			}
			for i := 0; i < p.N; i++ {
				if !g.SourceSet[i] {
					continue
				}
				vec.Zero(nbrSum)
				base, extra := g.TargetLists(i)
				for _, j := range base {
					vec.Axpy(nbrSum, 1, cur.Row(int(j)))
				}
				for _, j := range extra {
					vec.Axpy(nbrSum, 1, cur.Row(int(j)))
				}
				row := next.Row(i)
				// -(2·d_g)·(Σ_{k∈T} v_k − Σ_{k∈N(i)} v_k)
				vec.Axpy(row, -2*dg, sumT)
				vec.Axpy(row, 2*dg, nbrSum)
			}
		}

		// W^{k+1} = D^{-1} W'.
		for i := 0; i < p.N; i++ {
			if d[i] != 0 {
				vec.Scale(next.Row(i), 1/d[i])
			}
		}
		cur, next = next, cur

		if opts.TrackLoss {
			res.LossHistory = append(res.LossHistory, Loss(p, h, cur))
		}
	}
	res.W = cur
	return res
}

// roNegativeNaive materialises Ẽ_r = S_r × T_r \ E_r pair by pair; the
// reference implementation the eq. (15) optimisation is validated and
// benchmarked against.
func roNegativeNaive(p *Problem, g *Group, dg float64, cur, next *vec.Matrix) {
	related := make(map[int]bool)
	for i := 0; i < p.N; i++ {
		if !g.SourceSet[i] {
			continue
		}
		for k := range related {
			delete(related, k)
		}
		base, extra := g.TargetLists(i)
		for _, j := range base {
			related[int(j)] = true
		}
		for _, j := range extra {
			related[int(j)] = true
		}
		row := next.Row(i)
		for t := 0; t < p.N; t++ {
			if g.TargetSet[t] && !related[t] {
				vec.Axpy(row, -2*dg, cur.Row(t))
			}
		}
	}
}

// roUpdateNode is the pointwise eq. (8) update for a single node, used as
// the reference implementation in tests (one Jacobi step over `from`,
// writing into dst) and by incremental maintenance. It returns the
// denominator it used.
func roUpdateNode(p *Problem, w *weights, from *vec.Matrix, i int, dst []float64) float64 {
	vec.Zero(dst)
	vec.Axpy(dst, w.alpha[i], p.W0.Row(i))
	if w.beta[i] != 0 {
		vec.Axpy(dst, w.beta[i], p.Centroids.Row(i))
	}
	denom := w.alpha[i] + w.beta[i]
	for gi := range p.Groups {
		g := &p.Groups[gi]
		if g.OutDeg(i) == 0 {
			continue
		}
		gammaSelf := w.gamma[gi]
		gammaInv := w.gamma[g.Inverse]
		dg := w.deltaRO[gi]
		related := make(map[int]bool, g.OutDeg(i))
		attract := func(j int) {
			weight := gammaSelf[i] + gammaInv[j]
			vec.Axpy(dst, weight, from.Row(j))
			denom += weight
			related[j] = true
		}
		base, extra := g.TargetLists(i)
		for _, j := range base {
			attract(int(j))
		}
		for _, j := range extra {
			attract(int(j))
		}
		if dg == 0 {
			continue
		}
		for t := 0; t < p.N; t++ {
			if g.TargetSet[t] && !related[t] {
				vec.Axpy(dst, -2*dg, from.Row(t))
				denom -= 2 * dg
			}
		}
	}
	if denom != 0 {
		vec.Scale(dst, 1/denom)
	}
	return denom
}
