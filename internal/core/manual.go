package core

import (
	"fmt"

	"github.com/retrodb/retro/internal/vec"
)

// ManualValue is one text value of a hand-built problem.
type ManualValue struct {
	Label    string
	Category int
	Vector   []float64 // initial (W0) vector
}

// ManualRelation is one forward relation group of a hand-built problem;
// the inverse group is derived automatically.
type ManualRelation struct {
	Name  string
	Edges []Edge
}

// ManualSpec describes a retrofitting problem directly, without a
// database. The paper's Figure 3 example (three movies, two countries,
// 2-d vectors) is expressed this way; tests use it for precise control.
type ManualSpec struct {
	Dim           int
	NumCategories int
	Values        []ManualValue
	Relations     []ManualRelation
}

// BuildManualProblem assembles a Problem from a ManualSpec. Category
// centroids are computed from the provided initial vectors, exactly as
// BuildProblem does for database-extracted problems.
func BuildManualProblem(spec ManualSpec) (*Problem, error) {
	n := len(spec.Values)
	if n == 0 {
		return nil, fmt.Errorf("core: manual problem needs at least one value")
	}
	if spec.Dim <= 0 {
		return nil, fmt.Errorf("core: manual problem needs a positive dimension")
	}
	p := &Problem{
		N:          n,
		Dim:        spec.Dim,
		W0:         vec.NewMatrix(n, spec.Dim),
		Centroids:  vec.NewMatrix(n, spec.Dim),
		CategoryOf: make([]int, n),
		Labels:     make([]string, n),
	}
	members := make([][]int, spec.NumCategories)
	for i, v := range spec.Values {
		if len(v.Vector) != spec.Dim {
			return nil, fmt.Errorf("core: value %d vector dim %d != %d", i, len(v.Vector), spec.Dim)
		}
		if v.Category < 0 || v.Category >= spec.NumCategories {
			return nil, fmt.Errorf("core: value %d category %d out of range", i, v.Category)
		}
		copy(p.W0.Row(i), v.Vector)
		p.CategoryOf[i] = v.Category
		p.Labels[i] = v.Label
		members[v.Category] = append(members[v.Category], i)
	}
	// Keep the same per-category sum bookkeeping as BuildProblem so a
	// manual problem supports RefreshCentroids/GrowProblem too.
	p.catSums = vec.NewMatrix(spec.NumCategories, spec.Dim)
	p.catCounts = make([]int, spec.NumCategories)
	for c, m := range members {
		if len(m) == 0 {
			continue
		}
		sum := p.catSums.Row(c)
		for _, i := range m {
			vec.Axpy(sum, 1, p.W0.Row(i))
		}
		p.catCounts[c] = len(m)
		centroid := make([]float64, spec.Dim)
		copy(centroid, sum)
		vec.Scale(centroid, 1/float64(len(m)))
		for _, i := range m {
			copy(p.Centroids.Row(i), centroid)
		}
	}
	for _, r := range spec.Relations {
		for _, e := range r.Edges {
			if e.From < 0 || e.From >= n || e.To < 0 || e.To >= n {
				return nil, fmt.Errorf("core: relation %q edge (%d,%d) out of range", r.Name, e.From, e.To)
			}
		}
		fwd := buildGroup(r.Name, n, r.Edges)
		inv := buildGroup(r.Name+"~inv", n, invertEdges(r.Edges))
		fi := len(p.Groups)
		fwd.Inverse = fi + 1
		inv.Inverse = fi
		p.Groups = append(p.Groups, fwd, inv)
	}
	p.NumRelTypes = make([]int, n)
	for gi := range p.Groups {
		g := &p.Groups[gi]
		for i := 0; i < n; i++ {
			if g.OutDeg(i) > 0 {
				p.NumRelTypes[i]++
			}
		}
	}
	computeMaxRel(p)
	return p, nil
}

func invertEdges(edges []Edge) []Edge {
	out := make([]Edge, len(edges))
	for i, e := range edges {
		out[i] = Edge{From: e.To, To: e.From}
	}
	return out
}
