package core

import (
	"math"
	"testing"

	"github.com/retrodb/retro/internal/vec"
)

// fig3Problem reproduces the paper's Figure 3 setup: three movies
// ("Inception", "Godfather" produced in USA; "Amelie" in France) and two
// countries, 2-d vectors, one movie->country relation group.
func fig3Problem(t *testing.T) *Problem {
	t.Helper()
	p, err := BuildManualProblem(ManualSpec{
		Dim:           2,
		NumCategories: 2,
		Values: []ManualValue{
			{Label: "Inception", Category: 0, Vector: []float64{1.0, 0.2}},
			{Label: "Godfather", Category: 0, Vector: []float64{0.8, -0.3}},
			{Label: "Amelie", Category: 0, Vector: []float64{-0.5, 0.9}},
			{Label: "USA", Category: 1, Vector: []float64{0.6, -0.8}},
			{Label: "France", Category: 1, Vector: []float64{-0.9, 0.4}},
		},
		Relations: []ManualRelation{{
			Name: "movie->country",
			Edges: []Edge{
				{From: 0, To: 3}, // Inception -> USA
				{From: 1, To: 3}, // Godfather -> USA
				{From: 2, To: 4}, // Amelie -> France
			},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestManualProblemValidation(t *testing.T) {
	if _, err := BuildManualProblem(ManualSpec{Dim: 2}); err == nil {
		t.Fatal("empty spec accepted")
	}
	if _, err := BuildManualProblem(ManualSpec{Dim: 0, NumCategories: 1,
		Values: []ManualValue{{Category: 0, Vector: nil}}}); err == nil {
		t.Fatal("zero dim accepted")
	}
	if _, err := BuildManualProblem(ManualSpec{Dim: 2, NumCategories: 1,
		Values: []ManualValue{{Category: 0, Vector: []float64{1}}}}); err == nil {
		t.Fatal("dim mismatch accepted")
	}
	if _, err := BuildManualProblem(ManualSpec{Dim: 1, NumCategories: 1,
		Values: []ManualValue{{Category: 5, Vector: []float64{1}}}}); err == nil {
		t.Fatal("bad category accepted")
	}
	if _, err := BuildManualProblem(ManualSpec{Dim: 1, NumCategories: 1,
		Values:    []ManualValue{{Category: 0, Vector: []float64{1}}},
		Relations: []ManualRelation{{Name: "r", Edges: []Edge{{0, 7}}}}}); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
}

func TestGroupStructure(t *testing.T) {
	p := fig3Problem(t)
	if len(p.Groups) != 2 {
		t.Fatalf("groups = %d, want 2 (forward + inverse)", len(p.Groups))
	}
	fwd, inv := &p.Groups[0], &p.Groups[1]
	if fwd.OutDeg(0) != 1 || fwd.OutDeg(3) != 0 {
		t.Fatal("forward adjacency wrong")
	}
	if inv.OutDeg(3) != 2 || inv.OutDeg(0) != 0 {
		t.Fatal("inverse adjacency wrong")
	}
	if fwd.SourceCount != 3 || fwd.TargetCount != 2 {
		t.Fatalf("counts: S=%d T=%d", fwd.SourceCount, fwd.TargetCount)
	}
	if inv.SourceCount != 2 || inv.TargetCount != 3 {
		t.Fatalf("inverse counts: S=%d T=%d", inv.SourceCount, inv.TargetCount)
	}
	// |R_i| = 1 for all nodes (each participates in exactly one directed
	// group as source: movies in fwd, countries in inv).
	for i := 0; i < p.N; i++ {
		if p.NumRelTypes[i] != 1 {
			t.Fatalf("NumRelTypes[%d] = %d", i, p.NumRelTypes[i])
		}
	}
	edges := 0
	fwd.EachEdge(func(from, to int) { edges++ })
	if edges != 3 || fwd.NumEdges() != 3 {
		t.Fatal("EachEdge/NumEdges wrong")
	}
}

func TestDeriveWeights(t *testing.T) {
	p := fig3Problem(t)
	h := Hyperparams{Alpha: 1, Beta: 2, Gamma: 3, Delta: 1, Iterations: 5}
	w := deriveWeights(p, h)
	// β_i = β/(|R_i|+1) = 2/2 = 1.
	if w.beta[0] != 1 {
		t.Fatalf("beta = %v", w.beta[0])
	}
	// Movie 0: od=1, |R|+1=2 -> γ = 3/2.
	if w.gamma[0][0] != 1.5 {
		t.Fatalf("gamma fwd movie = %v", w.gamma[0][0])
	}
	// USA in inverse group: od=2 -> γ = 3/(2·2) = 0.75.
	if w.gamma[1][3] != 0.75 {
		t.Fatalf("gamma inv USA = %v", w.gamma[1][3])
	}
	// deltaRO: mc = max(3,2)=3, mr = max(|R_i|+1)=2 -> δ/(3·2) = 1/6.
	if math.Abs(w.deltaRO[0]-1.0/6) > 1e-12 {
		t.Fatalf("deltaRO = %v", w.deltaRO[0])
	}
	if w.deltaRO[0] != w.deltaRO[1] {
		t.Fatal("deltaRO must be symmetric between group and inverse")
	}
	// deltaRN movie 0: δ/(|T_r|·(|R|+1)) = 1/(2·2) = 0.25 (the centroid
	// normalisation of §4.2's series description).
	if w.deltaRN[0][0] != 0.25 {
		t.Fatalf("deltaRN = %v", w.deltaRN[0][0])
	}
	// Non-participants carry zero weights.
	if w.gamma[0][3] != 0 || w.deltaRN[0][3] != 0 {
		t.Fatal("non-source nodes must have zero weights")
	}
}

func TestROMatchesPointwiseUpdate(t *testing.T) {
	p := fig3Problem(t)
	h := Hyperparams{Alpha: 2, Beta: 1, Gamma: 2, Delta: 1, Iterations: 1}
	res := SolveRO(p, h, SolveOptions{})

	w := deriveWeights(p, h)
	want := vec.NewMatrix(p.N, p.Dim)
	buf := make([]float64, p.Dim)
	for i := 0; i < p.N; i++ {
		roUpdateNode(p, w, p.W0, i, buf)
		copy(want.Row(i), buf)
	}
	if !res.W.Equal(want, 1e-9) {
		t.Fatalf("matrix iteration != pointwise eq.(8)\n got %v\nwant %v", res.W, want)
	}
}

func TestRNMatchesPointwiseUpdate(t *testing.T) {
	p := fig3Problem(t)
	h := Hyperparams{Alpha: 1, Beta: 1, Gamma: 3, Delta: 1, Iterations: 1}
	res := SolveRN(p, h, SolveOptions{})

	w := deriveWeights(p, h)
	want := vec.NewMatrix(p.N, p.Dim)
	buf := make([]float64, p.Dim)
	for i := 0; i < p.N; i++ {
		rnUpdateNode(p, w, p.W0, i, buf)
		copy(want.Row(i), buf)
	}
	if !res.W.Equal(want, 1e-9) {
		t.Fatalf("RN matrix iteration != pointwise eq.(9)\n got %v\nwant %v", res.W, want)
	}
}

func TestRONaiveNegativeEqualsOptimized(t *testing.T) {
	p := fig3Problem(t)
	h := Hyperparams{Alpha: 2, Beta: 1, Gamma: 2, Delta: 2, Iterations: 7}
	opt := SolveRO(p, h, SolveOptions{})
	naive := SolveRO(p, h, SolveOptions{NaiveNegative: true})
	if !opt.W.Equal(naive.W, 1e-9) {
		t.Fatal("eq.(15) optimisation changed RO results")
	}
}

func TestROLossMonotoneUnderConvexParams(t *testing.T) {
	p := fig3Problem(t)
	// Generous α keeps eq. (7) satisfied.
	h := Hyperparams{Alpha: 3, Beta: 1, Gamma: 2, Delta: 0.5, Iterations: 15}
	rep := CheckConvexity(p, h)
	if !rep.Convex() {
		t.Fatalf("expected convex configuration: %+v", rep)
	}
	res := SolveRO(p, h, SolveOptions{TrackLoss: true})
	for i := 1; i < len(res.LossHistory); i++ {
		if res.LossHistory[i] > res.LossHistory[i-1]+1e-9 {
			t.Fatalf("loss increased at iter %d: %v", i, res.LossHistory)
		}
	}
	// And the solved loss must beat the initial embedding's loss.
	if res.LossHistory[len(res.LossHistory)-1] >= Loss(p, h, p.W0) {
		t.Fatal("solver did not improve on W0")
	}
}

func TestROConvergesToFixedPoint(t *testing.T) {
	p := fig3Problem(t)
	h := Hyperparams{Alpha: 3, Beta: 1, Gamma: 2, Delta: 0.5}
	h.Iterations = 60
	a := SolveRO(p, h, SolveOptions{})
	h.Iterations = 61
	b := SolveRO(p, h, SolveOptions{})
	if !a.W.Equal(b.W, 1e-8) {
		t.Fatal("RO did not converge after 60 iterations on a 5-node problem")
	}
}

func TestRNUnitNorm(t *testing.T) {
	p := fig3Problem(t)
	res := SolveRN(p, DefaultRN(), SolveOptions{})
	for i := 0; i < p.N; i++ {
		n := vec.Norm(res.W.Row(i))
		if math.Abs(n-1) > 1e-9 {
			t.Fatalf("row %d norm = %v, want 1 (eq. 9 normalisation)", i, n)
		}
	}
}

func TestSolversDeterministic(t *testing.T) {
	p := fig3Problem(t)
	a := SolveRO(p, DefaultRO(), SolveOptions{})
	b := SolveRO(p, DefaultRO(), SolveOptions{})
	if !a.W.Equal(b.W, 0) {
		t.Fatal("RO not deterministic")
	}
	c := SolveRN(p, DefaultRN(), SolveOptions{})
	d := SolveRN(p, DefaultRN(), SolveOptions{})
	if !c.W.Equal(d.W, 0) {
		t.Fatal("RN not deterministic")
	}
}

// TestAlphaPullsTowardOriginal mirrors Fig. 3a: larger α keeps vectors
// closer to their original embeddings.
func TestAlphaPullsTowardOriginal(t *testing.T) {
	p := fig3Problem(t)
	dist := func(alpha float64) float64 {
		h := Hyperparams{Alpha: alpha, Beta: 1, Gamma: 2, Delta: 1, Iterations: 30}
		res := SolveRO(p, h, SolveOptions{})
		total := 0.0
		for i := 0; i < p.N; i++ {
			total += vec.SquaredDistance(res.W.Row(i), p.W0.Row(i))
		}
		return total
	}
	d1, d2, d3 := dist(1), dist(2), dist(3)
	if !(d1 > d2 && d2 > d3) {
		t.Fatalf("α should pull toward W0: d(α=1)=%v d(2)=%v d(3)=%v", d1, d2, d3)
	}
}

// TestBetaClustersCategories mirrors Fig. 3b: larger β tightens columns.
func TestBetaClustersCategories(t *testing.T) {
	p := fig3Problem(t)
	spread := func(beta float64) float64 {
		h := Hyperparams{Alpha: 2, Beta: beta, Gamma: 2, Delta: 1, Iterations: 30}
		res := SolveRO(p, h, SolveOptions{})
		// Mean pairwise distance among the three movie vectors.
		total := 0.0
		for _, pair := range [][2]int{{0, 1}, {0, 2}, {1, 2}} {
			total += vec.SquaredDistance(res.W.Row(pair[0]), res.W.Row(pair[1]))
		}
		return total
	}
	s1, s3 := spread(1), spread(3)
	if s3 >= s1 {
		t.Fatalf("β should tighten categories: spread(β=1)=%v spread(β=3)=%v", s1, s3)
	}
}

// TestGammaPullsRelatedTogether mirrors Fig. 3c.
func TestGammaPullsRelatedTogether(t *testing.T) {
	p := fig3Problem(t)
	relDist := func(gamma float64) float64 {
		h := Hyperparams{Alpha: 2, Beta: 1, Gamma: gamma, Delta: 1, Iterations: 30}
		res := SolveRO(p, h, SolveOptions{})
		// Amelie <-> France.
		return vec.SquaredDistance(res.W.Row(2), res.W.Row(4))
	}
	d1, d3 := relDist(1), relDist(3)
	if d3 >= d1 {
		t.Fatalf("γ should pull related together: d(γ=1)=%v d(γ=3)=%v", d1, d3)
	}
}

// TestDeltaSeparates mirrors Fig. 3d: δ=0 lets vectors concentrate; δ>0
// pushes unrelated apart.
func TestDeltaSeparates(t *testing.T) {
	p := fig3Problem(t)
	unrelDist := func(delta float64) float64 {
		h := Hyperparams{Alpha: 2, Beta: 1, Gamma: 3, Delta: delta, Iterations: 30}
		res := SolveRO(p, h, SolveOptions{})
		// Inception <-> France (unrelated pair).
		return vec.SquaredDistance(res.W.Row(0), res.W.Row(4))
	}
	d0, d1 := unrelDist(0), unrelDist(1)
	if d1 <= d0 {
		t.Fatalf("δ should separate unrelated: d(δ=0)=%v d(δ=1)=%v", d0, d1)
	}
}

func TestConvexityCheck(t *testing.T) {
	p := fig3Problem(t)
	good := CheckConvexity(p, Hyperparams{Alpha: 3, Beta: 1, Gamma: 2, Delta: 0.5})
	if !good.Convex() || !good.Eq7Holds {
		t.Fatalf("good params flagged: %+v", good)
	}
	bad := CheckConvexity(p, Hyperparams{Alpha: 0.001, Beta: 1, Gamma: 2, Delta: 50})
	if bad.Eq7Holds {
		t.Fatalf("absurd δ passed eq.(7): %+v", bad)
	}
	neg := CheckConvexity(p, Hyperparams{Alpha: -1, Beta: 1, Gamma: 2, Delta: 0})
	if neg.NonNegativeParams || neg.Convex() {
		t.Fatal("negative α passed")
	}
	if good.WorstNode < 0 || good.WorstSlack <= 0 {
		t.Fatalf("worst-node diagnostics missing: %+v", good)
	}
}

func TestLossNegativePartMatchesNaive(t *testing.T) {
	p := fig3Problem(t)
	h := Hyperparams{Alpha: 1, Beta: 1, Gamma: 2, Delta: 1, Iterations: 3}
	res := SolveRO(p, h, SolveOptions{})
	got := Loss(p, h, res.W)
	want := naiveLoss(p, h, res.W)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("efficient loss %v != naive loss %v", got, want)
	}
}

// naiveLoss evaluates eqs. (4)-(6) directly, materialising Ẽ_r.
func naiveLoss(p *Problem, h Hyperparams, w *vec.Matrix) float64 {
	weights := deriveWeights(p, h)
	var total float64
	for i := 0; i < p.N; i++ {
		total += weights.alpha[i] * vec.SquaredDistance(w.Row(i), p.W0.Row(i))
		total += weights.beta[i] * vec.SquaredDistance(w.Row(i), p.Centroids.Row(i))
	}
	for gi := range p.Groups {
		g := &p.Groups[gi]
		for i := 0; i < p.N; i++ {
			related := map[int]bool{}
			for k := g.RowPtr[i]; k < g.RowPtr[i+1]; k++ {
				j := int(g.Targets[k])
				total += weights.gamma[gi][i] * vec.SquaredDistance(w.Row(i), w.Row(j))
				related[j] = true
			}
			if !g.SourceSet[i] {
				continue
			}
			for k := 0; k < p.N; k++ {
				if g.TargetSet[k] && !related[k] {
					total -= weights.deltaRO[gi] * vec.SquaredDistance(w.Row(i), w.Row(k))
				}
			}
		}
	}
	return total
}

func TestFaruquiBaseline(t *testing.T) {
	p := fig3Problem(t)
	res := SolveFaruqui(p, 1, 20)
	// Related pair (Amelie, France) must be closer than before.
	before := vec.SquaredDistance(p.W0.Row(2), p.W0.Row(4))
	after := vec.SquaredDistance(res.W.Row(2), res.W.Row(4))
	if after >= before {
		t.Fatalf("MF did not pull related pair together: %v -> %v", before, after)
	}
	// Loss (eq. 1) must not exceed the initial one.
	if FaruquiLoss(p, 1, res.W) >= FaruquiLoss(p, 1, p.W0) {
		t.Fatal("MF did not reduce the Faruqui loss")
	}
}

func TestFaruquiIsolatedNodeUnchanged(t *testing.T) {
	p, err := BuildManualProblem(ManualSpec{
		Dim:           2,
		NumCategories: 1,
		Values: []ManualValue{
			{Label: "a", Category: 0, Vector: []float64{1, 2}},
			{Label: "b", Category: 0, Vector: []float64{3, 4}},
		},
		// No relations at all.
	})
	if err != nil {
		t.Fatal(err)
	}
	res := SolveFaruqui(p, 1, 5)
	if !res.W.Equal(p.W0, 0) {
		t.Fatal("isolated nodes must keep their original vectors under MF")
	}
}

func TestFaruquiDefaults(t *testing.T) {
	p := fig3Problem(t)
	a := SolveFaruqui(p, 0, 0) // defaults: alpha=1, 20 iterations
	b := SolveFaruqui(p, 1, 20)
	if !a.W.Equal(b.W, 0) {
		t.Fatal("defaults wrong")
	}
	if a.Iterations != 20 {
		t.Fatal("iteration default wrong")
	}
}

func TestOOVNullVectorGetsMeaning(t *testing.T) {
	// A node with a null W0 connected to meaningful nodes must move away
	// from the origin (§3.1's promise).
	p, err := BuildManualProblem(ManualSpec{
		Dim:           2,
		NumCategories: 2,
		Values: []ManualValue{
			{Label: "oov-movie", Category: 0, Vector: []float64{0, 0}},
			{Label: "usa", Category: 1, Vector: []float64{1, 1}},
		},
		Relations: []ManualRelation{{Name: "r", Edges: []Edge{{0, 1}}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	res := SolveRO(p, Hyperparams{Alpha: 1, Beta: 1, Gamma: 3, Delta: 0, Iterations: 20}, SolveOptions{})
	if vec.Norm(res.W.Row(0)) < 0.1 {
		t.Fatalf("OOV vector stayed at origin: %v", res.W.Row(0))
	}
	// It should land near its related neighbour.
	if vec.Cosine(res.W.Row(0), res.W.Row(1)) < 0.9 {
		t.Fatalf("OOV vector not aligned with neighbour: %v", res.W.Row(0))
	}
}

func TestSolveDispatch(t *testing.T) {
	p := fig3Problem(t)
	ro := Solve(p, DefaultRO(), RO, SolveOptions{})
	rn := Solve(p, DefaultRN(), RN, SolveOptions{})
	if ro.W.Equal(rn.W, 1e-9) {
		t.Fatal("RO and RN should differ")
	}
	if RO.String() != "RO" || RN.String() != "RN" || Variant(9).String() == "" {
		t.Fatal("Variant.String wrong")
	}
}

func TestDefaultsMatchPaper(t *testing.T) {
	ro, rn := DefaultRO(), DefaultRN()
	if ro.Alpha != 1 || ro.Beta != 0 || ro.Gamma != 3 || ro.Delta != 3 {
		t.Fatalf("DefaultRO = %+v", ro)
	}
	if rn.Alpha != 1 || rn.Beta != 0 || rn.Gamma != 3 || rn.Delta != 1 {
		t.Fatalf("DefaultRN = %+v", rn)
	}
	if ro.String() == "" {
		t.Fatal("String empty")
	}
}

func TestIncrementalMatchesFullSolve(t *testing.T) {
	p := fig3Problem(t)
	h := Hyperparams{Alpha: 3, Beta: 1, Gamma: 2, Delta: 0.5, Iterations: 200}

	full := SolveRO(p, h, SolveOptions{})

	// Start from the converged solution, corrupt two nodes, and repair
	// them incrementally with the others fixed. Since the fixed nodes are
	// already at the joint fixed point, local repair must restore it.
	w := full.W.Clone()
	vec.Fill(w.Row(0), 9)
	vec.Fill(w.Row(3), -9)
	sweeps := UpdateIncremental(p, w, []int{0, 3}, h, RO, IncrementalOptions{MaxIterations: 300, Tolerance: 1e-12})
	if sweeps <= 0 {
		t.Fatal("no sweeps performed")
	}
	if !w.Equal(full.W, 1e-6) {
		t.Fatalf("incremental repair diverges from full solve\n got %v\nwant %v", w, full.W)
	}
}

func TestIncrementalRN(t *testing.T) {
	p := fig3Problem(t)
	h := Hyperparams{Alpha: 1, Beta: 1, Gamma: 3, Delta: 1, Iterations: 200}
	full := SolveRN(p, h, SolveOptions{})
	w := full.W.Clone()
	vec.Fill(w.Row(2), 5)
	UpdateIncremental(p, w, []int{2}, h, RN, IncrementalOptions{MaxIterations: 300, Tolerance: 1e-12})
	if !w.Equal(full.W, 1e-6) {
		t.Fatal("RN incremental repair diverges from full solve")
	}
}

func TestIncrementalIgnoresOutOfRange(t *testing.T) {
	p := fig3Problem(t)
	h := DefaultRO()
	res := SolveRO(p, h, SolveOptions{})
	w := res.W.Clone()
	UpdateIncremental(p, w, []int{-1, 999}, h, RO, IncrementalOptions{})
	if !w.Equal(res.W, 0) {
		t.Fatal("out-of-range dirty ids must be ignored")
	}
}

func TestAffectedNodes(t *testing.T) {
	p := fig3Problem(t)
	got := AffectedNodes(p, []int{0}, 0)
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("hops=0: %v", got)
	}
	// 1 hop from Inception: USA.
	got = AffectedNodes(p, []int{0}, 1)
	if len(got) != 2 {
		t.Fatalf("hops=1: %v", got)
	}
	// 2 hops: USA's inverse neighbours (Inception, Godfather).
	got = AffectedNodes(p, []int{0}, 2)
	if len(got) != 3 {
		t.Fatalf("hops=2: %v", got)
	}
	// Whole reachable set (France/Amelie are in a separate component).
	got = AffectedNodes(p, []int{0}, 10)
	if len(got) != 3 {
		t.Fatalf("hops=10: %v", got)
	}
	// Out-of-range seeds ignored.
	if got := AffectedNodes(p, []int{-5, 99}, 3); len(got) != 0 {
		t.Fatalf("bad seeds: %v", got)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	p := fig3Problem(t)
	p.Groups[0].Inverse = 0 // break the twin link
	if err := p.Validate(); err == nil {
		t.Fatal("broken inverse link not caught")
	}
}
