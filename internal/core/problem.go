// Package core implements the paper's contribution: relational
// retrofitting (RETRO). It assembles the learning problem of §4.2 from an
// extraction and an initial embedding, derives the hyperparameter
// weighting of §4.4 (eqs. 12–14), and solves it with either the
// optimisation-based matrix iteration RO (eq. 10, with the complement
// optimisation of eq. 15) or the series-based iteration RN (eq. 11, with
// the precomputed target sums of eq. 16). The original retrofitting
// baseline of Faruqui et al. (MF) lives in faruqui.go.
package core

import (
	"fmt"

	"github.com/retrodb/retro/internal/extract"
	"github.com/retrodb/retro/internal/tokenize"
	"github.com/retrodb/retro/internal/vec"
)

// Edge is a directed relation edge between problem node ids.
type Edge struct{ From, To int }

// Group is one *directed* relation group. The paper's set R contains each
// extracted relation r together with its inverse r̄; Problem.Groups stores
// both, cross-linked via Inverse.
type Group struct {
	Name    string
	Inverse int // index of the inverse group within Problem.Groups

	// CSR-style adjacency over sources: for node i the targets are
	// Targets[RowPtr[i]:RowPtr[i+1]]. Rows exist for all n nodes.
	RowPtr  []int
	Targets []int32

	// SourceSet / TargetSet flag membership; SourceCount/TargetCount are
	// |S_r| and |T_r| (mc(r) of eq. 13 = max of the two).
	SourceSet   []bool
	TargetSet   []bool
	SourceCount int
	TargetCount int
}

// OutDeg returns od_r(i) = |{j : (i,j) ∈ E_r}| (eq. 12).
func (g *Group) OutDeg(i int) int { return g.RowPtr[i+1] - g.RowPtr[i] }

// EachEdge calls fn for every (from, to) edge of the group.
func (g *Group) EachEdge(fn func(from, to int)) {
	for i := 0; i+1 < len(g.RowPtr); i++ {
		for k := g.RowPtr[i]; k < g.RowPtr[i+1]; k++ {
			fn(i, int(g.Targets[k]))
		}
	}
}

// NumEdges returns |E_r|.
func (g *Group) NumEdges() int { return len(g.Targets) }

// Problem is the assembled §4.2 learning problem: n text values with
// initial vectors W0, per-value category centroids, and the directed
// relation groups (forward + inverse).
type Problem struct {
	N   int
	Dim int

	// W0 is the initial embedding (eq. 4's v'_i), built by §3.1
	// tokenization; OOV rows are null vectors.
	W0 *vec.Matrix
	// Centroid[i] is c_i of eq. (5): the (constant) mean of the ORIGINAL
	// vectors of i's column.
	Centroids *vec.Matrix
	// CategoryOf maps node id -> category id; Categories mirrors the
	// extraction's category list for labelling.
	CategoryOf []int
	Labels     []string // human-readable node labels (the text values)

	Groups []Group

	// NumRelTypes[i] is |R_i|: the number of directed groups in which node
	// i participates as a source (eq. 12 weights use |R_i|+1).
	NumRelTypes []int
}

// BuildProblem assembles the learning problem from an extraction and the
// tokenizer over the base embedding (§3.1 initialisation). All vectors and
// weights are deterministic.
func BuildProblem(ex *extract.Extraction, tok *tokenize.Tokenizer) *Problem {
	n := len(ex.Values)
	dim := tok.Store().Dim()
	p := &Problem{
		N:          n,
		Dim:        dim,
		W0:         vec.NewMatrix(n, dim),
		Centroids:  vec.NewMatrix(n, dim),
		CategoryOf: make([]int, n),
		Labels:     make([]string, n),
	}
	for _, v := range ex.Values {
		initial, _ := tok.InitialVector(v.Text)
		copy(p.W0.Row(v.ID), initial)
		p.CategoryOf[v.ID] = v.Category
		p.Labels[v.ID] = v.Text
	}

	// Per-category centroids of the ORIGINAL vectors (eq. 5).
	for _, c := range ex.Categories {
		if len(c.Members) == 0 {
			continue
		}
		centroid := make([]float64, dim)
		for _, m := range c.Members {
			vec.Axpy(centroid, 1, p.W0.Row(m))
		}
		vec.Scale(centroid, 1/float64(len(c.Members)))
		for _, m := range c.Members {
			copy(p.Centroids.Row(m), centroid)
		}
	}

	// Directed groups: forward + inverse per extracted relation.
	p.Groups = make([]Group, 0, 2*len(ex.Relations))
	for _, r := range ex.Relations {
		fwd := buildGroup(r.Name, n, edgesOf(r.Edges, false))
		inv := buildGroup(r.Name+"~inv", n, edgesOf(r.Edges, true))
		fi := len(p.Groups)
		fwd.Inverse = fi + 1
		inv.Inverse = fi
		p.Groups = append(p.Groups, fwd, inv)
	}

	p.NumRelTypes = make([]int, n)
	for gi := range p.Groups {
		g := &p.Groups[gi]
		for i := 0; i < n; i++ {
			if g.OutDeg(i) > 0 {
				p.NumRelTypes[i]++
			}
		}
	}
	return p
}

func edgesOf(src []extract.Edge, invert bool) []Edge {
	out := make([]Edge, len(src))
	for i, e := range src {
		if invert {
			out[i] = Edge{From: e.To, To: e.From}
		} else {
			out[i] = Edge{From: e.From, To: e.To}
		}
	}
	return out
}

// buildGroup compiles a directed edge list into CSR adjacency plus
// source/target bookkeeping. Edges must reference nodes < n.
func buildGroup(name string, n int, edges []Edge) Group {
	g := Group{
		Name:      name,
		RowPtr:    make([]int, n+1),
		Targets:   make([]int32, len(edges)),
		SourceSet: make([]bool, n),
		TargetSet: make([]bool, n),
	}
	counts := make([]int, n)
	for _, e := range edges {
		counts[e.From]++
	}
	for i := 0; i < n; i++ {
		g.RowPtr[i+1] = g.RowPtr[i] + counts[i]
	}
	next := make([]int, n)
	copy(next, g.RowPtr[:n])
	for _, e := range edges {
		g.Targets[next[e.From]] = int32(e.To)
		next[e.From]++
		if !g.SourceSet[e.From] {
			g.SourceSet[e.From] = true
			g.SourceCount++
		}
		if !g.TargetSet[e.To] {
			g.TargetSet[e.To] = true
			g.TargetCount++
		}
	}
	return g
}

// Validate sanity-checks the problem's internal consistency.
func (p *Problem) Validate() error {
	if p.N != p.W0.Rows || p.N != p.Centroids.Rows {
		return fmt.Errorf("core: matrix rows disagree with N=%d", p.N)
	}
	if len(p.CategoryOf) != p.N || len(p.NumRelTypes) != p.N {
		return fmt.Errorf("core: per-node slices disagree with N=%d", p.N)
	}
	for gi := range p.Groups {
		g := &p.Groups[gi]
		if g.Inverse < 0 || g.Inverse >= len(p.Groups) || p.Groups[g.Inverse].Inverse != gi {
			return fmt.Errorf("core: group %d inverse link broken", gi)
		}
		if len(g.RowPtr) != p.N+1 {
			return fmt.Errorf("core: group %d RowPtr length %d", gi, len(g.RowPtr))
		}
		if g.NumEdges() != p.Groups[g.Inverse].NumEdges() {
			return fmt.Errorf("core: group %d edge count mismatch with inverse", gi)
		}
	}
	return nil
}
