// Package core implements the paper's contribution: relational
// retrofitting (RETRO). It assembles the learning problem of §4.2 from an
// extraction and an initial embedding, derives the hyperparameter
// weighting of §4.4 (eqs. 12–14), and solves it with either the
// optimisation-based matrix iteration RO (eq. 10, with the complement
// optimisation of eq. 15) or the series-based iteration RN (eq. 11, with
// the precomputed target sums of eq. 16). The original retrofitting
// baseline of Faruqui et al. (MF) lives in faruqui.go.
package core

import (
	"fmt"

	"github.com/retrodb/retro/internal/extract"
	"github.com/retrodb/retro/internal/tokenize"
	"github.com/retrodb/retro/internal/vec"
)

// Edge is a directed relation edge between problem node ids.
type Edge struct{ From, To int }

// Group is one *directed* relation group. The paper's set R contains each
// extracted relation r together with its inverse r̄; Problem.Groups stores
// both, cross-linked via Inverse.
//
// Adjacency is a frozen CSR base plus a small overflow: GrowProblem
// appends edges into the per-source overflow lists so that adding an edge
// never rewrites the CSR arrays (which would cost O(|E_r| + n) per
// insert). Iteration goes through TargetLists/EachEdge, which cover both;
// once the overflow outgrows a fraction of the base the group is
// compacted back into pure CSR, keeping appends amortised O(1).
type Group struct {
	Name    string
	Inverse int // index of the inverse group within Problem.Groups

	// CSR-style adjacency over sources: for node i the base targets are
	// Targets[RowPtr[i]:RowPtr[i+1]]. The base covers the nodes that
	// existed when it was built; nodes appended later have no base row
	// (OutDeg treats them as empty) and live purely in the overflow.
	RowPtr  []int
	Targets []int32

	// extra holds edges appended after the base CSR was built, keyed by
	// source node; extraEdges counts them.
	extra      map[int32][]int32
	extraEdges int

	// SourceSet / TargetSet flag membership; SourceCount/TargetCount are
	// |S_r| and |T_r| (mc(r) of eq. 13 = max of the two).
	SourceSet   []bool
	TargetSet   []bool
	SourceCount int
	TargetCount int

	// MaxRel caches mr(r) of eq. (13): max |R_i|+1 over every node that
	// participates in E_r ∪ E_r̄. Problem growth only ever adds edges, so
	// the max is monotone and can be maintained incrementally.
	MaxRel int
}

// baseDeg returns the out-degree within the frozen CSR base.
func (g *Group) baseDeg(i int) int {
	if i+1 >= len(g.RowPtr) {
		return 0 // node appended after the base was built, or empty base
	}
	return g.RowPtr[i+1] - g.RowPtr[i]
}

// OutDeg returns od_r(i) = |{j : (i,j) ∈ E_r}| (eq. 12).
func (g *Group) OutDeg(i int) int { return g.baseDeg(i) + len(g.extra[int32(i)]) }

// TargetLists returns node i's targets as two slices — the frozen CSR
// base and the appended overflow — so hot loops iterate without closure
// overhead. Either slice may be empty; neither may be mutated.
func (g *Group) TargetLists(i int) (base, extra []int32) {
	if i+1 < len(g.RowPtr) {
		base = g.Targets[g.RowPtr[i]:g.RowPtr[i+1]]
	}
	return base, g.extra[int32(i)]
}

// EachEdge calls fn for every (from, to) edge of the group.
func (g *Group) EachEdge(fn func(from, to int)) {
	for i := 0; i+1 < len(g.RowPtr); i++ {
		for k := g.RowPtr[i]; k < g.RowPtr[i+1]; k++ {
			fn(i, int(g.Targets[k]))
		}
	}
	for from, targets := range g.extra {
		for _, to := range targets {
			fn(int(from), int(to))
		}
	}
}

// NumEdges returns |E_r|.
func (g *Group) NumEdges() int { return len(g.Targets) + g.extraEdges }

// Problem is the assembled §4.2 learning problem: n text values with
// initial vectors W0, per-value category centroids, and the directed
// relation groups (forward + inverse).
type Problem struct {
	N   int
	Dim int

	// W0 is the initial embedding (eq. 4's v'_i), built by §3.1
	// tokenization; OOV rows are null vectors.
	W0 *vec.Matrix
	// Centroid[i] is c_i of eq. (5): the (constant) mean of the ORIGINAL
	// vectors of i's column.
	Centroids *vec.Matrix
	// CategoryOf maps node id -> category id; Categories mirrors the
	// extraction's category list for labelling.
	CategoryOf []int
	Labels     []string // human-readable node labels (the text values)

	Groups []Group

	// NumRelTypes[i] is |R_i|: the number of directed groups in which node
	// i participates as a source (eq. 12 weights use |R_i|+1).
	NumRelTypes []int

	// catSums/catCounts back incremental centroid maintenance: per
	// category, the running sum of the ORIGINAL (W0) member vectors and
	// the member count, so a grown problem can refresh any node's
	// Centroids row in O(dim) without re-scanning the column.
	catSums   *vec.Matrix
	catCounts []int
}

// RefreshCentroids rewrites the Centroids rows of the given nodes from
// the per-category running sums, bringing them up to date after the
// categories gained members through GrowProblem. Only the rows about to
// be re-solved need refreshing; unread rows may stay stale.
func (p *Problem) RefreshCentroids(ids []int) {
	if p.catSums == nil {
		return // hand-built problem that was never grown
	}
	for _, i := range ids {
		if i < 0 || i >= p.N {
			continue
		}
		c := p.CategoryOf[i]
		row := p.Centroids.Row(i)
		if n := p.catCounts[c]; n > 0 {
			copy(row, p.catSums.Row(c))
			vec.Scale(row, 1/float64(n))
		} else {
			vec.Zero(row)
		}
	}
}

// BuildProblem assembles the learning problem from an extraction and the
// tokenizer over the base embedding (§3.1 initialisation). All vectors and
// weights are deterministic.
func BuildProblem(ex *extract.Extraction, tok *tokenize.Tokenizer) *Problem {
	n := len(ex.Values)
	dim := tok.Store().Dim()
	p := &Problem{
		N:          n,
		Dim:        dim,
		W0:         vec.NewMatrix(n, dim),
		Centroids:  vec.NewMatrix(n, dim),
		CategoryOf: make([]int, n),
		Labels:     make([]string, n),
	}
	for _, v := range ex.Values {
		initial, _ := tok.InitialVector(v.Text)
		copy(p.W0.Row(v.ID), initial)
		p.CategoryOf[v.ID] = v.Category
		p.Labels[v.ID] = v.Text
	}

	// Per-category centroids of the ORIGINAL vectors (eq. 5). The
	// unscaled sums are kept so GrowProblem can maintain centroids
	// incrementally as categories gain members.
	p.catSums = vec.NewMatrix(len(ex.Categories), dim)
	p.catCounts = make([]int, len(ex.Categories))
	for _, c := range ex.Categories {
		if len(c.Members) == 0 {
			continue
		}
		sum := p.catSums.Row(c.ID)
		for _, m := range c.Members {
			vec.Axpy(sum, 1, p.W0.Row(m))
		}
		p.catCounts[c.ID] = len(c.Members)
		centroid := make([]float64, dim)
		copy(centroid, sum)
		vec.Scale(centroid, 1/float64(len(c.Members)))
		for _, m := range c.Members {
			copy(p.Centroids.Row(m), centroid)
		}
	}

	// Directed groups: forward + inverse per extracted relation.
	p.Groups = make([]Group, 0, 2*len(ex.Relations))
	for _, r := range ex.Relations {
		fwd := buildGroup(r.Name, n, edgesOf(r.Edges, false))
		inv := buildGroup(r.Name+"~inv", n, edgesOf(r.Edges, true))
		fi := len(p.Groups)
		fwd.Inverse = fi + 1
		inv.Inverse = fi
		p.Groups = append(p.Groups, fwd, inv)
	}

	p.NumRelTypes = make([]int, n)
	for gi := range p.Groups {
		g := &p.Groups[gi]
		for i := 0; i < n; i++ {
			if g.OutDeg(i) > 0 {
				p.NumRelTypes[i]++
			}
		}
	}
	computeMaxRel(p)
	return p
}

// computeMaxRel fills each group's cached mr(r) (eq. 13) from scratch.
// GrowProblem maintains the caches incrementally afterwards.
func computeMaxRel(p *Problem) {
	for gi := range p.Groups {
		g := &p.Groups[gi]
		mr := 0
		for i := 0; i < p.N; i++ {
			if g.SourceSet[i] || g.TargetSet[i] {
				if rt := p.NumRelTypes[i] + 1; rt > mr {
					mr = rt
				}
			}
		}
		g.MaxRel = mr
	}
}

func edgesOf(src []extract.Edge, invert bool) []Edge {
	out := make([]Edge, len(src))
	for i, e := range src {
		if invert {
			out[i] = Edge{From: e.To, To: e.From}
		} else {
			out[i] = Edge{From: e.From, To: e.To}
		}
	}
	return out
}

// buildGroup compiles a directed edge list into CSR adjacency plus
// source/target bookkeeping. Edges must reference nodes < n.
func buildGroup(name string, n int, edges []Edge) Group {
	g := Group{
		Name:      name,
		RowPtr:    make([]int, n+1),
		Targets:   make([]int32, len(edges)),
		SourceSet: make([]bool, n),
		TargetSet: make([]bool, n),
	}
	counts := make([]int, n)
	for _, e := range edges {
		counts[e.From]++
	}
	for i := 0; i < n; i++ {
		g.RowPtr[i+1] = g.RowPtr[i] + counts[i]
	}
	next := make([]int, n)
	copy(next, g.RowPtr[:n])
	for _, e := range edges {
		g.Targets[next[e.From]] = int32(e.To)
		next[e.From]++
		if !g.SourceSet[e.From] {
			g.SourceSet[e.From] = true
			g.SourceCount++
		}
		if !g.TargetSet[e.To] {
			g.TargetSet[e.To] = true
			g.TargetCount++
		}
	}
	return g
}

// Validate sanity-checks the problem's internal consistency.
func (p *Problem) Validate() error {
	if p.N != p.W0.Rows || p.N != p.Centroids.Rows {
		return fmt.Errorf("core: matrix rows disagree with N=%d", p.N)
	}
	if len(p.CategoryOf) != p.N || len(p.NumRelTypes) != p.N {
		return fmt.Errorf("core: per-node slices disagree with N=%d", p.N)
	}
	for gi := range p.Groups {
		g := &p.Groups[gi]
		if g.Inverse < 0 || g.Inverse >= len(p.Groups) || p.Groups[g.Inverse].Inverse != gi {
			return fmt.Errorf("core: group %d inverse link broken", gi)
		}
		if len(g.RowPtr) > p.N+1 {
			return fmt.Errorf("core: group %d RowPtr length %d exceeds N+1", gi, len(g.RowPtr))
		}
		if len(g.SourceSet) != p.N || len(g.TargetSet) != p.N {
			return fmt.Errorf("core: group %d membership sets disagree with N=%d", gi, p.N)
		}
		if g.NumEdges() != p.Groups[g.Inverse].NumEdges() {
			return fmt.Errorf("core: group %d edge count mismatch with inverse", gi)
		}
	}
	return nil
}
