package core

import (
	"sort"

	"github.com/retrodb/retro/internal/vec"
)

// SolveFaruqui runs the original retrofitting of Faruqui et al. (the MF
// baseline of §5) over the undirected union of all relation edges, using
// the simplified update of eq. (3):
//
//	v_i = ( α_i v'_i + Σ_{j:(i,j)∈E_F} β_i v_j ) / ( α_i + Σ β_i )
//
// with the standard configuration α_i = 1 and β_i = 1/degree(i) (§5.2).
// The paper runs 20 iterations; pass iterations <= 0 for that default.
//
// The MF baseline models the database simply: every relation edge becomes
// an undirected lexicon edge, with no categorial term and no negative
// (dissimilarity) term — exactly the "simplified modeling of database
// relations" §5.3 credits for its speed and blames for its accuracy.
func SolveFaruqui(p *Problem, alpha float64, iterations int) *Result {
	if iterations <= 0 {
		iterations = 20
	}
	if alpha <= 0 {
		alpha = 1
	}
	adj := undirectedAdjacency(p)

	cur := p.W0.Clone()
	next := vec.NewMatrix(p.N, p.Dim)
	for iter := 0; iter < iterations; iter++ {
		for i := 0; i < p.N; i++ {
			row := next.Row(i)
			nbrs := adj[i]
			if len(nbrs) == 0 {
				copy(row, cur.Row(i))
				continue
			}
			beta := 1 / float64(len(nbrs))
			vec.Zero(row)
			vec.Axpy(row, alpha, p.W0.Row(i))
			for _, j := range nbrs {
				vec.Axpy(row, beta, cur.Row(int(j)))
			}
			// Denominator: α + Σ β_i = α + deg·(1/deg) = α + 1.
			vec.Scale(row, 1/(alpha+1))
		}
		cur, next = next, cur
	}
	return &Result{W: cur, Iterations: iterations}
}

// undirectedAdjacency merges every relation group's edges into one
// undirected, deduplicated adjacency list (the lexicon graph E_F).
// Forward groups suffice: inverse groups mirror the same edges.
func undirectedAdjacency(p *Problem) [][]int32 {
	adj := make([][]int32, p.N)
	for gi := range p.Groups {
		if gi%2 == 1 {
			continue // skip inverse twins; edges identical reversed
		}
		g := &p.Groups[gi]
		g.EachEdge(func(from, to int) {
			adj[from] = append(adj[from], int32(to))
			adj[to] = append(adj[to], int32(from))
		})
	}
	for i := range adj {
		nbrs := adj[i]
		sort.Slice(nbrs, func(a, b int) bool { return nbrs[a] < nbrs[b] })
		dedup := nbrs[:0]
		var last int32 = -1
		for _, v := range nbrs {
			if v != last {
				dedup = append(dedup, v)
				last = v
			}
		}
		adj[i] = dedup
	}
	return adj
}
