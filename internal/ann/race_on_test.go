//go:build race

package ann

// raceEnabled reports that this test binary runs under the race
// detector; allocation-count assertions are skipped there (the detector
// may instrument pool internals) — the non-race CI job enforces them.
const raceEnabled = true
