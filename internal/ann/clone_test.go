package ann

import (
	"testing"
)

// snapshotTopK captures query results for a fixed probe set so a graph
// can be checked for bit-identical behaviour later.
func snapshotTopK(ix *Index, probes [][]float64, k int) [][]Result {
	out := make([][]Result, len(probes))
	for i, q := range probes {
		out[i] = ix.TopK(q, k, nil)
	}
	return out
}

func sameResults(a, b [][]Result) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// TestCloneIsolation: mutations on either side of a Clone are invisible
// to the other — the property the serving layer's copy-on-write
// discipline rests on.
func TestCloneIsolation(t *testing.T) {
	const n, dim, k = 600, 24, 10
	vectors := randomVectors(n+200, dim, 11)
	ix := buildIndex(t, vectors[:n], Params{})
	probes := randomVectors(20, dim, 99)

	before := snapshotTopK(ix, probes, k)
	cp := ix.Clone()

	// Mutate the clone heavily: inserts (linking into shared adjacency
	// neighbourhoods), overwrites (tombstone + relink) and deletes.
	for i := n; i < n+200; i++ {
		if err := cp.Insert(i, vectors[i]); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ {
		if err := cp.Insert(i, vectors[n+i]); err != nil {
			t.Fatal(err)
		}
	}
	for i := 50; i < 80; i++ {
		cp.Delete(i)
	}

	if got := snapshotTopK(ix, probes, k); !sameResults(before, got) {
		t.Fatal("mutating a clone changed the original's results")
	}
	if ix.Len() != n {
		t.Fatalf("original Len = %d after clone mutations, want %d", ix.Len(), n)
	}

	// And the other direction: mutate the original, the clone holds.
	cp2 := ix.Clone()
	want := snapshotTopK(cp2, probes, k)
	for i := 0; i < 40; i++ {
		if err := ix.Insert(i, vectors[n+100+i]); err != nil {
			t.Fatal(err)
		}
	}
	if got := snapshotTopK(cp2, probes, k); !sameResults(want, got) {
		t.Fatal("mutating the original changed a clone's results")
	}
}

// TestCloneRNGReplay: a clone continues the level sequence exactly where
// the original is, so identical post-clone insert streams produce
// identical graphs on both sides (the same guarantee io.Read gives a
// deserialised index).
func TestCloneRNGReplay(t *testing.T) {
	const n, extra, dim, k = 300, 120, 16, 10
	vectors := randomVectors(n+extra, dim, 7)
	a := buildIndex(t, vectors[:n], Params{})
	b := a.Clone()

	for i := n; i < n+extra; i++ {
		if err := a.Insert(i, vectors[i]); err != nil {
			t.Fatal(err)
		}
		if err := b.Insert(i, vectors[i]); err != nil {
			t.Fatal(err)
		}
	}
	if a.MaxLevel() != b.MaxLevel() {
		t.Fatalf("max levels diverged: %d vs %d", a.MaxLevel(), b.MaxLevel())
	}
	probes := randomVectors(25, dim, 3)
	if !sameResults(snapshotTopK(a, probes, k), snapshotTopK(b, probes, k)) {
		t.Fatal("original and clone diverged under an identical insert stream")
	}
}

// TestTopKAppendReusesDst: the append variant fills the caller's buffer
// and matches TopK exactly.
func TestTopKAppendReusesDst(t *testing.T) {
	const n, dim, k = 500, 16, 12
	vectors := randomVectors(n, dim, 5)
	ix := buildIndex(t, vectors, Params{})
	q := randomVectors(1, dim, 77)[0]

	want := ix.TopK(q, k, nil)
	buf := make([]Result, 0, k)
	got := ix.TopKAppend(q, k, nil, buf)
	if len(got) != len(want) {
		t.Fatalf("TopKAppend returned %d results, TopK %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rank %d: TopKAppend %+v vs TopK %+v", i, got[i], want[i])
		}
	}
	if &got[0] != &buf[:1][0] {
		t.Fatal("TopKAppend did not use the caller's buffer despite sufficient capacity")
	}
}

// TestTopKAppendZeroAlloc guards the allocation-free query contract: with
// a warm scratch pool and a caller-owned result buffer, a search touches
// the heap zero times.
func TestTopKAppendZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are asserted without the race detector")
	}
	const n, dim, k = 2000, 32, 10
	vectors := randomVectors(n, dim, 21)
	ix := buildIndex(t, vectors, Params{})
	q := randomVectors(1, dim, 8)[0]
	buf := make([]Result, 0, k)
	// Warm the scratch pool.
	buf = ix.TopKAppend(q, k, nil, buf)
	allocs := testing.AllocsPerRun(200, func() {
		buf = ix.TopKAppend(q, k, nil, buf)
	})
	if allocs != 0 {
		t.Fatalf("TopKAppend allocated %.2f times per query, want 0", allocs)
	}
}
