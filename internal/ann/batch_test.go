package ann

import (
	"math/rand"
	"testing"

	"github.com/retrodb/retro/internal/cpu"
)

// assertBatchMatchesLoop asserts the core TopKMany contract: per query,
// the batch result is BIT-IDENTICAL to the single-query call — same
// ids, same float64 score bits, same order. Scheduling is the only
// thing the batch engine is allowed to change.
func assertBatchMatchesLoop(t *testing.T, ix *Index, queries [][]float64, ks []int, skip func(qi, id int) bool) {
	t.Helper()
	got := ix.TopKManyAppend(queries, ks, skip, nil)
	if len(got) != len(queries) {
		t.Fatalf("TopKMany returned %d result sets for %d queries", len(got), len(queries))
	}
	for qi := range queries {
		var single func(id int) bool
		if skip != nil {
			qi := qi
			single = func(id int) bool { return skip(qi, id) }
		}
		want := ix.TopK(queries[qi], ks[qi], single)
		if len(got[qi]) != len(want) {
			t.Fatalf("query %d: batch returned %d results, single %d", qi, len(got[qi]), len(want))
		}
		for i := range want {
			if got[qi][i] != want[i] {
				t.Fatalf("query %d result %d: batch %+v, single %+v", qi, i, got[qi][i], want[i])
			}
		}
	}
}

// batchParityIndexes builds the exact and quantized variants the parity
// suite runs against.
func batchParityIndexes(t *testing.T) map[string]*Index {
	t.Helper()
	vectors := randomVectors(900, 32, 41)
	exact := buildIndex(t, vectors, Params{EfSearch: 48})
	quantized := buildIndex(t, vectors, Params{EfSearch: 48})
	quantized.QuantizeSQ8(3)
	return map[string]*Index{"exact": exact, "quantized": quantized}
}

// TestTopKManyMatchesLoopedTopK is the property test of the batch
// engine: over exact and quantized indexes and every kernel dispatch
// level this CPU has, TopKMany(queries) == [TopK(q) for q in queries]
// bit for bit — including the quantized path's re-rank ordering,
// because the re-rank runs under the same dispatched float64 kernel.
func TestTopKManyMatchesLoopedTopK(t *testing.T) {
	indexes := batchParityIndexes(t)
	queries := randomVectors(37, 32, 43) // crosses block boundaries: 37 = 4*8 + 5
	orig := cpu.Active()
	defer cpu.SetLevel(orig)
	for name, ix := range indexes {
		for _, l := range []cpu.Level{cpu.Scalar, cpu.SSE2, cpu.AVX2} {
			if l > cpu.Detected() {
				continue
			}
			cpu.SetLevel(l)
			t.Run(name+"/"+l.String(), func(t *testing.T) {
				ks := make([]int, len(queries))
				for i := range ks {
					ks[i] = 10
				}
				assertBatchMatchesLoop(t, ix, queries, ks, nil)
			})
		}
	}
	cpu.SetLevel(orig)
}

// TestTopKManyPerQueryKAndSkip exercises the envelope features the HTTP
// batch endpoint relies on: per-item k values (including zero and
// k > index size) and a per-query skip callback.
func TestTopKManyPerQueryKAndSkip(t *testing.T) {
	indexes := batchParityIndexes(t)
	queries := randomVectors(19, 32, 47)
	ks := make([]int, len(queries))
	for i := range ks {
		ks[i] = []int{1, 3, 10, 0, 5000, 7, 2, -1}[i%8]
	}
	skip := func(qi, id int) bool { return id%7 == qi%7 }
	for name, ix := range indexes {
		t.Run(name, func(t *testing.T) {
			assertBatchMatchesLoop(t, ix, queries, ks, skip)
		})
	}
}

// TestTopKManyWithTombstones: tombstone beam widening must match the
// single path, and deleted ids must never surface.
func TestTopKManyWithTombstones(t *testing.T) {
	for name, ix := range batchParityIndexes(t) {
		t.Run(name, func(t *testing.T) {
			for id := 0; id < 900; id += 3 {
				ix.Delete(id)
			}
			queries := randomVectors(11, 32, 53)
			ks := make([]int, len(queries))
			for i := range ks {
				ks[i] = 10
			}
			assertBatchMatchesLoop(t, ix, queries, ks, nil)
			got := ix.TopKMany(queries, 10, nil)
			for qi, rs := range got {
				for _, r := range rs {
					if r.ID%3 == 0 {
						t.Fatalf("query %d returned deleted id %d", qi, r.ID)
					}
				}
			}
		})
	}
}

// TestTopKManyDegenerateQueries: zero vectors and empty batches produce
// empty per-query results without disturbing their neighbors in the
// block.
func TestTopKManyDegenerateQueries(t *testing.T) {
	indexes := batchParityIndexes(t)
	for name, ix := range indexes {
		t.Run(name, func(t *testing.T) {
			queries := randomVectors(5, 32, 59)
			for i := range queries[2] {
				queries[2][i] = 0 // zero vector mid-block
			}
			ks := []int{10, 10, 10, 10, 10}
			assertBatchMatchesLoop(t, ix, queries, ks, nil)
			if got := ix.TopKMany(nil, 10, nil); len(got) != 0 {
				t.Fatalf("empty batch returned %d result sets", len(got))
			}
		})
	}
}

// TestTopKManyEmptyIndex: every query of a batch against an empty index
// comes back empty.
func TestTopKManyEmptyIndex(t *testing.T) {
	ix := New(8, Params{})
	got := ix.TopKMany(randomVectors(3, 8, 61), 5, nil)
	for qi, rs := range got {
		if len(rs) != 0 {
			t.Fatalf("query %d on empty index returned %d results", qi, len(rs))
		}
	}
}

// TestTopKManyAppendReusesStorage: a second call with the returned
// slices must not grow them, and must leave correct contents.
func TestTopKManyAppendReusesStorage(t *testing.T) {
	indexes := batchParityIndexes(t)
	ix := indexes["quantized"]
	queries := randomVectors(9, 32, 67)
	ks := make([]int, len(queries))
	for i := range ks {
		ks[i] = 10
	}
	dst := ix.TopKManyAppend(queries, ks, nil, nil)
	// Warm the pools, then verify reuse returns identical results.
	again := ix.TopKManyAppend(queries, ks, nil, dst)
	assertBatchMatchesLoop(t, ix, queries, ks, nil)
	if len(again) != len(queries) {
		t.Fatalf("reused call returned %d sets", len(again))
	}
}

// TestTopKManyStats: the aggregate stats must be consistent with the
// work the batch performed.
func TestTopKManyStats(t *testing.T) {
	indexes := batchParityIndexes(t)
	queries := randomVectors(12, 32, 71)
	ks := make([]int, len(queries))
	for i := range ks {
		ks[i] = 10
	}
	for name, ix := range indexes {
		t.Run(name, func(t *testing.T) {
			var st SearchStats
			ix.TopKManyAppendStats(queries, ks, nil, nil, &st)
			if st.Hops == 0 || st.Nodes == 0 {
				t.Fatalf("batch stats empty: %+v", st)
			}
			if st.WalkNs <= 0 {
				t.Fatalf("no walk time recorded: %+v", st)
			}
			quantized := ix.Quantized()
			if st.Quantized != quantized {
				t.Fatalf("Quantized=%v on %s index", st.Quantized, name)
			}
			if quantized && st.Reranked == 0 {
				t.Fatalf("quantized batch reranked nothing: %+v", st)
			}
			if !quantized && st.Reranked != 0 {
				t.Fatalf("exact batch reports reranked=%d", st.Reranked)
			}
		})
	}
}

// TestTopKManyKsMismatchPanics guards the API contract.
func TestTopKManyKsMismatchPanics(t *testing.T) {
	ix := New(8, Params{})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on ks length mismatch")
		}
	}()
	ix.TopKManyAppend(randomVectors(2, 8, 73), []int{5}, nil, nil)
}

// TestTopKManyConcurrent: batches must be safe to run concurrently with
// each other and with single queries (the race detector is the real
// assertion here).
func TestTopKManyConcurrent(t *testing.T) {
	indexes := batchParityIndexes(t)
	ix := indexes["quantized"]
	queries := randomVectors(16, 32, 79)
	ks := make([]int, len(queries))
	for i := range ks {
		ks[i] = 5
	}
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		go func(seed int64) {
			defer func() { done <- struct{}{} }()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 20; i++ {
				if rng.Intn(2) == 0 {
					ix.TopKMany(queries, 5, nil)
				} else {
					ix.TopK(queries[rng.Intn(len(queries))], 5, nil)
				}
			}
		}(int64(w))
	}
	for w := 0; w < 4; w++ {
		<-done
	}
}

// TestTopKManyZeroAlloc guards the batch engine's steady state: with a
// warm batch-scratch pool and caller-owned dst, a whole batch must not
// allocate — per-query heaps, visited marks, pending buffers and query
// codes all come from the pooled block scratch.
func TestTopKManyZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unreliable under the race detector")
	}
	vectors := randomVectors(2000, 32, 13)
	for _, quantized := range []bool{false, true} {
		name := "exact"
		if quantized {
			name = "quantized"
		}
		t.Run(name, func(t *testing.T) {
			ix := buildIndex(t, vectors, DefaultParams())
			if quantized {
				ix.QuantizeSQ8(3)
			}
			queries := randomVectors(16, 32, 17)
			ks := make([]int, len(queries))
			for i := range ks {
				ks[i] = 10
			}
			dst := make([][]Result, len(queries))
			for i := range dst {
				dst[i] = make([]Result, 0, 16)
			}
			var st SearchStats
			dst = ix.TopKManyAppendStats(queries, ks, nil, dst, &st) // warm pools
			allocs := testing.AllocsPerRun(50, func() {
				dst = ix.TopKManyAppendStats(queries, ks, nil, dst, &st)
			})
			if allocs != 0 {
				t.Fatalf("TopKMany allocated %.2f times per batch, want 0", allocs)
			}
		})
	}
}
