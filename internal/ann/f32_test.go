package ann

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

// The float32 index must answer like the float64 index built from the
// same data: the stored rows differ only by the one float32 rounding at
// the insert boundary, and the Dot32 kernel accumulates in float64, so
// scores agree to ~1e-6 and the returned neighbour sets are essentially
// identical (ids may swap only across genuine near-ties).

func buildPairedIndexes(t *testing.T, n, dim int, p Params, quantize bool) (*Index, *Index) {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	ix64 := New(dim, p)
	ix32 := New32(dim, p)
	for i := 0; i < n; i++ {
		v := make([]float64, dim)
		for d := range v {
			v[d] = rng.NormFloat64()
		}
		// Round once before inserting into BOTH sides, so the only
		// difference between the indexes is the storage representation,
		// not the input data.
		for d := range v {
			v[d] = float64(float32(v[d]))
		}
		if err := ix64.Insert(i, v); err != nil {
			t.Fatalf("f64 insert %d: %v", i, err)
		}
		if err := ix32.Insert(i, v); err != nil {
			t.Fatalf("f32 insert %d: %v", i, err)
		}
	}
	if quantize {
		ix64.QuantizeSQ8(0)
		ix32.QuantizeSQ8(0)
	}
	return ix64, ix32
}

func queryOverlap(a, b []Result) int {
	seen := make(map[int]bool, len(a))
	for _, r := range a {
		seen[r.ID] = true
	}
	n := 0
	for _, r := range b {
		if seen[r.ID] {
			n++
		}
	}
	return n
}

func TestF32IndexMatchesF64(t *testing.T) {
	for _, quantize := range []bool{false, true} {
		name := "exact"
		if quantize {
			name = "quantized"
		}
		t.Run(name, func(t *testing.T) {
			const n, dim, k = 600, 48, 10
			ix64, ix32 := buildPairedIndexes(t, n, dim, DefaultParams(), quantize)
			if quantize {
				// Codes are trained and encoded through float64 arithmetic
				// on both sides, so they must be bit-identical.
				if !bytes.Equal(int8Bytes(ix64.qflat), int8Bytes(ix32.qflat)) {
					t.Fatal("SQ8 codes differ between f32 and f64 indexes")
				}
			}
			rng := rand.New(rand.NewSource(7))
			total, matched := 0, 0
			for qi := 0; qi < 50; qi++ {
				q := make([]float64, dim)
				for d := range q {
					q[d] = rng.NormFloat64()
				}
				r64 := ix64.TopK(q, k, nil)
				r32 := ix32.TopK(q, k, nil)
				if len(r64) != len(r32) {
					t.Fatalf("query %d: %d vs %d results", qi, len(r64), len(r32))
				}
				total += len(r64)
				matched += queryOverlap(r64, r32)
				for i := range r64 {
					if d := math.Abs(r64[i].Score - r32[i].Score); d > 1e-5 {
						t.Fatalf("query %d rank %d: score %g vs %g", qi, i, r64[i].Score, r32[i].Score)
					}
				}
			}
			if float64(matched) < 0.99*float64(total) {
				t.Fatalf("f32/f64 neighbour overlap %d/%d below 99%%", matched, total)
			}
		})
	}
}

func int8Bytes(a []int8) []byte {
	out := make([]byte, len(a))
	for i, v := range a {
		out[i] = byte(v)
	}
	return out
}

// Batch results on a float32 index must be bit-identical to the
// single-query path, same as the float64 contract.
func TestF32BatchMatchesSingle(t *testing.T) {
	const n, dim, k = 400, 32, 8
	for _, quantize := range []bool{false, true} {
		_, ix := buildPairedIndexes(t, n, dim, DefaultParams(), quantize)
		rng := rand.New(rand.NewSource(11))
		queries := make([][]float64, 64)
		for i := range queries {
			q := make([]float64, dim)
			for d := range q {
				q[d] = rng.NormFloat64()
			}
			queries[i] = q
		}
		batch := ix.TopKMany(queries, k, nil)
		for qi, q := range queries {
			single := ix.TopK(q, k, nil)
			if len(single) != len(batch[qi]) {
				t.Fatalf("quantize=%v query %d: batch %d vs single %d results", quantize, qi, len(batch[qi]), len(single))
			}
			for i := range single {
				if single[i] != batch[qi][i] {
					t.Fatalf("quantize=%v query %d rank %d: batch %+v vs single %+v", quantize, qi, i, batch[qi][i], single[i])
				}
			}
		}
	}
}

// A graph written by either precision loads into either precision: the
// on-disk layout has always packed vectors as float32.
func TestF32GraphCrossPrecisionIO(t *testing.T) {
	const n, dim, k = 300, 24, 5
	ix64, ix32 := buildPairedIndexes(t, n, dim, DefaultParams(), false)

	var buf64, buf32 bytes.Buffer
	if _, err := ix64.WriteTo(&buf64); err != nil {
		t.Fatal(err)
	}
	if _, err := ix32.WriteTo(&buf32); err != nil {
		t.Fatal(err)
	}
	// Same insertion order, same rounded inputs, same level RNG — the
	// serialised graphs must be byte-identical across precisions.
	if !bytes.Equal(buf64.Bytes(), buf32.Bytes()) {
		t.Fatal("serialised f32 and f64 graphs differ")
	}

	q := make([]float64, dim)
	rng := rand.New(rand.NewSource(3))
	for d := range q {
		q[d] = rng.NormFloat64()
	}
	want := ix32.TopK(q, k, nil)
	for name, load := range map[string]func() (*Index, error){
		"f64file-f32index": func() (*Index, error) { return Read32(bytes.NewReader(buf64.Bytes())) },
		"f32file-f32index": func() (*Index, error) { return Read32(bytes.NewReader(buf32.Bytes())) },
		"f32file-f64index": func() (*Index, error) { return Read(bytes.NewReader(buf32.Bytes())) },
	} {
		got, err := load()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		res := got.TopK(q, k, nil)
		if len(res) != len(want) {
			t.Fatalf("%s: %d vs %d results", name, len(res), len(want))
		}
		for i := range res {
			if res[i].ID != want[i].ID || math.Abs(res[i].Score-want[i].Score) > 1e-6 {
				t.Fatalf("%s rank %d: %+v vs %+v", name, i, res[i], want[i])
			}
		}
	}
}

// MemoryStats must reflect the representation: an f32 graph's vector
// payload is exactly half the f64 one's.
func TestF32MemoryStats(t *testing.T) {
	ix64, ix32 := buildPairedIndexes(t, 200, 40, DefaultParams(), true)
	ms64, ms32 := ix64.MemoryStats(), ix32.MemoryStats()
	if ms64.VectorBytes != int64(200*40*8) {
		t.Fatalf("f64 VectorBytes = %d, want %d", ms64.VectorBytes, 200*40*8)
	}
	if ms32.VectorBytes*2 != ms64.VectorBytes {
		t.Fatalf("f32 VectorBytes = %d, f64 = %d, want half", ms32.VectorBytes, ms64.VectorBytes)
	}
	if ms32.CodeBytes != int64(200*40)+200*8 {
		t.Fatalf("CodeBytes = %d", ms32.CodeBytes)
	}
	if ms32.AdjacencyBytes == 0 || ms32.AdjacencyBytes != ms64.AdjacencyBytes {
		t.Fatalf("AdjacencyBytes = %d vs %d", ms32.AdjacencyBytes, ms64.AdjacencyBytes)
	}
}
