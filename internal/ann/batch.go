package ann

import (
	"slices"
	"time"
	"unsafe"

	"github.com/retrodb/retro/internal/cpu"
	"github.com/retrodb/retro/internal/quant"
	"github.com/retrodb/retro/internal/vec"
)

// This file is the batched query engine: TopKMany runs Q queries through
// the graph together and returns, per query, exactly what a TopK call
// would have — bit-identical results, proven by the property tests. The
// speedup is entirely scheduling, in three places:
//
//   - Upper-layer descent is coalesced: queries sitting at the same node
//     share one adjacency load, and each neighbor's code is scored
//     against the whole group in one quant.Dot8Many call, so the node
//     operand is streamed from memory once per group instead of once
//     per query.
//
//   - The layer-0 beam is interleaved: queries advance round-robin in
//     blocks of batchBlock, and each expansion is split in two — the
//     turn that pops a candidate gathers its unvisited neighbors and
//     issues prefetches for their codes, and the *next* turn scores
//     them. The other queries' arithmetic fills the DRAM latency the
//     prefetches are hiding; a lone query has nothing to overlap that
//     wait with, which is why this engine beats a loop of TopK calls
//     even on one core.
//
//   - The exact re-rank prefetches the next candidate's float64 row
//     (those rows live in a matrix far larger than cache) while the
//     current one is being scored.
//
// Per-query algorithm state — visited marks, both beam heaps, the
// greedy-descent position — evolves exactly as it does in TopKAppend,
// in the same order, under the same kernels, so ties, tombstone
// widening and re-rank cut-offs all agree with the single-query path.

// batchBlock is the number of queries traversed together. Eight is
// enough in-flight work to cover a DRAM miss (~10 dot products per
// stall) while the per-block scratch (visited marks, heaps) stays small
// enough to pool.
const batchBlock = 8

// batchQueryState is one query's slice of the block scratch: the same
// pieces searchScratch carries for a single query, plus the descent
// cursor and the two-phase expansion buffer.
type batchQueryState struct {
	visited visitedSet
	q       []float64 // unit-normalised query
	q32     []float32 // narrowed query (f32 index only)
	qcode   []int8
	qscale  float64
	useQ    bool

	cands   candHeap // layer-0 beam min-heap
	results candHeap // layer-0 beam max-heap (bounded at ef)
	pending []int32  // gathered, prefetched, not-yet-scored neighbors

	cur  int32   // descent cursor: current closest slot
	curD float64 // its distance

	improved  bool // descent: this round found a closer neighbor
	active    bool // descent: still iterating rounds on this layer
	searching bool // beam: not yet terminated

	empty    bool // degenerate query: produce an empty result
	qi       int  // index into the caller's queries slice
	k        int
	fetch    int
	ef       int
	pops     int
	steps    int
	reranked int
}

// batchScratch is everything one TopKMany block needs, pooled on the
// index so steady-state batches allocate nothing.
type batchScratch struct {
	states [batchBlock]batchQueryState
	qcodes [][]int8 // descent group operands for Dot8Many
	dots   [batchBlock]int32
	qmem   [batchBlock]*batchQueryState // quantized descent-group members
	xmem   [batchBlock]*batchQueryState // exact descent-group members
}

func (ix *Index) acquireBatchScratch() *batchScratch {
	bs, _ := ix.batchPool.Get().(*batchScratch)
	if bs == nil {
		bs = &batchScratch{qcodes: make([][]int8, 0, batchBlock)}
	}
	return bs
}

func (ix *Index) releaseBatchScratch(bs *batchScratch) {
	for j := range bs.states {
		bs.states[j].visited.reset()
	}
	ix.batchPool.Put(bs)
}

// TopKMany answers every query with its approximately k most
// cosine-similar live entries, excluding ids for which skip returns
// true (skip may be nil; qi is the query's index). Each query's result
// is identical to what TopK(queries[qi], k, ...) returns; the batch
// form exists because traversing queries together is substantially
// faster per query than a loop of TopK calls. Fresh result slices are
// allocated; hot paths use TopKManyAppend.
func (ix *Index) TopKMany(queries [][]float64, k int, skip func(qi, id int) bool) [][]Result {
	ks := make([]int, len(queries))
	for i := range ks {
		ks[i] = k
	}
	return ix.TopKManyAppend(queries, ks, skip, nil)
}

// TopKManyAppend is TopKMany with per-query k and caller-owned result
// storage: query i's hits are written into dst[i][:0] (dst is grown to
// len(queries) if short) and the slice of slices is returned. With warm
// capacity and a warm scratch pool a steady-state batch performs no
// allocation. Batches may run concurrently with each other and with
// single queries; the usual Insert/Delete exclusion applies.
func (ix *Index) TopKManyAppend(queries [][]float64, ks []int, skip func(qi, id int) bool, dst [][]Result) [][]Result {
	return ix.TopKManyAppendStats(queries, ks, skip, dst, nil)
}

// TopKManyAppendStats is TopKManyAppend with traversal telemetry: when
// st is non-nil it is overwritten with the batch's aggregate stats —
// hops, beam-scored nodes and re-ranked candidates summed over the
// queries, wall time split into one walk and one re-rank figure per
// batch, Quantized set if any query ran on codes.
func (ix *Index) TopKManyAppendStats(queries [][]float64, ks []int, skip func(qi, id int) bool, dst [][]Result, st *SearchStats) [][]Result {
	if len(queries) != len(ks) {
		panic("ann: TopKMany ks length mismatch")
	}
	if st != nil {
		*st = SearchStats{}
	}
	if cap(dst) < len(queries) {
		grown := make([][]Result, len(queries))
		copy(grown, dst)
		dst = grown
	}
	dst = dst[:len(queries)]
	for i := range dst {
		dst[i] = dst[i][:0]
	}
	if len(queries) == 0 {
		return dst
	}
	bs := ix.acquireBatchScratch()
	for base := 0; base < len(queries); base += batchBlock {
		n := min(batchBlock, len(queries)-base)
		ix.runBatchBlock(bs, queries, ks, skip, dst, base, n, st)
	}
	ix.releaseBatchScratch(bs)
	return dst
}

// stateDist scores slot under the state's prepared query, with the same
// kernels and operation order as the single-query dist/distQ/distX.
func (ix *Index) stateDist(s *batchQueryState, slot int32) float64 {
	nd := &ix.nodes[slot]
	if s.useQ {
		return 1 - float64(quant.Dot8(s.qcode, nd.code))*s.qscale*nd.corr
	}
	if ix.f32 {
		return 1 - vec.Dot32(s.q32, nd.vec32)
	}
	return 1 - vec.Dot(s.q, nd.vec)
}

func (ix *Index) runBatchBlock(bs *batchScratch, queries [][]float64, ks []int, skip func(qi, id int) bool, dst [][]Result, base, n int, st *SearchStats) {
	// Per-query setup: the same validation, clamps and beam sizing as
	// TopKAppendStats, applied per query so a batch of one is not a
	// special case.
	for j := 0; j < n; j++ {
		s := &bs.states[j]
		qi := base + j
		s.qi = qi
		s.empty = true
		s.searching = false
		s.pops, s.steps, s.reranked = 0, 0, 0
		s.visited.reset()
		query := queries[qi]
		if len(query) != ix.dim {
			// The scratch is simply not returned to the pool — a panic here
			// is a caller bug, not a path that needs to stay allocation-free.
			panic("ann: TopKMany query dimension mismatch")
		}
		k := ks[qi]
		if k <= 0 || ix.entry < 0 {
			continue
		}
		if k > len(ix.slots) {
			k = len(ix.slots)
		}
		qn := vec.Norm(query)
		if qn == 0 {
			continue
		}
		if cap(s.q) < ix.dim {
			s.q = make([]float64, ix.dim)
		}
		s.q = s.q[:ix.dim]
		for i, x := range query {
			s.q[i] = x / qn
		}
		if ix.f32 {
			if cap(s.q32) < ix.dim {
				s.q32 = make([]float32, ix.dim)
			}
			s.q32 = vec.Narrow(s.q32[:ix.dim], s.q)
		}
		s.useQ = false
		if ix.quant != nil {
			if cap(s.qcode) < ix.dim {
				s.qcode = make([]int8, ix.dim)
			}
			s.qcode = s.qcode[:ix.dim]
			s.qscale = ix.quant.EncodeQuery(s.qcode, s.q)
			s.useQ = s.qscale > 0
		}
		// Beam sizing: identical formulas to the single-query path (see
		// TopKAppendStats for the rationale behind each term).
		fetch := k
		ef := ix.params.EfSearch
		if s.useQ {
			r := ix.rerank
			if r < 1 {
				r = DefaultRerank
			}
			fetch = k * r
			if fetch > len(ix.slots) {
				fetch = len(ix.slots)
			}
			ef /= 2
		}
		if ef < fetch {
			ef = fetch
		}
		if ix.deleted > 0 {
			extra := min(ix.deleted, 2*fetch)
			if live := len(ix.slots); live > 0 {
				if prop := ef * ix.deleted / live; prop > extra {
					extra = prop
				}
			}
			ef += extra
		}
		if skip != nil {
			ef += fetch
		}
		s.k, s.fetch, s.ef = k, fetch, ef
		if len(s.visited.marks) < len(ix.nodes) {
			s.visited.marks = make([]bool, 2*len(ix.nodes))
		}
		s.cur = ix.entry
		s.curD = ix.stateDist(s, ix.entry)
		s.empty = false
	}

	var walkStart time.Time
	if st != nil {
		walkStart = time.Now()
	}

	// Coalesced greedy descent, one layer at a time. Queries whose round
	// found no improvement settle; the rest regroup by their new cursor.
	for l := ix.maxLevel; l > 0; l-- {
		for j := 0; j < n; j++ {
			bs.states[j].active = !bs.states[j].empty
		}
		for {
			anyActive := false
			for j := 0; j < n; j++ {
				if bs.states[j].active {
					bs.states[j].improved = false
					anyActive = true
				}
			}
			if !anyActive {
				break
			}
			var grouped [batchBlock]bool
			for j := 0; j < n; j++ {
				s := &bs.states[j]
				if !s.active || grouped[j] {
					continue
				}
				slot := s.cur
				nq, nx := 0, 0
				for m := j; m < n; m++ {
					t := &bs.states[m]
					if !t.active || grouped[m] || t.cur != slot {
						continue
					}
					grouped[m] = true
					if t.useQ {
						bs.qmem[nq] = t
						nq++
					} else {
						bs.xmem[nx] = t
						nx++
					}
				}
				ix.descentGroup(bs, slot, l, nq, nx)
			}
			for j := 0; j < n; j++ {
				s := &bs.states[j]
				if !s.active {
					continue
				}
				s.steps++
				if !s.improved {
					s.active = false
				}
			}
		}
	}

	// Interleaved layer-0 beam: seed every query at its descended entry,
	// then advance round-robin until all terminate.
	remaining := 0
	for j := 0; j < n; j++ {
		s := &bs.states[j]
		if s.empty {
			continue
		}
		s.cands.data = s.cands.data[:0]
		s.cands.min = true
		s.results.data = s.results.data[:0]
		s.results.min = false
		s.pending = s.pending[:0]
		s.visited.visit(s.cur)
		seed := candidate{s.cur, s.curD}
		s.cands.push(seed)
		s.results.push(seed)
		s.searching = true
		remaining++
	}
	for remaining > 0 {
		for j := 0; j < n; j++ {
			s := &bs.states[j]
			if !s.searching {
				continue
			}
			ix.beamTurn(s)
			if !s.searching {
				remaining--
			}
		}
	}

	var rerankStart time.Time
	if st != nil {
		walkNs := time.Since(walkStart).Nanoseconds()
		st.WalkNs += walkNs
		for j := 0; j < n; j++ {
			s := &bs.states[j]
			if s.empty {
				continue
			}
			st.Hops += s.pops + s.steps
			st.Nodes += len(s.visited.touched)
			if s.useQ {
				st.Quantized = true
			}
		}
		rerankStart = time.Now()
	}

	// Re-rank and order each query's beam output exactly as the
	// single-query path does.
	for j := 0; j < n; j++ {
		s := &bs.states[j]
		if s.empty {
			continue
		}
		dst[s.qi] = ix.rerankState(s, skip, dst[s.qi])
	}

	if st != nil {
		st.RerankNs += time.Since(rerankStart).Nanoseconds()
		for j := 0; j < n; j++ {
			st.Reranked += bs.states[j].reranked
		}
	}
}

// descentGroup runs one improvement round for every group member
// against the neighbor list of slot on layer l. The list is the one the
// members' round started at, so a member whose cursor advances mid-scan
// still scans the remaining entries — exactly greedyClosest's running
// minimum over a list bound at round start.
func (ix *Index) descentGroup(bs *batchScratch, slot int32, l, nq, nx int) {
	nbs := ix.nodes[slot].neighbors[l]
	dim := ix.dim
	if nq > 0 {
		bs.qcodes = bs.qcodes[:0]
		for m := 0; m < nq; m++ {
			bs.qcodes = append(bs.qcodes, bs.qmem[m].qcode)
		}
		for _, nb := range nbs {
			cpu.PrefetchRange(unsafe.Pointer(&ix.qflat[int(nb)*dim]), dim)
		}
	}
	for _, nb := range nbs {
		if nq > 0 {
			n := int(nb)
			c := ix.qcorr[n]
			quant.Dot8Many(ix.qflat[n*dim:(n+1)*dim], bs.qcodes, bs.dots[:nq])
			for m := 0; m < nq; m++ {
				s := bs.qmem[m]
				if d := 1 - float64(bs.dots[m])*s.qscale*c; d < s.curD {
					s.cur, s.curD = nb, d
					s.improved = true
				}
			}
		}
		if ix.f32 {
			for m := 0; m < nx; m++ {
				s := bs.xmem[m]
				if d := 1 - vec.Dot32(s.q32, ix.nodes[nb].vec32); d < s.curD {
					s.cur, s.curD = nb, d
					s.improved = true
				}
			}
		} else {
			for m := 0; m < nx; m++ {
				s := bs.xmem[m]
				if d := 1 - vec.Dot(s.q, ix.nodes[nb].vec); d < s.curD {
					s.cur, s.curD = nb, d
					s.improved = true
				}
			}
		}
	}
}

// beamTurn advances one query by one expansion, in two phases split
// across turns: score the neighbors gathered (and prefetched) last
// turn, then pop the next candidate and gather its unvisited neighbors.
// Per query the operation order is exactly searchLayer's; only the
// other queries' turns are spliced between gather and score, which is
// what turns the prefetches into overlapped latency instead of stalls.
func (ix *Index) beamTurn(s *batchQueryState) {
	if len(s.pending) > 0 {
		if s.useQ {
			ix.scorePendingQ(s)
		} else {
			ix.scorePendingX(s)
		}
		s.pending = s.pending[:0]
	}
	if s.cands.len() == 0 {
		s.searching = false
		return
	}
	c := s.cands.pop()
	s.pops++
	if s.results.len() >= s.ef && c.dist > s.results.top().dist {
		s.searching = false
		return
	}
	useQ := s.useQ
	dim := ix.dim
	for _, nb := range ix.nodes[c.slot].neighbors[0] {
		if !s.visited.visit(nb) {
			continue
		}
		s.pending = append(s.pending, nb)
		if useQ {
			// The code address is computed from the slot alone (slot-major
			// flat array), so the gather issues its prefetches without a
			// single node-header load — the header chase was the dominant
			// demand miss of this loop when codes hung off the nodes. One
			// call per neighbor, not one batched call for the whole set:
			// spreading the issue across the visit checks keeps the line
			// fill buffers from saturating on a single burst. The per-slot
			// corr float is deliberately not prefetched: that array is
			// small enough to stay cache-resident on its own, and the
			// extra issue cost measured as a net loss.
			cpu.PrefetchRange(unsafe.Pointer(&ix.qflat[int(nb)*dim]), dim)
		} else if ix.f32 {
			nd := &ix.nodes[nb]
			cpu.PrefetchRange(unsafe.Pointer(&nd.vec32[0]), 4*len(nd.vec32))
		} else {
			nd := &ix.nodes[nb]
			cpu.PrefetchRange(unsafe.Pointer(&nd.vec[0]), 8*len(nd.vec))
		}
	}
	// The next turn starts by popping the heap top and chasing its node
	// header for the adjacency list; pull both lines in now so that pop
	// doesn't stall on the header.
	if s.cands.len() > 0 {
		nd := &ix.nodes[s.cands.data[0].slot]
		cpu.PrefetchRange(unsafe.Pointer(nd), 128)
	}
}

// beamPush applies searchLayer's admission test for one scored
// neighbor. It must run per neighbor, in gather order: an admitted
// candidate tightens results.top() for the very next test.
func (s *batchQueryState) beamPush(nb int32, d float64) {
	if s.results.len() < s.ef || d < s.results.top().dist {
		c := candidate{nb, d}
		s.cands.push(c)
		s.results.push(c)
		if s.results.len() > s.ef {
			s.results.pop()
		}
	}
}

// scorePendingQ scores the gathered neighbors on SQ8 codes, two at a
// time through the shared-operand pair kernel (the query code is
// sign-extended once per block for both products).
func (ix *Index) scorePendingQ(s *batchQueryState) {
	qcode, qscale := s.qcode, s.qscale
	flat, corr, dim := ix.qflat, ix.qcorr, ix.dim
	p := s.pending
	i := 0
	for ; i+1 < len(p); i += 2 {
		n0, n1 := int(p[i]), int(p[i+1])
		s0, s1 := quant.Dot8Pair(qcode, flat[n0*dim:(n0+1)*dim], flat[n1*dim:(n1+1)*dim])
		s.beamPush(p[i], 1-float64(s0)*qscale*corr[n0])
		s.beamPush(p[i+1], 1-float64(s1)*qscale*corr[n1])
	}
	if i < len(p) {
		n := int(p[i])
		s.beamPush(p[i], 1-float64(quant.Dot8(qcode, flat[n*dim:(n+1)*dim]))*qscale*corr[n])
	}
}

func (ix *Index) scorePendingX(s *batchQueryState) {
	if ix.f32 {
		for _, nb := range s.pending {
			s.beamPush(nb, 1-vec.Dot32(s.q32, ix.nodes[nb].vec32))
		}
		return
	}
	for _, nb := range s.pending {
		s.beamPush(nb, 1-vec.Dot(s.q, ix.nodes[nb].vec))
	}
}

// rerankState turns one query's beam output into its final results:
// ascending-distance candidate order, tombstone/skip filtering, exact
// re-scoring on the quantized path with the next row prefetched, then
// the descending-score/ascending-id sort and the cut to k — all
// mirroring TopKAppendStats line for line.
func (ix *Index) rerankState(s *batchQueryState, skip func(qi, id int) bool, out []Result) []Result {
	cands := s.results.data
	slices.SortFunc(cands, func(a, b candidate) int {
		if a.dist < b.dist {
			return -1
		}
		if a.dist > b.dist {
			return 1
		}
		return 0
	})
	out = out[:0]
	for ci, c := range cands {
		if s.useQ && ci+1 < len(cands) {
			// Touch the head of the next candidate's row while this one is
			// being scored; the hardware prefetcher follows the sequential
			// stream from there. Pulling whole rows in software costs more
			// in issued prefetches than the misses it saves.
			if ix.f32 {
				if v := ix.nodes[cands[ci+1].slot].vec32; len(v) > 0 {
					cpu.PrefetchRange(unsafe.Pointer(&v[0]), 128)
				}
			} else if v := ix.nodes[cands[ci+1].slot].vec; len(v) > 0 {
				cpu.PrefetchRange(unsafe.Pointer(&v[0]), 128)
			}
		}
		nd := &ix.nodes[c.slot]
		if nd.deleted || (skip != nil && skip(s.qi, nd.id)) {
			continue
		}
		score := 1 - c.dist
		if s.useQ {
			if ix.f32 {
				score = vec.Dot32(s.q32, nd.vec32)
			} else {
				score = vec.Dot(s.q, nd.vec)
			}
			s.reranked++
		}
		out = append(out, Result{ID: nd.id, Score: score})
		if len(out) == s.fetch {
			break
		}
	}
	slices.SortFunc(out, func(a, b Result) int {
		if a.Score != b.Score {
			if a.Score > b.Score {
				return -1
			}
			return 1
		}
		if a.ID < b.ID {
			return -1
		}
		if a.ID > b.ID {
			return 1
		}
		return 0
	})
	if len(out) > s.k {
		out = out[:s.k]
	}
	return out
}
