package ann

import (
	"fmt"
	"io"
	"math/rand"

	"github.com/retrodb/retro/internal/wire"
)

// Graph persistence. The layout captures the full build state — every
// node (including tombstones, which still carry traversal load), the
// per-layer adjacency, the entry point and the effective parameters — so
// a deserialised index answers queries identically to the one that was
// written, without re-running construction. Vectors are packed as
// float32: they are unit-normalised copies used only for similarity
// scoring, where the ~1e-7 rounding is far below the recall tolerance of
// the approximate search itself.
//
// The level RNG is restored by replaying the draw count (one draw per
// historical Insert), so inserts after a load assign the same levels the
// original index would have.

const (
	graphMagic   = "RANN"
	graphVersion = 1

	maxDim      = 1 << 16
	maxNodes    = 1 << 27
	maxLayers   = 64
	maxLayerFan = 1 << 16
)

// WriteTo serialises the index. It implements io.WriterTo.
func (ix *Index) WriteTo(w io.Writer) (int64, error) {
	ww := wire.NewWriter(w)
	ww.Bytes([]byte(graphMagic))
	ww.U32(graphVersion)
	ww.U32(uint32(ix.dim))
	ww.U32(uint32(ix.params.M))
	ww.U32(uint32(ix.params.EfConstruction))
	ww.U32(uint32(ix.params.EfSearch))
	ww.I64(ix.params.Seed)
	ww.I32(ix.entry)
	ww.I32(int32(ix.maxLevel))
	ww.U32(uint32(len(ix.nodes)))
	for i := range ix.nodes {
		nd := &ix.nodes[i]
		ww.I64(int64(nd.id))
		if nd.deleted {
			ww.U8(1)
		} else {
			ww.U8(0)
		}
		ww.U32(uint32(len(nd.neighbors)))
		for _, layer := range nd.neighbors {
			ww.U32(uint32(len(layer)))
			for _, nb := range layer {
				ww.I32(nb)
			}
		}
		if ix.f32 {
			// Float32 nodes persist verbatim: the on-disk format has always
			// been F32-packed, so the two representations share a byte-
			// identical layout and either can read the other's graphs.
			for _, x := range nd.vec32 {
				ww.F32(x)
			}
		} else {
			for _, x := range nd.vec {
				ww.F32(float32(x))
			}
		}
	}
	err := ww.Flush()
	return ww.Count(), err
}

// Read reconstructs an index serialised by WriteTo. Malformed input —
// truncation, impossible counts, out-of-range adjacency — is reported as
// an error, never a panic, so callers can feed it untrusted bytes.
func Read(r io.Reader) (*Index, error) { return readIndex(r, false) }

// Read32 is Read into a float32 index: node vectors are kept as the
// []float32 the file already stores instead of being widened. Since the
// on-disk layout is F32-packed regardless of the writer's precision,
// any graph can be read at either precision without loss.
func Read32(r io.Reader) (*Index, error) { return readIndex(r, true) }

func readIndex(r io.Reader, f32 bool) (*Index, error) {
	rr := wire.NewReader(r)
	magic := make([]byte, len(graphMagic))
	rr.Bytes(magic)
	if rr.Err() == nil && string(magic) != graphMagic {
		return nil, fmt.Errorf("ann: bad graph magic %q", magic)
	}
	if v := rr.U32(); rr.Err() == nil && v != graphVersion {
		return nil, fmt.Errorf("ann: unsupported graph version %d (have %d)", v, graphVersion)
	}
	dim := int(rr.U32())
	if rr.Err() == nil && (dim <= 0 || dim > maxDim) {
		return nil, fmt.Errorf("ann: implausible dimension %d", dim)
	}
	var p Params
	p.M = int(rr.U32())
	p.EfConstruction = int(rr.U32())
	p.EfSearch = int(rr.U32())
	p.Seed = rr.I64()
	entry := rr.I32()
	maxLevel := int(rr.I32())
	numNodes := rr.Count32(maxNodes)
	if err := rr.Err(); err != nil {
		return nil, fmt.Errorf("ann: reading graph header: %w", err)
	}
	if maxLevel < -1 || maxLevel >= maxLayers {
		return nil, fmt.Errorf("ann: implausible max level %d", maxLevel)
	}
	if entry < -1 || int(entry) >= numNodes || (numNodes > 0) != (entry >= 0) {
		return nil, fmt.Errorf("ann: entry point %d out of range for %d nodes", entry, numNodes)
	}

	ix := New(dim, p)
	ix.f32 = f32
	ix.entry = entry
	ix.maxLevel = maxLevel
	ix.nodes = make([]node, 0, min(numNodes, 1<<20))
	for i := 0; i < numNodes; i++ {
		var nd node
		nd.id = int(rr.I64())
		nd.deleted = rr.U8() != 0
		layers := rr.Count32(maxLayers)
		if err := rr.Err(); err != nil {
			return nil, fmt.Errorf("ann: node %d: %w", i, err)
		}
		if layers < 1 {
			return nil, fmt.Errorf("ann: node %d has no layers", i)
		}
		nd.neighbors = make([][]int32, layers)
		for l := range nd.neighbors {
			fan := rr.Count32(maxLayerFan)
			if err := rr.Err(); err != nil {
				return nil, fmt.Errorf("ann: node %d layer %d: %w", i, l, err)
			}
			layer := make([]int32, fan)
			for j := range layer {
				layer[j] = rr.I32()
			}
			nd.neighbors[l] = layer
		}
		if f32 {
			nd.vec32 = make([]float32, dim)
			for j := range nd.vec32 {
				nd.vec32[j] = rr.F32()
			}
		} else {
			nd.vec = make([]float64, dim)
			for j := range nd.vec {
				nd.vec[j] = float64(rr.F32())
			}
		}
		if err := rr.Err(); err != nil {
			return nil, fmt.Errorf("ann: node %d: %w", i, err)
		}
		ix.nodes = append(ix.nodes, nd)
		if !nd.deleted {
			if _, dup := ix.slots[nd.id]; dup {
				return nil, fmt.Errorf("ann: duplicate live id %d", nd.id)
			}
			ix.slots[nd.id] = int32(i)
		} else {
			ix.deleted++
		}
	}

	// Adjacency invariants, checked once every node's layer count is
	// known: a link on layer l must point at a node that exists on layer
	// l, otherwise traversal would index past its adjacency slice.
	for i := range ix.nodes {
		for l, layer := range ix.nodes[i].neighbors {
			for _, nb := range layer {
				if nb < 0 || int(nb) >= numNodes {
					return nil, fmt.Errorf("ann: node %d layer %d links to missing slot %d", i, l, nb)
				}
				if len(ix.nodes[nb].neighbors) <= l {
					return nil, fmt.Errorf("ann: node %d layer %d links to slot %d which stops at layer %d",
						i, l, nb, len(ix.nodes[nb].neighbors)-1)
				}
			}
		}
	}
	if entry >= 0 && len(ix.nodes[entry].neighbors) <= maxLevel {
		return nil, fmt.Errorf("ann: entry point %d stops at layer %d, below max level %d",
			entry, len(ix.nodes[entry].neighbors)-1, maxLevel)
	}

	// Replay the level generator: one draw per historical Insert (each
	// appended exactly one node), so future inserts continue the sequence
	// the original index would have produced.
	ix.rng = rand.New(rand.NewSource(ix.params.Seed))
	for i := 0; i < numNodes; i++ {
		ix.rng.Float64()
	}
	return ix, nil
}
