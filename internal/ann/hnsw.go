// Package ann implements approximate nearest-neighbour search for the
// serving path. The index is an HNSW graph (Malkov & Yashunin, "Efficient
// and robust approximate nearest neighbor search using Hierarchical
// Navigable Small World graphs") over cosine similarity, matching the
// exact semantics of embed.Store.TopK: results are scored by cosine and
// ordered by descending score with ties broken by ascending id.
//
// Vectors are copied and unit-normalised at insert time so a query is a
// plain dot product. Queries (TopK) are safe to run concurrently with each
// other; Insert and Delete require external synchronisation against both
// queries and other writes.
package ann

import (
	"cmp"
	"fmt"
	"maps"
	"math"
	"math/rand"
	"slices"
	"sync"
	"time"

	"github.com/retrodb/retro/internal/quant"
	"github.com/retrodb/retro/internal/vec"
)

// Params tunes the HNSW graph. The zero value selects the defaults.
type Params struct {
	// M is the maximum number of links per node on the upper layers;
	// layer 0 allows 2M. Higher M raises recall and memory. Default 16.
	M int
	// EfConstruction is the candidate-list width while building the
	// graph. Higher values build a better graph, slower. Default 200.
	EfConstruction int
	// EfSearch is the candidate-list width during queries (floored at k).
	// Higher values raise recall at the cost of latency. Default 64.
	EfSearch int
	// Seed drives the level generator; a fixed seed makes the graph
	// deterministic for a given insertion order. Default 1.
	Seed int64
}

// DefaultParams returns the default graph configuration.
func DefaultParams() Params {
	return Params{M: 16, EfConstruction: 200, EfSearch: 64, Seed: 1}
}

func (p Params) withDefaults() Params {
	d := DefaultParams()
	if p.M < 2 {
		// M=1 would make levelMult = 1/ln(1) = +Inf and the graph is
		// degenerate below 2 links anyway.
		p.M = d.M
	}
	if p.EfConstruction <= 0 {
		p.EfConstruction = d.EfConstruction
	}
	if p.EfSearch <= 0 {
		p.EfSearch = d.EfSearch
	}
	if p.Seed == 0 {
		p.Seed = d.Seed
	}
	return p
}

// Result is one approximate nearest-neighbour hit.
type Result struct {
	ID    int
	Score float64 // cosine similarity
}

type node struct {
	id        int
	vec       []float64 // unit-normalised copy (float64 index, nil on f32)
	vec32     []float32 // unit-normalised copy (float32 index, nil on f64)
	code      []int8    // SQ8 code of vec (nil when quantization is off)
	corr      float64   // reciprocal decoded-code norm (see quant.Encode)
	neighbors [][]int32 // adjacency per layer, 0..level
	deleted   bool
}

// Index is an HNSW graph over external integer ids.
type Index struct {
	dim int
	// f32 selects the float32 vector representation (see New32): nodes
	// store unit vectors as []float32 and exact distances run on the
	// vec.Dot32 kernel (float64 accumulation over float32 rows — half the
	// memory traffic per hop). The query API is unchanged: queries arrive
	// as []float64 and are narrowed once per traversal.
	f32       bool
	params    Params
	nodes     []node
	slots     map[int]int32 // external id -> slot in nodes
	entry     int32         // slot of the entry point, -1 when empty
	maxLevel  int
	levelMult float64
	rng       *rand.Rand
	deleted   int       // count of tombstoned slots
	scratch   sync.Pool // *searchScratch, shared by concurrent queries
	batchPool sync.Pool // *batchScratch, shared by concurrent TopKMany calls

	// Quantized candidate generation (see quant.go): when quant is set,
	// traversal scores hops against 1-byte-per-dimension SQ8 codes and
	// TopKAppend over-fetches rerank*k candidates for exact re-scoring.
	quant  *quant.Codebook
	rerank int

	// Slot-major flat views of the per-node quantization state, kept in
	// lockstep with nodes whenever quant is set: node i's code is
	// qflat[i*dim:(i+1)*dim] (nd.code aliases it) and its correction is
	// qcorr[i]. The batched walk computes code addresses from the slot
	// alone — no node-header load on the gather/prefetch path — which is
	// where the single-query path spends a large share of its stalls.
	// Clone copies both with exact-length clones so divergent clones
	// never share spare append capacity.
	qflat []int8
	qcorr []float64
}

// visitedSet is reusable per-traversal scratch: a slot-indexed mark array
// plus the list of touched slots so reset costs O(visited), not O(nodes).
type visitedSet struct {
	marks   []bool
	touched []int32
}

// visit marks slot and reports whether it was unvisited.
func (v *visitedSet) visit(slot int32) bool {
	if v.marks[slot] {
		return false
	}
	v.marks[slot] = true
	v.touched = append(v.touched, slot)
	return true
}

func (v *visitedSet) reset() {
	for _, s := range v.touched {
		v.marks[s] = false
	}
	v.touched = v.touched[:0]
}

// searchScratch is everything one traversal needs beyond the graph
// itself: the visited marks, the normalised-query buffer and the two
// candidate heaps. Pooling the whole bundle makes a steady-state query
// allocation-free — the serving read path runs thousands of these per
// second and a per-call make() for each piece was pure GC pressure.
type searchScratch struct {
	visited visitedSet
	q       []float64
	q32     []float32   // narrowed query, prepared only on an f32 index
	cands   []candidate // min-heap storage, reused across calls
	results []candidate // max-heap storage, reused across calls

	// hops counts candidate expansions (beam pops and greedy steps)
	// across the traversal; TopKAppendStats resets and reads it. The
	// counter lives in the scratch so the hot loops pay one integer add
	// per expansion — no pointer chase, no atomic — and the telemetry
	// layer reads it out only when a caller asked for stats.
	hops int

	// Quantized-query state, prepared per traversal by prepareQueryCodes:
	// the SQ8-encoded query, its scale and whether the code-domain kernel
	// is active for this traversal.
	qcode  []int8
	qscale float64
	useQ   bool
}

func (ix *Index) acquireScratch() *searchScratch {
	sc, _ := ix.scratch.Get().(*searchScratch)
	if sc == nil {
		sc = &searchScratch{}
	}
	if len(sc.visited.marks) < len(ix.nodes) {
		sc.visited.marks = make([]bool, 2*len(ix.nodes))
	}
	return sc
}

func (ix *Index) releaseScratch(sc *searchScratch) {
	sc.visited.reset()
	ix.scratch.Put(sc)
}

// New creates an empty index for vectors of the given dimensionality.
func New(dim int, p Params) *Index {
	if dim <= 0 {
		panic(fmt.Sprintf("ann: non-positive dimension %d", dim))
	}
	p = p.withDefaults()
	return &Index{
		dim:       dim,
		params:    p,
		slots:     make(map[int]int32),
		entry:     -1,
		maxLevel:  -1,
		levelMult: 1 / math.Log(float64(p.M)),
		rng:       rand.New(rand.NewSource(p.Seed)),
	}
}

// New32 creates an empty float32 index: node vectors are stored as
// unit-normalised []float32 and exact distances run on the float32
// kernels (float64 accumulation, see vec.Dot32). Everything else —
// graph construction, quantization, the query API — is identical to a
// float64 index; scores agree with the float64 index built from the
// same float32-rounded data to within the kernel tolerance (~1e-6).
func New32(dim int, p Params) *Index {
	ix := New(dim, p)
	ix.f32 = true
	return ix
}

// F32 reports whether node vectors are stored as float32.
func (ix *Index) F32() bool { return ix.f32 }

// Dim returns the vector dimensionality.
func (ix *Index) Dim() int { return ix.dim }

// Len returns the number of live (non-deleted) vectors.
func (ix *Index) Len() int { return len(ix.slots) }

// Params returns the effective configuration.
func (ix *Index) Params() Params { return ix.params }

// SetEfSearch adjusts the query beam width. It is the one parameter that
// is safe to change after construction — it affects only queries, not
// the built graph — which lets serving processes retune recall/latency
// on an index restored from a snapshot. Non-positive values are ignored.
// Requires the same external synchronisation as Insert.
func (ix *Index) SetEfSearch(ef int) {
	if ef > 0 {
		ix.params.EfSearch = ef
	}
}

// MaxLevel returns the top layer of the graph (-1 when empty).
func (ix *Index) MaxLevel() int { return ix.maxLevel }

type candidate struct {
	slot int32
	dist float64 // 1 - cosine
}

// prepareQueryCodes prepares the scratch's unit query (sc.q) for
// traversal: on an f32 index it is narrowed once into sc.q32 for the
// float32 exact kernel, and on a quantized index it is SQ8-encoded for
// the code-domain traversal. On an unquantized index — or for a
// degenerate query the codebook cannot represent — the exact kernel
// stays active.
func (ix *Index) prepareQueryCodes(sc *searchScratch) {
	if ix.f32 {
		if cap(sc.q32) < ix.dim {
			sc.q32 = make([]float32, ix.dim)
		}
		sc.q32 = vec.Narrow(sc.q32[:ix.dim], sc.q)
	}
	sc.useQ = false
	if ix.quant == nil {
		return
	}
	if cap(sc.qcode) < ix.dim {
		sc.qcode = make([]int8, ix.dim)
	}
	sc.qcode = sc.qcode[:ix.dim]
	sc.qscale = ix.quant.EncodeQuery(sc.qcode, sc.q)
	sc.useQ = sc.qscale > 0
}

// distQ and distX score slot against the scratch's prepared query. The
// quantized kernel reads the node's 1-byte-per-dimension code — 8x less
// memory traffic per hop than the float64 vector — and reconstructs an
// approximate cosine from the int32 dot (see package quant); the exact
// kernel is the full-width dot product. They are two functions instead
// of one branching helper so each stays inside the inlining budget: the
// traversal loops hoist the mode branch and inline the kernel, instead
// of paying a call per hop.
func (ix *Index) distQ(sc *searchScratch, slot int32) float64 {
	nd := &ix.nodes[slot]
	return 1 - float64(quant.Dot8(sc.qcode, nd.code))*sc.qscale*nd.corr
}

func (ix *Index) distX(sc *searchScratch, slot int32) float64 {
	return 1 - vec.Dot(sc.q, ix.nodes[slot].vec)
}

// distX32 is the exact kernel of an f32 index: the float32 rows halve
// the bytes per hop and vec.Dot32 accumulates in float64. Like distQ it
// is a separate function so the f64 loop bodies keep inlining distX.
func (ix *Index) distX32(sc *searchScratch, slot int32) float64 {
	return 1 - vec.Dot32(sc.q32, ix.nodes[slot].vec32)
}

func (ix *Index) dist(sc *searchScratch, slot int32) float64 {
	if sc.useQ {
		return ix.distQ(sc, slot)
	}
	if ix.f32 {
		return ix.distX32(sc, slot)
	}
	return ix.distX(sc, slot)
}

// distNodes is the node-to-node distance used by neighbour selection
// during construction; it dispatches on the index representation.
func (ix *Index) distNodes(a, b int32) float64 {
	if ix.f32 {
		return 1 - vec.Dot32(ix.nodes[a].vec32, ix.nodes[b].vec32)
	}
	return 1 - vec.Dot(ix.nodes[a].vec, ix.nodes[b].vec)
}

// Insert adds a vector under the given id. Inserting an existing id
// replaces its vector (the old node is tombstoned and a fresh one linked).
// Zero vectors are rejected: cosine similarity is undefined for them, and
// the exact search path skips them too.
func (ix *Index) Insert(id int, v []float64) error {
	if len(v) != ix.dim {
		return fmt.Errorf("ann: vector for id %d has dim %d, index has %d", id, len(v), ix.dim)
	}
	n := vec.Norm(v)
	if n == 0 {
		return fmt.Errorf("ann: zero vector for id %d", id)
	}
	if _, ok := ix.slots[id]; ok {
		ix.Delete(id)
	}
	unit := make([]float64, ix.dim)
	for i, x := range v {
		unit[i] = x / n
	}

	level := int(math.Floor(-math.Log(1-ix.rng.Float64()) * ix.levelMult))
	slot := int32(len(ix.nodes))
	nd := node{id: id, neighbors: make([][]int32, level+1)}
	if ix.f32 {
		// The float64 unit vector is narrowed once at the store boundary;
		// traversal, quantization and persistence all read the rounded
		// copy, so every downstream consumer sees one consistent value.
		nd.vec32 = vec.Narrow(make([]float32, ix.dim), unit)
	} else {
		nd.vec = unit
	}
	if ix.quant != nil {
		// Incremental code maintenance: the new vector is encoded with the
		// codebook trained at quantization time (out-of-range components
		// saturate), so the quantized traversal sees it immediately. The
		// code is appended to the slot-major flat array and the node
		// header aliases its slot's window, keeping the batch path's
		// qflat/qcorr invariant intact.
		base := len(ix.qflat)
		ix.qflat = append(ix.qflat, make([]int8, ix.dim)...)
		nd.code = ix.qflat[base : base+ix.dim : base+ix.dim]
		if ix.f32 {
			// Encode from the narrowed copy, not the float64 unit, so the
			// code matches what a retrain over the stored rows would emit.
			nd.corr = ix.quant.Encode32(nd.code, nd.vec32)
		} else {
			nd.corr = ix.quant.Encode(nd.code, unit)
		}
		ix.qcorr = append(ix.qcorr, nd.corr)
	}
	ix.nodes = append(ix.nodes, nd)
	ix.slots[id] = slot

	if ix.entry < 0 {
		ix.entry = slot
		ix.maxLevel = level
		return nil
	}

	sc := ix.acquireScratch()
	defer ix.releaseScratch(sc)
	if cap(sc.q) < ix.dim {
		sc.q = make([]float64, ix.dim)
	}
	sc.q = sc.q[:ix.dim]
	copy(sc.q, unit)
	ix.prepareQueryCodes(sc)

	ep := ix.entry
	// Greedy descent through the layers above the new node's level.
	for l := ix.maxLevel; l > level; l-- {
		ep = ix.greedyClosest(sc, ep, l)
	}
	// Link on each shared layer, widest candidate list first.
	for l := min(level, ix.maxLevel); l >= 0; l-- {
		sc.visited.reset()
		cands := ix.searchLayer(sc, ep, ix.params.EfConstruction, l)
		chosen := ix.selectNeighbors(cands, ix.params.M)
		ix.nodes[slot].neighbors[l] = chosen
		maxConn := ix.params.M
		if l == 0 {
			maxConn = 2 * ix.params.M
		}
		for _, nb := range chosen {
			// Copy-append, never grow in place: the adjacency slice may be
			// structurally shared with a Clone serving concurrent queries.
			nbs := ix.nodes[nb].neighbors[l]
			grown := make([]int32, len(nbs)+1)
			copy(grown, nbs)
			grown[len(nbs)] = slot
			ix.nodes[nb].neighbors[l] = grown
			if len(grown) > maxConn {
				ix.shrink(nb, l, maxConn)
			}
		}
		if len(cands) > 0 {
			ep = cands[0].slot
		}
	}
	if level > ix.maxLevel {
		ix.maxLevel = level
		ix.entry = slot
	}
	return nil
}

// Clone returns an index that answers queries identically and evolves
// independently from the original: inserts and deletes on either side
// are invisible to the other. The copy is structural, not a rebuild —
// node vectors and per-layer adjacency slices are shared (safe because
// Insert never mutates an existing adjacency slice in place, see the
// copy-append above, and a node's vector is immutable once linked), so
// cloning costs O(nodes) header copies plus the slot map. The level RNG
// is replayed one draw per historical insert, exactly as Read does, so
// post-clone inserts assign the same levels on both sides.
//
// Clone is how the serving layer gets a mutable successor of an index
// frozen into a published read view: the writer clones, mutates the
// clone, and publishes it, while readers keep traversing the original.
func (ix *Index) Clone() *Index {
	cp := &Index{
		dim:       ix.dim,
		f32:       ix.f32,
		params:    ix.params,
		nodes:     make([]node, len(ix.nodes)),
		slots:     maps.Clone(ix.slots),
		entry:     ix.entry,
		maxLevel:  ix.maxLevel,
		levelMult: ix.levelMult,
		rng:       rand.New(rand.NewSource(ix.params.Seed)),
		deleted:   ix.deleted,
		// The codebook is immutable and the per-node SQ8 codes are shared
		// through the copied node headers (a code, like a vector, is never
		// mutated once its node is linked), so quantization state rides
		// along copy-on-write for free. The flat views are cloned at exact
		// length: a subsequent Insert on either side reallocates privately
		// instead of writing into backing memory the other still reads.
		quant:  ix.quant,
		rerank: ix.rerank,
		qflat:  slices.Clone(ix.qflat),
		qcorr:  slices.Clone(ix.qcorr),
	}
	copy(cp.nodes, ix.nodes)
	for i := range cp.nodes {
		// Private outer slice per node: the writer reassigns
		// neighbors[l] on link updates, and that write must not be
		// visible through the original's nodes array.
		cp.nodes[i].neighbors = slices.Clone(cp.nodes[i].neighbors)
	}
	for i := 0; i < len(ix.nodes); i++ {
		cp.rng.Float64()
	}
	return cp
}

// Delete tombstones an id: it stays in the graph for traversal but is
// never returned from TopK. Returns false if the id is not present.
func (ix *Index) Delete(id int) bool {
	slot, ok := ix.slots[id]
	if !ok {
		return false
	}
	ix.nodes[slot].deleted = true
	delete(ix.slots, id)
	ix.deleted++
	return true
}

// Deleted returns the number of tombstoned nodes still in the graph.
// Tombstones cost traversal time and widen the query beam; callers
// should rebuild when they outnumber the live entries.
func (ix *Index) Deleted() int { return ix.deleted }

// Contains reports whether id is live in the index.
func (ix *Index) Contains(id int) bool {
	_, ok := ix.slots[id]
	return ok
}

// MemoryStats breaks down the index's resident data payload for the
// serving memory accounting: graph vectors (including tombstones, which
// keep their rows), SQ8 codes with their per-row corrections, and the
// per-layer adjacency lists. Figures are payload bytes — Go slice and
// map headers are excluded — so they compare cleanly across precisions.
type MemoryStats struct {
	VectorBytes    int64 // node rows: 8 bytes/value f64, 4 bytes/value f32
	CodeBytes      int64 // SQ8 codes + float64 corrections (0 when unquantized)
	AdjacencyBytes int64 // int32 neighbour lists across all layers
}

// MemoryStats walks the graph and reports its payload footprint. It
// needs the same external synchronisation as queries (safe concurrently
// with other reads, excluded against Insert/Delete).
func (ix *Index) MemoryStats() MemoryStats {
	var ms MemoryStats
	for i := range ix.nodes {
		nd := &ix.nodes[i]
		ms.VectorBytes += int64(8*len(nd.vec) + 4*len(nd.vec32))
		for _, layer := range nd.neighbors {
			ms.AdjacencyBytes += int64(4 * len(layer))
		}
	}
	ms.CodeBytes = int64(len(ix.qflat)) + int64(8*len(ix.qcorr))
	return ms
}

// greedyClosest walks layer l from ep to the locally closest node to the
// scratch's prepared query.
func (ix *Index) greedyClosest(sc *searchScratch, ep int32, l int) int32 {
	steps := 0
	if sc.useQ {
		qcode, qscale := sc.qcode, sc.qscale
		best, bestD := ep, ix.distQ(sc, ep)
		for improved := true; improved; {
			improved = false
			steps++
			for _, nb := range ix.nodes[best].neighbors[l] {
				nd := &ix.nodes[nb]
				if d := 1 - float64(quant.Dot8(qcode, nd.code))*qscale*nd.corr; d < bestD {
					best, bestD = nb, d
					improved = true
				}
			}
		}
		sc.hops += steps
		return best
	}
	if ix.f32 {
		best, bestD := ep, ix.distX32(sc, ep)
		for improved := true; improved; {
			improved = false
			steps++
			for _, nb := range ix.nodes[best].neighbors[l] {
				if d := ix.distX32(sc, nb); d < bestD {
					best, bestD = nb, d
					improved = true
				}
			}
		}
		sc.hops += steps
		return best
	}
	best, bestD := ep, ix.distX(sc, ep)
	for improved := true; improved; {
		improved = false
		steps++
		for _, nb := range ix.nodes[best].neighbors[l] {
			if d := ix.distX(sc, nb); d < bestD {
				best, bestD = nb, d
				improved = true
			}
		}
	}
	sc.hops += steps
	return best
}

// searchLayer is the beam search of the HNSW paper (Algorithm 2): it
// returns up to ef candidates on layer l, sorted by ascending distance
// under the scratch's prepared query (quantized when the index is).
// Tombstoned nodes are traversed and returned; callers filter them. The
// returned slice aliases sc and is valid until the scratch's next use.
func (ix *Index) searchLayer(sc *searchScratch, ep int32, ef, l int) []candidate {
	d0 := ix.dist(sc, ep)
	sc.visited.visit(ep)
	cands := candHeap{data: sc.cands[:0], min: true}
	results := candHeap{data: sc.results[:0], min: false}
	cands.push(candidate{ep, d0})
	results.push(candidate{ep, d0})
	// One copy of the scan loop per kernel: the quantized body is
	// written out (loop-invariant query code/scale hoisted, quant.Dot8
	// inlined by the compiler) because a shared per-hop helper was too
	// big to inline and its call frame showed up as ~15% of quantized
	// query time. The exact bodies go through distX/distX32, which do
	// inline; they stay separate loops so neither carries the other's
	// representation branch per hop.
	pops := 0
	if sc.useQ {
		qcode, qscale := sc.qcode, sc.qscale
		for cands.len() > 0 {
			c := cands.pop()
			pops++
			if results.len() >= ef && c.dist > results.top().dist {
				break
			}
			for _, nb := range ix.nodes[c.slot].neighbors[l] {
				if !sc.visited.visit(nb) {
					continue
				}
				nd := &ix.nodes[nb]
				d := 1 - float64(quant.Dot8(qcode, nd.code))*qscale*nd.corr
				if results.len() < ef || d < results.top().dist {
					cands.push(candidate{nb, d})
					results.push(candidate{nb, d})
					if results.len() > ef {
						results.pop()
					}
				}
			}
		}
	} else if ix.f32 {
		for cands.len() > 0 {
			c := cands.pop()
			pops++
			if results.len() >= ef && c.dist > results.top().dist {
				break
			}
			for _, nb := range ix.nodes[c.slot].neighbors[l] {
				if !sc.visited.visit(nb) {
					continue
				}
				d := ix.distX32(sc, nb)
				if results.len() < ef || d < results.top().dist {
					cands.push(candidate{nb, d})
					results.push(candidate{nb, d})
					if results.len() > ef {
						results.pop()
					}
				}
			}
		}
	} else {
		for cands.len() > 0 {
			c := cands.pop()
			pops++
			if results.len() >= ef && c.dist > results.top().dist {
				break
			}
			for _, nb := range ix.nodes[c.slot].neighbors[l] {
				if !sc.visited.visit(nb) {
					continue
				}
				d := ix.distX(sc, nb)
				if results.len() < ef || d < results.top().dist {
					cands.push(candidate{nb, d})
					results.push(candidate{nb, d})
					if results.len() > ef {
						results.pop()
					}
				}
			}
		}
	}
	sc.hops += pops
	// Hand the (possibly grown) buffers back so the next traversal
	// reuses their capacity.
	sc.cands = cands.data
	sc.results = results.data
	out := results.data
	slices.SortFunc(out, func(a, b candidate) int {
		if a.dist < b.dist {
			return -1
		}
		if a.dist > b.dist {
			return 1
		}
		return 0
	})
	return out
}

// selectNeighbors is the heuristic of Algorithm 4: a candidate is kept
// only if it is closer to the query than to every already-kept neighbour,
// which spreads links across clusters; pruned candidates backfill any
// remaining capacity so nodes keep m links for connectivity.
func (ix *Index) selectNeighbors(cands []candidate, m int) []int32 {
	if len(cands) <= m {
		out := make([]int32, len(cands))
		for i, c := range cands {
			out[i] = c.slot
		}
		return out
	}
	chosen := make([]int32, 0, m)
	var pruned []candidate
	for _, c := range cands {
		if len(chosen) >= m {
			break
		}
		keep := true
		for _, s := range chosen {
			if ix.distNodes(c.slot, s) < c.dist {
				keep = false
				break
			}
		}
		if keep {
			chosen = append(chosen, c.slot)
		} else {
			pruned = append(pruned, c)
		}
	}
	for _, c := range pruned {
		if len(chosen) >= m {
			break
		}
		chosen = append(chosen, c.slot)
	}
	return chosen
}

// shrink re-selects the neighbour list of slot on layer l down to maxConn
// using the same diversity heuristic as insertion.
func (ix *Index) shrink(slot int32, l, maxConn int) {
	nbs := ix.nodes[slot].neighbors[l]
	cands := make([]candidate, len(nbs))
	for i, nb := range nbs {
		cands[i] = candidate{nb, ix.distNodes(slot, nb)}
	}
	slices.SortFunc(cands, func(a, b candidate) int {
		if a.dist < b.dist {
			return -1
		}
		if a.dist > b.dist {
			return 1
		}
		return 0
	})
	ix.nodes[slot].neighbors[l] = ix.selectNeighbors(cands, maxConn)
}

// TopK returns the approximately k most cosine-similar live entries to
// query, excluding any id for which skip returns true (skip may be nil).
// Results are sorted by descending score, ties by ascending id, matching
// embed.Store.TopK ordering. The returned slice is freshly allocated and
// owned by the caller; hot paths that want to recycle result storage use
// TopKAppend.
func (ix *Index) TopK(query []float64, k int, skip func(id int) bool) []Result {
	return ix.TopKAppend(query, k, skip, nil)
}

// SearchStats reports what one TopK traversal did, for the serving
// telemetry layer: how many candidate expansions the walk performed,
// how many distinct nodes the layer-0 beam evaluated, how many
// candidates the quantized path re-scored exactly, and how the time
// split between the graph walk and the exact re-rank. Populated by
// TopKAppendStats; the stat-less entry points never touch it.
type SearchStats struct {
	Hops      int   // candidate expansions: beam pops + greedy descent steps
	Nodes     int   // distinct nodes scored by the layer-0 beam
	Reranked  int   // candidates re-scored exactly (quantized path only)
	WalkNs    int64 // descent + beam search wall time
	RerankNs  int64 // exact re-scoring + result sort wall time
	Quantized bool  // traversal ran on SQ8 codes
}

// TopKAppend is TopK with caller-owned result storage: hits are written
// into dst[:0] and the slice (grown if its capacity was short) is
// returned. With cap(dst) >= k and a warm scratch pool a query performs
// no allocation — the normalised-query buffer, the visited set and both
// beam heaps come from the index's scratch pool. Queries may run
// concurrently with each other; the usual Insert/Delete exclusion still
// applies.
func (ix *Index) TopKAppend(query []float64, k int, skip func(id int) bool, dst []Result) []Result {
	return ix.TopKAppendStats(query, k, skip, dst, nil)
}

// TopKAppendStats is TopKAppend with traversal telemetry: when st is
// non-nil it is overwritten with this query's stats, including the
// walk/re-rank timing split. A nil st skips every clock read, so the
// stat-less path costs exactly what it did before this hook existed.
func (ix *Index) TopKAppendStats(query []float64, k int, skip func(id int) bool, dst []Result, st *SearchStats) []Result {
	if len(query) != ix.dim {
		panic("ann: TopK query dimension mismatch")
	}
	if st != nil {
		*st = SearchStats{}
	}
	dst = dst[:0]
	if k <= 0 || ix.entry < 0 {
		return dst
	}
	if k > len(ix.slots) {
		k = len(ix.slots) // bounds the result growth and the beam
	}
	qn := vec.Norm(query)
	if qn == 0 {
		return dst
	}
	sc := ix.acquireScratch()
	sc.hops = 0
	if cap(sc.q) < ix.dim {
		sc.q = make([]float64, ix.dim)
	}
	sc.q = sc.q[:ix.dim]
	q := sc.q
	for i, x := range query {
		q[i] = x / qn
	}
	ix.prepareQueryCodes(sc)

	// The quantized path over-fetches fetch = k*rerank candidates from
	// the code-domain beam; each survivor is re-scored exactly in float64
	// below, and only then is the result cut back to k. Re-ranking is
	// what keeps recall@10 at the exact path's level while the per-hop
	// traversal cost drops to 1/8 of the float64 bytes.
	fetch := k
	ef := ix.params.EfSearch
	if sc.useQ {
		r := ix.rerank
		if r < 1 {
			r = DefaultRerank
		}
		fetch = k * r
		if fetch > len(ix.slots) {
			fetch = len(ix.slots)
		}
		// The exact re-rank restores true ordering among everything the
		// beam surfaces, so the quantized stage only has to CONTAIN the
		// true top k in its fetch window — it does not have to order it.
		// That is a strictly easier job than the exact beam's, so ef
		// contributes at half weight (floored at the fetch depth, and
		// still raised by SetEfSearch like the exact path): fewer hops,
		// same recall, which is where the quantized path's latency win
		// comes from on top of the 8x-smaller per-hop reads.
		ef /= 2
	}
	if ef < fetch {
		ef = fetch
	}
	// Widen the beam when tombstones or a filter will eat results. Scale
	// with the tombstone/live ratio (not just the fetch depth) so locally
	// concentrated tombstones cannot crowd every live result out of the
	// beam; the store-level rebuild trigger keeps deleted <= live,
	// bounding this at one doubling.
	if ix.deleted > 0 {
		extra := min(ix.deleted, 2*fetch)
		if live := len(ix.slots); live > 0 {
			if prop := ef * ix.deleted / live; prop > extra {
				extra = prop
			}
		}
		ef += extra
	}
	if skip != nil {
		ef += fetch
	}
	var walkStart time.Time
	if st != nil {
		walkStart = time.Now()
	}
	ep := ix.entry
	for l := ix.maxLevel; l > 0; l-- {
		ep = ix.greedyClosest(sc, ep, l)
	}
	cands := ix.searchLayer(sc, ep, ef, 0)
	var rerankStart time.Time
	if st != nil {
		st.WalkNs = time.Since(walkStart).Nanoseconds()
		st.Hops = sc.hops
		st.Nodes = len(sc.visited.touched)
		st.Quantized = sc.useQ
		rerankStart = time.Now()
	}
	reranked := 0
	for _, c := range cands {
		nd := &ix.nodes[c.slot]
		if nd.deleted || (skip != nil && skip(nd.id)) {
			continue
		}
		score := 1 - c.dist
		if sc.useQ {
			// Exact re-scoring: one full-width dot per surviving candidate
			// (fetch of them), instead of one per traversal hop.
			if ix.f32 {
				score = vec.Dot32(sc.q32, nd.vec32)
			} else {
				score = vec.Dot(q, nd.vec)
			}
			reranked++
		}
		dst = append(dst, Result{ID: nd.id, Score: score})
		if len(dst) == fetch {
			break
		}
	}
	ix.releaseScratch(sc)
	slices.SortFunc(dst, func(a, b Result) int {
		if a.Score != b.Score {
			if a.Score > b.Score {
				return -1
			}
			return 1
		}
		return cmp.Compare(a.ID, b.ID)
	})
	if len(dst) > k {
		dst = dst[:k]
	}
	if st != nil {
		st.RerankNs = time.Since(rerankStart).Nanoseconds()
		st.Reranked = reranked
	}
	return dst
}

// candHeap is a binary heap of candidates: min-ordered when min is true
// (closest first), max-ordered otherwise (furthest first, for bounded
// result sets).
type candHeap struct {
	data []candidate
	min  bool
}

func (h *candHeap) len() int       { return len(h.data) }
func (h *candHeap) top() candidate { return h.data[0] }
func (h *candHeap) before(i, j int) bool {
	if h.min {
		return h.data[i].dist < h.data[j].dist
	}
	return h.data[i].dist > h.data[j].dist
}

func (h *candHeap) push(c candidate) {
	h.data = append(h.data, c)
	i := len(h.data) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !h.before(i, p) {
			break
		}
		h.data[i], h.data[p] = h.data[p], h.data[i]
		i = p
	}
}

func (h *candHeap) pop() candidate {
	top := h.data[0]
	last := len(h.data) - 1
	h.data[0] = h.data[last]
	h.data = h.data[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < last && h.before(l, best) {
			best = l
		}
		if r < last && h.before(r, best) {
			best = r
		}
		if best == i {
			break
		}
		h.data[i], h.data[best] = h.data[best], h.data[i]
		i = best
	}
	return top
}
