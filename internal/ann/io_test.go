package ann

import (
	"bytes"
	"math/rand"
	"testing"
)

func buildIOIndex(t testing.TB, n, dim int) (*Index, [][]float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	ix := New(dim, Params{})
	vecs := make([][]float64, n)
	for i := 0; i < n; i++ {
		v := make([]float64, dim)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		vecs[i] = v
		if err := ix.Insert(i, v); err != nil {
			t.Fatal(err)
		}
	}
	return ix, vecs
}

func queryVec(rng *rand.Rand, dim int) []float64 {
	q := make([]float64, dim)
	for j := range q {
		q[j] = rng.NormFloat64()
	}
	return q
}

// TestGraphRoundTrip serialises an index (including tombstones from
// overwrites and deletes) and checks the loaded copy answers every query
// with the same ids in the same order.
func TestGraphRoundTrip(t *testing.T) {
	const n, dim = 500, 16
	ix, vecs := buildIOIndex(t, n, dim)
	// Overwrites and deletes so tombstones are exercised.
	for i := 0; i < 40; i++ {
		if err := ix.Insert(i, vecs[(i+1)%n]); err != nil {
			t.Fatal(err)
		}
	}
	for i := 100; i < 120; i++ {
		ix.Delete(i)
	}

	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	if got.Len() != ix.Len() || got.Deleted() != ix.Deleted() || got.MaxLevel() != ix.MaxLevel() {
		t.Fatalf("shape mismatch: len %d/%d deleted %d/%d maxLevel %d/%d",
			got.Len(), ix.Len(), got.Deleted(), ix.Deleted(), got.MaxLevel(), ix.MaxLevel())
	}
	if got.Params() != ix.Params() {
		t.Fatalf("params mismatch: %+v vs %+v", got.Params(), ix.Params())
	}
	rng := rand.New(rand.NewSource(99))
	for qi := 0; qi < 50; qi++ {
		q := queryVec(rng, dim)
		want := ix.TopK(q, 10, nil)
		have := got.TopK(q, 10, nil)
		if len(want) != len(have) {
			t.Fatalf("query %d: result length %d vs %d", qi, len(have), len(want))
		}
		for i := range want {
			if want[i].ID != have[i].ID {
				t.Fatalf("query %d rank %d: id %d vs %d", qi, i, have[i].ID, want[i].ID)
			}
			if d := want[i].Score - have[i].Score; d > 1e-5 || d < -1e-5 {
				t.Fatalf("query %d rank %d: score drift %g (float32 packing should stay below 1e-5)", qi, i, d)
			}
		}
	}
}

// TestGraphRoundTripInsertAfterLoad verifies the level RNG replay: the
// original index and its deserialised copy must evolve identically under
// the same subsequent inserts (same levels, same entry point, same
// answers).
func TestGraphRoundTripInsertAfterLoad(t *testing.T) {
	const n, dim = 300, 12
	ix, _ := buildIOIndex(t, n, dim)
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(3))
	for i := n; i < n+60; i++ {
		v := queryVec(rng, dim)
		if err := ix.Insert(i, v); err != nil {
			t.Fatal(err)
		}
		if err := got.Insert(i, v); err != nil {
			t.Fatal(err)
		}
	}
	if got.MaxLevel() != ix.MaxLevel() {
		t.Fatalf("max level diverged after inserts: %d vs %d (RNG replay broken)", got.MaxLevel(), ix.MaxLevel())
	}
	for qi := 0; qi < 30; qi++ {
		q := queryVec(rng, dim)
		want := ix.TopK(q, 5, nil)
		have := got.TopK(q, 5, nil)
		for i := range want {
			if want[i].ID != have[i].ID {
				t.Fatalf("query %d rank %d: id %d vs %d after post-load inserts", qi, i, have[i].ID, want[i].ID)
			}
		}
	}
}

// TestGraphRoundTripEmpty covers the zero-node index.
func TestGraphRoundTripEmpty(t *testing.T) {
	ix := New(8, Params{})
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 || got.MaxLevel() != -1 {
		t.Fatalf("empty round trip: len %d maxLevel %d", got.Len(), got.MaxLevel())
	}
	if res := got.TopK(queryVec(rand.New(rand.NewSource(1)), 8), 3, nil); len(res) != 0 {
		t.Fatalf("empty index returned %d results", len(res))
	}
}

// TestGraphReadRejectsCorrupt feeds structurally broken graphs and
// expects errors, never panics.
func TestGraphReadRejectsCorrupt(t *testing.T) {
	ix, _ := buildIOIndex(t, 50, 8)
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	t.Run("truncated", func(t *testing.T) {
		for _, cut := range []int{0, 3, 10, 20, len(valid) / 2, len(valid) - 1} {
			if _, err := Read(bytes.NewReader(valid[:cut])); err == nil {
				t.Fatalf("truncation at %d accepted", cut)
			}
		}
	})
	t.Run("bad-magic", func(t *testing.T) {
		bad := append([]byte{}, valid...)
		bad[0] ^= 0xff
		if _, err := Read(bytes.NewReader(bad)); err == nil {
			t.Fatal("corrupt magic accepted")
		}
	})
	t.Run("bad-version", func(t *testing.T) {
		bad := append([]byte{}, valid...)
		bad[4] = 0xfe
		if _, err := Read(bytes.NewReader(bad)); err == nil {
			t.Fatal("wrong version accepted")
		}
	})
}
