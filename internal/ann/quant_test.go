package ann

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"github.com/retrodb/retro/internal/vec"
)

// quantWorld builds an index over clustered unit-ish vectors (the regime
// retrofitted embeddings live in) plus a query set drawn from the same
// mixture.
func quantWorld(t testing.TB, n, dim int, seed int64) (*Index, [][]float64, [][]float64) {
	rng := rand.New(rand.NewSource(seed))
	centers := make([][]float64, 32)
	for ci := range centers {
		c := make([]float64, dim)
		for j := range c {
			c[j] = rng.NormFloat64()
		}
		centers[ci] = c
	}
	point := func() []float64 {
		c := centers[rng.Intn(len(centers))]
		v := make([]float64, dim)
		for j := range v {
			v[j] = c[j] + 0.25*rng.NormFloat64()
		}
		return v
	}
	ix := New(dim, Params{})
	vectors := make([][]float64, n)
	for i := 0; i < n; i++ {
		vectors[i] = point()
		if err := ix.Insert(i, vectors[i]); err != nil {
			t.Fatal(err)
		}
	}
	queries := make([][]float64, 64)
	for qi := range queries {
		queries[qi] = point()
	}
	return ix, vectors, queries
}

// exactTop10 is the brute-force reference ordering.
func exactTop10(vectors [][]float64, q []float64, k int) []int {
	type scored struct {
		id    int
		score float64
	}
	qn := vec.Norm(q)
	all := make([]scored, len(vectors))
	for i, v := range vectors {
		all[i] = scored{i, vec.Dot(q, v) / (qn * vec.Norm(v))}
	}
	for i := 0; i < k; i++ {
		best := i
		for j := i + 1; j < len(all); j++ {
			if all[j].score > all[best].score ||
				(all[j].score == all[best].score && all[j].id < all[best].id) {
				best = j
			}
		}
		all[i], all[best] = all[best], all[i]
	}
	ids := make([]int, k)
	for i := range ids {
		ids[i] = all[i].id
	}
	return ids
}

func TestQuantizedTopKRecall(t *testing.T) {
	ix, vectors, queries := quantWorld(t, 3000, 64, 1)
	ix.QuantizeSQ8(0)
	if !ix.Quantized() || ix.Rerank() != DefaultRerank {
		t.Fatalf("QuantizeSQ8: quantized=%v rerank=%d", ix.Quantized(), ix.Rerank())
	}
	hits, total := 0, 0
	for _, q := range queries {
		want := map[int]bool{}
		for _, id := range exactTop10(vectors, q, 10) {
			want[id] = true
		}
		for _, r := range ix.TopK(q, 10, nil) {
			if want[r.ID] {
				hits++
			}
		}
		total += 10
	}
	if recall := float64(hits) / float64(total); recall < 0.95 {
		t.Fatalf("quantized recall@10 = %.3f, want >= 0.95", recall)
	}
}

// TestPropertyQuantizedTopOneMatchesExact: with exact re-ranking, the
// quantized path must return the same top result as the exact HNSW path
// for >= 99% of random queries (the re-rank makes ordering among the
// fetched candidates exact, so mismatches can only come from the
// candidate beam missing the winner entirely).
func TestPropertyQuantizedTopOneMatchesExact(t *testing.T) {
	ixq, _, _ := quantWorld(t, 4000, 48, 2)
	ixe, _, queries := quantWorld(t, 4000, 48, 2) // identical build (same seed)
	ixq.QuantizeSQ8(4)

	rng := rand.New(rand.NewSource(9))
	const numQueries = 300
	match := 0
	for qi := 0; qi < numQueries; qi++ {
		q := make([]float64, 48)
		base := queries[rng.Intn(len(queries))]
		for j := range q {
			q[j] = base[j] + 0.05*rng.NormFloat64()
		}
		rq := ixq.TopK(q, 10, nil)
		re := ixe.TopK(q, 10, nil)
		if len(rq) == 0 || len(re) == 0 {
			t.Fatal("empty result")
		}
		if rq[0].ID == re[0].ID {
			match++
		}
	}
	if frac := float64(match) / numQueries; frac < 0.99 {
		t.Fatalf("quantized top-1 matched exact for %.3f of queries, want >= 0.99", frac)
	}
}

// TestQuantizedScoresAreExact: returned scores come from the float64
// re-ranking pass, not the approximate code-domain kernel, so they must
// equal the exact path's cosine for the same id bit-for-bit.
func TestQuantizedScoresAreExact(t *testing.T) {
	ixq, _, queries := quantWorld(t, 2000, 32, 3)
	exact := map[int]float64{}
	q := queries[0]
	for _, r := range ixq.TopK(q, 20, nil) {
		exact[r.ID] = r.Score
	}
	ixq.QuantizeSQ8(8)
	for _, r := range ixq.TopK(q, 20, nil) {
		if want, ok := exact[r.ID]; ok && r.Score != want {
			t.Fatalf("id %d: quantized score %v != exact score %v", r.ID, r.Score, want)
		}
	}
}

func TestQuantizedInsertDeleteMaintenance(t *testing.T) {
	ix, _, _ := quantWorld(t, 500, 16, 4)
	ix.QuantizeSQ8(4)
	// A vector inserted after quantization must be encoded and findable.
	probe := make([]float64, 16)
	probe[3] = 1
	if err := ix.Insert(9999, probe); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range ix.TopK(probe, 5, nil) {
		if r.ID == 9999 {
			found = true
		}
	}
	if !found {
		t.Fatal("post-quantization insert not returned")
	}
	if !ix.Delete(9999) {
		t.Fatal("delete failed")
	}
	for _, r := range ix.TopK(probe, 5, nil) {
		if r.ID == 9999 {
			t.Fatal("tombstoned id returned from quantized TopK")
		}
	}
}

func TestQuantizedCloneSharesCodesSafely(t *testing.T) {
	ix, _, queries := quantWorld(t, 800, 16, 5)
	ix.QuantizeSQ8(4)
	before := ix.TopK(queries[0], 10, nil)
	cp := ix.Clone()
	if !cp.Quantized() || cp.Rerank() != ix.Rerank() {
		t.Fatal("clone dropped quantization state")
	}
	// Mutating the clone must not change the original's answers.
	v := make([]float64, 16)
	v[0] = 1
	for i := 0; i < 50; i++ {
		if err := cp.Insert(10000+i, v); err != nil {
			t.Fatal(err)
		}
	}
	after := ix.TopK(queries[0], 10, nil)
	if len(before) != len(after) {
		t.Fatalf("original changed: %d vs %d results", len(before), len(after))
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("original rank %d changed: %+v vs %+v", i, before[i], after[i])
		}
	}
}

func TestDisableQuantRestoresExactTraversal(t *testing.T) {
	ix, _, queries := quantWorld(t, 600, 16, 6)
	exact := ix.TopK(queries[1], 10, nil)
	ix.QuantizeSQ8(4)
	ix.DisableQuant()
	if ix.Quantized() || ix.Rerank() != 0 {
		t.Fatal("DisableQuant left state behind")
	}
	got := ix.TopK(queries[1], 10, nil)
	for i := range exact {
		if got[i] != exact[i] {
			t.Fatalf("rank %d after disable: %+v, want %+v", i, got[i], exact[i])
		}
	}
}

func TestSetRerank(t *testing.T) {
	ix, _, _ := quantWorld(t, 300, 8, 7)
	ix.SetRerank(9) // unquantized: ignored
	if ix.Rerank() != 0 {
		t.Fatal("SetRerank applied to unquantized index")
	}
	ix.QuantizeSQ8(4)
	ix.SetRerank(9)
	if ix.Rerank() != 9 {
		t.Fatalf("rerank = %d, want 9", ix.Rerank())
	}
	ix.SetRerank(0) // ignored
	if ix.Rerank() != 9 {
		t.Fatal("non-positive rerank applied")
	}
}

// TestQuantSidecarRoundTrip: graph + sidecar serialise, load into a
// fresh graph, answer identically, and re-serialise byte-identically.
func TestQuantSidecarRoundTrip(t *testing.T) {
	ix, _, queries := quantWorld(t, 1200, 24, 8)
	ix.QuantizeSQ8(6)

	var graph, sidecar bytes.Buffer
	if _, err := ix.WriteTo(&graph); err != nil {
		t.Fatal(err)
	}
	if _, err := ix.WriteQuantTo(&sidecar); err != nil {
		t.Fatal(err)
	}

	loaded, err := Read(bytes.NewReader(graph.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if err := loaded.ReadQuantInto(bytes.NewReader(sidecar.Bytes())); err != nil {
		t.Fatal(err)
	}
	if !loaded.Quantized() || loaded.Rerank() != 6 {
		t.Fatalf("loaded: quantized=%v rerank=%d", loaded.Quantized(), loaded.Rerank())
	}

	for _, q := range queries[:8] {
		want := ix.TopK(q, 10, nil)
		got := loaded.TopK(q, 10, nil)
		if len(want) != len(got) {
			t.Fatalf("result lengths differ: %d vs %d", len(want), len(got))
		}
		for i := range want {
			if want[i].ID != got[i].ID {
				t.Fatalf("rank %d: loaded id %d, want %d", i, got[i].ID, want[i].ID)
			}
		}
	}

	var resaved bytes.Buffer
	if _, err := loaded.WriteQuantTo(&resaved); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sidecar.Bytes(), resaved.Bytes()) {
		t.Fatal("re-saved quant sidecar is not byte-identical")
	}

	dim, rerank, err := ReadQuantHeader(bytes.NewReader(sidecar.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if dim != 24 || rerank != 6 {
		t.Fatalf("ReadQuantHeader = (%d, %d), want (24, 6)", dim, rerank)
	}
}

func TestQuantSidecarRejectsMalformed(t *testing.T) {
	ix, _, _ := quantWorld(t, 100, 8, 9)
	ix.QuantizeSQ8(4)
	var sidecar bytes.Buffer
	if _, err := ix.WriteQuantTo(&sidecar); err != nil {
		t.Fatal(err)
	}
	raw := sidecar.Bytes()

	cases := map[string][]byte{
		"bad magic":  append([]byte("XXXX"), raw[4:]...),
		"truncation": raw[:len(raw)/2],
	}
	for name, corrupt := range cases {
		fresh, _, _ := quantWorld(t, 100, 8, 9)
		if err := fresh.ReadQuantInto(bytes.NewReader(corrupt)); err == nil {
			t.Fatalf("%s accepted", name)
		}
	}

	// Node-count mismatch: a sidecar from a different graph.
	other, _, _ := quantWorld(t, 50, 8, 10)
	if err := other.ReadQuantInto(bytes.NewReader(raw)); err == nil {
		t.Fatal("sidecar for a different graph accepted")
	}

	// Unquantized index refuses to serialise a sidecar.
	plain, _, _ := quantWorld(t, 20, 8, 11)
	if _, err := plain.WriteQuantTo(&bytes.Buffer{}); err == nil {
		t.Fatal("WriteQuantTo succeeded on an unquantized index")
	}
}

func BenchmarkDistQuantVsExact(b *testing.B) {
	for _, dim := range []int{32, 300} {
		ix, _, queries := quantWorld(b, 100, dim, 12)
		sc := ix.acquireScratch()
		defer ix.releaseScratch(sc)
		if cap(sc.q) < dim {
			sc.q = make([]float64, dim)
		}
		sc.q = sc.q[:dim]
		qn := vec.Norm(queries[0])
		for i, x := range queries[0] {
			sc.q[i] = x / qn
		}
		b.Run(fmt.Sprintf("exact/dim=%d", dim), func(b *testing.B) {
			sc.useQ = false
			for i := 0; i < b.N; i++ {
				_ = ix.dist(sc, int32(i%100))
			}
		})
		ix.QuantizeSQ8(4)
		ix.prepareQueryCodes(sc)
		if !sc.useQ {
			b.Fatal("quantized query preparation failed")
		}
		b.Run(fmt.Sprintf("sq8/dim=%d", dim), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = ix.dist(sc, int32(i%100))
			}
		})
	}
}
