//go:build !race

package ann

const raceEnabled = false
