package ann

import (
	"math/rand"
	"sort"
	"testing"

	"github.com/retrodb/retro/internal/vec"
)

// randomVectors draws n unit-scale Gaussian vectors deterministically.
func randomVectors(n, dim int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float64, n)
	for i := range out {
		v := make([]float64, dim)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		out[i] = v
	}
	return out
}

// bruteTopK is the exact reference: cosine scores sorted descending,
// ties by ascending id.
func bruteTopK(vectors [][]float64, q []float64, k int, skip func(int) bool) []Result {
	qn := vec.Norm(q)
	var all []Result
	for id, v := range vectors {
		if skip != nil && skip(id) {
			continue
		}
		n := vec.Norm(v)
		if n == 0 {
			continue
		}
		all = append(all, Result{ID: id, Score: vec.Dot(q, v) / (qn * n)})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Score != all[j].Score {
			return all[i].Score > all[j].Score
		}
		return all[i].ID < all[j].ID
	})
	if len(all) > k {
		all = all[:k]
	}
	return all
}

func buildIndex(t testing.TB, vectors [][]float64, p Params) *Index {
	t.Helper()
	ix := New(len(vectors[0]), p)
	for id, v := range vectors {
		if err := ix.Insert(id, v); err != nil {
			t.Fatal(err)
		}
	}
	return ix
}

// TestRecallAt10 is the acceptance fixture: recall@10 >= 0.95 against
// brute force on 10k vectors with default parameters.
func TestRecallAt10(t *testing.T) {
	const (
		n, dim, queries, k = 10_000, 32, 100, 10
	)
	vectors := randomVectors(n, dim, 7)
	ix := buildIndex(t, vectors, Params{})
	qs := randomVectors(queries, dim, 11)
	hits, total := 0, 0
	for _, q := range qs {
		exact := bruteTopK(vectors, q, k, nil)
		approx := ix.TopK(q, k, nil)
		want := map[int]bool{}
		for _, m := range exact {
			want[m.ID] = true
		}
		for _, m := range approx {
			if want[m.ID] {
				hits++
			}
		}
		total += len(exact)
	}
	recall := float64(hits) / float64(total)
	t.Logf("recall@%d over %d queries on %d vectors: %.4f", k, queries, n, recall)
	if recall < 0.95 {
		t.Fatalf("recall@%d = %.4f, want >= 0.95", k, recall)
	}
}

// TestSmallGraphExact checks that on a small set with a wide beam the
// index returns exactly the brute-force answer, ordering included.
func TestSmallGraphExact(t *testing.T) {
	vectors := randomVectors(200, 16, 3)
	ix := buildIndex(t, vectors, Params{EfSearch: 200})
	for qi, q := range randomVectors(20, 16, 5) {
		exact := bruteTopK(vectors, q, 5, nil)
		got := ix.TopK(q, 5, nil)
		if len(got) != len(exact) {
			t.Fatalf("query %d: got %d results, want %d", qi, len(got), len(exact))
		}
		for i := range got {
			if got[i].ID != exact[i].ID {
				t.Fatalf("query %d rank %d: got id %d, want %d", qi, i, got[i].ID, exact[i].ID)
			}
		}
	}
}

func TestDeleteExcludesFromResults(t *testing.T) {
	vectors := randomVectors(500, 16, 9)
	ix := buildIndex(t, vectors, Params{EfSearch: 128})
	q := vectors[42]
	top := ix.TopK(q, 1, nil)
	if len(top) != 1 || top[0].ID != 42 {
		t.Fatalf("self query should return id 42, got %+v", top)
	}
	if !ix.Delete(42) {
		t.Fatal("Delete(42) returned false")
	}
	if ix.Delete(42) {
		t.Fatal("second Delete(42) returned true")
	}
	if ix.Contains(42) {
		t.Fatal("Contains(42) after delete")
	}
	if ix.Len() != 499 {
		t.Fatalf("Len = %d after delete, want 499", ix.Len())
	}
	for _, m := range ix.TopK(q, 10, nil) {
		if m.ID == 42 {
			t.Fatal("deleted id 42 still returned")
		}
	}
}

func TestFilterCallback(t *testing.T) {
	vectors := randomVectors(500, 16, 13)
	ix := buildIndex(t, vectors, Params{EfSearch: 128})
	q := vectors[7]
	got := ix.TopK(q, 10, func(id int) bool { return id%2 == 0 })
	if len(got) == 0 {
		t.Fatal("no results with filter")
	}
	for _, m := range got {
		if m.ID%2 == 0 {
			t.Fatalf("filtered id %d returned", m.ID)
		}
	}
}

func TestInsertReplacesVector(t *testing.T) {
	vectors := randomVectors(300, 8, 17)
	ix := buildIndex(t, vectors, Params{EfSearch: 64})
	// Move id 5 on top of id 6's vector: a query at that point must now
	// find id 5 with similarity ~1.
	if err := ix.Insert(5, vectors[6]); err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 300 {
		t.Fatalf("Len = %d after replace, want 300", ix.Len())
	}
	top := ix.TopK(vectors[6], 2, nil)
	found := false
	for _, m := range top {
		if m.ID == 5 && m.Score > 0.999 {
			found = true
		}
	}
	if !found {
		t.Fatalf("replaced vector not found at new position: %+v", top)
	}
}

func TestDeterministicBuild(t *testing.T) {
	vectors := randomVectors(400, 16, 21)
	a := buildIndex(t, vectors, Params{})
	b := buildIndex(t, vectors, Params{})
	for _, q := range randomVectors(10, 16, 23) {
		ra := a.TopK(q, 5, nil)
		rb := b.TopK(q, 5, nil)
		if len(ra) != len(rb) {
			t.Fatal("result length differs between identical builds")
		}
		for i := range ra {
			if ra[i] != rb[i] {
				t.Fatalf("rank %d differs: %+v vs %+v", i, ra[i], rb[i])
			}
		}
	}
}

// TestDegenerateMClamped: M=1 would make the level multiplier infinite
// (1/ln 1); the constructor must fall back to the default instead of
// panicking on the first insert.
func TestDegenerateMClamped(t *testing.T) {
	ix := New(4, Params{M: 1})
	if got := ix.Params().M; got != DefaultParams().M {
		t.Fatalf("M=1 not clamped: got %d", got)
	}
	for i, v := range randomVectors(50, 4, 31) {
		if err := ix.Insert(i, v); err != nil {
			t.Fatal(err)
		}
	}
	if got := ix.TopK(randomVectors(1, 4, 33)[0], 5, nil); len(got) != 5 {
		t.Fatalf("got %d results, want 5", len(got))
	}
}

func TestInsertErrors(t *testing.T) {
	ix := New(4, Params{})
	if err := ix.Insert(0, []float64{1, 2}); err == nil {
		t.Fatal("dimension mismatch not rejected")
	}
	if err := ix.Insert(0, []float64{0, 0, 0, 0}); err == nil {
		t.Fatal("zero vector not rejected")
	}
	if got := ix.TopK([]float64{1, 0, 0, 0}, 3, nil); got != nil {
		t.Fatalf("empty index returned %+v", got)
	}
}
