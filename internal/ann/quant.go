package ann

import (
	"fmt"
	"io"
	"math"

	"github.com/retrodb/retro/internal/quant"
	"github.com/retrodb/retro/internal/wire"
)

// SQ8 candidate generation. A quantized index traverses on 1-byte codes
// (see quant) and re-ranks the over-fetched candidate set exactly;
// QuantizeSQ8 trains the codebook from the index's own unit-normalised
// vectors, which are rows of the store matrix after normalisation.
//
// Quantization state follows the index's existing synchronisation rules:
// QuantizeSQ8/DisableQuant/SetRerank mutate shared node state and need
// the same external exclusion as Insert; queries on a quantized index
// remain safe to run concurrently with each other.

// DefaultRerank is the candidate over-fetch factor: TopK pulls
// DefaultRerank*k quantized candidates and re-scores them exactly. 3 is
// enough to hold recall@10 at the exact path's level on clustered
// embedding workloads (the SQ8 approximation error is far smaller than
// typical neighbour score gaps, so the true top k essentially always
// lands inside the top 3k quantized candidates) while keeping the
// re-ranking and beam cost low; raise it per query path via SetRerank
// when the data is adversarially uniform.
const DefaultRerank = 3

// QuantizeSQ8 trains a symmetric per-dimension SQ8 codebook over every
// stored vector and encodes each node, switching traversal to the
// code-domain kernel. rerank is the over-fetch factor for re-ranking
// (non-positive selects DefaultRerank). Re-quantizing an already
// quantized index retrains from the current vectors.
func (ix *Index) QuantizeSQ8(rerank int) {
	var cb *quant.Codebook
	if ix.f32 {
		// Train32/Encode32 widen every component to float64 internally,
		// so an f32 index produces the same codes a float64 index over
		// the identical float32-rounded rows would.
		cb = quant.Train32(ix.dim, len(ix.nodes), func(i int) []float32 { return ix.nodes[i].vec32 })
	} else {
		cb = quant.Train(ix.dim, len(ix.nodes), func(i int) []float64 { return ix.nodes[i].vec })
	}
	ix.installQuant(cb, rerank)
}

func (ix *Index) installQuant(cb *quant.Codebook, rerank int) {
	if rerank <= 0 {
		rerank = DefaultRerank
	}
	// One slot-major backing array for every code (the batch walk
	// computes code addresses from the slot alone, see Index.qflat), and
	// fresh storage rather than reuse in place: a Clone may share the
	// previous codes with concurrent readers.
	flat := make([]int8, len(ix.nodes)*ix.dim)
	corrs := make([]float64, len(ix.nodes))
	for i := range ix.nodes {
		nd := &ix.nodes[i]
		code := flat[i*ix.dim : (i+1)*ix.dim : (i+1)*ix.dim]
		if ix.f32 {
			nd.corr = cb.Encode32(code, nd.vec32)
		} else {
			nd.corr = cb.Encode(code, nd.vec)
		}
		nd.code = code
		corrs[i] = nd.corr
	}
	ix.qflat = flat
	ix.qcorr = corrs
	ix.quant = cb
	ix.rerank = rerank
}

// DisableQuant drops the codebook and every node's code; traversal
// returns to exact float64 distances.
func (ix *Index) DisableQuant() {
	ix.quant = nil
	ix.rerank = 0
	ix.qflat = nil
	ix.qcorr = nil
	for i := range ix.nodes {
		ix.nodes[i].code = nil
		ix.nodes[i].corr = 0
	}
}

// Quantized reports whether the index traverses on SQ8 codes.
func (ix *Index) Quantized() bool { return ix.quant != nil }

// Rerank returns the candidate over-fetch factor (0 when unquantized).
func (ix *Index) Rerank() int { return ix.rerank }

// SetRerank adjusts the over-fetch factor on a quantized index. Like
// SetEfSearch it affects only queries, letting serving processes retune
// the recall/latency point on a snapshot-restored index; it still
// requires the same external synchronisation as Insert. Non-positive
// values and calls on an unquantized index are ignored.
func (ix *Index) SetRerank(r int) {
	if r > 0 && ix.quant != nil {
		ix.rerank = r
	}
}

// Codebook returns the trained SQ8 codebook, or nil when unquantized.
func (ix *Index) Codebook() *quant.Codebook { return ix.quant }

// --- sidecar serialisation --------------------------------------------------

// The quant sidecar persists the trained scales and every node's code
// verbatim, aligned to the graph's node slots, so a loaded index answers
// quantized queries identically to the one that was written — and a
// re-saved snapshot is byte-identical (codes are never re-derived from
// the float32-rounded vectors, which could flip ties at rounding
// boundaries).

const (
	quantMagic   = "QSQ8"
	quantVersion = 1
)

// WriteQuantTo serialises the quantization sidecar (codebook scales,
// rerank factor and per-slot codes). It fails on an unquantized index.
func (ix *Index) WriteQuantTo(w io.Writer) (int64, error) {
	if ix.quant == nil {
		return 0, fmt.Errorf("ann: index is not quantized")
	}
	ww := wire.NewWriter(w)
	ww.Bytes([]byte(quantMagic))
	ww.U32(quantVersion)
	ww.U32(uint32(ix.dim))
	ww.U32(uint32(ix.rerank))
	for _, s := range ix.quant.Scales() {
		ww.F64(s)
	}
	ww.U32(uint32(len(ix.nodes)))
	buf := make([]byte, ix.dim)
	for i := range ix.nodes {
		nd := &ix.nodes[i]
		ww.F64(nd.corr)
		for d, c := range nd.code {
			buf[d] = byte(c)
		}
		ww.Bytes(buf)
	}
	err := ww.Flush()
	return ww.Count(), err
}

// ReadQuantInto restores a sidecar written by WriteQuantTo onto this
// index. The sidecar must match the index's dimensionality and node
// count (it was written against the same graph). Malformed input is an
// error, never a panic, and the index is left unquantized on failure.
func (ix *Index) ReadQuantInto(r io.Reader) error {
	rr := wire.NewReader(r)
	magic := make([]byte, len(quantMagic))
	rr.Bytes(magic)
	if rr.Err() == nil && string(magic) != quantMagic {
		return fmt.Errorf("ann: bad quant sidecar magic %q", magic)
	}
	if v := rr.U32(); rr.Err() == nil && v != quantVersion {
		return fmt.Errorf("ann: unsupported quant sidecar version %d (have %d)", v, quantVersion)
	}
	dim := int(rr.U32())
	rerank := int(rr.U32())
	if err := rr.Err(); err != nil {
		return fmt.Errorf("ann: reading quant sidecar header: %w", err)
	}
	if dim != ix.dim {
		return fmt.Errorf("ann: quant sidecar dim %d does not match index dim %d", dim, ix.dim)
	}
	if rerank <= 0 || rerank > 1<<16 {
		return fmt.Errorf("ann: implausible rerank factor %d", rerank)
	}
	scales := make([]float64, dim)
	for d := range scales {
		scales[d] = rr.F64()
	}
	if err := rr.Err(); err != nil {
		return fmt.Errorf("ann: reading quant scales: %w", err)
	}
	cb, err := quant.NewCodebook(scales)
	if err != nil {
		return fmt.Errorf("ann: %w", err)
	}
	numNodes := rr.Count32(maxNodes)
	if err := rr.Err(); err != nil {
		return fmt.Errorf("ann: reading quant node count: %w", err)
	}
	if numNodes != len(ix.nodes) {
		return fmt.Errorf("ann: quant sidecar covers %d nodes, graph has %d", numNodes, len(ix.nodes))
	}
	corrs := make([]float64, numNodes)
	flat := make([]int8, numNodes*dim)
	buf := make([]byte, dim)
	for i := 0; i < numNodes; i++ {
		corrs[i] = rr.F64()
		rr.Bytes(buf)
		if err := rr.Err(); err != nil {
			return fmt.Errorf("ann: quant codes for node %d: %w", i, err)
		}
		if corrs[i] < 0 || math.IsNaN(corrs[i]) || math.IsInf(corrs[i], 0) {
			return fmt.Errorf("ann: implausible correction %v for node %d", corrs[i], i)
		}
		code := flat[i*dim : (i+1)*dim]
		for d, b := range buf {
			code[d] = int8(b)
		}
	}
	for i := range ix.nodes {
		ix.nodes[i].code = flat[i*dim : (i+1)*dim : (i+1)*dim]
		ix.nodes[i].corr = corrs[i]
	}
	ix.qflat = flat
	ix.qcorr = corrs
	ix.quant = cb
	ix.rerank = rerank
	return nil
}

// ReadQuantHeader parses just the dimensionality and rerank factor off a
// sidecar, for cheap snapshot introspection.
func ReadQuantHeader(r io.Reader) (dim, rerank int, err error) {
	rr := wire.NewReader(r)
	magic := make([]byte, len(quantMagic))
	rr.Bytes(magic)
	if rr.Err() == nil && string(magic) != quantMagic {
		return 0, 0, fmt.Errorf("ann: bad quant sidecar magic %q", magic)
	}
	if v := rr.U32(); rr.Err() == nil && v != quantVersion {
		return 0, 0, fmt.Errorf("ann: unsupported quant sidecar version %d (have %d)", v, quantVersion)
	}
	dim = int(rr.U32())
	rerank = int(rr.U32())
	if err := rr.Err(); err != nil {
		return 0, 0, fmt.Errorf("ann: reading quant sidecar header: %w", err)
	}
	return dim, rerank, nil
}
