package ann

import "testing"

// TestTopKAppendStatsParity checks the telemetry variant returns the
// exact results of TopKAppend while filling SearchStats with plausible
// traversal numbers, and that passing nil stats changes nothing.
func TestTopKAppendStatsParity(t *testing.T) {
	vectors := randomVectors(3000, 32, 7)
	ix := buildIndex(t, vectors, DefaultParams())
	q := vectors[42]

	plain := ix.TopKAppend(q, 10, nil, nil)
	var st SearchStats
	stats := ix.TopKAppendStats(q, 10, nil, nil, &st)

	if len(plain) != len(stats) {
		t.Fatalf("result length mismatch: %d vs %d", len(plain), len(stats))
	}
	for i := range plain {
		if plain[i] != stats[i] {
			t.Fatalf("result %d: %+v vs %+v", i, plain[i], stats[i])
		}
	}
	if st.Hops <= 0 {
		t.Fatalf("Hops = %d, want > 0", st.Hops)
	}
	if st.Nodes <= 0 || st.Nodes > len(vectors) {
		t.Fatalf("Nodes = %d, want in (0, %d]", st.Nodes, len(vectors))
	}
	if st.WalkNs <= 0 {
		t.Fatalf("WalkNs = %d, want > 0", st.WalkNs)
	}
	if st.Quantized {
		if st.Reranked <= 0 {
			t.Fatalf("quantized search reported Reranked = %d, want > 0", st.Reranked)
		}
	} else if st.Reranked != 0 {
		t.Fatalf("exact search reported Reranked = %d, want 0", st.Reranked)
	}
}

// TestTopKAppendStatsReset checks stats from a previous call don't leak
// into the next: the struct is zeroed on entry.
func TestTopKAppendStatsReset(t *testing.T) {
	vectors := randomVectors(500, 16, 3)
	ix := buildIndex(t, vectors, DefaultParams())
	st := SearchStats{Hops: 999999, Nodes: 999999, Reranked: 999999, WalkNs: -1, RerankNs: -1}
	ix.TopKAppendStats(vectors[0], 5, nil, nil, &st)
	if st.Hops >= 999999 || st.Nodes >= 999999 {
		t.Fatalf("stats not reset: %+v", st)
	}
}

// TestTopKAppendStatsZeroAlloc guards the instrumented path: with a
// warm scratch pool and caller-owned dst, collecting stats must not
// allocate.
func TestTopKAppendStatsZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unreliable under the race detector")
	}
	vectors := randomVectors(2000, 32, 11)
	ix := buildIndex(t, vectors, DefaultParams())
	q := vectors[7]
	dst := make([]Result, 0, 16)
	var st SearchStats
	ix.TopKAppendStats(q, 10, nil, dst, &st) // warm the pools
	allocs := testing.AllocsPerRun(200, func() {
		dst = ix.TopKAppendStats(q, 10, nil, dst[:0], &st)
	})
	if allocs != 0 {
		t.Fatalf("TopKAppendStats allocated %.2f times per call, want 0", allocs)
	}
}
