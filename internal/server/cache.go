package server

import (
	"container/list"
	"sync"
)

// lruCache is a fixed-capacity least-recently-used cache for query
// results. It is safe for concurrent use; the serving path reads it from
// many goroutines at once and purges it wholesale on writes.
type lruCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
	hits  int64
	miss  int64
}

type lruEntry struct {
	key   string
	value any
}

func newLRUCache(capacity int) *lruCache {
	return &lruCache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element, capacity),
	}
}

func (c *lruCache) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.miss++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).value, true
}

func (c *lruCache) Put(key string, value any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry).value = value
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry{key: key, value: value})
	if c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
	}
}

// Purge drops every entry (used on insert: any cached neighbour list may
// now be missing the new values). Hit/miss counters survive.
func (c *lruCache) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	clear(c.items)
}

func (c *lruCache) Stats() (length, capacity int, hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len(), c.cap, c.hits, c.miss
}
