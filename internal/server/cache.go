package server

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// shardedCache is the query-result cache of the serving read path. It
// replaced a single-mutex LRU whose Get took the exclusive lock even on
// a hit (to splice the recency list) — under parallel load every cached
// read serialised on that one mutex. The redesign removes both costs:
//
//   - Sharding: entries are spread over a power-of-two number of shards
//     (>= GOMAXPROCS) by key hash, so concurrent requests for different
//     keys almost never share a lock.
//   - CLOCK recency instead of LRU order: a hit only sets an atomic
//     reference bit under the shard's READ lock — no list splice, no
//     exclusive section. Eviction (under the shard's write lock, on the
//     rare miss-with-full-shard) sweeps a clock hand that gives each
//     referenced entry a second chance. Recency is approximate, which is
//     exactly the trade: reads stay read-mostly.
//
// Values are immutable pre-encoded response bodies stamped with the
// serving-view epoch they were computed from: a Get for a different
// epoch misses, so a result computed against an old view can never be
// served after an insert published a new one, even if the Put raced the
// purge.
type shardedCache struct {
	shards []cacheShard
	mask   uint32
	perCap int // capacity per shard, in entries
}

type cacheShard struct {
	mu    sync.RWMutex
	items map[string]*cacheEntry
	ring  []*cacheEntry // CLOCK ring, bounded by perCap
	hand  int
	hits  atomic.Int64
	miss  atomic.Int64
}

type cacheEntry struct {
	key   string
	epoch uint64
	body  []byte      // immutable once published in the map
	ref   atomic.Bool // CLOCK reference bit, set on every hit
}

func newShardedCache(capacity int) *shardedCache {
	n := 1
	for n < runtime.GOMAXPROCS(0) {
		n <<= 1
	}
	perCap := (capacity + n - 1) / n
	if perCap < 1 {
		perCap = 1
	}
	c := &shardedCache{shards: make([]cacheShard, n), mask: uint32(n - 1), perCap: perCap}
	for i := range c.shards {
		c.shards[i].items = make(map[string]*cacheEntry)
	}
	return c
}

// fnv32 is FNV-1a over the raw key bytes; inlined here so the hit path
// stays allocation-free (hash/fnv would force an interface indirection).
func fnv32(key []byte) uint32 {
	h := uint32(2166136261)
	for _, b := range key {
		h ^= uint32(b)
		h *= 16777619
	}
	return h
}

// Get returns the cached body for key if it was computed under the given
// view epoch. The hit path allocates nothing: the map is probed with the
// raw byte key, and recency is an atomic bit set under the read lock.
func (c *shardedCache) Get(key []byte, epoch uint64) ([]byte, bool) {
	sh := &c.shards[fnv32(key)&c.mask]
	var body []byte
	sh.mu.RLock()
	if e := sh.items[string(key)]; e != nil && e.epoch == epoch {
		e.ref.Store(true)
		body = e.body
	}
	sh.mu.RUnlock()
	if body == nil {
		sh.miss.Add(1)
		return nil, false
	}
	sh.hits.Add(1)
	return body, true
}

// Put stores body (which must not be mutated afterwards) for key under
// the given epoch, evicting via the CLOCK sweep when the shard is full.
func (c *shardedCache) Put(key []byte, epoch uint64, body []byte) {
	sh := &c.shards[fnv32(key)&c.mask]
	owned := string(key)
	sh.mu.Lock()
	if e := sh.items[owned]; e != nil {
		// Same key recomputed (typically under a newer epoch): replace
		// the payload in place. Concurrent readers copied the old body
		// slice header out under the read lock; swapping the field here
		// never mutates those bytes.
		e.epoch = epoch
		e.body = body
		e.ref.Store(true)
		sh.mu.Unlock()
		return
	}
	e := &cacheEntry{key: owned, epoch: epoch, body: body}
	if len(sh.ring) < c.perCap {
		sh.ring = append(sh.ring, e)
	} else {
		for {
			victim := sh.ring[sh.hand]
			if victim.ref.CompareAndSwap(true, false) {
				sh.hand = (sh.hand + 1) % len(sh.ring)
				continue // second chance
			}
			delete(sh.items, victim.key)
			sh.ring[sh.hand] = e
			sh.hand = (sh.hand + 1) % len(sh.ring)
			break
		}
	}
	sh.items[owned] = e
	sh.mu.Unlock()
}

// Purge drops every entry in every shard. Epoch stamping already makes
// stale entries unservable the moment a new view is published; Purge
// additionally releases their memory. Hit/miss counters survive.
func (c *shardedCache) Purge() {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		clear(sh.items)
		sh.ring = sh.ring[:0]
		sh.hand = 0
		sh.mu.Unlock()
	}
}

// Counts sums the hit/miss counters without taking any shard lock —
// the scrape-time source for the cache counter metrics.
func (c *shardedCache) Counts() (hits, misses int64) {
	for i := range c.shards {
		hits += c.shards[i].hits.Load()
		misses += c.shards[i].miss.Load()
	}
	return hits, misses
}

// Stats sums entry counts and hit/miss counters across shards.
func (c *shardedCache) Stats() (length, capacity, shards int, hits, misses int64) {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.RLock()
		length += len(sh.items)
		sh.mu.RUnlock()
		hits += sh.hits.Load()
		misses += sh.miss.Load()
	}
	return length, c.perCap * len(c.shards), len(c.shards), hits, misses
}
