package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
)

func TestInsertBatchEndpoint(t *testing.T) {
	s, titles := newTestServer(t)
	h := s.Handler()

	// Warm the cache so the batch's single purge is observable.
	warm := "/v1/neighbors?table=movies&column=title&text=" + queryEscape(titles[0]) + "&k=3"
	get(t, h, warm)
	get(t, h, warm)

	cols := columnCount(t, s, "movies")
	batch := [][]any{
		makeRow(cols, map[int]any{0: 91001, 1: "batched premiere one", 2: "english"}),
		makeRow(cols, map[int]any{0: 91002, 1: "batched premiere two", 2: "english"}),
		makeRow(cols, map[int]any{0: 91003, 1: "batched premiere three", 2: "english"}),
	}
	body, _ := json.Marshal(map[string]any{"table": "movies", "rows": batch})
	rec, resp := post(t, h, "/v1/insert", string(body))
	if rec.Code != http.StatusOK || resp["inserted"] != true {
		t.Fatalf("batch insert: code %d body %v", rec.Code, resp)
	}
	if resp["rows"].(float64) != 3 {
		t.Fatalf("rows = %v, want 3", resp["rows"])
	}

	// Every batched value is immediately queryable; the cache was purged
	// once.
	for _, title := range []string{"batched premiere one", "batched premiere two", "batched premiere three"} {
		rec, body := get(t, h, "/v1/neighbors?table=movies&column=title&text="+queryEscape(title)+"&k=3")
		if rec.Code != http.StatusOK {
			t.Fatalf("post-batch neighbors for %q: code %d body %v", title, rec.Code, body)
		}
	}
	if _, body := get(t, h, warm); body["cached"] != false {
		t.Fatal("cache not purged by batch insert")
	}

	// Error paths specific to the batched form.
	if rec, _ := post(t, h, "/v1/insert", `{"table":"movies","rows":[]}`); rec.Code != http.StatusBadRequest {
		t.Fatalf("empty batch: code %d, want 400", rec.Code)
	}
	both, _ := json.Marshal(map[string]any{"table": "movies", "values": batch[0], "rows": batch})
	if rec, _ := post(t, h, "/v1/insert", string(both)); rec.Code != http.StatusBadRequest {
		t.Fatalf("values+rows: code %d, want 400", rec.Code)
	}
	short, _ := json.Marshal(map[string]any{"table": "movies", "rows": [][]any{{1, "too short"}}})
	if rec, _ := post(t, h, "/v1/insert", string(short)); rec.Code != http.StatusBadRequest {
		t.Fatalf("arity mismatch in batch: code %d, want 400", rec.Code)
	}
}

func TestInsertBatchPartialFailureEndpoint(t *testing.T) {
	s, _ := newTestServer(t)
	h := s.Handler()
	cols := columnCount(t, s, "movies")
	batch := [][]any{
		makeRow(cols, map[int]any{0: 92001, 1: "partial premiere", 2: "english"}),
		makeRow(cols, map[int]any{0: 92001, 1: "dup pk", 2: "english"}), // duplicate PK
	}
	body, _ := json.Marshal(map[string]any{"table": "movies", "rows": batch})
	rec, resp := post(t, h, "/v1/insert", string(body))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("partial batch: code %d body %v", rec.Code, resp)
	}
	if resp["committed"] != float64(1) {
		t.Fatalf("committed = %v, want 1", resp["committed"])
	}
	// The committed prefix is live.
	if rec, _ := get(t, h, "/v1/neighbors?table=movies&column=title&text=partial+premiere&k=3"); rec.Code != http.StatusOK {
		t.Fatalf("committed prefix not queryable: code %d", rec.Code)
	}
}

func TestStatsExposeStalenessAndInsertRecovers(t *testing.T) {
	s, _ := newTestServer(t)
	h := s.Handler()

	_, body := get(t, h, "/v1/stats")
	sessStats, ok := body["session"].(map[string]any)
	if !ok || sessStats["stale"] != false {
		t.Fatalf("stats.session = %v, want stale:false", body["session"])
	}

	s.session().MarkStale()
	_, body = get(t, h, "/v1/stats")
	if body["session"].(map[string]any)["stale"] != true {
		t.Fatalf("stats.session after MarkStale = %v", body["session"])
	}

	// The next insert runs a full repair, clears the staleness and the
	// inserted value is queryable.
	cols := columnCount(t, s, "movies")
	row := makeRow(cols, map[int]any{0: 93001, 1: "the recovered premiere", 2: "english"})
	reqBody, _ := json.Marshal(map[string]any{"table": "movies", "values": row})
	if rec, body := post(t, h, "/v1/insert", string(reqBody)); rec.Code != http.StatusOK {
		t.Fatalf("insert on stale session: code %d body %v", rec.Code, body)
	}
	_, body = get(t, h, "/v1/stats")
	if body["session"].(map[string]any)["stale"] != false {
		t.Fatalf("staleness not cleared by full repair: %v", body["session"])
	}
	if rec, _ := get(t, h, "/v1/neighbors?table=movies&column=title&text=the+recovered+premiere&k=3"); rec.Code != http.StatusOK {
		t.Fatalf("recovered value not queryable: code %d", rec.Code)
	}
}

// TestConcurrentBatchInsertsAndReads is the write-path race regression
// test: concurrent /v1/insert batches race /v1/neighbors and /v1/stats
// (run the package under -race to arm it), no insert is lost, and every
// inserted value is visible afterwards on both the ANN and the exact
// search path.
func TestConcurrentBatchInsertsAndReads(t *testing.T) {
	s, titles := newTestServer(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const (
		writers   = 4
		batches   = 3
		batchSize = 4
		readers   = 6
		reads     = 25
	)
	var wg sync.WaitGroup
	errs := make(chan error, writers*batches+readers*reads)

	cols := columnCount(t, s, "movies")
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				rows := make([][]any, batchSize)
				for r := range rows {
					id := 70000 + g*1000 + b*100 + r
					rows[r] = makeRow(cols, map[int]any{
						0: id, 1: fmt.Sprintf("race premiere %d", id), 2: "english",
					})
				}
				body, _ := json.Marshal(map[string]any{"table": "movies", "rows": rows})
				resp, err := http.Post(ts.URL+"/v1/insert", "application/json", bytes.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("writer %d batch %d: status %d", g, b, resp.StatusCode)
				}
				resp.Body.Close()
			}
		}(g)
	}
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < reads; i++ {
				url := ts.URL + "/v1/neighbors?table=movies&column=title&text=" +
					queryEscape(titles[(g+i)%len(titles)]) + "&k=3"
				if i%3 == 2 {
					url = ts.URL + "/v1/stats"
				}
				resp, err := http.Get(url)
				if err != nil {
					errs <- err
					return
				}
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("reader %d: GET %s status %d", g, url, resp.StatusCode)
				}
				resp.Body.Close()
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// No lost updates: every row of every batch landed in the database
	// and in the model, and is found by BOTH search paths.
	model := s.session().Model()
	store := model.Store()
	store.WarmANN()
	if store.ANNIndex() == nil {
		t.Fatal("ANN index unavailable after concurrent batches")
	}
	// The inserted titles share most of their tokens, so their vectors
	// are near-duplicates of each other; search with a k that covers the
	// whole cohort rather than expecting each to be its own top hit.
	const cohort = writers * batches * batchSize
	for g := 0; g < writers; g++ {
		for b := 0; b < batches; b++ {
			for r := 0; r < batchSize; r++ {
				id := 70000 + g*1000 + b*100 + r
				title := fmt.Sprintf("race premiere %d", id)
				v, err := model.Vector("movies", "title", title)
				if err != nil {
					t.Fatalf("lost update: %s missing from model: %v", title, err)
				}
				selfKey, _ := model.Key("movies", "title", title)
				selfID, _ := store.ID(selfKey)
				if !store.ANNIndex().Contains(selfID) {
					t.Errorf("%s not present in the ANN graph", title)
				}
				found := false
				for _, m := range store.TopKExact(v, 2*cohort, nil) {
					if m.ID == selfID {
						found = true
					}
				}
				if !found {
					t.Errorf("%s not found via exact path", title)
				}
			}
		}
	}
}
