package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	retro "github.com/retrodb/retro"
	"github.com/retrodb/retro/internal/datagen"
)

// newTestServer trains a small session with the ANN path forced on, so
// the endpoints exercise the HNSW serving stack end to end.
func newTestServer(t *testing.T) (*Server, []string) {
	t.Helper()
	w := datagen.TMDB(datagen.TMDBConfig{Movies: 50, Dim: 16, Seed: 1})
	cfg := retro.Defaults()
	cfg.ANNThreshold = 1
	sess, err := retro.NewSession(w.DB, w.Embedding, cfg)
	if err != nil {
		t.Fatal(err)
	}
	titles, err := w.DB.QueryText(`SELECT title FROM movies`)
	if err != nil || len(titles) == 0 {
		t.Fatalf("no seed titles (err=%v)", err)
	}
	return New(sess, Config{}), titles
}

func get(t *testing.T, h http.Handler, url string) (*httptest.ResponseRecorder, map[string]any) {
	t.Helper()
	return do(t, h, httptest.NewRequest(http.MethodGet, url, nil))
}

func post(t *testing.T, h http.Handler, url, body string) (*httptest.ResponseRecorder, map[string]any) {
	t.Helper()
	return do(t, h, httptest.NewRequest(http.MethodPost, url, strings.NewReader(body)))
}

func do(t *testing.T, h http.Handler, req *http.Request) (*httptest.ResponseRecorder, map[string]any) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var payload map[string]any
	if rec.Body.Len() > 0 {
		if err := json.Unmarshal(rec.Body.Bytes(), &payload); err != nil {
			t.Fatalf("%s %s: non-JSON response %q", req.Method, req.URL, rec.Body.String())
		}
	}
	return rec, payload
}

func TestHealthz(t *testing.T) {
	s, _ := newTestServer(t)
	rec, body := get(t, s.Handler(), "/healthz")
	if rec.Code != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("healthz: code %d body %v", rec.Code, body)
	}
}

func TestVectorEndpoint(t *testing.T) {
	s, titles := newTestServer(t)
	h := s.Handler()
	rec, body := get(t, h, "/v1/vector?table=movies&column=title&text="+queryEscape(titles[0]))
	if rec.Code != http.StatusOK {
		t.Fatalf("vector: code %d body %v", rec.Code, body)
	}
	vec, ok := body["vector"].([]any)
	if !ok || len(vec) != 16 {
		t.Fatalf("vector: want 16 floats, got %v", body["vector"])
	}

	rec, body = get(t, h, "/v1/vector?table=movies&column=title&text=definitely+not+a+movie")
	if rec.Code != http.StatusNotFound || errCode(body) != "not_found" {
		t.Fatalf("unknown value: code %d body %v, want 404 with not_found error", rec.Code, body)
	}
	rec, _ = get(t, h, "/v1/vector?table=movies")
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("missing params: code %d, want 400", rec.Code)
	}
}

func TestNeighborsEndpointAndCache(t *testing.T) {
	s, titles := newTestServer(t)
	h := s.Handler()
	url := "/v1/neighbors?table=movies&column=title&text=" + queryEscape(titles[0]) + "&k=3"

	rec, body := get(t, h, url)
	if rec.Code != http.StatusOK {
		t.Fatalf("neighbors: code %d body %v", rec.Code, body)
	}
	nbs, ok := body["neighbors"].([]any)
	if !ok || len(nbs) == 0 || len(nbs) > 3 {
		t.Fatalf("neighbors: bad result %v", body["neighbors"])
	}
	first := nbs[0].(map[string]any)
	if first["text"] == "" || first["column"] == "" {
		t.Fatalf("neighbors: malformed match %v", first)
	}
	if body["cached"] != false {
		t.Fatal("first query should be uncached")
	}

	// The identical query must come from the LRU cache.
	rec, body = get(t, h, url)
	if rec.Code != http.StatusOK || body["cached"] != true {
		t.Fatalf("second query not cached: code %d body %v", rec.Code, body)
	}

	// Error paths.
	if rec, _ := get(t, h, "/v1/neighbors?table=movies&column=title&text=nope"); rec.Code != http.StatusNotFound {
		t.Fatalf("unknown value: code %d, want 404", rec.Code)
	}
	if rec, _ := get(t, h, url[:len(url)-1]+"bogus"); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad k: code %d, want 400", rec.Code)
	}
	if rec, _ := post(t, h, "/v1/neighbors", "{}"); rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST neighbors: code %d, want 405", rec.Code)
	}
}

func TestAnalogyEndpoint(t *testing.T) {
	s, titles := newTestServer(t)
	h := s.Handler()
	ref := func(text string) map[string]string {
		return map[string]string{"table": "movies", "column": "title", "text": text}
	}
	okBody, _ := json.Marshal(map[string]any{
		"a": ref(titles[0]), "b": ref(titles[1]), "c": ref(titles[2]), "k": 4,
	})
	rec, body := post(t, h, "/v1/analogy", string(okBody))
	if rec.Code != http.StatusOK {
		t.Fatalf("analogy: code %d body %v", rec.Code, body)
	}
	if ms, ok := body["matches"].([]any); !ok || len(ms) == 0 {
		t.Fatalf("analogy: no matches in %v", body)
	}

	missing, _ := json.Marshal(map[string]any{
		"a": ref(titles[0]), "b": ref(titles[1]), "c": ref("no such film"),
	})
	if rec, _ := post(t, h, "/v1/analogy", string(missing)); rec.Code != http.StatusNotFound {
		t.Fatalf("unknown analogy term: code %d, want 404", rec.Code)
	}
	if rec, _ := post(t, h, "/v1/analogy", "{not json"); rec.Code != http.StatusBadRequest {
		t.Fatalf("malformed JSON: code %d, want 400", rec.Code)
	}
}

func TestInsertEndpoint(t *testing.T) {
	s, titles := newTestServer(t)
	h := s.Handler()

	// Warm the cache so the insert's purge is observable.
	url := "/v1/neighbors?table=movies&column=title&text=" + queryEscape(titles[0]) + "&k=3"
	get(t, h, url)
	get(t, h, url)

	cols := columnCount(t, s, "movies")
	row := makeRow(cols, map[int]any{0: 99001, 1: "the served premiere", 2: "english"})
	reqBody, _ := json.Marshal(map[string]any{"table": "movies", "values": row})
	rec, body := post(t, h, "/v1/insert", string(reqBody))
	if rec.Code != http.StatusOK || body["inserted"] != true {
		t.Fatalf("insert: code %d body %v", rec.Code, body)
	}

	// The inserted value must be immediately queryable.
	rec, body = get(t, h, "/v1/neighbors?table=movies&column=title&text=the+served+premiere&k=3")
	if rec.Code != http.StatusOK {
		t.Fatalf("post-insert neighbors: code %d body %v", rec.Code, body)
	}
	// And the cache was invalidated: the warmed query recomputes.
	if _, body := get(t, h, url); body["cached"] != false {
		t.Fatal("cache not purged by insert")
	}

	// Error paths.
	if rec, _ := post(t, h, "/v1/insert", "{oops"); rec.Code != http.StatusBadRequest {
		t.Fatalf("malformed JSON: code %d, want 400", rec.Code)
	}
	if rec, _ := post(t, h, "/v1/insert", `{"table":"nope","values":[]}`); rec.Code != http.StatusNotFound {
		t.Fatalf("unknown table: code %d, want 404", rec.Code)
	}
	if rec, _ := post(t, h, "/v1/insert", `{"table":"movies","values":[1]}`); rec.Code != http.StatusBadRequest {
		t.Fatalf("arity mismatch: code %d, want 400", rec.Code)
	}
	dup, _ := json.Marshal(map[string]any{"table": "movies", "values": row})
	if rec, _ := post(t, h, "/v1/insert", string(dup)); rec.Code != http.StatusBadRequest {
		t.Fatalf("duplicate pk: code %d, want 400", rec.Code)
	}
}

func TestStatsEndpoint(t *testing.T) {
	s, titles := newTestServer(t)
	h := s.Handler()
	get(t, h, "/v1/neighbors?table=movies&column=title&text="+queryEscape(titles[0]))
	get(t, h, "/v1/vector?table=movies&column=title&text=missing+thing") // one error

	rec, body := get(t, h, "/v1/stats")
	if rec.Code != http.StatusOK {
		t.Fatalf("stats: code %d", rec.Code)
	}
	ann, ok := body["ann"].(map[string]any)
	if !ok || ann["enabled"] != true || ann["built"] != true {
		t.Fatalf("stats.ann: %v", body["ann"])
	}
	eps, ok := body["endpoints"].(map[string]any)
	if !ok {
		t.Fatalf("stats.endpoints: %v", body["endpoints"])
	}
	vecStats, ok := eps["/v1/vector"].(map[string]any)
	if !ok || vecStats["count"].(float64) < 1 || vecStats["errors"].(float64) < 1 {
		t.Fatalf("stats for /v1/vector: %v", eps["/v1/vector"])
	}
	if _, ok := body["cache"].(map[string]any); !ok {
		t.Fatalf("stats.cache: %v", body["cache"])
	}
}

// TestConcurrentReadsDuringInsert drives many readers against the server
// while rows are being inserted; run with -race this doubles as the data
// race check for the RWMutex + lazy-ANN-build + LRU paths.
func TestConcurrentReadsDuringInsert(t *testing.T) {
	s, titles := newTestServer(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const readers, reads = 8, 30
	var wg sync.WaitGroup
	errs := make(chan error, 2*readers*reads+10)
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < reads; i++ {
				title := titles[(g*reads+i)%len(titles)]
				// Alternate the endpoints so stats (which introspects the
				// live ANN index) races against the inserts too.
				url := ts.URL + "/v1/neighbors?table=movies&column=title&text=" + queryEscape(title) + "&k=3"
				if i%3 == 2 {
					url = ts.URL + "/v1/stats"
				}
				resp, err := http.Get(url)
				if err != nil {
					errs <- err
					return
				}
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
				}
				resp.Body.Close()
			}
		}(g)
	}

	cols := columnCount(t, s, "movies")
	for i := 0; i < 5; i++ {
		row := makeRow(cols, map[int]any{0: 88000 + i, 1: fmt.Sprintf("concurrent premiere %d", i), 2: "english"})
		reqBody, _ := json.Marshal(map[string]any{"table": "movies", "values": row})
		resp, err := http.Post(ts.URL+"/v1/insert", "application/json", bytes.NewReader(reqBody))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			errs <- fmt.Errorf("insert %d: status %d", i, resp.StatusCode)
		}
		resp.Body.Close()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// newSnapshotServer round-trips newTestServer's session through a
// snapshot and boots a second server from the loaded copy, the way
// `retro-serve -snapshot` does.
func newSnapshotServer(t *testing.T) (trained *Server, resumed *Server, titles []string) {
	t.Helper()
	trained, titles = newTestServer(t)
	trained.session().Model().Store().WarmANN()
	var buf bytes.Buffer
	if err := trained.session().Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	// A fresh, deterministic re-generation stands in for the new process.
	w := datagen.TMDB(datagen.TMDBConfig{Movies: 50, Dim: 16, Seed: 1})
	sess, err := retro.ResumeSession(w.DB, w.Embedding, &buf)
	if err != nil {
		t.Fatal(err)
	}
	info := sess.Model().SnapshotInfo()
	resumed = New(sess, Config{Origin: &Origin{
		Source:        "snapshot",
		Path:          "test.snap",
		Created:       info.Created,
		FormatVersion: info.Version,
		Fingerprint:   info.Fingerprint,
	}})
	return trained, resumed, titles
}

// TestSnapshotBootedServer drives a server resumed from a snapshot
// through the full endpoint surface and requires it to behave exactly
// like the trained server it was cloned from: same neighbour payloads
// (k-clamp included), a working LRU cache, and inserts that
// tombstone/re-insert in the deserialised HNSW graph.
func TestSnapshotBootedServer(t *testing.T) {
	trained, resumed, titles := newSnapshotServer(t)
	ht, hs := trained.Handler(), resumed.Handler()

	// Neighbour parity for regular and clamped k (k=100000 must clamp to
	// the vocabulary size on both, not allocate against the raw k).
	for _, k := range []string{"3", "100000"} {
		url := "/v1/neighbors?table=movies&column=title&text=" + queryEscape(titles[0]) + "&k=" + k
		recT, bodyT := get(t, ht, url)
		recS, bodyS := get(t, hs, url)
		if recT.Code != http.StatusOK || recS.Code != http.StatusOK {
			t.Fatalf("k=%s: codes %d vs %d", k, recT.Code, recS.Code)
		}
		if bodyT["k"] != bodyS["k"] {
			t.Fatalf("k=%s: clamped to %v on trained, %v on snapshot", k, bodyT["k"], bodyS["k"])
		}
		nt := bodyT["neighbors"].([]any)
		ns := bodyS["neighbors"].([]any)
		if len(nt) != len(ns) {
			t.Fatalf("k=%s: %d vs %d neighbours", k, len(nt), len(ns))
		}
		for i := range nt {
			mt, ms := nt[i].(map[string]any), ns[i].(map[string]any)
			if mt["column"] != ms["column"] || mt["text"] != ms["text"] {
				t.Fatalf("k=%s rank %d: %v vs %v", k, i, ms, mt)
			}
		}
	}

	// The LRU cache behaves identically after a snapshot boot.
	url := "/v1/neighbors?table=movies&column=title&text=" + queryEscape(titles[1]) + "&k=3"
	if _, body := get(t, hs, url); body["cached"] != false {
		t.Fatal("first query cached")
	}
	if _, body := get(t, hs, url); body["cached"] != true {
		t.Fatal("second query not cached")
	}

	// Vector parity at float32 precision.
	vurl := "/v1/vector?table=movies&column=title&text=" + queryEscape(titles[0])
	_, bodyT := get(t, ht, vurl)
	_, bodyS := get(t, hs, vurl)
	vt := bodyT["vector"].([]any)
	vs := bodyS["vector"].([]any)
	if len(vt) != len(vs) {
		t.Fatalf("vector dims %d vs %d", len(vs), len(vt))
	}
	for j := range vt {
		if float64(float32(vt[j].(float64))) != vs[j].(float64) {
			t.Fatalf("vector dim %d: %v vs %v", j, vs[j], vt[j])
		}
	}

	// Analogy works against the loaded store.
	ref := func(text string) map[string]string {
		return map[string]string{"table": "movies", "column": "title", "text": text}
	}
	okBody, _ := json.Marshal(map[string]any{"a": ref(titles[0]), "b": ref(titles[1]), "c": ref(titles[2]), "k": 4})
	if rec, body := post(t, hs, "/v1/analogy", string(okBody)); rec.Code != http.StatusOK {
		t.Fatalf("analogy on snapshot server: code %d body %v", rec.Code, body)
	}

	// Insert after load: the deserialised HNSW graph is maintained in
	// place (tombstone + re-insert), and the new value is immediately
	// queryable. Exercise an overwrite too by inserting a row whose title
	// reuses an existing one — the shared value vector is re-solved,
	// which tombstones and re-inserts its node in the loaded graph.
	if resumed.session().Model().Store().ANNIndex() == nil {
		t.Fatal("resumed server has no adopted index")
	}
	cols := columnCount(t, resumed, "movies")
	row := makeRow(cols, map[int]any{0: 97001, 1: "the snapshot premiere", 2: "english"})
	reqBody, _ := json.Marshal(map[string]any{"table": "movies", "values": row})
	if rec, body := post(t, hs, "/v1/insert", string(reqBody)); rec.Code != http.StatusOK {
		t.Fatalf("insert into snapshot server: code %d body %v", rec.Code, body)
	}
	dupTitle := makeRow(cols, map[int]any{0: 97002, 1: titles[0], 2: "english"})
	reqBody, _ = json.Marshal(map[string]any{"table": "movies", "values": dupTitle})
	if rec, body := post(t, hs, "/v1/insert", string(reqBody)); rec.Code != http.StatusOK {
		t.Fatalf("dup-title insert into snapshot server: code %d body %v", rec.Code, body)
	}
	if rec, body := get(t, hs, "/v1/neighbors?table=movies&column=title&text=the+snapshot+premiere&k=3"); rec.Code != http.StatusOK {
		t.Fatalf("post-insert neighbours: code %d body %v", rec.Code, body)
	} else if len(body["neighbors"].([]any)) == 0 {
		t.Fatal("post-insert neighbours empty")
	}
	if resumed.session().Model().Store().ANNIndex() == nil {
		t.Fatal("insert dropped the adopted index instead of maintaining it")
	}
}

// TestStatsOrigin checks the provenance block of /v1/stats for both boot
// modes.
func TestStatsOrigin(t *testing.T) {
	trained, resumed, _ := newSnapshotServer(t)

	_, body := get(t, trained.Handler(), "/v1/stats")
	origin, ok := body["origin"].(map[string]any)
	if !ok || origin["source"] != "trained" {
		t.Fatalf("trained origin: %v", body["origin"])
	}

	_, body = get(t, resumed.Handler(), "/v1/stats")
	origin, ok = body["origin"].(map[string]any)
	if !ok || origin["source"] != "snapshot" {
		t.Fatalf("snapshot origin: %v", body["origin"])
	}
	if origin["snapshot_path"] != "test.snap" || origin["format_version"].(float64) < 1 {
		t.Fatalf("snapshot origin fields: %v", origin)
	}
	if age, ok := origin["snapshot_age_seconds"].(float64); !ok || age < 0 {
		t.Fatalf("snapshot_age_seconds: %v", origin["snapshot_age_seconds"])
	}
	if _, ok := origin["fingerprint"].(string); !ok {
		t.Fatalf("fingerprint: %v", origin["fingerprint"])
	}
}

// --- helpers ---------------------------------------------------------------

func queryEscape(s string) string {
	return strings.ReplaceAll(s, " ", "+")
}

func columnCount(t *testing.T, s *Server, table string) []string {
	t.Helper()
	tbl, ok := s.session().DB().Table(table)
	if !ok {
		t.Fatalf("no table %q", table)
	}
	names := make([]string, len(tbl.Columns))
	for i, c := range tbl.Columns {
		names[i] = c.Name
	}
	return names
}

// makeRow builds a full-width row with nulls everywhere except the given
// positional overrides (the TMDB movies schema's leading columns are id,
// title, overview — all nullable apart from the integer primary key).
func makeRow(cols []string, set map[int]any) []any {
	row := make([]any, len(cols))
	for i, v := range set {
		row[i] = v
	}
	return row
}

// newQuantTestServer is newTestServer with SQ8 candidate generation on.
func newQuantTestServer(t *testing.T) (*Server, []string) {
	t.Helper()
	w := datagen.TMDB(datagen.TMDBConfig{Movies: 50, Dim: 16, Seed: 1})
	cfg := retro.Defaults()
	cfg.ANNThreshold = 1
	cfg.Quantization = retro.QuantSQ8
	cfg.RerankFactor = 5
	sess, err := retro.NewSession(w.DB, w.Embedding, cfg)
	if err != nil {
		t.Fatal(err)
	}
	titles, err := w.DB.QueryText(`SELECT title FROM movies`)
	if err != nil || len(titles) == 0 {
		t.Fatalf("no seed titles (err=%v)", err)
	}
	return New(sess, Config{}), titles
}

// TestQuantizedServing: a server configured for SQ8 serves neighbours
// from the quantized index, reports the mode and re-rank depth in
// /v1/stats, and keeps both across an insert (incremental code
// maintenance + view republication).
func TestQuantizedServing(t *testing.T) {
	s, titles := newQuantTestServer(t)
	h := s.Handler()

	rec, body := get(t, h, "/v1/neighbors?table=movies&column=title&text="+queryEscape(titles[0])+"&k=3")
	if rec.Code != http.StatusOK {
		t.Fatalf("quantized neighbors: code %d body %v", rec.Code, body)
	}
	if got := body["neighbors"].([]any); len(got) != 3 {
		t.Fatalf("quantized neighbors: %d results", len(got))
	}

	checkStats := func(stage string) {
		_, stats := get(t, h, "/v1/stats")
		ann, ok := stats["ann"].(map[string]any)
		if !ok {
			t.Fatalf("%s: stats.ann missing: %v", stage, stats)
		}
		if ann["quantization"] != "sq8" {
			t.Fatalf("%s: stats.ann.quantization = %v, want sq8", stage, ann["quantization"])
		}
		if ann["rerank"].(float64) != 5 {
			t.Fatalf("%s: stats.ann.rerank = %v, want 5", stage, ann["rerank"])
		}
		if ann["quantized"] != true {
			t.Fatalf("%s: stats.ann.quantized = %v, want true", stage, ann["quantized"])
		}
	}
	checkStats("boot")

	// Recombine in-vocabulary words so the new value tokenizes to a
	// non-zero vector (an OOV title would embed to zero and legitimately
	// have no neighbours).
	freshTitle := strings.Fields(titles[0])[0] + " " + strings.Fields(titles[1])[0] + " reprise"
	row, _ := json.Marshal(map[string]any{"table": "movies",
		"values": []any{9001, freshTitle, nil, nil, nil, nil, nil, nil}})
	if rec, body := post(t, h, "/v1/insert", string(row)); rec.Code != http.StatusOK {
		t.Fatalf("insert on quantized server: code %d body %v", rec.Code, body)
	}
	rec, body = get(t, h, "/v1/neighbors?table=movies&column=title&text="+queryEscape(freshTitle)+"&k=3")
	if rec.Code != http.StatusOK || len(body["neighbors"].([]any)) != 3 {
		t.Fatalf("inserted value not servable on quantized index: code %d body %v", rec.Code, body)
	}
	checkStats("after insert")
}
