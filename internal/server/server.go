// Package server exposes a trained retro.Session over HTTP/JSON: the
// embedding serving subsystem. The read path is lock-free: every query
// loads an atomically published, immutable serving view (a frozen
// embedding store + HNSW index, see view.go) and runs against it without
// taking any lock; results are cached in a sharded CLOCK cache whose hit
// path neither locks exclusively nor allocates. Inserts serialise on a
// write mutex, mutate the live session under the store's copy-on-write
// discipline (published views are never perturbed) and install the
// successor view with a single pointer swap. Only the standard library
// is used.
//
// Endpoints:
//
//	GET  /healthz                 liveness
//	GET  /v1/stats                counters, cache, view and ANN introspection
//	GET  /v1/vector?table=&column=&text=
//	GET  /v1/neighbors?table=&column=&text=&k=
//	POST /v1/neighbors/batch      {"queries":[{"table","column","text","k"},...],"default_k":n}
//	POST /v1/analogy              {"a":{...},"b":{...},"c":{...},"k":n}
//	POST /v1/insert               {"table":"...","values":[...]}     single row
//	POST /v1/insert               {"table":"...","rows":[[...],...]} batch
//
// The API is batch-first: /v1/neighbors/batch answers Q queries with a
// single traversal of the index (see internal/ann TopKMany), and the
// single-query GET is a thin wrapper over the same core (see batch.go).
// Likewise a row batch commits all rows and performs ONE incremental
// repair, one index warm-up and one view publication — N single-row
// inserts pay each of those N times. Readers are never blocked by a
// write: queries that raced the insert finish on the previous view, and
// every query observes exactly one view (pre- or post-insert state,
// never a mix).
//
// Every error — top-level or per-item inside a batch — carries one
// envelope: {"error":{"code":"...","message":"..."}} with a stable
// machine-readable code (see errInvalidArgument and friends) and a
// human-readable message.
package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	retro "github.com/retrodb/retro"
	"github.com/retrodb/retro/internal/ann"
	"github.com/retrodb/retro/internal/embed"
	"github.com/retrodb/retro/internal/obs"
	"github.com/retrodb/retro/internal/repl"
)

// DefaultMaxBodyBytes bounds request bodies on the write and batch-query
// endpoints unless Config.MaxBodyBytes overrides it.
const DefaultMaxBodyBytes = 8 << 20

// Config tunes the server.
type Config struct {
	// CacheSize is the query-cache capacity in entries, spread across
	// GOMAXPROCS-aligned shards (default 1024, negative disables).
	CacheSize int
	// Origin records where the session came from (trained in-process vs
	// resumed from a snapshot); it is surfaced in /v1/stats. Nil means
	// trained.
	Origin *Origin
	// Logger receives the request log and write-path events (nil =
	// slog.Default()).
	Logger *slog.Logger
	// SlowQueryThreshold flags queries at or above this duration into
	// the slow-query log (0 = obs.DefaultSlowThreshold).
	SlowQueryThreshold time.Duration
	// SlowLogSize is the slow-query ring capacity (default 128).
	SlowLogSize int
	// Version is stamped into the retro_build_info metric (default
	// "dev").
	Version string
	// Engine, when set, is the storage engine backing the session: the
	// server surfaces its WAL and checkpoint counters in /v1/stats and
	// /metrics, maps WAL append failures onto their own error code,
	// exposes Checkpoint for the operator loop, and mounts the
	// /repl/v1/* replication API so followers can sync from this
	// process. The session must be the engine's own (Engine.Session()).
	Engine *retro.StorageEngine
	// ReadOnly rejects /v1/insert with the structured read_only error.
	// Set on read replicas, whose only writer is the replication stream
	// (which bypasses the HTTP surface via ApplyReplicated).
	ReadOnly bool
	// Replica, when set, reports the replication state of this follower:
	// /readyz gates on its lag policy and /v1/stats surfaces it. Nil on
	// a primary.
	Replica func() repl.Status
	// MaxBodyBytes caps request bodies on /v1/insert and
	// /v1/neighbors/batch; oversized requests get the structured
	// request_too_large error. 0 selects DefaultMaxBodyBytes, negative
	// disables the limit.
	MaxBodyBytes int64
}

// Origin describes the provenance of the served session.
type Origin struct {
	// Source is "trained" or "snapshot".
	Source string
	// Path is the snapshot file the session was resumed from.
	Path string
	// Created is when that snapshot was written (zero when trained).
	Created time.Time
	// FormatVersion is the snapshot format version.
	FormatVersion uint32
	// Fingerprint hashes the training configuration of the snapshot.
	Fingerprint uint64
}

// Server serves one live retro.Session. Snapshot-resumed and in-process
// trained sessions are served identically. Queries run against the
// published servingView; the session itself is touched only by writers
// holding writeMu (and by /v1/stats through the session's atomic
// staleness flag, which needs no lock).
type Server struct {
	// view is the atomically published immutable read state. Replaces
	// the server-wide RWMutex the read path used to funnel through.
	view atomic.Pointer[servingView]

	// writeMu serialises state changes: inserts, view publication and
	// snapshot writes. Readers never take it.
	writeMu sync.Mutex

	// sessP/engineP are atomic so a follower re-sync can swap in a fresh
	// engine (ReplaceEngine) while scrape-time metric closures and stats
	// renders keep reading whichever pair is current without a lock.
	// Writers swap both under writeMu; everything else goes through
	// session() / Engine().
	sessP   atomic.Pointer[retro.Session]
	engineP atomic.Pointer[retro.StorageEngine]

	cache   *shardedCache
	metrics metricsTable
	tel     *telemetry
	started time.Time
	origin  *Origin

	readOnly     bool
	maxBodyBytes int64
	replica      func() repl.Status
	replPrimary  *repl.Primary

	// View lifecycle accounting (see view.go). retired is guarded by
	// writeMu; the counters are atomics so /v1/stats reads them without
	// blocking behind a write in progress.
	retired        []*servingView
	swaps          atomic.Int64
	drained        atomic.Int64
	retiredWaiting atomic.Int64
}

// New wraps an already-trained (or snapshot-resumed) session and
// publishes its first serving view (warming the ANN index if the
// vocabulary calls for one, so no query ever pays the build).
func New(sess *retro.Session, cfg Config) *Server {
	size := cfg.CacheSize
	if size == 0 {
		size = 1024
	}
	s := &Server{
		started: time.Now(), origin: cfg.Origin,
		readOnly: cfg.ReadOnly, replica: cfg.Replica, maxBodyBytes: cfg.MaxBodyBytes,
	}
	s.sessP.Store(sess)
	if cfg.Engine != nil {
		s.engineP.Store(cfg.Engine)
	}
	if s.maxBodyBytes == 0 {
		s.maxBodyBytes = DefaultMaxBodyBytes
	}
	if s.origin == nil {
		s.origin = &Origin{Source: "trained"}
	}
	if size > 0 {
		s.cache = newShardedCache(size)
	}
	// Telemetry registers before the first publish so every instrument
	// (including the publish-duration histogram) exists when used.
	s.tel = newTelemetry(s, cfg)
	s.metrics.reg = s.tel.reg
	if cfg.Engine != nil {
		// Any storage-backed server can be replicated from; the getter
		// indirection keeps the handler streaming from the live engine
		// even after a follower re-sync swaps it.
		s.replPrimary = repl.NewPrimary(s.Engine, s.tel.log)
	}
	s.writeMu.Lock()
	s.publishLocked()
	s.writeMu.Unlock()
	return s
}

// session returns the currently served session (swapped on follower
// re-sync; see ReplaceEngine).
func (s *Server) session() *retro.Session { return s.sessP.Load() }

// Engine returns the storage engine backing the session, or nil when
// the server runs without a data directory.
func (s *Server) Engine() *retro.StorageEngine { return s.engineP.Load() }

// Handler returns the route table, each endpoint wrapped with latency and
// hit accounting and the whole mux wrapped with panic recovery. Build
// handlers before serving traffic; construction registers the
// per-endpoint counters that the request path then reads without any
// lock.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.instrument("/healthz", "GET", s.handleHealthz))
	mux.HandleFunc("/readyz", s.instrument("/readyz", "GET", s.handleReadyz))
	mux.HandleFunc("/v1/stats", s.instrument("/v1/stats", "GET", s.handleStats))
	mux.HandleFunc("/v1/vector", s.instrument("/v1/vector", "GET", s.handleVector))
	mux.HandleFunc("/v1/neighbors", s.instrument("/v1/neighbors", "GET", s.handleNeighbors))
	mux.HandleFunc("/v1/neighbors/batch", s.instrument("/v1/neighbors/batch", "POST", s.handleNeighborsBatch))
	mux.HandleFunc("/v1/analogy", s.instrument("/v1/analogy", "POST", s.handleAnalogy))
	mux.HandleFunc("/v1/insert", s.instrument("/v1/insert", "POST", s.handleInsert))
	if s.replPrimary != nil {
		mux.Handle("/repl/v1/", s.replPrimary)
	}
	return s.recoverPanics(mux)
}

// recoverPanics converts a panicking handler into the structured
// `internal` error envelope (best effort — headers may already be out)
// and a retro_http_panics_total tick, instead of net/http killing the
// connection and, for panics outside a handler goroutine, the process.
// http.ErrAbortHandler is re-raised: it is the sanctioned way to abort a
// response and must keep its net/http semantics.
func (s *Server) recoverPanics(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			rec := recover()
			if rec == nil {
				return
			}
			if rec == http.ErrAbortHandler {
				panic(rec)
			}
			s.tel.panics.Inc()
			s.tel.log.Error("handler panic",
				"path", r.URL.Path, "method", r.Method, "panic", fmt.Sprint(rec))
			writeError(w, http.StatusInternalServerError, errInternal, "internal server error")
		}()
		h.ServeHTTP(w, r)
	})
}

// --- metrics ---------------------------------------------------------------

// endpointStats is one endpoint's counters. All fields are atomics; the
// request path never takes a lock to account a request.
type endpointStats struct {
	name    string
	Count   atomic.Int64
	Errors  atomic.Int64
	TotalNs atomic.Int64
	// dur is the endpoint's Prometheus latency histogram, registered
	// alongside the counters; nil only in tests that bypass New.
	dur *obs.Histogram
}

// metricsTable is the pre-registered endpoint table. Registration
// happens once, at Handler() construction; after that the table is an
// immutable slice behind an atomic pointer, so both the per-request
// accounting (which holds its *endpointStats directly) and the stats
// endpoint's iteration are lock-free. This replaces the old
// mutex-guarded map that every stats render serialised on.
type metricsTable struct {
	mu    sync.Mutex // guards registration only
	table atomic.Pointer[[]*endpointStats]
	// reg, when set, mirrors each endpoint's counters into Prometheus
	// series at registration time (scrape reads the same atomics the
	// request path writes — no second accounting).
	reg *obs.Registry
}

func (m *metricsTable) get(endpoint string) *endpointStats {
	if p := m.table.Load(); p != nil {
		for _, st := range *p {
			if st.name == endpoint {
				return st
			}
		}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	var cur []*endpointStats
	if p := m.table.Load(); p != nil {
		cur = *p
		for _, st := range cur {
			if st.name == endpoint {
				return st
			}
		}
	}
	st := &endpointStats{name: endpoint}
	if m.reg != nil {
		labels := `endpoint="` + endpoint + `"`
		st.dur = m.reg.Histogram("retro_http_request_duration_seconds",
			"HTTP request latency by endpoint, in seconds.", labels, obs.DurationBuckets())
		m.reg.CounterFunc("retro_http_requests_total",
			"HTTP requests by endpoint.", labels,
			func() float64 { return float64(st.Count.Load()) })
		m.reg.CounterFunc("retro_http_request_errors_total",
			"HTTP requests that returned a 4xx/5xx status, by endpoint.", labels,
			func() float64 { return float64(st.Errors.Load()) })
	}
	next := make([]*endpointStats, len(cur)+1)
	copy(next, cur)
	next[len(cur)] = st
	m.table.Store(&next)
	return st
}

func (m *metricsTable) snapshot() []*endpointStats {
	if p := m.table.Load(); p != nil {
		return *p
	}
	return nil
}

// statusWriter records the response code for error accounting.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (s *Server) instrument(endpoint, method string, h http.HandlerFunc) http.HandlerFunc {
	st := s.metrics.get(endpoint)
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != method {
			w.Header().Set("Allow", method)
			writeError(w, http.StatusMethodNotAllowed, errMethodNotAllowed,
				fmt.Sprintf("%s requires %s", endpoint, method))
			st.Count.Add(1)
			st.Errors.Add(1)
			return
		}
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		h(sw, r)
		elapsed := time.Since(start)
		st.Count.Add(1)
		st.TotalNs.Add(elapsed.Nanoseconds())
		if st.dur != nil {
			st.dur.ObserveDuration(elapsed)
		}
		if sw.status >= 400 {
			st.Errors.Add(1)
		}
		s.logRequest(r, endpoint, sw.status, elapsed)
	}
}

// logRequest is the structured request log: server errors at Warn so
// they surface under the default level, everything else at Debug (the
// Enabled check keeps production request logging free).
func (s *Server) logRequest(r *http.Request, endpoint string, status int, elapsed time.Duration) {
	if s.tel == nil {
		return
	}
	lg := s.tel.log
	level := slog.LevelDebug
	if status >= 500 {
		level = slog.LevelWarn
	}
	if !lg.Enabled(r.Context(), level) {
		return
	}
	lg.LogAttrs(r.Context(), level, "request",
		slog.String("endpoint", endpoint),
		slog.String("method", r.Method),
		slog.String("query", r.URL.RawQuery),
		slog.Int("status", status),
		slog.Duration("elapsed", elapsed),
		slog.String("remote", r.RemoteAddr),
	)
}

// --- JSON plumbing ---------------------------------------------------------

// Machine-readable error codes. Every error response — top-level or
// per-item in a batch — carries exactly one of these; clients branch on
// the code, the message is for humans. The set is append-only: codes
// are part of the API surface and never renamed.
const (
	errInvalidArgument  = "invalid_argument"   // missing/ill-typed parameter
	errMalformedJSON    = "malformed_json"     // request body failed to parse
	errNotFound         = "not_found"          // value, table or resource absent
	errMethodNotAllowed = "method_not_allowed" // wrong HTTP method for the route
	errBatchTooLarge    = "batch_too_large"    // batch exceeds maxBatchQueries
	errPartialCommit    = "partial_commit"     // row batch failed mid-way; see "committed"
	errRepairFailed     = "repair_failed"      // rows committed, embedding repair failed
	errWALFailed        = "wal_failed"         // rows committed in memory, WAL append failed
	errReadOnly         = "read_only"          // write on a read replica; send it to the primary
	errRequestTooLarge  = "request_too_large"  // body exceeds the -max-body-bytes cap
	errInternal         = "internal"           // handler panic; nothing was committed
)

// apiError is the wire form of one error: a stable code and a
// human-readable message.
type apiError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// errorEnvelope is the uniform error response body:
// {"error":{"code":"...","message":"..."}}.
type errorEnvelope struct {
	Error apiError `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, errorEnvelope{Error: apiError{Code: code, Message: msg}})
}

// limitBody caps the request body (write and batch-query endpoints);
// decode failures past the cap surface as *http.MaxBytesError, which
// writeDecodeError maps onto request_too_large.
func (s *Server) limitBody(w http.ResponseWriter, r *http.Request) {
	if s.maxBodyBytes > 0 {
		r.Body = http.MaxBytesReader(w, r.Body, s.maxBodyBytes)
	}
}

// writeDecodeError maps a JSON decode failure onto the right envelope:
// request_too_large when the body limiter cut the read off, otherwise
// malformed_json.
func writeDecodeError(w http.ResponseWriter, err error) {
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		writeError(w, http.StatusRequestEntityTooLarge, errRequestTooLarge,
			fmt.Sprintf("request body exceeds the %d-byte limit", tooLarge.Limit))
		return
	}
	writeError(w, http.StatusBadRequest, errMalformedJSON, "malformed JSON: "+err.Error())
}

// encodeBody renders v the same way writeJSON does (trailing newline
// included) into a fresh byte slice.
func encodeBody(v any) []byte {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
	return buf.Bytes()
}

// valueRef addresses one text value of the database.
type valueRef struct {
	Table  string `json:"table"`
	Column string `json:"column"`
	Text   string `json:"text"`
}

func refFromQuery(r *http.Request) (valueRef, error) {
	q := r.URL.Query()
	ref := valueRef{Table: q.Get("table"), Column: q.Get("column"), Text: q.Get("text")}
	if ref.Table == "" || ref.Column == "" || ref.Text == "" {
		return ref, fmt.Errorf("table, column and text query parameters are required")
	}
	return ref, nil
}

// storeKey is the embedding-store key for a (table, column, text) value:
// category name and raw text, exactly as extraction registers them. The
// read path resolves values directly against the frozen store with this
// key — it never touches the session.
func storeKey(table, column, text string) string {
	return table + "." + column + "\x00" + text
}

// match is one neighbour in a response. Key is the raw store key; the
// split fields are friendlier for clients.
type match struct {
	Column string  `json:"column"` // "table.column"
	Text   string  `json:"text"`
	Score  float64 `json:"score"`
}

func toMatches(ms []retro.Match) []match {
	out := make([]match, len(ms))
	for i, m := range ms {
		col, text, _ := strings.Cut(m.Word, "\x00")
		out[i] = match{Column: col, Text: text, Score: m.Score}
	}
	return out
}

// neighborsResponse is the /v1/neighbors payload. A struct (not a map)
// so the encoding is deterministic and the cached body for a key is a
// stable byte string. Cached MUST stay the last field: the cache stores
// the hit variant by patching the encoded suffix (see cachedVariant)
// instead of encoding the payload a second time.
type neighborsResponse struct {
	Query     valueRef `json:"query"`
	K         int      `json:"k"`
	Neighbors []match  `json:"neighbors"`
	Cached    bool     `json:"cached"`
}

const (
	missSuffix = `"cached":false}` + "\n"
	hitSuffix  = `"cached":true}` + "\n"
)

// cachedVariant derives the cached:true body from an encoded
// cached:false response by swapping the fixed trailing token, so a miss
// encodes the (potentially large) neighbour list exactly once. Returns
// nil if the body does not end as expected (never the case for
// neighborsResponse; checked so a future field reorder fails safe to
// "don't cache" instead of serving a corrupt payload).
func cachedVariant(body []byte) []byte {
	if !bytes.HasSuffix(body, []byte(missSuffix)) {
		return nil
	}
	head := len(body) - len(missSuffix)
	out := make([]byte, 0, head+len(hitSuffix))
	out = append(out, body[:head]...)
	return append(out, hitSuffix...)
}

// --- handlers --------------------------------------------------------------

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// vectorResponse is the /v1/vector payload. A struct for the same
// reason as neighborsResponse: deterministic encoding makes the body
// cacheable, and Cached last keeps cachedVariant applicable.
type vectorResponse struct {
	Table  string    `json:"table"`
	Column string    `json:"column"`
	Text   string    `json:"text"`
	Dim    int       `json:"dim"`
	Vector []float64 `json:"vector"`
	Cached bool      `json:"cached"`
}

// appendVectorKey renders the cache key for a vector lookup; the 'v'
// prefix keeps it disjoint from neighbours ('n') and analogy ('a') keys.
func appendVectorKey(b []byte, table, column, text string) []byte {
	b = append(b, 'v', 0)
	b = append(b, table...)
	b = append(b, 0)
	b = append(b, column...)
	b = append(b, 0)
	return append(b, text...)
}

func (s *Server) handleVector(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	t := s.tel
	ref, err := refFromQuery(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, errInvalidArgument, err.Error())
		return
	}
	v := s.currentView()
	cacheStart := time.Now()
	var body []byte
	var hit bool
	if s.cache != nil {
		ks := keyScratchPool.Get().(*keyScratch)
		ks.buf = appendVectorKey(ks.buf[:0], ref.Table, ref.Column, ref.Text)
		body, hit = s.cache.Get(ks.buf, v.epoch)
		keyScratchPool.Put(ks)
	}
	cacheDur := time.Since(cacheStart)
	t.stageCache.ObserveDuration(cacheDur)
	if !hit {
		pv := s.acquireView()
		id, ok := pv.store.ID(storeKey(ref.Table, ref.Column, ref.Text))
		if !ok {
			pv.release()
			writeError(w, http.StatusNotFound, errNotFound,
				fmt.Sprintf("no value %q in %s.%s", ref.Text, ref.Table, ref.Column))
			return
		}
		vector := pv.store.Vector(id)
		body = encodeBody(vectorResponse{
			Table: ref.Table, Column: ref.Column, Text: ref.Text,
			Dim: len(vector), Vector: vector,
		})
		if s.cache != nil {
			if hitBody := cachedVariant(body); hitBody != nil {
				ks := keyScratchPool.Get().(*keyScratch)
				ks.buf = appendVectorKey(ks.buf[:0], ref.Table, ref.Column, ref.Text)
				s.cache.Put(ks.buf, pv.epoch, hitBody)
				keyScratchPool.Put(ks)
			}
		}
		pv.release()
	}
	encodeStart := time.Now()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
	encodeDur := time.Since(encodeStart)
	t.stageEncode.ObserveDuration(encodeDur)
	if total := time.Since(start); t.slow.Slow(total) {
		t.slow.Record(obs.SlowEntry{
			Time: start, Endpoint: "/v1/vector",
			Table: ref.Table, Column: ref.Column, Text: ref.Text,
			Cached: hit, TotalNs: total.Nanoseconds(),
			CacheNs: cacheDur.Nanoseconds(), EncodeNs: encodeDur.Nanoseconds(),
		})
	}
}

// keyScratch pools the cache-key build buffer so the hit path allocates
// nothing.
type keyScratch struct{ buf []byte }

var keyScratchPool = sync.Pool{New: func() any { return new(keyScratch) }}

// appendNeighborsKey renders the cache key for a neighbours query. NUL
// separators cannot occur inside table/column names or clash with the
// decimal k, so distinct queries never collide.
func appendNeighborsKey(b []byte, table, column, text string, k int) []byte {
	b = append(b, 'n', 0)
	b = append(b, table...)
	b = append(b, 0)
	b = append(b, column...)
	b = append(b, 0)
	b = append(b, text...)
	b = append(b, 0)
	return strconv.AppendInt(b, int64(k), 10)
}

// lookupNeighbors probes the cache for a pre-encoded response computed
// under the given view epoch. Steady-state hits perform zero heap
// allocations: pooled key buffer, byte-keyed map probe, atomic recency
// bit, and the returned body is written to the client verbatim.
func (s *Server) lookupNeighbors(table, column, text string, k int, epoch uint64) ([]byte, bool) {
	if s.cache == nil {
		return nil, false
	}
	ks := keyScratchPool.Get().(*keyScratch)
	ks.buf = appendNeighborsKey(ks.buf[:0], table, column, text, k)
	body, ok := s.cache.Get(ks.buf, epoch)
	keyScratchPool.Put(ks)
	return body, ok
}

// handleNeighbors (single-query GET) and handleNeighborsBatch both live
// in batch.go, as thin faces over the shared neighborsCore.

// analogyResponse is the /v1/analogy payload; like the other cacheable
// responses, Cached stays last so cachedVariant applies.
type analogyResponse struct {
	A       valueRef `json:"a"`
	B       valueRef `json:"b"`
	C       valueRef `json:"c"`
	K       int      `json:"k"`
	Matches []match  `json:"matches"`
	Cached  bool     `json:"cached"`
}

// appendAnalogyKey renders the cache key for an analogy query: the 'a'
// prefix, the three value references and the decimal k.
func appendAnalogyKey(b []byte, refs *[3]valueRef, k int) []byte {
	b = append(b, 'a', 0)
	for _, ref := range refs {
		b = append(b, ref.Table...)
		b = append(b, 0)
		b = append(b, ref.Column...)
		b = append(b, 0)
		b = append(b, ref.Text...)
		b = append(b, 0)
	}
	return strconv.AppendInt(b, int64(k), 10)
}

func (s *Server) handleAnalogy(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	t := s.tel
	var req struct {
		A valueRef `json:"a"`
		B valueRef `json:"b"`
		C valueRef `json:"c"`
		K int      `json:"k"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, errMalformedJSON, "malformed JSON: "+err.Error())
		return
	}
	if req.K <= 0 {
		req.K = 10
	}
	v := s.currentView()
	if req.K > v.numValues {
		req.K = v.numValues
	}
	refs := [3]valueRef{req.A, req.B, req.C}
	cacheStart := time.Now()
	var body []byte
	var hit bool
	if s.cache != nil {
		ks := keyScratchPool.Get().(*keyScratch)
		ks.buf = appendAnalogyKey(ks.buf[:0], &refs, req.K)
		body, hit = s.cache.Get(ks.buf, v.epoch)
		keyScratchPool.Put(ks)
	}
	cacheDur := time.Since(cacheStart)
	t.stageCache.ObserveDuration(cacheDur)
	var st ann.SearchStats
	if !hit {
		pv := s.acquireView()
		keys := [3]string{}
		for i, ref := range refs {
			key := storeKey(ref.Table, ref.Column, ref.Text)
			if _, ok := pv.store.ID(key); !ok {
				pv.release()
				writeError(w, http.StatusNotFound, errNotFound,
					fmt.Sprintf("no value %q in %s.%s", ref.Text, ref.Table, ref.Column))
				return
			}
			keys[i] = key
		}
		ms, err := pv.store.AnalogyStats(keys[0], keys[1], keys[2], req.K, &st)
		if err != nil {
			pv.release()
			writeError(w, http.StatusNotFound, errNotFound, err.Error())
			return
		}
		t.stageWalk.Observe(float64(st.WalkNs) / 1e9)
		t.stageRerank.Observe(float64(st.RerankNs) / 1e9)
		t.annHops.Observe(float64(st.Hops))
		t.annNodes.Observe(float64(st.Nodes))
		if st.Reranked > 0 {
			t.annReranked.Observe(float64(st.Reranked))
		}
		body = encodeBody(analogyResponse{
			A: req.A, B: req.B, C: req.C, K: req.K, Matches: toMatches(ms),
		})
		if s.cache != nil {
			if hitBody := cachedVariant(body); hitBody != nil {
				ks := keyScratchPool.Get().(*keyScratch)
				ks.buf = appendAnalogyKey(ks.buf[:0], &refs, req.K)
				s.cache.Put(ks.buf, pv.epoch, hitBody)
				keyScratchPool.Put(ks)
			}
		}
		pv.release()
	}
	encodeStart := time.Now()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
	encodeDur := time.Since(encodeStart)
	t.stageEncode.ObserveDuration(encodeDur)
	if total := time.Since(start); t.slow.Slow(total) {
		t.slow.Record(obs.SlowEntry{
			Time: start, Endpoint: "/v1/analogy", K: req.K,
			Cached: hit, TotalNs: total.Nanoseconds(),
			CacheNs: cacheDur.Nanoseconds(),
			WalkNs:  st.WalkNs, RerankNs: st.RerankNs,
			EncodeNs: encodeDur.Nanoseconds(),
			Hops:     st.Hops, Nodes: st.Nodes, Reranked: st.Reranked,
		})
	}
}

func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) {
	if s.readOnly {
		writeError(w, http.StatusForbidden, errReadOnly,
			"this server is a read replica; send writes to the primary")
		return
	}
	s.limitBody(w, r)
	var req struct {
		Table  string  `json:"table"`
		Values []any   `json:"values"` // single-row form
		Rows   [][]any `json:"rows"`   // batched form
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeDecodeError(w, err)
		return
	}
	if req.Table == "" {
		writeError(w, http.StatusBadRequest, errInvalidArgument, "table is required")
		return
	}
	if req.Values != nil && req.Rows != nil {
		writeError(w, http.StatusBadRequest, errInvalidArgument, `use either "values" (one row) or "rows" (a batch), not both`)
		return
	}
	rawRows := req.Rows
	if req.Rows == nil {
		rawRows = [][]any{req.Values}
	}
	if len(rawRows) == 0 {
		writeError(w, http.StatusBadRequest, errInvalidArgument, "empty batch")
		return
	}

	// The schema probe and per-row value conversion run before the write
	// mutex: the table map and column definitions are fixed once the
	// dataset is loaded (the server exposes no DDL, and db.Insert only
	// appends rows), so reading them is safe without any lock and a
	// large batch's O(rows) decoding never blocks another writer. Only
	// the commit + repair + publication below are write-exclusive —
	// and even those exclude writers only, never readers.
	tbl, ok := s.session().DB().Table(req.Table)
	if !ok {
		writeError(w, http.StatusNotFound, errNotFound, fmt.Sprintf("unknown table %q", req.Table))
		return
	}
	numCols := len(tbl.Columns)
	rows := make([][]retro.Value, len(rawRows))
	for ri, raw := range rawRows {
		if len(raw) != numCols {
			writeError(w, http.StatusBadRequest, errInvalidArgument,
				fmt.Sprintf("row %d: table %q has %d columns, got %d values", ri, req.Table, numCols, len(raw)))
			return
		}
		row := make([]retro.Value, len(raw))
		for i, val := range raw {
			rv, err := jsonValue(val)
			if err != nil {
				writeError(w, http.StatusBadRequest, errInvalidArgument, fmt.Sprintf("row %d value %d: %v", ri, i, err))
				return
			}
			row[i] = rv
		}
		rows[ri] = row
	}

	t := s.tel
	t.insertRows.Observe(float64(len(rows)))
	t.insertsTotal.Inc()
	s.writeMu.Lock()
	sess := s.session()
	err := sess.InsertBatch(req.Table, rows)
	committed := len(rows)
	var batch *retro.BatchError
	if errors.As(err, &batch) {
		committed = batch.Committed
	}
	var repair *retro.RepairError
	repairFailed := errors.As(err, &repair)
	// A WAL append failure means the rows are live in memory but have no
	// durable record: the insert must not be acknowledged and the new
	// state must not be published — a crash now would serve values that
	// recovery cannot reproduce.
	var walErr *retro.WALError
	walFailed := errors.As(err, &walErr)
	published := committed > 0 && !repairFailed && !walFailed
	rep := sess.LastRepair()
	if published {
		// Warm the index and publish the successor view. The warm-up and
		// the freeze both run on the live store, invisible to readers:
		// the cost of a write lands on this write, never on a query.
		s.publishLocked()
	}
	numValues := s.currentView().numValues
	s.writeMu.Unlock()
	if published {
		t.repairDur.ObserveDuration(rep.Duration)
		t.repairNodes.Observe(float64(rep.Touched))
	}
	if repairFailed {
		t.repairFailures.Inc()
	}
	if t.noteStale(sess.Stale()) {
		t.log.Warn("session marked stale after failed write",
			"table", req.Table, "rows", len(rows), "error", err)
	}
	if err != nil {
		t.insertErrors.Inc()
	}
	if published && s.cache != nil {
		// Entries stamped with the old epoch are already unservable; the
		// purge just releases their memory promptly.
		s.cache.Purge()
	}

	if err != nil {
		if walFailed {
			// Rows reached memory but not the log: the write is NOT durable
			// and is not acknowledged. The session is stale and /readyz
			// fails until the operator restores the log (typically by
			// restarting onto a healthy disk); the old view keeps serving.
			writeError(w, http.StatusInternalServerError, errWALFailed, err.Error())
			return
		}
		if repairFailed {
			// The rows ARE committed — a 400 would invite a retry that
			// can only hit a duplicate key. Signal a server-side failure.
			// The session is marked stale (see /v1/stats) and the old
			// view stays published: queries keep serving the last good
			// vectors. Deliberately NOT resolved inline here: reads keep
			// flowing until the NEXT insert, which pays the full re-solve
			// once, instead of this (and every) failing request stalling
			// the write path for a retrain.
			writeError(w, http.StatusInternalServerError, errRepairFailed, err.Error())
			return
		}
		if batch != nil && batch.Committed > 0 {
			// Partial success: report how far the batch got.
			writeJSON(w, http.StatusBadRequest, map[string]any{
				"error":     apiError{Code: errPartialCommit, Message: batch.Error()},
				"committed": batch.Committed,
			})
			return
		}
		writeError(w, http.StatusBadRequest, errInvalidArgument, err.Error())
		return
	}

	writeJSON(w, http.StatusOK, map[string]any{
		"inserted": true, "rows": len(rows), "table": req.Table, "num_values": numValues,
	})
}

// ApplyReplicated commits one replicated WAL batch through the same
// write path an HTTP insert takes — commit, incremental repair, view
// publication, cache purge — bypassing only the HTTP surface (a replica
// rejects client writes; the stream is its writer). A RepairError is
// returned but leaves the batch committed and durably logged, same as
// the local contract: the session is stale until the next successful
// batch full-resolves.
func (s *Server) ApplyReplicated(table string, rows [][]retro.Value) error {
	t := s.tel
	t.insertRows.Observe(float64(len(rows)))
	t.insertsTotal.Inc()
	s.writeMu.Lock()
	sess := s.session()
	err := sess.InsertBatch(table, rows)
	rep := sess.LastRepair()
	if err == nil {
		s.publishLocked()
	}
	s.writeMu.Unlock()
	if err == nil {
		t.repairDur.ObserveDuration(rep.Duration)
		t.repairNodes.Observe(float64(rep.Touched))
		if s.cache != nil {
			s.cache.Purge()
		}
	} else {
		t.insertErrors.Inc()
		var repair *retro.RepairError
		if errors.As(err, &repair) {
			t.repairFailures.Inc()
		}
	}
	if t.noteStale(sess.Stale()) {
		t.log.Warn("session marked stale after replicated write",
			"table", table, "rows", len(rows), "error", err)
	}
	return err
}

// jsonValue maps a decoded JSON value onto a database value; reldb's
// Coerce handles per-column typing at insert.
func jsonValue(v any) (retro.Value, error) {
	switch x := v.(type) {
	case nil:
		return retro.Null, nil
	case string:
		return retro.Text(x), nil
	case float64:
		if x == float64(int64(x)) {
			return retro.Int(int64(x)), nil
		}
		return retro.Float(x), nil
	case bool:
		if x {
			return retro.Int(1), nil
		}
		return retro.Int(0), nil
	default:
		return retro.Null, fmt.Errorf("unsupported JSON value %T (use string, number, bool or null)", v)
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	// Everything here reads either the immutable published view or
	// dedicated atomics — no lock is taken and no insert is stalled.
	v := s.currentView()
	store := v.store
	threshold := store.ANNThreshold()
	idx := store.ANNIndex()
	annStats := map[string]any{"enabled": threshold > 0, "threshold": threshold, "built": idx != nil}
	// Quantization mode and re-rank depth: operators watching a rollout
	// need to see which distance kernel queries are actually running on.
	quantMode, quantRerank := store.Quantization()
	annStats["quantization"] = quantMode
	if quantMode != embed.QuantOff {
		annStats["rerank"] = quantRerank
	}
	if idx != nil {
		p := idx.Params()
		annStats["size"] = idx.Len()
		annStats["max_level"] = idx.MaxLevel()
		annStats["m"] = p.M
		annStats["ef_construction"] = p.EfConstruction
		annStats["ef_search"] = p.EfSearch
		annStats["quantized"] = idx.Quantized()
	}

	var cacheStats map[string]any
	if s.cache != nil {
		length, capacity, shards, hits, misses := s.cache.Stats()
		cacheStats = map[string]any{
			"entries": length, "capacity": capacity, "shards": shards,
			"hits": hits, "misses": misses,
		}
	}

	endpoints := map[string]any{}
	for _, st := range s.metrics.snapshot() {
		count := st.Count.Load()
		total := time.Duration(st.TotalNs.Load())
		ep := map[string]any{
			"count":    count,
			"errors":   st.Errors.Load(),
			"total_ms": float64(total) / float64(time.Millisecond),
		}
		if count > 0 {
			ep["avg_ms"] = float64(total) / float64(count) / float64(time.Millisecond)
		}
		endpoints[st.name] = ep
	}

	// Storage engine: durability counters for operators watching WAL
	// growth (checkpoint-lag) and checkpoint/compaction cadence. Absent
	// when the server runs without a data directory.
	var storageStats map[string]any
	if engine := s.Engine(); engine != nil {
		st := engine.Stats()
		storageStats = map[string]any{
			"dir":              st.Dir,
			"epoch":            st.Epoch,
			"segments":         st.Segments,
			"pending_rows":     st.PendingRows,
			"checkpoints":      st.Checkpoints,
			"compactions":      st.Compactions,
			"replayed_records": st.ReplayedRecords,
			"replayed_rows":    st.ReplayedRows,
			"wal_truncated":    st.WALTruncated,
			"wal": map[string]any{
				"path":     st.WAL.Path,
				"base_seq": st.WAL.BaseSeq,
				"last_seq": st.WAL.LastSeq,
				"records":  st.WAL.Records,
				"bytes":    st.WAL.Bytes,
				"appends":  st.WAL.Appends,
				"syncs":    st.WAL.Syncs,
			},
		}
		if !st.LastCheckpoint.Skipped && st.LastCheckpoint.Epoch > 0 {
			storageStats["last_checkpoint"] = map[string]any{
				"epoch":     st.LastCheckpoint.Epoch,
				"compacted": st.LastCheckpoint.Compacted,
				"rows":      st.LastCheckpoint.Rows,
				"vectors":   st.LastCheckpoint.Vectors,
				"bytes":     st.LastCheckpoint.Bytes,
				"ms":        float64(st.LastCheckpoint.Duration) / float64(time.Millisecond),
			}
		}
	}

	// Replication: a replica reports its tailing state and lag; any
	// storage-backed server reports the traffic it serves to followers.
	var replStats map[string]any
	if s.replica != nil {
		rs := s.replica()
		replStats = map[string]any{
			"role":           "replica",
			"state":          rs.State,
			"primary":        rs.Primary,
			"connected":      rs.Connected,
			"applied_seq":    rs.AppliedSeq,
			"primary_seq":    rs.PrimarySeq,
			"lag_seqs":       rs.LagSeqs,
			"lag_seconds":    rs.LagSeconds,
			"resyncs":        rs.Resyncs,
			"caught_up_once": rs.CaughtUpOnce,
			"ready":          rs.Ready,
		}
		if rs.Reason != "" {
			replStats["reason"] = rs.Reason
		}
		if rs.LastError != "" {
			replStats["last_error"] = rs.LastError
		}
	} else if s.replPrimary != nil {
		ps := s.replPrimary.Stats()
		replStats = map[string]any{
			"role":            "primary",
			"stream_requests": ps.StreamRequests,
			"stream_records":  ps.StreamRecords,
			"file_requests":   ps.FileRequests,
			"resyncs_served":  ps.Resyncs,
		}
	}

	origin := map[string]any{"source": s.origin.Source}
	if s.origin.Source == "snapshot" {
		origin["snapshot_path"] = s.origin.Path
		origin["format_version"] = s.origin.FormatVersion
		origin["fingerprint"] = fmt.Sprintf("%016x", s.origin.Fingerprint)
		if !s.origin.Created.IsZero() {
			origin["snapshot_created"] = s.origin.Created.UTC().Format(time.RFC3339)
			origin["snapshot_age_seconds"] = time.Since(s.origin.Created).Seconds()
		}
	}

	writeJSON(w, http.StatusOK, map[string]any{
		"uptime_seconds": time.Since(s.started).Seconds(),
		"num_values":     v.numValues,
		"dim":            v.dim,
		// stale means a repair failed after a commit: queries serve the
		// last good vectors and the next write runs a full re-solve.
		"session": map[string]any{"stale": s.session().Stale()},
		"ann":     annStats,
		// Resident payload breakdown of the serving store — what the
		// precision mode (f32 vs f64) actually moves. Component bytes
		// mirror the retro_store_bytes gauges.
		"memory": store.MemoryStats(),
		"cache":  cacheStats,
		// View lifecycle: epoch of the published view, how many times a
		// write swapped in a successor, how many retired views have fully
		// drained their readers, and how many are still draining.
		"views": map[string]any{
			"epoch":    v.epoch,
			"swaps":    s.swaps.Load(),
			"drained":  s.drained.Load(),
			"draining": s.retiredWaiting.Load(),
		},
		"endpoints":   endpoints,
		"origin":      origin,
		"storage":     storageStats,
		"replication": replStats,
	})
}
