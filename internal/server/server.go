// Package server exposes a trained retro.Session over HTTP/JSON: the
// embedding serving subsystem. Reads (vector lookup, neighbours, analogy,
// stats) run concurrently under a shared read lock; inserts take the
// write lock, repair the model incrementally and invalidate the query
// cache. Only the standard library is used.
//
// Endpoints:
//
//	GET  /healthz                 liveness
//	GET  /v1/stats                counters, cache and ANN introspection
//	GET  /v1/vector?table=&column=&text=
//	GET  /v1/neighbors?table=&column=&text=&k=
//	POST /v1/analogy              {"a":{...},"b":{...},"c":{...},"k":n}
//	POST /v1/insert               {"table":"...","values":[...]}     single row
//	POST /v1/insert               {"table":"...","rows":[[...],...]} batch
//
// A batch commits all rows and performs ONE incremental repair, one
// cache purge and one index warm-up — N single-row inserts pay each of
// those N times — and the exclusive write lock is held only for the
// commit + repair, not for request parsing or the index rebuild.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	retro "github.com/retrodb/retro"
)

// Config tunes the server.
type Config struct {
	// CacheSize is the LRU query-cache capacity in entries (default 1024,
	// negative disables caching).
	CacheSize int
	// Origin records where the session came from (trained in-process vs
	// resumed from a snapshot); it is surfaced in /v1/stats. Nil means
	// trained.
	Origin *Origin
}

// Origin describes the provenance of the served session.
type Origin struct {
	// Source is "trained" or "snapshot".
	Source string
	// Path is the snapshot file the session was resumed from.
	Path string
	// Created is when that snapshot was written (zero when trained).
	Created time.Time
	// FormatVersion is the snapshot format version.
	FormatVersion uint32
	// Fingerprint hashes the training configuration of the snapshot.
	Fingerprint uint64
}

// Server serves one live retro.Session. Snapshot-resumed and in-process
// trained sessions are served identically: every endpoint goes through
// the same model interface, and inserts maintain the deserialised HNSW
// graph in place just as they would a freshly built one.
type Server struct {
	// mu orders queries against inserts: reads share, inserts exclude.
	// The lazy ANN build inside the store is internally synchronised, so
	// concurrent readers never block each other.
	mu      sync.RWMutex
	sess    *retro.Session
	cache   *lruCache
	metrics metrics
	started time.Time
	origin  *Origin
}

// New wraps an already-trained (or snapshot-resumed) session.
func New(sess *retro.Session, cfg Config) *Server {
	size := cfg.CacheSize
	if size == 0 {
		size = 1024
	}
	s := &Server{sess: sess, started: time.Now(), origin: cfg.Origin}
	if s.origin == nil {
		s.origin = &Origin{Source: "trained"}
	}
	if size > 0 {
		s.cache = newLRUCache(size)
	}
	return s
}

// Handler returns the route table, each endpoint wrapped with latency and
// hit accounting.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.instrument("/healthz", "GET", s.handleHealthz))
	mux.HandleFunc("/v1/stats", s.instrument("/v1/stats", "GET", s.handleStats))
	mux.HandleFunc("/v1/vector", s.instrument("/v1/vector", "GET", s.handleVector))
	mux.HandleFunc("/v1/neighbors", s.instrument("/v1/neighbors", "GET", s.handleNeighbors))
	mux.HandleFunc("/v1/analogy", s.instrument("/v1/analogy", "POST", s.handleAnalogy))
	mux.HandleFunc("/v1/insert", s.instrument("/v1/insert", "POST", s.handleInsert))
	return mux
}

// --- metrics ---------------------------------------------------------------

type endpointStats struct {
	Count   atomic.Int64
	Errors  atomic.Int64
	TotalNs atomic.Int64
}

type metrics struct {
	mu sync.Mutex
	by map[string]*endpointStats
}

func (m *metrics) get(endpoint string) *endpointStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.by == nil {
		m.by = make(map[string]*endpointStats)
	}
	st, ok := m.by[endpoint]
	if !ok {
		st = &endpointStats{}
		m.by[endpoint] = st
	}
	return st
}

// statusWriter records the response code for error accounting.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (s *Server) instrument(endpoint, method string, h http.HandlerFunc) http.HandlerFunc {
	st := s.metrics.get(endpoint)
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != method {
			w.Header().Set("Allow", method)
			writeError(w, http.StatusMethodNotAllowed, fmt.Sprintf("%s requires %s", endpoint, method))
			st.Count.Add(1)
			st.Errors.Add(1)
			return
		}
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		h(sw, r)
		st.Count.Add(1)
		st.TotalNs.Add(time.Since(start).Nanoseconds())
		if sw.status >= 400 {
			st.Errors.Add(1)
		}
	}
}

// --- JSON plumbing ---------------------------------------------------------

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

// valueRef addresses one text value of the database.
type valueRef struct {
	Table  string `json:"table"`
	Column string `json:"column"`
	Text   string `json:"text"`
}

func refFromQuery(r *http.Request) (valueRef, error) {
	q := r.URL.Query()
	ref := valueRef{Table: q.Get("table"), Column: q.Get("column"), Text: q.Get("text")}
	if ref.Table == "" || ref.Column == "" || ref.Text == "" {
		return ref, fmt.Errorf("table, column and text query parameters are required")
	}
	return ref, nil
}

// match is one neighbour in a response. Key is the raw store key; the
// split fields are friendlier for clients.
type match struct {
	Column string  `json:"column"` // "table.column"
	Text   string  `json:"text"`
	Score  float64 `json:"score"`
}

func toMatches(ms []retro.Match) []match {
	out := make([]match, len(ms))
	for i, m := range ms {
		col, text, _ := strings.Cut(m.Word, "\x00")
		out[i] = match{Column: col, Text: text, Score: m.Score}
	}
	return out
}

// --- handlers --------------------------------------------------------------

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleVector(w http.ResponseWriter, r *http.Request) {
	ref, err := refFromQuery(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, err := s.sess.Model().Vector(ref.Table, ref.Column, ref.Text)
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"table": ref.Table, "column": ref.Column, "text": ref.Text,
		"dim": len(v), "vector": v,
	})
}

func (s *Server) handleNeighbors(w http.ResponseWriter, r *http.Request) {
	ref, err := refFromQuery(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	k := 10
	if ks := r.URL.Query().Get("k"); ks != "" {
		k, err = strconv.Atoi(ks)
		if err != nil || k <= 0 {
			writeError(w, http.StatusBadRequest, "k must be a positive integer")
			return
		}
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	// Clamp before allocating anything k-sized: a single unauthenticated
	// request must not be able to demand a multi-gigabyte result buffer.
	if n := s.sess.Model().NumValues(); k > n {
		k = n
	}
	cacheKey := fmt.Sprintf("n\x00%s\x00%s\x00%s\x00%d", ref.Table, ref.Column, ref.Text, k)
	if s.cache != nil {
		if hit, ok := s.cache.Get(cacheKey); ok {
			writeJSON(w, http.StatusOK, map[string]any{
				"query": ref, "k": k, "neighbors": hit, "cached": true,
			})
			return
		}
	}
	ms, err := s.sess.Model().Neighbors(ref.Table, ref.Column, ref.Text, k)
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	out := toMatches(ms)
	if s.cache != nil {
		s.cache.Put(cacheKey, out)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"query": ref, "k": k, "neighbors": out, "cached": false,
	})
}

func (s *Server) handleAnalogy(w http.ResponseWriter, r *http.Request) {
	var req struct {
		A valueRef `json:"a"`
		B valueRef `json:"b"`
		C valueRef `json:"c"`
		K int      `json:"k"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "malformed JSON: "+err.Error())
		return
	}
	if req.K <= 0 {
		req.K = 10
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	model := s.sess.Model()
	if n := model.NumValues(); req.K > n {
		req.K = n
	}
	keys := make([]string, 3)
	for i, ref := range []valueRef{req.A, req.B, req.C} {
		key, ok := model.Key(ref.Table, ref.Column, ref.Text)
		if !ok {
			writeError(w, http.StatusNotFound,
				fmt.Sprintf("no value %q in %s.%s", ref.Text, ref.Table, ref.Column))
			return
		}
		keys[i] = key
	}
	ms, err := model.Store().Analogy(keys[0], keys[1], keys[2], req.K)
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"a": req.A, "b": req.B, "c": req.C, "k": req.K, "matches": toMatches(ms),
	})
}

func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Table  string  `json:"table"`
		Values []any   `json:"values"` // single-row form
		Rows   [][]any `json:"rows"`   // batched form
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "malformed JSON: "+err.Error())
		return
	}
	if req.Table == "" {
		writeError(w, http.StatusBadRequest, "table is required")
		return
	}
	if req.Values != nil && req.Rows != nil {
		writeError(w, http.StatusBadRequest, `use either "values" (one row) or "rows" (a batch), not both`)
		return
	}
	rawRows := req.Rows
	if req.Rows == nil {
		rawRows = [][]any{req.Values}
	}
	if len(rawRows) == 0 {
		writeError(w, http.StatusBadRequest, "empty batch")
		return
	}

	// Everything that does not touch session state — arity checks, JSON
	// value conversion — runs before the write lock, so readers are only
	// excluded for the commit + repair itself.
	s.mu.RLock()
	tbl, ok := s.sess.DB().Table(req.Table)
	numCols := 0
	if ok {
		numCols = len(tbl.Columns)
	}
	s.mu.RUnlock()
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("unknown table %q", req.Table))
		return
	}
	rows := make([][]retro.Value, len(rawRows))
	for ri, raw := range rawRows {
		if len(raw) != numCols {
			writeError(w, http.StatusBadRequest,
				fmt.Sprintf("row %d: table %q has %d columns, got %d values", ri, req.Table, numCols, len(raw)))
			return
		}
		row := make([]retro.Value, len(raw))
		for i, v := range raw {
			rv, err := jsonValue(v)
			if err != nil {
				writeError(w, http.StatusBadRequest, fmt.Sprintf("row %d value %d: %v", ri, i, err))
				return
			}
			row[i] = rv
		}
		rows[ri] = row
	}

	// Commit + one repair for the whole batch under the write lock. The
	// store (and its ANN index) is maintained in place, so readers see
	// the new values as soon as the lock drops.
	s.mu.Lock()
	err := s.sess.InsertBatch(req.Table, rows)
	committed := len(rows)
	var batch *retro.BatchError
	if errors.As(err, &batch) {
		committed = batch.Committed
	}
	if committed > 0 && s.cache != nil {
		s.cache.Purge()
	}
	s.mu.Unlock()

	// Whatever the outcome, if rows landed, rebuild the index now (a
	// no-op unless the repair invalidated it) so the cost falls on this
	// write, not on the next reader — including the partial-batch and
	// repair-failure responses below. The build is internally
	// serialised; holding only the read lock keeps queries flowing.
	if committed > 0 {
		s.mu.RLock()
		s.sess.Model().Store().WarmANN()
		s.mu.RUnlock()
	}

	if err != nil {
		var repair *retro.RepairError
		if errors.As(err, &repair) {
			// The rows ARE committed — a 400 would invite a retry that
			// can only hit a duplicate key. Signal a server-side failure.
			// The session is now marked stale (see /v1/stats); queries
			// keep serving the last good vectors. Deliberately NOT
			// resolved inline here: reads keep flowing until the NEXT
			// insert, which pays the full re-solve under the write lock
			// once, instead of this (and every) failing request
			// stalling all readers for a retrain.
			writeError(w, http.StatusInternalServerError, err.Error())
			return
		}
		if batch != nil && batch.Committed > 0 {
			// Partial success: report how far the batch got.
			writeJSON(w, http.StatusBadRequest, map[string]any{
				"error":     batch.Error(),
				"committed": batch.Committed,
			})
			return
		}
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	s.mu.RLock()
	numValues := s.sess.Model().NumValues()
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"inserted": true, "rows": len(rows), "table": req.Table, "num_values": numValues,
	})
}

// jsonValue maps a decoded JSON value onto a database value; reldb's
// Coerce handles per-column typing at insert.
func jsonValue(v any) (retro.Value, error) {
	switch x := v.(type) {
	case nil:
		return retro.Null, nil
	case string:
		return retro.Text(x), nil
	case float64:
		if x == float64(int64(x)) {
			return retro.Int(int64(x)), nil
		}
		return retro.Float(x), nil
	case bool:
		if x {
			return retro.Int(1), nil
		}
		return retro.Int(0), nil
	default:
		return retro.Null, fmt.Errorf("unsupported JSON value %T (use string, number, bool or null)", v)
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	// Snapshot everything — including the index introspection — while
	// holding the read lock: inserts mutate the index under the write
	// lock, so touching idx after RUnlock would race.
	s.mu.RLock()
	model := s.sess.Model()
	numValues := model.NumValues()
	stale := s.sess.Stale()
	store := model.Store()
	dim := store.Dim()
	threshold := store.ANNThreshold()
	idx := store.ANNIndex()
	annStats := map[string]any{"enabled": threshold > 0, "threshold": threshold, "built": idx != nil}
	if idx != nil {
		p := idx.Params()
		annStats["size"] = idx.Len()
		annStats["max_level"] = idx.MaxLevel()
		annStats["m"] = p.M
		annStats["ef_construction"] = p.EfConstruction
		annStats["ef_search"] = p.EfSearch
	}
	s.mu.RUnlock()

	var cacheStats map[string]any
	if s.cache != nil {
		length, capacity, hits, misses := s.cache.Stats()
		cacheStats = map[string]any{
			"entries": length, "capacity": capacity, "hits": hits, "misses": misses,
		}
	}

	endpoints := map[string]any{}
	s.metrics.mu.Lock()
	names := make([]string, 0, len(s.metrics.by))
	for name := range s.metrics.by {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		st := s.metrics.by[name]
		count := st.Count.Load()
		total := time.Duration(st.TotalNs.Load())
		ep := map[string]any{
			"count":    count,
			"errors":   st.Errors.Load(),
			"total_ms": float64(total) / float64(time.Millisecond),
		}
		if count > 0 {
			ep["avg_ms"] = float64(total) / float64(count) / float64(time.Millisecond)
		}
		endpoints[name] = ep
	}
	s.metrics.mu.Unlock()

	origin := map[string]any{"source": s.origin.Source}
	if s.origin.Source == "snapshot" {
		origin["snapshot_path"] = s.origin.Path
		origin["format_version"] = s.origin.FormatVersion
		origin["fingerprint"] = fmt.Sprintf("%016x", s.origin.Fingerprint)
		if !s.origin.Created.IsZero() {
			origin["snapshot_created"] = s.origin.Created.UTC().Format(time.RFC3339)
			origin["snapshot_age_seconds"] = time.Since(s.origin.Created).Seconds()
		}
	}

	writeJSON(w, http.StatusOK, map[string]any{
		"uptime_seconds": time.Since(s.started).Seconds(),
		"num_values":     numValues,
		"dim":            dim,
		// stale means a repair failed after a commit: queries serve the
		// last good vectors and the next write runs a full re-solve.
		"session":   map[string]any{"stale": stale},
		"ann":       annStats,
		"cache":     cacheStats,
		"endpoints": endpoints,
		"origin":    origin,
	})
}
