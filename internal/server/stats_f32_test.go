package server

import (
	"strconv"
	"strings"
	"testing"

	retro "github.com/retrodb/retro"
	"github.com/retrodb/retro/internal/datagen"
)

func newPrecisionServer(t *testing.T, p retro.Precision) *Server {
	t.Helper()
	w := datagen.TMDB(datagen.TMDBConfig{Movies: 50, Dim: 16, Seed: 1})
	cfg := retro.Defaults()
	cfg.ANNThreshold = 1
	cfg.Precision = p
	sess, err := retro.NewSession(w.DB, w.Embedding, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return New(sess, Config{})
}

// TestStatsMemorySection: /v1/stats exposes the resident payload
// breakdown, and a float32 server reports exactly half the matrix bytes
// of its float64 twin over the same dataset.
func TestStatsMemorySection(t *testing.T) {
	memory := func(p retro.Precision) map[string]any {
		s := newPrecisionServer(t, p)
		rec, body := get(t, s.Handler(), "/v1/stats")
		if rec.Code != 200 {
			t.Fatalf("stats: status %d", rec.Code)
		}
		mem, ok := body["memory"].(map[string]any)
		if !ok {
			t.Fatalf("stats has no memory section: %v", body)
		}
		return mem
	}

	m64 := memory(retro.F64)
	m32 := memory(retro.F32)
	if m64["precision"] != "f64" || m32["precision"] != "f32" {
		t.Fatalf("precisions = %v / %v", m64["precision"], m32["precision"])
	}
	for _, key := range []string{"matrix_bytes", "norm_bytes", "total_bytes"} {
		if v, ok := m32[key].(float64); !ok || v <= 0 {
			t.Fatalf("memory.%s = %v, want > 0", key, m32[key])
		}
	}
	if got, want := m32["matrix_bytes"].(float64)*2, m64["matrix_bytes"].(float64); got != want {
		t.Fatalf("f32 matrix bytes ×2 = %v, f64 = %v", got, want)
	}
	if m32["total_bytes"].(float64) >= m64["total_bytes"].(float64) {
		t.Fatalf("f32 total %v not below f64 total %v", m32["total_bytes"], m64["total_bytes"])
	}
}

// TestStoreBytesGaugeTracksPrecision: the retro_store_bytes{component}
// gauges follow the store precision — the f32 matrix series scrapes at
// half the f64 value.
func TestStoreBytesGaugeTracksPrecision(t *testing.T) {
	matrixBytes := func(p retro.Precision) float64 {
		out := scrape(t, newPrecisionServer(t, p))
		for _, line := range strings.Split(out, "\n") {
			if !strings.HasPrefix(line, `retro_store_bytes{component="matrix"}`) {
				continue
			}
			v, err := strconv.ParseFloat(strings.Fields(line)[1], 64)
			if err != nil {
				t.Fatalf("parsing %q: %v", line, err)
			}
			return v
		}
		t.Fatalf("no matrix series in exposition:\n%s", out)
		return 0
	}
	b64, b32 := matrixBytes(retro.F64), matrixBytes(retro.F32)
	if b32 <= 0 || b32*2 != b64 {
		t.Fatalf("matrix bytes f32=%v f64=%v, want exact halving", b32, b64)
	}
}
