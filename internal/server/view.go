// Serving views: the lock-free read path.
//
// The server used to order queries against inserts with one server-wide
// sync.RWMutex — every read bounced the same lock word, and a write
// stalled the whole read side for the duration of commit + repair. That
// invariant is gone. Reads now load an atomic pointer to an immutable
// servingView and run entirely against it; writers build the successor
// state off to the side (the live session mutates under copy-on-write,
// so published views are never perturbed) and install it with a single
// pointer swap. Readers that were mid-query keep using the view they
// loaded; it is retired and reclaimed once its in-flight reference count
// drains.
package server

import (
	"io"
	"sync/atomic"
	"time"

	retro "github.com/retrodb/retro"
	"github.com/retrodb/retro/internal/embed"
)

// servingView is one immutable generation of everything a query needs:
// a frozen embedding store (vocabulary, matrix, norm cache and HNSW
// index, all materialised and stable) plus the scalar metadata handlers
// read. Views are never mutated after publication.
type servingView struct {
	epoch     uint64
	store     *embed.Store // frozen snapshot: lock-free reads
	numValues int
	dim       int

	// refs counts in-flight readers; it gates when a retired view is
	// considered drained (see Server.sweepRetiredLocked).
	refs atomic.Int64
}

// currentView returns the published view for wait-free metadata reads
// (epoch, counts). Callers that will touch the store through blocking
// work should use acquireView so drain accounting sees them.
func (s *Server) currentView() *servingView {
	return s.view.Load()
}

// acquireView pins the published view for the duration of a query. The
// validation reload makes the pin race-free: if the view was swapped out
// between the load and the ref bump, the ref is rolled back and the new
// view is pinned instead, so a view whose refcount reads zero after
// unpublication can never gain a reader that touches it.
func (s *Server) acquireView() *servingView {
	for {
		v := s.view.Load()
		v.refs.Add(1)
		if s.view.Load() == v {
			return v
		}
		v.refs.Add(-1)
	}
}

func (v *servingView) release() { v.refs.Add(-1) }

// publishLocked freezes the session's current store into a new view and
// swaps it in. Caller holds writeMu. The WarmANN runs on the live store
// before the freeze, so an index (re)build triggered by the write is
// paid here — off the published view, with readers still flowing against
// the old one — never inside a reader's request.
func (s *Server) publishLocked() {
	start := time.Now()
	store := s.session().Model().Store()
	store.WarmANN()
	frozen := store.Freeze()
	old := s.view.Load()
	next := &servingView{
		store:     frozen,
		numValues: frozen.Len(),
		dim:       frozen.Dim(),
	}
	if old != nil {
		next.epoch = old.epoch + 1
	}
	s.view.Store(next)
	if old != nil {
		s.swaps.Add(1)
		s.retired = append(s.retired, old)
	}
	s.sweepRetiredLocked()
	s.tel.publishDur.ObserveDuration(time.Since(start))
}

// sweepRetiredLocked reclaims retired views whose readers have drained.
// Caller holds writeMu. Dropping the reference here is what lets the GC
// collect a generation's copied state once no query can touch it.
func (s *Server) sweepRetiredLocked() {
	kept := s.retired[:0]
	for _, v := range s.retired {
		if v.refs.Load() == 0 {
			s.drained.Add(1)
			continue
		}
		kept = append(kept, v)
	}
	for i := len(kept); i < len(s.retired); i++ {
		s.retired[i] = nil
	}
	s.retired = kept
	s.retiredWaiting.Store(int64(len(kept)))
}

// WriteSnapshot serialises the served session to w. It takes the write
// lock — excluding inserts, exactly the discipline Session.Snapshot
// documents — while queries keep flowing against the published view.
func (s *Server) WriteSnapshot(w io.Writer) error {
	start := time.Now()
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	err := s.session().Snapshot(w)
	s.tel.snapshotSave.ObserveDuration(time.Since(start))
	return err
}

// Session returns the served session. Any direct use must follow the
// session's synchronisation rules; it is exposed for operational tooling
// (snapshot timers, staleness probes), not for the request path.
func (s *Server) Session() *retro.Session { return s.session() }

// Checkpoint runs a storage-engine checkpoint under the write lock —
// the exclusion Checkpoint requires — while queries keep flowing
// against the published view. It is a no-op (Skipped) when the server
// has no engine or nothing changed since the last checkpoint.
func (s *Server) Checkpoint() (retro.CheckpointStats, error) {
	engine := s.Engine()
	if engine == nil {
		return retro.CheckpointStats{Skipped: true}, nil
	}
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	stats, err := engine.Checkpoint()
	if err == nil && !stats.Skipped && s.tel.checkpointDur != nil {
		s.tel.checkpointDur.ObserveDuration(stats.Duration)
	}
	return stats, err
}

// ReplaceEngine swaps in a fresh engine + session pair and publishes its
// first view — the follower re-sync path: the old engine's state was
// discarded and rebuilt from the primary, so the served session must be
// replaced wholesale, not mutated. Queries racing the swap finish on the
// retired view; the epoch bump makes every cache entry unservable and
// the purge releases them promptly.
func (s *Server) ReplaceEngine(engine *retro.StorageEngine) {
	s.writeMu.Lock()
	s.engineP.Store(engine)
	s.sessP.Store(engine.Session())
	s.publishLocked()
	s.writeMu.Unlock()
	if s.cache != nil {
		s.cache.Purge()
	}
}
