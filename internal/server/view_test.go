package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
)

// TestViewPublicationAtomicity is the torn-read regression test for the
// lock-free read path: writers insert PAIRS of rows in single batches
// while readers pin serving views and check that each view is internally
// consistent — both members of a pair present or both absent, and every
// vector bit-stable for the lifetime of the view. A concurrent snapshot
// writer exercises the write-mutex path at the same time. Run under
// -race (CI does) this doubles as the data-race check for view
// publication, copy-on-write and the sharded cache.
func TestViewPublicationAtomicity(t *testing.T) {
	s, titles := newTestServer(t)
	h := s.Handler()

	const pairs = 6
	cols := columnCount(t, s, "movies")

	// Baseline vector bytes for an existing title, per epoch: within one
	// view the vector must never change, even while repairs rewrite the
	// live store's rows.
	probeKey := storeKey("movies", "title", titles[0])

	done := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, 64)

	// Reader goroutines: pin a view, verify pair-atomicity and vector
	// stability inside it.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				v := s.acquireView()
				store := v.store
				id, ok := store.ID(probeKey)
				if !ok {
					errs <- fmt.Errorf("epoch %d: probe title missing", v.epoch)
					v.release()
					return
				}
				before := append([]float64(nil), store.Vector(id)...)
				for p := 0; p < pairs; p++ {
					_, okL := store.ID(storeKey("movies", "title", fmt.Sprintf("pair %d left", p)))
					_, okR := store.ID(storeKey("movies", "title", fmt.Sprintf("pair %d right", p)))
					if okL != okR {
						errs <- fmt.Errorf("epoch %d: torn batch: pair %d left=%v right=%v", v.epoch, p, okL, okR)
					}
				}
				after := store.Vector(id)
				for j := range before {
					if before[j] != after[j] {
						errs <- fmt.Errorf("epoch %d: vector changed within a view at dim %d", v.epoch, j)
						break
					}
				}
				v.release()
			}
		}()
	}

	// Concurrent snapshot writer: serialises with inserts on writeMu,
	// never with readers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			if err := s.WriteSnapshot(io.Discard); err != nil {
				errs <- fmt.Errorf("concurrent snapshot: %v", err)
				return
			}
		}
	}()

	// Writer: each batch inserts a left/right pair atomically.
	for p := 0; p < pairs; p++ {
		rows := [][]any{
			makeRow(cols, map[int]any{0: 60000 + 2*p, 1: fmt.Sprintf("pair %d left", p), 2: "english"}),
			makeRow(cols, map[int]any{0: 60001 + 2*p, 1: fmt.Sprintf("pair %d right", p), 2: "english"}),
		}
		body, _ := json.Marshal(map[string]any{"table": "movies", "rows": rows})
		rec, resp := post(t, h, "/v1/insert", string(body))
		if rec.Code != http.StatusOK {
			t.Fatalf("pair %d insert: code %d body %v", p, rec.Code, resp)
		}
	}
	close(done)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Post-conditions: the final view carries every pair and a bumped
	// epoch; retired views have drained.
	v := s.currentView()
	for p := 0; p < pairs; p++ {
		if _, ok := v.store.ID(storeKey("movies", "title", fmt.Sprintf("pair %d left", p))); !ok {
			t.Errorf("final view missing pair %d", p)
		}
	}
	if v.epoch < uint64(pairs) {
		t.Errorf("epoch %d after %d publishing inserts", v.epoch, pairs)
	}
	s.writeMu.Lock()
	s.sweepRetiredLocked()
	waiting := len(s.retired)
	s.writeMu.Unlock()
	if waiting != 0 {
		t.Errorf("%d retired views still hold readers after drain", waiting)
	}
}

// TestViewEpochAdvancesAndStatsExposeViews: /v1/stats surfaces the view
// lifecycle counters the ops side needs to see swaps happening.
func TestViewEpochAdvancesAndStatsExposeViews(t *testing.T) {
	s, _ := newTestServer(t)
	h := s.Handler()

	_, body := get(t, h, "/v1/stats")
	views, ok := body["views"].(map[string]any)
	if !ok {
		t.Fatalf("stats.views missing: %v", body)
	}
	epoch0 := views["epoch"].(float64)

	cols := columnCount(t, s, "movies")
	row := makeRow(cols, map[int]any{0: 61001, 1: "the epoch premiere", 2: "english"})
	reqBody, _ := json.Marshal(map[string]any{"table": "movies", "values": row})
	if rec, b := post(t, h, "/v1/insert", string(reqBody)); rec.Code != http.StatusOK {
		t.Fatalf("insert: code %d body %v", rec.Code, b)
	}

	_, body = get(t, h, "/v1/stats")
	views = body["views"].(map[string]any)
	if got := views["epoch"].(float64); got != epoch0+1 {
		t.Fatalf("epoch %v after insert, want %v", got, epoch0+1)
	}
	if swaps := views["swaps"].(float64); swaps < 1 {
		t.Fatalf("swaps = %v, want >= 1", swaps)
	}
	if _, ok := views["drained"]; !ok {
		t.Fatal("stats.views.drained missing")
	}
	cache, ok := body["cache"].(map[string]any)
	if !ok {
		t.Fatalf("stats.cache missing: %v", body)
	}
	if shards := cache["shards"].(float64); shards < 1 {
		t.Fatalf("cache.shards = %v", shards)
	}
}

// TestCacheHitZeroAlloc guards the zero-allocation contract of the
// cached read path: key build, shard probe, recency bit and body return
// must not touch the heap.
func TestCacheHitZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are asserted without the race detector")
	}
	s, titles := newTestServer(t)
	h := s.Handler()
	url := "/v1/neighbors?table=movies&column=title&text=" + queryEscape(titles[0]) + "&k=3"
	get(t, h, url) // populate the cache

	v := s.currentView()
	var sink []byte
	// Warm the key-scratch pool.
	if _, ok := s.lookupNeighbors("movies", "title", titles[0], 3, v.epoch); !ok {
		t.Fatal("expected a cache hit")
	}
	allocs := testing.AllocsPerRun(500, func() {
		body, ok := s.lookupNeighbors("movies", "title", titles[0], 3, v.epoch)
		if !ok {
			t.Fatal("cache hit lost")
		}
		sink = body
	})
	if allocs != 0 {
		t.Fatalf("cache-hit lookup allocated %.2f times per query, want 0", allocs)
	}
	if !bytes.Contains(sink, []byte(`"cached":true`)) {
		t.Fatalf("cached body malformed: %s", sink)
	}
}

// TestCachedBodyIsServedVerbatim: the hit path writes the stored
// pre-encoded payload; it must decode to the same response shape as the
// original (modulo the cached flag).
func TestCachedBodyIsServedVerbatim(t *testing.T) {
	s, titles := newTestServer(t)
	h := s.Handler()
	url := "/v1/neighbors?table=movies&column=title&text=" + queryEscape(titles[1]) + "&k=4"

	_, miss := get(t, h, url)
	_, hit := get(t, h, url)
	if miss["cached"] != false || hit["cached"] != true {
		t.Fatalf("cached flags: miss=%v hit=%v", miss["cached"], hit["cached"])
	}
	mn := miss["neighbors"].([]any)
	hn := hit["neighbors"].([]any)
	if len(mn) != len(hn) {
		t.Fatalf("%d vs %d neighbours", len(mn), len(hn))
	}
	for i := range mn {
		a, b := mn[i].(map[string]any), hn[i].(map[string]any)
		if a["text"] != b["text"] || a["score"] != b["score"] {
			t.Fatalf("rank %d: %v vs %v", i, a, b)
		}
	}
	if miss["k"] != hit["k"] {
		t.Fatalf("k drifted: %v vs %v", miss["k"], hit["k"])
	}
}

// TestConcurrentMixedReadWriteStress is the reads-during-inserts stress
// required by the acceptance criteria: full HTTP surface, sustained
// concurrent GETs racing batched POST /v1/insert, everything OK-coded
// and every committed row findable afterwards.
func TestConcurrentMixedReadWriteStress(t *testing.T) {
	s, titles := newTestServer(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const readers, reads, writers, batches = 8, 40, 2, 4
	var wg sync.WaitGroup
	errs := make(chan error, readers*reads+writers*batches)
	cols := columnCount(t, s, "movies")

	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				rows := [][]any{
					makeRow(cols, map[int]any{0: 62000 + g*100 + 2*b, 1: fmt.Sprintf("stress %d-%d a", g, b), 2: "english"}),
					makeRow(cols, map[int]any{0: 62001 + g*100 + 2*b, 1: fmt.Sprintf("stress %d-%d b", g, b), 2: "english"}),
				}
				body, _ := json.Marshal(map[string]any{"table": "movies", "rows": rows})
				resp, err := http.Post(ts.URL+"/v1/insert", "application/json", bytes.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("writer %d batch %d: status %d", g, b, resp.StatusCode)
				}
				resp.Body.Close()
			}
		}(g)
	}
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < reads; i++ {
				var url string
				switch i % 4 {
				case 0, 1:
					url = ts.URL + "/v1/neighbors?table=movies&column=title&text=" + queryEscape(titles[(g+i)%len(titles)]) + "&k=3"
				case 2:
					url = ts.URL + "/v1/vector?table=movies&column=title&text=" + queryEscape(titles[(g+i)%len(titles)])
				default:
					url = ts.URL + "/v1/stats"
				}
				resp, err := http.Get(url)
				if err != nil {
					errs <- err
					return
				}
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("reader %d: GET %s status %d", g, url, resp.StatusCode)
				}
				resp.Body.Close()
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	v := s.currentView()
	for g := 0; g < writers; g++ {
		for b := 0; b < batches; b++ {
			for _, suffix := range []string{"a", "b"} {
				title := fmt.Sprintf("stress %d-%d %s", g, b, suffix)
				if _, ok := v.store.ID(storeKey("movies", "title", title)); !ok {
					t.Errorf("lost update: %q missing from the published view", title)
				}
			}
		}
	}
}
