package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	retro "github.com/retrodb/retro"
	"github.com/retrodb/retro/internal/datagen"
)

// newTestServerWithConfig is newTestServer with a caller-chosen server
// config (the batch tests need a cache-disabled variant for byte-parity
// checks).
func newTestServerWithConfig(t *testing.T, scfg Config) (*Server, []string) {
	t.Helper()
	w := datagen.TMDB(datagen.TMDBConfig{Movies: 50, Dim: 16, Seed: 1})
	cfg := retro.Defaults()
	cfg.ANNThreshold = 1
	sess, err := retro.NewSession(w.DB, w.Embedding, cfg)
	if err != nil {
		t.Fatal(err)
	}
	titles, err := w.DB.QueryText(`SELECT title FROM movies`)
	if err != nil || len(titles) == 0 {
		t.Fatalf("no seed titles (err=%v)", err)
	}
	return New(sess, scfg), titles
}

// errCode digs the machine code out of a decoded error envelope
// ({"error":{"code":...,"message":...}}); empty when absent.
func errCode(body map[string]any) string {
	e, ok := body["error"].(map[string]any)
	if !ok {
		return ""
	}
	code, _ := e["code"].(string)
	return code
}

// batchBody builds a /v1/neighbors/batch request body.
func batchBody(t *testing.T, queries []map[string]any, defaultK int) string {
	t.Helper()
	env := map[string]any{"queries": queries}
	if defaultK != 0 {
		env["default_k"] = defaultK
	}
	b, err := json.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func q(text string, k int) map[string]any {
	m := map[string]any{"table": "movies", "column": "title", "text": text}
	if k != 0 {
		m["k"] = k
	}
	return m
}

func TestNeighborsBatchEndpoint(t *testing.T) {
	s, titles := newTestServer(t)
	h := s.Handler()
	rec, body := post(t, h, "/v1/neighbors/batch",
		batchBody(t, []map[string]any{q(titles[0], 3), q(titles[1], 0), q(titles[2], 5)}, 4))
	if rec.Code != http.StatusOK {
		t.Fatalf("batch: code %d body %v", rec.Code, body)
	}
	results, ok := body["results"].([]any)
	if !ok || len(results) != 3 {
		t.Fatalf("results: %v", body["results"])
	}
	if body["queries"] != float64(3) || body["errors"] != float64(0) {
		t.Fatalf("summary fields: %v", body)
	}
	wantK := []float64{3, 4, 5} // explicit k, default_k, explicit k
	for i, raw := range results {
		item := raw.(map[string]any)
		if item["k"] != wantK[i] {
			t.Fatalf("item %d: k = %v, want %v", i, item["k"], wantK[i])
		}
		query := item["query"].(map[string]any)
		if query["text"] != titles[i] {
			t.Fatalf("item %d answers %v, want %q", i, query["text"], titles[i])
		}
		nbs := item["neighbors"].([]any)
		if len(nbs) == 0 || len(nbs) > int(wantK[i]) {
			t.Fatalf("item %d: %d neighbours for k=%v", i, len(nbs), wantK[i])
		}
		if item["cached"] != false {
			t.Fatalf("item %d: cached on first sight", i)
		}
	}
}

// TestNeighborsBatchOfOneByteParity is the compatibility contract: one
// query through the batch endpoint yields byte-for-byte the single-query
// GET response (modulo the envelope around it), on both the uncached and
// the cached path.
func TestNeighborsBatchOfOneByteParity(t *testing.T) {
	// Uncached side: no cache, so both faces compute fresh bodies.
	s, titles := newTestServerWithConfig(t, Config{CacheSize: -1})
	h := s.Handler()
	url := "/v1/neighbors?table=movies&column=title&text=" + queryEscape(titles[0]) + "&k=3"
	recSingle, _ := get(t, h, url)
	recBatch, _ := post(t, h, "/v1/neighbors/batch", batchBody(t, []map[string]any{q(titles[0], 3)}, 0))
	var env struct {
		Results []json.RawMessage `json:"results"`
	}
	if err := json.Unmarshal(recBatch.Body.Bytes(), &env); err != nil || len(env.Results) != 1 {
		t.Fatalf("batch envelope: %v %s", err, recBatch.Body.String())
	}
	single := strings.TrimSuffix(recSingle.Body.String(), "\n")
	if string(env.Results[0]) != single {
		t.Fatalf("batch-of-1 diverges from single response:\nbatch:  %s\nsingle: %s", env.Results[0], single)
	}

	// Cached side: warm through GET, then both faces serve the cached
	// variant — still byte-identical.
	s2, titles2 := newTestServer(t)
	h2 := s2.Handler()
	url2 := "/v1/neighbors?table=movies&column=title&text=" + queryEscape(titles2[0]) + "&k=3"
	get(t, h2, url2)
	recSingle2, body := get(t, h2, url2)
	if body["cached"] != true {
		t.Fatal("warmed single query not cached")
	}
	recBatch2, _ := post(t, h2, "/v1/neighbors/batch", batchBody(t, []map[string]any{q(titles2[0], 3)}, 0))
	if err := json.Unmarshal(recBatch2.Body.Bytes(), &env); err != nil || len(env.Results) != 1 {
		t.Fatalf("batch envelope: %v %s", err, recBatch2.Body.String())
	}
	single2 := strings.TrimSuffix(recSingle2.Body.String(), "\n")
	if string(env.Results[0]) != single2 {
		t.Fatalf("cached batch-of-1 diverges:\nbatch:  %s\nsingle: %s", env.Results[0], single2)
	}
}

// TestNeighborsBatchMatchesLoopedSingles: every item of a mixed batch
// carries exactly the neighbours the single-query endpoint returns for
// it — the HTTP face of the engine's batch-parity property.
func TestNeighborsBatchMatchesLoopedSingles(t *testing.T) {
	s, titles := newTestServerWithConfig(t, Config{CacheSize: -1})
	h := s.Handler()
	n := 8
	queries := make([]map[string]any, n)
	for i := range queries {
		queries[i] = q(titles[i%len(titles)], 3)
	}
	_, body := post(t, h, "/v1/neighbors/batch", batchBody(t, queries, 0))
	results := body["results"].([]any)
	for i, raw := range results {
		item := raw.(map[string]any)
		_, single := get(t, h, "/v1/neighbors?table=movies&column=title&text="+queryEscape(titles[i%len(titles)])+"&k=3")
		want, _ := json.Marshal(single["neighbors"])
		got, _ := json.Marshal(item["neighbors"])
		if string(got) != string(want) {
			t.Fatalf("item %d: batch %s\nsingle %s", i, got, want)
		}
	}
}

func TestNeighborsBatchPartialErrors(t *testing.T) {
	s, titles := newTestServer(t)
	h := s.Handler()
	queries := []map[string]any{
		q(titles[0], 3),
		q("definitely not a movie", 3),
		{"table": "movies", "text": "missing column"}, // no column
		q(titles[1], -2),
	}
	rec, body := post(t, h, "/v1/neighbors/batch", batchBody(t, queries, 0))
	if rec.Code != http.StatusOK {
		t.Fatalf("partial-error batch must stay 200, got %d body %v", rec.Code, body)
	}
	results := body["results"].([]any)
	if len(results) != 4 {
		t.Fatalf("results: %v", body["results"])
	}
	if item := results[0].(map[string]any); item["neighbors"] == nil {
		t.Fatalf("healthy item failed: %v", item)
	}
	wantCodes := map[int]string{1: "not_found", 2: "invalid_argument", 3: "invalid_argument"}
	for i, code := range wantCodes {
		item := results[i].(map[string]any)
		if errCode(item) != code {
			t.Fatalf("item %d: error %v, want code %q", i, item["error"], code)
		}
		if e := item["error"].(map[string]any); e["message"] == "" {
			t.Fatalf("item %d: empty message", i)
		}
	}
	if body["errors"] != float64(3) {
		t.Fatalf("errors summary = %v, want 3", body["errors"])
	}
}

func TestNeighborsBatchKClamp(t *testing.T) {
	s, titles := newTestServer(t)
	h := s.Handler()
	_, stats := get(t, h, "/v1/stats")
	numValues := int(stats["num_values"].(float64))

	rec, body := post(t, h, "/v1/neighbors/batch",
		batchBody(t, []map[string]any{q(titles[0], 100000), q(titles[1], 0)}, 0))
	if rec.Code != http.StatusOK {
		t.Fatalf("clamp batch: code %d body %v", rec.Code, body)
	}
	results := body["results"].([]any)
	if k := results[0].(map[string]any)["k"].(float64); int(k) != numValues {
		t.Fatalf("oversized k clamped to %v, want num_values %d", k, numValues)
	}
	if k := results[1].(map[string]any)["k"].(float64); k != 10 {
		t.Fatalf("default k = %v, want 10", k)
	}
}

func TestNeighborsBatchCacheInteraction(t *testing.T) {
	s, titles := newTestServer(t)
	h := s.Handler()
	url := "/v1/neighbors?table=movies&column=title&text=" + queryEscape(titles[0]) + "&k=3"

	// A GET warms the shared cache; the batch endpoint hits it.
	get(t, h, url)
	_, body := post(t, h, "/v1/neighbors/batch",
		batchBody(t, []map[string]any{q(titles[0], 3), q(titles[1], 3)}, 0))
	results := body["results"].([]any)
	if results[0].(map[string]any)["cached"] != true {
		t.Fatal("batch did not hit the cache the GET warmed")
	}
	if results[1].(map[string]any)["cached"] != false {
		t.Fatal("fresh batch item claims to be cached")
	}
	if body["cached"] != float64(1) {
		t.Fatalf("cached summary = %v, want 1", body["cached"])
	}

	// And the batch's misses warm the cache for later GETs.
	if _, body := get(t, h, "/v1/neighbors?table=movies&column=title&text="+queryEscape(titles[1])+"&k=3"); body["cached"] != true {
		t.Fatal("GET did not hit the cache the batch filled")
	}
}

func TestNeighborsBatchEnvelopeErrors(t *testing.T) {
	s, _ := newTestServer(t)
	h := s.Handler()

	rec, body := post(t, h, "/v1/neighbors/batch", "{not json")
	if rec.Code != http.StatusBadRequest || errCode(body) != "malformed_json" {
		t.Fatalf("malformed JSON: code %d body %v", rec.Code, body)
	}
	rec, body = post(t, h, "/v1/neighbors/batch", `{"queries":[]}`)
	if rec.Code != http.StatusBadRequest || errCode(body) != "invalid_argument" {
		t.Fatalf("empty batch: code %d body %v", rec.Code, body)
	}
	rec, body = post(t, h, "/v1/neighbors/batch", `{"queries":[{"table":"movies","column":"title","text":"x"}],"default_k":-1}`)
	if rec.Code != http.StatusBadRequest || errCode(body) != "invalid_argument" {
		t.Fatalf("negative default_k: code %d body %v", rec.Code, body)
	}

	over := make([]map[string]any, maxBatchQueries+1)
	for i := range over {
		over[i] = q(fmt.Sprintf("title %d", i), 3)
	}
	rec, body = post(t, h, "/v1/neighbors/batch", batchBody(t, over, 0))
	if rec.Code != http.StatusBadRequest || errCode(body) != "batch_too_large" {
		t.Fatalf("oversized batch: code %d body %v", rec.Code, body)
	}

	rec, body = get(t, h, "/v1/neighbors/batch")
	if rec.Code != http.StatusMethodNotAllowed || errCode(body) != "method_not_allowed" {
		t.Fatalf("GET on batch: code %d body %v", rec.Code, body)
	}
}

// TestErrorEnvelopeAcrossEndpoints pins the unified error shape: every
// /v1/* error response is {"error":{"code","message"}} with a stable
// machine code.
func TestErrorEnvelopeAcrossEndpoints(t *testing.T) {
	s, titles := newTestServer(t)
	h := s.Handler()
	cases := []struct {
		name     string
		rec      int
		code     string
		method   string
		url, req string
	}{
		{"vector missing params", 400, "invalid_argument", "GET", "/v1/vector?table=movies", ""},
		{"vector unknown value", 404, "not_found", "GET", "/v1/vector?table=movies&column=title&text=nope", ""},
		{"neighbors bad k", 400, "invalid_argument", "GET", "/v1/neighbors?table=movies&column=title&text=" + queryEscape(titles[0]) + "&k=zero", ""},
		{"neighbors unknown value", 404, "not_found", "GET", "/v1/neighbors?table=movies&column=title&text=nope", ""},
		{"neighbors wrong method", 405, "method_not_allowed", "POST", "/v1/neighbors", "{}"},
		{"analogy malformed", 400, "malformed_json", "POST", "/v1/analogy", "{nope"},
		{"insert unknown table", 404, "not_found", "POST", "/v1/insert", `{"table":"nope","values":[]}`},
		{"insert malformed", 400, "malformed_json", "POST", "/v1/insert", "{nope"},
	}
	for _, tc := range cases {
		var rec int
		var body map[string]any
		if tc.method == "GET" {
			r, b := get(t, h, tc.url)
			rec, body = r.Code, b
		} else {
			r, b := post(t, h, tc.url, tc.req)
			rec, body = r.Code, b
		}
		if rec != tc.rec || errCode(body) != tc.code {
			t.Fatalf("%s: code %d body %v, want %d/%s", tc.name, rec, body, tc.rec, tc.code)
		}
		if e := body["error"].(map[string]any); e["message"] == "" {
			t.Fatalf("%s: empty message", tc.name)
		}
	}
}

// TestNeighborsBatchSlowLogEntry: a traced batch lands in the slow log
// as ONE aggregate entry carrying the batch size and the combined
// traversal stats.
func TestNeighborsBatchSlowLogEntry(t *testing.T) {
	s, titles := newTestServer(t)
	s.SlowLog().SetThreshold(time.Nanosecond)
	h := s.Handler()
	post(t, h, "/v1/neighbors/batch",
		batchBody(t, []map[string]any{q(titles[0], 3), q(titles[1], 3), q(titles[2], 3)}, 0))
	entries := s.SlowLog().Entries()
	if len(entries) != 1 {
		t.Fatalf("slowlog holds %d entries, want 1 aggregate", len(entries))
	}
	e := entries[0]
	if e.Endpoint != "/v1/neighbors/batch" || e.Batch != 3 {
		t.Fatalf("entry: %+v", e)
	}
	if e.WalkNs <= 0 || e.Nodes <= 0 {
		t.Fatalf("aggregate walk stats missing: %+v", e)
	}
}

// TestNeighborsCoreCachedZeroAlloc: the hard allocation bound on the
// batch core — a fully cached batch (the steady state of a hot working
// set) runs the whole core without a single heap allocation.
func TestNeighborsCoreCachedZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unreliable under the race detector")
	}
	s, titles := newTestServer(t)
	h := s.Handler()
	const n = 8
	queries := make([]batchQuery, n)
	for i := range queries {
		queries[i] = batchQuery{Table: "movies", Column: "title", Text: titles[i%len(titles)], K: 5}
		get(t, h, "/v1/neighbors?table=movies&column=title&text="+queryEscape(queries[i].Text)+"&k=5")
	}
	sc := neighborsScratchPool.Get().(*neighborsScratch)
	defer neighborsScratchPool.Put(sc)
	work := make([]batchQuery, n)
	allocs := testing.AllocsPerRun(500, func() {
		copy(work, queries) // the core clamps k in place; keep inputs pristine
		items, cs := s.neighborsCore(work, sc)
		if cs.hits != n {
			t.Fatalf("warmed batch missed: %+v", cs)
		}
		for i := range items {
			if !items[i].cached || items[i].body == nil {
				t.Fatalf("item %d not served from cache", i)
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("cached batch core allocated %.2f times per op, want 0", allocs)
	}
}

// TestQuantizedBatchServing drives the batch endpoint against an SQ8
// server: every item re-ranks exactly and matches its single-query
// twin.
func TestQuantizedBatchServing(t *testing.T) {
	s, titles := newQuantTestServer(t)
	h := s.Handler()
	queries := []map[string]any{q(titles[0], 3), q(titles[1], 3), q(titles[2], 3), q(titles[3], 3)}
	rec, body := post(t, h, "/v1/neighbors/batch", batchBody(t, queries, 0))
	if rec.Code != http.StatusOK {
		t.Fatalf("quantized batch: code %d body %v", rec.Code, body)
	}
	results := body["results"].([]any)
	for i, raw := range results {
		item := raw.(map[string]any)
		nbs, ok := item["neighbors"].([]any)
		if !ok || len(nbs) != 3 {
			t.Fatalf("item %d: %v", i, item)
		}
	}
	// Cache interplay also holds on the quantized path.
	if _, body := get(t, h, "/v1/neighbors?table=movies&column=title&text="+queryEscape(titles[0])+"&k=3"); body["cached"] != true {
		t.Fatal("quantized batch result not cached for the single path")
	}
}
