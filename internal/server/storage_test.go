package server

import (
	"encoding/json"
	"errors"
	"net/http"
	"os"
	"strings"
	"sync/atomic"
	"testing"

	retro "github.com/retrodb/retro"
	"github.com/retrodb/retro/internal/datagen"
	"github.com/retrodb/retro/internal/storage"
)

// flakySys is a storage syscall set whose fsync starts failing when the
// flag flips — a disk going bad under a running server.
type flakySys struct{ fail atomic.Bool }

func (f *flakySys) sys() *storage.Sys {
	return &storage.Sys{
		Fsync: func(file *os.File) error {
			if f.fail.Load() {
				return errors.New("injected disk failure")
			}
			return file.Sync()
		},
	}
}

// newStorageServer boots a server over a storage engine in dir, with the
// ANN path forced on like newTestServer.
func newStorageServer(t *testing.T, dir string, sys *storage.Sys) (*Server, []string) {
	t.Helper()
	w := datagen.TMDB(datagen.TMDBConfig{Movies: 50, Dim: 16, Seed: 1})
	cfg := retro.Defaults()
	cfg.ANNThreshold = 1
	eng, err := retro.OpenStorage(dir, w.DB, w.Embedding, retro.StorageOptions{Config: cfg, Sys: sys})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = eng.Close() })
	titles, err := w.DB.QueryText(`SELECT title FROM movies`)
	if err != nil || len(titles) == 0 {
		t.Fatalf("no seed titles (err=%v)", err)
	}
	return New(eng.Session(), Config{Engine: eng}), titles
}

// insertRow posts one movies row with the given id and title.
func insertRow(t *testing.T, s *Server, h http.Handler, id int, title string) (int, map[string]any) {
	t.Helper()
	cols := columnCount(t, s, "movies")
	row := makeRow(cols, map[int]any{0: id, 1: title})
	reqBody, _ := json.Marshal(map[string]any{"table": "movies", "values": row})
	rec, body := post(t, h, "/v1/insert", string(reqBody))
	return rec.Code, body
}

func TestStatsStorageSection(t *testing.T) {
	s, _ := newStorageServer(t, t.TempDir(), nil)
	h := s.Handler()

	_, body := get(t, h, "/v1/stats")
	st, ok := body["storage"].(map[string]any)
	if !ok {
		t.Fatalf("stats has no storage section: %v", body)
	}
	if st["epoch"] != float64(1) || st["pending_rows"] != float64(0) {
		t.Fatalf("fresh storage stats = %v", st)
	}

	if code, body := insertRow(t, s, h, 9001, "durable film"); code != http.StatusOK {
		t.Fatalf("insert: code %d body %v", code, body)
	}
	_, body = get(t, h, "/v1/stats")
	st = body["storage"].(map[string]any)
	if st["pending_rows"] != float64(1) {
		t.Fatalf("pending_rows after insert = %v", st["pending_rows"])
	}
	wal, ok := st["wal"].(map[string]any)
	if !ok || wal["last_seq"] != float64(1) {
		t.Fatalf("wal stats after insert = %v", st["wal"])
	}

	ck, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if ck.Skipped || ck.Rows != 1 {
		t.Fatalf("checkpoint = %+v", ck)
	}
	_, body = get(t, h, "/v1/stats")
	st = body["storage"].(map[string]any)
	if st["epoch"] != float64(2) || st["segments"] != float64(1) || st["pending_rows"] != float64(0) {
		t.Fatalf("storage stats after checkpoint = %v", st)
	}
	if _, ok := st["last_checkpoint"].(map[string]any); !ok {
		t.Fatalf("no last_checkpoint in %v", st)
	}
}

func TestCheckpointWithoutEngine(t *testing.T) {
	s, _ := newTestServer(t)
	ck, err := s.Checkpoint()
	if err != nil || !ck.Skipped {
		t.Fatalf("engine-less checkpoint = %+v, %v", ck, err)
	}
}

// TestInsertWALFailure flips the disk to failing mid-flight: the insert
// must be refused with wal_failed, the view must not advance, and the
// replica must drain via /readyz.
func TestInsertWALFailure(t *testing.T) {
	disk := &flakySys{}
	s, _ := newStorageServer(t, t.TempDir(), disk.sys())
	h := s.Handler()
	epochBefore := s.currentView().epoch
	valuesBefore := s.currentView().numValues

	disk.fail.Store(true)
	code, body := insertRow(t, s, h, 9002, "lost film")
	if code != http.StatusInternalServerError || errCode(body) != "wal_failed" {
		t.Fatalf("insert on failing disk: code %d body %v, want 500 wal_failed", code, body)
	}
	if v := s.currentView(); v.epoch != epochBefore || v.numValues != valuesBefore {
		t.Fatalf("view advanced past an unlogged insert: epoch %d→%d, values %d→%d",
			epochBefore, v.epoch, valuesBefore, v.numValues)
	}
	if !s.session().Stale() {
		t.Fatal("session not stale after WAL failure")
	}
	if rec, body := get(t, h, "/readyz"); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz on stale session: code %d body %v, want 503", rec.Code, body)
	}
}

func TestStorageMetricsExported(t *testing.T) {
	s, _ := newStorageServer(t, t.TempDir(), nil)
	out := scrape(t, s)
	for _, name := range []string{
		"retro_wal_appends_total", "retro_wal_syncs_total", "retro_wal_bytes",
		"retro_wal_last_seq", "retro_storage_epoch", "retro_storage_segments",
		"retro_storage_pending_rows", "retro_checkpoints_total",
		"retro_storage_compactions_total",
	} {
		if !strings.Contains(out, name) {
			t.Errorf("metrics output missing %s", name)
		}
	}
}
