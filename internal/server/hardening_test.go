package server

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	retro "github.com/retrodb/retro"
	"github.com/retrodb/retro/internal/datagen"
)

func TestMaxBodyBytesRejectsOversizedInsert(t *testing.T) {
	w := datagen.TMDB(datagen.TMDBConfig{Movies: 50, Dim: 16, Seed: 1})
	cfg := retro.Defaults()
	cfg.ANNThreshold = 1
	sess, err := retro.NewSession(w.DB, w.Embedding, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := New(sess, Config{MaxBodyBytes: 256})
	h := s.Handler()

	big := `{"table":"movies","values":[9001,"` + strings.Repeat("x", 512) + `",null,null,null,null,null,null]}`
	rec, body := post(t, h, "/v1/insert", big)
	if rec.Code != http.StatusRequestEntityTooLarge || errCode(body) != "request_too_large" {
		t.Fatalf("oversized insert: code %d body %v, want 413 request_too_large", rec.Code, body)
	}

	rec, body = post(t, h, "/v1/neighbors/batch", `{"queries":[{"text":"`+strings.Repeat("y", 512)+`"}]}`)
	if rec.Code != http.StatusRequestEntityTooLarge || errCode(body) != "request_too_large" {
		t.Fatalf("oversized batch: code %d body %v, want 413 request_too_large", rec.Code, body)
	}

	// Small requests still pass the limiter and reach the handler.
	cols := columnCount(t, s, "movies")
	row := makeRow(cols, map[int]any{0: 9002, 1: "tiny"})
	if code, body := insertRow(t, s, h, 9002, "tiny"); code != http.StatusOK {
		t.Fatalf("small insert under limit: code %d body %v (row %v)", code, body, row)
	}
}

func TestReadOnlyRejectsInsert(t *testing.T) {
	w := datagen.TMDB(datagen.TMDBConfig{Movies: 50, Dim: 16, Seed: 1})
	cfg := retro.Defaults()
	cfg.ANNThreshold = 1
	sess, err := retro.NewSession(w.DB, w.Embedding, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := New(sess, Config{ReadOnly: true})
	h := s.Handler()

	rec, body := post(t, h, "/v1/insert", `{"table":"movies","values":[1,"x"]}`)
	if rec.Code != http.StatusForbidden || errCode(body) != "read_only" {
		t.Fatalf("read-only insert: code %d body %v, want 403 read_only", rec.Code, body)
	}

	// Reads are unaffected.
	if rec, _ := get(t, h, "/healthz"); rec.Code != http.StatusOK {
		t.Fatalf("read-only healthz: %d", rec.Code)
	}
}

func TestPanicRecoveryMiddleware(t *testing.T) {
	s, _ := newTestServer(t)
	h := s.recoverPanics(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("boom")
	}))

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/explode", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panicking handler: code %d, want 500", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), `"internal"`) {
		t.Fatalf("panic response not the structured envelope: %s", rec.Body.String())
	}

	if out := scrape(t, s); !strings.Contains(out, "retro_http_panics_total 1") {
		t.Fatalf("panic counter not exported:\n%s", grepMetric(out, "retro_http_panics_total"))
	}

	// http.ErrAbortHandler must pass through untouched (it is the
	// sanctioned way to abort a response).
	aborter := s.recoverPanics(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic(http.ErrAbortHandler)
	}))
	defer func() {
		if recover() != http.ErrAbortHandler {
			t.Fatal("recoverPanics swallowed http.ErrAbortHandler")
		}
	}()
	aborter.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/", nil))
	t.Fatal("aborting handler did not panic through")
}

func grepMetric(out, name string) string {
	var hits []string
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, name) {
			hits = append(hits, line)
		}
	}
	return strings.Join(hits, "\n")
}
