package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/retrodb/retro/internal/ann"
	"github.com/retrodb/retro/internal/obs"
)

// scrape fetches /metrics off the admin handler and returns the raw
// exposition.
func scrape(t *testing.T, s *Server) string {
	t.Helper()
	rec := httptest.NewRecorder()
	s.AdminHandler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics: status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type %q", ct)
	}
	return rec.Body.String()
}

// TestMetricsExpositionValid drives real traffic (hits, misses, a miss
// on a missing key, an insert) and then checks the full exposition is
// structurally valid Prometheus text format and covers every metric
// group the telemetry layer promises.
func TestMetricsExpositionValid(t *testing.T) {
	s, titles := newTestServer(t)
	h := s.Handler()

	url := "/v1/neighbors?table=movies&column=title&text=" + queryEscape(titles[0]) + "&k=5"
	for i := 0; i < 3; i++ { // one miss, two hits
		rec, _ := get(t, h, url)
		if rec.Code != http.StatusOK {
			t.Fatalf("neighbors: status %d", rec.Code)
		}
	}
	get(t, h, "/v1/neighbors?table=movies&column=title&text=no-such-title&k=5")
	rec, _ := post(t, h, "/v1/insert",
		`{"table":"movies","values":[9001,"telemetry premiere","english",null,null,null,null,null]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("insert: status %d body %s", rec.Code, rec.Body.String())
	}

	out := scrape(t, s)
	if err := obs.ValidateExposition(strings.NewReader(out)); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, out)
	}
	for _, want := range []string{
		`retro_query_stage_duration_seconds_bucket{stage="cache_lookup"`,
		`retro_query_stage_duration_seconds_bucket{stage="graph_walk"`,
		`retro_query_stage_duration_seconds_bucket{stage="rerank"`,
		`retro_query_stage_duration_seconds_bucket{stage="encode"`,
		"retro_ann_hops_count",
		"retro_ann_nodes_visited_count",
		`retro_http_requests_total{endpoint="/v1/neighbors"}`,
		`retro_http_request_duration_seconds_bucket{endpoint="/v1/neighbors"`,
		"retro_insert_rows_count 1",
		"retro_inserts_total 1",
		"retro_repair_duration_seconds_count 1",
		"retro_repair_nodes_count 1",
		"retro_view_epoch 1",
		"retro_view_swaps_total 1",
		"retro_view_publish_duration_seconds_count 2",
		"retro_cache_hits_total 2",
		"retro_session_stale 0",
		"retro_num_values",
		`retro_store_bytes{component="matrix"}`,
		`retro_store_bytes{component="norms"}`,
		`retro_store_bytes{component="graph_vectors"}`,
		`retro_store_bytes{component="codes"}`,
		`retro_store_bytes{component="adjacency"}`,
		`retro_store_bytes{component="total"}`,
		"retro_goroutines",
		`retro_build_info{version="dev"`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestReadyz covers the readiness ladder: ready after boot, 503 while
// the session is stale, ready again after a successful write clears
// the staleness.
func TestReadyz(t *testing.T) {
	s, _ := newTestServer(t)
	h := s.Handler()

	rec, body := get(t, h, "/readyz")
	if rec.Code != http.StatusOK || body["ready"] != true {
		t.Fatalf("fresh server not ready: code %d body %v", rec.Code, body)
	}

	s.Session().MarkStale()
	rec, body = get(t, h, "/readyz")
	if rec.Code != http.StatusServiceUnavailable || body["ready"] != false {
		t.Fatalf("stale session still ready: code %d body %v", rec.Code, body)
	}
	if _, ok := body["reason"].(string); !ok {
		t.Fatalf("no reason in unready payload: %v", body)
	}
	// The admin handler serves the same probe.
	rec2 := httptest.NewRecorder()
	s.AdminHandler().ServeHTTP(rec2, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rec2.Code != http.StatusServiceUnavailable {
		t.Fatalf("admin readyz: code %d", rec2.Code)
	}

	// A successful write re-solves from scratch and clears the staleness.
	rec, _ = post(t, h, "/v1/insert",
		`{"table":"movies","values":[9002,"recovery premiere","english",null,null,null,null,null]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("insert: status %d body %s", rec.Code, rec.Body.String())
	}
	rec, body = get(t, h, "/readyz")
	if rec.Code != http.StatusOK || body["ready"] != true {
		t.Fatalf("recovered server not ready: code %d body %v", rec.Code, body)
	}
	if got := scrape(t, s); !strings.Contains(got, "retro_stale_transitions_total 1") {
		t.Fatalf("stale transition not counted:\n%s", got)
	}
}

// TestSlowQueryLogRecordsTracedQuery sets a zero-distance threshold so
// every query lands in the slow log, then checks the recorded entry
// carries the per-stage breakdown and the /debug/slowlog payload is
// well-formed.
func TestSlowQueryLogRecordsTracedQuery(t *testing.T) {
	s, titles := newTestServer(t)
	s.SlowLog().SetThreshold(time.Nanosecond)
	h := s.Handler()

	url := "/v1/neighbors?table=movies&column=title&text=" + queryEscape(titles[0]) + "&k=5"
	get(t, h, url) // miss: traced with walk stats
	get(t, h, url) // hit: traced as cached

	entries := s.SlowLog().Entries()
	if len(entries) != 2 {
		t.Fatalf("slowlog holds %d entries, want 2", len(entries))
	}
	hit, miss := entries[0], entries[1] // newest first
	if !hit.Cached || miss.Cached {
		t.Fatalf("cached flags wrong: hit=%+v miss=%+v", hit, miss)
	}
	if miss.Endpoint != "/v1/neighbors" || miss.Table != "movies" || miss.K != 5 {
		t.Fatalf("miss entry fields: %+v", miss)
	}
	if miss.WalkNs <= 0 || miss.Nodes <= 0 || miss.Hops <= 0 {
		t.Fatalf("miss entry has no traversal stats: %+v", miss)
	}
	if hit.WalkNs != 0 || hit.Nodes != 0 {
		t.Fatalf("cached entry reports a graph walk: %+v", hit)
	}
	if miss.TotalNs <= 0 || hit.TotalNs <= 0 {
		t.Fatalf("total latency missing: hit=%+v miss=%+v", hit, miss)
	}

	rec := httptest.NewRecorder()
	s.AdminHandler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/slowlog", nil))
	var payload struct {
		Recorded int64           `json:"recorded"`
		Entries  []obs.SlowEntry `json:"entries"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &payload); err != nil {
		t.Fatalf("slowlog payload: %v\n%s", err, rec.Body.String())
	}
	if payload.Recorded != 2 || len(payload.Entries) != 2 {
		t.Fatalf("slowlog payload: %+v", payload)
	}
}

// TestInstrumentedCachedPathZeroAlloc proves the tentpole's hard
// constraint on the hit side: the cache-hit core plus everything the
// instrumented handler adds around it (stage histograms, slow-query
// check) stays allocation-free.
func TestInstrumentedCachedPathZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unreliable under the race detector")
	}
	s, titles := newTestServer(t)
	h := s.Handler()
	url := "/v1/neighbors?table=movies&column=title&text=" + queryEscape(titles[0]) + "&k=5"
	if rec, _ := get(t, h, url); rec.Code != http.StatusOK {
		t.Fatalf("warm: status %d", rec.Code)
	}
	epoch := s.currentView().epoch
	tel := s.tel
	allocs := testing.AllocsPerRun(500, func() {
		start := time.Now()
		body, ok := s.lookupNeighbors("movies", "title", titles[0], 5, epoch)
		if !ok || body == nil {
			t.Fatal("cache miss on warmed key")
		}
		dur := time.Since(start)
		tel.stageCache.ObserveDuration(dur)
		tel.stageEncode.ObserveDuration(dur)
		if tel.slow.Slow(time.Since(start)) {
			t.Fatal("default threshold flagged a cache hit as slow")
		}
	})
	if allocs != 0 {
		t.Fatalf("instrumented cached path allocated %.2f times per op, want 0", allocs)
	}
}

// TestInstrumentedUncachedTopKZeroAlloc proves the miss side: the ANN
// TopK with stats collection plus the histogram records the handler
// performs stays allocation-free (response encoding aside, which
// allocates the body by design).
func TestInstrumentedUncachedTopKZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unreliable under the race detector")
	}
	s, titles := newTestServer(t)
	v := s.acquireView()
	defer v.release()
	store := v.store
	id, ok := store.ID(storeKey("movies", "title", titles[0]))
	if !ok {
		t.Fatal("seed title not in store")
	}
	query := store.Vector(id)
	skip := func(x int) bool { return x == id }
	tel := s.tel
	var st ann.SearchStats
	dst := store.TopKAppendStats(query, 5, skip, nil, &st) // warm pools
	allocs := testing.AllocsPerRun(300, func() {
		dst = store.TopKAppendStats(query, 5, skip, dst[:0], &st)
		tel.stageWalk.Observe(float64(st.WalkNs) / 1e9)
		tel.stageRerank.Observe(float64(st.RerankNs) / 1e9)
		tel.annHops.Observe(float64(st.Hops))
		tel.annNodes.Observe(float64(st.Nodes))
	})
	if allocs != 0 {
		t.Fatalf("instrumented TopK allocated %.2f times per op, want 0", allocs)
	}
	if st.Nodes == 0 || len(dst) == 0 {
		t.Fatalf("stats or results empty: %+v, %d results", st, len(dst))
	}
}

// TestSnapshotSaveInstrumented checks WriteSnapshot lands in the save
// histogram.
func TestSnapshotSaveInstrumented(t *testing.T) {
	s, _ := newTestServer(t)
	var buf bytes.Buffer
	if err := s.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if got := scrape(t, s); !strings.Contains(got, "retro_snapshot_save_duration_seconds_count 1") {
		t.Fatalf("snapshot save not recorded:\n%s", got)
	}
}
