// The batch-first neighbours path. POST /v1/neighbors/batch answers Q
// queries in one request: every item probes the shared cache, and all
// misses traverse the index TOGETHER through the store's TopKMany
// engine (one coalesced upper-layer descent, interleaved layer-0 beams
// — see internal/ann/batch.go), which is substantially cheaper per
// query than Q single walks. The legacy single-query GET /v1/neighbors
// is a thin wrapper over the same core, so both faces share one cache
// keyspace, one telemetry path and one result encoding: a successful
// batch item is byte-for-byte the single-query response body.
package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"github.com/retrodb/retro/internal/ann"
	"github.com/retrodb/retro/internal/embed"
	"github.com/retrodb/retro/internal/obs"
)

// maxBatchQueries bounds one batch request. The limit exists for the
// same reason as the k clamp: a single unauthenticated request must not
// be able to demand unbounded work. 256 queries is far past the point
// where per-query batching gains flatten (the engine blocks at
// batchBlock internally), so the cap costs legitimate clients nothing —
// they pipeline multiple requests instead.
const maxBatchQueries = 256

// batchQuery is one query of a batch request. K = 0 means "use the
// envelope's default_k" (which itself defaults to 10).
type batchQuery struct {
	Table  string `json:"table"`
	Column string `json:"column"`
	Text   string `json:"text"`
	K      int    `json:"k,omitempty"`
}

// neighborsBatchRequest is the POST /v1/neighbors/batch envelope.
type neighborsBatchRequest struct {
	Queries  []batchQuery `json:"queries"`
	DefaultK int          `json:"default_k"`
}

// batchItem is one query's outcome from the neighbours core: either the
// pre-encoded response body (exactly the single-query payload, trailing
// newline included) or a structured per-item error.
type batchItem struct {
	body   []byte
	cached bool
	status int    // HTTP status the single-query wrapper maps this to
	code   string // machine error code when body is nil
	msg    string
}

func (it *batchItem) fail(status int, code, msg string) {
	it.body, it.cached = nil, false
	it.status, it.code, it.msg = status, code, msg
}

// coreStats aggregates what one core invocation did, for the slow-query
// log and the batch envelope's summary fields.
type coreStats struct {
	cacheNs int64
	hits    int // answered from the cache
	walked  int // answered by the batched traversal
	failed  int // per-item errors
	walk    ann.SearchStats
}

// neighborsScratch recycles every per-batch slice the core needs, so a
// steady-state batch (and in particular a fully cached one) runs
// without allocating. The skip closure is created once per scratch and
// rebound through the ids slice, not per call.
type neighborsScratch struct {
	queries []batchQuery
	items   []batchItem
	qs      [][]float64
	ks      []int
	ids     []int
	slots   []int
	dst     [][]embed.Match
	skip    func(qi, id int) bool
}

var neighborsScratchPool = sync.Pool{New: func() any {
	sc := new(neighborsScratch)
	// Each query excludes its own value from its neighbour list, exactly
	// like the single-query path's skip.
	sc.skip = func(qi, id int) bool { return id == sc.ids[qi] }
	return sc
}}

// neighborsCore answers one batch of neighbours queries: a per-item
// cache probe, ONE batched traversal over the misses, then per-item
// encoding and cache fill. Both /v1/neighbors faces sit on top of this.
// Queries may be mutated (k clamping); items aliases sc.items.
func (s *Server) neighborsCore(queries []batchQuery, sc *neighborsScratch) ([]batchItem, coreStats) {
	t := s.tel
	var cs coreStats

	if cap(sc.items) < len(queries) {
		sc.items = make([]batchItem, len(queries))
	}
	items := sc.items[:len(queries)]
	for i := range items {
		items[i] = batchItem{}
	}

	// Phase 1: validate and probe the cache under the current epoch.
	v := s.currentView()
	cacheStart := time.Now()
	misses := 0
	for i := range queries {
		q := &queries[i]
		it := &items[i]
		if q.Table == "" || q.Column == "" || q.Text == "" {
			it.fail(http.StatusBadRequest, errInvalidArgument, "table, column and text are required")
			cs.failed++
			continue
		}
		if q.K < 0 {
			it.fail(http.StatusBadRequest, errInvalidArgument, "k must be a positive integer")
			cs.failed++
			continue
		}
		// Clamp before allocating anything k-sized: one unauthenticated
		// request must not demand a multi-gigabyte result buffer.
		if q.K > v.numValues {
			q.K = v.numValues
		}
		if body, ok := s.lookupNeighbors(q.Table, q.Column, q.Text, q.K, v.epoch); ok {
			it.body, it.cached, it.status = body, true, http.StatusOK
			cs.hits++
			continue
		}
		misses++
	}
	cacheDur := time.Since(cacheStart)
	t.stageCache.ObserveDuration(cacheDur)
	cs.cacheNs = cacheDur.Nanoseconds()
	if misses == 0 {
		return items, cs
	}

	// Phase 2: pin a view and resolve every miss against its store. The
	// pinned view may be one epoch newer than the probed one if an insert
	// raced us; results and cache fills are stamped with the pinned
	// epoch, so they are consistent with what was actually searched.
	pv := s.acquireView()
	defer pv.release()
	store := pv.store
	qs, ks, ids, slots := sc.qs[:0], sc.ks[:0], sc.ids[:0], sc.slots[:0]
	for i := range queries {
		it := &items[i]
		if it.body != nil || it.code != "" {
			continue
		}
		q := &queries[i]
		id, ok := store.ID(storeKey(q.Table, q.Column, q.Text))
		if !ok {
			it.fail(http.StatusNotFound, errNotFound,
				fmt.Sprintf("no value %q in %s.%s", q.Text, q.Table, q.Column))
			cs.failed++
			continue
		}
		qs = append(qs, store.Vector(id))
		ks = append(ks, q.K)
		ids = append(ids, id)
		slots = append(slots, i)
	}
	sc.qs, sc.ks, sc.ids, sc.slots = qs, ks, ids, slots
	if len(qs) == 0 {
		return items, cs
	}
	cs.walked = len(qs)

	// Phase 3: one traversal for the whole miss set.
	var st ann.SearchStats
	sc.dst = store.TopKManyAppendStats(qs, ks, sc.skip, sc.dst, &st)
	t.stageWalk.Observe(float64(st.WalkNs) / 1e9)
	t.stageRerank.Observe(float64(st.RerankNs) / 1e9)
	t.annHops.Observe(float64(st.Hops))
	t.annNodes.Observe(float64(st.Nodes))
	if st.Reranked > 0 {
		t.annReranked.Observe(float64(st.Reranked))
	}
	cs.walk = st

	// Phase 4: per-item encode and cache fill. The cache stores the
	// cached:true variant (suffix patch — the payload is encoded once);
	// a hit writes those bytes verbatim.
	for bi, i := range slots {
		q := &queries[i]
		it := &items[i]
		it.body = encodeBody(neighborsResponse{
			Query:     valueRef{Table: q.Table, Column: q.Column, Text: q.Text},
			K:         q.K,
			Neighbors: toMatches(sc.dst[bi]),
		})
		it.status = http.StatusOK
		if s.cache != nil {
			if hitBody := cachedVariant(it.body); hitBody != nil {
				kb := keyScratchPool.Get().(*keyScratch)
				kb.buf = appendNeighborsKey(kb.buf[:0], q.Table, q.Column, q.Text, q.K)
				s.cache.Put(kb.buf, pv.epoch, hitBody)
				keyScratchPool.Put(kb)
			}
		}
	}
	return items, cs
}

// handleNeighbors is the legacy single-query GET, now a batch of one
// through neighborsCore: same cache keys, same traversal, same bytes on
// the wire as before the batch endpoint existed.
func (s *Server) handleNeighbors(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	ref, err := refFromQuery(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, errInvalidArgument, err.Error())
		return
	}
	k := 10
	if ks := r.URL.Query().Get("k"); ks != "" {
		k, err = strconv.Atoi(ks)
		if err != nil || k <= 0 {
			writeError(w, http.StatusBadRequest, errInvalidArgument, "k must be a positive integer")
			return
		}
	}
	sc := neighborsScratchPool.Get().(*neighborsScratch)
	defer neighborsScratchPool.Put(sc)
	sc.queries = append(sc.queries[:0], batchQuery{Table: ref.Table, Column: ref.Column, Text: ref.Text, K: k})
	items, cs := s.neighborsCore(sc.queries, sc)
	it := &items[0]
	if it.body == nil {
		writeError(w, it.status, it.code, it.msg)
		return
	}
	t := s.tel
	encodeStart := time.Now()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(it.body)
	encodeDur := time.Since(encodeStart)
	t.stageEncode.ObserveDuration(encodeDur)
	if total := time.Since(start); t.slow.Slow(total) {
		t.slow.Record(obs.SlowEntry{
			Time: start, Endpoint: "/v1/neighbors",
			Table: ref.Table, Column: ref.Column, Text: ref.Text,
			K: sc.queries[0].K, Cached: it.cached,
			TotalNs: total.Nanoseconds(), CacheNs: cs.cacheNs,
			WalkNs: cs.walk.WalkNs, RerankNs: cs.walk.RerankNs,
			EncodeNs: encodeDur.Nanoseconds(),
			Hops:     cs.walk.Hops, Nodes: cs.walk.Nodes, Reranked: cs.walk.Reranked,
		})
	}
}

// handleNeighborsBatch answers POST /v1/neighbors/batch. The response
// is {"results":[...],"queries":Q,"cached":H,"errors":E}: results[i]
// answers queries[i] — either a single-query response object (verbatim,
// so a batch of one is byte-compatible with GET /v1/neighbors) or a
// per-item {"error":{"code","message"}}. Per-item failures do not fail
// the batch; the HTTP status stays 200 whenever the envelope itself was
// valid.
func (s *Server) handleNeighborsBatch(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.limitBody(w, r)
	var req neighborsBatchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeDecodeError(w, err)
		return
	}
	if len(req.Queries) == 0 {
		writeError(w, http.StatusBadRequest, errInvalidArgument, `"queries" must contain at least one query`)
		return
	}
	if len(req.Queries) > maxBatchQueries {
		writeError(w, http.StatusBadRequest, errBatchTooLarge,
			fmt.Sprintf("batch of %d queries exceeds the limit of %d", len(req.Queries), maxBatchQueries))
		return
	}
	defaultK := req.DefaultK
	if defaultK < 0 {
		writeError(w, http.StatusBadRequest, errInvalidArgument, "default_k must be a positive integer")
		return
	}
	if defaultK == 0 {
		defaultK = 10
	}
	for i := range req.Queries {
		if req.Queries[i].K == 0 {
			req.Queries[i].K = defaultK
		}
	}

	sc := neighborsScratchPool.Get().(*neighborsScratch)
	defer neighborsScratchPool.Put(sc)
	items, cs := s.neighborsCore(req.Queries, sc)

	// Splice the pre-encoded item bodies into the envelope verbatim
	// (minus their trailing newline) instead of re-marshalling them.
	t := s.tel
	encodeStart := time.Now()
	var buf bytes.Buffer
	buf.WriteString(`{"results":[`)
	for i := range items {
		if i > 0 {
			buf.WriteByte(',')
		}
		it := &items[i]
		if it.body != nil {
			buf.Write(it.body[:len(it.body)-1])
			continue
		}
		eb := encodeBody(errorEnvelope{Error: apiError{Code: it.code, Message: it.msg}})
		buf.Write(eb[:len(eb)-1])
	}
	fmt.Fprintf(&buf, "],\"queries\":%d,\"cached\":%d,\"errors\":%d}\n",
		len(items), cs.hits, cs.failed)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(buf.Bytes())
	encodeDur := time.Since(encodeStart)
	t.stageEncode.ObserveDuration(encodeDur)
	if total := time.Since(start); t.slow.Slow(total) {
		t.slow.Record(obs.SlowEntry{
			Time: start, Endpoint: "/v1/neighbors/batch",
			Batch: len(items), Cached: cs.walked == 0 && cs.hits > 0,
			TotalNs: total.Nanoseconds(), CacheNs: cs.cacheNs,
			WalkNs: cs.walk.WalkNs, RerankNs: cs.walk.RerankNs,
			EncodeNs: encodeDur.Nanoseconds(),
			Hops:     cs.walk.Hops, Nodes: cs.walk.Nodes, Reranked: cs.walk.Reranked,
		})
	}
}
