// Telemetry wiring: the server's obs.Registry, the per-stage tracing
// instruments the read path records into, the slow-query log, and the
// admin handler that exposes all of it.
//
// Everything is registered once, in newTelemetry, before the first
// request; after that the request path touches only pre-registered
// atomic instruments — no lock, no allocation, no map lookup. Gauges
// whose source of truth already lives in server atomics (view epoch,
// cache occupancy, staleness) are scrape-time closures, so the hot path
// pays nothing to keep them fresh.
package server

import (
	"log/slog"
	"net/http"
	"sync/atomic"
	"time"

	retro "github.com/retrodb/retro"
	"github.com/retrodb/retro/internal/embed"
	"github.com/retrodb/retro/internal/obs"
)

// telemetry bundles the server's metric handles. Fields are plain
// pointers into the registry; handlers use them directly.
type telemetry struct {
	reg  *obs.Registry
	slow *obs.SlowLog
	log  *slog.Logger

	// Read-path stage latencies (seconds), one series per stage.
	stageCache  *obs.Histogram
	stageWalk   *obs.Histogram
	stageRerank *obs.Histogram
	stageEncode *obs.Histogram

	// ANN traversal effort per uncached query.
	annHops     *obs.Histogram
	annNodes    *obs.Histogram
	annReranked *obs.Histogram

	// Write path and lifecycle.
	insertRows       *obs.Histogram
	insertsTotal     *obs.Counter
	insertErrors     *obs.Counter
	panics           *obs.Counter
	repairDur        *obs.Histogram
	repairNodes      *obs.Histogram
	repairFailures   *obs.Counter
	staleTransitions *obs.Counter
	publishDur       *obs.Histogram
	snapshotSave     *obs.Histogram
	checkpointDur    *obs.Histogram // nil without a storage engine

	// staleSeen is the edge detector behind staleTransitions: staleness
	// is a flag the session flips internally (failed repair, operator
	// MarkStale), so every observation point reports the current state
	// through noteStale and the flip is counted exactly once.
	staleSeen atomic.Bool
}

// noteStale records an observation of the session's staleness and
// reports whether this observation was the false→true transition.
func (t *telemetry) noteStale(stale bool) bool {
	if stale {
		if t.staleSeen.CompareAndSwap(false, true) {
			t.staleTransitions.Inc()
			return true
		}
		return false
	}
	t.staleSeen.Store(false)
	return false
}

// newTelemetry registers every server metric. Called once from New,
// before the first view is published, so no request can race
// registration.
func newTelemetry(s *Server, cfg Config) *telemetry {
	reg := obs.NewRegistry()
	capacity := cfg.SlowLogSize
	if capacity == 0 {
		capacity = 128
	}
	t := &telemetry{
		reg:  reg,
		slow: obs.NewSlowLog(capacity, cfg.SlowQueryThreshold),
		log:  cfg.Logger,
	}
	if t.log == nil {
		t.log = slog.Default()
	}

	stage := func(name string) *obs.Histogram {
		return reg.Histogram("retro_query_stage_duration_seconds",
			"Read-path latency per stage, in seconds.",
			`stage="`+name+`"`, obs.DurationBuckets())
	}
	t.stageCache = stage("cache_lookup")
	t.stageWalk = stage("graph_walk")
	t.stageRerank = stage("rerank")
	t.stageEncode = stage("encode")

	t.annHops = reg.Histogram("retro_ann_hops",
		"Candidate expansions (greedy descent steps plus beam pops) per ANN query.",
		"", obs.CountBuckets())
	t.annNodes = reg.Histogram("retro_ann_nodes_visited",
		"Distinct nodes scored by the layer-0 beam per ANN query.",
		"", obs.CountBuckets())
	t.annReranked = reg.Histogram("retro_ann_reranked",
		"Quantized candidates re-scored with exact distances per ANN query.",
		"", obs.CountBuckets())

	t.insertRows = reg.Histogram("retro_insert_rows",
		"Rows per insert batch.", "", obs.CountBuckets())
	t.insertsTotal = reg.Counter("retro_inserts_total",
		"Insert requests that reached the commit path.", "")
	t.insertErrors = reg.Counter("retro_insert_errors_total",
		"Insert requests that returned an error.", "")
	t.panics = reg.Counter("retro_http_panics_total",
		"Handler panics converted into the structured internal error.", "")
	t.repairDur = reg.Histogram("retro_repair_duration_seconds",
		"Embedding repair wall time per successful insert.", "", obs.DurationBuckets())
	t.repairNodes = reg.Histogram("retro_repair_nodes",
		"Nodes re-solved per embedding repair.", "", obs.CountBuckets())
	t.repairFailures = reg.Counter("retro_repair_failures_total",
		"Repairs that failed after rows were committed, leaving the session stale.", "")
	t.staleTransitions = reg.Counter("retro_stale_transitions_total",
		"Times the session entered the stale state.", "")
	t.publishDur = reg.Histogram("retro_view_publish_duration_seconds",
		"Time to warm the index, freeze the store and publish a serving view.",
		"", obs.DurationBuckets())
	t.snapshotSave = reg.Histogram("retro_snapshot_save_duration_seconds",
		"Time to serialise a session snapshot.", "", obs.DurationBuckets())

	// Scrape-time gauges over state the server already maintains.
	reg.GaugeFunc("retro_view_epoch",
		"Epoch of the published serving view (-1 before the first publish).", "",
		func() float64 {
			if v := s.view.Load(); v != nil {
				return float64(v.epoch)
			}
			return -1
		})
	reg.GaugeFunc("retro_num_values",
		"Text values in the published serving view.", "",
		func() float64 {
			if v := s.view.Load(); v != nil {
				return float64(v.numValues)
			}
			return 0
		})
	reg.GaugeFunc("retro_dim",
		"Embedding dimensionality of the published serving view.", "",
		func() float64 {
			if v := s.view.Load(); v != nil {
				return float64(v.dim)
			}
			return 0
		})
	reg.CounterFunc("retro_view_swaps_total",
		"Serving-view publications that replaced an older view.", "",
		func() float64 { return float64(s.swaps.Load()) })
	reg.CounterFunc("retro_views_drained_total",
		"Retired serving views whose in-flight readers have fully drained.", "",
		func() float64 { return float64(s.drained.Load()) })
	reg.GaugeFunc("retro_views_draining",
		"Retired serving views still waiting for readers to drain.", "",
		func() float64 { return float64(s.retiredWaiting.Load()) })
	reg.GaugeFunc("retro_session_stale",
		"1 when a failed repair left the model behind the database, else 0.", "",
		func() float64 {
			stale := s.session().Stale()
			t.noteStale(stale)
			if stale {
				return 1
			}
			return 0
		})
	reg.GaugeFunc("retro_uptime_seconds",
		"Seconds since the server was constructed.", "",
		func() float64 { return time.Since(s.started).Seconds() })

	// Resident store payload by component — the bytes the precision mode
	// (f32 vs f64) moves. One series per component; each closure reads
	// the published view at scrape time (MemoryStats is a handful of
	// length reads, cheap enough to evaluate per series).
	storeBytes := func(pick func(embed.MemoryStats) int64) func() float64 {
		return func() float64 {
			v := s.view.Load()
			if v == nil {
				return 0
			}
			return float64(pick(v.store.MemoryStats()))
		}
	}
	reg.GaugeFunc("retro_store_bytes",
		"Resident store payload bytes by component.", `component="matrix"`,
		storeBytes(func(m embed.MemoryStats) int64 { return m.MatrixBytes }))
	reg.GaugeFunc("retro_store_bytes", "", `component="norms"`,
		storeBytes(func(m embed.MemoryStats) int64 { return m.NormBytes }))
	reg.GaugeFunc("retro_store_bytes", "", `component="graph_vectors"`,
		storeBytes(func(m embed.MemoryStats) int64 { return m.GraphVecBytes }))
	reg.GaugeFunc("retro_store_bytes", "", `component="codes"`,
		storeBytes(func(m embed.MemoryStats) int64 { return m.CodeBytes }))
	reg.GaugeFunc("retro_store_bytes", "", `component="adjacency"`,
		storeBytes(func(m embed.MemoryStats) int64 { return m.AdjacencyBytes }))
	reg.GaugeFunc("retro_store_bytes", "", `component="total"`,
		storeBytes(func(m embed.MemoryStats) int64 { return m.TotalBytes }))

	if s.cache != nil {
		reg.CounterFunc("retro_cache_hits_total",
			"Query-cache hits.", "",
			func() float64 { hits, _ := s.cache.Counts(); return float64(hits) })
		reg.CounterFunc("retro_cache_misses_total",
			"Query-cache misses.", "",
			func() float64 { _, misses := s.cache.Counts(); return float64(misses) })
		reg.GaugeFunc("retro_cache_entries",
			"Entries resident in the query cache.", "",
			func() float64 { length, _, _, _, _ := s.cache.Stats(); return float64(length) })
		reg.GaugeFunc("retro_cache_capacity",
			"Query-cache capacity in entries.", "",
			func() float64 { _, capacity, _, _, _ := s.cache.Stats(); return float64(capacity) })
	}
	reg.CounterFunc("retro_slow_queries_total",
		"Queries recorded by the slow-query log.", "",
		func() float64 { return float64(t.slow.Recorded()) })

	if cfg.Engine != nil {
		// Storage-engine durability counters. The engine keeps these under
		// its own mutex; scrape-time closures read a consistent snapshot
		// without the request path paying anything. The closures resolve
		// the engine per scrape: a follower re-sync swaps it, and a scrape
		// racing the swap must read the live one, not a closed handle.
		engStats := func() retro.StorageStats {
			if e := s.Engine(); e != nil {
				return e.Stats()
			}
			return retro.StorageStats{}
		}
		reg.CounterFunc("retro_wal_appends_total",
			"Record batches appended to the write-ahead log.", "",
			func() float64 { return float64(engStats().WAL.Appends) })
		reg.CounterFunc("retro_wal_syncs_total",
			"fsync calls issued by the write-ahead log.", "",
			func() float64 { return float64(engStats().WAL.Syncs) })
		reg.CounterFunc("retro_wal_sync_seconds_total",
			"Cumulative wall time spent in WAL fsync.", "",
			func() float64 { return float64(engStats().WAL.SyncNanos) / 1e9 })
		reg.GaugeFunc("retro_wal_bytes",
			"Size of the active write-ahead log in bytes.", "",
			func() float64 { return float64(engStats().WAL.Bytes) })
		reg.GaugeFunc("retro_wal_last_seq",
			"Sequence number of the last durable WAL record.", "",
			func() float64 { return float64(engStats().WAL.LastSeq) })
		reg.GaugeFunc("retro_storage_epoch",
			"Checkpoint epoch of the storage engine.", "",
			func() float64 { return float64(engStats().Epoch) })
		reg.GaugeFunc("retro_storage_segments",
			"Delta segments in the manifest chain.", "",
			func() float64 { return float64(engStats().Segments) })
		reg.GaugeFunc("retro_storage_pending_rows",
			"Rows logged since the last checkpoint (replayed on crash).", "",
			func() float64 { return float64(engStats().PendingRows) })
		reg.CounterFunc("retro_checkpoints_total",
			"Checkpoints taken by this engine handle.", "",
			func() float64 { return float64(engStats().Checkpoints) })
		reg.CounterFunc("retro_storage_compactions_total",
			"Checkpoints that compacted the chain into a fresh base.", "",
			func() float64 { return float64(engStats().Compactions) })
		t.checkpointDur = reg.Histogram("retro_checkpoint_duration_seconds",
			"Wall time per non-skipped checkpoint.", "", obs.DurationBuckets())
	}

	if cfg.Replica != nil {
		// Replication lag, the follower's headline health signal: how far
		// behind the primary this replica is serving, in records and in
		// wall time, plus how often it had to throw its state away.
		replica := cfg.Replica
		reg.GaugeFunc("retro_replica_lag_seconds",
			"Seconds since this replica was last caught up to the primary (0 while caught up).", "",
			func() float64 { return replica().LagSeconds })
		reg.GaugeFunc("retro_replica_lag_seqs",
			"WAL records the replica has not yet applied.", "",
			func() float64 { return float64(replica().LagSeqs) })
		reg.CounterFunc("retro_replica_resyncs_total",
			"Full re-syncs this replica has performed (resume point compacted away or stream diverged).", "",
			func() float64 { return float64(replica().Resyncs) })
		reg.GaugeFunc("retro_replica_connected",
			"1 while the replica's WAL stream to the primary is live, else 0.", "",
			func() float64 {
				if replica().Connected {
					return 1
				}
				return 0
			})
	}

	obs.RegisterRuntime(reg)
	version := cfg.Version
	if version == "" {
		version = "dev"
	}
	obs.RegisterBuildInfo(reg, version)
	return t
}

// Metrics exposes the server's registry (for embedding /metrics into an
// existing admin mux).
func (s *Server) Metrics() *obs.Registry { return s.tel.reg }

// SlowLog exposes the slow-query log.
func (s *Server) SlowLog() *obs.SlowLog { return s.tel.slow }

// AdminHandler returns the operator surface, meant for a separate admin
// listener (alongside pprof), never the serving address: /metrics in
// Prometheus text format, /debug/slowlog, and the health and readiness
// probes (also available on the serving mux).
func (s *Server) AdminHandler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/metrics", s.tel.reg.Handler())
	mux.Handle("/debug/slowlog", s.tel.slow)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	return s.recoverPanics(mux)
}

// handleReadyz is the readiness probe: liveness (/healthz) says the
// process is up, readiness says this replica should receive traffic. A
// server with no published view or a stale session reports 503 so a
// load balancer can drain it while /healthz keeps the process alive. A
// read replica additionally gates on its replication lag policy (see
// repl.Follower.Status): never-synced or lagging past the configured
// threshold means not ready, while a caught-up replica that merely lost
// its primary stays ready — serving reads through the primary's failure
// is the point.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if v := s.view.Load(); v == nil {
		writeJSON(w, http.StatusServiceUnavailable,
			map[string]any{"ready": false, "reason": "no serving view published"})
		return
	}
	stale := s.session().Stale()
	s.tel.noteStale(stale)
	if stale {
		writeJSON(w, http.StatusServiceUnavailable,
			map[string]any{"ready": false, "reason": "session stale: model lags the database until the next successful write"})
		return
	}
	if s.replica != nil {
		rs := s.replica()
		body := map[string]any{
			"ready":       rs.Ready,
			"replication": map[string]any{"state": rs.State, "lag_seconds": rs.LagSeconds, "lag_seqs": rs.LagSeqs, "connected": rs.Connected},
		}
		if !rs.Ready {
			body["reason"] = rs.Reason
			writeJSON(w, http.StatusServiceUnavailable, body)
			return
		}
		writeJSON(w, http.StatusOK, body)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ready": true})
}
