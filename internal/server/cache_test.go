package server

import (
	"fmt"
	"sync"
	"testing"
)

func TestShardedCacheBasics(t *testing.T) {
	c := newShardedCache(64)
	key := []byte("n\x00movies\x00title\x00alien\x003")
	if _, ok := c.Get(key, 1); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(key, 1, []byte("body-1"))
	body, ok := c.Get(key, 1)
	if !ok || string(body) != "body-1" {
		t.Fatalf("Get = %q, %v", body, ok)
	}
	// A different epoch misses: results computed under an old view are
	// unservable the moment a new view is published.
	if _, ok := c.Get(key, 2); ok {
		t.Fatal("stale-epoch entry served")
	}
	// Re-putting under the new epoch revives the key.
	c.Put(key, 2, []byte("body-2"))
	if body, ok := c.Get(key, 2); !ok || string(body) != "body-2" {
		t.Fatalf("after re-put: %q, %v", body, ok)
	}

	length, capacity, shards, hits, misses := c.Stats()
	if length != 1 {
		t.Fatalf("entries = %d, want 1", length)
	}
	if capacity < 64 || shards < 1 {
		t.Fatalf("capacity %d shards %d", capacity, shards)
	}
	if hits != 2 || misses != 2 {
		t.Fatalf("hits %d misses %d, want 2/2", hits, misses)
	}

	c.Purge()
	if _, ok := c.Get(key, 2); ok {
		t.Fatal("hit after purge")
	}
	if length, _, _, _, _ := c.Stats(); length != 0 {
		t.Fatalf("entries after purge = %d", length)
	}
}

// TestShardedCacheClockEviction: when a shard fills, the CLOCK sweep
// evicts an unreferenced entry and gives recently hit entries a second
// chance.
func TestShardedCacheClockEviction(t *testing.T) {
	c := newShardedCache(1) // one entry per shard: every insert contends
	// Fill far beyond capacity; each Put may evict within its shard.
	for i := 0; i < 256; i++ {
		c.Put([]byte(fmt.Sprintf("key-%d", i)), 1, []byte{byte(i)})
	}
	length, capacity, _, _, _ := c.Stats()
	if length > capacity {
		t.Fatalf("%d entries exceed capacity %d", length, capacity)
	}

	// Second chance: fill one shard with a hot entry (hit, so its ref
	// bit is set) and cold entries, then overflow it. The sweep must
	// clear the hot entry's bit and evict a cold one instead.
	c2 := newShardedCache(len(c.shards) * 4) // 4 entries per shard
	hot := []byte("hot-key")
	sh := &c2.shards[fnv32(hot)&c2.mask]
	c2.Put(hot, 1, []byte("hot"))
	var cold [][]byte
	for i := 0; len(cold) < 4; i++ {
		k := []byte(fmt.Sprintf("collide-%d", i))
		if &c2.shards[fnv32(k)&c2.mask] == sh {
			cold = append(cold, k)
		}
	}
	for _, k := range cold[:3] { // shard now full: hot + 3 cold
		c2.Put(k, 1, []byte("cold"))
	}
	if _, ok := c2.Get(hot, 1); !ok { // sets the hot ref bit
		t.Fatal("hot key lost before any eviction pressure")
	}
	c2.Put(cold[3], 1, []byte("cold")) // overflow: one eviction
	if _, ok := c2.Get(hot, 1); !ok {
		t.Fatal("referenced entry evicted without a second chance")
	}
	evicted := 0
	for _, k := range cold {
		if _, ok := c2.Get(k, 1); !ok {
			evicted++
		}
	}
	if evicted != 1 {
		t.Fatalf("%d cold entries missing, want exactly 1 evicted", evicted)
	}
}

// TestShardedCacheConcurrency hammers Get/Put/Purge from many
// goroutines; -race arms it.
func TestShardedCacheConcurrency(t *testing.T) {
	c := newShardedCache(128)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := []byte(fmt.Sprintf("key-%d", (g*31+i)%64))
				if i%7 == 0 {
					c.Put(key, uint64(i%3), []byte("v"))
				} else {
					c.Get(key, uint64(i%3))
				}
				if g == 0 && i%250 == 249 {
					c.Purge()
				}
			}
		}(g)
	}
	wg.Wait()
}
