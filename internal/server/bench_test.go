package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	retro "github.com/retrodb/retro"
	"github.com/retrodb/retro/internal/datagen"
)

// nopResponseWriter sinks handler output so benchmarks measure the
// serving path, not httptest.ResponseRecorder bookkeeping.
type nopResponseWriter struct{ h http.Header }

func (w *nopResponseWriter) Header() http.Header         { return w.h }
func (w *nopResponseWriter) Write(b []byte) (int, error) { return len(b), nil }
func (w *nopResponseWriter) WriteHeader(int)             {}

func trainBenchSession(b *testing.B, movies int) (*retro.Session, []string) {
	b.Helper()
	w := datagen.TMDB(datagen.TMDBConfig{Movies: movies, Dim: 24, Seed: 1})
	cfg := retro.Defaults()
	cfg.ANNThreshold = 1
	cfg.Parallel = -1
	sess, err := retro.NewSession(w.DB, w.Embedding, cfg)
	if err != nil {
		b.Fatal(err)
	}
	titles, err := w.DB.QueryText(`SELECT title FROM movies`)
	if err != nil || len(titles) == 0 {
		b.Fatalf("no seed titles (err=%v)", err)
	}
	return sess, titles
}

// benchReadServer is trained once and shared by the read-only
// benchmarks (nothing mutates it), so -cpu sweeps don't retrain.
var benchReadServer struct {
	once   sync.Once
	srv    *Server
	h      http.Handler
	titles []string
	err    error
}

func sharedReadServer(b *testing.B) (*Server, http.Handler, []string) {
	b.Helper()
	benchReadServer.once.Do(func() {
		defer func() {
			if r := recover(); r != nil {
				benchReadServer.err = fmt.Errorf("setup panic: %v", r)
			}
		}()
		w := datagen.TMDB(datagen.TMDBConfig{Movies: 300, Dim: 24, Seed: 1})
		cfg := retro.Defaults()
		cfg.ANNThreshold = 1
		cfg.Parallel = -1
		sess, err := retro.NewSession(w.DB, w.Embedding, cfg)
		if err != nil {
			benchReadServer.err = err
			return
		}
		benchReadServer.srv = New(sess, Config{CacheSize: 4096})
		benchReadServer.h = benchReadServer.srv.Handler()
		titles, err := w.DB.QueryText(`SELECT title FROM movies`)
		if err != nil {
			benchReadServer.err = err
			return
		}
		benchReadServer.titles = titles
	})
	if benchReadServer.err != nil {
		b.Fatal(benchReadServer.err)
	}
	return benchReadServer.srv, benchReadServer.h, benchReadServer.titles
}

// BenchmarkServeNeighborsParallel measures read throughput of the
// lock-free serving path. Run with -cpu 1,4,8: the read path takes no
// lock and the cache-hit path allocates nothing, so throughput should
// scale near-linearly with cores.
//
//	cached-http  full handler path (mux, instrumentation, URL parsing)
//	cached-core  the zero-allocation cache-hit core (key build + shard
//	             probe + pre-encoded body), what a tuned transport sees
//	miss-topk    uncached queries: view pin + ANN TopK + JSON encode
func BenchmarkServeNeighborsParallel(b *testing.B) {
	srv, h, titles := sharedReadServer(b)
	urls := make([]string, len(titles))
	for i, title := range titles {
		urls[i] = "/v1/neighbors?table=movies&column=title&text=" + queryEscape(title) + "&k=10"
	}
	// Warm every cache entry for the current epoch.
	for _, u := range urls {
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, u, nil))
		if w.Code != http.StatusOK {
			b.Fatalf("warm %s: status %d", u, w.Code)
		}
	}

	b.Run("cached-http", func(b *testing.B) {
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			w := &nopResponseWriter{h: make(http.Header)}
			reqs := make([]*http.Request, len(urls))
			for i, u := range urls {
				reqs[i] = httptest.NewRequest(http.MethodGet, u, nil)
			}
			i := 0
			for pb.Next() {
				h.ServeHTTP(w, reqs[i%len(reqs)])
				i++
			}
		})
	})

	b.Run("cached-core", func(b *testing.B) {
		epoch := srv.currentView().epoch
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				if _, ok := srv.lookupNeighbors("movies", "title", titles[i%len(titles)], 10, epoch); !ok {
					b.Error("cache miss on warmed key")
					return
				}
				i++
			}
		})
	})

	b.Run("miss-topk", func(b *testing.B) {
		// A second (cache-disabled) server over the same read-only
		// session: every request drives the full view-pin + TopK + JSON
		// encode path, so a regression there cannot hide behind a cache
		// hit.
		hMiss := New(srv.session(), Config{CacheSize: -1}).Handler()
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			w := &nopResponseWriter{h: make(http.Header)}
			reqs := make([]*http.Request, len(urls))
			for i, u := range urls {
				reqs[i] = httptest.NewRequest(http.MethodGet, u, nil)
			}
			i := 0
			for pb.Next() {
				hMiss.ServeHTTP(w, reqs[i%len(reqs)])
				i++
			}
		})
	})
}

// benchInsertID hands out globally unique primary keys so -cpu reruns of
// the mixed benchmark never collide.
var benchInsertID atomic.Int64

// BenchmarkServeMixedReadInsert is the reads-during-inserts workload: a
// background writer streams single-row inserts (each one commit, repair,
// view publication and cache invalidation) while GOMAXPROCS readers
// hammer /v1/neighbors. Readers never block on the writer — they pin
// whichever view is published — so read throughput should degrade only
// by the CPU the writer consumes, not by lock exclusion.
func BenchmarkServeMixedReadInsert(b *testing.B) {
	sess, titles := trainBenchSession(b, 200)
	srv := New(sess, Config{CacheSize: 4096})
	h := srv.Handler()
	tbl, _ := sess.DB().Table("movies")
	numCols := len(tbl.Columns)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var writerFailed atomic.Bool
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			id := benchInsertID.Add(1)
			row := make([]any, numCols)
			row[0] = 500000 + id
			row[1] = fmt.Sprintf("mixed premiere %d", id)
			row[2] = "english"
			body, _ := json.Marshal(map[string]any{"table": "movies", "values": row})
			w := httptest.NewRecorder()
			h.ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/v1/insert", bytes.NewReader(body)))
			if w.Code != http.StatusOK {
				writerFailed.Store(true)
				return
			}
			time.Sleep(2 * time.Millisecond) // bounded write rate
		}
	}()

	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		w := &nopResponseWriter{h: make(http.Header)}
		i := 0
		for pb.Next() {
			title := titles[i%len(titles)]
			req := httptest.NewRequest(http.MethodGet,
				"/v1/neighbors?table=movies&column=title&text="+queryEscape(title)+"&k=10", nil)
			h.ServeHTTP(w, req)
			i++
		}
	})
	b.StopTimer()
	close(stop)
	wg.Wait()
	if writerFailed.Load() {
		b.Fatal("background insert failed")
	}
}
