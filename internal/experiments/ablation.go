package experiments

import (
	"fmt"
	"math/rand"

	"github.com/retrodb/retro/internal/deepwalk"
	"github.com/retrodb/retro/internal/embed"
	"github.com/retrodb/retro/internal/ml"
	"github.com/retrodb/retro/internal/vec"
)

// AblationCombine compares the §4.6 embedding combiners on the director
// classification task: the paper settles on concatenation "during testing
// several combination methods"; this ablation reproduces that comparison
// (concatenation vs averaging) for RO and RN against DeepWalk.
func AblationCombine(s Scale) (*Report, error) {
	t, err := newDirectorTask(s)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:     "ablation-combine",
		Title:  "Combining Retrofitted and Node Embeddings: Concat vs Average (§4.6)",
		Header: []string{"combo", "mean acc", "min", "max"},
		Notes: []string{
			"expected shape: concatenation ≥ averaging (the paper's choice); averaging loses when the two spaces are not aligned",
		},
	}
	for _, base := range []Method{RO, RN} {
		for _, mode := range []embed.CombineMode{embed.Concat, embed.Average} {
			var accs []float64
			for r := 0; r < s.Repeats; r++ {
				rng := rand.New(rand.NewSource(s.Seed + int64(7000*r)))
				acc, err := runCombined(s, t, base, mode, rng, s.Seed+int64(r))
				if err != nil {
					return nil, err
				}
				accs = append(accs, acc)
			}
			rep.Rows = append(rep.Rows, []string{
				fmt.Sprintf("%s+DW (%s)", base, mode),
				f3(vec.Mean(accs)), f3(minOf(accs)), f3(maxOf(accs)),
			})
		}
	}
	return rep, nil
}

// runCombined builds the combined store under the given mode and runs the
// binary classification protocol on it.
func runCombined(s Scale, t *directorTask, base Method, mode embed.CombineMode, rng *rand.Rand, seed int64) (float64, error) {
	baseStore, err := t.pipeline.Store(base)
	if err != nil {
		return 0, err
	}
	dwStore, err := t.pipeline.Store(DW)
	if err != nil {
		return 0, err
	}
	combined, err := embed.Combine(baseStore, dwStore, mode)
	if err != nil {
		return 0, err
	}
	trainN, testN, trainY, testY := t.sample(rng, s.BinaryTrain, s.BinaryTest)
	gather := func(names []string) (*vec.Matrix, error) {
		x := vec.NewMatrix(len(names), combined.Dim())
		for i, name := range names {
			id, ok := t.pipeline.Ex.Lookup("persons", "name", name)
			if !ok {
				return nil, fmt.Errorf("experiments: missing director %q", name)
			}
			v, ok := combined.VectorOf(deepwalk.ValueKey(t.pipeline.Ex, id))
			if !ok {
				return nil, fmt.Errorf("experiments: combined store missing %q", name)
			}
			copy(x.Row(i), v)
		}
		return x, nil
	}
	trainX, err := gather(trainN)
	if err != nil {
		return 0, err
	}
	testX, err := gather(testN)
	if err != nil {
		return 0, err
	}
	cfg := s.nnConfig(seed)
	cfg.Dropout = 0.2
	cfg.L2 = 1e-4
	clf := ml.NewBinaryClassifier(trainX.Cols, cfg)
	if _, err := clf.Fit(trainX, trainY); err != nil {
		return 0, err
	}
	return clf.Accuracy(testX, testY), nil
}
