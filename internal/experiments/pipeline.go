// Package experiments reproduces every table and figure of the paper's
// evaluation (§5) on the synthetic worlds of internal/datagen. Each
// experiment returns a Report carrying the same rows/series the paper
// prints, and the EXPERIMENTS.md shape assertions are checked in tests.
package experiments

import (
	"fmt"

	"github.com/retrodb/retro/internal/core"
	"github.com/retrodb/retro/internal/deepwalk"
	"github.com/retrodb/retro/internal/embed"
	"github.com/retrodb/retro/internal/extract"
	"github.com/retrodb/retro/internal/graph"
	"github.com/retrodb/retro/internal/reldb"
	"github.com/retrodb/retro/internal/tokenize"
)

// Method names an embedding type of §5 (plus the +DW concatenations).
type Method string

// The embedding types compared throughout the evaluation.
const (
	PV   Method = "PV"    // plain word vectors (tokenized initialisation)
	MF   Method = "MF"    // Faruqui et al. retrofitting baseline
	DW   Method = "DW"    // DeepWalk node embeddings
	RO   Method = "RO"    // relational retrofitting, optimisation-based
	RN   Method = "RN"    // relational retrofitting, series-based
	PVDW Method = "PV+DW" // concatenations (§4.6)
	MFDW Method = "MF+DW"
	RODW Method = "RO+DW"
	RNDW Method = "RN+DW"
)

// AllMethods lists the embedding types in the paper's presentation order.
var AllMethods = []Method{PV, MF, DW, RO, RN, PVDW, MFDW, RODW, RNDW}

// base returns the non-DW component of a combined method.
func (m Method) base() Method {
	switch m {
	case PVDW:
		return PV
	case MFDW:
		return MF
	case RODW:
		return RO
	case RNDW:
		return RN
	default:
		return m
	}
}

// combined reports whether m is a +DW concatenation.
func (m Method) combined() bool { return m != m.base() }

// Pipeline trains every embedding type once over a database and serves
// per-text-value vectors to the task experiments.
type Pipeline struct {
	Ex      *extract.Extraction
	Tok     *tokenize.Tokenizer
	Problem *core.Problem

	roParams core.Hyperparams
	rnParams core.Hyperparams
	dwConfig deepwalk.Config

	stores map[Method]*embed.Store
}

// NewPipeline extracts the database, tokenizes against the base embedding
// and assembles the retrofitting problem. Solvers run lazily per method.
func NewPipeline(db *reldb.DB, base *embed.Store, opts extract.Options,
	roParams, rnParams core.Hyperparams, dwConfig deepwalk.Config) (*Pipeline, error) {
	ex, err := extract.FromDB(db, opts)
	if err != nil {
		return nil, err
	}
	if ex.NumValues() == 0 {
		return nil, fmt.Errorf("experiments: no text values extracted")
	}
	tok := tokenize.New(base)
	return &Pipeline{
		Ex:       ex,
		Tok:      tok,
		Problem:  core.BuildProblem(ex, tok),
		roParams: roParams,
		rnParams: rnParams,
		dwConfig: dwConfig,
		stores:   make(map[Method]*embed.Store),
	}, nil
}

// Store returns (training on first use) the embedding store of a method,
// keyed by the canonical value key (category + text).
func (p *Pipeline) Store(m Method) (*embed.Store, error) {
	if s, ok := p.stores[m]; ok {
		return s, nil
	}
	var s *embed.Store
	switch m {
	case PV:
		s = p.matrixStore(p.Problem.W0)
	case MF:
		s = p.matrixStore(core.SolveFaruqui(p.Problem, 1, 20).W)
	case RO:
		s = p.matrixStore(core.SolveRO(p.Problem, p.roParams, core.SolveOptions{}).W)
	case RN:
		s = p.matrixStore(core.SolveRN(p.Problem, p.rnParams, core.SolveOptions{}).W)
	case DW:
		g := graph.Build(p.Ex)
		res, err := deepwalk.Train(g, p.dwConfig)
		if err != nil {
			return nil, err
		}
		s = res.ToStore(p.Ex)
	case PVDW, MFDW, RODW, RNDW:
		baseStore, err := p.Store(m.base())
		if err != nil {
			return nil, err
		}
		dwStore, err := p.Store(DW)
		if err != nil {
			return nil, err
		}
		s, err = embed.Combine(baseStore, dwStore, embed.Concat)
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("experiments: unknown method %q", m)
	}
	p.stores[m] = s
	return s, nil
}

// matrixStore wraps a solved matrix (rows = extraction value ids) as a
// store keyed by value key.
func (p *Pipeline) matrixStore(w interface {
	Row(int) []float64
}) *embed.Store {
	s := embed.NewStore(p.Problem.Dim)
	for _, v := range p.Ex.Values {
		s.Add(deepwalk.ValueKey(p.Ex, v.ID), w.Row(v.ID))
	}
	return s
}

// Vector fetches the embedding of a (table, column, text) value under a
// method.
func (p *Pipeline) Vector(m Method, table, column, text string) ([]float64, error) {
	id, ok := p.Ex.Lookup(table, column, text)
	if !ok {
		return nil, fmt.Errorf("experiments: no value %q in %s.%s", text, table, column)
	}
	s, err := p.Store(m)
	if err != nil {
		return nil, err
	}
	v, ok := s.VectorOf(deepwalk.ValueKey(p.Ex, id))
	if !ok {
		return nil, fmt.Errorf("experiments: store missing key for %q", text)
	}
	return v, nil
}

// Dim returns the vector width of a method's store.
func (p *Pipeline) Dim(m Method) (int, error) {
	s, err := p.Store(m)
	if err != nil {
		return 0, err
	}
	return s.Dim(), nil
}
