package experiments

import (
	"fmt"
	"math/rand"
	"sort"

	"github.com/retrodb/retro/internal/core"
	"github.com/retrodb/retro/internal/datagen"
	"github.com/retrodb/retro/internal/datawig"
	"github.com/retrodb/retro/internal/extract"
	"github.com/retrodb/retro/internal/ml"
	"github.com/retrodb/retro/internal/mode"
	"github.com/retrodb/retro/internal/vec"
)

// imputeTask is a category-imputation workload: entities with a vector
// per method, a class label, and the single-table rows DataWig sees.
type imputeTask struct {
	pipeline *Pipeline
	table    string
	column   string
	entities []string   // entity text values, sorted for determinism
	labels   []int      // class per entity
	dtwgRows [][]string // DataWig's spreadsheet view per entity
	classes  int
}

// sample splits entities into train and test index sets.
func (t *imputeTask) sample(rng *rand.Rand, nTrain, nTest int) (train, test []int) {
	perm := rng.Perm(len(t.entities))
	nTrain = min(nTrain, len(perm)*2/3)
	train = perm[:nTrain]
	test = perm[nTrain:]
	if len(test) > nTest {
		test = test[:nTest]
	}
	return train, test
}

func (t *imputeTask) matrix(m Method, idx []int) (*vec.Matrix, []int, error) {
	dim, err := t.pipeline.Dim(m)
	if err != nil {
		return nil, nil, err
	}
	x := vec.NewMatrix(len(idx), dim)
	labels := make([]int, len(idx))
	for i, id := range idx {
		v, err := t.pipeline.Vector(m, t.table, t.column, t.entities[id])
		if err != nil {
			return nil, nil, err
		}
		copy(x.Row(i), v)
		labels[i] = t.labels[id]
	}
	return x, labels, nil
}

// runEmbedding trains Fig. 5a's softmax imputer on a method's vectors.
func (t *imputeTask) runEmbedding(s Scale, m Method, rng *rand.Rand, seed int64) (float64, error) {
	train, test := t.sample(rng, s.ImputeTrain, s.ImputeTest)
	trainX, trainY, err := t.matrix(m, train)
	if err != nil {
		return 0, err
	}
	testX, testY, err := t.matrix(m, test)
	if err != nil {
		return 0, err
	}
	imp := ml.NewCategoryImputer(trainX.Cols, t.classes, s.nnConfig(seed))
	if _, err := imp.Fit(trainX, trainY); err != nil {
		return 0, err
	}
	return imp.Accuracy(testX, testY), nil
}

// runMode scores mode imputation on the same split protocol.
func (t *imputeTask) runMode(s Scale, rng *rand.Rand) float64 {
	train, test := t.sample(rng, s.ImputeTrain, s.ImputeTest)
	trainY := make([]int, len(train))
	for i, id := range train {
		trainY[i] = t.labels[id]
	}
	m := mode.Train(trainY)
	testY := make([]int, len(test))
	for i, id := range test {
		testY[i] = t.labels[id]
	}
	return m.Accuracy(testY)
}

// runDataWig scores the single-table n-gram imputer.
func (t *imputeTask) runDataWig(s Scale, rng *rand.Rand, seed int64) (float64, error) {
	train, test := t.sample(rng, s.ImputeTrain, s.ImputeTest)
	trainRows := make([][]string, len(train))
	trainY := make([]int, len(train))
	for i, id := range train {
		trainRows[i] = t.dtwgRows[id]
		trainY[i] = t.labels[id]
	}
	imp, err := datawig.Train(trainRows, trainY, t.classes, datawig.Config{Seed: seed, Epochs: 60})
	if err != nil {
		return 0, err
	}
	testRows := make([][]string, len(test))
	testY := make([]int, len(test))
	for i, id := range test {
		testRows[i] = t.dtwgRows[id]
		testY[i] = t.labels[id]
	}
	return imp.Accuracy(testRows, testY), nil
}

// newLanguageTask builds the §5.5.2 "original language" imputation: the
// embeddings are trained with the movies.original_language column hidden.
func newLanguageTask(s Scale) (*imputeTask, *datagen.TMDBWorld, error) {
	w := s.tmdbWorld()
	p, err := NewPipeline(w.DB, w.Embedding, extract.Options{
		ExcludeColumns: []string{"movies.original_language"},
	}, s.ROParams, s.RNParams, s.dwConfig(s.Seed))
	if err != nil {
		return nil, nil, err
	}
	langIdx := map[string]int{}
	langs := []string{}
	for _, lang := range w.MovieLanguage {
		if _, ok := langIdx[lang]; !ok {
			langIdx[lang] = 0
			langs = append(langs, lang)
		}
	}
	sort.Strings(langs)
	for i, l := range langs {
		langIdx[l] = i
	}
	t := &imputeTask{pipeline: p, table: "movies", column: "title", classes: len(langs)}

	res, err := w.DB.Exec(`SELECT title, overview FROM movies ORDER BY title`)
	if err != nil {
		return nil, nil, err
	}
	for _, row := range res.Rows {
		title := row[0].Str
		if _, ok := p.Ex.Lookup("movies", "title", title); !ok {
			continue
		}
		t.entities = append(t.entities, title)
		t.labels = append(t.labels, langIdx[w.MovieLanguage[title]])
		// DataWig's spreadsheet: the movie table's own text columns
		// (title + overview); directors/actors/reviews live in other
		// tables and stay out (§5.5.2).
		t.dtwgRows = append(t.dtwgRows, []string{title, row[1].Str})
	}
	if len(t.entities) < 10 {
		return nil, nil, fmt.Errorf("experiments: too few movies for the language task")
	}
	return t, w, nil
}

// newAppCategoryTask builds the §5.5.2 Google Play category imputation:
// embeddings trained without the category column and the genre relation.
func newAppCategoryTask(s Scale) (*imputeTask, *datagen.GooglePlayWorld, error) {
	w := s.gplayWorld()
	p, err := NewPipeline(w.DB, w.Embedding, extract.Options{
		ExcludeColumns: []string{"categories.name", "genres.name"},
	}, s.ROParams, s.RNParams, s.dwConfig(s.Seed))
	if err != nil {
		return nil, nil, err
	}
	t := &imputeTask{pipeline: p, table: "apps", column: "name", classes: len(w.CategoryNames)}

	res, err := w.DB.Exec(`
		SELECT apps.name, pricing.name, ages.name
		FROM apps
		JOIN pricing ON apps.pricing_id = pricing.id
		JOIN ages ON apps.age_id = ages.id
		ORDER BY apps.name`)
	if err != nil {
		return nil, nil, err
	}
	for _, row := range res.Rows {
		name := row[0].Str
		if _, ok := p.Ex.Lookup("apps", "name", name); !ok {
			continue
		}
		cat, ok := w.AppCategory[name]
		if !ok {
			continue
		}
		t.entities = append(t.entities, name)
		t.labels = append(t.labels, cat)
		// DataWig sees the app spreadsheet (name, pricing, age); reviews
		// are omitted as in the paper ("can only be executed on singular
		// tables").
		t.dtwgRows = append(t.dtwgRows, []string{name, row[1].Str, row[2].Str})
	}
	if len(t.entities) < 10 {
		return nil, nil, fmt.Errorf("experiments: too few apps for the category task")
	}
	return t, w, nil
}

// imputationReport runs the full §5.5.2 method comparison on a task.
func imputationReport(s Scale, t *imputeTask, id, title, note string) (*Report, error) {
	rep := &Report{
		ID:     id,
		Title:  title,
		Header: []string{"method", "mean acc", "min", "max"},
		Notes:  []string{note},
	}
	methods := []string{"MODE", "DTWG"}
	for _, m := range AllMethods {
		methods = append(methods, string(m))
	}
	for _, name := range methods {
		var accs []float64
		for r := 0; r < s.Repeats; r++ {
			rng := rand.New(rand.NewSource(s.Seed + int64(10_000*r)))
			var acc float64
			var err error
			switch name {
			case "MODE":
				acc = t.runMode(s, rng)
			case "DTWG":
				acc, err = t.runDataWig(s, rng, s.Seed+int64(r))
			default:
				acc, err = t.runEmbedding(s, Method(name), rng, s.Seed+int64(r))
			}
			if err != nil {
				return nil, err
			}
			accs = append(accs, acc)
		}
		rep.Rows = append(rep.Rows, []string{name, f3(vec.Mean(accs)), f3(minOf(accs)), f3(maxOf(accs))})
	}
	return rep, nil
}

// Fig12a reproduces Figure 12a: imputation of the original-language
// property across all methods.
func Fig12a(s Scale) (*Report, error) {
	t, _, err := newLanguageTask(s)
	if err != nil {
		return nil, err
	}
	return imputationReport(s, t, "fig12a", "Imputation of Original Language Property",
		"expected shape: MODE ≈ majority language share (paper 71%); PV slightly above; RO/RN top, above DTWG; DW comparable to RO/RN; +DW combos best")
}

// Fig12b reproduces Figure 12b: imputation of Google Play app categories.
func Fig12b(s Scale) (*Report, error) {
	t, _, err := newAppCategoryTask(s)
	if err != nil {
		return nil, err
	}
	return imputationReport(s, t, "fig12b", "Imputation of App Categories",
		"expected shape: MODE poor; DTWG ≈ PV; RO/RN clearly best (reviews only reachable via FK); DW near MODE; +DW does not help")
}

// Fig10 reproduces Figure 10: hyperparameter grid for language imputation
// with the RO solver (plain and +DW).
func Fig10(s Scale) (*Report, error) {
	return gridSearchImpute(s, core.RO, "fig10", "Hyperparameter Influence on Language Imputation (RO)")
}

// Fig11 reproduces Figure 11: the same grid for the RN solver.
func Fig11(s Scale) (*Report, error) {
	return gridSearchImpute(s, core.RN, "fig11", "Hyperparameter Influence on Language Imputation (RN)")
}

func gridSearchImpute(s Scale, variant core.Variant, id, title string) (*Report, error) {
	var t *imputeTask
	var w *datagen.TMDBWorld
	world := func() (*Pipeline, error) {
		var err error
		if t == nil {
			t, w, err = newLanguageTask(s)
			if err != nil {
				return nil, err
			}
			return t.pipeline, nil
		}
		p, err := NewPipeline(w.DB, w.Embedding, extract.Options{
			ExcludeColumns: []string{"movies.original_language"},
		}, s.ROParams, s.RNParams, s.dwConfig(s.Seed))
		if err != nil {
			return nil, err
		}
		t.pipeline = p
		return p, nil
	}
	task := func(s Scale, p *Pipeline, m Method, seed int64) (float64, error) {
		rng := rand.New(rand.NewSource(seed))
		return t.runEmbedding(s, m, rng, seed)
	}
	return gridSearch(s, variant, id, title, task, world)
}
