package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"github.com/retrodb/retro/internal/extract"
)

// Tiny-scale execution tests keep the whole suite runnable in CI; the
// shape assertions that need statistical power live in the bench harness
// and EXPERIMENTS.md.

func TestScalePresets(t *testing.T) {
	for _, name := range []string{"tiny", "small", "full", ""} {
		s, ok := ByName(name)
		if !ok {
			t.Fatalf("preset %q missing", name)
		}
		if s.Movies <= 0 || s.Dim <= 0 || s.Repeats <= 0 {
			t.Fatalf("preset %q degenerate: %+v", name, s)
		}
	}
	if _, ok := ByName("galactic"); ok {
		t.Fatal("unknown preset accepted")
	}
}

func TestPipelineStoresAndVectors(t *testing.T) {
	s := TinyScale()
	w := s.tmdbWorld()
	p, err := NewPipeline(w.DB, w.Embedding, extract.Options{}, s.ROParams, s.RNParams, s.dwConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range AllMethods {
		store, err := p.Store(m)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if store.Len() != p.Ex.NumValues() {
			t.Fatalf("%s: store has %d values, extraction %d", m, store.Len(), p.Ex.NumValues())
		}
		dim, err := p.Dim(m)
		if err != nil {
			t.Fatal(err)
		}
		if m.combined() {
			base, _ := p.Dim(m.base())
			dwDim, _ := p.Dim(DW)
			if dim != base+dwDim {
				t.Fatalf("%s: dim %d != %d+%d", m, dim, base, dwDim)
			}
		}
	}
	// Store caching: same pointer on second call.
	a, _ := p.Store(RO)
	b, _ := p.Store(RO)
	if a != b {
		t.Fatal("Store should cache")
	}
	// Vector lookup round-trip.
	val := p.Ex.Values[0]
	cat := p.Ex.Categories[val.Category]
	v, err := p.Vector(PV, cat.Table, cat.Column, val.Text)
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != p.Problem.Dim {
		t.Fatal("vector dim wrong")
	}
	if _, err := p.Vector(PV, "nope", "nope", "nope"); err == nil {
		t.Fatal("missing value lookup should error")
	}
}

func TestMethodBaseAndCombined(t *testing.T) {
	if RODW.base() != RO || !RODW.combined() {
		t.Fatal("RODW decomposition wrong")
	}
	if RO.base() != RO || RO.combined() {
		t.Fatal("RO decomposition wrong")
	}
}

func TestReportPrintAndCell(t *testing.T) {
	rep := &Report{
		ID:     "x",
		Title:  "T",
		Header: []string{"method", "acc"},
		Rows:   [][]string{{"PV", "0.5"}, {"RO", "0.9"}},
		Notes:  []string{"a note"},
	}
	var buf bytes.Buffer
	rep.Print(&buf)
	out := buf.String()
	for _, want := range []string{"== x: T ==", "method", "PV", "0.9", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in output:\n%s", want, out)
		}
	}
	if v, ok := rep.Cell("RO", "acc"); !ok || v != "0.9" {
		t.Fatalf("Cell = %q %v", v, ok)
	}
	if _, ok := rep.Cell("RO", "nope"); ok {
		t.Fatal("missing column found")
	}
	if _, ok := rep.Cell("nope", "acc"); ok {
		t.Fatal("missing row found")
	}
}

func TestRunUnknownID(t *testing.T) {
	if _, err := Run("fig99", TinyScale()); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestTable1Shapes(t *testing.T) {
	rep, err := Table1(TinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 2 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	if !strings.Contains(rep.Rows[0][1], "(+") {
		t.Fatalf("link tables not broken out: %v", rep.Rows[0])
	}
}

func TestFig3Geometry(t *testing.T) {
	rep, err := Fig3()
	if err != nil {
		t.Fatal(err)
	}
	// 4 sweeps x 3 values.
	if len(rep.Rows) != 12 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
}

func TestFig4RuntimeScaling(t *testing.T) {
	rep, err := Fig4(TinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 5 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	// Text values must grow with movie count.
	first := mustAtoi(t, rep.Rows[0][1])
	last := mustAtoi(t, rep.Rows[len(rep.Rows)-1][1])
	if last <= first {
		t.Fatalf("text values did not grow: %d -> %d", first, last)
	}
}

func mustAtoi(t *testing.T, s string) int {
	t.Helper()
	v, err := strconv.Atoi(s)
	if err != nil {
		t.Fatalf("bad int %q", s)
	}
	return v
}

func TestFig8RunsAndBeatsChanceForRO(t *testing.T) {
	rep, err := Fig8(TinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != len(AllMethods) {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	cell, ok := rep.Cell("RO", "mean acc")
	if !ok {
		t.Fatal("RO row missing")
	}
	acc, err := strconv.ParseFloat(cell, 64)
	if err != nil || acc < 0 || acc > 1 {
		t.Fatalf("RO acc = %q", cell)
	}
}

func TestFig12aOrderingCoarse(t *testing.T) {
	if testing.Short() {
		t.Skip("several NN trainings")
	}
	rep, err := Fig12a(TinyScale())
	if err != nil {
		t.Fatal(err)
	}
	get := func(m string) float64 {
		c, ok := rep.Cell(m, "mean acc")
		if !ok {
			t.Fatalf("row %s missing", m)
		}
		v, err := strconv.ParseFloat(c, 64)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	// The coarse invariant that must hold even at tiny scale: the
	// relational methods do not fall below the mode baseline by more than
	// noise allows.
	if get("RO") < get("MODE")-0.15 {
		t.Fatalf("RO (%.3f) far below MODE (%.3f)", get("RO"), get("MODE"))
	}
}

func TestAblationCombineRuns(t *testing.T) {
	rep, err := AblationCombine(TinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 (RO/RN x concat/average)", len(rep.Rows))
	}
	for _, row := range rep.Rows {
		acc, err := strconv.ParseFloat(row[1], 64)
		if err != nil || acc < 0 || acc > 1 {
			t.Fatalf("bad accuracy %q", row[1])
		}
	}
}

func TestMeasureRuntimesPositive(t *testing.T) {
	s := TinyScale()
	w := s.tmdbWorld()
	p, err := NewPipeline(w.DB, w.Embedding, extract.Options{}, s.ROParams, s.RNParams, s.dwConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	mf, dw, ro, rn, err := MeasureRuntimes(s, p)
	if err != nil {
		t.Fatal(err)
	}
	for name, d := range map[string]float64{
		"mf": mf.Seconds(), "dw": dw.Seconds(), "ro": ro.Seconds(), "rn": rn.Seconds(),
	} {
		if d <= 0 {
			t.Fatalf("%s runtime not positive", name)
		}
	}
}
