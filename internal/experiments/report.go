package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Report is one reproduced table or figure: a title, column headers and
// formatted rows (figures are rendered as their data series).
type Report struct {
	ID     string // "table2", "fig12a", ...
	Title  string
	Header []string
	Rows   [][]string
	// Notes records scale substitutions or caveats printed below the table.
	Notes []string
}

// Print renders the report as an aligned text table.
func (r *Report) Print(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(r.Header)
	sep := make([]string, len(r.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Cell looks up a row by its first column and returns the named column,
// a convenience for tests asserting the paper's orderings.
func (r *Report) Cell(rowKey, col string) (string, bool) {
	ci := -1
	for i, h := range r.Header {
		if h == col {
			ci = i
			break
		}
	}
	if ci < 0 {
		return "", false
	}
	for _, row := range r.Rows {
		if len(row) > ci && row[0] == rowKey {
			return row[ci], true
		}
	}
	return "", false
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func f4(v float64) string { return fmt.Sprintf("%.4f", v) }
