package experiments

import (
	"github.com/retrodb/retro/internal/core"
	"github.com/retrodb/retro/internal/datagen"
	"github.com/retrodb/retro/internal/deepwalk"
	"github.com/retrodb/retro/internal/ml"
)

// Scale bundles every knob that trades fidelity for runtime. The paper
// runs on 493k text values and 300-d Google News vectors; Small keeps the
// same shapes at laptop speed, Full approaches paper-sized runs.
type Scale struct {
	Name string

	Movies int // TMDB size
	Apps   int // Google Play size
	Dim    int // base embedding dimensionality (paper: 300)

	Repeats int // per-experiment repetitions (paper: 10, Fig. 9: 20)

	// Classification / imputation sample counts.
	BinaryTrain int // per class (paper: 1500 train + 1500 test per class)
	BinaryTest  int
	ImputeTrain int // paper: 5000 (languages) / 400 (apps)
	ImputeTest  int
	RegressN    int // paper: 9000 train + 1000 test

	NN ml.Config // task-network scale (paper: 600/300 hidden units)
	DW deepwalk.Config

	ROParams core.Hyperparams
	RNParams core.Hyperparams

	Seed int64
}

// SmallScale is the default configuration: every experiment shape in
// minutes on one core. Documented per experiment in EXPERIMENTS.md.
func SmallScale() Scale {
	return Scale{
		Name:        "small",
		Movies:      300,
		Apps:        320,
		Dim:         48,
		Repeats:     3,
		BinaryTrain: 45,
		BinaryTest:  40,
		ImputeTrain: 180,
		ImputeTest:  110,
		RegressN:    240,
		NN: ml.Config{
			Hidden1: 64, Hidden2: 32,
			Epochs: 60, BatchSize: 16, Patience: 15, LearnRate: 0.004,
		},
		DW: deepwalk.Config{
			WalksPerNode: 10, WalkLength: 30, Window: 4, Dim: 48, Epochs: 1,
		},
		ROParams: core.DefaultRO(),
		RNParams: core.DefaultRN(),
		Seed:     1,
	}
}

// FullScale approaches the paper's setup (Google-News-sized vectors are
// still synthetic; the databases grow an order of magnitude). Expect long
// runtimes.
func FullScale() Scale {
	s := SmallScale()
	s.Name = "full"
	s.Movies = 4000
	s.Apps = 2000
	s.Dim = 300
	s.Repeats = 10
	s.BinaryTrain = 1500
	s.BinaryTest = 1500
	s.ImputeTrain = 2500
	s.ImputeTest = 2500
	s.RegressN = 2000
	s.NN = ml.Config{Hidden1: 600, Hidden2: 300, Epochs: 300, BatchSize: 32, Patience: 50, LearnRate: 0.002}
	s.DW = deepwalk.Config{WalksPerNode: 10, WalkLength: 40, Window: 5, Dim: 300, Epochs: 1}
	return s
}

// TinyScale is for unit tests of the harness itself.
func TinyScale() Scale {
	s := SmallScale()
	s.Name = "tiny"
	s.Movies = 80
	s.Apps = 80
	s.Dim = 16
	s.Repeats = 1
	s.BinaryTrain = 24
	s.BinaryTest = 24
	s.ImputeTrain = 50
	s.ImputeTest = 40
	s.RegressN = 60
	s.NN = ml.Config{Hidden1: 24, Hidden2: 12, Epochs: 25, BatchSize: 8, Patience: 8, LearnRate: 0.006}
	s.DW = deepwalk.Config{WalksPerNode: 4, WalkLength: 12, Window: 3, Dim: 16, Epochs: 1}
	return s
}

// ByName resolves a scale preset.
func ByName(name string) (Scale, bool) {
	switch name {
	case "small", "":
		return SmallScale(), true
	case "full":
		return FullScale(), true
	case "tiny":
		return TinyScale(), true
	default:
		return Scale{}, false
	}
}

// tmdbWorld builds the TMDB world for this scale.
func (s Scale) tmdbWorld() *datagen.TMDBWorld {
	return datagen.TMDB(datagen.TMDBConfig{Movies: s.Movies, Dim: s.Dim, Seed: s.Seed})
}

// gplayWorld builds the Google Play world for this scale.
func (s Scale) gplayWorld() *datagen.GooglePlayWorld {
	return datagen.GooglePlay(datagen.GooglePlayConfig{Apps: s.Apps, Dim: s.Dim, Seed: s.Seed})
}

// dwConfig returns the DeepWalk configuration with a per-run seed.
func (s Scale) dwConfig(seed int64) deepwalk.Config {
	cfg := s.DW
	cfg.Seed = seed
	return cfg
}

// nnConfig returns the task-network configuration with a per-run seed.
func (s Scale) nnConfig(seed int64) ml.Config {
	cfg := s.NN
	cfg.Seed = seed
	return cfg
}

// GplayWorldForDebug exposes the Google Play world builder (debug only).
func (s Scale) GplayWorldForDebug() *datagen.GooglePlayWorld { return s.gplayWorld() }

// TmdbWorldForDebug exposes the TMDB world builder (debug only).
func (s Scale) TmdbWorldForDebug() *datagen.TMDBWorld { return s.tmdbWorld() }
