package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"github.com/retrodb/retro/internal/core"
	"github.com/retrodb/retro/internal/datagen"
	"github.com/retrodb/retro/internal/extract"
	"github.com/retrodb/retro/internal/ml"
	"github.com/retrodb/retro/internal/vec"
)

// directorTask is the §5.5.1 binary classification setup: label TMDB
// directors as US-American or not, with labels from an external source
// (datagen's stand-in for Wikidata).
type directorTask struct {
	world    *datagen.TMDBWorld
	pipeline *Pipeline
	us       []string // director names with US citizenship, sorted
	other    []string
}

func newDirectorTask(s Scale) (*directorTask, error) {
	w := s.tmdbWorld()
	p, err := NewPipeline(w.DB, w.Embedding, extract.Options{}, s.ROParams, s.RNParams, s.dwConfig(s.Seed))
	if err != nil {
		return nil, err
	}
	t := &directorTask{world: w, pipeline: p}
	for name, isUS := range w.DirectorUS {
		// Only names that actually appear in the extraction are usable.
		if _, ok := p.Ex.Lookup("persons", "name", name); !ok {
			continue
		}
		if isUS {
			t.us = append(t.us, name)
		} else {
			t.other = append(t.other, name)
		}
	}
	sort.Strings(t.us)
	sort.Strings(t.other)
	if len(t.us) < 4 || len(t.other) < 4 {
		return nil, fmt.Errorf("experiments: degenerate citizenship split (%d/%d)", len(t.us), len(t.other))
	}
	return t, nil
}

// sample draws nTrain and nTest names per class without replacement
// (capped at availability) and returns train/test name+label sets.
func (t *directorTask) sample(rng *rand.Rand, nTrain, nTest int) (trainN, testN []string, trainY, testY []float64) {
	usPerm := rng.Perm(len(t.us))
	otherPerm := rng.Perm(len(t.other))
	takeTrain := func(perm []int, pool []string, label float64) []int {
		n := min(nTrain, len(pool)/2)
		for _, pi := range perm[:n] {
			trainN = append(trainN, pool[pi])
			trainY = append(trainY, label)
		}
		return perm[n:]
	}
	restUS := takeTrain(usPerm, t.us, 1)
	restOther := takeTrain(otherPerm, t.other, 0)
	takeTest := func(perm []int, pool []string, label float64) {
		n := min(nTest, len(perm))
		for _, pi := range perm[:n] {
			testN = append(testN, pool[pi])
			testY = append(testY, label)
		}
	}
	takeTest(restUS, t.us, 1)
	takeTest(restOther, t.other, 0)
	return trainN, testN, trainY, testY
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// matrix looks up the method vectors of the named directors.
func (t *directorTask) matrix(m Method, names []string) (*vec.Matrix, error) {
	dim, err := t.pipeline.Dim(m)
	if err != nil {
		return nil, err
	}
	x := vec.NewMatrix(len(names), dim)
	for i, name := range names {
		v, err := t.pipeline.Vector(m, "persons", "name", name)
		if err != nil {
			return nil, err
		}
		copy(x.Row(i), v)
	}
	return x, nil
}

// runBinary trains Fig. 5a's binary classifier once and returns test
// accuracy.
func (t *directorTask) runBinary(s Scale, m Method, rng *rand.Rand, nTrain, nTest int, seed int64) (float64, error) {
	trainN, testN, trainY, testY := t.sample(rng, nTrain, nTest)
	trainX, err := t.matrix(m, trainN)
	if err != nil {
		return 0, err
	}
	testX, err := t.matrix(m, testN)
	if err != nil {
		return 0, err
	}
	cfg := s.nnConfig(seed)
	cfg.Dropout = 0.2
	cfg.L2 = 1e-4
	clf := ml.NewBinaryClassifier(trainX.Cols, cfg)
	if _, err := clf.Fit(trainX, trainY); err != nil {
		return 0, err
	}
	return clf.Accuracy(testX, testY), nil
}

// Fig8 reproduces Figure 8: binary classification of US-American
// directors across embedding types, accuracy distribution over repeats.
func Fig8(s Scale) (*Report, error) {
	t, err := newDirectorTask(s)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:     "fig8",
		Title:  "Binary Classification of US-American Directors",
		Header: []string{"method", "mean acc", "min", "max"},
		Notes: []string{
			"expected shape: RN ≳ RO best; MF ≈ PV ≈ DW below; +DW lifts every method except PV the most (paper: combos ≳ 0.9)",
		},
	}
	for _, m := range AllMethods {
		var accs []float64
		for r := 0; r < s.Repeats; r++ {
			rng := rand.New(rand.NewSource(s.Seed + int64(100*r)))
			acc, err := t.runBinary(s, m, rng, s.BinaryTrain, s.BinaryTest, s.Seed+int64(r))
			if err != nil {
				return nil, err
			}
			accs = append(accs, acc)
		}
		rep.Rows = append(rep.Rows, []string{string(m), f3(vec.Mean(accs)), f3(minOf(accs)), f3(maxOf(accs))})
	}
	return rep, nil
}

func minOf(a []float64) float64 {
	out := math.Inf(1)
	for _, v := range a {
		if v < out {
			out = v
		}
	}
	return out
}

func maxOf(a []float64) float64 {
	out := math.Inf(-1)
	for _, v := range a {
		if v > out {
			out = v
		}
	}
	return out
}

// Fig9 reproduces Figure 9: test accuracy as the training sample grows,
// per embedding type (paper: 200..1000 samples, 20 repeats).
func Fig9(s Scale) (*Report, error) {
	t, err := newDirectorTask(s)
	if err != nil {
		return nil, err
	}
	methods := []Method{PV, MF, DW, RO, RN}
	rep := &Report{
		ID:     "fig9",
		Title:  "Binary Classification Accuracy vs Training Sample Size",
		Header: append([]string{"train size (per class)"}, methodNames(methods)...),
		Notes: []string{
			"expected shape: PV has the flattest curve; DW suffers most at small samples (needs more data)",
		},
	}
	sizes := []int{}
	for _, f := range []float64{0.2, 0.4, 0.6, 0.8, 1.0} {
		n := int(float64(s.BinaryTrain) * f)
		if n < 4 {
			n = 4
		}
		sizes = append(sizes, n)
	}
	for _, n := range sizes {
		row := []string{fmt.Sprintf("%d", n)}
		for _, m := range methods {
			var accs []float64
			for r := 0; r < s.Repeats; r++ {
				rng := rand.New(rand.NewSource(s.Seed + int64(1000*r) + int64(n)))
				acc, err := t.runBinary(s, m, rng, n, s.BinaryTest, s.Seed+int64(r))
				if err != nil {
					return nil, err
				}
				accs = append(accs, acc)
			}
			row = append(row, f3(vec.Mean(accs)))
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep, nil
}

func methodNames(ms []Method) []string {
	out := make([]string, len(ms))
	for i, m := range ms {
		out[i] = string(m)
	}
	return out
}

// hyperparamGrid is the §5.5.1 grid-search space, compacted.
var hyperparamGrid = []core.Hyperparams{
	{Alpha: 1, Beta: 0, Gamma: 1, Delta: 0},
	{Alpha: 1, Beta: 0, Gamma: 3, Delta: 1},
	{Alpha: 1, Beta: 0, Gamma: 3, Delta: 3},
	{Alpha: 1, Beta: 1, Gamma: 1, Delta: 1},
	{Alpha: 1, Beta: 1, Gamma: 3, Delta: 1},
	{Alpha: 2, Beta: 0, Gamma: 3, Delta: 1},
	{Alpha: 2, Beta: 1, Gamma: 1, Delta: 0},
	{Alpha: 2, Beta: 1, Gamma: 3, Delta: 3},
}

// gridSearch evaluates a solver variant over the hyperparameter grid on
// the director task, with and without DW concatenation — the engine
// behind Figures 6, 7, 10 and 11.
func gridSearch(s Scale, variant core.Variant, id, title string, task func(s Scale, p *Pipeline, m Method, seed int64) (float64, error), world func() (*Pipeline, error)) (*Report, error) {
	rep := &Report{
		ID:     id,
		Title:  title,
		Header: []string{"config", "plain", "+DW"},
		Notes: []string{
			"expected shape: higher γ/δ help the plain solver; with +DW the optimum shifts toward higher α/β (relations already covered by node embeddings)",
		},
	}
	for _, h := range hyperparamGrid {
		h.Iterations = 10
		p, err := world()
		if err != nil {
			return nil, err
		}
		if variant == core.RO {
			p.roParams = h
		} else {
			p.rnParams = h
		}
		base := RO
		combo := RODW
		if variant == core.RN {
			base, combo = RN, RNDW
		}
		plain, err := task(s, p, base, s.Seed)
		if err != nil {
			return nil, err
		}
		withDW, err := task(s, p, combo, s.Seed)
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, []string{h.String(), f3(plain), f3(withDW)})
	}
	return rep, nil
}

// Fig6 reproduces Figure 6: hyperparameter grid for binary classification
// with the Ψ-function (RO) solver, plain and +DW.
func Fig6(s Scale) (*Report, error) {
	return gridSearchBinary(s, core.RO, "fig6", "Hyperparameter Influence on Binary Classification (RO)")
}

// Fig7 reproduces Figure 7: the same grid for the series (RN) solver.
func Fig7(s Scale) (*Report, error) {
	return gridSearchBinary(s, core.RN, "fig7", "Hyperparameter Influence on Binary Classification (RN)")
}

func gridSearchBinary(s Scale, variant core.Variant, id, title string) (*Report, error) {
	var t *directorTask
	world := func() (*Pipeline, error) {
		var err error
		if t == nil {
			t, err = newDirectorTask(s)
			if err != nil {
				return nil, err
			}
		}
		// Fresh pipeline per config so solver caches don't leak across
		// hyperparameters.
		p, err := NewPipeline(t.world.DB, t.world.Embedding, extract.Options{}, s.ROParams, s.RNParams, s.dwConfig(s.Seed))
		if err != nil {
			return nil, err
		}
		t.pipeline = p
		return p, nil
	}
	task := func(s Scale, p *Pipeline, m Method, seed int64) (float64, error) {
		rng := rand.New(rand.NewSource(seed))
		return t.runBinary(s, m, rng, s.BinaryTrain, s.BinaryTest, seed)
	}
	return gridSearch(s, variant, id, title, task, world)
}
