package experiments

import (
	"fmt"
	"math"
	"time"

	"github.com/retrodb/retro/internal/core"
	"github.com/retrodb/retro/internal/deepwalk"
	"github.com/retrodb/retro/internal/embed"
	"github.com/retrodb/retro/internal/extract"
	"github.com/retrodb/retro/internal/graph"
	"github.com/retrodb/retro/internal/reldb"
)

// Table1 reproduces Table 1: dataset properties (table counts with link
// tables broken out, and unique text values).
func Table1(s Scale) (*Report, error) {
	rep := &Report{
		ID:     "table1",
		Title:  "Dataset Properties",
		Header: []string{"dataset", "tables", "unique text values"},
		Notes: []string{
			fmt.Sprintf("synthetic worlds at scale %q (paper: TMDB 8(+7*) / 493751 values; Google Play 6(+1*) / 27571 values)", s.Name),
			"* tables which only express n:m relations",
		},
	}
	for _, d := range []struct {
		name string
		db   *reldb.DB
	}{
		{"TMDB", s.tmdbWorld().DB},
		{"Google Play", s.gplayWorld().DB},
	} {
		ex, err := extract.FromDB(d.db, extract.Options{})
		if err != nil {
			return nil, err
		}
		links := len(d.db.LinkTables())
		rep.Rows = append(rep.Rows, []string{
			d.name,
			fmt.Sprintf("%d(+%d*)", d.db.NumTables()-links, links),
			fmt.Sprintf("%d", ex.NumValues()),
		})
	}
	return rep, nil
}

// MeasureRuntimes times one single-threaded run of each embedding method
// on an assembled pipeline: MF with 20 iterations, DeepWalk with the
// scale's standard parameters, RO and RN with their configured iteration
// counts — the §5.3 protocol.
func MeasureRuntimes(s Scale, p *Pipeline) (mf, dw, ro, rn time.Duration, err error) {
	start := time.Now()
	core.SolveFaruqui(p.Problem, 1, 20)
	mf = time.Since(start)

	start = time.Now()
	g := graph.Build(p.Ex)
	if _, derr := deepwalk.Train(g, s.dwConfig(s.Seed)); derr != nil {
		return 0, 0, 0, 0, derr
	}
	dw = time.Since(start)

	start = time.Now()
	core.SolveRO(p.Problem, s.ROParams, core.SolveOptions{})
	ro = time.Since(start)

	start = time.Now()
	core.SolveRN(p.Problem, s.RNParams, core.SolveOptions{})
	rn = time.Since(start)
	return mf, dw, ro, rn, nil
}

// Table2 reproduces Table 2: runtime of the embedding methods on both
// datasets, mean ± deviation over Repeats single-thread runs.
func Table2(s Scale) (*Report, error) {
	rep := &Report{
		ID:     "table2",
		Title:  "Runtime of Embedding Methods (seconds)",
		Header: []string{"dataset", "MF", "DW", "RO", "RN"},
		Notes: []string{
			"expected shape: MF fastest, then RN, then RO, DW slowest (paper Table 2)",
		},
	}
	for _, d := range []struct {
		name string
		db   *reldb.DB
		emb  *embed.Store
	}{
		{"TMDB", nil, nil},
		{"Google Play", nil, nil},
	} {
		var db *reldb.DB
		var emb *embed.Store
		if d.name == "TMDB" {
			w := s.tmdbWorld()
			db, emb = w.DB, w.Embedding
		} else {
			w := s.gplayWorld()
			db, emb = w.DB, w.Embedding
		}
		p, err := NewPipeline(db, emb, extract.Options{}, s.ROParams, s.RNParams, s.dwConfig(s.Seed))
		if err != nil {
			return nil, err
		}
		var sums, sqs [4]float64
		for r := 0; r < s.Repeats; r++ {
			mf, dwT, ro, rn, err := MeasureRuntimes(s, p)
			if err != nil {
				return nil, err
			}
			for i, t := range []time.Duration{mf, dwT, ro, rn} {
				sec := t.Seconds()
				sums[i] += sec
				sqs[i] += sec * sec
			}
		}
		row := []string{d.name}
		n := float64(s.Repeats)
		for i := range sums {
			mean := sums[i] / n
			variance := sqs[i]/n - mean*mean
			if variance < 0 {
				variance = 0
			}
			row = append(row, fmt.Sprintf("%.3f±%.3f", mean, math.Sqrt(variance)))
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep, nil
}
