package experiments

import (
	"fmt"
	"math/rand"
	"sort"

	"github.com/retrodb/retro/internal/extract"
	"github.com/retrodb/retro/internal/ml"
	"github.com/retrodb/retro/internal/vec"
)

// Fig13 reproduces Figure 13: regression of the movie production budget,
// per embedding type, reporting mean absolute error in dollars. Targets
// are standardised for training and de-standardised for the reported MAE.
func Fig13(s Scale) (*Report, error) {
	w := s.tmdbWorld()
	p, err := NewPipeline(w.DB, w.Embedding, extract.Options{}, s.ROParams, s.RNParams, s.dwConfig(s.Seed))
	if err != nil {
		return nil, err
	}
	var titles []string
	for title := range w.MovieBudget {
		if _, ok := p.Ex.Lookup("movies", "title", title); ok {
			titles = append(titles, title)
		}
	}
	sort.Strings(titles)
	if len(titles) < 20 {
		return nil, fmt.Errorf("experiments: too few movies for regression")
	}

	rep := &Report{
		ID:     "fig13",
		Title:  "Regression of Budget (MAE, millions of dollars)",
		Header: []string{"method", "mean MAE", "min", "max"},
		Notes: []string{
			"expected shape: DW beats all text-based embeddings (budget is relational: company tier, country); RO/RN slightly better than MF/PV; +DW combos close to DW or slightly better",
		},
	}
	for _, m := range AllMethods {
		var maes []float64
		for r := 0; r < s.Repeats; r++ {
			rng := rand.New(rand.NewSource(s.Seed + int64(999*r)))
			mae, err := runRegression(s, p, w.MovieBudget, titles, m, rng, s.Seed+int64(r))
			if err != nil {
				return nil, err
			}
			maes = append(maes, mae/1e6)
		}
		rep.Rows = append(rep.Rows, []string{string(m), f2(vec.Mean(maes)), f2(minOf(maes)), f2(maxOf(maes))})
	}
	return rep, nil
}

func runRegression(s Scale, p *Pipeline, budget map[string]float64, titles []string, m Method, rng *rand.Rand, seed int64) (float64, error) {
	perm := rng.Perm(len(titles))
	nTrain := min(s.RegressN, len(titles)*9/10)
	trainIdx := perm[:nTrain]
	testIdx := perm[nTrain:]
	if len(testIdx) > s.RegressN/9+1 {
		testIdx = testIdx[:s.RegressN/9+1]
	}
	if len(testIdx) == 0 {
		return 0, fmt.Errorf("experiments: empty regression test set")
	}
	dim, err := p.Dim(m)
	if err != nil {
		return 0, err
	}
	gather := func(idx []int) (*vec.Matrix, []float64, error) {
		x := vec.NewMatrix(len(idx), dim)
		y := make([]float64, len(idx))
		for i, id := range idx {
			v, err := p.Vector(m, "movies", "title", titles[id])
			if err != nil {
				return nil, nil, err
			}
			copy(x.Row(i), v)
			y[i] = budget[titles[id]]
		}
		return x, y, nil
	}
	trainX, trainY, err := gather(trainIdx)
	if err != nil {
		return 0, err
	}
	testX, testY, err := gather(testIdx)
	if err != nil {
		return 0, err
	}
	// Standardise targets on training statistics.
	mean := vec.Mean(trainY)
	std := vec.StdDev(trainY)
	if std == 0 {
		std = 1
	}
	zTrain := make([]float64, len(trainY))
	for i, v := range trainY {
		zTrain[i] = (v - mean) / std
	}
	cfg := s.nnConfig(seed)
	cfg.Dropout = 0.1
	reg := ml.NewRegressor(dim, cfg)
	if _, err := reg.Fit(trainX, zTrain); err != nil {
		return 0, err
	}
	// De-standardised MAE on the test set.
	var total float64
	for i := 0; i < testX.Rows; i++ {
		pred := reg.Predict(testX.Row(i))*std + mean
		d := pred - testY[i]
		if d < 0 {
			d = -d
		}
		total += d
	}
	return total / float64(testX.Rows), nil
}

// Fig14 reproduces Figure 14: link prediction of movie-genre relations.
// Embeddings are trained with the movie↔genre relation excluded; the
// Fig. 5c two-tower network classifies (movie, genre) pairs.
func Fig14(s Scale) (*Report, error) {
	w := s.tmdbWorld()
	p, err := NewPipeline(w.DB, w.Embedding, extract.Options{
		// §5.7 trains the embeddings "without considering the respective
		// relations": every movie↔genre group is hidden.
		ExcludeRelations: []string{
			"movies.title->genres.name",
			"movies.overview->genres.name",
			"movies.original_language->genres.name",
		},
	}, s.ROParams, s.RNParams, s.dwConfig(s.Seed))
	if err != nil {
		return nil, err
	}

	// Positive pairs from ground truth; negatives drawn uniformly from
	// absent (title, genre) combinations (§5.7's protocol).
	var titles []string
	for title := range w.MovieGenres {
		if _, ok := p.Ex.Lookup("movies", "title", title); ok {
			titles = append(titles, title)
		}
	}
	sort.Strings(titles)
	genreSet := map[string]map[string]bool{}
	for _, t := range titles {
		genreSet[t] = map[string]bool{}
		for _, g := range w.MovieGenres[t] {
			genreSet[t][g] = true
		}
	}

	rep := &Report{
		ID:     "fig14",
		Title:  "Link Prediction for Genres (pair classification accuracy)",
		Header: []string{"method", "mean acc", "min", "max"},
		Notes: []string{
			"expected shape: DW fails (~chance: genre nodes are structurally identical once the relation is hidden); retrofits beat PV; RO/RN ≥ MF; +DW lifts text-based methods",
		},
	}
	for _, m := range AllMethods {
		var accs []float64
		for r := 0; r < s.Repeats; r++ {
			rng := rand.New(rand.NewSource(s.Seed + int64(555*r)))
			acc, err := runLinkPrediction(s, p, w.GenreNames, titles, genreSet, m, rng, s.Seed+int64(r))
			if err != nil {
				return nil, err
			}
			accs = append(accs, acc)
		}
		rep.Rows = append(rep.Rows, []string{string(m), f3(vec.Mean(accs)), f3(minOf(accs)), f3(maxOf(accs))})
	}
	return rep, nil
}

func runLinkPrediction(s Scale, p *Pipeline, genres []string, titles []string, truth map[string]map[string]bool, m Method, rng *rand.Rand, seed int64) (float64, error) {
	type pair struct {
		title, genre string
		label        float64
	}
	var pairs []pair
	// Positives.
	for _, t := range titles {
		for g := range truth[t] {
			pairs = append(pairs, pair{t, g, 1})
		}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].title != pairs[j].title {
			return pairs[i].title < pairs[j].title
		}
		return pairs[i].genre < pairs[j].genre
	})
	nPos := len(pairs)
	// Negatives: equal count of absent pairs.
	for len(pairs) < 2*nPos {
		t := titles[rng.Intn(len(titles))]
		g := genres[rng.Intn(len(genres))]
		if !truth[t][g] {
			pairs = append(pairs, pair{t, g, 0})
		}
	}
	rng.Shuffle(len(pairs), func(i, j int) { pairs[i], pairs[j] = pairs[j], pairs[i] })

	nTrain := len(pairs) * 2 / 3
	dim, err := p.Dim(m)
	if err != nil {
		return 0, err
	}
	gather := func(ps []pair) (*vec.Matrix, *vec.Matrix, []float64, error) {
		src := vec.NewMatrix(len(ps), dim)
		dst := vec.NewMatrix(len(ps), dim)
		y := make([]float64, len(ps))
		for i, pr := range ps {
			sv, err := p.Vector(m, "movies", "title", pr.title)
			if err != nil {
				return nil, nil, nil, err
			}
			dv, err := p.Vector(m, "genres", "name", pr.genre)
			if err != nil {
				return nil, nil, nil, err
			}
			copy(src.Row(i), sv)
			copy(dst.Row(i), dv)
			y[i] = pr.label
		}
		return src, dst, y, nil
	}
	trainS, trainD, trainY, err := gather(pairs[:nTrain])
	if err != nil {
		return 0, err
	}
	testS, testD, testY, err := gather(pairs[nTrain:])
	if err != nil {
		return 0, err
	}
	// The two-tower network must refine a shared projection before the
	// difference becomes informative; give it a longer budget than the
	// plain classifiers and a touch of weight decay against pair
	// memorisation.
	cfg := s.nnConfig(seed)
	cfg.Epochs *= 4
	cfg.Patience *= 4
	cfg.LearnRate = 0.02
	cfg.L2 = 5e-4
	lp := ml.NewLinkPredictor(dim, dim, cfg)
	if _, err := lp.Fit(trainS, trainD, trainY); err != nil {
		return 0, err
	}
	return lp.Accuracy(testS, testD, testY), nil
}
