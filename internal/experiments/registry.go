package experiments

import (
	"fmt"
	"sort"
)

// Runner executes one reproduced table or figure at a scale.
type Runner func(s Scale) (*Report, error)

// Registry maps experiment ids to runners, in the paper's order.
var Registry = map[string]Runner{
	"table1": Table1,
	"table2": Table2,
	"fig3":   func(s Scale) (*Report, error) { return Fig3() },
	"fig4":   Fig4,
	"fig6":   Fig6,
	"fig7":   Fig7,
	"fig8":   Fig8,
	"fig9":   Fig9,
	"fig10":  Fig10,
	"fig11":  Fig11,
	"fig12a": Fig12a,
	"fig12b": Fig12b,
	"fig13":  Fig13,
	"fig14":  Fig14,
	// Extra ablations beyond the paper's artefacts (DESIGN.md §2).
	"ablation-combine": AblationCombine,
}

// Order lists experiment ids in presentation order.
var Order = []string{
	"table1", "table2", "fig3", "fig4", "fig6", "fig7", "fig8", "fig9",
	"fig10", "fig11", "fig12a", "fig12b", "fig13", "fig14",
}

// Run executes one experiment by id.
func Run(id string, s Scale) (*Report, error) {
	r, ok := Registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (known: %v)", id, knownIDs())
	}
	return r(s)
}

func knownIDs() []string {
	ids := make([]string, 0, len(Registry))
	for id := range Registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}
