package experiments

import (
	"fmt"
	"time"

	"github.com/retrodb/retro/internal/core"
	"github.com/retrodb/retro/internal/datagen"
	"github.com/retrodb/retro/internal/extract"
)

// fig3Spec is the paper's Figure 3 setup: three movies, two countries,
// 2-dimensional embeddings, one movie->country relation.
func fig3Spec() core.ManualSpec {
	return core.ManualSpec{
		Dim:           2,
		NumCategories: 2,
		Values: []core.ManualValue{
			{Label: "Inception", Category: 0, Vector: []float64{1.0, 0.2}},
			{Label: "Godfather", Category: 0, Vector: []float64{0.8, -0.3}},
			{Label: "Amelie", Category: 0, Vector: []float64{-0.5, 0.9}},
			{Label: "USA", Category: 1, Vector: []float64{0.6, -0.8}},
			{Label: "France", Category: 1, Vector: []float64{-0.9, 0.4}},
		},
		Relations: []core.ManualRelation{{
			Name:  "movie->country",
			Edges: []core.Edge{{From: 0, To: 3}, {From: 1, To: 3}, {From: 2, To: 4}},
		}},
	}
}

// Fig3 reproduces Figure 3: the learned 2-d coordinates of the example
// dataset under sweeps of each hyperparameter (a: α, b: β, c: γ, d: δ).
func Fig3() (*Report, error) {
	p, err := core.BuildManualProblem(fig3Spec())
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:     "fig3",
		Title:  "Hyperparameter Geometry (2-d example, RO solver, 30 iterations)",
		Header: []string{"sweep", "config", "Inception", "Godfather", "Amelie", "USA", "France"},
		Notes: []string{
			"shape: higher α stays near W0; higher β tightens columns; higher γ pulls related pairs; δ=0 collapses toward the centroid hull, higher δ spreads",
		},
	}
	sweeps := []struct {
		name   string
		config func(v float64) core.Hyperparams
		values []float64
	}{
		{"a: alpha", func(v float64) core.Hyperparams {
			return core.Hyperparams{Alpha: v, Beta: 1, Gamma: 2, Delta: 1, Iterations: 30}
		}, []float64{1, 2, 3}},
		{"b: beta", func(v float64) core.Hyperparams {
			return core.Hyperparams{Alpha: 2, Beta: v, Gamma: 2, Delta: 1, Iterations: 30}
		}, []float64{1, 2, 3}},
		{"c: gamma", func(v float64) core.Hyperparams {
			return core.Hyperparams{Alpha: 2, Beta: 1, Gamma: v, Delta: 1, Iterations: 30}
		}, []float64{1, 2, 3}},
		{"d: delta", func(v float64) core.Hyperparams {
			return core.Hyperparams{Alpha: 2, Beta: 1, Gamma: 3, Delta: v, Iterations: 30}
		}, []float64{0, 1, 2}},
	}
	for _, sweep := range sweeps {
		for _, v := range sweep.values {
			h := sweep.config(v)
			res := core.SolveRO(p, h, core.SolveOptions{})
			row := []string{sweep.name, fmt.Sprintf("%v", v)}
			for i := 0; i < p.N; i++ {
				row = append(row, fmt.Sprintf("(%.2f,%.2f)", res.W.At(i, 0), res.W.At(i, 1)))
			}
			rep.Rows = append(rep.Rows, row)
		}
	}
	return rep, nil
}

// Fig4 reproduces Figure 4: wall-clock runtime of RO and RN over growing
// fractions of the TMDB database (the paper removes movies above
// increasing id thresholds; we generate growing worlds).
func Fig4(s Scale) (*Report, error) {
	rep := &Report{
		ID:     "fig4",
		Title:  "Runtime of Relational Retrofitting vs database size (seconds)",
		Header: []string{"movies", "text values", "RO", "RN", "RO/RN"},
		Notes: []string{
			"expected shape: both grow roughly linearly in text values; RO is roughly an order of magnitude slower than RN (paper: ~10x on TMDB)",
		},
	}
	fractions := []float64{0.125, 0.25, 0.5, 0.75, 1.0}
	for _, f := range fractions {
		movies := int(float64(s.Movies) * f)
		if movies < 10 {
			movies = 10
		}
		w := datagen.TMDB(datagen.TMDBConfig{Movies: movies, Dim: s.Dim, Seed: s.Seed})
		p, err := NewPipeline(w.DB, w.Embedding, extract.Options{}, s.ROParams, s.RNParams, s.dwConfig(s.Seed))
		if err != nil {
			return nil, err
		}
		start := time.Now()
		core.SolveRO(p.Problem, s.ROParams, core.SolveOptions{})
		ro := time.Since(start)
		start = time.Now()
		core.SolveRN(p.Problem, s.RNParams, core.SolveOptions{})
		rn := time.Since(start)
		ratio := 0.0
		if rn > 0 {
			ratio = ro.Seconds() / rn.Seconds()
		}
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%d", movies),
			fmt.Sprintf("%d", p.Ex.NumValues()),
			f3(ro.Seconds()), f3(rn.Seconds()), f2(ratio),
		})
	}
	return rep, nil
}
