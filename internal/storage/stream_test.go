package storage

import (
	"bytes"
	"strings"
	"testing"

	"github.com/retrodb/retro/internal/reldb"
)

func streamRecords() []Record {
	return []Record{
		{Seq: 7, Batch: Batch{Table: "movies", Rows: [][]reldb.Value{
			{reldb.Int(1), reldb.Text("alpha"), reldb.Null},
			{reldb.Int(2), reldb.Text("beta"), reldb.Float(0.5)},
		}}},
		{Seq: 8, Batch: Batch{Table: "people", Rows: [][]reldb.Value{
			{reldb.Text("carol"), reldb.Bool(true)},
		}}},
	}
}

func TestStreamRoundTrip(t *testing.T) {
	recs := streamRecords()
	var buf bytes.Buffer
	if err := WriteStream(&buf, 42, recs); err != nil {
		t.Fatal(err)
	}
	lastSeq, got, err := ReadStream(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if lastSeq != 42 {
		t.Fatalf("lastSeq = %d, want 42", lastSeq)
	}
	if len(got) != len(recs) {
		t.Fatalf("got %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i].Seq != recs[i].Seq {
			t.Fatalf("record %d seq = %d, want %d", i, got[i].Seq, recs[i].Seq)
		}
		if got[i].Batch.Table != recs[i].Batch.Table {
			t.Fatalf("record %d table = %q, want %q", i, got[i].Batch.Table, recs[i].Batch.Table)
		}
		if len(got[i].Batch.Rows) != len(recs[i].Batch.Rows) {
			t.Fatalf("record %d rows = %d, want %d", i, len(got[i].Batch.Rows), len(recs[i].Batch.Rows))
		}
		for r, row := range recs[i].Batch.Rows {
			for c, v := range row {
				if got[i].Batch.Rows[r][c] != v {
					t.Fatalf("record %d row %d col %d = %v, want %v", i, r, c, got[i].Batch.Rows[r][c], v)
				}
			}
		}
	}
}

func TestStreamEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteStream(&buf, 9, nil); err != nil {
		t.Fatal(err)
	}
	lastSeq, recs, err := ReadStream(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if lastSeq != 9 || len(recs) != 0 {
		t.Fatalf("lastSeq=%d recs=%d, want 9 and 0", lastSeq, len(recs))
	}
}

func TestStreamCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteStream(&buf, 42, streamRecords()); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	t.Run("bad magic", func(t *testing.T) {
		if _, _, err := ReadStream(strings.NewReader("NOTASTRM" + string(good[8:]))); err == nil {
			t.Fatal("want error for bad magic")
		}
	})
	t.Run("truncated", func(t *testing.T) {
		for _, cut := range []int{len(good) / 4, len(good) / 2, len(good) - 3} {
			if _, _, err := ReadStream(bytes.NewReader(good[:cut])); err == nil {
				t.Fatalf("want error for truncation at %d", cut)
			}
		}
	})
	t.Run("flipped payload bit", func(t *testing.T) {
		// Flip a byte well past the header frame: CRC must catch it.
		bad := append([]byte(nil), good...)
		bad[len(bad)-2] ^= 0x40
		if _, _, err := ReadStream(bytes.NewReader(bad)); err == nil {
			t.Fatal("want error for corrupted payload")
		}
	})
}
