package storage

import (
	"errors"
	"os"
	"path/filepath"
	"slices"
	"testing"
)

func TestManifestRoundTrip(t *testing.T) {
	m := &Manifest{
		Epoch: 42, WALSeq: 17,
		Base: "base-000001.snap", WAL: "wal-000042.wal",
		Segments: []string{"seg-000002.seg", "seg-000007.seg"},
	}
	got, err := DecodeManifest(EncodeManifest(m))
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != m.Epoch || got.WALSeq != m.WALSeq || got.Base != m.Base ||
		got.WAL != m.WAL || !slices.Equal(got.Segments, m.Segments) {
		t.Fatalf("round trip = %+v, want %+v", got, m)
	}
}

func TestManifestCorruptionDetected(t *testing.T) {
	m := &Manifest{Epoch: 1, Base: "base-000001.snap", WAL: "wal-000001.wal"}
	data := EncodeManifest(m)
	for _, tc := range []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"empty", func(b []byte) []byte { return nil }},
		{"truncated header", func(b []byte) []byte { return b[:10] }},
		{"truncated payload", func(b []byte) []byte { return b[:len(b)-4] }},
		{"bad magic", func(b []byte) []byte { c := slices.Clone(b); c[0] ^= 0xff; return c }},
		{"bit flip in payload", func(b []byte) []byte { c := slices.Clone(b); c[len(c)-1] ^= 0x01; return c }},
		{"version skew", func(b []byte) []byte { c := slices.Clone(b); c[8] = 0xee; return c }},
	} {
		if _, err := DecodeManifest(tc.mutate(slices.Clone(data))); err == nil {
			t.Errorf("%s: corruption accepted", tc.name)
		}
	}
}

func TestManifestRejectsPathTraversal(t *testing.T) {
	for _, bad := range []string{"../evil.snap", "/etc/passwd", "a/b.seg", ""} {
		m := &Manifest{Epoch: 1, Base: bad, WAL: "wal-000001.wal"}
		if _, err := DecodeManifest(EncodeManifest(m)); err == nil {
			t.Errorf("file name %q accepted", bad)
		}
	}
}

func TestWriteManifestAtomic(t *testing.T) {
	dir := t.TempDir()
	m1 := &Manifest{Epoch: 1, Base: "base-000001.snap", WAL: "wal-000001.wal"}
	if err := WriteManifest(dir, m1, nil); err != nil {
		t.Fatal(err)
	}
	// A failed rewrite must leave the previous manifest untouched.
	m2 := &Manifest{Epoch: 2, Base: "base-000001.snap", WAL: "wal-000002.wal"}
	sys := &Sys{Rename: func(oldpath, newpath string) error { return errors.New("injected") }}
	if err := WriteManifest(dir, m2, sys); err == nil {
		t.Fatal("rename failure not surfaced")
	}
	got, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != 1 || got.WAL != "wal-000001.wal" {
		t.Fatalf("failed rewrite clobbered the manifest: %+v", got)
	}
	// And a successful one replaces it.
	if err := WriteManifest(dir, m2, nil); err != nil {
		t.Fatal(err)
	}
	if got, _ := ReadManifest(dir); got == nil || got.Epoch != 2 {
		t.Fatalf("rewrite not visible: %+v", got)
	}
}

func TestReadManifestMissing(t *testing.T) {
	if _, err := ReadManifest(t.TempDir()); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing manifest error = %v, want os.ErrNotExist", err)
	}
}

func TestCleanDirSweepsOrphans(t *testing.T) {
	dir := t.TempDir()
	m := &Manifest{
		Epoch: 3, Base: "base-000001.snap", WAL: "wal-000003.wal",
		Segments: []string{"seg-000002.seg"},
	}
	referenced := []string{"base-000001.snap", "wal-000003.wal", "seg-000002.seg"}
	orphans := []string{"seg-000003.seg", "wal-000002.wal", "base-000002.snap", "MANIFEST.tmp123", "seg-000004.seg.tmp42"}
	foreign := []string{"notes.txt", "model.bin"}
	for _, name := range append(append(append([]string{}, referenced...), orphans...), foreign...) {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	CleanDir(dir, m)
	for _, name := range append(referenced, foreign...) {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("%s should have survived: %v", name, err)
		}
	}
	for _, name := range orphans {
		if _, err := os.Stat(filepath.Join(dir, name)); !errors.Is(err, os.ErrNotExist) {
			t.Errorf("orphan %s not swept", name)
		}
	}
}
