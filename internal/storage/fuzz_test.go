package storage

import (
	"bytes"
	"slices"
	"testing"

	"github.com/retrodb/retro/internal/wire"
)

// FuzzManifest throws arbitrary bytes at the manifest decoder: it must
// either return an error or a manifest that re-encodes decodably — and
// never panic or over-allocate on lying length fields.
func FuzzManifest(f *testing.F) {
	f.Add(EncodeManifest(&Manifest{Epoch: 1, Base: "base-000001.snap", WAL: "wal-000001.wal"}))
	f.Add(EncodeManifest(&Manifest{
		Epoch: 99, WALSeq: 12345,
		Base: "base-000042.snap", WAL: "wal-000099.wal",
		Segments: []string{"seg-000043.seg", "seg-000050.seg", "seg-000099.seg"},
	}))
	f.Add([]byte("RETROMFT"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeManifest(data)
		if err != nil {
			return
		}
		got, err := DecodeManifest(EncodeManifest(m))
		if err != nil {
			t.Fatalf("accepted manifest did not re-encode: %v", err)
		}
		if got.Epoch != m.Epoch || got.WALSeq != m.WALSeq || got.Base != m.Base ||
			got.WAL != m.WAL || !slices.Equal(got.Segments, m.Segments) {
			t.Fatalf("re-encode changed the manifest: %+v vs %+v", got, m)
		}
	})
}

// FuzzWALRecord fuzzes the batch payload codec shared by WAL records and
// segment batches: arbitrary bytes must decode to an error or to a batch
// that round-trips.
func FuzzWALRecord(f *testing.F) {
	seed := func(b Batch) []byte {
		var buf bytes.Buffer
		w := wire.NewWriter(&buf)
		encodeBatch(w, &b)
		_ = w.Flush()
		return buf.Bytes()
	}
	f.Add(seed(CloneBatch("movies", testRows("matrix"))))
	f.Add(seed(CloneBatch("people", testRows("lynch", "kaurismaki"))))
	f.Add(seed(Batch{Table: "empty"}))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := wire.NewReader(bytes.NewReader(data))
		b := decodeBatch(r)
		if r.Err() != nil {
			return
		}
		var buf bytes.Buffer
		w := wire.NewWriter(&buf)
		encodeBatch(w, &b)
		if err := w.Flush(); err != nil {
			t.Fatalf("accepted batch did not re-encode: %v", err)
		}
		r2 := wire.NewReader(bytes.NewReader(buf.Bytes()))
		b2 := decodeBatch(r2)
		if r2.Err() != nil {
			t.Fatalf("re-encoded batch did not decode: %v", r2.Err())
		}
		// Compare the canonical encodings, not the structs: a NaN float
		// survives the codec bit-exactly but never compares equal.
		var buf2 bytes.Buffer
		w2 := wire.NewWriter(&buf2)
		encodeBatch(w2, &b2)
		_ = w2.Flush()
		if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
			t.Fatal("batch round trip changed the content")
		}
	})
}

// FuzzSegment covers the outer segment frame (magic, version, length,
// checksum) over the batch codec.
func FuzzSegment(f *testing.F) {
	f.Add(EncodeSegment(fixtureSegment()))
	f.Add(EncodeSegment(fixtureSegmentF32()))
	f.Add(EncodeSegment(&Segment{FromEpoch: 1, ToEpoch: 2}))
	f.Add([]byte("RETROSEG"))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeSegment(data)
		if err != nil {
			return
		}
		if _, err := DecodeSegment(EncodeSegment(s)); err != nil {
			t.Fatalf("accepted segment did not re-encode: %v", err)
		}
	})
}
