// The replication stream wire format: how a primary ships WAL records
// to a tailing follower over HTTP. One response body is a header frame
// (magic, the primary's current high-water mark, record count) followed
// by the records, each framed exactly like an on-disk WAL record —
// sequence number, payload length, payload CRC, payload — so the same
// corruption detection guards the network path and the disk path. The
// stream is seq-addressed: a follower asks for "records after N" and the
// primary answers with the contiguous run N+1, N+2, ... it still holds.

package storage

import (
	"bytes"
	"fmt"
	"hash/crc32"
	"io"

	"github.com/retrodb/retro/internal/wire"
)

const (
	streamMagic   = "RETROSTR"
	streamVersion = 1

	// MaxStreamRecords caps one stream response; a lagging follower
	// catches up over multiple requests instead of one unbounded body.
	MaxStreamRecords = 1 << 16
)

// WriteStream renders one replication response: lastSeq is the
// primary's current WAL high-water mark (which may be ahead of the last
// record included, letting the follower compute its lag), recs the
// contiguous records being shipped.
func WriteStream(w io.Writer, lastSeq uint64, recs []Record) error {
	bw := wire.NewWriter(w)
	bw.Bytes([]byte(streamMagic))
	bw.U32(streamVersion)
	bw.U64(lastSeq)
	bw.U32(uint32(len(recs)))
	for i := range recs {
		var payload bytes.Buffer
		pw := wire.NewWriter(&payload)
		encodeBatch(pw, &recs[i].Batch)
		if err := pw.Flush(); err != nil {
			return err
		}
		bw.U64(recs[i].Seq)
		bw.U32(uint32(payload.Len()))
		bw.U32(crc32.ChecksumIEEE(payload.Bytes()))
		bw.Bytes(payload.Bytes())
	}
	return bw.Flush()
}

// ReadStream parses a replication response written by WriteStream. The
// records are validated frame by frame — length bound, CRC, decode — and
// any corruption is an error: unlike a torn WAL tail there is no
// legitimate way for a stream body to end early, so the follower drops
// the response and re-polls rather than applying a prefix.
func ReadStream(r io.Reader) (lastSeq uint64, recs []Record, err error) {
	br := wire.NewReader(r)
	magic := make([]byte, len(streamMagic))
	br.Bytes(magic)
	if br.Err() == nil && string(magic) != streamMagic {
		return 0, nil, fmt.Errorf("storage: bad stream magic %q", magic)
	}
	version := br.U32()
	if br.Err() == nil && version != streamVersion {
		return 0, nil, fmt.Errorf("storage: unsupported stream version %d", version)
	}
	lastSeq = br.U64()
	count := br.Count32(MaxStreamRecords)
	if err := br.Err(); err != nil {
		return 0, nil, fmt.Errorf("storage: stream header: %w", err)
	}
	for i := 0; i < count; i++ {
		seq := br.U64()
		n := br.U32()
		crc := br.U32()
		if br.Err() == nil && int64(n) > maxRecordLen {
			return 0, nil, fmt.Errorf("storage: stream record %d claims %d bytes", i, n)
		}
		payload := make([]byte, n)
		br.Bytes(payload)
		if err := br.Err(); err != nil {
			return 0, nil, fmt.Errorf("storage: stream record %d: %w", i, err)
		}
		if got := crc32.ChecksumIEEE(payload); got != crc {
			return 0, nil, fmt.Errorf("storage: stream record %d checksum mismatch (want %08x, got %08x)", i, crc, got)
		}
		pr := wire.NewReader(bytes.NewReader(payload))
		b := decodeBatch(pr)
		if err := pr.Err(); err != nil {
			return 0, nil, fmt.Errorf("storage: stream record %d payload: %w", i, err)
		}
		recs = append(recs, Record{Seq: seq, Batch: b})
	}
	return lastSeq, recs, nil
}
