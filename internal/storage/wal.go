// The write-ahead log: an append-only file of CRC-framed committed
// insert batches. Appends happen after the database commit and before
// the embedding repair; an insert is acknowledged only after its record
// is fsynced, so every acknowledged write survives a crash. On boot the
// tail (records past the manifest's high-water mark) replays through
// the session's delta-repair path, and a torn final record — a crash
// mid-append — is detected by its checksum and truncated away.

package storage

import (
	"bytes"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"time"

	"github.com/retrodb/retro/internal/reldb"
	"github.com/retrodb/retro/internal/wire"
)

const (
	walMagic   = "RETROWAL"
	walVersion = 1

	walHeaderSize = 8 + 4 + 8 // magic | version u32 | baseSeq u64
	recHeaderSize = 8 + 4 + 4 // seq u64 | payload len u32 | payload crc u32

	maxRecordLen = 1 << 30 // 1 GiB: far above any real batch
)

// Record is one recovered WAL entry.
type Record struct {
	Seq   uint64
	Batch Batch
}

// WALStats counts a log's activity since it was opened or created.
type WALStats struct {
	Path      string
	BaseSeq   uint64 // seq of the last record before this file
	LastSeq   uint64 // seq of the last appended/recovered record
	Records   int    // records appended plus recovered
	Bytes     int64  // current file size
	Appends   uint64 // Append calls on this handle
	Syncs     uint64 // fsyncs issued by this handle
	SyncNanos int64  // cumulative fsync wall time
	Truncated bool   // a torn tail was cut off at open
}

// WAL is an open write-ahead log positioned for appends. Append and
// Sync require external synchronisation (the engine serialises them
// under its own mutex); Stats may be called concurrently with neither.
type WAL struct {
	f    *os.File
	path string
	sys  *Sys

	baseSeq   uint64
	seq       uint64 // last record written or recovered
	size      int64
	records   int
	truncated bool

	syncEvery int
	sinceSync int

	appends   uint64
	syncs     uint64
	syncNanos int64
}

// CreateWAL creates a fresh log at path whose records continue from
// baseSeq+1 (the manifest's high-water mark at rotation time). The
// header is written and synced before the call returns, so a manifest
// referencing the file never points at a missing or empty-garbage log.
func CreateWAL(path string, baseSeq uint64, sys *Sys) (*WAL, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	var hdr bytes.Buffer
	w := wire.NewWriter(&hdr)
	w.Bytes([]byte(walMagic))
	w.U32(walVersion)
	w.U64(baseSeq)
	_ = w.Flush()
	if _, err := f.Write(hdr.Bytes()); err != nil {
		f.Close()
		return nil, err
	}
	if err := sys.fsync(f); err != nil {
		f.Close()
		return nil, err
	}
	syncDir(filepath.Dir(path))
	return &WAL{
		f: f, path: path, sys: sys,
		baseSeq: baseSeq, seq: baseSeq,
		size: walHeaderSize, syncEvery: 1,
	}, nil
}

// OpenWAL opens an existing log, scans every record, truncates a torn
// tail (a partial or corrupt final record from a crash mid-append), and
// returns the handle positioned for appends plus the intact records in
// order. Records must be contiguous from baseSeq+1; the first gap or
// checksum failure ends the intact prefix.
func OpenWAL(path string, sys *Sys) (*WAL, []Record, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, err
	}
	w := &WAL{f: f, path: path, sys: sys, syncEvery: 1}
	records, good, err := scanWAL(f, w)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	if fi, err := f.Stat(); err == nil && fi.Size() > good {
		// Torn tail: cut it off so the next append starts on a clean
		// record boundary instead of interleaving with garbage.
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("storage: truncating torn WAL tail: %w", err)
		}
		w.truncated = true
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, err
	}
	w.size = good
	w.records = len(records)
	return w, records, nil
}

// ScanWALInfo summarises a log read-only (for `retro storage info`):
// no truncation, no write access.
func ScanWALInfo(path string) (WALStats, []Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return WALStats{}, nil, err
	}
	defer f.Close()
	w := &WAL{path: path}
	records, good, err := scanWAL(f, w)
	if err != nil {
		return WALStats{}, nil, err
	}
	st := WALStats{
		Path: path, BaseSeq: w.baseSeq, LastSeq: w.seq,
		Records: len(records), Bytes: good,
	}
	if fi, err := f.Stat(); err == nil && fi.Size() > good {
		st.Truncated = true
		st.Bytes = fi.Size()
	}
	return st, records, nil
}

// scanWAL validates the header and reads the intact record prefix,
// filling w's baseSeq/seq. It returns the records and the offset just
// past the last intact record. Header corruption is a hard error (the
// file is not a WAL); record corruption merely ends the prefix.
func scanWAL(f *os.File, w *WAL) ([]Record, int64, error) {
	hdr := make([]byte, walHeaderSize)
	if _, err := io.ReadFull(f, hdr); err != nil {
		return nil, 0, fmt.Errorf("storage: WAL header: %w", err)
	}
	r := wire.NewReader(bytes.NewReader(hdr))
	magic := make([]byte, len(walMagic))
	r.Bytes(magic)
	if string(magic) != walMagic {
		return nil, 0, fmt.Errorf("storage: bad WAL magic %q", magic)
	}
	if v := r.U32(); v != walVersion {
		return nil, 0, fmt.Errorf("storage: unsupported WAL version %d", v)
	}
	w.baseSeq = r.U64()
	w.seq = w.baseSeq

	var records []Record
	good := int64(walHeaderSize)
	rec := make([]byte, recHeaderSize)
	for {
		if _, err := io.ReadFull(f, rec); err != nil {
			break // clean EOF or torn header: prefix ends here
		}
		rr := wire.NewReader(bytes.NewReader(rec))
		seq := rr.U64()
		n := rr.U32()
		crc := rr.U32()
		if seq != w.seq+1 || int64(n) > maxRecordLen {
			break // gap or nonsense length: treat as corruption
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(f, payload); err != nil {
			break // torn payload
		}
		if crc32.ChecksumIEEE(payload) != crc {
			break // bit rot or half-written record
		}
		pr := wire.NewReader(bytes.NewReader(payload))
		b := decodeBatch(pr)
		if pr.Err() != nil {
			break // framed length lied about the content
		}
		w.seq = seq
		records = append(records, Record{Seq: seq, Batch: b})
		good += int64(recHeaderSize) + int64(n)
	}
	return records, good, nil
}

// Append durably logs one committed batch and returns its sequence
// number. With SyncEvery == 1 (the default) the record is fsynced
// before Append returns — the acknowledgement barrier. A sync failure
// leaves the record's durability unknown: the caller must withhold the
// acknowledgement, and recovery tolerates the record being present or
// absent.
func (w *WAL) Append(table string, rows [][]reldb.Value) (uint64, error) {
	b := cloneBatch(table, rows)
	var payload bytes.Buffer
	pw := wire.NewWriter(&payload)
	encodeBatch(pw, &b)
	if err := pw.Flush(); err != nil {
		return 0, err
	}
	seq := w.seq + 1
	var frame bytes.Buffer
	fw := wire.NewWriter(&frame)
	fw.U64(seq)
	fw.U32(uint32(payload.Len()))
	fw.U32(crc32.ChecksumIEEE(payload.Bytes()))
	fw.Bytes(payload.Bytes())
	_ = fw.Flush()

	if _, err := w.f.Write(frame.Bytes()); err != nil {
		// Claw back whatever partial frame landed so the file stays
		// well-formed for the next attempt; if even that fails the torn
		// record is caught by its checksum on recovery.
		_ = w.f.Truncate(w.size)
		_, _ = w.f.Seek(w.size, io.SeekStart)
		return 0, err
	}
	w.seq = seq
	w.size += int64(frame.Len())
	w.records++
	w.appends++
	w.sinceSync++
	if w.sinceSync >= w.syncEvery {
		if err := w.Sync(); err != nil {
			return 0, err
		}
	}
	return seq, nil
}

// Sync flushes pending records to stable storage (group commit when
// SyncEvery > 1).
func (w *WAL) Sync() error {
	start := time.Now()
	err := w.sys.fsync(w.f)
	w.syncNanos += time.Since(start).Nanoseconds()
	w.syncs++
	if err != nil {
		return fmt.Errorf("storage: WAL fsync: %w", err)
	}
	w.sinceSync = 0
	return nil
}

// SetSyncEvery sets the group-commit interval: fsync once every n
// appends (n <= 1 syncs every append, the durable default). Raising it
// trades the tail of unacknowledged-but-committed records on crash for
// fewer fsyncs under bulk load.
func (w *WAL) SetSyncEvery(n int) {
	if n < 1 {
		n = 1
	}
	w.syncEvery = n
}

// Seq returns the sequence number of the last record in the log (the
// base seq when empty).
func (w *WAL) Seq() uint64 { return w.seq }

// Path returns the log's file path.
func (w *WAL) Path() string { return w.path }

// Truncated reports whether open cut off a torn tail.
func (w *WAL) Truncated() bool { return w.truncated }

// Stats returns activity counters for this handle.
func (w *WAL) Stats() WALStats {
	return WALStats{
		Path: w.path, BaseSeq: w.baseSeq, LastSeq: w.seq,
		Records: w.records, Bytes: w.size,
		Appends: w.appends, Syncs: w.syncs, SyncNanos: w.syncNanos,
		Truncated: w.truncated,
	}
}

// Close syncs outstanding records and closes the file.
func (w *WAL) Close() error {
	if w.f == nil {
		return nil
	}
	var err error
	if w.sinceSync > 0 {
		err = w.Sync()
	}
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	return err
}
