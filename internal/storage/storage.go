// Package storage implements the epoch-based storage engine's on-disk
// layer: a CRC-framed write-ahead log of committed insert batches, delta
// snapshot segments keyed by view epoch, and a versioned MANIFEST that
// makes recovery a pure function of the data directory.
//
// Layout of a data directory (all integers little-endian):
//
//	MANIFEST            current epoch, WAL high-water mark, base snapshot,
//	                    ordered segment chain, active WAL (atomic rename)
//	base-NNNNNN.snap    full model snapshot (internal/snapshot format)
//	seg-NNNNNN.seg      rows committed + vectors changed since the previous
//	                    checkpoint epoch (O(delta), not O(model))
//	wal-NNNNNN.wal      committed insert batches since the last checkpoint
//
// Recovery = manifest -> base -> segments (rows into the database,
// vectors into the store) -> WAL tail replay through the delta-repair
// path. Every checkpoint rotates the WAL: a fresh log file is created,
// the manifest is atomically renamed to reference it, and only then is
// the old log deleted — so at every instant some manifest on disk names
// a base + segment chain + WAL that together reproduce all acknowledged
// writes. Files not referenced by the manifest are orphans from an
// interrupted checkpoint and are swept on the next open.
//
// All fsync and rename calls route through an injectable Sys so a
// crash-recovery harness can kill the writer at any durability point.
package storage

import (
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strings"

	"github.com/retrodb/retro/internal/wire"
)

const (
	// ManifestName is the manifest file name inside a data directory.
	ManifestName = "MANIFEST"

	manifestMagic   = "RETROMFT"
	manifestVersion = 1

	maxNameLen  = 1 << 12
	maxSegments = 1 << 16
)

// Sys bundles the durability syscalls the storage layer performs, so a
// crash-recovery test can fail fsync or rename at a chosen call and
// assert that recovery still reproduces every acknowledged write. A nil
// *Sys (or a nil field) selects the real syscall.
type Sys struct {
	// Fsync flushes a file's data to stable storage.
	Fsync func(f *os.File) error
	// Rename atomically replaces newpath with oldpath.
	Rename func(oldpath, newpath string) error
}

func (s *Sys) fsync(f *os.File) error {
	if s != nil && s.Fsync != nil {
		return s.Fsync(f)
	}
	return f.Sync()
}

func (s *Sys) rename(oldpath, newpath string) error {
	if s != nil && s.Rename != nil {
		return s.Rename(oldpath, newpath)
	}
	return os.Rename(oldpath, newpath)
}

// WriteFileAtomic writes path via a temp file + fsync + rename (plus a
// best-effort directory sync), with the durability calls routed through
// sys. A crash or failure mid-write never leaves a truncated file at
// path; the previous content, if any, stays intact until the rename.
func WriteFileAtomic(path string, sys *Sys, write func(io.Writer) error) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := write(tmp); err != nil {
		tmp.Close()
		return err
	}
	// Data blocks must be durable before the rename becomes visible, or
	// a power loss could persist the new name pointing at lost data.
	if err := sys.fsync(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := sys.rename(tmp.Name(), path); err != nil {
		return err
	}
	syncDir(filepath.Dir(path))
	return nil
}

// syncDir fsyncs a directory so a just-created or just-renamed entry
// survives a crash. Best effort: not every platform/filesystem supports
// directory fsync.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
}

// Manifest is the root of a data directory: recovery reads it and
// nothing else to decide what to load. It is updated by atomic rename,
// so a directory always holds exactly one complete manifest.
type Manifest struct {
	// Epoch is the checkpoint epoch: store rows stamped at or above it
	// have not yet been captured by a segment.
	Epoch uint64
	// WALSeq is the WAL high-water mark: records with seq <= WALSeq are
	// fully covered by the segment chain and must not replay.
	WALSeq uint64
	// Base is the full base snapshot file name (relative to the dir).
	Base string
	// WAL is the active write-ahead log file name.
	WAL string
	// Segments is the ordered delta segment chain, applied over Base.
	Segments []string
}

// EncodeManifest renders a manifest to its wire form.
func EncodeManifest(m *Manifest) []byte {
	var b strings.Builder
	w := wire.NewWriter(&b)
	w.U64(m.Epoch)
	w.U64(m.WALSeq)
	w.String(m.Base)
	w.String(m.WAL)
	w.U32(uint32(len(m.Segments)))
	for _, s := range m.Segments {
		w.String(s)
	}
	_ = w.Flush()
	payload := []byte(b.String())

	var out strings.Builder
	fw := wire.NewWriter(&out)
	fw.Bytes([]byte(manifestMagic))
	fw.U32(manifestVersion)
	fw.U64(uint64(len(payload)))
	fw.U32(crc32.ChecksumIEEE(payload))
	fw.Bytes(payload)
	_ = fw.Flush()
	return []byte(out.String())
}

// DecodeManifest parses a manifest written by EncodeManifest. Every
// corruption — bad magic, version skew, truncation, checksum or bounds
// violation — is an error, never a panic.
func DecodeManifest(data []byte) (*Manifest, error) {
	r := wire.NewReader(strings.NewReader(string(data)))
	magic := make([]byte, len(manifestMagic))
	r.Bytes(magic)
	if r.Err() == nil && string(magic) != manifestMagic {
		return nil, fmt.Errorf("storage: bad manifest magic %q", magic)
	}
	version := r.U32()
	if r.Err() == nil && version != manifestVersion {
		return nil, fmt.Errorf("storage: unsupported manifest version %d", version)
	}
	n := r.U64()
	if r.Err() == nil && n > uint64(len(data)) {
		return nil, fmt.Errorf("storage: manifest payload length %d exceeds file size %d", n, len(data))
	}
	crc := r.U32()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("storage: manifest header: %w", err)
	}
	payload := make([]byte, n)
	r.Bytes(payload)
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("storage: manifest payload: %w", err)
	}
	if got := crc32.ChecksumIEEE(payload); got != crc {
		return nil, fmt.Errorf("storage: manifest checksum mismatch (want %08x, got %08x)", crc, got)
	}

	pr := wire.NewReader(strings.NewReader(string(payload)))
	m := &Manifest{}
	m.Epoch = pr.U64()
	m.WALSeq = pr.U64()
	m.Base = pr.String(maxNameLen)
	m.WAL = pr.String(maxNameLen)
	count := pr.Count32(maxSegments)
	for i := 0; i < count; i++ {
		m.Segments = append(m.Segments, pr.String(maxNameLen))
	}
	if err := pr.Err(); err != nil {
		return nil, fmt.Errorf("storage: manifest body: %w", err)
	}
	for _, name := range append([]string{m.Base, m.WAL}, m.Segments...) {
		if name != filepath.Base(name) || name == "" || name == "." || name == ".." {
			return nil, fmt.Errorf("storage: manifest references invalid file name %q", name)
		}
	}
	return m, nil
}

// WriteManifest atomically installs m as dir's manifest.
func WriteManifest(dir string, m *Manifest, sys *Sys) error {
	data := EncodeManifest(m)
	return WriteFileAtomic(filepath.Join(dir, ManifestName), sys, func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	})
}

// ReadManifest loads dir's manifest. A missing manifest is reported via
// os.ErrNotExist (callers branch to fresh-start or legacy adoption).
func ReadManifest(dir string) (*Manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, err
	}
	return DecodeManifest(data)
}

// CleanDir removes storage files in dir that the manifest does not
// reference: segments, logs, bases and temp files left behind by a
// checkpoint that crashed between writing a file and renaming the
// manifest. Only names matching the engine's own patterns are touched;
// anything else in the directory is left alone. Best effort — an
// undeleted orphan is wasted space, not corruption.
func CleanDir(dir string, m *Manifest) {
	referenced := map[string]bool{ManifestName: true, m.Base: true, m.WAL: true}
	for _, s := range m.Segments {
		referenced[s] = true
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || referenced[name] {
			continue
		}
		if isStorageFile(name) {
			_ = os.Remove(filepath.Join(dir, name))
		}
	}
}

// isStorageFile reports whether name matches a file the engine itself
// writes (including in-flight temp files from WriteFileAtomic).
func isStorageFile(name string) bool {
	if strings.Contains(name, ".tmp") &&
		(strings.HasPrefix(name, "base-") || strings.HasPrefix(name, "seg-") ||
			strings.HasPrefix(name, "wal-") || strings.HasPrefix(name, ManifestName)) {
		return true
	}
	switch {
	case strings.HasPrefix(name, "base-") && strings.HasSuffix(name, ".snap"):
		return true
	case strings.HasPrefix(name, "seg-") && strings.HasSuffix(name, ".seg"):
		return true
	case strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".wal"):
		return true
	}
	return false
}

// BaseName returns the canonical base snapshot file name for an epoch.
func BaseName(epoch uint64) string { return fmt.Sprintf("base-%06d.snap", epoch) }

// SegmentName returns the canonical segment file name for an epoch.
func SegmentName(epoch uint64) string { return fmt.Sprintf("seg-%06d.seg", epoch) }

// WALName returns the canonical WAL file name for an epoch.
func WALName(epoch uint64) string { return fmt.Sprintf("wal-%06d.wal", epoch) }
