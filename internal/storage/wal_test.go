package storage

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"github.com/retrodb/retro/internal/reldb"
)

func testRows(texts ...string) [][]reldb.Value {
	rows := make([][]reldb.Value, len(texts))
	for i, s := range texts {
		rows[i] = []reldb.Value{reldb.Int(int64(i)), reldb.Text(s), reldb.Float(1.5), reldb.Bool(true), reldb.Null}
	}
	return rows
}

func sameRows(a, b [][]reldb.Value) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for c := range a[i] {
			if a[i][c] != b[i][c] {
				return false
			}
		}
	}
	return true
}

func TestWALRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal-000001.wal")
	w, err := CreateWAL(path, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	batches := [][][]reldb.Value{testRows("a"), testRows("b", "c"), testRows("d")}
	for i, rows := range batches {
		seq, err := w.Append("movies", rows)
		if err != nil {
			t.Fatal(err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("append %d returned seq %d", i, seq)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, records, err := OpenWAL(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if len(records) != 3 {
		t.Fatalf("recovered %d records, want 3", len(records))
	}
	for i, rec := range records {
		if rec.Seq != uint64(i+1) || rec.Batch.Table != "movies" || !sameRows(rec.Batch.Rows, batches[i]) {
			t.Fatalf("record %d = %+v", i, rec)
		}
	}
	if w2.Truncated() {
		t.Fatal("clean log reported a torn tail")
	}
	// Appends continue the sequence.
	if seq, err := w2.Append("movies", testRows("e")); err != nil || seq != 4 {
		t.Fatalf("append after reopen: seq=%d err=%v", seq, err)
	}
}

func TestWALTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal-000001.wal")
	w, err := CreateWAL(path, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append("movies", testRows("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append("movies", testRows("b")); err != nil {
		t.Fatal(err)
	}
	w.Close()

	// Chop bytes off the final record: a crash mid-append.
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	w2, records, err := OpenWAL(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 1 || records[0].Seq != 1 {
		t.Fatalf("recovered %d records, want the intact first one", len(records))
	}
	if !w2.Truncated() {
		t.Fatal("torn tail not reported")
	}
	// The file is clean again: the next append lands on a record
	// boundary and a fresh scan sees both records.
	if seq, err := w2.Append("movies", testRows("c")); err != nil || seq != 2 {
		t.Fatalf("append after truncation: seq=%d err=%v", seq, err)
	}
	w2.Close()
	_, records, err = OpenWAL(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 2 {
		t.Fatalf("re-scan found %d records, want 2", len(records))
	}
}

func TestWALCorruptRecordEndsPrefix(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal-000001.wal")
	w, err := CreateWAL(path, 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append("movies", testRows("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append("movies", testRows("b")); err != nil {
		t.Fatal(err)
	}
	sizeAfterFirst := int64(walHeaderSize) // flip a byte inside record 2's payload
	w.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Find the second record: header + rec1. rec1's length sits after its
	// 8-byte seq.
	rec1Len := int64(recHeaderSize) + int64(uint32(data[walHeaderSize+8])|uint32(data[walHeaderSize+9])<<8|uint32(data[walHeaderSize+10])<<16|uint32(data[walHeaderSize+11])<<24)
	off := sizeAfterFirst + rec1Len + recHeaderSize // first payload byte of rec 2
	data[off] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	st, records, err := ScanWALInfo(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 1 || records[0].Seq != 8 {
		t.Fatalf("scan past corruption: %d records, first seq %v", len(records), records)
	}
	if !st.Truncated || st.BaseSeq != 7 || st.LastSeq != 8 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestWALHeaderCorruptionIsHardError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal-000001.wal")
	if err := os.WriteFile(path, []byte("NOTAWAL!xxxxxxxxxxxx"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenWAL(path, nil); err == nil {
		t.Fatal("garbage header accepted")
	}
}

func TestWALGroupCommit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal-000001.wal")
	syncs := 0
	sys := &Sys{Fsync: func(f *os.File) error { syncs++; return f.Sync() }}
	w, err := CreateWAL(path, 0, sys)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	syncs = 0 // ignore the header sync
	w.SetSyncEvery(3)
	for i := 0; i < 7; i++ {
		if _, err := w.Append("movies", testRows("x")); err != nil {
			t.Fatal(err)
		}
	}
	if syncs != 2 {
		t.Fatalf("7 appends at SyncEvery=3 issued %d syncs, want 2", syncs)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if syncs != 3 {
		t.Fatalf("explicit Sync did not fsync (total %d)", syncs)
	}
}

func TestWALSyncFailureSurfaces(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal-000001.wal")
	fail := false
	sys := &Sys{Fsync: func(f *os.File) error {
		if fail {
			return errors.New("injected")
		}
		return f.Sync()
	}}
	w, err := CreateWAL(path, 0, sys)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	fail = true
	if _, err := w.Append("movies", testRows("a")); err == nil {
		t.Fatal("append acknowledged despite fsync failure")
	}
	fail = false
}
