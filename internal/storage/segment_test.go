package storage

import (
	"path/filepath"
	"slices"
	"testing"

	"github.com/retrodb/retro/internal/reldb"
)

func fixtureSegment() *Segment {
	return &Segment{
		FromEpoch: 2, ToEpoch: 3, WALSeq: 9,
		Batches: []Batch{
			{Table: "movies", Rows: testRows("matrix", "alien")},
			{Table: "people", Rows: testRows("lynch")},
		},
		Vectors: []VectorDelta{
			{Key: "movies.title\x00matrix", Vec: []float64{0.25, -1.5, 3.75}},
			{Key: "movies.country\x00usa", Vec: []float64{1e-300, 42}},
		},
	}
}

func TestSegmentRoundTrip(t *testing.T) {
	s := fixtureSegment()
	got, err := DecodeSegment(EncodeSegment(s))
	if err != nil {
		t.Fatal(err)
	}
	if got.FromEpoch != s.FromEpoch || got.ToEpoch != s.ToEpoch || got.WALSeq != s.WALSeq {
		t.Fatalf("header round trip = %+v", got)
	}
	if len(got.Batches) != 2 || got.Batches[0].Table != "movies" ||
		!sameRows(got.Batches[0].Rows, s.Batches[0].Rows) ||
		!sameRows(got.Batches[1].Rows, s.Batches[1].Rows) {
		t.Fatalf("batches round trip = %+v", got.Batches)
	}
	if len(got.Vectors) != 2 {
		t.Fatalf("vectors round trip = %+v", got.Vectors)
	}
	for i, v := range got.Vectors {
		// Full float64 precision: the delta path must reproduce the
		// writer's vectors bit-for-bit.
		if v.Key != s.Vectors[i].Key || !slices.Equal(v.Vec, s.Vectors[i].Vec) {
			t.Fatalf("vector %d = %+v, want %+v", i, v, s.Vectors[i])
		}
	}
}

func TestSegmentCorruptionDetected(t *testing.T) {
	data := EncodeSegment(fixtureSegment())
	for i := 0; i < len(data); i += 7 {
		c := slices.Clone(data)
		c[i] ^= 0xff
		if _, err := DecodeSegment(c); err == nil {
			t.Fatalf("bit flip at offset %d accepted", i)
		}
	}
	if _, err := DecodeSegment(data[:len(data)/2]); err == nil {
		t.Fatal("truncated segment accepted")
	}
}

func TestSegmentFileAndInfo(t *testing.T) {
	path := filepath.Join(t.TempDir(), "seg-000003.seg")
	s := fixtureSegment()
	if err := WriteSegmentFile(path, s, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSegmentFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.ToEpoch != 3 {
		t.Fatalf("read back = %+v", got)
	}
	info, err := ReadSegmentInfo(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.FromEpoch != 2 || info.ToEpoch != 3 || info.WALSeq != 9 || info.Rows != 3 || info.Vectors != 2 || info.Bytes <= 0 {
		t.Fatalf("info = %+v", info)
	}
}

func TestCloneBatchIsDeep(t *testing.T) {
	rows := [][]reldb.Value{{reldb.Text("a")}}
	b := CloneBatch("movies", rows)
	rows[0][0] = reldb.Text("mutated")
	if b.Rows[0][0].Str != "a" {
		t.Fatal("CloneBatch shared row storage with the caller")
	}
	if b.NumRows() != 1 {
		t.Fatalf("NumRows = %d", b.NumRows())
	}
}
