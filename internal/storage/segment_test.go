package storage

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"path/filepath"
	"slices"
	"strings"
	"testing"

	"github.com/retrodb/retro/internal/reldb"
)

func fixtureSegment() *Segment {
	return &Segment{
		FromEpoch: 2, ToEpoch: 3, WALSeq: 9,
		Batches: []Batch{
			{Table: "movies", Rows: testRows("matrix", "alien")},
			{Table: "people", Rows: testRows("lynch")},
		},
		Vectors: []VectorDelta{
			{Key: "movies.title\x00matrix", Vec: []float64{0.25, -1.5, 3.75}},
			{Key: "movies.country\x00usa", Vec: []float64{1e-300, 42}},
		},
	}
}

func TestSegmentRoundTrip(t *testing.T) {
	s := fixtureSegment()
	got, err := DecodeSegment(EncodeSegment(s))
	if err != nil {
		t.Fatal(err)
	}
	if got.FromEpoch != s.FromEpoch || got.ToEpoch != s.ToEpoch || got.WALSeq != s.WALSeq {
		t.Fatalf("header round trip = %+v", got)
	}
	if len(got.Batches) != 2 || got.Batches[0].Table != "movies" ||
		!sameRows(got.Batches[0].Rows, s.Batches[0].Rows) ||
		!sameRows(got.Batches[1].Rows, s.Batches[1].Rows) {
		t.Fatalf("batches round trip = %+v", got.Batches)
	}
	if len(got.Vectors) != 2 {
		t.Fatalf("vectors round trip = %+v", got.Vectors)
	}
	for i, v := range got.Vectors {
		// Full float64 precision: the delta path must reproduce the
		// writer's vectors bit-for-bit.
		if v.Key != s.Vectors[i].Key || !slices.Equal(v.Vec, s.Vectors[i].Vec) {
			t.Fatalf("vector %d = %+v, want %+v", i, v, s.Vectors[i])
		}
	}
}

func fixtureSegmentF32() *Segment {
	return &Segment{
		FromEpoch: 2, ToEpoch: 3, WALSeq: 9,
		Batches: []Batch{
			{Table: "movies", Rows: testRows("matrix")},
		},
		Vectors: []VectorDelta{
			{Key: "movies.title\x00matrix", Vec32: []float32{0.25, -1.5, 3.75}},
			{Key: "movies.country\x00usa", Vec: []float64{1e-300, 42}},
		},
	}
}

func TestSegmentF32RoundTrip(t *testing.T) {
	s := fixtureSegmentF32()
	data := EncodeSegment(s)
	// A float32 delta switches the file to format version 2.
	if v := binary.LittleEndian.Uint32(data[len(segMagic):]); v != segVersionF32 {
		t.Fatalf("segment with f32 deltas encoded as version %d", v)
	}
	got, err := DecodeSegment(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Vectors) != 2 {
		t.Fatalf("vectors round trip = %+v", got.Vectors)
	}
	if !slices.Equal(got.Vectors[0].Vec32, s.Vectors[0].Vec32) || got.Vectors[0].Vec != nil {
		t.Fatalf("f32 vector = %+v, want %+v", got.Vectors[0], s.Vectors[0])
	}
	// Mixed representation: the f64 delta in the same file survives at
	// full float64 precision.
	if !slices.Equal(got.Vectors[1].Vec, s.Vectors[1].Vec) || got.Vectors[1].Vec32 != nil {
		t.Fatalf("f64 vector = %+v, want %+v", got.Vectors[1], s.Vectors[1])
	}
	want64 := []float64{0.25, -1.5, 3.75}
	if !slices.Equal(got.Vectors[0].Float64(), want64) {
		t.Fatalf("Float64() = %v, want %v", got.Vectors[0].Float64(), want64)
	}
}

func TestSegmentF64StaysVersion1(t *testing.T) {
	// An all-float64 segment must keep the original format so F64
	// engines produce byte-identical files to what they always wrote.
	data := EncodeSegment(fixtureSegment())
	if v := binary.LittleEndian.Uint32(data[len(segMagic):]); v != segVersion {
		t.Fatalf("f64-only segment encoded as version %d, want %d", v, segVersion)
	}
}

func TestSegmentRejectsUnknownRepresentation(t *testing.T) {
	data := EncodeSegment(fixtureSegmentF32())
	// The first vector's representation byte follows the payload header
	// (3×u64 epochs/seq, batch count + one batch) and its key; rather
	// than hand-computing the offset, find the key and flip the byte
	// right after it.
	key := []byte("movies.title\x00matrix")
	off := bytes.Index(data, key)
	if off < 0 {
		t.Fatal("key not found in encoded segment")
	}
	c := slices.Clone(data)
	c[off+len(key)] = 9
	// Fix the CRC up so the representation check (not the checksum) is
	// what rejects the file.
	payload := c[len(segMagic)+4+8+4:]
	binary.LittleEndian.PutUint32(c[len(segMagic)+4+8:], crc32.ChecksumIEEE(payload))
	_, err := DecodeSegment(c)
	if err == nil || !strings.Contains(err.Error(), "unknown representation") {
		t.Fatalf("err = %v, want unknown representation", err)
	}
}

func TestSegmentCorruptionDetected(t *testing.T) {
	data := EncodeSegment(fixtureSegment())
	for i := 0; i < len(data); i += 7 {
		c := slices.Clone(data)
		c[i] ^= 0xff
		if _, err := DecodeSegment(c); err == nil {
			t.Fatalf("bit flip at offset %d accepted", i)
		}
	}
	if _, err := DecodeSegment(data[:len(data)/2]); err == nil {
		t.Fatal("truncated segment accepted")
	}
}

func TestSegmentFileAndInfo(t *testing.T) {
	path := filepath.Join(t.TempDir(), "seg-000003.seg")
	s := fixtureSegment()
	if err := WriteSegmentFile(path, s, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSegmentFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.ToEpoch != 3 {
		t.Fatalf("read back = %+v", got)
	}
	info, err := ReadSegmentInfo(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.FromEpoch != 2 || info.ToEpoch != 3 || info.WALSeq != 9 || info.Rows != 3 || info.Vectors != 2 || info.Bytes <= 0 {
		t.Fatalf("info = %+v", info)
	}
}

func TestCloneBatchIsDeep(t *testing.T) {
	rows := [][]reldb.Value{{reldb.Text("a")}}
	b := CloneBatch("movies", rows)
	rows[0][0] = reldb.Text("mutated")
	if b.Rows[0][0].Str != "a" {
		t.Fatal("CloneBatch shared row storage with the caller")
	}
	if b.NumRows() != 1 {
		t.Fatalf("NumRows = %d", b.NumRows())
	}
}
