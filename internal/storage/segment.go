// Delta snapshot segments: one file per checkpoint, carrying everything
// that changed since the previous checkpoint epoch — the committed rows
// (so the WAL prefix they came from can be discarded) and the store
// vectors the frozen-view epoch stamping marked dirty, at the writer's
// store precision (float64 rows from an F64 store, float32 words from
// an F32 store), so applying a segment reproduces the writer's vectors
// bit-for-bit. Checkpoint write cost is O(delta), not O(model);
// recovery applies the chain in order over the base.
//
// Format versions: version 1 frames every vector as float64 and is
// still written whenever no float32 delta is present, so F64 engines
// keep producing byte-identical files. Version 2 adds a per-vector
// representation byte and is emitted only when an F32 store
// checkpointed at least one row. Readers accept both.

package storage

import (
	"bytes"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"github.com/retrodb/retro/internal/wire"
)

const (
	segMagic      = "RETROSEG"
	segVersion    = 1 // float64-only vector frames
	segVersionF32 = 2 // per-vector representation byte (f64 or f32)

	maxBatches    = 1 << 24
	maxVectors    = 1 << 28
	maxKeyLen     = 1 << 20
	maxSegDim     = 1 << 16
	maxSegPayload = int64(1) << 36
)

// Segment is one checkpoint's delta over the previous epoch.
type Segment struct {
	// FromEpoch..ToEpoch is the half-open epoch window this delta
	// covers: rows stamped in [FromEpoch, ToEpoch) at checkpoint time.
	FromEpoch uint64
	ToEpoch   uint64
	// WALSeq is the log high-water mark at checkpoint time: the batches
	// below are exactly the WAL records with seq <= WALSeq not covered
	// by an earlier segment.
	WALSeq uint64
	// Batches are the committed insert batches, in commit order.
	Batches []Batch
	// Vectors are the store rows that changed in the window, keyed by
	// store word, at the writer's store precision.
	Vectors []VectorDelta
}

// VectorDelta is one changed store row: exactly one of Vec (an F64
// store's row) or Vec32 (an F32 store's row, persisted without a
// widening round trip) is set.
type VectorDelta struct {
	Key   string
	Vec   []float64
	Vec32 []float32
}

// Float64 returns the delta's vector widened to float64 — the form
// Store.Add consumes on recovery. Applying a Vec32 delta to an F32
// store is lossless: the store narrows the widened values straight back
// to the persisted float32 words.
func (v *VectorDelta) Float64() []float64 {
	if v.Vec32 == nil {
		return v.Vec
	}
	out := make([]float64, len(v.Vec32))
	for i, x := range v.Vec32 {
		out[i] = float64(x)
	}
	return out
}

// SegmentInfo summarises a segment without retaining its content.
type SegmentInfo struct {
	Name      string
	FromEpoch uint64
	ToEpoch   uint64
	WALSeq    uint64
	Rows      int
	Vectors   int
	Bytes     int64
}

// EncodeSegment renders a segment to its wire form. Segments whose
// vectors are all float64 use format version 1 (byte-identical to what
// this package has always written); a float32 delta switches the file
// to version 2, which tags each vector with its representation.
func EncodeSegment(s *Segment) []byte {
	version := uint32(segVersion)
	for i := range s.Vectors {
		if s.Vectors[i].Vec32 != nil {
			version = segVersionF32
			break
		}
	}
	var payload bytes.Buffer
	w := wire.NewWriter(&payload)
	w.U64(s.FromEpoch)
	w.U64(s.ToEpoch)
	w.U64(s.WALSeq)
	w.U32(uint32(len(s.Batches)))
	for i := range s.Batches {
		encodeBatch(w, &s.Batches[i])
	}
	w.U32(uint32(len(s.Vectors)))
	for _, v := range s.Vectors {
		w.String(v.Key)
		if version >= segVersionF32 {
			if v.Vec32 != nil {
				w.U8(1)
				w.U32(uint32(len(v.Vec32)))
				for _, x := range v.Vec32 {
					w.F32(x)
				}
				continue
			}
			w.U8(0)
		}
		w.U32(uint32(len(v.Vec)))
		for _, x := range v.Vec {
			w.F64(x)
		}
	}
	_ = w.Flush()

	var out bytes.Buffer
	fw := wire.NewWriter(&out)
	fw.Bytes([]byte(segMagic))
	fw.U32(version)
	fw.U64(uint64(payload.Len()))
	fw.U32(crc32.ChecksumIEEE(payload.Bytes()))
	fw.Bytes(payload.Bytes())
	_ = fw.Flush()
	return out.Bytes()
}

// DecodeSegment parses a segment written by EncodeSegment. Corruption
// is an error, never a panic.
func DecodeSegment(data []byte) (*Segment, error) {
	r := wire.NewReader(bytes.NewReader(data))
	magic := make([]byte, len(segMagic))
	r.Bytes(magic)
	if r.Err() == nil && string(magic) != segMagic {
		return nil, fmt.Errorf("storage: bad segment magic %q", magic)
	}
	version := r.U32()
	if r.Err() == nil && version != segVersion && version != segVersionF32 {
		return nil, fmt.Errorf("storage: unsupported segment version %d", version)
	}
	n := r.U64()
	if r.Err() == nil && (n > uint64(maxSegPayload) || n > uint64(len(data))) {
		return nil, fmt.Errorf("storage: segment payload length %d exceeds file size %d", n, len(data))
	}
	crc := r.U32()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("storage: segment header: %w", err)
	}
	payload := make([]byte, n)
	r.Bytes(payload)
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("storage: segment payload: %w", err)
	}
	if got := crc32.ChecksumIEEE(payload); got != crc {
		return nil, fmt.Errorf("storage: segment checksum mismatch (want %08x, got %08x)", crc, got)
	}

	pr := wire.NewReader(bytes.NewReader(payload))
	s := &Segment{}
	s.FromEpoch = pr.U64()
	s.ToEpoch = pr.U64()
	s.WALSeq = pr.U64()
	batches := pr.Count32(maxBatches)
	for i := 0; i < batches && pr.Err() == nil; i++ {
		s.Batches = append(s.Batches, decodeBatch(pr))
	}
	vectors := pr.Count32(maxVectors)
	for i := 0; i < vectors && pr.Err() == nil; i++ {
		key := pr.String(maxKeyLen)
		kind := uint8(0)
		if version >= segVersionF32 {
			kind = pr.U8()
			if pr.Err() == nil && kind > 1 {
				return nil, fmt.Errorf("storage: segment vector %d has unknown representation %d", i, kind)
			}
		}
		dim := pr.Count32(maxSegDim)
		if kind == 1 {
			vec := make([]float32, 0, dim)
			for d := 0; d < dim && pr.Err() == nil; d++ {
				vec = append(vec, pr.F32())
			}
			s.Vectors = append(s.Vectors, VectorDelta{Key: key, Vec32: vec})
			continue
		}
		vec := make([]float64, 0, dim)
		for d := 0; d < dim && pr.Err() == nil; d++ {
			vec = append(vec, pr.F64())
		}
		s.Vectors = append(s.Vectors, VectorDelta{Key: key, Vec: vec})
	}
	if err := pr.Err(); err != nil {
		return nil, fmt.Errorf("storage: segment body: %w", err)
	}
	return s, nil
}

// WriteSegmentFile persists a segment atomically (temp + fsync +
// rename through sys).
func WriteSegmentFile(path string, s *Segment, sys *Sys) error {
	data := EncodeSegment(s)
	return WriteFileAtomic(path, sys, func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	})
}

// ReadSegmentFile loads a segment.
func ReadSegmentFile(path string) (*Segment, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return DecodeSegment(data)
}

// ReadSegmentInfo summarises a segment file (for `retro storage info`).
func ReadSegmentInfo(path string) (SegmentInfo, error) {
	s, err := ReadSegmentFile(path)
	if err != nil {
		return SegmentInfo{}, err
	}
	info := SegmentInfo{
		FromEpoch: s.FromEpoch, ToEpoch: s.ToEpoch, WALSeq: s.WALSeq,
		Vectors: len(s.Vectors),
	}
	for i := range s.Batches {
		info.Rows += len(s.Batches[i].Rows)
	}
	if fi, err := os.Stat(path); err == nil {
		info.Bytes = fi.Size()
	}
	return info, nil
}
