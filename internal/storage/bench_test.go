package storage

import (
	"io"
	"testing"

	"github.com/retrodb/retro/internal/embed"
	"github.com/retrodb/retro/internal/snapshot"
)

// The checkpoint cost claim: a delta segment is O(changed rows) where a
// full snapshot is O(model). At 50k values with a 256-row delta the
// segment write must be orders of magnitude smaller and faster —
// `go test -bench 'Checkpoint|FullSnapshot' ./internal/storage` shows
// both the ns/op gap and the bytes-written gap (reported as segB/op and
// snapB/op).

const (
	benchValues = 50_000
	benchDim    = 32
	benchDelta  = 256
)

// lcg is a tiny deterministic generator so benchmark vectors need no
// seed plumbing and stay identical across runs.
type lcg uint64

func (g *lcg) next() float64 {
	*g = *g*6364136223846793005 + 1442695040888963407
	return float64(int64(*g>>11)) / float64(1<<52)
}

func benchStore() *embed.Store {
	s := embed.NewStore(benchDim)
	g := lcg(1)
	vec := make([]float64, benchDim)
	for i := 0; i < benchValues; i++ {
		for d := range vec {
			vec[d] = g.next()
		}
		s.Add("movies.title\x00value-"+string(rune('a'+i%26))+"-"+itoa(i), vec)
	}
	return s
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

func benchSegment(s *embed.Store) *Segment {
	seg := &Segment{FromEpoch: 1, ToEpoch: 2, WALSeq: benchDelta}
	for i := 0; i < benchDelta; i++ {
		id := s.Len() - benchDelta + i
		seg.Vectors = append(seg.Vectors, VectorDelta{Key: s.Word(id), Vec: s.Vector(id)})
	}
	return seg
}

func BenchmarkCheckpointSegment(b *testing.B) {
	s := benchStore()
	seg := benchSegment(s)
	data := EncodeSegment(seg)
	b.ReportMetric(float64(len(data)), "segB/op")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := EncodeSegment(seg)
		if len(out) == 0 {
			b.Fatal("empty segment")
		}
	}
}

func BenchmarkFullSnapshot(b *testing.B) {
	s := benchStore()
	snap := &snapshot.Snapshot{Dim: benchDim, Store: s}
	n := &countWriter{}
	if err := snapshot.Write(n, snap); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(n.n), "snapB/op")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := snapshot.Write(io.Discard, snap); err != nil {
			b.Fatal(err)
		}
	}
}

type countWriter struct{ n int64 }

func (w *countWriter) Write(p []byte) (int, error) {
	w.n += int64(len(p))
	return len(p), nil
}
