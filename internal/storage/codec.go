// Wire codec for committed insert batches: the unit both the WAL and
// the delta segments persist. A batch is the committed subset of one
// Session.Insert/InsertBatch call — table name plus rows in commit
// order, each value carried with its reldb type so replay re-inserts
// exactly what the writer committed.

package storage

import (
	"fmt"

	"github.com/retrodb/retro/internal/reldb"
	"github.com/retrodb/retro/internal/wire"
)

const (
	maxTableLen = 1 << 12
	maxTextLen  = 1 << 24
	maxRows     = 1 << 24
	maxCols     = 1 << 12
)

// Batch is one committed insert batch: rows bound for one table, in
// commit order. BatchError-rejected rows are never part of a Batch —
// only the committed prefix is logged, so a rejected row can never
// reappear on replay.
type Batch struct {
	Table string
	Rows  [][]reldb.Value
}

// NumRows returns the row count.
func (b *Batch) NumRows() int { return len(b.Rows) }

func encodeValue(w *wire.Writer, v reldb.Value) {
	w.U8(uint8(v.Kind))
	switch v.Kind {
	case reldb.KindNull:
	case reldb.KindText:
		w.String(v.Str)
	case reldb.KindInt:
		w.I64(v.I)
	case reldb.KindFloat:
		w.F64(v.Num)
	case reldb.KindBool:
		if v.Num != 0 {
			w.U8(1)
		} else {
			w.U8(0)
		}
	}
}

func decodeValue(r *wire.Reader) reldb.Value {
	kind := reldb.Kind(r.U8())
	switch kind {
	case reldb.KindNull:
		return reldb.Null
	case reldb.KindText:
		return reldb.Text(r.String(maxTextLen))
	case reldb.KindInt:
		return reldb.Int(r.I64())
	case reldb.KindFloat:
		return reldb.Float(r.F64())
	case reldb.KindBool:
		return reldb.Bool(r.U8() != 0)
	default:
		r.Fail(fmt.Errorf("storage: unknown value kind %d", kind))
		return reldb.Null
	}
}

func encodeBatch(w *wire.Writer, b *Batch) {
	w.String(b.Table)
	w.U32(uint32(len(b.Rows)))
	for _, row := range b.Rows {
		w.U32(uint32(len(row)))
		for _, v := range row {
			encodeValue(w, v)
		}
	}
}

func decodeBatch(r *wire.Reader) Batch {
	b := Batch{Table: r.String(maxTableLen)}
	rows := r.Count32(maxRows)
	for i := 0; i < rows && r.Err() == nil; i++ {
		cols := r.Count32(maxCols)
		row := make([]reldb.Value, 0, cols)
		for c := 0; c < cols && r.Err() == nil; c++ {
			row = append(row, decodeValue(r))
		}
		b.Rows = append(b.Rows, row)
	}
	return b
}

// cloneBatch deep-copies a batch so the storage layer can retain it
// past the caller's request lifetime (reldb.Value is a value type, so
// copying the row slices is a full copy).
func cloneBatch(table string, rows [][]reldb.Value) Batch {
	out := Batch{Table: table, Rows: make([][]reldb.Value, len(rows))}
	for i, row := range rows {
		cp := make([]reldb.Value, len(row))
		copy(cp, row)
		out.Rows[i] = cp
	}
	return out
}

// CloneBatch deep-copies the committed rows of one insert call into a
// Batch the engine may retain (the session hands it slices the API
// caller owns).
func CloneBatch(table string, rows [][]reldb.Value) Batch {
	return cloneBatch(table, rows)
}
