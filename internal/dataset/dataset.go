// Package dataset loads the on-disk layout written by `retro generate`:
// a directory of `<table>.csv` files (with an `id` primary key and
// `<table>_id` foreign keys) plus an `embedding.bin` base embedding. It
// is shared by the retro and retro-serve commands.
package dataset

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/retrodb/retro/internal/embed"
	"github.com/retrodb/retro/internal/reldb"
)

// LoadDir imports every CSV in dir (schema inferred) plus embedding.bin.
// Tables are imported in FK-dependency order so references resolve.
func LoadDir(dir string) (*reldb.DB, *embed.Store, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	db := reldb.New()
	// Multiple passes so FK targets exist first: a table is imported only
	// once every table it references is present (works for the generated
	// star schemas).
	var csvs []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".csv") {
			csvs = append(csvs, e.Name())
		}
	}
	imported := map[string]bool{}
	for pass := 0; pass < len(csvs)+1 && len(imported) < len(csvs); pass++ {
		progressed := false
		for _, name := range csvs {
			if imported[name] {
				continue
			}
			table := strings.TrimSuffix(name, ".csv")
			f, err := os.Open(filepath.Join(dir, name))
			if err != nil {
				return nil, nil, err
			}
			header, err := csvHeader(f)
			if err != nil {
				f.Close()
				return nil, nil, fmt.Errorf("%s: %w", name, err)
			}
			fks := map[string]string{}
			ready := true
			for _, h := range header {
				if !strings.HasSuffix(h, "_id") {
					continue
				}
				ref := referencedTable(strings.TrimSuffix(h, "_id"), csvs)
				if ref == "" {
					continue
				}
				fks[h] = ref
				if _, ok := db.Table(ref); !ok {
					ready = false
				}
			}
			if !ready {
				f.Close()
				continue
			}
			if _, err := f.Seek(0, 0); err != nil {
				f.Close()
				return nil, nil, err
			}
			pk := ""
			for _, h := range header {
				if h == "id" {
					pk = "id"
				}
			}
			_, err = db.ImportCSV(table, f, reldb.CSVOptions{PrimaryKey: pk, ForeignKeys: fks})
			f.Close()
			if err != nil {
				return nil, nil, fmt.Errorf("%s: %w", name, err)
			}
			imported[name] = true
			progressed = true
		}
		if !progressed {
			return nil, nil, fmt.Errorf("circular or unresolvable FK dependencies in %s", dir)
		}
	}
	ef, err := os.Open(filepath.Join(dir, "embedding.bin"))
	if err != nil {
		return nil, nil, fmt.Errorf("opening embedding: %w", err)
	}
	defer ef.Close()
	emb, err := embed.ReadBinary(ef)
	if err != nil {
		return nil, nil, err
	}
	return db, emb, nil
}

// csvHeader reads the first line of a CSV without consuming the reader's
// logical position for the importer (callers Seek back afterwards).
func csvHeader(f *os.File) ([]string, error) {
	buf := make([]byte, 4096)
	n, err := f.Read(buf)
	if n == 0 && err != nil {
		return nil, err
	}
	line := string(buf[:n])
	if i := strings.IndexByte(line, '\n'); i >= 0 {
		line = line[:i]
	}
	fields := strings.Split(strings.TrimSpace(line), ",")
	for i := range fields {
		fields[i] = strings.ToLower(strings.TrimSpace(fields[i]))
	}
	return fields, nil
}

// referencedTable maps an FK column prefix to the matching CSV table name,
// handling the simple pluralisation of the generated schemas
// (movie_id -> movies.csv, person_id -> persons.csv, ...).
func referencedTable(prefix string, csvs []string) string {
	// Role-named FKs of the generated schemas.
	if prefix == "director" {
		prefix = "person"
	}
	candidates := []string{prefix + "s.csv", prefix + "es.csv", strings.TrimSuffix(prefix, "y") + "ies.csv", prefix + ".csv"}
	for _, c := range candidates {
		for _, name := range csvs {
			if name == c {
				return strings.TrimSuffix(name, ".csv")
			}
		}
	}
	return ""
}
