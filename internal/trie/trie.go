// Package trie implements the lookup trie (prefix tree) of §3.1 of the
// paper. The tokenizer builds a trie over the embedding vocabulary where
// every node represents a token, and extracts the longest possible
// sequence of tokens for each text value (so "bank account" matches the
// phrase vector instead of the two word vectors).
//
// The trie operates on sequences of string tokens rather than bytes: a
// vocabulary entry like "new_york_city" is inserted as the token sequence
// ["new", "york", "city"]. This mirrors how multi-word phrases appear in
// pre-trained embedding vocabularies (underscore-joined).
package trie

// Trie is a token-sequence prefix tree. The zero value is an empty trie
// ready for use.
type Trie struct {
	root node
	size int
}

type node struct {
	children map[string]*node
	// terminal marks that the token sequence from the root to this node is
	// a vocabulary entry; payload carries the caller's id for it.
	terminal bool
	payload  int
}

// Insert adds a token sequence with an associated payload (typically the
// vocabulary index). Inserting an empty sequence is a no-op. Re-inserting
// a sequence overwrites its payload.
func (t *Trie) Insert(tokens []string, payload int) {
	if len(tokens) == 0 {
		return
	}
	n := &t.root
	for _, tok := range tokens {
		if n.children == nil {
			n.children = make(map[string]*node)
		}
		child, ok := n.children[tok]
		if !ok {
			child = &node{}
			n.children[tok] = child
		}
		n = child
	}
	if !n.terminal {
		t.size++
	}
	n.terminal = true
	n.payload = payload
}

// Len returns the number of distinct sequences stored.
func (t *Trie) Len() int { return t.size }

// Contains reports whether the exact token sequence is stored.
func (t *Trie) Contains(tokens []string) bool {
	_, ok := t.Lookup(tokens)
	return ok
}

// Lookup returns the payload of the exact token sequence.
func (t *Trie) Lookup(tokens []string) (payload int, ok bool) {
	if len(tokens) == 0 {
		return 0, false
	}
	n := &t.root
	for _, tok := range tokens {
		child, ok := n.children[tok]
		if !ok {
			return 0, false
		}
		n = child
	}
	if !n.terminal {
		return 0, false
	}
	return n.payload, true
}

// LongestPrefix finds the longest stored sequence that is a prefix of
// tokens. It returns the number of tokens consumed (0 if none match) and
// the payload of the match.
func (t *Trie) LongestPrefix(tokens []string) (consumed, payload int) {
	n := &t.root
	bestLen, bestPayload := 0, 0
	for i, tok := range tokens {
		child, ok := n.children[tok]
		if !ok {
			break
		}
		n = child
		if n.terminal {
			bestLen = i + 1
			bestPayload = n.payload
		}
	}
	return bestLen, bestPayload
}

// Walk visits every stored sequence in unspecified order, calling fn with
// the token sequence (valid only during the call) and payload. If fn
// returns false the walk stops.
func (t *Trie) Walk(fn func(tokens []string, payload int) bool) {
	var path []string
	var rec func(n *node) bool
	rec = func(n *node) bool {
		if n.terminal {
			if !fn(path, n.payload) {
				return false
			}
		}
		for tok, child := range n.children {
			path = append(path, tok)
			if !rec(child) {
				return false
			}
			path = path[:len(path)-1]
		}
		return true
	}
	rec(&t.root)
}
