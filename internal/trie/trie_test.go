package trie

import (
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
)

func TestInsertLookup(t *testing.T) {
	var tr Trie
	tr.Insert([]string{"bank"}, 1)
	tr.Insert([]string{"bank", "account"}, 2)
	tr.Insert([]string{"account"}, 3)

	if tr.Len() != 3 {
		t.Fatalf("Len = %d, want 3", tr.Len())
	}
	if p, ok := tr.Lookup([]string{"bank", "account"}); !ok || p != 2 {
		t.Fatalf("Lookup(bank account) = %d,%v", p, ok)
	}
	if _, ok := tr.Lookup([]string{"bank", "robber"}); ok {
		t.Fatal("Lookup of missing sequence succeeded")
	}
	if _, ok := tr.Lookup(nil); ok {
		t.Fatal("Lookup(nil) should fail")
	}
}

func TestLookupInternalNodeNotTerminal(t *testing.T) {
	var tr Trie
	tr.Insert([]string{"new", "york", "city"}, 7)
	if _, ok := tr.Lookup([]string{"new", "york"}); ok {
		t.Fatal("prefix of stored phrase must not be terminal")
	}
}

func TestInsertOverwritesPayload(t *testing.T) {
	var tr Trie
	tr.Insert([]string{"a"}, 1)
	tr.Insert([]string{"a"}, 9)
	if tr.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tr.Len())
	}
	if p, _ := tr.Lookup([]string{"a"}); p != 9 {
		t.Fatalf("payload = %d, want 9", p)
	}
}

func TestInsertEmptyNoop(t *testing.T) {
	var tr Trie
	tr.Insert(nil, 5)
	if tr.Len() != 0 {
		t.Fatal("empty insert should be a no-op")
	}
}

func TestLongestPrefix(t *testing.T) {
	var tr Trie
	tr.Insert([]string{"bank"}, 1)
	tr.Insert([]string{"bank", "account"}, 2)
	tr.Insert([]string{"bank", "account", "number"}, 3)

	cases := []struct {
		in          []string
		wantLen     int
		wantPayload int
	}{
		{[]string{"bank", "account", "number", "x"}, 3, 3},
		{[]string{"bank", "account", "x"}, 2, 2},
		{[]string{"bank", "x"}, 1, 1},
		{[]string{"x"}, 0, 0},
		{nil, 0, 0},
		// "bank robber": only "bank" matches even though "bank account"
		// shares the prefix node.
		{[]string{"bank", "robber", "account"}, 1, 1},
	}
	for _, c := range cases {
		n, p := tr.LongestPrefix(c.in)
		if n != c.wantLen || (n > 0 && p != c.wantPayload) {
			t.Errorf("LongestPrefix(%v) = %d,%d want %d,%d", c.in, n, p, c.wantLen, c.wantPayload)
		}
	}
}

func TestLongestPrefixPrefersLongerMatch(t *testing.T) {
	// The paper's motivating case: "bank account" must match the phrase,
	// not the single token.
	var tr Trie
	tr.Insert([]string{"bank"}, 1)
	tr.Insert([]string{"account"}, 2)
	tr.Insert([]string{"bank", "account"}, 3)
	n, p := tr.LongestPrefix([]string{"bank", "account"})
	if n != 2 || p != 3 {
		t.Fatalf("got %d,%d want 2,3", n, p)
	}
}

func TestContains(t *testing.T) {
	var tr Trie
	tr.Insert([]string{"x", "y"}, 0)
	if !tr.Contains([]string{"x", "y"}) || tr.Contains([]string{"x"}) {
		t.Fatal("Contains wrong")
	}
}

func TestWalkVisitsAll(t *testing.T) {
	var tr Trie
	want := map[string]int{"a": 1, "a b": 2, "c": 3}
	for k, v := range want {
		tr.Insert(strings.Fields(k), v)
	}
	got := map[string]int{}
	tr.Walk(func(tokens []string, payload int) bool {
		got[strings.Join(tokens, " ")] = payload
		return true
	})
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Walk got %v want %v", got, want)
	}
}

func TestWalkEarlyStop(t *testing.T) {
	var tr Trie
	tr.Insert([]string{"a"}, 1)
	tr.Insert([]string{"b"}, 2)
	count := 0
	tr.Walk(func([]string, int) bool {
		count++
		return false
	})
	if count != 1 {
		t.Fatalf("Walk visited %d after stop, want 1", count)
	}
}

// Property-style test: for random vocabularies, LongestPrefix always
// returns a stored sequence, and no longer stored prefix exists.
func TestPropertyLongestPrefixMaximal(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	alphabet := []string{"a", "b", "c", "d"}
	for trial := 0; trial < 50; trial++ {
		var tr Trie
		stored := map[string]int{}
		for i := 0; i < 20; i++ {
			n := 1 + rng.Intn(4)
			seq := make([]string, n)
			for j := range seq {
				seq[j] = alphabet[rng.Intn(len(alphabet))]
			}
			key := strings.Join(seq, " ")
			stored[key] = i
			tr.Insert(seq, i)
		}
		query := make([]string, 6)
		for j := range query {
			query[j] = alphabet[rng.Intn(len(alphabet))]
		}
		n, _ := tr.LongestPrefix(query)
		if n > 0 {
			if _, ok := stored[strings.Join(query[:n], " ")]; !ok {
				t.Fatalf("trial %d: LongestPrefix returned unstored sequence", trial)
			}
		}
		// No stored strictly longer prefix may exist.
		for l := n + 1; l <= len(query); l++ {
			if _, ok := stored[strings.Join(query[:l], " ")]; ok {
				t.Fatalf("trial %d: longer prefix of length %d exists but %d returned", trial, l, n)
			}
		}
	}
}

func TestWalkSortedSequences(t *testing.T) {
	var tr Trie
	seqs := []string{"z", "m n", "a b c"}
	for i, s := range seqs {
		tr.Insert(strings.Fields(s), i)
	}
	var visited []string
	tr.Walk(func(tokens []string, _ int) bool {
		visited = append(visited, strings.Join(tokens, " "))
		return true
	})
	sort.Strings(visited)
	sort.Strings(seqs)
	if !reflect.DeepEqual(visited, seqs) {
		t.Fatalf("Walk visited %v want %v", visited, seqs)
	}
}
