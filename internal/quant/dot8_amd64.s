//go:build amd64

#include "textflag.h"

// func dot8Blocks(a, b *int8, blocks int) int32
//
// Sums a[i]*b[i] over blocks*8 int8 elements using SSE2 only (baseline
// on amd64): each 8-byte group is sign-extended to int16 lanes with
// PUNPCKLBW+PSRAW (interleave a byte with itself, then arithmetic-shift
// the high copy back down), multiplied pairwise and horizontally added
// into four int32 lanes with PMADDWL, and accumulated with PADDL. Two
// interleaved accumulators (X6, X7) hide the PMADDWL latency. Products
// are bounded by 2*127^2 per lane-pair and blocks*8 <= 2^17 dimensions,
// so the int32 lanes cannot overflow.
TEXT ·dot8Blocks(SB), NOSPLIT, $0-28
	MOVQ a+0(FP), SI
	MOVQ b+8(FP), DI
	MOVQ blocks+16(FP), CX
	PXOR X6, X6
	PXOR X7, X7
	CMPQ CX, $2
	JL   tail

loop2:
	MOVQ      (SI), X0
	PUNPCKLBW X0, X0
	PSRAW     $8, X0
	MOVQ      (DI), X1
	PUNPCKLBW X1, X1
	PSRAW     $8, X1
	PMADDWL   X1, X0
	PADDL     X0, X6
	MOVQ      8(SI), X2
	PUNPCKLBW X2, X2
	PSRAW     $8, X2
	MOVQ      8(DI), X3
	PUNPCKLBW X3, X3
	PSRAW     $8, X3
	PMADDWL   X3, X2
	PADDL     X2, X7
	ADDQ      $16, SI
	ADDQ      $16, DI
	SUBQ      $2, CX
	CMPQ      CX, $2
	JGE       loop2

tail:
	TESTQ CX, CX
	JZ    done
	MOVQ      (SI), X0
	PUNPCKLBW X0, X0
	PSRAW     $8, X0
	MOVQ      (DI), X1
	PUNPCKLBW X1, X1
	PSRAW     $8, X1
	PMADDWL   X1, X0
	PADDL     X0, X6

done:
	// Horizontal sum of the four int32 lanes.
	PADDL  X7, X6
	PSHUFL $0x4E, X6, X0
	PADDL  X0, X6
	PSHUFL $0xB1, X6, X0
	PADDL  X0, X6
	MOVD   X6, AX
	MOVL   AX, ret+24(FP)
	RET
