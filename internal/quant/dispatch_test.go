package quant

import (
	"math/rand"
	"testing"

	"github.com/retrodb/retro/internal/cpu"
)

// forEachLevel runs f once per kernel level this CPU can execute,
// restoring the original level afterwards. On an AVX2 machine that is
// scalar, sse2, and avx2; CI also runs the whole package with
// RETRO_SIMD=sse2 and =scalar so the capped init paths are covered too.
func forEachLevel(t *testing.T, f func(t *testing.T, l cpu.Level)) {
	t.Helper()
	orig := cpu.Active()
	defer cpu.SetLevel(orig)
	for _, l := range []cpu.Level{cpu.Scalar, cpu.SSE2, cpu.AVX2} {
		if l > cpu.Detected() {
			continue
		}
		installed := cpu.SetLevel(l)
		if installed != l {
			t.Fatalf("SetLevel(%v) installed %v", l, installed)
		}
		t.Run(l.String(), func(t *testing.T) { f(t, l) })
	}
	cpu.SetLevel(orig)
}

func naiveDot8(a, b []int8) int32 {
	var s int32
	for i := range a {
		s += int32(a[i]) * int32(b[i])
	}
	return s
}

// TestDot8LevelParity proves every dispatch level computes the exact
// same int32 as the naive loop, across lengths that exercise every tail
// combination (AVX2 32-blocks, SSE2 8-blocks, scalar remainders).
func TestDot8LevelParity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	lengths := []int{0, 1, 3, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 64, 65, 96, 100, 127, 128, 300, 301}
	forEachLevel(t, func(t *testing.T, l cpu.Level) {
		for _, n := range lengths {
			a := make([]int8, n)
			b := make([]int8, n)
			for i := range a {
				a[i] = int8(rng.Intn(256) - 128)
				b[i] = int8(rng.Intn(256) - 128)
			}
			want := naiveDot8(a, b)
			if got := Dot8(a, b); got != want {
				t.Fatalf("level %v n=%d: Dot8=%d naive=%d", l, n, got, want)
			}
		}
	})
}

// TestDot8SaturationExtremes drives every kernel at the numeric edges:
// all-(+127), all-(-128), and alternating extremes. These are the inputs
// where a kernel that sign-extended incorrectly (or used the
// unsigned-by-signed VPMADDUBSW) would diverge.
func TestDot8SaturationExtremes(t *testing.T) {
	patterns := []struct {
		name string
		a, b int8
	}{
		{"max*max", 127, 127},
		{"min*min", -128, -128},
		{"min*max", -128, 127},
		{"max*min", 127, -128},
	}
	lengths := []int{1, 8, 16, 31, 32, 300, 301}
	forEachLevel(t, func(t *testing.T, l cpu.Level) {
		for _, p := range patterns {
			for _, n := range lengths {
				a := make([]int8, n)
				b := make([]int8, n)
				for i := range a {
					a[i], b[i] = p.a, p.b
					if i%2 == 1 { // alternate sign so lane sums cross zero
						a[i], b[i] = p.b, p.a
					}
				}
				want := naiveDot8(a, b)
				if got := Dot8(a, b); got != want {
					t.Fatalf("level %v %s n=%d: Dot8=%d naive=%d", l, p.name, n, got, want)
				}
			}
		}
	})
}

// TestDot8ManyMatchesLoop: Dot8Many must be bit-identical to Q separate
// Dot8 calls at every level, for even and odd batch sizes (the pair
// kernel leaves an odd straggler) and tail-bearing dimensions.
func TestDot8ManyMatchesLoop(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	forEachLevel(t, func(t *testing.T, l cpu.Level) {
		for _, dim := range []int{0, 5, 15, 16, 17, 48, 300, 301} {
			for _, q := range []int{0, 1, 2, 3, 7, 8} {
				node := make([]int8, dim)
				for i := range node {
					node[i] = int8(rng.Intn(256) - 128)
				}
				queries := make([][]int8, q)
				for j := range queries {
					queries[j] = make([]int8, dim)
					for i := range queries[j] {
						queries[j][i] = int8(rng.Intn(256) - 128)
					}
				}
				got := make([]int32, q)
				Dot8Many(node, queries, got)
				for j := range queries {
					if want := Dot8(node, queries[j]); got[j] != want {
						t.Fatalf("level %v dim=%d q=%d: Many[%d]=%d loop=%d", l, dim, q, j, got[j], want)
					}
				}
			}
		}
	})
}

func TestDot8ManyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dst length mismatch")
		}
	}()
	Dot8Many(make([]int8, 4), make([][]int8, 2), make([]int32, 1))
}

func BenchmarkDot8Dispatch(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	const dim = 300
	x := make([]int8, dim)
	y := make([]int8, dim)
	for i := range x {
		x[i] = int8(rng.Intn(256) - 128)
		y[i] = int8(rng.Intn(256) - 128)
	}
	orig := cpu.Active()
	defer cpu.SetLevel(orig)
	for _, l := range []cpu.Level{cpu.Scalar, cpu.SSE2, cpu.AVX2} {
		if l > cpu.Detected() {
			continue
		}
		cpu.SetLevel(l)
		b.Run(l.String(), func(b *testing.B) {
			var s int32
			for i := 0; i < b.N; i++ {
				s += Dot8(x, y)
			}
			sink32 = s
		})
	}
	cpu.SetLevel(orig)
}

func BenchmarkDot8Many(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	const dim, q = 300, 8
	node := make([]int8, dim)
	for i := range node {
		node[i] = int8(rng.Intn(256) - 128)
	}
	queries := make([][]int8, q)
	for j := range queries {
		queries[j] = make([]int8, dim)
		for i := range queries[j] {
			queries[j][i] = int8(rng.Intn(256) - 128)
		}
	}
	dst := make([]int32, q)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Dot8Many(node, queries, dst)
	}
	sink32 = dst[0]
}

var sink32 int32
