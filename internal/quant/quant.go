// Package quant implements symmetric per-dimension scalar quantization
// (SQ8) for the serving read path: float64 vectors are compressed to one
// signed byte per dimension, cutting the bytes touched per distance
// evaluation 8x. The HNSW traversal runs on the codes (an int8 dot
// product with int32 accumulation) and only the final candidates are
// re-scored in exact float64 — the FAISS-style candidate-generation /
// re-ranking split.
//
// The scheme is symmetric and per-dimension: a codebook trained from the
// store matrix records one scale per dimension (the maximum absolute
// value seen, mapped to code 127), so dimensions with tight ranges keep
// more precision than a single global scale would give them. Encoding a
// row additionally yields a per-row correction term — the reciprocal
// norm of the decoded vector — so quantized scores are properly
// normalised cosines even though rounding perturbs the stored norm.
//
// Queries are encoded asymmetrically at search time: each query
// component is pre-multiplied by its dimension's scale and the product
// is quantized with one per-query scale. The per-dimension scales then
// cancel inside the integer dot product,
//
//	Σ qc[d]·vc[d] · qscale · corr  ≈  cos(q, v),
//
// which is what lets the kernel accumulate in int32 with a single float
// fixup at the end instead of a per-dimension multiply.
package quant

import (
	"fmt"
	"math"
)

// CodeBits is the code width; SQ8 packs one dimension per signed byte.
const CodeBits = 8

// maxCode is the largest code magnitude: the trained range maps to
// [-127, 127] (symmetric, so negation is exact and -128 is never used).
const maxCode = 127

// Codebook holds the trained per-dimension scales of an SQ8 quantizer.
// A codebook is immutable after Train/NewCodebook; sharing one across
// goroutines is safe.
type Codebook struct {
	dim    int
	scales []float64 // value ≈ code * scales[d]
	inv    []float64 // 1/scales[d], hoisted out of the encode loop
}

// Train builds a codebook for dim-wide vectors from n training rows
// (typically every row of the store matrix). Each dimension's scale maps
// the largest absolute value seen to code 127; a dimension that is zero
// across all rows gets scale 1 so encoding stays defined. Train panics
// on non-positive dim; n may be 0 (all scales default to 1).
func Train(dim, n int, row func(i int) []float64) *Codebook {
	if dim <= 0 {
		panic(fmt.Sprintf("quant: non-positive dimension %d", dim))
	}
	maxAbs := make([]float64, dim)
	for i := 0; i < n; i++ {
		r := row(i)
		for d, v := range r[:dim] {
			if v < 0 {
				v = -v
			}
			if v > maxAbs[d] {
				maxAbs[d] = v
			}
		}
	}
	scales := make([]float64, dim)
	for d, m := range maxAbs {
		if m == 0 {
			scales[d] = 1
		} else {
			scales[d] = m / maxCode
		}
	}
	return newCodebook(dim, scales)
}

// Train32 is Train over float32 rows (the float32 serving store's
// matrix). The per-element arithmetic widens each component to float64,
// so the trained scales — and therefore every code — are bit-identical
// to Train on the widened rows.
func Train32(dim, n int, row func(i int) []float32) *Codebook {
	if dim <= 0 {
		panic(fmt.Sprintf("quant: non-positive dimension %d", dim))
	}
	maxAbs := make([]float64, dim)
	for i := 0; i < n; i++ {
		r := row(i)
		for d, v := range r[:dim] {
			x := float64(v)
			if x < 0 {
				x = -x
			}
			if x > maxAbs[d] {
				maxAbs[d] = x
			}
		}
	}
	scales := make([]float64, dim)
	for d, m := range maxAbs {
		if m == 0 {
			scales[d] = 1
		} else {
			scales[d] = m / maxCode
		}
	}
	return newCodebook(dim, scales)
}

// NewCodebook reconstructs a codebook from persisted scales (one per
// dimension, all strictly positive and finite).
func NewCodebook(scales []float64) (*Codebook, error) {
	if len(scales) == 0 {
		return nil, fmt.Errorf("quant: empty scale vector")
	}
	for d, s := range scales {
		if !(s > 0) || s > 1e300 { // rejects 0, negatives, NaN, Inf
			return nil, fmt.Errorf("quant: invalid scale %v for dimension %d", s, d)
		}
	}
	return newCodebook(len(scales), append([]float64(nil), scales...)), nil
}

func newCodebook(dim int, scales []float64) *Codebook {
	inv := make([]float64, dim)
	for d, s := range scales {
		inv[d] = 1 / s
	}
	return &Codebook{dim: dim, scales: scales, inv: inv}
}

// Dim returns the vector dimensionality the codebook was trained for.
func (cb *Codebook) Dim() int { return cb.dim }

// Scales returns the per-dimension scales for serialisation. The slice
// must not be mutated.
func (cb *Codebook) Scales() []float64 { return cb.scales }

// clampRound maps x to the nearest integer code in [-127, 127].
func clampRound(x float64) int8 {
	// Round half away from zero, then saturate. Values beyond the trained
	// range (possible for vectors inserted after training) clamp to the
	// range edge instead of wrapping.
	if x >= 0 {
		x += 0.5
		if x > maxCode {
			return maxCode
		}
		return int8(x)
	}
	x -= 0.5
	if x < -maxCode {
		return -maxCode
	}
	return int8(x)
}

// Encode quantizes v into dst (len >= Dim) and returns the per-row
// correction term: the reciprocal L2 norm of the decoded vector, or 0
// when every code rounds to zero. The correction folds the decode scale
// AND the unit-normalisation of the decoded row into one multiplier, so
// a quantized cosine is Dot8(qc, dst) * qscale * corr.
func (cb *Codebook) Encode(dst []int8, v []float64) (corr float64) {
	if len(v) != cb.dim {
		panic(fmt.Sprintf("quant: Encode vector dim %d, codebook dim %d", len(v), cb.dim))
	}
	dst = dst[:cb.dim]
	var norm2 float64
	for d, x := range v {
		c := clampRound(x * cb.inv[d])
		dst[d] = c
		dec := float64(c) * cb.scales[d]
		norm2 += dec * dec
	}
	if norm2 == 0 {
		return 0
	}
	return 1 / math.Sqrt(norm2)
}

// Encode32 is Encode over a float32 row. Each component widens to
// float64 before scaling, so codes and correction are bit-identical to
// Encode on the widened row.
func (cb *Codebook) Encode32(dst []int8, v []float32) (corr float64) {
	if len(v) != cb.dim {
		panic(fmt.Sprintf("quant: Encode32 vector dim %d, codebook dim %d", len(v), cb.dim))
	}
	dst = dst[:cb.dim]
	var norm2 float64
	for d, x := range v {
		c := clampRound(float64(x) * cb.inv[d])
		dst[d] = c
		dec := float64(c) * cb.scales[d]
		norm2 += dec * dec
	}
	if norm2 == 0 {
		return 0
	}
	return 1 / math.Sqrt(norm2)
}

// Decode reconstructs the float64 vector a code represents into dst
// (len >= Dim).
func (cb *Codebook) Decode(dst []float64, codes []int8) {
	if len(codes) < cb.dim || len(dst) < cb.dim {
		panic("quant: Decode length mismatch")
	}
	for d := 0; d < cb.dim; d++ {
		dst[d] = float64(codes[d]) * cb.scales[d]
	}
}

// EncodeQuery quantizes a query for asymmetric search: each component is
// pre-multiplied by its dimension's scale (cancelling the per-dimension
// scales of the stored codes inside the integer dot product) and the
// result is quantized with a single per-query scale, which is returned.
// A zero (or degenerate) query returns qscale 0; callers fall back to
// the exact kernel.
func (cb *Codebook) EncodeQuery(dst []int8, q []float64) (qscale float64) {
	if len(q) != cb.dim {
		panic(fmt.Sprintf("quant: EncodeQuery dim %d, codebook dim %d", len(q), cb.dim))
	}
	dst = dst[:cb.dim]
	var maxAbs float64
	for d, x := range q {
		p := x * cb.scales[d]
		if p < 0 {
			p = -p
		}
		if p > maxAbs {
			maxAbs = p
		}
	}
	if maxAbs == 0 || maxAbs != maxAbs { // zero query or NaN component
		for d := range dst {
			dst[d] = 0
		}
		return 0
	}
	qscale = maxAbs / maxCode
	inv := 1 / qscale
	for d, x := range q {
		dst[d] = clampRound(x * cb.scales[d] * inv)
	}
	return qscale
}

// Dot8 returns the int32 inner product of two code vectors. With
// |codes| <= 127 the sum is bounded by 127²·len, which stays inside
// int32 for any dimensionality up to 2^17 (far above the snapshot
// format's 2^16 dimension cap). It panics if the lengths differ.
//
// On amd64 the inner loop is runtime-dispatched on cpu.Active(): the
// AVX2 kernel in dot8_avx2_amd64.s (32 codes per iteration) when the
// CPU and the RETRO_SIMD cap allow it, the SSE2 kernel in dot8_amd64.s
// (8 codes per multiply-add, baseline so it needs no detection)
// otherwise. Other architectures use the unrolled scalar loop. All
// levels are exact integer arithmetic, so results are bit-identical
// regardless of which kernel runs.
func Dot8(a, b []int8) int32 {
	if len(a) != len(b) {
		// Constant panic message: a Sprintf here would push Dot8 over the
		// inlining budget and cost an extra call frame on every ANN hop.
		panic("quant: Dot8 length mismatch")
	}
	return dot8(a, b)
}

// Dot8Many computes dst[j] = Dot8(node, queries[j]) for every query.
// It exists for the batched graph walk: when Q queries visit the same
// node, the node's code is the operand all Q scores share, and on AVX2
// the pair kernel loads it once per block instead of once per query. It
// panics if len(dst) != len(queries) or any query length differs from
// the node's. Results are bit-identical to Q separate Dot8 calls.
func Dot8Many(node []int8, queries [][]int8, dst []int32) {
	if len(queries) != len(dst) {
		panic("quant: Dot8Many dst length mismatch")
	}
	dot8Many(node, queries, dst)
}

// Dot8Pair returns (Dot8(shared, a), Dot8(shared, b)). The batched beam
// search uses it to score one query code against two candidate codes
// per call: on AVX2 the shared operand is sign-extended once per block
// and reused for both products. It panics on length mismatch. Results
// are bit-identical to two Dot8 calls.
func Dot8Pair(shared, a, b []int8) (int32, int32) {
	if len(a) != len(shared) || len(b) != len(shared) {
		panic("quant: Dot8Pair length mismatch")
	}
	return dot8Pair(shared, a, b)
}

// dot8ManyPortable is the fallback shape of Dot8Many: one dispatched
// dot per query. The node code stays cache-resident across the loop, so
// even this path amortises the batched walk's dominant memory cost.
func dot8ManyPortable(node []int8, queries [][]int8, dst []int32) {
	for j, q := range queries {
		dst[j] = Dot8(node, q)
	}
}

// dot8Scalar is the portable kernel: four independent int32 accumulators
// in slice-advance form (bounds-check free, as in vec.Dot). It is also
// the reference the assembly kernel is property-tested against.
func dot8Scalar(a, b []int8) int32 {
	b = b[:len(a)]
	var s0, s1, s2, s3 int32
	for len(a) >= 4 && len(b) >= 4 {
		s0 += int32(a[0]) * int32(b[0])
		s1 += int32(a[1]) * int32(b[1])
		s2 += int32(a[2]) * int32(b[2])
		s3 += int32(a[3]) * int32(b[3])
		a, b = a[4:], b[4:]
	}
	for i := range a {
		s0 += int32(a[i]) * int32(b[i])
	}
	return (s0 + s1) + (s2 + s3)
}
