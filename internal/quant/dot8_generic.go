//go:build !amd64

package quant

func dot8(a, b []int8) int32 { return dot8Scalar(a, b) }
