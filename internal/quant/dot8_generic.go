//go:build !amd64

package quant

func dot8(a, b []int8) int32 { return dot8Scalar(a, b) }

func dot8Many(node []int8, queries [][]int8, dst []int32) {
	dot8ManyPortable(node, queries, dst)
}

func dot8Pair(shared, a, b []int8) (int32, int32) {
	return dot8(shared, a), dot8(shared, b)
}
