//go:build amd64

package quant

// dot8Blocks is implemented in dot8_amd64.s: the int8 inner product over
// blocks*8 elements via SSE2 (guaranteed on amd64, so there is no
// runtime feature detection to get wrong).
//
//go:noescape
func dot8Blocks(a, b *int8, blocks int) int32

func dot8(a, b []int8) int32 {
	n := len(a)
	var s int32
	if blocks := n / 8; blocks > 0 {
		s = dot8Blocks(&a[0], &b[0], blocks)
	}
	for i := n &^ 7; i < n; i++ {
		s += int32(a[i]) * int32(b[i])
	}
	return s
}
