//go:build amd64

package quant

import "github.com/retrodb/retro/internal/cpu"

// dot8Blocks is implemented in dot8_amd64.s: the int8 inner product over
// blocks*8 elements via SSE2 (guaranteed on amd64, so it is the floor of
// the dispatch ladder — the level runtime detection can never sink
// below on this architecture).
//
//go:noescape
func dot8Blocks(a, b *int8, blocks int) int32

// dot8BlocksAVX2 is implemented in dot8_avx2_amd64.s: blocks*32
// elements per call via VPMOVSXBW sign-extension and VPMADDWD. Only
// reachable when cpu.Active() >= cpu.AVX2.
//
//go:noescape
func dot8BlocksAVX2(a, b *int8, blocks int) int32

// dot8PairBlocks scores one node code against two query codes over
// blocks*16 elements, loading the shared node operand once per block.
// This is the kernel behind Dot8Many: in a batched graph walk the node
// code is the operand that would otherwise be re-streamed per query.
//
//go:noescape
func dot8PairBlocks(n, q0, q1 *int8, blocks int) (s0, s1 int32)

// dot8 picks the widest kernel the CPU (and the RETRO_SIMD cap) allows.
// All three levels compute exact int32 arithmetic, so the choice is
// invisible to callers: parity across levels is bit-identical, which the
// property tests assert rather than assume.
func dot8(a, b []int8) int32 {
	switch cpu.Active() {
	case cpu.AVX2:
		return dot8AVX2(a, b)
	case cpu.SSE2:
		return dot8SSE2(a, b)
	}
	return dot8Scalar(a, b)
}

func dot8SSE2(a, b []int8) int32 {
	n := len(a)
	var s int32
	if blocks := n / 8; blocks > 0 {
		s = dot8Blocks(&a[0], &b[0], blocks)
	}
	for i := n &^ 7; i < n; i++ {
		s += int32(a[i]) * int32(b[i])
	}
	return s
}

func dot8AVX2(a, b []int8) int32 {
	n := len(a)
	var s int32
	i := 0
	if blocks := n / 32; blocks > 0 {
		s = dot8BlocksAVX2(&a[0], &b[0], blocks)
		i = blocks * 32
	}
	// Mop up 8-wide with the SSE2 kernel, then scalar for the last <8.
	if rem := n - i; rem >= 8 {
		bl := rem / 8
		s += dot8Blocks(&a[i], &b[i], bl)
		i += bl * 8
	}
	for ; i < n; i++ {
		s += int32(a[i]) * int32(b[i])
	}
	return s
}

// dot8Pair scores the shared code against two others through the pair
// kernel when AVX2 is active, sharing the sign-extended load of shared.
func dot8Pair(shared, a, b []int8) (int32, int32) {
	n := len(shared)
	if cpu.Active() >= cpu.AVX2 && n >= 16 {
		blocks := n / 16
		s0, s1 := dot8PairBlocks(&shared[0], &a[0], &b[0], blocks)
		for i := blocks * 16; i < n; i++ {
			s0 += int32(shared[i]) * int32(a[i])
			s1 += int32(shared[i]) * int32(b[i])
		}
		return s0, s1
	}
	return dot8(shared, a), dot8(shared, b)
}

// dot8Many scores node against every query code. On AVX2 queries are
// consumed in pairs through dot8PairBlocks so the node operand is
// loaded once per block instead of once per query; lower levels fall
// back to the per-pair dispatched kernel (node stays L1-resident across
// the loop either way).
func dot8Many(node []int8, queries [][]int8, dst []int32) {
	n := len(node)
	if cpu.Active() >= cpu.AVX2 && n >= 16 {
		blocks := n / 16
		head := blocks * 16
		j := 0
		for ; j+1 < len(queries); j += 2 {
			q0, q1 := queries[j], queries[j+1]
			if len(q0) != n || len(q1) != n {
				panic("quant: Dot8Many length mismatch")
			}
			s0, s1 := dot8PairBlocks(&node[0], &q0[0], &q1[0], blocks)
			for i := head; i < n; i++ {
				s0 += int32(node[i]) * int32(q0[i])
				s1 += int32(node[i]) * int32(q1[i])
			}
			dst[j], dst[j+1] = s0, s1
		}
		if j < len(queries) {
			dst[j] = Dot8(node, queries[j])
		}
		return
	}
	dot8ManyPortable(node, queries, dst)
}
