//go:build amd64

#include "textflag.h"

// func dot8BlocksAVX2(a, b *int8, blocks int) int32
//
// Sums a[i]*b[i] over blocks*32 int8 elements. Each half-block of 16
// codes is sign-extended to int16 lanes in one VPMOVSXBW, multiplied and
// horizontally paired into int32 lanes with VPMADDWD, and accumulated
// with VPADDD. Two independent accumulators (Y6, Y7) hide the VPMADDWD
// latency. Per int32 lane the accumulation is 2*127^2 per block over at
// most 2^17/32 blocks, far inside int32.
TEXT ·dot8BlocksAVX2(SB), NOSPLIT, $0-28
	MOVQ  a+0(FP), SI
	MOVQ  b+8(FP), DI
	MOVQ  blocks+16(FP), CX
	VPXOR Y6, Y6, Y6
	VPXOR Y7, Y7, Y7

loop:
	VPMOVSXBW (SI), Y0
	VPMOVSXBW (DI), Y1
	VPMADDWD  Y1, Y0, Y0
	VPADDD    Y0, Y6, Y6
	VPMOVSXBW 16(SI), Y2
	VPMOVSXBW 16(DI), Y3
	VPMADDWD  Y3, Y2, Y2
	VPADDD    Y2, Y7, Y7
	ADDQ      $32, SI
	ADDQ      $32, DI
	DECQ      CX
	JNZ       loop

	// Horizontal sum of the eight int32 lanes of Y6+Y7.
	VPADDD       Y7, Y6, Y6
	VEXTRACTI128 $1, Y6, X0
	VPADDD       X0, X6, X6
	VPSHUFD      $0x4E, X6, X0
	VPADDD       X0, X6, X6
	VPSHUFD      $0xB1, X6, X0
	VPADDD       X0, X6, X6
	VMOVD        X6, AX
	VZEROUPPER
	MOVL         AX, ret+24(FP)
	RET

// func dot8PairBlocks(n, q0, q1 *int8, blocks int) (s0, s1 int32)
//
// Scores the shared node code against two query codes over blocks*16
// elements. The node half-block is sign-extended once (Y0) and reused
// for both VPMADDWDs — the whole point of the pair kernel: in a batched
// walk the node bytes are fetched from memory once per pair instead of
// once per query.
TEXT ·dot8PairBlocks(SB), NOSPLIT, $0-40
	MOVQ  n+0(FP), SI
	MOVQ  q0+8(FP), R8
	MOVQ  q1+16(FP), R9
	MOVQ  blocks+24(FP), CX
	VPXOR Y6, Y6, Y6
	VPXOR Y7, Y7, Y7

pairloop:
	VPMOVSXBW (SI), Y0
	VPMOVSXBW (R8), Y1
	VPMADDWD  Y0, Y1, Y1
	VPADDD    Y1, Y6, Y6
	VPMOVSXBW (R9), Y2
	VPMADDWD  Y0, Y2, Y2
	VPADDD    Y2, Y7, Y7
	ADDQ      $16, SI
	ADDQ      $16, R8
	ADDQ      $16, R9
	DECQ      CX
	JNZ       pairloop

	VEXTRACTI128 $1, Y6, X0
	VPADDD       X0, X6, X6
	VPSHUFD      $0x4E, X6, X0
	VPADDD       X0, X6, X6
	VPSHUFD      $0xB1, X6, X0
	VPADDD       X0, X6, X6
	VEXTRACTI128 $1, Y7, X1
	VPADDD       X1, X7, X7
	VPSHUFD      $0x4E, X7, X1
	VPADDD       X1, X7, X7
	VPSHUFD      $0xB1, X7, X1
	VPADDD       X1, X7, X7
	VMOVD        X6, AX
	VMOVD        X7, BX
	VZEROUPPER
	MOVL         AX, s0+32(FP)
	MOVL         BX, s1+36(FP)
	RET
