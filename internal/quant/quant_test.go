package quant

import (
	"math"
	"math/rand"
	"testing"
)

func randRows(rng *rand.Rand, n, dim int) [][]float64 {
	rows := make([][]float64, n)
	for i := range rows {
		v := make([]float64, dim)
		for d := range v {
			v[d] = rng.NormFloat64()
		}
		rows[i] = v
	}
	return rows
}

func TestTrainScalesCoverRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	rows := randRows(rng, 200, 16)
	cb := Train(16, len(rows), func(i int) []float64 { return rows[i] })
	for d := 0; d < 16; d++ {
		var maxAbs float64
		for _, r := range rows {
			maxAbs = math.Max(maxAbs, math.Abs(r[d]))
		}
		if got := cb.Scales()[d] * 127; !(got >= maxAbs*(1-1e-12)) {
			t.Fatalf("dim %d: scale*127 = %v does not cover max |v| = %v", d, got, maxAbs)
		}
	}
}

func TestTrainZeroDimensionGetsUnitScale(t *testing.T) {
	rows := [][]float64{{0, 1}, {0, -2}}
	cb := Train(2, 2, func(i int) []float64 { return rows[i] })
	if cb.Scales()[0] != 1 {
		t.Fatalf("zero dimension scale = %v, want 1", cb.Scales()[0])
	}
}

// TestPropertyEncodeDecodeWithinEpsilon is the SQ8 round-trip bound: for
// any vector inside the trained range, every decoded component must be
// within half a quantization step (scale/2) of the original.
func TestPropertyEncodeDecodeWithinEpsilon(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const dim = 48
	rows := randRows(rng, 500, dim)
	cb := Train(dim, len(rows), func(i int) []float64 { return rows[i] })
	codes := make([]int8, dim)
	dec := make([]float64, dim)
	for _, v := range rows {
		corr := cb.Encode(codes, v)
		cb.Decode(dec, codes)
		var norm2 float64
		for d := 0; d < dim; d++ {
			eps := cb.Scales()[d]/2 + 1e-12
			if diff := math.Abs(dec[d] - v[d]); diff > eps {
				t.Fatalf("dim %d: |decode-orig| = %v exceeds epsilon %v (scale %v)",
					d, diff, eps, cb.Scales()[d])
			}
			norm2 += dec[d] * dec[d]
		}
		if norm2 == 0 {
			if corr != 0 {
				t.Fatalf("zero decoded vector must have corr 0, got %v", corr)
			}
			continue
		}
		if want := 1 / math.Sqrt(norm2); math.Abs(corr-want) > 1e-9*want {
			t.Fatalf("corr = %v, want reciprocal decoded norm %v", corr, want)
		}
	}
}

// TestEncodeClampsOutOfRange: vectors beyond the trained range (inserted
// after training) saturate at ±127 instead of wrapping.
func TestEncodeClampsOutOfRange(t *testing.T) {
	rows := [][]float64{{1, -1}}
	cb := Train(2, 1, func(i int) []float64 { return rows[i] })
	codes := make([]int8, 2)
	cb.Encode(codes, []float64{1000, -1000})
	if codes[0] != 127 || codes[1] != -127 {
		t.Fatalf("out-of-range encode = %v, want [127 -127]", codes)
	}
}

// TestQuantizedCosineApproximatesExact: the full asymmetric pipeline
// (Encode rows, EncodeQuery, Dot8, qscale·corr fixup) must land within
// ~1% of the exact cosine on unit vectors — the regime the ANN index
// uses it in.
func TestQuantizedCosineApproximatesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const dim = 300
	rows := randRows(rng, 300, dim)
	for _, v := range rows {
		normalize(v)
	}
	cb := Train(dim, len(rows), func(i int) []float64 { return rows[i] })
	codes := make([][]int8, len(rows))
	corrs := make([]float64, len(rows))
	for i, v := range rows {
		codes[i] = make([]int8, dim)
		corrs[i] = cb.Encode(codes[i], v)
	}
	qc := make([]int8, dim)
	for qi := 0; qi < 32; qi++ {
		q := rows[rng.Intn(len(rows))]
		qscale := cb.EncodeQuery(qc, q)
		if qscale <= 0 {
			t.Fatal("unit query encoded to qscale 0")
		}
		for i, v := range rows {
			var exact float64
			for d := 0; d < dim; d++ {
				exact += q[d] * v[d]
			}
			approx := float64(Dot8(qc, codes[i])) * qscale * corrs[i]
			if math.Abs(approx-exact) > 0.01 {
				t.Fatalf("query %d row %d: quantized cosine %v vs exact %v", qi, i, approx, exact)
			}
		}
	}
}

func normalize(v []float64) {
	var n2 float64
	for _, x := range v {
		n2 += x * x
	}
	inv := 1 / math.Sqrt(n2)
	for i := range v {
		v[i] *= inv
	}
}

func TestDot8MatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 33, 300} {
		a, b := make([]int8, n), make([]int8, n)
		var want int32
		for i := range a {
			a[i] = int8(rng.Intn(255) - 127)
			b[i] = int8(rng.Intn(255) - 127)
			want += int32(a[i]) * int32(b[i])
		}
		if got := Dot8(a, b); got != want {
			t.Fatalf("n=%d: Dot8 = %d, want %d", n, got, want)
		}
	}
}

func TestDot8PanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	Dot8([]int8{1}, []int8{1, 2})
}

func TestNewCodebookValidates(t *testing.T) {
	if _, err := NewCodebook(nil); err == nil {
		t.Fatal("empty scales accepted")
	}
	if _, err := NewCodebook([]float64{1, 0}); err == nil {
		t.Fatal("zero scale accepted")
	}
	if _, err := NewCodebook([]float64{1, math.NaN()}); err == nil {
		t.Fatal("NaN scale accepted")
	}
	cb, err := NewCodebook([]float64{0.5, 2})
	if err != nil {
		t.Fatal(err)
	}
	if cb.Dim() != 2 || cb.Scales()[1] != 2 {
		t.Fatalf("codebook round-trip: dim %d scales %v", cb.Dim(), cb.Scales())
	}
}

// TestEncodeQueryScaleCancellation: the per-dimension scales must cancel
// inside the integer dot product — a query aligned with a stored row
// recovers a cosine near 1 even when the trained ranges are wildly
// anisotropic across dimensions.
func TestEncodeQueryScaleCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const dim = 64
	ranges := make([]float64, dim)
	for d := range ranges {
		ranges[d] = math.Pow(10, rng.Float64()*6-3) // 1e-3 .. 1e3
	}
	rows := make([][]float64, 100)
	for i := range rows {
		v := make([]float64, dim)
		for d := range v {
			v[d] = ranges[d] * rng.NormFloat64()
		}
		normalize(v)
		rows[i] = v
	}
	cb := Train(dim, len(rows), func(i int) []float64 { return rows[i] })
	codes := make([]int8, dim)
	qc := make([]int8, dim)
	for _, v := range rows {
		corr := cb.Encode(codes, v)
		qscale := cb.EncodeQuery(qc, v)
		got := float64(Dot8(qc, codes)) * qscale * corr
		if math.Abs(got-1) > 0.02 {
			t.Fatalf("self-similarity under anisotropic scales = %v, want ~1", got)
		}
	}
}

// TestDot8AsmScalarParity pins the arch-specific kernel to the portable
// scalar reference across every alignment and tail-length class.
func TestDot8AsmScalarParity(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, n := range []int{0, 1, 2, 7, 8, 9, 15, 16, 17, 24, 31, 63, 300, 301, 1024} {
		a, b := make([]int8, n), make([]int8, n)
		for trial := 0; trial < 20; trial++ {
			for i := range a {
				a[i] = int8(rng.Intn(255) - 127)
				b[i] = int8(rng.Intn(255) - 127)
			}
			if got, want := Dot8(a, b), dot8Scalar(a, b); got != want {
				t.Fatalf("n=%d: Dot8 = %d, scalar reference = %d", n, got, want)
			}
		}
	}
	// Saturated extremes: every product at its magnitude bound.
	n := 4096
	a, b := make([]int8, n), make([]int8, n)
	for i := range a {
		a[i], b[i] = -127, 127
	}
	if got, want := Dot8(a, b), int32(-127*127*n); got != want {
		t.Fatalf("saturated: Dot8 = %d, want %d", got, want)
	}
}

func BenchmarkDot8(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	x, y := make([]int8, 300), make([]int8, 300)
	for i := range x {
		x[i] = int8(rng.Intn(255) - 127)
		y[i] = int8(rng.Intn(255) - 127)
	}
	b.Run("kernel", func(b *testing.B) {
		var s int32
		for i := 0; i < b.N; i++ {
			s += Dot8(x, y)
		}
		_ = s
	})
	b.Run("scalar", func(b *testing.B) {
		var s int32
		for i := 0; i < b.N; i++ {
			s += dot8Scalar(x, y)
		}
		_ = s
	})
}
