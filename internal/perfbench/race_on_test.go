//go:build race

package perfbench

// raceEnabled reports that this test binary runs under the race
// detector; the large-world recall measurements are skipped there (a
// 10k x 300 HNSW build under instrumentation adds minutes for a
// single-threaded, pure-compute check that the regular test and
// recall-guard CI jobs already enforce).
const raceEnabled = true
