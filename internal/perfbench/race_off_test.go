//go:build !race

package perfbench

const raceEnabled = false
