package perfbench

import (
	"fmt"
	"os"
	"sync"
	"testing"

	"github.com/retrodb/retro/internal/embed"
)

// The pinned quantization benchmarks (CI bench-smoke greps for these
// names): BenchmarkTopKQuantized must beat BenchmarkTopKExactHNSW by
// >= 2x on the 50k-value dataset while holding recall@10 >= 0.95. Both
// run over the SAME built graph — the only variable is the distance
// kernel (and the re-ranking pass the quantized path adds).

var pair struct {
	sync.Once
	exact, quantized *embed.Store
	queries          [][]float64
}

func benchPair(b *testing.B) (*embed.Store, *embed.Store, [][]float64) {
	b.Helper()
	pair.Do(func() {
		pair.exact, pair.quantized, pair.queries = Pair(NumValues, Dim, 42, 0)
	})
	return pair.exact, pair.quantized, pair.queries
}

func benchTopK(b *testing.B, s *embed.Store, queries [][]float64) {
	buf := make([]embed.Match, 0, 16)
	buf = s.TopKAppend(queries[0], 10, nil, buf) // warm scratch pools
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = s.TopKAppend(queries[i%len(queries)], 10, nil, buf)
		if len(buf) != 10 {
			b.Fatal("short result")
		}
	}
	b.StopTimer()
	b.ReportMetric(Recall10(s, queries[:16]), "recall@10")
}

// BenchmarkTopKExactHNSW is the float64 HNSW serving path: every hop
// streams the full 8-byte-per-dimension vector.
func BenchmarkTopKExactHNSW(b *testing.B) {
	exact, _, queries := benchPair(b)
	benchTopK(b, exact, queries)
}

// BenchmarkTopKQuantized is the SQ8 path: traversal reads 1-byte codes
// (8x less memory per hop), then the over-fetched candidates are
// re-scored exactly in float64.
func BenchmarkTopKQuantized(b *testing.B) {
	_, quantized, queries := benchPair(b)
	benchTopK(b, quantized, queries)
}

// benchTopKMany drives the batched serving path: one TopKManyAppend
// call per iteration, so ns/op is per BATCH; divide by the batch size
// for the per-query figure the BENCH_*.json trajectory records.
func benchTopKMany(b *testing.B, s *embed.Store, queries [][]float64, batch int) {
	ks := make([]int, batch)
	for i := range ks {
		ks[i] = 10
	}
	qbatch := make([][]float64, batch)
	dst := make([][]embed.Match, batch)
	for i := range dst {
		dst[i] = make([]embed.Match, 0, 16)
	}
	pos := 0
	fill := func() {
		for j := range qbatch {
			qbatch[j] = queries[(pos+j)%len(queries)]
		}
		pos += batch
	}
	fill()
	dst = s.TopKManyAppend(qbatch, ks, nil, dst) // warm the pools
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fill()
		dst = s.TopKManyAppend(qbatch, ks, nil, dst)
		if len(dst[0]) != 10 {
			b.Fatal("short result")
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(batch), "queries/batch")
	b.ReportMetric(Recall10Many(s, queries[:16], batch), "recall@10")
}

// BenchmarkTopKMany is the pinned batched-path benchmark (CI bench-smoke
// greps for it): the quantized serving configuration at batch sizes 1,
// 16 and 64. The acceptance bar for the batch engine is >= 2x per-query
// throughput at batch 64 against BenchmarkTopKQuantized (the looped
// single-query baseline over the same world).
func BenchmarkTopKMany(b *testing.B) {
	_, quantized, queries := benchPair(b)
	for _, batch := range []int{1, 16, 64} {
		b.Run(fmt.Sprintf("batch%d", batch), func(b *testing.B) {
			benchTopKMany(b, quantized, queries, batch)
		})
	}
}

// BenchmarkTopKManyExactHNSW is the batched engine without quantization:
// the interleaved beam prefetches full float64 rows instead of codes.
func BenchmarkTopKManyExactHNSW(b *testing.B) {
	exact, _, queries := benchPair(b)
	for _, batch := range []int{64} {
		b.Run(fmt.Sprintf("batch%d", batch), func(b *testing.B) {
			benchTopKMany(b, exact, queries, batch)
		})
	}
}

// TestQuantizedRecallGuard is the CI recall gate: quantized recall@10
// must hold >= 0.95 against the exact scan on the bench dataset. The
// default run uses a 10k slice of the world so the tier-1 suite stays
// fast; CI's recall-guard job sets RETRO_RECALL_FULL=1 to run the full
// 50k-value dataset.
func TestQuantizedRecallGuard(t *testing.T) {
	n := 10_000
	if os.Getenv("RETRO_RECALL_FULL") != "" {
		n = NumValues
	} else if testing.Short() || raceEnabled {
		t.Skip("short mode / race detector (enforced by the recall-guard CI job)")
	}
	_, quantized, queries := Pair(n, Dim, 42, 0)
	if recall := Recall10(quantized, queries[:64]); recall < 0.95 {
		t.Fatalf("quantized recall@10 = %.4f on n=%d, want >= 0.95", recall, n)
	}
	// The batched engine must hold the same recall it inherits from the
	// single path — measured through TopKMany itself, not inferred.
	if recall := Recall10Many(quantized, queries[:64], 32); recall < 0.95 {
		t.Fatalf("batched quantized recall@10 = %.4f on n=%d, want >= 0.95", recall, n)
	}
}

// TestPairSharesOneGraph guards the benchmark's validity: the two views
// must disagree only in kernel, not in graph shape.
func TestPairSharesOneGraph(t *testing.T) {
	exact, quantized, queries := Pair(2000, 32, 7, 0)
	if exact.ANNIndex() == nil || quantized.ANNIndex() == nil {
		t.Fatal("pair missing an index")
	}
	if exact.ANNIndex().Quantized() {
		t.Fatal("exact view is quantized")
	}
	if !quantized.ANNIndex().Quantized() {
		t.Fatal("quantized view is not quantized")
	}
	if exact.ANNIndex().Len() != quantized.ANNIndex().Len() {
		t.Fatal("views index different vector counts")
	}
	// Same world, nearly identical answers (re-rank makes ordering exact
	// over the fetched candidates).
	agree := 0
	for _, q := range queries[:32] {
		a := exact.TopK(q, 1, nil)
		b := quantized.TopK(q, 1, nil)
		if len(a) == 1 && len(b) == 1 && a[0].ID == b[0].ID {
			agree++
		}
	}
	if agree < 31 {
		t.Fatalf("top-1 agreement %d/32 between the pair's views", agree)
	}
}
