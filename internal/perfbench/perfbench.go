// Package perfbench builds the shared performance-benchmark world and
// measurements used by both the pinned Go benchmarks (bench_test.go at
// the repo root, run in CI bench-smoke) and the retro-bench -perf mode,
// which emits the machine-readable BENCH_*.json perf-trajectory file.
// One definition of "the 50k-value dataset" keeps the CI gate, the JSON
// artifact and local runs measuring the same thing.
package perfbench

import (
	"fmt"
	"math/rand"

	"github.com/retrodb/retro/internal/ann"
	"github.com/retrodb/retro/internal/embed"
)

// Dim is the benchmark embedding width: the word-embedding width RETRO
// consumes in the paper (300-dim GloVe), which is also the regime where
// SQ8 codes cut per-hop traffic 8x versus float64.
const Dim = 300

// NumValues is the benchmark vocabulary size ("the 50k-value dataset").
const NumValues = 50_000

// NumQueries is the size of the benchmark query pool. It is deliberately
// large: serving traffic is diverse, and a small recycled pool would let
// the exact float64 path keep its visited working set cache-resident —
// hiding exactly the memory traffic quantization exists to cut.
const NumQueries = 2048

// World builds a store of n dim-wide vectors plus a fixed query set.
// The vectors are a cluster mixture, mirroring how retrofitted
// embeddings group by column and relation neighbourhood rather than
// filling the space uniformly. The store has ANN enabled from the first
// entry but the index is NOT built; callers warm it so the build stays
// outside any timing window.
func World(n, dim int, seed int64) (*embed.Store, [][]float64) {
	return WorldWithPrecision(n, dim, seed, embed.F64)
}

// WorldWithPrecision is World with an explicit store precision. The
// vector stream is identical for every precision at the same seed (the
// store rounds on entry), so an F32 world and an F64 world hold the same
// data and their rankings are directly comparable ID-for-ID.
func WorldWithPrecision(n, dim int, seed int64, p embed.Precision) (*embed.Store, [][]float64) {
	rng := rand.New(rand.NewSource(seed))
	centers := make([][]float64, 256)
	for ci := range centers {
		c := make([]float64, dim)
		for j := range c {
			c[j] = rng.NormFloat64()
		}
		centers[ci] = c
	}
	point := func() []float64 {
		c := centers[rng.Intn(len(centers))]
		v := make([]float64, dim)
		for j := range v {
			v[j] = c[j] + 0.25*rng.NormFloat64()
		}
		return v
	}
	s := embed.NewStoreWithPrecision(dim, p)
	s.EnableANN(1, ann.Params{})
	for i := 0; i < n; i++ {
		s.Add(fmt.Sprintf("v%07d", i), point())
	}
	queries := make([][]float64, NumQueries)
	for qi := range queries {
		queries[qi] = point()
	}
	return s, queries
}

// Recall10 measures recall@10 of the store's TopK path (ANN, quantized
// or not — whatever the store is configured with) against the exact
// scan, over the given queries.
func Recall10(s *embed.Store, queries [][]float64) float64 {
	hits, total := 0, 0
	for _, q := range queries {
		want := map[int]bool{}
		for _, m := range s.TopKExact(q, 10, nil) {
			want[m.ID] = true
		}
		for _, m := range s.TopK(q, 10, nil) {
			if want[m.ID] {
				hits++
			}
		}
		total += 10
	}
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}

// Recall10Many is Recall10 through the batched TopKMany path, so the
// recall gate measures what the batch endpoint actually serves rather
// than inferring it from the single-query path plus the parity tests.
func Recall10Many(s *embed.Store, queries [][]float64, batch int) float64 {
	hits, total := 0, 0
	ks := make([]int, 0, batch)
	var dst [][]embed.Match
	for base := 0; base < len(queries); base += batch {
		end := base + batch
		if end > len(queries) {
			end = len(queries)
		}
		chunk := queries[base:end]
		ks = ks[:0]
		for range chunk {
			ks = append(ks, 10)
		}
		dst = s.TopKManyAppend(chunk, ks, nil, dst)
		for qi, q := range chunk {
			want := map[int]bool{}
			for _, m := range s.TopKExact(q, 10, nil) {
				want[m.ID] = true
			}
			for _, m := range dst[qi] {
				if want[m.ID] {
					hits++
				}
			}
			total += 10
		}
	}
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}

// Pair builds the benchmark comparison pair over one shared world: two
// frozen views of the SAME built HNSW graph, one traversing exact
// float64 distances and one on SQ8 codes with exact re-ranking (the
// quantized view is a structural clone + encode, not a second O(n log n)
// graph build). Freezing mirrors the serving read path: queries run
// lock-free with all derived state materialised.
func Pair(n, dim int, seed int64, rerank int) (exact, quantized *embed.Store, queries [][]float64) {
	return PairWithPrecision(n, dim, seed, rerank, embed.F64)
}

// PairWithPrecision is Pair over a store of the given precision: the
// float32 serving comparison builds its pair with embed.F32 and the same
// seed, yielding the same vectors in half the resident bytes.
func PairWithPrecision(n, dim int, seed int64, rerank int, p embed.Precision) (exact, quantized *embed.Store, queries [][]float64) {
	s, queries := WorldWithPrecision(n, dim, seed, p)
	s.WarmANN()
	exact = s.Freeze()
	s.EnableQuantization(embed.QuantSQ8, rerank)
	s.WarmANN() // copy-on-write: clones the shared graph, then quantizes
	quantized = s.Freeze()
	return exact, quantized, queries
}

// CrossRecall10 measures recall@10 of s's exact scan against a reference
// store's exact scan over the same vocabulary (IDs align by insertion
// order) — the fidelity gate for a reduced-precision store versus its
// float64 twin.
func CrossRecall10(s, ref *embed.Store, queries [][]float64) float64 {
	hits, total := 0, 0
	for _, q := range queries {
		want := map[int]bool{}
		for _, m := range ref.TopKExact(q, 10, nil) {
			want[m.ID] = true
		}
		for _, m := range s.TopKExact(q, 10, nil) {
			if want[m.ID] {
				hits++
			}
		}
		total += 10
	}
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}
