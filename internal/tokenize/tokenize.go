// Package tokenize implements the tokenization approach of §3.1: a lookup
// trie over the embedding vocabulary extracts the longest possible token
// sequences from each database text value, and the initial vector of the
// value is the centroid of the matched token vectors. Values with no match
// get a null (zero) vector, to be filled in by retrofitting.
package tokenize

import (
	"strings"
	"unicode"

	"github.com/retrodb/retro/internal/embed"
	"github.com/retrodb/retro/internal/trie"
	"github.com/retrodb/retro/internal/vec"
)

// Tokenizer resolves raw database text values against an embedding
// vocabulary. Build one per embedding set with New; it is safe for
// concurrent use after construction.
type Tokenizer struct {
	store *embed.Store
	trie  trie.Trie
}

// New builds the lookup trie for the store's vocabulary. Multi-word
// vocabulary entries are recognised by the underscore convention of
// pre-trained embedding releases ("bank_account") and additionally by
// spaces, so both phrase styles resolve.
func New(store *embed.Store) *Tokenizer {
	t := &Tokenizer{store: store}
	for id, word := range store.Words() {
		parts := SplitPhrase(word)
		if len(parts) == 0 {
			continue
		}
		t.trie.Insert(parts, id)
	}
	return t
}

// SplitPhrase splits a vocabulary entry into its constituent tokens,
// lower-cased. "Bank_Account" -> ["bank", "account"].
func SplitPhrase(word string) []string {
	return Normalize(word)
}

// Normalize lower-cases text and splits it into word tokens. Punctuation
// separates tokens; digits are kept (movie titles like "5th_element" need
// them). This mirrors the standard preprocessing applied before trie
// lookup.
func Normalize(text string) []string {
	var tokens []string
	var b strings.Builder
	flush := func() {
		if b.Len() > 0 {
			tokens = append(tokens, b.String())
			b.Reset()
		}
	}
	for _, r := range text {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			b.WriteRune(unicode.ToLower(r))
		default:
			flush()
		}
	}
	flush()
	return tokens
}

// Tokenize resolves a text value to a bag of vocabulary ids using
// longest-match trie lookup: at each position the longest stored token
// sequence is consumed; unmatched tokens are skipped one at a time.
func (t *Tokenizer) Tokenize(text string) []int {
	tokens := Normalize(text)
	var ids []int
	for i := 0; i < len(tokens); {
		n, id := t.trie.LongestPrefix(tokens[i:])
		if n == 0 {
			i++ // out-of-vocabulary token
			continue
		}
		ids = append(ids, id)
		i += n
	}
	return ids
}

// Coverage reports the fraction of normalised tokens of text that were
// consumed by vocabulary matches (multi-word matches consume several).
// 0 means fully out-of-vocabulary.
func (t *Tokenizer) Coverage(text string) float64 {
	tokens := Normalize(text)
	if len(tokens) == 0 {
		return 0
	}
	consumed := 0
	for i := 0; i < len(tokens); {
		n, _ := t.trie.LongestPrefix(tokens[i:])
		if n == 0 {
			i++
			continue
		}
		consumed += n
		i += n
	}
	return float64(consumed) / float64(len(tokens))
}

// InitialVector computes the §3.1 initialisation for a text value: the
// centroid of the vectors of its matched tokens, or a null vector when no
// token matches. The second return reports whether any token matched.
func (t *Tokenizer) InitialVector(text string) ([]float64, bool) {
	ids := t.Tokenize(text)
	out := make([]float64, t.store.Dim())
	if len(ids) == 0 {
		return out, false
	}
	for _, id := range ids {
		vec.Axpy(out, 1, t.store.Vector(id))
	}
	vec.Scale(out, 1/float64(len(ids)))
	return out, true
}

// Store returns the embedding store this tokenizer resolves against.
func (t *Tokenizer) Store() *embed.Store { return t.store }

// WhitespaceInitialVector is the naive §3.1 strawman used for the
// tokenizer ablation: every whitespace token is looked up individually
// (no multi-word phrases), and the centroid of the hits is returned.
func (t *Tokenizer) WhitespaceInitialVector(text string) ([]float64, bool) {
	out := make([]float64, t.store.Dim())
	hits := 0
	for _, tok := range Normalize(text) {
		if v, ok := t.store.VectorOf(tok); ok {
			vec.Axpy(out, 1, v)
			hits++
		}
	}
	if hits == 0 {
		return out, false
	}
	vec.Scale(out, 1/float64(hits))
	return out, true
}
