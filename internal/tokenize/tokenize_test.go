package tokenize

import (
	"math"
	"reflect"
	"testing"

	"github.com/retrodb/retro/internal/embed"
	"github.com/retrodb/retro/internal/vec"
)

func testStore() *embed.Store {
	s := embed.NewStore(2)
	s.Add("bank", []float64{1, 0})
	s.Add("account", []float64{0, 1})
	s.Add("bank_account", []float64{10, 10})
	s.Add("luc_besson", []float64{2, 2})
	s.Add("movie", []float64{-1, 0})
	s.Add("5th", []float64{0, -1})
	s.Add("element", []float64{0, -3})
	return s
}

func TestNormalize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"Bank Account", []string{"bank", "account"}},
		{"Luc_Besson", []string{"luc", "besson"}},
		{"The 5th Element!", []string{"the", "5th", "element"}},
		{"", nil},
		{"--- ,,, ", nil},
		{"Amélie", []string{"amélie"}},
	}
	for _, c := range cases {
		if got := Normalize(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("Normalize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestTokenizeLongestMatch(t *testing.T) {
	tok := New(testStore())
	// "bank account" must resolve to the phrase id, not the two words.
	ids := tok.Tokenize("bank account")
	if len(ids) != 1 || tok.Store().Word(ids[0]) != "bank_account" {
		t.Fatalf("Tokenize(bank account) = %v", ids)
	}
	// "bank balance" falls back to the single word; "balance" is OOV.
	ids = tok.Tokenize("bank balance")
	if len(ids) != 1 || tok.Store().Word(ids[0]) != "bank" {
		t.Fatalf("Tokenize(bank balance) = %v", ids)
	}
}

func TestTokenizeMultiplePhrases(t *testing.T) {
	tok := New(testStore())
	ids := tok.Tokenize("Luc Besson movie bank account")
	var words []string
	for _, id := range ids {
		words = append(words, tok.Store().Word(id))
	}
	want := []string{"luc_besson", "movie", "bank_account"}
	if !reflect.DeepEqual(words, want) {
		t.Fatalf("got %v want %v", words, want)
	}
}

func TestTokenizeAllOOV(t *testing.T) {
	tok := New(testStore())
	if ids := tok.Tokenize("xyzzy qwerty"); ids != nil {
		t.Fatalf("expected nil for all-OOV input, got %v", ids)
	}
}

func TestInitialVectorCentroid(t *testing.T) {
	tok := New(testStore())
	v, ok := tok.InitialVector("5th element")
	if !ok {
		t.Fatal("expected in-vocabulary")
	}
	// centroid of (0,-1) and (0,-3) = (0,-2)
	if v[0] != 0 || v[1] != -2 {
		t.Fatalf("InitialVector = %v", v)
	}
}

func TestInitialVectorNullForOOV(t *testing.T) {
	tok := New(testStore())
	v, ok := tok.InitialVector("zzzz")
	if ok {
		t.Fatal("expected OOV")
	}
	if !vec.IsZero(v) {
		t.Fatalf("OOV vector must be null, got %v", v)
	}
	if len(v) != 2 {
		t.Fatal("null vector must have store dimensionality")
	}
}

func TestInitialVectorPhrasePreferred(t *testing.T) {
	tok := New(testStore())
	v, _ := tok.InitialVector("bank account")
	if v[0] != 10 || v[1] != 10 {
		t.Fatalf("phrase vector not used: %v", v)
	}
	// The whitespace strawman averages the two word vectors instead.
	w, ok := tok.WhitespaceInitialVector("bank account")
	if !ok || math.Abs(w[0]-0.5) > 1e-12 || math.Abs(w[1]-0.5) > 1e-12 {
		t.Fatalf("whitespace strawman = %v", w)
	}
}

func TestWhitespaceInitialVectorOOV(t *testing.T) {
	tok := New(testStore())
	w, ok := tok.WhitespaceInitialVector("zzz qqq")
	if ok || !vec.IsZero(w) {
		t.Fatal("whitespace OOV should be null vector")
	}
}

func TestCoverage(t *testing.T) {
	tok := New(testStore())
	if c := tok.Coverage("bank account"); c != 1 {
		t.Fatalf("Coverage(full match) = %v", c)
	}
	if c := tok.Coverage("bank xyzzy"); c != 0.5 {
		t.Fatalf("Coverage(half) = %v", c)
	}
	if c := tok.Coverage(""); c != 0 {
		t.Fatalf("Coverage(empty) = %v", c)
	}
	if c := tok.Coverage("qq ww"); c != 0 {
		t.Fatalf("Coverage(OOV) = %v", c)
	}
}

func TestTokenizeCaseAndPunctuation(t *testing.T) {
	tok := New(testStore())
	a := tok.Tokenize("BANK-ACCOUNT")
	b := tok.Tokenize("bank account")
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("case/punct variants disagree: %v vs %v", a, b)
	}
}

func TestSplitPhrase(t *testing.T) {
	if got := SplitPhrase("New_York_City"); !reflect.DeepEqual(got, []string{"new", "york", "city"}) {
		t.Fatalf("SplitPhrase = %v", got)
	}
}
