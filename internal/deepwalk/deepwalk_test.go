package deepwalk

import (
	"strings"
	"testing"

	"github.com/retrodb/retro/internal/extract"
	"github.com/retrodb/retro/internal/graph"
	"github.com/retrodb/retro/internal/reldb"
	"github.com/retrodb/retro/internal/vec"
)

// twoClusterGraph builds a database whose graph has two well-separated
// relational clusters: movies directed by director A with genre G1 vs
// movies by director B with genre G2.
func twoClusterFixture(t *testing.T) (*extract.Extraction, *graph.Graph) {
	t.Helper()
	db := reldb.New()
	db.MustExec(`CREATE TABLE movies (id INT PRIMARY KEY, title TEXT, director TEXT)`)
	rows := []string{
		`(1, 'm1', 'director_a')`, `(2, 'm2', 'director_a')`, `(3, 'm3', 'director_a')`,
		`(4, 'n1', 'director_b')`, `(5, 'n2', 'director_b')`, `(6, 'n3', 'director_b')`,
	}
	db.MustExec(`INSERT INTO movies VALUES ` + strings.Join(rows, ", "))
	ex, err := extract.FromDB(db, extract.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return ex, graph.Build(ex)
}

func TestTrainShapes(t *testing.T) {
	_, g := twoClusterFixture(t)
	res, err := Train(g, Config{Dim: 16, WalksPerNode: 5, WalkLength: 10, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Vectors.Rows != g.NumNodes() || res.Vectors.Cols != 16 {
		t.Fatalf("shape = %dx%d", res.Vectors.Rows, res.Vectors.Cols)
	}
}

func TestTrainClustersRelationalNeighbours(t *testing.T) {
	ex, g := twoClusterFixture(t)
	res, err := Train(g, Config{Dim: 16, WalksPerNode: 20, WalkLength: 10, Epochs: 3, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	m1, _ := ex.Lookup("movies", "title", "m1")
	m2, _ := ex.Lookup("movies", "title", "m2")
	n1, _ := ex.Lookup("movies", "title", "n1")
	same := vec.Cosine(res.TextVector(m1), res.TextVector(m2))
	diff := vec.Cosine(res.TextVector(m1), res.TextVector(n1))
	if same <= diff {
		t.Fatalf("relational clustering failed: same=%.3f diff=%.3f", same, diff)
	}
}

func TestTrainDeterministic(t *testing.T) {
	_, g := twoClusterFixture(t)
	a, err := Train(g, Config{Dim: 8, WalksPerNode: 3, WalkLength: 8, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(g, Config{Dim: 8, WalksPerNode: 3, WalkLength: 8, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Vectors.Equal(b.Vectors, 0) {
		t.Fatal("DeepWalk not deterministic under fixed seed")
	}
}

func TestTrainEmptyGraph(t *testing.T) {
	if _, err := Train(&graph.Graph{}, Config{}); err == nil {
		t.Fatal("empty graph accepted")
	}
}

func TestToStoreKeys(t *testing.T) {
	ex, g := twoClusterFixture(t)
	res, err := Train(g, Config{Dim: 8, WalksPerNode: 2, WalkLength: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	store := res.ToStore(ex)
	if store.Len() != len(ex.Values) {
		t.Fatalf("store len = %d want %d", store.Len(), len(ex.Values))
	}
	id, _ := ex.Lookup("movies", "director", "director_a")
	v, ok := store.VectorOf(ValueKey(ex, id))
	if !ok {
		t.Fatal("key lookup failed")
	}
	for j := range v {
		if v[j] != res.TextVector(id)[j] {
			t.Fatal("stored vector mismatch")
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.WalksPerNode != 10 || c.WalkLength != 40 || c.Window != 5 || c.Dim != 128 {
		t.Fatalf("defaults = %+v", c)
	}
}
