// Package deepwalk implements DeepWalk (Perozzi et al. 2014): node
// embeddings learned by running Skip-Gram over random-walk sentences on a
// graph. The paper (§4.6) uses DeepWalk both as a baseline and as a
// combination partner for the retrofitted embeddings.
package deepwalk

import (
	"fmt"
	"math/rand"

	"github.com/retrodb/retro/internal/embed"
	"github.com/retrodb/retro/internal/extract"
	"github.com/retrodb/retro/internal/graph"
	"github.com/retrodb/retro/internal/vec"
	"github.com/retrodb/retro/internal/word2vec"
)

// Config holds the DeepWalk hyperparameters. The paper trains with
// "standard parameters" and 300 dimensions; the DeepWalk defaults below
// follow the original paper's, scaled for embedded use (walks and length
// can be restored to 80/40 for full-size runs).
type Config struct {
	WalksPerNode int // default 10 (original paper: 80)
	WalkLength   int // default 40
	Window       int // default 5 (original paper: 10)
	Dim          int // default 128; the RETRO evaluation uses 300
	Negative     int // default 5
	Epochs       int // default 1
	LearningRate float64
	Seed         int64
}

func (c Config) withDefaults() Config {
	if c.WalksPerNode <= 0 {
		c.WalksPerNode = 10
	}
	if c.WalkLength <= 0 {
		c.WalkLength = 40
	}
	if c.Window <= 0 {
		c.Window = 5
	}
	if c.Dim <= 0 {
		c.Dim = 128
	}
	if c.Negative <= 0 {
		c.Negative = 5
	}
	if c.Epochs <= 0 {
		c.Epochs = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Result carries the trained node vectors.
type Result struct {
	// Vectors has one row per graph node (text values first, then blank
	// category nodes), matching graph node ids.
	Vectors *vec.Matrix
	Config  Config
}

// Train runs DeepWalk on the graph.
func Train(g *graph.Graph, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if g.NumNodes() == 0 {
		return nil, fmt.Errorf("deepwalk: empty graph")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	corpus := g.WalkCorpus(rng, cfg.WalksPerNode, cfg.WalkLength)
	model, err := word2vec.Train(corpus, g.NumNodes(), word2vec.Config{
		Dim:          cfg.Dim,
		Window:       cfg.Window,
		Negative:     cfg.Negative,
		Epochs:       cfg.Epochs,
		LearningRate: cfg.LearningRate,
		Seed:         cfg.Seed + 1,
	})
	if err != nil {
		return nil, fmt.Errorf("deepwalk: %w", err)
	}
	return &Result{Vectors: model.In, Config: cfg}, nil
}

// TextVector returns the embedding of text-value node id.
func (r *Result) TextVector(id int) []float64 { return r.Vectors.Row(id) }

// ToStore converts the text-value node embeddings into an embed.Store
// keyed by the extraction's value key ("category-id:text"), the same
// keying the retrofitted store uses, so the two can be combined per §4.6.
func (r *Result) ToStore(ex *extract.Extraction) *embed.Store {
	s := embed.NewStore(r.Vectors.Cols)
	for _, v := range ex.Values {
		s.Add(ValueKey(ex, v.ID), r.Vectors.Row(v.ID))
	}
	return s
}

// ValueKey is the canonical store key for a text value: unique per
// (category, text) per §3.3.
func ValueKey(ex *extract.Extraction, id int) string {
	v := ex.Values[id]
	return ex.Categories[v.Category].Name() + "\x00" + v.Text
}
