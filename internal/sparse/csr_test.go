package sparse

import (
	"math"
	"math/rand"
	"testing"

	"github.com/retrodb/retro/internal/vec"
)

func TestNewAndAt(t *testing.T) {
	m := New(3, 4, []Triplet{
		{0, 1, 2},
		{2, 3, 5},
		{0, 0, 1},
	})
	if m.NNZ() != 3 {
		t.Fatalf("NNZ = %d, want 3", m.NNZ())
	}
	if m.At(0, 0) != 1 || m.At(0, 1) != 2 || m.At(2, 3) != 5 {
		t.Fatal("At returned wrong values")
	}
	if m.At(1, 1) != 0 {
		t.Fatal("missing entry should be 0")
	}
}

func TestNewMergesDuplicates(t *testing.T) {
	m := New(2, 2, []Triplet{
		{0, 0, 1},
		{0, 0, 2},
		{1, 1, 3},
		{0, 0, 0.5},
	})
	if m.NNZ() != 2 {
		t.Fatalf("NNZ = %d, want 2 after merging", m.NNZ())
	}
	if m.At(0, 0) != 3.5 {
		t.Fatalf("merged value = %v, want 3.5", m.At(0, 0))
	}
}

func TestNewEmpty(t *testing.T) {
	m := New(0, 0, nil)
	if m.NNZ() != 0 {
		t.Fatal("empty matrix should have no entries")
	}
	m2 := New(5, 5, nil)
	if m2.RowNNZ(3) != 0 {
		t.Fatal("empty rows should report 0 nnz")
	}
}

func TestNewOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2, 2, []Triplet{{2, 0, 1}})
}

func TestRowIterationSorted(t *testing.T) {
	m := New(1, 5, []Triplet{{0, 4, 4}, {0, 1, 1}, {0, 3, 3}})
	var cols []int
	m.Row(0, func(c int, v float64) {
		cols = append(cols, c)
		if float64(c) != v {
			t.Fatalf("value mismatch at col %d: %v", c, v)
		}
	})
	if len(cols) != 3 || cols[0] != 1 || cols[1] != 3 || cols[2] != 4 {
		t.Fatalf("cols = %v, want sorted [1 3 4]", cols)
	}
}

func TestRowSumsColSums(t *testing.T) {
	m := New(2, 3, []Triplet{{0, 0, 1}, {0, 2, 2}, {1, 2, 3}})
	rs := m.RowSums()
	if rs[0] != 3 || rs[1] != 3 {
		t.Fatalf("RowSums = %v", rs)
	}
	cs := m.ColSums()
	if cs[0] != 1 || cs[1] != 0 || cs[2] != 5 {
		t.Fatalf("ColSums = %v", cs)
	}
}

func TestMulVec(t *testing.T) {
	m := New(2, 2, []Triplet{{0, 0, 2}, {1, 0, 1}, {1, 1, 3}})
	dst := make([]float64, 2)
	m.MulVec(dst, []float64{1, 2})
	if dst[0] != 2 || dst[1] != 7 {
		t.Fatalf("MulVec = %v", dst)
	}
}

func TestMulMatrixAddMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		rows, cols, d := 1+rng.Intn(6), 1+rng.Intn(6), 1+rng.Intn(4)
		var trips []Triplet
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				if rng.Float64() < 0.4 {
					trips = append(trips, Triplet{i, j, rng.NormFloat64()})
				}
			}
		}
		m := New(rows, cols, trips)
		dense := vec.NewMatrix(cols, d)
		dense.Randomize(rng, 1)

		got := vec.NewMatrix(rows, d)
		m.MulMatrixAdd(got, 1.5, dense)

		want := vec.NewMatrix(rows, d)
		m.ToDense().Mul(want, dense)
		for i := range want.Data {
			want.Data[i] *= 1.5
		}
		if !got.Equal(want, 1e-9) {
			t.Fatalf("trial %d: sparse MulMatrixAdd != dense reference", trial)
		}
	}
}

func TestMulTMatrixAddMatchesTransposeDense(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		rows, cols, d := 1+rng.Intn(6), 1+rng.Intn(6), 1+rng.Intn(4)
		var trips []Triplet
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				if rng.Float64() < 0.4 {
					trips = append(trips, Triplet{i, j, rng.NormFloat64()})
				}
			}
		}
		m := New(rows, cols, trips)
		dense := vec.NewMatrix(rows, d)
		dense.Randomize(rng, 1)

		got := vec.NewMatrix(cols, d)
		m.MulTMatrixAdd(got, 1, dense)

		want := vec.NewMatrix(cols, d)
		m.Transpose().MulMatrixAdd(want, 1, dense)
		if !got.Equal(want, 1e-9) {
			t.Fatalf("trial %d: MulTMatrixAdd != Transpose().MulMatrixAdd", trial)
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var trips []Triplet
	for i := 0; i < 7; i++ {
		trips = append(trips, Triplet{rng.Intn(5), rng.Intn(9), rng.NormFloat64()})
	}
	m := New(5, 9, trips)
	tt := m.Transpose().Transpose()
	if tt.NumRows != m.NumRows || tt.NumCols != m.NumCols || tt.NNZ() != m.NNZ() {
		t.Fatal("double transpose changed shape or nnz")
	}
	for i := 0; i < m.NumRows; i++ {
		for j := 0; j < m.NumCols; j++ {
			if math.Abs(m.At(i, j)-tt.At(i, j)) > 1e-15 {
				t.Fatalf("(%d,%d) differs after double transpose", i, j)
			}
		}
	}
}

func TestScale(t *testing.T) {
	m := New(1, 2, []Triplet{{0, 0, 2}, {0, 1, -4}})
	s := m.Scale(0.5)
	if s.At(0, 0) != 1 || s.At(0, 1) != -2 {
		t.Fatalf("Scale values wrong: %v %v", s.At(0, 0), s.At(0, 1))
	}
	if m.At(0, 0) != 2 {
		t.Fatal("Scale mutated the receiver")
	}
}

func TestToDense(t *testing.T) {
	m := New(2, 2, []Triplet{{0, 1, 3}, {1, 0, -1}})
	d := m.ToDense()
	want := vec.NewMatrixFrom([][]float64{{0, 3}, {-1, 0}})
	if !d.Equal(want, 0) {
		t.Fatalf("ToDense = %v", d)
	}
}

func TestRowNNZ(t *testing.T) {
	m := New(3, 3, []Triplet{{1, 0, 1}, {1, 2, 1}})
	if m.RowNNZ(0) != 0 || m.RowNNZ(1) != 2 || m.RowNNZ(2) != 0 {
		t.Fatal("RowNNZ wrong")
	}
}

// Property: RowSums(m) == m * ones and ColSums(m) == m^T * ones.
func TestPropertySumsViaMulVec(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 25; trial++ {
		rows, cols := 1+rng.Intn(8), 1+rng.Intn(8)
		var trips []Triplet
		for k := 0; k < rng.Intn(20); k++ {
			trips = append(trips, Triplet{rng.Intn(rows), rng.Intn(cols), rng.NormFloat64()})
		}
		m := New(rows, cols, trips)
		ones := make([]float64, cols)
		vec.Fill(ones, 1)
		viaMul := make([]float64, rows)
		m.MulVec(viaMul, ones)
		rs := m.RowSums()
		for i := range rs {
			if math.Abs(rs[i]-viaMul[i]) > 1e-12 {
				t.Fatalf("trial %d: RowSums disagree at %d", trial, i)
			}
		}
		onesR := make([]float64, rows)
		vec.Fill(onesR, 1)
		viaMulT := make([]float64, cols)
		m.Transpose().MulVec(viaMulT, onesR)
		cs := m.ColSums()
		for j := range cs {
			if math.Abs(cs[j]-viaMulT[j]) > 1e-12 {
				t.Fatalf("trial %d: ColSums disagree at %d", trial, j)
			}
		}
	}
}
