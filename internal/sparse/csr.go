// Package sparse implements compressed sparse row (CSR) matrices.
//
// The retrofitting iterations of the paper (eq. 10 and 11) multiply sparse
// relation-weight matrices (γ^r_ij), (δ^r_ij) against the dense embedding
// matrix W^k. CSR keeps those products proportional to the number of
// relation edges rather than n².
package sparse

import (
	"fmt"
	"sort"

	"github.com/retrodb/retro/internal/vec"
)

// Triplet is one (row, col, value) entry used while assembling a matrix.
type Triplet struct {
	Row, Col int
	Val      float64
}

// CSR is an immutable compressed sparse row matrix. For row i the column
// indices are ColIdx[RowPtr[i]:RowPtr[i+1]] with matching values in Val.
// Column indices are strictly increasing within a row.
type CSR struct {
	NumRows, NumCols int
	RowPtr           []int
	ColIdx           []int
	Val              []float64
}

// New assembles a CSR matrix from triplets. Duplicate (row, col) entries
// are summed, matching the usual sparse-assembly convention.
func New(rows, cols int, entries []Triplet) *CSR {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("sparse: negative dims %dx%d", rows, cols))
	}
	for _, t := range entries {
		if t.Row < 0 || t.Row >= rows || t.Col < 0 || t.Col >= cols {
			panic(fmt.Sprintf("sparse: entry (%d,%d) outside %dx%d", t.Row, t.Col, rows, cols))
		}
	}
	sorted := make([]Triplet, len(entries))
	copy(sorted, entries)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Row != sorted[j].Row {
			return sorted[i].Row < sorted[j].Row
		}
		return sorted[i].Col < sorted[j].Col
	})

	m := &CSR{
		NumRows: rows,
		NumCols: cols,
		RowPtr:  make([]int, rows+1),
	}
	// After sorting, duplicates are adjacent: merge them while copying.
	lastRow, lastCol := -1, -1
	for _, t := range sorted {
		if t.Row == lastRow && t.Col == lastCol {
			m.Val[len(m.Val)-1] += t.Val
			continue
		}
		m.ColIdx = append(m.ColIdx, t.Col)
		m.Val = append(m.Val, t.Val)
		m.RowPtr[t.Row+1]++
		lastRow, lastCol = t.Row, t.Col
	}
	for i := 0; i < rows; i++ {
		m.RowPtr[i+1] += m.RowPtr[i]
	}
	return m
}

// NNZ returns the number of stored entries.
func (m *CSR) NNZ() int { return len(m.Val) }

// Row iterates over the stored entries of row i, calling fn(col, val).
func (m *CSR) Row(i int, fn func(col int, val float64)) {
	for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
		fn(m.ColIdx[k], m.Val[k])
	}
}

// RowNNZ returns the number of stored entries in row i.
func (m *CSR) RowNNZ(i int) int { return m.RowPtr[i+1] - m.RowPtr[i] }

// At returns the value at (i, j), or 0 if not stored. O(log nnz(row)).
func (m *CSR) At(i, j int) float64 {
	lo, hi := m.RowPtr[i], m.RowPtr[i+1]
	k := lo + sort.SearchInts(m.ColIdx[lo:hi], j)
	if k < hi && m.ColIdx[k] == j {
		return m.Val[k]
	}
	return 0
}

// RowSums returns the vector of per-row sums of stored values. In the
// retrofitting solvers this yields the Σ_j γ^r_ij terms of the diagonal
// normaliser D in eq. (10).
func (m *CSR) RowSums() []float64 {
	out := make([]float64, m.NumRows)
	for i := 0; i < m.NumRows; i++ {
		var s float64
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			s += m.Val[k]
		}
		out[i] = s
	}
	return out
}

// ColSums returns the vector of per-column sums of stored values (the row
// sums of the transpose).
func (m *CSR) ColSums() []float64 {
	out := make([]float64, m.NumCols)
	for k, c := range m.ColIdx {
		out[c] += m.Val[k]
	}
	return out
}

// MulMatrixAdd computes dst += alpha * (m * dense) where dense is
// NumCols x D and dst is NumRows x D. Cost O(nnz * D).
func (m *CSR) MulMatrixAdd(dst *vec.Matrix, alpha float64, dense *vec.Matrix) {
	if dense.Rows != m.NumCols {
		panic(fmt.Sprintf("sparse: MulMatrixAdd inner dim %d != %d", dense.Rows, m.NumCols))
	}
	if dst.Rows != m.NumRows || dst.Cols != dense.Cols {
		panic("sparse: MulMatrixAdd dst shape mismatch")
	}
	for i := 0; i < m.NumRows; i++ {
		di := dst.Row(i)
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			vec.Axpy(di, alpha*m.Val[k], dense.Row(m.ColIdx[k]))
		}
	}
}

// MulTMatrixAdd computes dst += alpha * (m^T * dense) where dense is
// NumRows x D and dst is NumCols x D, without materialising the transpose.
func (m *CSR) MulTMatrixAdd(dst *vec.Matrix, alpha float64, dense *vec.Matrix) {
	if dense.Rows != m.NumRows {
		panic(fmt.Sprintf("sparse: MulTMatrixAdd inner dim %d != %d", dense.Rows, m.NumRows))
	}
	if dst.Rows != m.NumCols || dst.Cols != dense.Cols {
		panic("sparse: MulTMatrixAdd dst shape mismatch")
	}
	for i := 0; i < m.NumRows; i++ {
		src := dense.Row(i)
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			vec.Axpy(dst.Row(m.ColIdx[k]), alpha*m.Val[k], src)
		}
	}
}

// MulVec computes dst = m * x. Cost O(nnz).
func (m *CSR) MulVec(dst, x []float64) {
	if len(x) != m.NumCols || len(dst) != m.NumRows {
		panic("sparse: MulVec shape mismatch")
	}
	for i := 0; i < m.NumRows; i++ {
		var s float64
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			s += m.Val[k] * x[m.ColIdx[k]]
		}
		dst[i] = s
	}
}

// Transpose returns a newly assembled m^T.
func (m *CSR) Transpose() *CSR {
	// Counting sort by column gives the transpose in O(nnz + rows + cols).
	counts := make([]int, m.NumCols+1)
	for _, c := range m.ColIdx {
		counts[c+1]++
	}
	for i := 0; i < m.NumCols; i++ {
		counts[i+1] += counts[i]
	}
	t := &CSR{
		NumRows: m.NumCols,
		NumCols: m.NumRows,
		RowPtr:  counts,
		ColIdx:  make([]int, m.NNZ()),
		Val:     make([]float64, m.NNZ()),
	}
	next := make([]int, m.NumCols)
	copy(next, t.RowPtr[:m.NumCols])
	for i := 0; i < m.NumRows; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			c := m.ColIdx[k]
			pos := next[c]
			next[c]++
			t.ColIdx[pos] = i
			t.Val[pos] = m.Val[k]
		}
	}
	return t
}

// ToDense materialises the matrix; intended for tests and tiny examples.
func (m *CSR) ToDense() *vec.Matrix {
	out := vec.NewMatrix(m.NumRows, m.NumCols)
	for i := 0; i < m.NumRows; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			out.Set(i, m.ColIdx[k], m.Val[k])
		}
	}
	return out
}

// Scale returns a copy of m with every stored value multiplied by alpha.
func (m *CSR) Scale(alpha float64) *CSR {
	out := &CSR{
		NumRows: m.NumRows,
		NumCols: m.NumCols,
		RowPtr:  append([]int(nil), m.RowPtr...),
		ColIdx:  append([]int(nil), m.ColIdx...),
		Val:     make([]float64, len(m.Val)),
	}
	for i, v := range m.Val {
		out.Val[i] = alpha * v
	}
	return out
}
