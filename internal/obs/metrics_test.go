package obs

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("retro_tests_total", "Test counter.", `kind="unit"`)
	c.Add(41)
	c.Inc()
	g := r.Gauge("retro_tests_gauge", "Test gauge.", "")
	g.Set(2.5)
	g.Add(-1)
	r.GaugeFunc("retro_tests_func", "Func gauge.", "", func() float64 { return 7 })

	var buf bytes.Buffer
	if _, err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP retro_tests_total Test counter.",
		"# TYPE retro_tests_total counter",
		`retro_tests_total{kind="unit"} 42`,
		"# TYPE retro_tests_gauge gauge",
		"retro_tests_gauge 1.5",
		"retro_tests_func 7",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	if err := ValidateExposition(strings.NewReader(out)); err != nil {
		t.Fatalf("self-validation failed: %v\n%s", err, out)
	}
}

func TestHistogramBucketsAndExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("retro_test_seconds", "Test histogram.", `stage="walk"`, []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-56.05) > 1e-9 {
		t.Fatalf("sum = %g, want 56.05", h.Sum())
	}

	var buf bytes.Buffer
	if _, err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`retro_test_seconds_bucket{stage="walk",le="0.1"} 1`,
		`retro_test_seconds_bucket{stage="walk",le="1"} 3`,
		`retro_test_seconds_bucket{stage="walk",le="10"} 4`,
		`retro_test_seconds_bucket{stage="walk",le="+Inf"} 5`,
		`retro_test_seconds_count{stage="walk"} 5`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	if err := ValidateExposition(strings.NewReader(out)); err != nil {
		t.Fatalf("self-validation failed: %v\n%s", err, out)
	}
}

func TestHistogramObserveConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("retro_conc_seconds", "h", "", DurationBuckets())
	const workers, per = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(seed*i%100) * 1e-4)
			}
		}(w + 1)
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("count = %d, want %d", h.Count(), workers*per)
	}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
	}
	if cum != workers*per {
		t.Fatalf("bucket total = %d, want %d", cum, workers*per)
	}
}

func TestHistogramObserveZeroAlloc(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("retro_alloc_seconds", "h", "", DurationBuckets())
	c := r.Counter("retro_alloc_total", "c", "")
	allocs := testing.AllocsPerRun(1000, func() {
		h.Observe(0.0012)
		h.ObserveDuration(42 * time.Microsecond)
		c.Inc()
	})
	if allocs != 0 {
		t.Fatalf("Observe allocated %.2f times per call, want 0", allocs)
	}
}

func TestRegistryPanicsOnConflicts(t *testing.T) {
	r := NewRegistry()
	r.Counter("retro_x_total", "x", `a="1"`)
	mustPanic(t, "type conflict", func() { r.Gauge("retro_x_total", "x", `b="2"`) })
	mustPanic(t, "duplicate series", func() { r.Counter("retro_x_total", "x", `a="1"`) })
	mustPanic(t, "unsorted buckets", func() { r.Histogram("retro_y", "y", "", []float64{2, 1}) })
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", what)
		}
	}()
	fn()
}

func TestRuntimeAndBuildInfoValidate(t *testing.T) {
	r := NewRegistry()
	RegisterRuntime(r)
	RegisterBuildInfo(r, "test")
	var buf bytes.Buffer
	if _, err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `retro_build_info{version="test"`) {
		t.Fatalf("missing build info:\n%s", out)
	}
	if !strings.Contains(out, "retro_goroutines") {
		t.Fatalf("missing goroutine gauge:\n%s", out)
	}
	if err := ValidateExposition(strings.NewReader(out)); err != nil {
		t.Fatalf("runtime exposition invalid: %v\n%s", err, out)
	}
}

func TestValidateExpositionCatchesBreakage(t *testing.T) {
	cases := map[string]string{
		"no TYPE": "retro_a 1\n",
		"bucket non-monotonic": "# HELP retro_h h\n# TYPE retro_h histogram\n" +
			`retro_h_bucket{le="1"} 5` + "\n" +
			`retro_h_bucket{le="2"} 3` + "\n" +
			`retro_h_bucket{le="+Inf"} 5` + "\n" +
			"retro_h_sum 1\nretro_h_count 5\n",
		"inf != count": "# HELP retro_h h\n# TYPE retro_h histogram\n" +
			`retro_h_bucket{le="+Inf"} 4` + "\n" +
			"retro_h_sum 1\nretro_h_count 5\n",
		"missing sum": "# HELP retro_h h\n# TYPE retro_h histogram\n" +
			`retro_h_bucket{le="+Inf"} 5` + "\n" +
			"retro_h_count 5\n",
		"missing inf bucket": "# HELP retro_h h\n# TYPE retro_h histogram\n" +
			`retro_h_bucket{le="1"} 5` + "\n" +
			"retro_h_sum 1\nretro_h_count 5\n",
		"duplicate series": "# HELP retro_a a\n# TYPE retro_a gauge\nretro_a 1\nretro_a 2\n",
		"negative counter": "# HELP retro_a a\n# TYPE retro_a counter\nretro_a -1\n",
		"bad value":        "# HELP retro_a a\n# TYPE retro_a gauge\nretro_a xyzzy\n",
		"bad name":         "# HELP retro_a a\n# TYPE retro_a gauge\n9retro_a 1\n",
	}
	for name, payload := range cases {
		if err := ValidateExposition(strings.NewReader(payload)); err == nil {
			t.Errorf("%s: validation passed on broken payload:\n%s", name, payload)
		}
	}
}
