package obs

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"
)

func TestSlowLogThresholdAndRing(t *testing.T) {
	l := NewSlowLog(3, 50*time.Millisecond)
	if l.Slow(49 * time.Millisecond) {
		t.Fatal("49ms flagged slow at a 50ms threshold")
	}
	if !l.Slow(50 * time.Millisecond) {
		t.Fatal("50ms not flagged slow at a 50ms threshold")
	}
	for i := 0; i < 5; i++ {
		l.Record(SlowEntry{Endpoint: "/v1/neighbors", K: i, TotalNs: int64(i)})
	}
	got := l.Entries()
	if len(got) != 3 {
		t.Fatalf("ring kept %d entries, want 3", len(got))
	}
	// Newest first: K = 4, 3, 2.
	for i, wantK := range []int{4, 3, 2} {
		if got[i].K != wantK {
			t.Fatalf("entry %d: K=%d, want %d", i, got[i].K, wantK)
		}
	}
	if l.Recorded() != 5 {
		t.Fatalf("recorded = %d, want 5", l.Recorded())
	}
}

func TestSlowLogHandler(t *testing.T) {
	l := NewSlowLog(8, 10*time.Millisecond)
	l.Record(SlowEntry{Endpoint: "/v1/neighbors", Table: "movies", TotalNs: 12e6})

	rec := httptest.NewRecorder()
	l.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/slowlog", nil))
	var body struct {
		ThresholdMs float64     `json:"threshold_ms"`
		Capacity    int         `json:"capacity"`
		Recorded    int64       `json:"recorded"`
		Entries     []SlowEntry `json:"entries"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("decode: %v\n%s", err, rec.Body.String())
	}
	if body.ThresholdMs != 10 || body.Capacity != 8 || body.Recorded != 1 || len(body.Entries) != 1 {
		t.Fatalf("unexpected payload: %+v", body)
	}
	if body.Entries[0].Table != "movies" {
		t.Fatalf("entry = %+v", body.Entries[0])
	}

	// Retune the threshold through the handler.
	rec = httptest.NewRecorder()
	l.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/slowlog?threshold=250ms", nil))
	if l.Threshold() != 250*time.Millisecond {
		t.Fatalf("threshold = %v after retune, want 250ms", l.Threshold())
	}
	rec = httptest.NewRecorder()
	l.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/slowlog?threshold=bogus", nil))
	if rec.Code != 400 {
		t.Fatalf("bogus threshold: code %d, want 400", rec.Code)
	}
}

func TestSlowLogRecordZeroAlloc(t *testing.T) {
	l := NewSlowLog(64, time.Millisecond)
	e := SlowEntry{Endpoint: "/v1/neighbors", Table: "movies", Column: "title", Text: "alien", K: 10, TotalNs: 2e6}
	allocs := testing.AllocsPerRun(500, func() { l.Record(e) })
	if allocs != 0 {
		t.Fatalf("Record allocated %.2f times per call, want 0", allocs)
	}
}
