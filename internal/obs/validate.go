package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// ValidateExposition parses a Prometheus text-format payload and checks
// the structural invariants a scraper relies on:
//
//   - every sample line parses (metric name, optional label body, float
//     value) and its metric name is legal;
//   - every sample belongs to a family that was announced with # HELP
//     and # TYPE before its first sample;
//   - no series (name + label set) appears twice;
//   - histograms are complete and consistent per label set: bucket
//     counts are monotonically non-decreasing in le, the +Inf bucket is
//     present and equals _count, and _sum exists;
//   - counter samples are non-negative.
//
// It is used by the exposition tests and by cmd/promcheck (which the CI
// scrape-smoke job runs against a live /metrics endpoint).
func ValidateExposition(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1024*1024), 1024*1024)

	type familyMeta struct {
		help, typ bool
		typName   string
	}
	families := map[string]*familyMeta{}
	seen := map[string]bool{} // dedup over "name{labels}"

	// Histogram bookkeeping, keyed by family + label set (minus le).
	type histKey struct{ name, labels string }
	buckets := map[histKey]map[float64]float64{}
	sums := map[histKey]bool{}
	counts := map[histKey]float64{}
	countSeen := map[histKey]bool{}

	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				return fmt.Errorf("line %d: malformed comment %q", lineNo, line)
			}
			name := fields[2]
			if !validMetricName(name) {
				return fmt.Errorf("line %d: invalid metric name %q", lineNo, name)
			}
			f := families[name]
			if f == nil {
				f = &familyMeta{}
				families[name] = f
			}
			switch fields[1] {
			case "HELP":
				if f.help {
					return fmt.Errorf("line %d: duplicate HELP for %s", lineNo, name)
				}
				f.help = true
			case "TYPE":
				if f.typ {
					return fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, name)
				}
				if len(fields) < 4 {
					return fmt.Errorf("line %d: TYPE without a type", lineNo)
				}
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fmt.Errorf("line %d: unknown type %q", lineNo, fields[3])
				}
				f.typ = true
				f.typName = fields[3]
			}
			continue
		}

		name, labels, value, err := parseSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %v", lineNo, err)
		}
		famName := name
		f := families[name]
		if f == nil {
			// Histogram/summary child series report under suffixed names.
			for _, suffix := range []string{"_bucket", "_sum", "_count"} {
				base := strings.TrimSuffix(name, suffix)
				if base != name && families[base] != nil {
					famName, f = base, families[base]
					break
				}
			}
		}
		if f == nil {
			return fmt.Errorf("line %d: sample %s has no preceding # TYPE", lineNo, name)
		}
		if !f.help || !f.typ {
			return fmt.Errorf("line %d: family %s missing HELP or TYPE before samples", lineNo, famName)
		}
		serKey := name + "{" + labels + "}"
		if seen[serKey] {
			return fmt.Errorf("line %d: duplicate series %s", lineNo, serKey)
		}
		seen[serKey] = true

		if f.typName == "counter" && value < 0 {
			return fmt.Errorf("line %d: counter %s is negative (%g)", lineNo, name, value)
		}
		if f.typName == "histogram" {
			base, rest := splitLe(labels)
			k := histKey{famName, base}
			switch {
			case strings.HasSuffix(name, "_bucket"):
				if rest == "" {
					return fmt.Errorf("line %d: histogram bucket without le label", lineNo)
				}
				le, err := parseLe(rest)
				if err != nil {
					return fmt.Errorf("line %d: %v", lineNo, err)
				}
				if buckets[k] == nil {
					buckets[k] = map[float64]float64{}
				}
				if _, dup := buckets[k][le]; dup {
					return fmt.Errorf("line %d: duplicate bucket le=%g for %s", lineNo, le, famName)
				}
				buckets[k][le] = value
			case strings.HasSuffix(name, "_sum"):
				sums[k] = true
			case strings.HasSuffix(name, "_count"):
				counts[k] = value
				countSeen[k] = true
			default:
				return fmt.Errorf("line %d: unexpected histogram sample %s", lineNo, name)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}

	for k, bs := range buckets {
		les := make([]float64, 0, len(bs))
		hasInf := false
		for le := range bs {
			if math.IsInf(le, 1) {
				hasInf = true
			}
			les = append(les, le)
		}
		if !hasInf {
			return fmt.Errorf("histogram %s{%s}: no +Inf bucket", k.name, k.labels)
		}
		sort.Float64s(les)
		prev := -1.0
		for _, le := range les {
			if bs[le] < prev {
				return fmt.Errorf("histogram %s{%s}: bucket le=%g count %g below preceding %g",
					k.name, k.labels, le, bs[le], prev)
			}
			prev = bs[le]
		}
		if !countSeen[k] {
			return fmt.Errorf("histogram %s{%s}: missing _count", k.name, k.labels)
		}
		if !sums[k] {
			return fmt.Errorf("histogram %s{%s}: missing _sum", k.name, k.labels)
		}
		if inf := bs[math.Inf(1)]; inf != counts[k] {
			return fmt.Errorf("histogram %s{%s}: +Inf bucket %g != _count %g", k.name, k.labels, inf, counts[k])
		}
	}
	for k := range countSeen {
		if buckets[k] == nil {
			return fmt.Errorf("histogram %s{%s}: _count without buckets", k.name, k.labels)
		}
	}
	return nil
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// parseSample splits `name{labels} value` (labels optional). The label
// body is returned raw; it is validated just enough to catch unbalanced
// quoting.
func parseSample(line string) (name, labels string, value float64, err error) {
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		j := strings.LastIndexByte(rest, '}')
		if j < i {
			return "", "", 0, fmt.Errorf("unbalanced braces in %q", line)
		}
		labels = rest[i+1 : j]
		rest = strings.TrimSpace(rest[j+1:])
		if err := checkLabels(labels); err != nil {
			return "", "", 0, err
		}
	} else {
		fields := strings.Fields(rest)
		if len(fields) < 2 {
			return "", "", 0, fmt.Errorf("malformed sample %q", line)
		}
		name = fields[0]
		rest = strings.Join(fields[1:], " ")
	}
	if !validMetricName(name) {
		return "", "", 0, fmt.Errorf("invalid metric name %q", name)
	}
	// A timestamp may trail the value; we don't emit them but accept them.
	valueField := strings.Fields(rest)
	if len(valueField) == 0 {
		return "", "", 0, fmt.Errorf("sample %q has no value", line)
	}
	value, err = parsePromFloat(valueField[0])
	if err != nil {
		return "", "", 0, fmt.Errorf("bad value %q: %v", valueField[0], err)
	}
	return name, labels, value, nil
}

func checkLabels(labels string) error {
	if labels == "" {
		return nil
	}
	for _, pair := range splitLabelPairs(labels) {
		eq := strings.IndexByte(pair, '=')
		if eq <= 0 {
			return fmt.Errorf("malformed label pair %q", pair)
		}
		v := pair[eq+1:]
		if len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
			return fmt.Errorf("unquoted label value in %q", pair)
		}
	}
	return nil
}

// splitLabelPairs splits a label body on commas outside quotes.
func splitLabelPairs(labels string) []string {
	var out []string
	depth := false // inside quotes
	start := 0
	for i := 0; i < len(labels); i++ {
		switch labels[i] {
		case '\\':
			i++ // skip escaped char
		case '"':
			depth = !depth
		case ',':
			if !depth {
				out = append(out, strings.TrimSpace(labels[start:i]))
				start = i + 1
			}
		}
	}
	if start < len(labels) {
		out = append(out, strings.TrimSpace(labels[start:]))
	}
	return out
}

// splitLe separates the le pair from the rest of a bucket's label body.
func splitLe(labels string) (base, le string) {
	var kept []string
	for _, pair := range splitLabelPairs(labels) {
		if strings.HasPrefix(pair, "le=") {
			le = pair
			continue
		}
		kept = append(kept, pair)
	}
	return strings.Join(kept, ","), le
}

func parseLe(pair string) (float64, error) {
	v := strings.TrimPrefix(pair, "le=")
	v = strings.Trim(v, `"`)
	return parsePromFloat(v)
}

func parsePromFloat(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}
