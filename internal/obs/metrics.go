// Package obs is the telemetry layer of the serving system: a
// dependency-free metrics registry with Prometheus text exposition, a
// ring-buffer slow-query log, and process/runtime collectors.
//
// The package is built for the engine's read path, which is lock-free
// and zero-allocation and must stay that way when instrumented:
//
//   - Counters and gauges are single atomics.
//   - Histograms are pre-registered fixed-bucket atomic arrays; Observe
//     is a bounded linear scan plus two atomic adds and never allocates
//     or locks.
//   - Registration happens once, at startup, under a mutex; after that
//     the instrument handles are plain pointers the hot path uses
//     without any coordination.
//
// Exposition (Registry.WritePrometheus) takes the registration mutex —
// scrapes are rare and never on the query path. Series are rendered in
// registration order, so the output is deterministic.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Metric types in the Prometheus exposition format.
const (
	TypeCounter   = "counter"
	TypeGauge     = "gauge"
	TypeHistogram = "histogram"
)

// Counter is a monotonically increasing value.
type Counter struct{ v atomic.Int64 }

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative for the exposition to stay a valid
// counter; this is not checked on the hot path).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down, stored as float64 bits.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta with a CAS loop (lock-free).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket histogram: counts[i] holds observations
// with v <= bounds[i]; the final slot is the +Inf overflow bucket. All
// state is atomic — Observe performs no locking and no allocation.
type Histogram struct {
	bounds  []float64 // ascending upper bounds, +Inf excluded
	counts  []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 sum, CAS-updated
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records d in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// DurationBuckets covers the serving latency range: 1µs to 10s,
// roughly logarithmic. Stage latencies (cache probe ~100ns, graph walk
// tens of µs, encode µs) and request latencies all land inside it.
func DurationBuckets() []float64 {
	return []float64{
		1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5,
		1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3,
		1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
	}
}

// CountBuckets covers discrete magnitudes (hops, nodes visited, batch
// rows): powers of four from 1 to ~1M.
func CountBuckets() []float64 {
	return []float64{1, 4, 16, 64, 256, 1024, 4096, 16384, 65536, 262144, 1048576}
}

// series is one sample stream within a family.
type series interface {
	write(w *countingWriter, name, labels string)
}

type counterSeries struct{ c *Counter }
type gaugeSeries struct{ g *Gauge }
type funcSeries struct{ fn func() float64 }
type histogramSeries struct{ h *Histogram }

// family is one metric name with its help/type header and every
// labelled series registered under it.
type family struct {
	name, help, typ string
	labels          []string
	series          []series
}

// Registry holds registered metrics and renders them in the Prometheus
// text exposition format. Register everything at startup; the returned
// handles are safe for concurrent lock-free use.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

func (r *Registry) register(name, help, typ, labels string, s series) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.byName[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ}
		r.byName[name] = f
		r.families = append(r.families, f)
	} else if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %s re-registered as %s, was %s", name, typ, f.typ))
	}
	for _, l := range f.labels {
		if l == labels {
			panic(fmt.Sprintf("obs: duplicate series %s{%s}", name, labels))
		}
	}
	f.labels = append(f.labels, labels)
	f.series = append(f.series, s)
}

// Counter registers (and returns) a counter series. labels is either ""
// or a pre-rendered Prometheus label body, e.g. `endpoint="/v1/stats"`.
func (r *Registry) Counter(name, help, labels string) *Counter {
	c := &Counter{}
	r.register(name, help, TypeCounter, labels, &counterSeries{c})
	return c
}

// Gauge registers (and returns) a gauge series.
func (r *Registry) Gauge(name, help, labels string) *Gauge {
	g := &Gauge{}
	r.register(name, help, TypeGauge, labels, &gaugeSeries{g})
	return g
}

// GaugeFunc registers a gauge evaluated at scrape time.
func (r *Registry) GaugeFunc(name, help, labels string, fn func() float64) {
	r.register(name, help, TypeGauge, labels, &funcSeries{fn})
}

// CounterFunc registers a counter evaluated at scrape time (for values
// whose source of truth is an existing atomic elsewhere).
func (r *Registry) CounterFunc(name, help, labels string, fn func() float64) {
	r.register(name, help, TypeCounter, labels, &funcSeries{fn})
}

// Histogram registers (and returns) a histogram series with the given
// ascending bucket upper bounds (+Inf is implicit).
func (r *Registry) Histogram(name, help, labels string, buckets []float64) *Histogram {
	if len(buckets) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	if !sort.Float64sAreSorted(buckets) {
		panic("obs: histogram bucket bounds must be ascending")
	}
	h := &Histogram{
		bounds: append([]float64(nil), buckets...),
		counts: make([]atomic.Uint64, len(buckets)+1),
	}
	r.register(name, help, TypeHistogram, labels, &histogramSeries{h})
	return h
}

// countingWriter tracks bytes written so WritePrometheus can report
// them without every write site threading errors by hand; the first
// error sticks.
type countingWriter struct {
	w   io.Writer
	n   int64
	err error
	buf []byte
}

func (cw *countingWriter) writeString(s string) {
	if cw.err != nil {
		return
	}
	n, err := io.WriteString(cw.w, s)
	cw.n += int64(n)
	cw.err = err
}

func (cw *countingWriter) writeBytes(b []byte) {
	if cw.err != nil {
		return
	}
	n, err := cw.w.Write(b)
	cw.n += int64(n)
	cw.err = err
}

func (cw *countingWriter) writeFloat(v float64) {
	cw.buf = strconv.AppendFloat(cw.buf[:0], v, 'g', -1, 64)
	cw.writeBytes(cw.buf)
}

func (cw *countingWriter) writeInt(v int64) {
	cw.buf = strconv.AppendInt(cw.buf[:0], v, 10)
	cw.writeBytes(cw.buf)
}

func (cw *countingWriter) writeUint(v uint64) {
	cw.buf = strconv.AppendUint(cw.buf[:0], v, 10)
	cw.writeBytes(cw.buf)
}

// sample writes one `name{labels} value` line with the value renderer
// supplied by the caller.
func (cw *countingWriter) sample(name, suffix, labels, extraLabel string, value func()) {
	cw.writeString(name)
	cw.writeString(suffix)
	if labels != "" || extraLabel != "" {
		cw.writeString("{")
		cw.writeString(labels)
		if labels != "" && extraLabel != "" {
			cw.writeString(",")
		}
		cw.writeString(extraLabel)
		cw.writeString("}")
	}
	cw.writeString(" ")
	value()
	cw.writeString("\n")
}

func (s *counterSeries) write(w *countingWriter, name, labels string) {
	w.sample(name, "", labels, "", func() { w.writeInt(s.c.Value()) })
}

func (s *gaugeSeries) write(w *countingWriter, name, labels string) {
	w.sample(name, "", labels, "", func() { w.writeFloat(s.g.Value()) })
}

func (s *funcSeries) write(w *countingWriter, name, labels string) {
	w.sample(name, "", labels, "", func() { w.writeFloat(s.fn()) })
}

func (s *histogramSeries) write(w *countingWriter, name, labels string) {
	h := s.h
	var cum uint64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		c := cum
		le := `le="` + strconv.FormatFloat(bound, 'g', -1, 64) + `"`
		w.sample(name, "_bucket", labels, le, func() { w.writeUint(c) })
	}
	cum += h.counts[len(h.bounds)].Load()
	total := cum
	w.sample(name, "_bucket", labels, `le="+Inf"`, func() { w.writeUint(total) })
	w.sample(name, "_sum", labels, "", func() { w.writeFloat(h.Sum()) })
	w.sample(name, "_count", labels, "", func() { w.writeUint(total) })
}

// WritePrometheus renders every registered family in the Prometheus
// text exposition format (version 0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) (int64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	cw := &countingWriter{w: w}
	for _, f := range r.families {
		cw.writeString("# HELP " + f.name + " " + f.help + "\n")
		cw.writeString("# TYPE " + f.name + " " + f.typ + "\n")
		for i, s := range f.series {
			s.write(cw, f.name, f.labels[i])
		}
	}
	return cw.n, cw.err
}

// Handler serves the registry at GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = r.WritePrometheus(w)
	})
}
