package obs

import (
	"runtime"
	"sync"
	"time"
)

// memSampler caches one runtime.MemStats snapshot per scrape burst:
// ReadMemStats stops the world briefly, and a scrape evaluates several
// gauges that would otherwise each pay that cost back to back.
type memSampler struct {
	mu   sync.Mutex
	last time.Time
	ms   runtime.MemStats
}

func (s *memSampler) sample() runtime.MemStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	if time.Since(s.last) > 500*time.Millisecond {
		runtime.ReadMemStats(&s.ms)
		s.last = time.Now()
	}
	return s.ms
}

// RegisterRuntime registers the process/runtime gauges an operator
// graphs next to serving latency: goroutine count, heap size and
// occupancy, GC cycle count and cumulative pause time.
func RegisterRuntime(r *Registry) {
	var ms memSampler
	r.GaugeFunc("retro_goroutines", "Number of live goroutines.", "",
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.GaugeFunc("retro_heap_alloc_bytes", "Bytes of allocated heap objects.", "",
		func() float64 { return float64(ms.sample().HeapAlloc) })
	r.GaugeFunc("retro_heap_sys_bytes", "Bytes of heap obtained from the OS.", "",
		func() float64 { return float64(ms.sample().HeapSys) })
	r.GaugeFunc("retro_heap_objects", "Number of allocated heap objects.", "",
		func() float64 { return float64(ms.sample().HeapObjects) })
	r.CounterFunc("retro_gc_cycles_total", "Completed GC cycles.", "",
		func() float64 { return float64(ms.sample().NumGC) })
	r.CounterFunc("retro_gc_pause_seconds_total", "Cumulative GC stop-the-world pause time.", "",
		func() float64 { return float64(ms.sample().PauseTotalNs) / 1e9 })
	r.CounterFunc("retro_alloc_bytes_total", "Cumulative bytes allocated on the heap.", "",
		func() float64 { return float64(ms.sample().TotalAlloc) })
}

// RegisterBuildInfo registers the constant retro_build_info gauge whose
// labels carry the toolchain and platform; its value is always 1, so
// joins against it annotate every other series with the build.
func RegisterBuildInfo(r *Registry, version string) {
	labels := `version="` + version + `",go_version="` + runtime.Version() +
		`",goos="` + runtime.GOOS + `",goarch="` + runtime.GOARCH + `"`
	r.GaugeFunc("retro_build_info",
		"Build metadata; the value is constant 1.", labels,
		func() float64 { return 1 })
}
