package obs

import (
	"encoding/json"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// SlowEntry is one recorded slow query with its per-stage breakdown.
// Stage fields that don't apply to the recorded endpoint stay zero.
type SlowEntry struct {
	Time     time.Time `json:"time"`
	Endpoint string    `json:"endpoint"`
	Table    string    `json:"table,omitempty"`
	Column   string    `json:"column,omitempty"`
	Text     string    `json:"text,omitempty"`
	K        int       `json:"k,omitempty"`
	// Batch is the query count of a batched request (0 for single-query
	// endpoints); batched entries aggregate the whole batch and leave the
	// per-value fields empty.
	Batch  int  `json:"batch,omitempty"`
	Cached bool `json:"cached"`

	TotalNs  int64 `json:"total_ns"`
	CacheNs  int64 `json:"cache_lookup_ns,omitempty"`
	WalkNs   int64 `json:"graph_walk_ns,omitempty"`
	RerankNs int64 `json:"rerank_ns,omitempty"`
	EncodeNs int64 `json:"encode_ns,omitempty"`

	Hops     int `json:"hops,omitempty"`
	Nodes    int `json:"nodes_visited,omitempty"`
	Reranked int `json:"reranked,omitempty"`
}

// SlowLog is a bounded ring buffer of SlowEntry records. The threshold
// is an atomic so the read path decides "is this query slow?" with one
// load and no lock; only queries that actually cross it pay the mutex
// to append (by construction a rare event — that is what the threshold
// is for). Recording copies the entry into a pre-allocated ring slot:
// no allocation on the serving path.
type SlowLog struct {
	thresholdNs atomic.Int64
	recorded    atomic.Int64 // total entries ever recorded (ring may have evicted)

	mu   sync.Mutex
	ring []SlowEntry
	next int  // ring slot the next record lands in
	full bool // ring has wrapped at least once
}

// DefaultSlowThreshold flags queries slower than this unless the
// operator retunes it (-slow-query / ?threshold=).
const DefaultSlowThreshold = 100 * time.Millisecond

// NewSlowLog returns a slow-query log holding the last capacity entries
// above threshold (capacity is clamped to at least 1; a non-positive
// threshold selects DefaultSlowThreshold).
func NewSlowLog(capacity int, threshold time.Duration) *SlowLog {
	if capacity < 1 {
		capacity = 1
	}
	l := &SlowLog{ring: make([]SlowEntry, capacity)}
	if threshold <= 0 {
		threshold = DefaultSlowThreshold
	}
	l.thresholdNs.Store(int64(threshold))
	return l
}

// Threshold returns the current slow-query threshold.
func (l *SlowLog) Threshold() time.Duration {
	return time.Duration(l.thresholdNs.Load())
}

// SetThreshold retunes the threshold (non-positive values are ignored).
func (l *SlowLog) SetThreshold(d time.Duration) {
	if d > 0 {
		l.thresholdNs.Store(int64(d))
	}
}

// Slow reports whether a query of the given duration should be
// recorded. One atomic load — this is the only cost the fast path pays.
func (l *SlowLog) Slow(d time.Duration) bool {
	return int64(d) >= l.thresholdNs.Load()
}

// Record appends e to the ring, evicting the oldest entry once full.
func (l *SlowLog) Record(e SlowEntry) {
	l.recorded.Add(1)
	l.mu.Lock()
	l.ring[l.next] = e
	l.next++
	if l.next == len(l.ring) {
		l.next = 0
		l.full = true
	}
	l.mu.Unlock()
}

// Recorded returns how many entries were ever recorded (including ones
// the ring has since evicted).
func (l *SlowLog) Recorded() int64 { return l.recorded.Load() }

// Entries returns the retained entries, newest first.
func (l *SlowLog) Entries() []SlowEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := l.next
	if l.full {
		n = len(l.ring)
	}
	out := make([]SlowEntry, 0, n)
	for i := 0; i < n; i++ {
		idx := l.next - 1 - i
		if idx < 0 {
			idx += len(l.ring)
		}
		out = append(out, l.ring[idx])
	}
	return out
}

// ServeHTTP serves the retained entries as JSON. GET ?threshold=50ms
// retunes the threshold on the fly (the admin listener is the intended
// mount point, so no extra auth layer is imposed here).
func (l *SlowLog) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if t := r.URL.Query().Get("threshold"); t != "" {
		d, err := time.ParseDuration(t)
		if err != nil || d <= 0 {
			http.Error(w, "threshold must be a positive duration, e.g. 50ms", http.StatusBadRequest)
			return
		}
		l.SetThreshold(d)
	}
	entries := l.Entries()
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(map[string]any{
		"threshold_ms": float64(l.Threshold()) / float64(time.Millisecond),
		"capacity":     len(l.ring),
		"recorded":     l.Recorded(),
		"entries":      entries,
	})
}
