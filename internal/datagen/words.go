// Package datagen fabricates the synthetic world the evaluation runs on:
// a "pre-trained" word embedding with topical structure, multi-word
// phrases and a controlled out-of-vocabulary rate, plus TMDB-like and
// Google-Play-like databases whose latent variables plant the signal
// pathways each paper experiment relies on (see DESIGN.md §1 for the
// substitution argument). Everything is deterministic under a seed.
package datagen

import (
	"fmt"
	"math/rand"
	"strings"

	"github.com/retrodb/retro/internal/embed"
	"github.com/retrodb/retro/internal/vec"
)

var syllables = []string{
	"ba", "be", "bi", "bo", "bu", "da", "de", "di", "do", "du",
	"fa", "fe", "fi", "fo", "fu", "ga", "ge", "gi", "go", "gu",
	"ka", "ke", "ki", "ko", "ku", "la", "le", "li", "lo", "lu",
	"ma", "me", "mi", "mo", "mu", "na", "ne", "ni", "no", "nu",
	"pa", "pe", "pi", "po", "pu", "ra", "re", "ri", "ro", "ru",
	"sa", "se", "si", "so", "su", "ta", "te", "ti", "to", "tu",
	"va", "ve", "vi", "vo", "vu", "za", "ze", "zi", "zo", "zu",
}

// wordMaker fabricates unique pronounceable words.
type wordMaker struct {
	rng  *rand.Rand
	seen map[string]bool
}

func newWordMaker(rng *rand.Rand) *wordMaker {
	return &wordMaker{rng: rng, seen: make(map[string]bool)}
}

// make returns a fresh unique word of 2-4 syllables.
func (m *wordMaker) make() string {
	for {
		n := 2 + m.rng.Intn(3)
		var b strings.Builder
		for i := 0; i < n; i++ {
			b.WriteString(syllables[m.rng.Intn(len(syllables))])
		}
		w := b.String()
		if !m.seen[w] {
			m.seen[w] = true
			return w
		}
	}
}

// Vocab is the synthetic language: topic centroids plus word pools whose
// vectors scatter around their topic. It backs the synthetic pre-trained
// embedding.
type Vocab struct {
	Dim   int
	Store *embed.Store

	rng    *rand.Rand
	maker  *wordMaker
	topics map[string][]float64
	pools  map[string][]string
	// oovWords are pool words deliberately left out of the embedding
	// (the §3.1 OOV case). They still appear in database text.
	oovWords map[string]bool
}

// NewVocab creates an empty vocabulary for the given dimensionality.
func NewVocab(dim int, rng *rand.Rand) *Vocab {
	return &Vocab{
		Dim:      dim,
		Store:    embed.NewStore(dim),
		rng:      rng,
		maker:    newWordMaker(rng),
		topics:   make(map[string][]float64),
		pools:    make(map[string][]string),
		oovWords: make(map[string]bool),
	}
}

// Topic creates (or returns) a unit-norm topic centroid.
func (v *Vocab) Topic(name string) []float64 {
	if c, ok := v.topics[name]; ok {
		return c
	}
	c := make([]float64, v.Dim)
	for i := range c {
		c[i] = v.rng.NormFloat64()
	}
	vec.Normalize(c)
	v.topics[name] = c
	return c
}

// Pool creates a pool of `size` fresh words around the topic with the
// given noise level; oovRate of them are withheld from the embedding.
func (v *Vocab) Pool(poolName, topicName string, size int, noise, oovRate float64) []string {
	if words, ok := v.pools[poolName]; ok {
		return words
	}
	centroid := v.Topic(topicName)
	words := make([]string, size)
	for i := range words {
		w := v.maker.make()
		words[i] = w
		if v.rng.Float64() < oovRate {
			v.oovWords[w] = true
			continue
		}
		v.Store.Add(w, v.sample(centroid, noise))
	}
	v.pools[poolName] = words
	return words
}

// sample draws centroid + N(0, noise²) per component.
func (v *Vocab) sample(centroid []float64, noise float64) []float64 {
	out := make([]float64, v.Dim)
	for i := range out {
		out[i] = centroid[i] + v.rng.NormFloat64()*noise
	}
	return out
}

// AddPhrase registers a multi-word phrase (underscore-joined) near the
// topic; exercises the §3.1 trie (longest-match must prefer it).
func (v *Vocab) AddPhrase(words []string, topicName string, noise float64) string {
	phrase := strings.Join(words, "_")
	v.Store.Add(phrase, v.sample(v.Topic(topicName), noise))
	return phrase
}

// AddWordAt inserts a specific word with a vector near the topic.
func (v *Vocab) AddWordAt(word, topicName string, noise float64) {
	v.Store.Add(word, v.sample(v.Topic(topicName), noise))
}

// PickFrom returns a uniformly drawn word of a pool.
func (v *Vocab) PickFrom(poolName string) string {
	pool := v.pools[poolName]
	if len(pool) == 0 {
		panic(fmt.Sprintf("datagen: empty pool %q", poolName))
	}
	return pool[v.rng.Intn(len(pool))]
}

// IsOOV reports whether a word was withheld from the embedding.
func (v *Vocab) IsOOV(word string) bool { return v.oovWords[word] }

// Sentence draws n words, each from pool A with probability pA, else
// from pool B.
func (v *Vocab) Sentence(n int, poolA string, pA float64, poolB string) string {
	words := make([]string, n)
	for i := range words {
		if v.rng.Float64() < pA {
			words[i] = v.PickFrom(poolA)
		} else {
			words[i] = v.PickFrom(poolB)
		}
	}
	return strings.Join(words, " ")
}

// MixedSentence draws n words from a weighted mixture of pools. Weights
// need not sum to one; they are normalised.
func (v *Vocab) MixedSentence(n int, pools []string, weights []float64) string {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	words := make([]string, n)
	for i := range words {
		u := v.rng.Float64() * total
		acc := 0.0
		chosen := pools[len(pools)-1]
		for pi, w := range weights {
			acc += w
			if u < acc {
				chosen = pools[pi]
				break
			}
		}
		words[i] = v.PickFrom(chosen)
	}
	return strings.Join(words, " ")
}
